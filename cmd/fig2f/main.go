// Command fig2f regenerates the paper's Figure 2(f): worst-case
// throughput of the semi-oblivious design as a function of the traffic
// locality ratio x, with three series:
//
//	theory — the closed form r = 1/(3−x) at the optimal q* = 2/(1−x)
//	fluid  — exact link-load analysis of the real schedule + router
//	sim    — a saturated 128-node / 8-clique packet simulation with
//	         pFabric web-search traffic (the paper's "simulation of 128
//	         nodes and 8 cliques using real-world traffic")
//
// Reference lines: 1D ORN (50%) and 2D ORN (25%). Points run on the
// bounded sweep engine (-sweepworkers); results are bit-identical for
// every concurrency setting and deterministic for a given seed.
//
// Usage:
//
//	fig2f [-n 128] [-nc 8] [-step 0.1] [-sim] [-measure 25000] [-sweepworkers 0] [-csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	cfg := experiments.DefaultFig2fConfig()
	flag.IntVar(&cfg.N, "n", cfg.N, "number of nodes")
	flag.IntVar(&cfg.Nc, "nc", cfg.Nc, "number of cliques")
	flag.Float64Var(&cfg.Step, "step", cfg.Step, "locality ratio sweep step")
	flag.BoolVar(&cfg.RunSim, "sim", cfg.RunSim, "run the packet-level simulation series")
	flag.Int64Var(&cfg.MeasureSlots, "measure", cfg.MeasureSlots, "simulation measurement slots")
	flag.Int64Var(&cfg.WarmupSlots, "warmup", cfg.WarmupSlots, "simulation warmup slots")
	flag.Int64Var(&cfg.Backlog, "backlog", cfg.Backlog, "fresh-cell saturation target per node")
	flag.IntVar(&cfg.SizeCap, "cap", cfg.SizeCap, "flow size cap in cells (p95 of web search; bounds transient)")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "simulation seed")
	flag.IntVar(&cfg.Workers, "workers", cfg.Workers, "step-shard goroutines per simulation (0 = one per CPU, 1 = serial; results identical)")
	flag.IntVar(&cfg.SweepWorkers, "sweepworkers", cfg.SweepWorkers, "concurrent sweep points (0 = one per CPU, 1 = serial; results identical)")
	flag.BoolVar(&cfg.NoSimReuse, "nosimreuse", cfg.NoSimReuse, "allocate a fresh simulator per point instead of reusing pooled ones (A/B knob; results identical)")
	flag.BoolVar(&cfg.Dense, "dense", cfg.Dense, "run points on the dense reference engine instead of the active-set engine (A/B knob; results identical)")
	csvOut := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	tracePath := flag.String("trace", "", "write each simulated point's event trace as JSONL to this file")
	metricsPath := flag.String("metrics", "", "write each simulated point's slot-resolved metric series as CSV to this file")
	metricsEvery := flag.Int64("metricsevery", 64, "series snapshot cadence in slots")
	flag.Parse()

	if *tracePath != "" || *metricsPath != "" {
		cfg.ObsEvery = *metricsEvery
	}

	pts, err := experiments.Fig2f(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig2f:", err)
		os.Exit(1)
	}
	writeCaptures(pts, *tracePath, *metricsPath)

	var tb stats.Table
	tb.SetHeader("x", "theory r=1/(3-x)", "fluid θ", "sim r (pFabric)", "1D ORN", "2D ORN")
	for _, p := range pts {
		simCell := "-"
		if cfg.RunSim {
			simCell = fmt.Sprintf("%.4f", p.Sim)
		}
		tb.AddRow(
			fmt.Sprintf("%.2f", p.X),
			fmt.Sprintf("%.4f", p.Theory),
			fmt.Sprintf("%.4f", p.Fluid),
			simCell,
			"0.5000",
			"0.2500",
		)
	}
	fmt.Printf("Figure 2(f) — SORN worst-case throughput vs locality ratio (N=%d, Nc=%d)\n\n", cfg.N, cfg.Nc)
	if *csvOut {
		fmt.Print(tb.CSV())
	} else {
		fmt.Print(tb.String())
	}
}

// writeCaptures concatenates the per-point observability captures (each
// sweep point runs concurrently with its own Observer) into one JSONL
// trace and one metrics CSV, in x order. Series rows carry an "x=…" run
// label, so the combined files stay separable per point.
func writeCaptures(pts []experiments.Fig2fPoint, tracePath, metricsPath string) {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		for _, p := range pts {
			if err := p.Obs.WriteTraceJSONL(f); err != nil {
				fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			fatal(err)
		}
		cw := csv.NewWriter(f)
		wroteHeader := false
		for _, p := range pts {
			if p.Obs == nil {
				continue
			}
			if !wroteHeader {
				if err := cw.Write(p.Obs.SeriesHeader()); err != nil {
					fatal(err)
				}
				wroteHeader = true
			}
			for _, row := range p.Obs.SeriesRows() {
				if err := cw.Write(row); err != nil {
					fatal(err)
				}
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fig2f:", err)
	os.Exit(1)
}
