// Command schedviz renders the paper's schedule/matching figures as text:
//
//	-fig 1   Figure 1: round-robin schedule for 5 nodes (4 time slots)
//	-fig 2b  Figure 2(b): the matchings an 8-node wavelength-selective
//	         OCS offers (one per wavelength)
//	-fig 2d  Figure 2(d): topology A — two cliques of four, q=3, as a
//	         4-slot schedule plus per-node wavelength state (Fig. 2c)
//	-fig 2e  Figure 2(e): topology B — four cliques of two (q=1)
//	-fig all (default) renders everything
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/matching"
	"repro/internal/ocs"
	"repro/internal/schedule"
)

func main() {
	fig := flag.String("fig", "all", "which figure to render: 1, 2b, 2d, 2e, all")
	wavelengths := flag.Int("wavelengths", 5, "how many matchings to list for figure 2b")
	flag.Parse()

	switch *fig {
	case "1":
		fig1()
	case "2b":
		fig2b(*wavelengths)
	case "2d":
		fig2d()
	case "2e":
		fig2e()
	case "all":
		fig1()
		fmt.Println()
		fig2b(*wavelengths)
		fmt.Println()
		fig2d()
		fmt.Println()
		fig2e()
	default:
		fmt.Fprintf(os.Stderr, "schedviz: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func fig1() {
	fmt.Println("Figure 1 — oblivious round-robin schedule, 5 nodes:")
	fmt.Print(matching.RoundRobin(5))
}

func fig2b(count int) {
	sw, err := ocs.NewAWGR(8)
	if err != nil {
		fatal(err)
	}
	if count > sw.NumWavelengths() {
		count = sw.NumWavelengths()
	}
	fmt.Printf("Figure 2(b) — matchings of an 8-port wavelength-selective OCS (showing m1..m%d):\n", count)
	fmt.Print("node")
	for k := 1; k <= count; k++ {
		fmt.Printf("\tm%d", k)
	}
	fmt.Println()
	for node := 0; node < 8; node++ {
		fmt.Printf("%c", 'A'+node)
		for k := 1; k <= count; k++ {
			fmt.Printf("\t%c", 'A'+sw.Matching(k)[node])
		}
		fmt.Println()
	}
}

func fig2d() {
	a := schedule.TopologyA()
	fmt.Printf("Figure 2(d) — topology A: 2 cliques of 4, q=%.0f (intra bandwidth 3x inter):\n", a.RealizedQ)
	fmt.Print(a.Schedule)
	printNodeState(a)
}

func fig2e() {
	b := schedule.TopologyB()
	fmt.Printf("Figure 2(e) — topology B: 4 cliques of 2 (q=%.0f):\n", b.RealizedQ)
	fmt.Print(b.Schedule)
}

// printNodeState shows the Figure 2(c) view: the per-slot transmit
// wavelength each node holds to realize the schedule.
func printNodeState(s *schedule.SORN) {
	sw, err := ocs.NewAWGR(s.Config.N)
	if err != nil {
		fatal(err)
	}
	states, err := ocs.CompileNodeStates(sw, s.Schedule)
	if err != nil {
		fatal(err)
	}
	fmt.Println("node state (Figure 2c) — transmit wavelength per slot:")
	for _, ns := range states {
		fmt.Printf("%c:", 'A'+ns.Node)
		for _, w := range ns.TxWavelength {
			fmt.Printf("\tλ%d", w)
		}
		fmt.Printf("\t(%d B state)\n", ns.StateBytes())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedviz:", err)
	os.Exit(1)
}
