// Command sornsim is the general driver for the packet-level simulator:
// pick a design (sorn, orn1d, orn2d), a workload (locality ratio, flow
// size distribution), and a mode (saturate, openloop, or avail), and get
// throughput, hop, and latency statistics.
//
// Examples:
//
//	sornsim -design sorn -n 128 -nc 8 -x 0.56 -mode saturate
//	sornsim -design orn1d -n 128 -mode openloop -load 0.3 -sizes websearch
//	sornsim -design orn2d -n 64 -mode openloop -load 0.2
//	sornsim -mode openloop -faultplan 'node7@5000-15000;churn@0-30000,links=0.001,down=300'
//	sornsim -mode avail -n 64 -nc 8 -slots 40000 -faultplan 'node7@8000-20000' -outage 8000-24000
//	sornsim -selfcheck -fuzziters 64 -fuzzseconds 120 -seed 3
//	sornsim -selfcheck -spec 'design=sorn n=24 nc=4 q=0 x=0.56 tm=locality tmparam=0.56 planes=2 workers=4 warmup=800 measure=3200 seed=12648431'
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // -pprof serves the default mux
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faultplan"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	design := flag.String("design", "sorn", "sorn, orn1d, or orn2d")
	n := flag.Int("n", 128, "number of nodes")
	nc := flag.Int("nc", 8, "cliques (sorn only)")
	x := flag.Float64("x", 0.56, "traffic locality ratio; also provisions the sorn schedule")
	q := flag.Float64("q", 0, "explicit oversubscription ratio (0 = derive q* from -x)")
	mode := flag.String("mode", "saturate", "saturate, openloop, or avail")
	load := flag.Float64("load", 0.3, "offered load for openloop mode (fraction of node bandwidth)")
	sizes := flag.String("sizes", "websearch", "flow sizes: websearch, datamining, fixed:<cells>, bimodal")
	cap := flag.Int("cap", 0, "optional flow size cap in cells (0 = uncapped)")
	slots := flag.Int64("slots", 30000, "openloop run length / saturate measurement slots")
	warmup := flag.Int64("warmup", 15000, "warmup slots")
	backlog := flag.Int64("backlog", 4096, "fresh-cell target per node in saturate mode")
	seed := flag.Uint64("seed", 1, "rng seed")
	slotNS := flag.Int64("slotns", 100, "slot duration (ns)")
	propNS := flag.Int64("propns", 500, "per-hop propagation (ns)")
	planes := flag.Int("planes", 1, "parallel uplinks per node")
	qlimit := flag.Int("qlimit", 0, "per-VOQ queue limit in cells (0 = unbounded)")
	workers := flag.Int("workers", 0, "step-shard goroutines (0 = one per CPU, 1 = serial; results identical)")
	dense := flag.Bool("dense", false, "use the dense reference engine instead of the active-set engine (A/B oracle knob; results identical)")
	sweepWorkers := flag.Int("sweepworkers", 0, "concurrent sweep points in avail mode (0 = one per CPU, 1 = serial; results identical)")
	hist := flag.Bool("hist", false, "print a log2 histogram of cell latencies")
	tracePath := flag.String("trace", "", "write the event trace (flow/failure/reconfig) as JSONL to this file")
	metricsPath := flag.String("metrics", "", "write the slot-resolved metric time series as CSV to this file")
	metricsEvery := flag.Int64("metricsevery", 64, "series snapshot cadence in slots")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	faultSpec := flag.String("faultplan", "",
		"fault-plan spec 'node<u>@s[-e]; link<u>:<v>@s[-e]; churn@s-e[,links=p][,nodes=p][,down=d]', applied between steps (openloop and avail modes)")
	epochSlots := flag.Int64("epoch", 500, "control-loop cadence in slots (avail mode)")
	outage := flag.String("outage", "", "telemetry outage window 'start-end' in slots (avail mode)")
	window := flag.Int64("window", 0, "reporting window in slots for avail mode (0 = slots/50)")
	selfcheck := flag.Bool("selfcheck", false, "run the differential oracle instead of a simulation")
	spec := flag.String("spec", "", "selfcheck: replay one scenario from its printed spec line")
	fuzzIters := flag.Int("fuzziters", 64, "selfcheck: random scenarios to fuzz when -spec is empty")
	fuzzSeconds := flag.Int("fuzzseconds", 0, "selfcheck: wall-clock budget in seconds (0 = iteration count only)")
	flag.Parse()

	if *selfcheck {
		runSelfcheck(*spec, *seed, *fuzzIters, *fuzzSeconds)
		return
	}

	if *pprofAddr != "" {
		go func() {
			// Diagnostics endpoint; a bind failure shouldn't kill the run.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "sornsim: pprof:", err)
			}
		}()
	}
	var ob *obs.Observer
	if *tracePath != "" || *metricsPath != "" {
		// Flow lifecycle events are only worth their cost when the
		// trace is actually being written.
		ob = obs.New(obs.Options{MetricsEvery: *metricsEvery, TraceFlows: *tracePath != ""})
	}

	var (
		nw  *core.Network
		err error
	)
	switch *design {
	case "sorn":
		if *q > 0 {
			nw, err = core.NewSORNWithQ(*n, *nc, *q)
		} else {
			nw, err = core.NewSORN(*n, *nc, *x)
		}
	case "orn1d":
		nw, err = core.NewORN1D(*n)
	case "orn2d":
		nw, err = core.NewORN(*n, 2)
	default:
		fmt.Fprintf(os.Stderr, "sornsim: unknown design %q\n", *design)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	var dist workload.SizeDist
	switch *sizes {
	case "websearch":
		dist = workload.WebSearch()
	case "datamining":
		dist = workload.DataMining()
	case "bimodal":
		dist = workload.Bimodal{ShortCells: 10, BulkCells: 1000, ShortShare: 0.75}
	default:
		var cells int
		if _, err := fmt.Sscanf(*sizes, "fixed:%d", &cells); err != nil || cells < 1 {
			fmt.Fprintf(os.Stderr, "sornsim: bad -sizes %q\n", *sizes)
			os.Exit(2)
		}
		dist = workload.FixedSize(cells)
	}
	if *cap > 0 {
		dist = workload.NewCapped(dist, *cap)
	}

	tm, err := nw.LocalityMatrix(*x)
	if err != nil {
		fatal(err)
	}
	opts := core.SimOptions{
		SlotNS: *slotNS, PropNS: *propNS, Seed: *seed,
		LatencySampleEvery: 16,
		WarmupSlots:        *warmup,
		MeasureSlots:       *slots,
		TargetBacklog:      *backlog,
		Planes:             *planes,
		Workers:            *workers,
		Obs:                ob,
		Dense:              *dense,
	}

	var st *netsim.Stats
	switch *mode {
	case "saturate":
		if *qlimit > 0 {
			fatal(fmt.Errorf("-qlimit applies to openloop mode only"))
		}
		if *faultSpec != "" {
			fatal(fmt.Errorf("-faultplan applies to openloop and avail modes only"))
		}
		st, err = nw.SimulateSaturated(opts, tm, dist)
	case "openloop":
		sim, serr := netsim.New(netsim.Config{
			Schedule: nw.Schedule, Router: nw.Router,
			SlotNS: *slotNS, PropNS: *propNS, Seed: *seed,
			LatencySampleEvery: 16, Planes: *planes, QueueLimit: *qlimit,
			Workers: *workers, Obs: ob, Dense: *dense,
		})
		if serr != nil {
			fatal(serr)
		}
		gen, gerr := workload.NewPoissonFlows(tm, dist, *load, *seed+1)
		if gerr != nil {
			fatal(gerr)
		}
		total := *warmup + *slots
		flows := gen.Window(0, total)
		sim.StartMeasuring()
		if *faultSpec != "" {
			// With a fault plan the driver owns the slot loop: fault
			// events apply between Steps, arrivals inject at their slot.
			plan, perr := faultplan.ParseSpec(*faultSpec, *n, *seed)
			if perr != nil {
				fatal(perr)
			}
			drv := faultplan.NewDriver(plan)
			next := 0
			for slot := int64(0); slot < total; slot++ {
				drv.Advance(sim, slot)
				for next < len(flows) && flows[next].Arrival <= slot {
					sim.InjectFlow(flows[next].Src, flows[next].Dst, flows[next].Size)
					next++
				}
				sim.Step()
				// Once the network drains, nothing happens until the
				// next arrival or fault event; skip straight there.
				// FastForwardTo checks quiescence itself (and is a
				// no-op under -dense).
				target := total
				if fs, ok := drv.NextSlot(); ok && fs < target {
					target = fs
				}
				if next < len(flows) && flows[next].Arrival < target {
					target = flows[next].Arrival
				}
				if sim.FastForwardTo(target) > 0 {
					slot = sim.Slot() - 1
				}
			}
		} else if rerr := sim.RunOpenLoop(flows, total); rerr != nil {
			fatal(rerr)
		}
		st = sim.Stats()
	case "avail":
		var plan *faultplan.Plan
		if *faultSpec != "" {
			var perr error
			plan, perr = faultplan.ParseSpec(*faultSpec, *n, *seed)
			if perr != nil {
				fatal(perr)
			}
		}
		var oStart, oEnd int64
		if *outage != "" {
			if _, oerr := fmt.Sscanf(*outage, "%d-%d", &oStart, &oEnd); oerr != nil || oEnd < oStart {
				fatal(fmt.Errorf("bad -outage %q (want start-end in slots)", *outage))
			}
		}
		res, aerr := experiments.Availability(experiments.AvailabilityConfig{
			N: *n, Nc: *nc, X: *x, Load: *load,
			Slots: *slots, Window: *window, EpochSlots: *epochSlots,
			OutageStart: oStart, OutageEnd: oEnd,
			Plan: plan, Seed: *seed, Workers: *workers, SweepWorkers: *sweepWorkers, Obs: ob,
			Dense: *dense,
		})
		if aerr != nil {
			fatal(aerr)
		}
		printAvailability(res, *n, *nc, *x, *load)
	default:
		fmt.Fprintf(os.Stderr, "sornsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	if st != nil {
		slotUS := float64(*slotNS) / 1000
		fmt.Printf("design=%s n=%d workload=%s mode=%s\n", nw.Kind, *n, dist.Name(), *mode)
		if nw.SORN != nil {
			fmt.Printf("cliques=%d realized q=%.2f schedule period=%d slots\n",
				nw.SORN.Cliques.NumCliques(), nw.SORN.RealizedQ, nw.Schedule.Period())
		}
		fmt.Printf("throughput r        %.4f cells/node/slot\n", st.Throughput(*n))
		fmt.Printf("mean hops           %.3f\n", st.MeanHops())
		fmt.Printf("delivered cells     %d\n", st.DeliveredCells)
		if st.LostCells > 0 {
			fmt.Printf("lost cells          %d (failures)\n", st.LostCells)
		}
		if st.DroppedCells > 0 {
			fmt.Printf("dropped cells       %d (queue limit)\n", st.DroppedCells)
		}
		fmt.Printf("completed flows     %d\n", st.CompletedFlows)
		if st.LatencySlots.Count() > 0 {
			fmt.Printf("cell latency p50    %.1f µs\n", st.LatencySlots.Percentile(50)*slotUS)
			fmt.Printf("cell latency p99    %.1f µs\n", st.LatencySlots.Percentile(99)*slotUS)
		}
		for h := 1; h < len(st.LatencyByHops); h++ {
			cls := &st.LatencyByHops[h]
			if cls.Count() == 0 {
				continue
			}
			fmt.Printf("  %d-hop cells p50   %.1f µs (%d samples)\n",
				h, cls.Percentile(50)*slotUS, cls.Count())
		}
		if st.FCTSlots.Count() > 0 {
			fmt.Printf("FCT p50             %.1f µs\n", st.FCTSlots.Percentile(50)*slotUS)
			fmt.Printf("FCT p99             %.1f µs\n", st.FCTSlots.Percentile(99)*slotUS)
		}
		if *hist && st.LatencySlots.Count() > 0 {
			h := stats.NewLogHistogram()
			for p := 0.5; p <= 100; p += 0.5 {
				h.Add(st.LatencySlots.Percentile(p))
			}
			fmt.Println("cell latency histogram (log2 buckets of slots, from percentile samples):")
			bounds, counts := h.Buckets()
			for i, b := range bounds {
				fmt.Printf("  >= %6.0f slots  %s\n", b, strings.Repeat("#", int(counts[i])))
			}
		}
	}

	if ob != nil {
		if *tracePath != "" {
			writeFile(*tracePath, ob.WriteTraceJSONL)
			if d := ob.TraceDropped(); d > 0 {
				fmt.Fprintf(os.Stderr, "sornsim: trace ring overwrote %d oldest events\n", d)
			}
		}
		if *metricsPath != "" {
			writeFile(*metricsPath, ob.WriteMetricsCSV)
		}
		if err := ob.WritePhaseReport(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

// printAvailability renders the two availability time series side by
// side — per-window throughput, end-of-window backlog, and losses for
// the resilient SORN run (with its degraded-mode marker) against the
// static oblivious baseline — then the degradation lifecycle verdict.
func printAvailability(res *experiments.AvailabilityResult, n, nc int, x, load float64) {
	fmt.Printf("availability: n=%d nc=%d x=%.2f load=%.2f — SORN+fallback vs static oblivious\n",
		n, nc, x, load)
	fmt.Printf("%10s  %8s %8s %6s %4s   %8s %8s %6s\n",
		"slot", "r", "backlog", "lost", "mode", "r", "backlog", "lost")
	for i, w := range res.SORN {
		mode := "ok"
		if w.Degraded {
			mode = "DEGR"
		}
		o := res.Oblivious[i]
		fmt.Printf("%10d  %8.4f %8d %6d %4s   %8.4f %8d %6d\n",
			w.Slot, w.Throughput, w.Backlog, w.Lost+w.Dropped, mode,
			o.Throughput, o.Backlog, o.Lost+o.Dropped)
	}
	fmt.Printf("fell back: %v   recovered: %v\n", res.FellBack, res.Recovered)
	fmt.Printf("delivered cells     sorn=%d oblivious=%d\n",
		res.SORNStats.DeliveredCells, res.ObliviousStats.DeliveredCells)
	fmt.Printf("lost cells          sorn=%d oblivious=%d\n",
		res.SORNStats.LostCells, res.ObliviousStats.LostCells)
}

// runSelfcheck is the differential-oracle entry point (-selfcheck):
// with -spec it replays exactly one scenario from its printed spec
// line; otherwise it fuzzes random scenarios until -fuzziters have run
// or the -fuzzseconds wall-clock budget elapses, whichever comes
// first. Exits nonzero on any unsuppressed violation or scenario
// error, printing a one-line reproducer spec for each.
func runSelfcheck(specLine string, seed uint64, iters, seconds int) {
	if specLine != "" {
		sp, err := oracle.ParseSpec(specLine)
		if err != nil {
			fatal(err)
		}
		rep, err := oracle.Run(sp)
		if err != nil {
			fatal(err)
		}
		if out := rep.String(); out != "" {
			fmt.Print(out)
		}
		if len(rep.Failed()) > 0 {
			os.Exit(1)
		}
		fmt.Printf("selfcheck ok: %s\n", sp.String())
		return
	}
	// The deadline lives here, not in internal/oracle: internal
	// packages stay deterministic (no wall-clock), the CLI owns time.
	var stop func() bool
	if seconds > 0 {
		deadline := time.Now().Add(time.Duration(seconds) * time.Second)
		stop = func() bool { return time.Now().After(deadline) }
	}
	res := oracle.Fuzz(seed, iters, stop)
	for _, e := range res.Errors {
		fmt.Fprintln(os.Stderr, "ERROR", e)
	}
	for _, r := range res.Reports {
		fmt.Print(r.String())
	}
	fmt.Printf("selfcheck: %d scenarios, %d with findings, %d errors\n",
		res.Iterations, len(res.Reports), len(res.Errors))
	if res.Failed() {
		os.Exit(1)
	}
}

// writeFile creates path and streams one observer emitter into it.
func writeFile(path string, emit func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := emit(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sornsim:", err)
	os.Exit(1)
}
