// Command table1 regenerates the paper's Table 1: latency and throughput
// of oblivious baselines (1D ORN / Sirius, Opera, 2D optimal ORN) versus
// SORN at Nc=64 and Nc=32 for a 4096-rack DCN with 16 uplinks per rack,
// 100 ns slots, 500 ns/hop propagation, locality ratio 0.56.
//
// Usage:
//
//	table1 [-n 4096] [-uplinks 16] [-slot 100] [-prop 500] [-x 0.56] [-csv] [-text-formula]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/sweep"
)

func main() {
	n := flag.Int("n", 4096, "number of racks")
	uplinks := flag.Int("uplinks", 16, "uplinks per rack")
	slot := flag.Float64("slot", 100, "slot duration (ns)")
	prop := flag.Float64("prop", 500, "per-hop propagation delay (ns)")
	x := flag.Float64("x", 0.56, "locality ratio (intra-clique demand fraction)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	textFormula := flag.Bool("text-formula", false,
		"use the paper text's inter-clique δm formula (q+1)(Nc−1)+... instead of the variant matching the printed table")
	sweepWorkers := flag.Int("sweepworkers", 0, "concurrent row groups (0 = one per CPU, 1 = serial); results are bit-identical for every value")
	flag.Parse()

	p := model.Params{N: *n, Uplinks: *uplinks, SlotNS: *slot, PropNS: *prop}

	// Each design's rows are an independent closed-form evaluation, so
	// they run as sweep points and concatenate in table order.
	groups := []func() ([]model.Row, error){
		func() ([]model.Row, error) { return []model.Row{model.ORN1D(p)}, nil },
		func() ([]model.Row, error) { return model.Opera(p, model.DefaultOperaParams()), nil },
		func() ([]model.Row, error) {
			r, err := model.ORN(p, 2)
			return []model.Row{r}, err
		},
	}
	for _, nc := range []int{64, 32} {
		if *n%nc != 0 {
			continue
		}
		nc := nc
		groups = append(groups, func() ([]model.Row, error) {
			return model.SORN(p, model.SORNParams{Nc: nc, X: *x, TableVariant: !*textFormula})
		})
	}
	rowGroups, err := sweep.Run(sweep.Config{Concurrency: *sweepWorkers}, len(groups),
		func(pt sweep.Point) ([]model.Row, error) { return groups[pt.Index]() })
	if err != nil {
		fatal(err)
	}
	var rows []model.Row
	for _, g := range rowGroups {
		rows = append(rows, g...)
	}

	var tb stats.Table
	tb.SetHeader("System", "Variant", "Max hops", "δm", "Min latency (µs)", "Thpt.", "Norm. BW cost")
	for _, r := range rows {
		tb.AddRow(
			r.System,
			r.Variant,
			fmt.Sprint(r.MaxHops),
			fmt.Sprint(r.DeltaMSlots()),
			fmt.Sprintf("%.2f", r.MinLatencyMicros()),
			fmt.Sprintf("%.2f%%", r.Throughput*100),
			fmt.Sprintf("%.2fx", r.BWCost),
		)
	}
	fmt.Printf("Table 1 — %d racks, %d uplinks, %.0f ns slots, %.0f ns/hop propagation, x=%.2f\n\n",
		*n, *uplinks, *slot, *prop, *x)
	if *csv {
		fmt.Print(tb.CSV())
	} else {
		fmt.Print(tb.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "table1:", err)
	os.Exit(1)
}
