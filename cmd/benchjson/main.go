// Command benchjson converts `go test -bench` output on stdin into a
// labeled entry of a JSON benchmark ledger (BENCH_netsim.json by
// default), so every PR can commit before/after numbers for the
// simulator hot path next to the code that changed them.
//
// Usage:
//
//	go test -run NONE -bench . -benchmem | benchjson -label after-pr2
//
// The ledger holds one entry per label, in insertion order; re-running
// with an existing label replaces that entry. For benchmarks repeated
// with -count, the line with the lowest ns/op wins (the least-noise
// run). Custom b.ReportMetric units land under "metrics". No
// timestamps or host-volatile fields are recorded: identical bench
// output must produce an identical file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Bench is one benchmark's numbers within a run.
type Bench struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labeled invocation of the benchmark suite.
type Run struct {
	Label string            `json:"label"`
	CPU   string            `json:"cpu,omitempty"`
	Bench map[string]*Bench `json:"bench"`
}

// Ledger is the whole JSON file: runs in insertion order.
type Ledger struct {
	Runs []*Run `json:"runs"`
}

// benchLine matches "BenchmarkName[-procs] <iters> <value unit>..."
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func main() {
	label := flag.String("label", "", "label for this run (required)")
	out := flag.String("out", "BENCH_netsim.json", "ledger file to update")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}
	run, err := parse(os.Stdin, *label)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(run.Bench) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if err := merge(*out, run); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: recorded %d benchmarks under label %q in %s\n", len(run.Bench), *label, *out)
}

// parse reads `go test -bench` output and keeps, per benchmark, the
// repetition with the lowest ns/op.
func parse(r io.Reader, label string) (*Run, error) {
	run := &Run{Label: label, Bench: map[string]*Bench{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			run.CPU = strings.TrimSpace(cpu)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b, err := parseFields(m[2])
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		if prev, ok := run.Bench[m[1]]; !ok || b.NsPerOp < prev.NsPerOp {
			run.Bench[m[1]] = b
		}
	}
	return run, sc.Err()
}

// parseFields decodes the "<value> <unit>" pairs after the iteration
// count: ns/op, B/op, allocs/op, and any custom metric units.
func parseFields(rest string) (*Bench, error) {
	f := strings.Fields(rest)
	if len(f)%2 != 0 {
		return nil, fmt.Errorf("odd value/unit fields %q", rest)
	}
	b := &Bench{}
	for i := 0; i < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", f[i], err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}

// merge loads the ledger (if any), replaces or appends the run by
// label, and writes the file back.
func merge(path string, run *Run) error {
	var ledger Ledger
	if data, err := os.ReadFile(path); err == nil {
		// A zero-length file (mktemp, touch) is an empty ledger.
		if len(data) > 0 {
			if err := json.Unmarshal(data, &ledger); err != nil {
				return fmt.Errorf("existing %s: %w", path, err)
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	replaced := false
	for i, r := range ledger.Runs {
		if r.Label == run.Label {
			ledger.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		ledger.Runs = append(ledger.Runs, run)
	}
	data, err := json.MarshalIndent(&ledger, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
