// Command benchjson maintains a JSON benchmark ledger (BENCH_netsim.json
// by default), so every PR can commit before/after numbers for the
// simulator hot path next to the code that changed them.
//
// Recording converts `go test -bench` output on stdin into a labeled
// ledger entry:
//
//	go test -run NONE -bench . -benchmem | benchjson -label after-pr2
//
// The ledger holds one entry per label, in insertion order; re-running
// with an existing label replaces that entry. For benchmarks repeated
// with -count, the line with the lowest ns/op wins (the least-noise
// run). Custom b.ReportMetric units land under "metrics". Each entry
// records the GOMAXPROCS and simulator worker setting it ran under, so
// wall-clock comparisons across entries carry their parallelism context;
// beyond that, no timestamps or host-volatile fields are recorded:
// identical bench output under an identical environment must produce an
// identical file.
//
// Comparing prints per-benchmark deltas between two recorded entries and
// exits nonzero if any shared benchmark's ns/op regressed by more than
// 5% — wire it into CI to keep the hot path from quietly backsliding:
//
//	benchjson compare pr3-before pr3-after
//
// Benchmarks present in only one entry are listed explicitly as added
// or removed; the regression gate judges only benchmarks shared by both
// entries, and two entries with no shared benchmarks compare clean
// (exit 0) with a notice, since there is nothing to gate. The table ends
// with a geomean-speedup summary over the shared benchmarks, and sweep
// benchmarks that record "points" / "ms/point" metrics (the sweep-engine
// benchmarks do, via b.ReportMetric) get an indented metadata line with
// their point count and wall-clock cost per point.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/sortedmap"
)

// Bench is one benchmark's numbers within a run.
type Bench struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labeled invocation of the benchmark suite.
type Run struct {
	Label string `json:"label"`
	CPU   string `json:"cpu,omitempty"`
	// GOMAXPROCS and Workers record the parallelism context of the run:
	// the Go scheduler's processor limit, and the simulator worker
	// setting the benchmarks used ("auto" = one shard per CPU).
	GOMAXPROCS int               `json:"gomaxprocs,omitempty"`
	Workers    string            `json:"workers,omitempty"`
	Bench      map[string]*Bench `json:"bench"`
}

// Ledger is the whole JSON file: runs in insertion order.
type Ledger struct {
	Runs []*Run `json:"runs"`
}

// regressionLimit is the ns/op increase `compare` tolerates before
// failing, as a fraction.
const regressionLimit = 0.05

// benchLine matches "BenchmarkName[-procs] <iters> <value unit>..."
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(compareMain(os.Args[2:]))
	}
	label := flag.String("label", "", "label for this run (required)")
	out := flag.String("out", "BENCH_netsim.json", "ledger file to update")
	workers := flag.String("workers", "auto", "simulator worker setting the benchmarks ran with")
	maxprocs := flag.Int("gomaxprocs", runtime.GOMAXPROCS(0), "GOMAXPROCS the benchmarks ran under")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required")
		os.Exit(2)
	}
	run, err := parse(os.Stdin, *label)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(run.Bench) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	run.GOMAXPROCS = *maxprocs
	run.Workers = *workers
	if err := merge(*out, run); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: recorded %d benchmarks under label %q in %s\n", len(run.Bench), *label, *out)
}

// compareMain implements `benchjson compare <labelA> <labelB>`: print
// per-benchmark deltas and return 1 if any shared benchmark's ns/op
// regressed more than regressionLimit, 2 on usage/IO errors.
func compareMain(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	out := fs.String("out", "BENCH_netsim.json", "ledger file to read")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson compare [-out ledger.json] <labelA> <labelB>")
		return 2
	}
	data, err := os.ReadFile(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	var ledger Ledger
	if err := json.Unmarshal(data, &ledger); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *out, err)
		return 2
	}
	find := func(label string) *Run {
		for _, r := range ledger.Runs {
			if r.Label == label {
				return r
			}
		}
		return nil
	}
	a, b := find(fs.Arg(0)), find(fs.Arg(1))
	for i, r := range []*Run{a, b} {
		if r == nil {
			fmt.Fprintf(os.Stderr, "benchjson: label %q not in %s\n", fs.Arg(i), *out)
			return 2
		}
	}
	return compareRuns(os.Stdout, os.Stderr, a, b)
}

// printer renders gate output. Write errors are deliberately discarded:
// the exit code is the gate's contract, and the writers are stdout/stderr
// or a test buffer.
type printer struct{ w io.Writer }

func (p printer) f(format string, args ...any) { _, _ = fmt.Fprintf(p.w, format, args...) }
func (p printer) ln(args ...any)               { _, _ = fmt.Fprintln(p.w, args...) }

// compareRuns renders the per-benchmark delta table, the sweep metadata
// lines, and the geomean summary, and returns the gate's exit code. Split
// from compareMain so the output format is unit-testable.
func compareRuns(w, errw io.Writer, a, b *Run) int {
	out, eout := printer{w}, printer{errw}
	warnEnvMismatch(eout, a, b)
	// The suite's composition changes across PRs (benchmarks are added
	// and retired), so the gate judges only benchmarks present in both
	// runs; composition changes are reported explicitly instead of
	// being an error or silently folded into the table.
	var shared, removed []string
	for _, name := range sortedmap.Keys(a.Bench) {
		if b.Bench[name] != nil {
			shared = append(shared, name)
		} else {
			removed = append(removed, name)
		}
	}
	var added []string
	for _, name := range sortedmap.Keys(b.Bench) {
		if a.Bench[name] == nil {
			added = append(added, name)
		}
	}

	regressed := false
	logSpeedupSum, speedups := 0.0, 0
	if len(shared) > 0 {
		out.f("%-34s %14s %14s %9s %9s %9s\n",
			"benchmark", a.Label+" ns/op", b.Label+" ns/op", "speedup", "Δns/op", "Δallocs")
		for _, name := range shared {
			ba, bb := a.Bench[name], b.Bench[name]
			line := fmt.Sprintf("%-34s %14.0f %14.0f %8.2fx %8.1f%% %9s",
				strings.TrimPrefix(name, "Benchmark"),
				ba.NsPerOp, bb.NsPerOp,
				ba.NsPerOp/bb.NsPerOp,
				(bb.NsPerOp/ba.NsPerOp-1)*100,
				deltaPct(ba.AllocsPerOp, bb.AllocsPerOp))
			if bb.NsPerOp > ba.NsPerOp*(1+regressionLimit) {
				line += "  REGRESSION"
				regressed = true
			}
			out.ln(line)
			if s := sweepDetail(ba, bb); s != "" {
				out.ln(s)
			}
			if ba.NsPerOp > 0 && bb.NsPerOp > 0 {
				logSpeedupSum += math.Log(ba.NsPerOp / bb.NsPerOp)
				speedups++
			}
		}
	}
	for _, name := range added {
		out.f("%-34s added in %s\n", strings.TrimPrefix(name, "Benchmark"), b.Label)
	}
	for _, name := range removed {
		out.f("%-34s removed since %s\n", strings.TrimPrefix(name, "Benchmark"), a.Label)
	}
	if len(shared) == 0 {
		out.f("benchjson: labels %q and %q share no benchmarks (%d added, %d removed); nothing to gate\n",
			a.Label, b.Label, len(added), len(removed))
		return 0
	}
	if speedups > 0 {
		// The geomean weights each benchmark's ratio equally regardless of
		// its absolute ns/op, so one slow sweep can't mask many fast-path
		// regressions (or vice versa).
		out.f("geomean speedup: %.2fx over %d shared benchmark(s)\n",
			math.Exp(logSpeedupSum/float64(speedups)), speedups)
	}
	if regressed {
		eout.f("benchjson: ns/op regression over %.0f%% between %q and %q\n",
			regressionLimit*100, a.Label, b.Label)
		return 1
	}
	return 0
}

// warnEnvMismatch prints a loud warning when the two runs were recorded
// under different hardware or parallelism (the ledger already mixes
// 2.70GHz and 2.10GHz entries from earlier PRs): their wall-clock
// numbers are not comparable, and a cross-host "speedup" or
// "regression" is an artifact of the move, not of the code. The compare
// still runs — the table is often still wanted — but the exit-code gate
// should not be trusted across such a boundary, so the warning is
// unmissable on stderr. Fields one side simply did not record (empty
// CPU, zero GOMAXPROCS in old entries) are not treated as mismatches.
func warnEnvMismatch(eout printer, a, b *Run) {
	var lines []string
	if a.CPU != "" && b.CPU != "" && a.CPU != b.CPU {
		lines = append(lines, fmt.Sprintf("cpu: %q vs %q", a.CPU, b.CPU))
	}
	if a.GOMAXPROCS != 0 && b.GOMAXPROCS != 0 && a.GOMAXPROCS != b.GOMAXPROCS {
		lines = append(lines, fmt.Sprintf("gomaxprocs: %d vs %d", a.GOMAXPROCS, b.GOMAXPROCS))
	}
	if len(lines) == 0 {
		return
	}
	eout.f("benchjson: WARNING: %q and %q were recorded under different environments:\n", a.Label, b.Label)
	for _, l := range lines {
		eout.f("benchjson: WARNING:   %s\n", l)
	}
	eout.ln("benchjson: WARNING: wall-clock deltas between these entries are not meaningful")
}

// sweepDetail renders the wall-clock/point-count metadata that sweep
// benchmarks record via b.ReportMetric ("points", "ms/point"): one
// indented line per shared sweep benchmark, or "" for benchmarks without
// sweep metrics.
func sweepDetail(ba, bb *Bench) string {
	pts, ok := bb.Metrics["points"]
	if !ok {
		return ""
	}
	line := fmt.Sprintf("%-34s %11.0f pts", "  └ sweep", pts)
	if ms, ok := bb.Metrics["ms/point"]; ok {
		line += fmt.Sprintf("  %8.1f ms/point", ms)
		if prev, ok := ba.Metrics["ms/point"]; ok && prev > 0 {
			line += fmt.Sprintf(" (%s)", deltaPct(prev, ms))
		}
	}
	line += fmt.Sprintf("  wall %s/op", time.Duration(bb.NsPerOp).Round(time.Millisecond))
	return line
}

// deltaPct formats a relative change, or "-" when the baseline is zero
// (e.g. allocs were not recorded).
func deltaPct(from, to float64) string {
	//sornlint:ignore floateq -- zero means the field was absent from the bench output
	if from == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", (to/from-1)*100)
}

// parse reads `go test -bench` output and keeps, per benchmark, the
// repetition with the lowest ns/op.
func parse(r io.Reader, label string) (*Run, error) {
	run := &Run{Label: label, Bench: map[string]*Bench{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			run.CPU = strings.TrimSpace(cpu)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b, err := parseFields(m[2])
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		if prev, ok := run.Bench[m[1]]; !ok || b.NsPerOp < prev.NsPerOp {
			run.Bench[m[1]] = b
		}
	}
	return run, sc.Err()
}

// parseFields decodes the "<value> <unit>" pairs after the iteration
// count: ns/op, B/op, allocs/op, and any custom metric units.
func parseFields(rest string) (*Bench, error) {
	f := strings.Fields(rest)
	if len(f)%2 != 0 {
		return nil, fmt.Errorf("odd value/unit fields %q", rest)
	}
	b := &Bench{}
	for i := 0; i < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", f[i], err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}

// merge loads the ledger (if any), replaces or appends the run by
// label, and writes the file back.
func merge(path string, run *Run) error {
	var ledger Ledger
	if data, err := os.ReadFile(path); err == nil {
		// A zero-length file (mktemp, touch) is an empty ledger.
		if len(data) > 0 {
			if err := json.Unmarshal(data, &ledger); err != nil {
				return fmt.Errorf("existing %s: %w", path, err)
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	replaced := false
	for i, r := range ledger.Runs {
		if r.Label == run.Label {
			ledger.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		ledger.Runs = append(ledger.Runs, run)
	}
	data, err := json.MarshalIndent(&ledger, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
