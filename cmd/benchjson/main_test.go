package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeLedger writes a two-run ledger for compare tests.
func writeLedger(t *testing.T, aBench, bBench map[string]*Bench) string {
	t.Helper()
	ledger := Ledger{Runs: []*Run{
		{Label: "before", Bench: aBench},
		{Label: "after", Bench: bBench},
	}}
	data, err := json.Marshal(ledger)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ledger.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func compare(t *testing.T, path string) int {
	t.Helper()
	return compareMain([]string{"-out", path, "before", "after"})
}

// TestCompareGatesOnlySharedBenchmarks: a regression in a shared
// benchmark fails the compare; added and removed benchmarks do not
// participate in the gate.
func TestCompareGatesOnlySharedBenchmarks(t *testing.T) {
	path := writeLedger(t,
		map[string]*Bench{
			"BenchmarkStep": {NsPerOp: 100},
			"BenchmarkOld":  {NsPerOp: 50}, // removed in after
		},
		map[string]*Bench{
			"BenchmarkStep": {NsPerOp: 120},  // 20% regression
			"BenchmarkNew":  {NsPerOp: 9999}, // added; must not gate
		})
	if got := compare(t, path); got != 1 {
		t.Errorf("regressed shared benchmark: compare = %d, want 1", got)
	}
}

// TestCompareCleanWithCompositionChanges: within-limit shared deltas
// pass even when the suite composition changed around them.
func TestCompareCleanWithCompositionChanges(t *testing.T) {
	path := writeLedger(t,
		map[string]*Bench{
			"BenchmarkStep": {NsPerOp: 100},
			"BenchmarkOld":  {NsPerOp: 50},
		},
		map[string]*Bench{
			"BenchmarkStep": {NsPerOp: 103}, // within the 5% limit
			"BenchmarkNew":  {NsPerOp: 1},
		})
	if got := compare(t, path); got != 0 {
		t.Errorf("clean shared benchmark: compare = %d, want 0", got)
	}
}

// TestCompareNoSharedBenchmarks: disjoint suites have nothing to gate,
// so the compare reports the composition change and exits clean.
func TestCompareNoSharedBenchmarks(t *testing.T) {
	path := writeLedger(t,
		map[string]*Bench{"BenchmarkOld": {NsPerOp: 50}},
		map[string]*Bench{"BenchmarkNew": {NsPerOp: 60}})
	if got := compare(t, path); got != 0 {
		t.Errorf("disjoint suites: compare = %d, want 0", got)
	}
}

// TestCompareUnknownLabel stays a hard usage error.
func TestCompareUnknownLabel(t *testing.T) {
	path := writeLedger(t,
		map[string]*Bench{"BenchmarkStep": {NsPerOp: 100}},
		map[string]*Bench{"BenchmarkStep": {NsPerOp: 100}})
	if got := compareMain([]string{"-out", path, "before", "nosuch"}); got != 2 {
		t.Errorf("unknown label: compare = %d, want 2", got)
	}
}

// TestCompareGeomeanSummary: the geomean line weights each shared
// benchmark's ratio equally — a 4x and a 1x speedup average to 2x.
func TestCompareGeomeanSummary(t *testing.T) {
	a := &Run{Label: "before", Bench: map[string]*Bench{
		"BenchmarkFast": {NsPerOp: 400},
		"BenchmarkSame": {NsPerOp: 100},
	}}
	b := &Run{Label: "after", Bench: map[string]*Bench{
		"BenchmarkFast": {NsPerOp: 100}, // 4x
		"BenchmarkSame": {NsPerOp: 100}, // 1x
	}}
	var out, errOut strings.Builder
	if got := compareRuns(&out, &errOut, a, b); got != 0 {
		t.Fatalf("compareRuns = %d, want 0 (stderr: %s)", got, errOut.String())
	}
	want := "geomean speedup: 2.00x over 2 shared benchmark(s)"
	if !strings.Contains(out.String(), want) {
		t.Errorf("output missing %q:\n%s", want, out.String())
	}
}

// TestCompareSweepMetadata: benchmarks carrying the sweep engine's
// "points" / "ms/point" metrics get an indented metadata line with the
// point count, per-point wall cost, and its delta against the baseline.
func TestCompareSweepMetadata(t *testing.T) {
	a := &Run{Label: "before", Bench: map[string]*Bench{
		"BenchmarkFig2fSweep": {NsPerOp: 22e9, Metrics: map[string]float64{"points": 11, "ms/point": 2000}},
		"BenchmarkStep":       {NsPerOp: 100},
	}}
	b := &Run{Label: "after", Bench: map[string]*Bench{
		"BenchmarkFig2fSweep": {NsPerOp: 11e9, Metrics: map[string]float64{"points": 11, "ms/point": 1000}},
		"BenchmarkStep":       {NsPerOp: 100},
	}}
	var out, errOut strings.Builder
	if got := compareRuns(&out, &errOut, a, b); got != 0 {
		t.Fatalf("compareRuns = %d, want 0 (stderr: %s)", got, errOut.String())
	}
	text := out.String()
	for _, want := range []string{"11 pts", "1000.0 ms/point", "(-50.0%)", "wall 11s/op"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// The plain benchmark must not grow a sweep line.
	if n := strings.Count(text, "└ sweep"); n != 1 {
		t.Errorf("%d sweep metadata lines, want 1:\n%s", n, text)
	}
}

// TestCompareWarnsOnEnvMismatch: entries recorded under different CPUs
// or GOMAXPROCS get a loud stderr warning — the ledger spans hosts and
// a cross-host delta is noise — but the warning never changes the exit
// code, in either direction.
func TestCompareWarnsOnEnvMismatch(t *testing.T) {
	mk := func(cpu string, procs int, ns float64) *Run {
		return &Run{Label: "r-" + cpu, CPU: cpu, GOMAXPROCS: procs,
			Bench: map[string]*Bench{"BenchmarkStep": {NsPerOp: ns}}}
	}
	t.Run("cpu-and-procs-differ", func(t *testing.T) {
		var out, errOut strings.Builder
		if got := compareRuns(&out, &errOut, mk("2.70GHz", 1, 100), mk("2.10GHz", 8, 100)); got != 0 {
			t.Fatalf("compareRuns = %d, want 0: a warning must not fail the gate", got)
		}
		text := errOut.String()
		for _, want := range []string{"WARNING", "2.70GHz", "2.10GHz", "gomaxprocs: 1 vs 8", "not meaningful"} {
			if !strings.Contains(text, want) {
				t.Errorf("stderr missing %q:\n%s", want, text)
			}
		}
	})
	t.Run("regression-still-gates", func(t *testing.T) {
		var out, errOut strings.Builder
		if got := compareRuns(&out, &errOut, mk("2.70GHz", 1, 100), mk("2.10GHz", 1, 200)); got != 1 {
			t.Fatalf("compareRuns = %d, want 1: the warning must not mask a regression", got)
		}
		if !strings.Contains(errOut.String(), "WARNING") {
			t.Errorf("stderr missing warning:\n%s", errOut.String())
		}
	})
	t.Run("same-env-is-silent", func(t *testing.T) {
		var out, errOut strings.Builder
		if got := compareRuns(&out, &errOut, mk("2.10GHz", 4, 100), mk("2.10GHz", 4, 100)); got != 0 {
			t.Fatalf("compareRuns = %d, want 0", got)
		}
		if strings.Contains(errOut.String(), "WARNING") {
			t.Errorf("unexpected warning for identical environments:\n%s", errOut.String())
		}
	})
	t.Run("unrecorded-fields-do-not-warn", func(t *testing.T) {
		// Early ledger entries predate the gomaxprocs/cpu fields; absence
		// is unknown, not different.
		a := mk("", 0, 100)
		var out, errOut strings.Builder
		if got := compareRuns(&out, &errOut, a, mk("2.10GHz", 4, 100)); got != 0 {
			t.Fatalf("compareRuns = %d, want 0", got)
		}
		if strings.Contains(errOut.String(), "WARNING") {
			t.Errorf("unexpected warning when one side did not record env:\n%s", errOut.String())
		}
	})
}
