package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// writeLedger writes a two-run ledger for compare tests.
func writeLedger(t *testing.T, aBench, bBench map[string]*Bench) string {
	t.Helper()
	ledger := Ledger{Runs: []*Run{
		{Label: "before", Bench: aBench},
		{Label: "after", Bench: bBench},
	}}
	data, err := json.Marshal(ledger)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ledger.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func compare(t *testing.T, path string) int {
	t.Helper()
	return compareMain([]string{"-out", path, "before", "after"})
}

// TestCompareGatesOnlySharedBenchmarks: a regression in a shared
// benchmark fails the compare; added and removed benchmarks do not
// participate in the gate.
func TestCompareGatesOnlySharedBenchmarks(t *testing.T) {
	path := writeLedger(t,
		map[string]*Bench{
			"BenchmarkStep": {NsPerOp: 100},
			"BenchmarkOld":  {NsPerOp: 50}, // removed in after
		},
		map[string]*Bench{
			"BenchmarkStep": {NsPerOp: 120},  // 20% regression
			"BenchmarkNew":  {NsPerOp: 9999}, // added; must not gate
		})
	if got := compare(t, path); got != 1 {
		t.Errorf("regressed shared benchmark: compare = %d, want 1", got)
	}
}

// TestCompareCleanWithCompositionChanges: within-limit shared deltas
// pass even when the suite composition changed around them.
func TestCompareCleanWithCompositionChanges(t *testing.T) {
	path := writeLedger(t,
		map[string]*Bench{
			"BenchmarkStep": {NsPerOp: 100},
			"BenchmarkOld":  {NsPerOp: 50},
		},
		map[string]*Bench{
			"BenchmarkStep": {NsPerOp: 103}, // within the 5% limit
			"BenchmarkNew":  {NsPerOp: 1},
		})
	if got := compare(t, path); got != 0 {
		t.Errorf("clean shared benchmark: compare = %d, want 0", got)
	}
}

// TestCompareNoSharedBenchmarks: disjoint suites have nothing to gate,
// so the compare reports the composition change and exits clean.
func TestCompareNoSharedBenchmarks(t *testing.T) {
	path := writeLedger(t,
		map[string]*Bench{"BenchmarkOld": {NsPerOp: 50}},
		map[string]*Bench{"BenchmarkNew": {NsPerOp: 60}})
	if got := compare(t, path); got != 0 {
		t.Errorf("disjoint suites: compare = %d, want 0", got)
	}
}

// TestCompareUnknownLabel stays a hard usage error.
func TestCompareUnknownLabel(t *testing.T) {
	path := writeLedger(t,
		map[string]*Bench{"BenchmarkStep": {NsPerOp: 100}},
		map[string]*Bench{"BenchmarkStep": {NsPerOp: 100}})
	if got := compareMain([]string{"-out", path, "before", "nosuch"}); got != 2 {
		t.Errorf("unknown label: compare = %d, want 2", got)
	}
}
