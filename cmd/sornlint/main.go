// Command sornlint runs this repository's determinism & correctness
// analyzers (internal/lint) over the module's source and reports every
// violation in file:line:col form.
//
// Usage:
//
//	go run ./cmd/sornlint ./...          # whole module (the default)
//	go run ./cmd/sornlint -rules         # list the rules
//	go run ./cmd/sornlint -only maporder ./...
//	go run ./cmd/sornlint -json ./...    # machine-readable report
//	go run ./cmd/sornlint -json -baseline lint_baseline.json ./...
//
// With -baseline, findings recorded in the baseline file are tolerated
// and only new findings are reported — CI gates on the diff while the
// repository burns down pre-existing findings. The baseline file is the
// -json output format, so regenerating it is one redirect (see
// scripts/lint-baseline.sh).
//
// Exit status: 0 clean (or no new findings), 1 findings, 2 usage or
// load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list the available rules and exit")
	only := flag.String("only", "", "comma-separated subset of rules to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as JSON (the baseline format)")
	baseline := flag.String("baseline", "", "baseline file: tolerate its findings, report only new ones")
	flag.Parse()

	if *listRules {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "sornlint: only module-wide analysis is supported (got %q); run with ./...\n", arg)
			os.Exit(2)
		}
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "sornlint: unknown rule %q (see -rules)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sornlint:", err)
		os.Exit(2)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sornlint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sornlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sornlint:", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, analyzers)

	baselined := 0
	if *baseline != "" {
		base, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sornlint:", err)
			os.Exit(2)
		}
		fresh := base.Diff(findings, root)
		baselined = len(findings) - len(fresh)
		findings = fresh
	}

	if *asJSON {
		if err := lint.NewReport(findings, root).Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "sornlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		what := "finding(s)"
		if *baseline != "" {
			what = "new finding(s) not in the baseline"
		}
		fmt.Fprintf(os.Stderr, "sornlint: %d %s\n", len(findings), what)
		os.Exit(1)
	}
	if baselined > 0 {
		fmt.Fprintf(os.Stderr, "sornlint: clean (%d baselined finding(s) tolerated)\n", baselined)
	}
}
