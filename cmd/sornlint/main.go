// Command sornlint runs this repository's determinism & correctness
// analyzers (internal/lint) over the module's source and reports every
// violation in file:line:col form.
//
// Usage:
//
//	go run ./cmd/sornlint ./...          # whole module (the default)
//	go run ./cmd/sornlint -rules         # list the rules
//	go run ./cmd/sornlint -only maporder ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list the available rules and exit")
	only := flag.String("only", "", "comma-separated subset of rules to run (default: all)")
	flag.Parse()

	if *listRules {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "sornlint: only module-wide analysis is supported (got %q); run with ./...\n", arg)
			os.Exit(2)
		}
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "sornlint: unknown rule %q (see -rules)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sornlint:", err)
		os.Exit(2)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sornlint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sornlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sornlint:", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sornlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
