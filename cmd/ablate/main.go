// Command ablate runs the ablation experiments of DESIGN.md (A1–A7, L1, U1, S1–S2),
// probing the design choices behind the paper's §5–§6 discussion:
//
//	-exp mismatch  A1: throughput when the estimated locality x̂ is wrong
//	-exp qsweep    A2: throughput vs oversubscription q at fixed locality
//	-exp ncsweep   A3: latency split vs clique count (Table 1 generalized)
//	-exp blast     A4: failure blast radius, SORN vs flat 1D ORN
//	-exp adapt     A5: packet-level reconfiguration after a workload shift
//	-exp gravity   A6: robustness to gravity-skewed aggregated demand
//	-exp pairs     A7: §5 expressivity — demand-aware (BvN) inter-clique
//	               schedules vs the uniform allocation
//	-exp latency   L1: Table 1's latency ordering measured in the packet
//	               simulator (SORN intra/inter vs 1D and 2D ORNs)
//	-exp planes    U1: parallel uplinks divide the schedule wait (the
//	               /uplinks term of Table 1's latency column)
//	-exp sync      S1: §6 time-synchronization overhead — per-slot guard
//	               vs sync-domain size, SORN vs flat
//	-exp state     S2: §5 NIC state scaling (Figure 2c) vs network size
//	-exp diurnal   A8: tracking a sinusoidal locality cycle (§6 "diurnal
//	               utilization patterns"): adaptive vs static vs clairvoyant
//	-exp phys      P1: §5 physical feasibility — which clique sizes the
//	               4096-node / 16-port / 256-grating deployment supports
//	-exp fct       F1: short-flow FCT vs offered load, SORN vs 1D ORN
//	-exp all       everything
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/obs"
	physpkg "repro/internal/phys"
	"repro/internal/stats"
)

func main() {
	exp := flag.String("exp", "all", "experiment: mismatch, qsweep, ncsweep, blast, adapt, gravity, pairs, all")
	n := flag.Int("n", 64, "nodes for built-schedule experiments")
	nc := flag.Int("nc", 8, "cliques")
	seed := flag.Uint64("seed", 11, "simulation seed")
	sweepWorkers := flag.Int("sweepworkers", 0, "concurrent sweep points (0 = one per CPU, 1 = serial); results are bit-identical for every value")
	tracePath := flag.String("trace", "", "write the event trace (flow/failure/reconfig/replan) as JSONL to this file (adapt, diurnal, fct)")
	metricsPath := flag.String("metrics", "", "write the slot-resolved metric time series as CSV to this file (adapt, fct)")
	metricsEvery := flag.Int64("metricsevery", 64, "series snapshot cadence in slots")
	flag.Parse()

	// One observer is shared by every instrumented experiment that runs;
	// time-series rows are labeled per run/phase so they stay separable.
	var ob *obs.Observer
	if *tracePath != "" || *metricsPath != "" {
		// Flow lifecycle events are only worth their cost when the
		// trace is actually being written.
		ob = obs.New(obs.Options{MetricsEvery: *metricsEvery, TraceFlows: *tracePath != ""})
	}

	run := map[string]func(){
		"mismatch": func() { mismatch(*n, *nc, *sweepWorkers) },
		"qsweep":   func() { qsweep(*n, *nc, *sweepWorkers) },
		"ncsweep":  func() { ncsweep(*sweepWorkers) },
		"blast":    func() { blast(*n, *nc, *sweepWorkers) },
		"adapt":    func() { adapt(*n, *nc, *seed, ob) },
		"gravity":  func() { gravity(*n, *nc, *sweepWorkers) },
		"pairs":    func() { pairs(*n, *nc) },
		"latency":  func() { latency(*n, *nc, *seed, *sweepWorkers) },
		"planes":   func() { planes(*n, *nc, *seed, *sweepWorkers) },
		"sync":     sync,
		"state":    state,
		"diurnal":  func() { diurnal(*n, *nc, ob, *sweepWorkers) },
		"phys":     phys,
		"fct":      func() { fct(*n, *nc, *seed, ob, *sweepWorkers) },
	}
	if *exp == "all" {
		for _, name := range []string{"mismatch", "qsweep", "ncsweep", "blast", "adapt", "gravity", "pairs", "latency", "planes", "sync", "state", "diurnal", "phys", "fct"} {
			run[name]()
			fmt.Println()
		}
		writeObs(ob, *tracePath, *metricsPath)
		return
	}
	f, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "ablate: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	f()
	writeObs(ob, *tracePath, *metricsPath)
}

// writeObs dumps the shared observer's trace (JSONL) and metric series
// (CSV) to the requested paths.
func writeObs(ob *obs.Observer, tracePath, metricsPath string) {
	if ob == nil {
		return
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		if err := ob.WriteTraceJSONL(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if d := ob.TraceDropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "ablate: trace ring overwrote %d oldest events\n", d)
		}
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			fatal(err)
		}
		if err := ob.WriteMetricsCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func mismatch(n, nc, sweepWorkers int) {
	fmt.Println("A1 — locality estimation error margin (schedule built for x̂, traffic has x):")
	planned := []float64{0.2, 0.5, 0.8}
	actual := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	pts, err := experiments.LocalityMismatch(n, nc, planned, actual, sweepWorkers)
	if err != nil {
		fatal(err)
	}
	var tb stats.Table
	tb.SetHeader("x̂ planned", "x actual", "model r", "fluid θ", "vs clairvoyant")
	for _, p := range pts {
		clair := model.SORNThroughput(p.XActual)
		tb.AddRow(
			fmt.Sprintf("%.1f", p.XPlanned),
			fmt.Sprintf("%.1f", p.XActual),
			fmt.Sprintf("%.4f", p.Model),
			fmt.Sprintf("%.4f", p.Fluid),
			fmt.Sprintf("%.0f%%", 100*p.Fluid/clair),
		)
	}
	fmt.Print(tb.String())
}

func qsweep(n, nc, sweepWorkers int) {
	x := 0.56
	fmt.Printf("A2 — throughput vs oversubscription q at x=%.2f (q* = %.2f):\n", x, model.SORNQ(x))
	pts, err := experiments.QSweep(n, nc, x, []float64{1, 2, 3, 4, model.SORNQ(x), 6, 8, 12, 16}, sweepWorkers)
	if err != nil {
		fatal(err)
	}
	var tb stats.Table
	tb.SetHeader("q (realized)", "model r", "fluid θ")
	for _, p := range pts {
		tb.AddRow(fmt.Sprintf("%.2f", p.Q), fmt.Sprintf("%.4f", p.Model), fmt.Sprintf("%.4f", p.Fluid))
	}
	fmt.Print(tb.String())
}

func ncsweep(sweepWorkers int) {
	p := model.Table1Params()
	fmt.Printf("A3 — latency split vs clique count (N=%d, x=0.56):\n", p.N)
	rows, err := experiments.NcSweep(p, 0.56, []int{8, 16, 32, 64, 128, 256, 512}, 256, sweepWorkers)
	if err != nil {
		fatal(err)
	}
	var tb stats.Table
	tb.SetHeader("Nc", "intra δm", "inter δm", "intra lat (µs)", "inter lat (µs)", "built wait@256", "formula@256")
	for _, r := range rows {
		tb.AddRow(
			fmt.Sprint(r.Nc),
			fmt.Sprint(r.IntraDM),
			fmt.Sprint(r.InterDM),
			fmt.Sprintf("%.2f", r.IntraLatNS/1000),
			fmt.Sprintf("%.2f", r.InterLatNS/1000),
			fmt.Sprint(r.MeasuredIntraWait),
			fmt.Sprint(r.TheoreticIntraWait),
		)
	}
	fmt.Print(tb.String())
}

func blast(n, nc, sweepWorkers int) {
	fmt.Printf("A4 — failure blast radius (fraction of src-dst pairs affected), N=%d:\n", n)
	rows, err := experiments.BlastRadius(n, nc, 3, sweepWorkers)
	if err != nil {
		fatal(err)
	}
	var tb stats.Table
	tb.SetHeader("Design", "node failure", "intra-link failure", "inter-link failure")
	for _, r := range rows {
		tb.AddRow(
			r.Design,
			fmt.Sprintf("%.4f", r.NodeBlast),
			fmt.Sprintf("%.4f", r.IntraLink),
			fmt.Sprintf("%.4f", r.InterLink),
		)
	}
	fmt.Print(tb.String())
}

func adapt(n, nc int, seed uint64, ob *obs.Observer) {
	fmt.Printf("A5 — semi-oblivious adaptation after a workload shift (N=%d, packet sim):\n", n)
	phases, err := experiments.Adaptation(experiments.AdaptationConfig{
		N: n, Nc: nc, X1: 0.2, X2: 0.8, PhaseSlots: 8000, Seed: seed, Obs: ob,
	})
	if err != nil {
		fatal(err)
	}
	var tb stats.Table
	tb.SetHeader("Phase", "offered locality", "q in force", "measured r")
	for _, p := range phases {
		tb.AddRow(p.Name, fmt.Sprintf("%.1f", p.Locality), fmt.Sprintf("%.2f", p.Q), fmt.Sprintf("%.4f", p.Throughput))
	}
	fmt.Print(tb.String())
}

func gravity(n, nc, sweepWorkers int) {
	fmt.Printf("A6 — gravity-skewed aggregate demand (masses 4:2:2:1...), N=%d:\n", n)
	mass := make([]float64, nc)
	for i := range mass {
		mass[i] = 1
	}
	mass[0], mass[1], mass[2] = 4, 2, 2
	pts, err := experiments.Gravity(n, nc, mass, []float64{1, 2, 3, 4, 6, 8}, sweepWorkers)
	if err != nil {
		fatal(err)
	}
	var tb stats.Table
	tb.SetHeader("q (realized)", "fluid θ under gravity TM")
	for _, p := range pts {
		tb.AddRow(fmt.Sprintf("%.2f", p.Q), fmt.Sprintf("%.4f", p.Theta))
	}
	fmt.Print(tb.String())
	fmt.Println("(gravity's hot *receiver* cannot be helped by rebalancing circuits: every")
	fmt.Println(" schedule is doubly stochastic — §5 notes gravity needs port heterogeneity)")
}

func pairs(n, nc int) {
	fmt.Printf("A7 — §5 expressivity: partnered cliques (60%% of demand to the partner), N=%d:\n", n)
	rows, err := experiments.Expressivity(n, nc, 3, 0.2, 0.6)
	if err != nil {
		fatal(err)
	}
	var tb stats.Table
	tb.SetHeader("Inter-clique schedule", "fluid θ", "mean hops")
	for _, r := range rows {
		tb.AddRow(r.Design, fmt.Sprintf("%.4f", r.Theta), fmt.Sprintf("%.2f", r.MeanHops))
	}
	fmt.Print(tb.String())
	fmt.Println("(the BvN demand-aware schedule concentrates inter slots on partner cliques)")
}

func latency(n, nc int, seed uint64, sweepWorkers int) {
	// Larger N separates the designs' cycle times more clearly; 256 is a
	// perfect square (needed by the 2D ORN) and still simulates quickly.
	if n < 256 {
		n = 256
	}
	fmt.Printf("L1 — packet-level latency at 5%% load (N=%d, 100 ns slots, 500 ns/hop, 1 uplink):\n", n)
	rows, err := experiments.LatencyComparison(n, nc, 1, 0.05, seed, sweepWorkers)
	if err != nil {
		fatal(err)
	}
	var tb stats.Table
	tb.SetHeader("Design", "Class", "p50 (µs)", "p99 (µs)", "mean hops")
	for _, r := range rows {
		tb.AddRow(r.Design, r.Class,
			fmt.Sprintf("%.2f", r.P50us), fmt.Sprintf("%.2f", r.P99us),
			fmt.Sprintf("%.2f", r.MeanHops))
	}
	fmt.Print(tb.String())
	fmt.Println("(Table 1's ordering, measured: SORN intra < 2D ORN < SORN inter < 1D ORN)")
}

func planes(n, nc int, seed uint64, sweepWorkers int) {
	fmt.Printf("U1 — uplink planes divide the schedule wait (N=%d, 5%% load, SORN x=0.56):\n", n)
	pts, err := experiments.PlaneSweep(experiments.PlaneSweepConfig{
		N: n, Nc: nc, X: 0.56, Planes: []int{1, 2, 4, 8, 16}, Load: 0.05, Seed: seed, SweepWorkers: sweepWorkers,
	})
	if err != nil {
		fatal(err)
	}
	var tb stats.Table
	tb.SetHeader("uplinks", "p50 (µs)", "p99 (µs)")
	for _, p := range pts {
		tb.AddRow(fmt.Sprint(p.Planes), fmt.Sprintf("%.2f", p.P50us), fmt.Sprintf("%.2f", p.P99us))
	}
	fmt.Print(tb.String())
}

func sync() {
	fmt.Println("S1 — §6 sync overhead: per-slot guard vs domain size (N=4096, Nc=64, 4 ns/level):")
	rows := experiments.SyncOverhead(4096, 64, 0.56, 4, []float64{1000, 200, 100, 80, 60, 50})
	var tb stats.Table
	tb.SetHeader("slot (ns)", "SORN slot eff.", "flat slot eff.", "SORN eff. thpt", "flat eff. thpt")
	for _, r := range rows {
		tb.AddRow(
			fmt.Sprintf("%.0f", r.SlotNS),
			fmt.Sprintf("%.3f", r.SORNEff),
			fmt.Sprintf("%.3f", r.FlatEff),
			fmt.Sprintf("%.4f", r.SORNThpt),
			fmt.Sprintf("%.4f", r.FlatThpt),
		)
	}
	fmt.Print(tb.String())
	fmt.Println("(shorter slots magnify SORN's smaller sync domains; its effective")
	fmt.Println(" throughput overtakes the flat design despite the lower worst-case r)")
}

func state() {
	fmt.Println("S2 — §5 NIC state per node (Figure 2c: tx wavelength per slot + queue per neighbor):")
	rows, err := experiments.StateScaling([]int{256, 512, 1024, 2048, 4096}, 0.56)
	if err != nil {
		fatal(err)
	}
	var tb stats.Table
	tb.SetHeader("N", "SORN period", "SORN state (B)", "1D ORN period", "1D ORN state (B)")
	for _, r := range rows {
		tb.AddRow(fmt.Sprint(r.N), fmt.Sprint(r.SORNPeriod), fmt.Sprint(r.SORNStateBytes),
			fmt.Sprint(r.FlatPeriod), fmt.Sprint(r.FlatStateBytes))
	}
	fmt.Print(tb.String())
}

func diurnal(n, nc int, ob *obs.Observer, sweepWorkers int) {
	fmt.Printf("A8 — diurnal locality cycle 0.2..0.8 over 12-epoch periods (N=%d):\n", n)
	pts, err := experiments.Diurnal(experiments.DiurnalConfig{
		N: n, Nc: nc, Lo: 0.2, Hi: 0.8, Period: 12, Epochs: 36, SweepWorkers: sweepWorkers, Obs: ob,
	})
	if err != nil {
		fatal(err)
	}
	var tb stats.Table
	tb.SetHeader("epoch", "true x", "est. x", "adaptive θ", "static θ", "clairvoyant θ")
	for _, p := range pts {
		if p.Epoch%3 != 0 {
			continue // print every 3rd epoch
		}
		tb.AddRow(fmt.Sprint(p.Epoch),
			fmt.Sprintf("%.2f", p.TrueX), fmt.Sprintf("%.2f", p.EstimateX),
			fmt.Sprintf("%.4f", p.AdaptiveR), fmt.Sprintf("%.4f", p.StaticR),
			fmt.Sprintf("%.4f", p.ClairvoyR))
	}
	fmt.Print(tb.String())
	a, s2, c := experiments.DiurnalSummary(pts)
	fmt.Printf("mean throughput: adaptive %.4f, static %.4f, clairvoyant %.4f\n", a, s2, c)
}

func phys() {
	const n, ports, g = 4096, 16, 256
	fmt.Printf("P1 — §5 physical feasibility: clique sizes on %d nodes, %d ports/node, %d-port gratings:\n", n, ports, g)
	var tb stats.Table
	tb.SetHeader("clique size", "ports needed", "fits 16-port budget")
	for k := 1; k <= n; k *= 2 {
		need, err := physpkg.PortsForCliqueSize(n, g, k)
		if err != nil {
			continue
		}
		fits := "yes"
		if need > ports {
			fits = "NO"
		}
		tb.AddRow(fmt.Sprint(k), fmt.Sprint(need), fits)
	}
	fmt.Print(tb.String())
	fmt.Println("(the paper's \"16, 32, 64 up to 2048\": k=2048 consumes the 16-port budget")
	fmt.Println(" exactly; a flat all-pairs fabric would need 31 ports per node)")
}

func fct(n, nc int, seed uint64, ob *obs.Observer, sweepWorkers int) {
	fmt.Printf("F1 — short-flow (16-cell) FCT vs offered load (N=%d, x=0.56):\n", n)
	pts, err := experiments.FCTvsLoad(experiments.FCTConfig{
		N: n, Nc: nc, X: 0.56, Loads: []float64{0.1, 0.2, 0.3, 0.4}, Slots: 25000, Seed: seed, SweepWorkers: sweepWorkers, Obs: ob,
	})
	if err != nil {
		fatal(err)
	}
	var tb stats.Table
	tb.SetHeader("Design", "load", "FCT p50 (µs)", "FCT p99 (µs)", "flows done")
	for _, p := range pts {
		tb.AddRow(p.Design, fmt.Sprintf("%.2f", p.Load),
			fmt.Sprintf("%.1f", p.P50us), fmt.Sprintf("%.1f", p.P99us),
			fmt.Sprint(p.Done))
	}
	fmt.Print(tb.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ablate:", err)
	os.Exit(1)
}
