package controlplane

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/schedule"
)

// Resilient wraps a Controller with the degraded-mode discipline the
// paper's §5 argument presumes but the plain Controller does not have:
// SORN may re-optimize at macro time scales *only because* it can always
// retreat to the uniform oblivious schedule, whose worst-case guarantee
// holds for any traffic. Resilient makes that retreat an explicit state
// machine:
//
//	NORMAL ──(estimate stale/corrupt, plan error)──▶ DEGRADED
//	DEGRADED ──(RecoverAfter consecutive healthy probes)──▶ NORMAL
//
// In DEGRADED the fabric runs the cached uniform fallback (equal
// contiguous cliques at the x=0 operating point q=2, worst-case
// throughput 1/3) while every epoch still probes the demand-aware
// planner; the RecoverAfter hysteresis keeps a flapping estimator from
// thrashing the fabric through repeated reconfigurations. Mechanical
// failures (PlanNext/Apply errors) additionally back off exponentially
// — up to MaxBackoff epochs between attempts — so a persistently broken
// planner costs bounded control-plane work. Every transition is emitted
// on the controller's observer as a control event.
type Resilient struct {
	C *Controller

	// StaleEpochs is how many consecutive Decide calls may pass without
	// a fresh observation before the estimate is considered stale.
	StaleEpochs int
	// XMax bounds trusted locality estimates: x above it (estimates
	// collapsing toward 1 drive q*→∞) is treated as corrupt telemetry
	// rather than a plannable operating point.
	XMax float64
	// RecoverAfter is the hysteresis: consecutive healthy probes needed
	// in DEGRADED before resuming demand-aware operation.
	RecoverAfter int
	// MaxBackoff caps the exponential retry delay, in epochs.
	MaxBackoff int

	degraded      bool
	healthy       int   // consecutive healthy probes while degraded
	lastObs       int   // estimator observation count at the last Decide
	stale         int   // consecutive Decides without a fresh observation
	backoff       int   // next error's delay, in epochs
	backoffLeft   int   // epochs still to wait before retrying
	decide        int64 // Decide ordinal, for event Epochs
	fallbackBuilt *schedule.SORN
}

// NewResilient wraps c with default degraded-mode thresholds.
func NewResilient(c *Controller) *Resilient {
	return &Resilient{C: c, StaleEpochs: 3, XMax: 0.995, RecoverAfter: 3, MaxBackoff: 8}
}

// Decision is the outcome of one control epoch.
type Decision struct {
	// Plan is the active plan after this decision; its Built schedule is
	// what the fabric should be running.
	Plan *Plan
	// Changed reports whether this decision changed the installed
	// schedule (the caller must push it to the fabric/simulator).
	Changed bool
	// Degraded reports whether the fabric is on the oblivious fallback.
	Degraded bool
	// Reason is why the controller is (or became) degraded this epoch:
	// "no_observations", "stale_estimate", "locality_blowup", or
	// "plan_error: …". Empty in normal operation.
	Reason string
}

// fallback lazily builds and caches the uniform oblivious plan. The
// schedule never depends on the estimate, so one build serves the whole
// run.
func (r *Resilient) fallback() (*Plan, error) {
	if r.fallbackBuilt == nil {
		cl, err := schedule.EqualCliques(r.C.n, r.C.nc)
		if err != nil {
			return nil, err
		}
		built, err := rebuildOnCliques(cl, model.SORNQ(0))
		if err != nil {
			return nil, err
		}
		r.fallbackBuilt = built
	}
	return &Plan{
		Cliques:    r.fallbackBuilt.Cliques,
		X:          0, // planned without trusting the estimate
		Q:          r.fallbackBuilt.RealizedQ,
		PredictedR: model.SORNThroughputAtQ(0, r.fallbackBuilt.RealizedQ),
		Built:      r.fallbackBuilt,
	}, nil
}

// Degraded reports whether the controller is currently on the fallback.
func (r *Resilient) Degraded() bool { return r.degraded }

// Decide runs one control epoch: probe the demand-aware planner, run its
// plan if it is trustworthy, otherwise hold (or retreat to) the
// oblivious fallback. The returned error is reserved for unrecoverable
// internal failures — building or installing the fallback itself failed
// — after which the fabric keeps whatever schedule it had.
func (r *Resilient) Decide() (Decision, error) {
	r.decide++

	// Staleness tracks whether any new observation arrived since the
	// previous epoch.
	cur := r.C.est.Observations()
	if cur == r.lastObs {
		r.stale++
	} else {
		r.stale = 0
	}
	r.lastObs = cur

	// Backoff after a mechanical failure: hold state, don't even probe.
	if r.backoffLeft > 0 {
		r.backoffLeft--
		return r.hold("plan_error: backing off")
	}

	plan, reason := r.probe()
	if plan == nil {
		return r.demote(reason, false)
	}

	if r.degraded {
		// Healthy probe while degraded: count toward the hysteresis but
		// keep running the fallback until the streak completes.
		r.healthy++
		if r.healthy < r.RecoverAfter {
			return r.hold(reason)
		}
		if err := r.C.Apply(plan); err != nil {
			return r.demote("plan_error: "+err.Error(), true)
		}
		r.degraded = false
		r.healthy = 0
		r.backoff = 0
		if r.C.Obs != nil {
			r.C.Obs.Emit(obs.Event{Epoch: r.decide, Type: obs.EvRecover, Src: -1, Dst: -1,
				X: plan.X, Q: plan.Q, Val: float64(r.RecoverAfter)})
		}
		return Decision{Plan: plan, Changed: planChanged(plan)}, nil
	}

	if err := r.C.Apply(plan); err != nil {
		return r.demote("plan_error: "+err.Error(), true)
	}
	r.backoff = 0
	return Decision{Plan: plan, Changed: planChanged(plan)}, nil
}

// probe runs the health checks and, when they pass, one PlanNext. It
// returns the plan (nil if untrustworthy) and the degradation reason.
func (r *Resilient) probe() (*Plan, string) {
	if r.C.est.Observations() == 0 {
		return nil, "no_observations"
	}
	if r.stale >= r.StaleEpochs {
		return nil, "stale_estimate"
	}
	plan, err := r.C.PlanNext()
	if err != nil {
		return nil, "plan_error: " + err.Error()
	}
	// PlanNext already rejects non-finite x and q; the XMax band
	// additionally refuses estimates collapsing toward x=1, which are
	// far more often telemetry failures than real traffic.
	if math.IsNaN(plan.X) || plan.X > r.XMax {
		return nil, "locality_blowup"
	}
	return plan, ""
}

// demote moves to (or stays in) DEGRADED for the given reason. isError
// marks mechanical plan/apply failures, which also arm the exponential
// backoff; health failures re-probe every epoch instead.
func (r *Resilient) demote(reason string, isError bool) (Decision, error) {
	if isError || strings.HasPrefix(reason, "plan_error") {
		if r.backoff == 0 {
			r.backoff = 1
		} else if r.backoff*2 <= r.MaxBackoff {
			r.backoff *= 2
		} else {
			r.backoff = r.MaxBackoff
		}
		r.backoffLeft = r.backoff
		if r.C.Obs != nil {
			r.C.Obs.Emit(obs.Event{Epoch: r.decide, Type: obs.EvPlanError, Src: -1, Dst: -1,
				Val: float64(r.backoff), Note: reason})
		}
	}
	r.healthy = 0
	fb, err := r.fallback()
	if err != nil {
		return Decision{}, fmt.Errorf("controlplane: cannot build fallback: %w", err)
	}
	if r.degraded {
		// Already on the fallback; nothing to install.
		return Decision{Plan: fb, Degraded: true, Reason: reason}, nil
	}
	if err := r.C.Apply(fb); err != nil {
		return Decision{}, fmt.Errorf("controlplane: cannot install fallback: %w", err)
	}
	r.degraded = true
	if r.C.Obs != nil {
		r.C.Obs.Emit(obs.Event{Epoch: r.decide, Type: obs.EvFallback, Src: -1, Dst: -1,
			Q: fb.Q, Val: fb.PredictedR, Note: reason})
	}
	return Decision{Plan: fb, Changed: planChanged(fb), Degraded: true, Reason: reason}, nil
}

// hold keeps the current state without touching the fabric: degraded
// stays on the fallback, normal keeps the incumbent plan.
func (r *Resilient) hold(reason string) (Decision, error) {
	if !r.degraded {
		return Decision{}, fmt.Errorf("controlplane: hold outside degraded mode (internal error)")
	}
	fb, err := r.fallback()
	if err != nil {
		return Decision{}, fmt.Errorf("controlplane: cannot build fallback: %w", err)
	}
	return Decision{Plan: fb, Degraded: true, Reason: reason}, nil
}

// planChanged reports whether an applied plan altered the installed
// schedule: the first apply always does, later ones only when the ocs
// diff rewrites at least one slot.
func planChanged(p *Plan) bool {
	return p.Update == nil || p.Update.TotalSlotChanges() > 0
}
