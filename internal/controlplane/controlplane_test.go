package controlplane

import (
	"math"
	"testing"

	"repro/internal/fluid"
	"repro/internal/matching"
	"repro/internal/model"
	"repro/internal/routing"
	"repro/internal/schedule"
	"repro/internal/workload"
)

func TestEstimatorEWMA(t *testing.T) {
	e, err := NewEstimator(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Estimate() != nil {
		t.Fatal("estimate before observations should be nil")
	}
	a := workload.Uniform(4)
	if err := e.Observe(a); err != nil {
		t.Fatal(err)
	}
	// Second observation: node 0 sends everything to node 1.
	b := workload.NewMatrix(4)
	b.Rates[0][1] = 1
	if err := e.Observe(b); err != nil {
		t.Fatal(err)
	}
	est := e.Estimate()
	want := 0.5*(1.0/3) + 0.5*1
	if math.Abs(est.Rates[0][1]-want) > 1e-12 {
		t.Fatalf("ewma rate = %f, want %f", est.Rates[0][1], want)
	}
	if e.Observations() != 2 {
		t.Fatalf("observations = %d", e.Observations())
	}
}

func TestEstimatorErrors(t *testing.T) {
	if _, err := NewEstimator(4, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := NewEstimator(4, 1.5); err == nil {
		t.Error("alpha>1 accepted")
	}
	// NaN fails both range comparisons, so it used to slip through and
	// poison the EWMA on the first fold. Regression: reject it.
	if _, err := NewEstimator(4, math.NaN()); err == nil {
		t.Error("alpha=NaN accepted")
	}
	e, _ := NewEstimator(4, 0.5)
	if err := e.Observe(workload.Uniform(8)); err == nil {
		t.Error("size mismatch accepted")
	}
	bad := workload.Uniform(4)
	bad.Rates[2][2] = 1
	if err := e.Observe(bad); err == nil {
		t.Error("invalid matrix accepted")
	}
	if _, err := e.EstimateLocality(nil); err == nil {
		t.Error("locality without observations accepted")
	}
}

func TestEstimatorRejectsPoisonedObservations(t *testing.T) {
	// A single NaN or negative rate would contaminate the EWMA forever
	// ((1-α)·NaN + α·anything = NaN); Observe must reject the matrix and
	// leave the running estimate untouched.
	e, _ := NewEstimator(4, 0.5)
	if err := e.Observe(workload.Uniform(4)); err != nil {
		t.Fatal(err)
	}
	for name, rate := range map[string]float64{"NaN": math.NaN(), "negative": -1, "+Inf": math.Inf(1)} {
		bad := workload.Uniform(4)
		bad.Rates[0][1] = rate
		if err := e.Observe(bad); err == nil {
			t.Errorf("%s rate accepted", name)
		}
	}
	if e.Observations() != 1 {
		t.Fatalf("rejected observations were folded in: count %d", e.Observations())
	}
	if got := e.Estimate().Rates[0][1]; math.IsNaN(got) || got < 0 {
		t.Fatalf("estimate poisoned: rate[0][1] = %f", got)
	}
}

func TestEstimateIsLiveViewAndCloneIsNot(t *testing.T) {
	e, _ := NewEstimator(4, 0.5)
	if e.Estimate() != nil || e.EstimateClone() != nil {
		t.Fatal("estimate before observations should be nil")
	}
	if err := e.Observe(workload.Uniform(4)); err != nil {
		t.Fatal(err)
	}
	view := e.Estimate()
	snap := e.EstimateClone()
	before := view.Rates[0][1]
	b := workload.NewMatrix(4)
	b.Rates[0][1] = 1
	if err := e.Observe(b); err != nil {
		t.Fatal(err)
	}
	if view.Rates[0][1] == before {
		t.Fatal("Estimate view did not track the new observation")
	}
	if snap.Rates[0][1] != before {
		t.Fatal("EstimateClone snapshot changed under a later observation")
	}
}

func TestPlanNextRejectsDegenerateQ(t *testing.T) {
	// MaxQ=0 (a zero-value Controller literal, or misconfiguration)
	// would clamp q* to 0 and build a schedule with no inter-clique
	// capacity; PlanNext must refuse instead.
	c, _ := NewController(32, 4, 1)
	c.MaxQ = 0
	cl, _ := schedule.EqualCliques(32, 4)
	tm, _ := workload.Locality(cl, 0.5)
	if err := c.Observe(tm); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PlanNext(); err == nil {
		t.Fatal("PlanNext accepted a non-positive q")
	}
}

func TestControllerPlansOptimalQ(t *testing.T) {
	c, err := NewController(32, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := schedule.EqualCliques(32, 4)
	tm, _ := workload.Locality(cl, 0.5)
	if err := c.Observe(tm); err != nil {
		t.Fatal(err)
	}
	p, err := c.PlanNext()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.X-0.5) > 1e-9 {
		t.Fatalf("estimated locality %f, want 0.5", p.X)
	}
	// q* = 2/(1-0.5) = 4; realized within integer-weight tolerance.
	if math.Abs(p.Q-4) > 0.5 {
		t.Fatalf("planned q = %f, want ~4", p.Q)
	}
	if math.Abs(p.PredictedR-model.SORNThroughputAtQ(0.5, p.Q)) > 1e-12 {
		t.Fatal("predicted r inconsistent with model")
	}
	if err := c.Apply(p); err != nil {
		t.Fatal(err)
	}
	if c.Current() != p.Built {
		t.Fatal("apply did not install the schedule")
	}
	if p.Update != nil {
		t.Fatal("first apply should have no diff")
	}
}

func TestControllerRebalanceIsDrainFree(t *testing.T) {
	// Locality shifts 0.2 -> 0.8 with the same cliques: the update must
	// preserve the neighbor superset (paper §5).
	c, err := NewController(32, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := schedule.EqualCliques(32, 4)
	tm1, _ := workload.Locality(cl, 0.2)
	if err := c.Observe(tm1); err != nil {
		t.Fatal(err)
	}
	p1, err := c.PlanNext()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Apply(p1); err != nil {
		t.Fatal(err)
	}

	tm2, _ := workload.Locality(cl, 0.8)
	if err := c.Observe(tm2); err != nil {
		t.Fatal(err)
	}
	p2, err := c.PlanNext()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Apply(p2); err != nil {
		t.Fatal(err)
	}
	if p2.Update == nil {
		t.Fatal("second apply should carry a diff")
	}
	if !p2.Update.PreservesNeighborSuperset() {
		t.Fatalf("q rebalance required %d drains", p2.Update.DrainsRequired())
	}
	if p2.Q <= p1.Q {
		t.Fatalf("higher locality should raise q: %f -> %f", p1.Q, p2.Q)
	}
}

func TestControllerMaxQClamp(t *testing.T) {
	c, _ := NewController(32, 4, 1)
	c.MaxQ = 5
	cl, _ := schedule.EqualCliques(32, 4)
	tm, _ := workload.Locality(cl, 0.99)
	if err := c.Observe(tm); err != nil {
		t.Fatal(err)
	}
	p, err := c.PlanNext()
	if err != nil {
		t.Fatal(err)
	}
	if p.Q > 5.51 {
		t.Fatalf("q = %f exceeds clamp", p.Q)
	}
}

func TestReclusterRecoversPlantedCliques(t *testing.T) {
	// Scatter 4 affinity groups across node ids, feed the controller the
	// resulting TM, and check re-clustering recovers the groups.
	const n, nc = 32, 4
	// Planted group of node i = i mod nc (i.e. NOT contiguous).
	planted := make([]int, n)
	for i := range planted {
		planted[i] = i % nc
	}
	plantedCl, err := schedule.NewCliques(planted)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := workload.Locality(plantedCl, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewController(n, nc, 1)
	c.Recluster = true
	if err := c.Observe(tm); err != nil {
		t.Fatal(err)
	}
	p, err := c.PlanNext()
	if err != nil {
		t.Fatal(err)
	}
	// The recovered partition must make the planted traffic 90% intra.
	if got := tm.IntraFraction(p.Cliques); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("reclustered locality = %f, want 0.9", got)
	}
	// And the built schedule must be valid and routable end to end.
	if err := p.Built.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	router := routing.NewSORN(p.Built)
	res, err := fluid.Solve(p.Built.Schedule, router, tm)
	if err != nil {
		t.Fatal(err)
	}
	want := model.SORNThroughputAtQ(0.9, p.Built.RealizedQ)
	if res.Theta < want-1e-9 {
		t.Fatalf("reclustered θ = %f below model %f", res.Theta, want)
	}
}

func TestReclusterBeatsStaticPartition(t *testing.T) {
	// With traffic concentrated in scattered groups, adapting the cliques
	// must yield much higher predicted throughput than keeping the naive
	// contiguous partition (the point of semi-obliviousness).
	const n, nc = 32, 4
	planted := make([]int, n)
	for i := range planted {
		planted[i] = i % nc
	}
	plantedCl, _ := schedule.NewCliques(planted)
	tm, _ := workload.Locality(plantedCl, 0.9)

	static, _ := NewController(n, nc, 1)
	if err := static.Observe(tm); err != nil {
		t.Fatal(err)
	}
	ps, err := static.PlanNext()
	if err != nil {
		t.Fatal(err)
	}

	adaptive, _ := NewController(n, nc, 1)
	adaptive.Recluster = true
	if err := adaptive.Observe(tm); err != nil {
		t.Fatal(err)
	}
	pa, err := adaptive.PlanNext()
	if err != nil {
		t.Fatal(err)
	}
	if pa.X <= ps.X+0.3 {
		t.Fatalf("recluster locality %f should far exceed static %f", pa.X, ps.X)
	}
	if pa.PredictedR <= ps.PredictedR {
		t.Fatalf("recluster r %f should beat static %f", pa.PredictedR, ps.PredictedR)
	}
}

func TestControllerErrors(t *testing.T) {
	if _, err := NewController(10, 3, 0.5); err == nil {
		t.Error("non-divisible clique count accepted")
	}
	c, _ := NewController(8, 2, 0.5)
	if _, err := c.PlanNext(); err == nil {
		t.Error("planning without observations accepted")
	}
}

func TestRelabeledScheduleMatchesRouter(t *testing.T) {
	// Every circuit the relabeled schedule provides must be consistent
	// with the SORN router's expectations: full intra-clique coverage
	// plus one landing per remote clique, per node.
	planted := []int{0, 1, 0, 1, 1, 0, 1, 0}
	cl, err := schedule.NewCliques(planted)
	if err != nil {
		t.Fatal(err)
	}
	built, err := rebuildOnCliques(cl, 3)
	if err != nil {
		t.Fatal(err)
	}
	comp := matching.Compile(built.Schedule)
	for u := 0; u < 8; u++ {
		// Intra: circuits to every clique peer.
		for _, v := range cl.Members(cl.CliqueOf(u)) {
			if v != u && !comp.HasCircuit(u, v) {
				t.Fatalf("missing intra circuit %d->%d", u, v)
			}
		}
	}
	router := routing.NewSORN(built)
	tm, _ := workload.Locality(cl, 0.5)
	if _, err := fluid.Solve(built.Schedule, router, tm); err != nil {
		t.Fatalf("relabeled schedule unroutable: %v", err)
	}
}
