package controlplane

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/workload"
)

func newResilient(t *testing.T) (*Resilient, *schedule.Cliques) {
	t.Helper()
	c, err := NewController(32, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := NewResilient(c)
	cl, err := schedule.EqualCliques(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	return r, cl
}

func observeLocality(t *testing.T, r *Resilient, cl *schedule.Cliques, x float64) {
	t.Helper()
	tm, err := workload.Locality(cl, x)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.C.Observe(tm); err != nil {
		t.Fatal(err)
	}
}

func TestResilientFallsBackWithoutObservations(t *testing.T) {
	r, _ := newResilient(t)
	d, err := r.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Degraded || d.Reason != "no_observations" {
		t.Fatalf("decision = %+v, want degraded with no_observations", d)
	}
	if !d.Changed {
		t.Fatal("first fallback must install a schedule")
	}
	if d.Plan.Built == nil || r.C.Current() != d.Plan.Built {
		t.Fatal("fallback schedule not installed")
	}
	// Still degraded next epoch, but the fallback is already installed.
	d2, err := r.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Degraded || d2.Changed {
		t.Fatalf("second epoch = %+v, want degraded and unchanged", d2)
	}
}

func TestResilientStaleThenRecovers(t *testing.T) {
	r, cl := newResilient(t)
	r.StaleEpochs = 2
	r.RecoverAfter = 3

	observeLocality(t, r, cl, 0.5)
	d, err := r.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if d.Degraded {
		t.Fatalf("healthy first epoch degraded: %+v", d)
	}
	normalPlan := d.Plan

	// No new observations: after StaleEpochs quiet epochs the estimate
	// goes stale and the controller retreats.
	sawFallback := false
	for i := 0; i < 4; i++ {
		d, err = r.Decide()
		if err != nil {
			t.Fatal(err)
		}
		if d.Degraded {
			if d.Reason != "stale_estimate" {
				t.Fatalf("degraded for %q, want stale_estimate", d.Reason)
			}
			sawFallback = true
		}
	}
	if !sawFallback || !r.Degraded() {
		t.Fatal("controller never went stale-degraded")
	}
	if r.C.Current() == normalPlan.Built {
		t.Fatal("fallback schedule was not installed")
	}

	// Fresh observations resume flowing: recovery requires RecoverAfter
	// consecutive healthy epochs (hysteresis), not one.
	for i := 0; i < r.RecoverAfter-1; i++ {
		observeLocality(t, r, cl, 0.5)
		d, err = r.Decide()
		if err != nil {
			t.Fatal(err)
		}
		if !d.Degraded {
			t.Fatalf("recovered after only %d healthy epochs", i+1)
		}
	}
	observeLocality(t, r, cl, 0.5)
	d, err = r.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if d.Degraded || r.Degraded() {
		t.Fatal("controller did not recover after the hysteresis streak")
	}
	if !d.Changed {
		t.Fatal("recovery must reinstall the demand-aware schedule")
	}
}

func TestResilientHysteresisResetsOnRelapse(t *testing.T) {
	r, cl := newResilient(t)
	r.StaleEpochs = 1
	r.RecoverAfter = 3

	// Go degraded via staleness.
	observeLocality(t, r, cl, 0.5)
	if _, err := r.Decide(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Decide(); err != nil {
		t.Fatal(err)
	}
	if !r.Degraded() {
		t.Fatal("setup: expected degraded")
	}
	// Two healthy epochs, then a relapse: the streak must reset.
	for i := 0; i < 2; i++ {
		observeLocality(t, r, cl, 0.5)
		if _, err := r.Decide(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Decide(); err != nil { // stale again
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		observeLocality(t, r, cl, 0.5)
		d, err := r.Decide()
		if err != nil {
			t.Fatal(err)
		}
		if !d.Degraded {
			t.Fatal("relapse did not reset the recovery streak")
		}
	}
}

func TestResilientRejectsLocalityBlowup(t *testing.T) {
	r, cl := newResilient(t)
	r.XMax = 0.9
	observeLocality(t, r, cl, 0.99)
	d, err := r.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Degraded || d.Reason != "locality_blowup" {
		t.Fatalf("decision = %+v, want degraded with locality_blowup", d)
	}
}

func TestResilientBacksOffOnPlanErrors(t *testing.T) {
	r, cl := newResilient(t)
	r.StaleEpochs = 1 << 30 // staleness out of the picture
	r.MaxBackoff = 4
	observeLocality(t, r, cl, 0.5)
	r.C.MaxQ = 0 // every PlanNext now fails (degenerate q rejected)

	ob := obs.New(obs.Options{})
	r.C.Obs = ob

	// First failing epoch: fallback + plan_error with 1-epoch backoff.
	d, err := r.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Degraded || !strings.HasPrefix(d.Reason, "plan_error") {
		t.Fatalf("decision = %+v, want plan_error degradation", d)
	}
	// Drive many epochs; count actual probe attempts via plan_error
	// events. Exponential backoff (1,2,4,4,…) must keep attempts well
	// below the epoch count.
	for i := 0; i < 20; i++ {
		if _, err := r.Decide(); err != nil {
			t.Fatal(err)
		}
	}
	attempts := 0
	var delays []float64
	for _, e := range ob.Events() {
		if e.Type == obs.EvPlanError {
			attempts++
			delays = append(delays, e.Val)
		}
	}
	if attempts == 0 || attempts > 8 {
		t.Fatalf("got %d probe attempts over 21 epochs, want backoff-bounded (1..8]", attempts)
	}
	for i, v := range delays {
		if v > float64(r.MaxBackoff) {
			t.Fatalf("delay %f exceeds MaxBackoff %d", v, r.MaxBackoff)
		}
		if i > 0 && v < delays[i-1] && delays[i-1] < float64(r.MaxBackoff) {
			t.Fatalf("backoff shrank before hitting the cap: %v", delays)
		}
	}

	// Repair the planner: backoff drains, probes resume, and the
	// hysteresis eventually recovers.
	r.C.MaxQ = 16
	recovered := false
	for i := 0; i < 3*(r.RecoverAfter+r.MaxBackoff); i++ {
		observeLocality(t, r, cl, 0.5)
		d, err := r.Decide()
		if err != nil {
			t.Fatal(err)
		}
		if !d.Degraded {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("controller never recovered after the planner was fixed")
	}
}

func TestResilientEmitsTransitionEvents(t *testing.T) {
	r, cl := newResilient(t)
	r.StaleEpochs = 1
	r.RecoverAfter = 2
	ob := obs.New(obs.Options{})
	r.C.Obs = ob

	observeLocality(t, r, cl, 0.5)
	if _, err := r.Decide(); err != nil { // healthy
		t.Fatal(err)
	}
	if _, err := r.Decide(); err != nil { // stale -> fallback
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // healthy streak -> recover
		observeLocality(t, r, cl, 0.5)
		if _, err := r.Decide(); err != nil {
			t.Fatal(err)
		}
	}
	var sawFallback, sawRecover bool
	for _, e := range ob.Events() {
		switch e.Type {
		case obs.EvFallback:
			sawFallback = true
			if e.Note != "stale_estimate" {
				t.Fatalf("fallback note %q, want stale_estimate", e.Note)
			}
		case obs.EvRecover:
			sawRecover = true
		}
	}
	if !sawFallback || !sawRecover {
		t.Fatalf("events missing: fallback=%v recover=%v", sawFallback, sawRecover)
	}
}
