// Package controlplane implements the logically centralized control loop
// that makes the network *semi*-oblivious (paper §5): it observes
// aggregated, clique-level traffic (the macro-patterns of §3 — smoothed
// with an EWMA since they are stable over minutes to hours), estimates the
// locality ratio, chooses the throughput-optimal oversubscription
// q* = 2/(1−x), optionally re-clusters nodes whose affinity has shifted,
// and synthesizes the next circuit schedule. It never reacts to
// micro-scale demand; individual flows stay load-balanced obliviously.
package controlplane

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/ocs"
	"repro/internal/schedule"
	"repro/internal/workload"
)

// Estimator smooths observed traffic matrices into the aggregate view the
// control plane plans against.
type Estimator struct {
	n     int
	alpha float64 // EWMA weight of the newest observation
	ewma  *workload.Matrix
	obs   int
}

// NewEstimator creates an estimator over n nodes. alpha in (0, 1].
func NewEstimator(n int, alpha float64) (*Estimator, error) {
	// NaN fails every ordered comparison, so `<= 0 || > 1` alone would
	// accept it — and a NaN alpha poisons the whole EWMA on the first
	// Observe. Reject it explicitly.
	if math.IsNaN(alpha) || alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("controlplane: EWMA alpha %f outside (0,1]", alpha)
	}
	return &Estimator{n: n, alpha: alpha}, nil
}

// Observe folds one measured traffic matrix into the estimate.
func (e *Estimator) Observe(tm *workload.Matrix) error {
	if tm.N != e.n {
		return fmt.Errorf("controlplane: observation over %d nodes, estimator over %d", tm.N, e.n)
	}
	if err := tm.Validate(); err != nil {
		return err
	}
	if e.ewma == nil {
		e.ewma = tm.Clone()
		e.obs = 1
		return nil
	}
	for s := 0; s < e.n; s++ {
		for d := 0; d < e.n; d++ {
			e.ewma.Rates[s][d] = (1-e.alpha)*e.ewma.Rates[s][d] + e.alpha*tm.Rates[s][d]
		}
	}
	e.obs++
	return nil
}

// Estimate returns a read-only view of the smoothed matrix (nil before
// any observation). The view stays live — subsequent Observes update it
// in place — and must not be mutated by callers; use EstimateClone for a
// snapshot. It used to clone: PlanNext reads the estimate three times
// per epoch (existence check, locality, re-clustering affinity), which
// made the replanning loop allocate three N×N matrices per decision for
// no reason.
//
//sornlint:hotpath -- replanning-loop read path; must not allocate
func (e *Estimator) Estimate() *workload.Matrix {
	return e.ewma
}

// EstimateClone returns an independent snapshot of the smoothed matrix
// (nil before any observation), for callers that need to hold or mutate
// the estimate across further observations.
func (e *Estimator) EstimateClone() *workload.Matrix {
	if e.ewma == nil {
		return nil
	}
	return e.ewma.Clone()
}

// Observations returns how many matrices have been folded in.
func (e *Estimator) Observations() int { return e.obs }

// EstimateLocality returns the intra-clique fraction of the smoothed
// estimate under a partition.
func (e *Estimator) EstimateLocality(cl *schedule.Cliques) (float64, error) {
	if e.ewma == nil {
		return 0, fmt.Errorf("controlplane: no observations yet")
	}
	return e.ewma.IntraFraction(cl), nil
}

// Plan is one control-loop decision: the clique structure and
// oversubscription for the next epoch.
type Plan struct {
	Cliques    *schedule.Cliques
	X          float64 // estimated locality under those cliques
	Q          float64 // chosen oversubscription (clamped q*)
	PredictedR float64 // predicted worst-case throughput at Q
	Built      *schedule.SORN
	Update     *ocs.Update // nil until applied against a previous schedule
}

// Controller runs the periodic adaptation loop.
type Controller struct {
	n       int
	nc      int
	est     *Estimator
	current *schedule.SORN
	// MaxQ clamps the oversubscription: q* diverges as x→1, but real
	// schedules need at least one inter-clique slot per period.
	MaxQ float64
	// Recluster enables re-assigning nodes to cliques from the estimated
	// affinity (greedy aggregation); when false, the initial equal
	// partition is kept and only q is rebalanced (drain-free updates).
	Recluster bool
	// Obs, when non-nil, records each planning decision (estimated x,
	// chosen q*, clique count, predicted throughput) as a replan event.
	Obs *obs.Observer

	epoch int64 // planning decisions made, for event ordinals
}

// NewController creates a controller for n nodes in nc cliques.
func NewController(n, nc int, alpha float64) (*Controller, error) {
	est, err := NewEstimator(n, alpha)
	if err != nil {
		return nil, err
	}
	if nc < 1 || n%nc != 0 {
		return nil, fmt.Errorf("controlplane: cannot run %d nodes as %d cliques", n, nc)
	}
	return &Controller{n: n, nc: nc, est: est, MaxQ: 16}, nil
}

// Observe forwards a measurement to the estimator.
func (c *Controller) Observe(tm *workload.Matrix) error { return c.est.Observe(tm) }

// Current returns the schedule from the last applied plan (nil initially).
func (c *Controller) Current() *schedule.SORN { return c.current }

// PlanNext computes the next epoch's plan from the current estimate.
func (c *Controller) PlanNext() (*Plan, error) {
	if c.est.Estimate() == nil {
		return nil, fmt.Errorf("controlplane: cannot plan without observations")
	}
	var cl *schedule.Cliques
	var err error
	if c.Recluster {
		cl, err = c.recluster()
	} else if c.current != nil {
		cl = c.current.Cliques
	} else {
		cl, err = schedule.EqualCliques(c.n, c.nc)
	}
	if err != nil {
		return nil, err
	}
	x := c.est.Estimate().IntraFraction(cl)
	// A corrupt estimate (NaN/Inf locality) or a divergent q* (x→1 with
	// no clamp, or a misconfigured MaxQ) must surface as an error here,
	// not as a degenerate schedule downstream: BuildSORN would happily
	// round a non-finite or non-positive q into a period with no
	// inter-clique slots, silently forfeiting the oblivious guarantee.
	if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 || x > 1 {
		return nil, fmt.Errorf("controlplane: estimated locality %f outside [0,1]", x)
	}
	q := model.SORNQ(x)
	if q > c.MaxQ {
		q = c.MaxQ
	}
	if math.IsNaN(q) || math.IsInf(q, 0) || q <= 0 {
		return nil, fmt.Errorf("controlplane: planned q %f not finite and positive (x=%f, MaxQ=%f)", q, x, c.MaxQ)
	}
	// BuildSORN lays out contiguous equal cliques; rebuildOnCliques maps
	// that construction onto the planned partition by relabeling nodes
	// (the identity for the initial contiguous partition).
	built, err := rebuildOnCliques(cl, q)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Cliques:    cl,
		X:          x,
		Q:          built.RealizedQ,
		PredictedR: model.SORNThroughputAtQ(x, built.RealizedQ),
		Built:      built,
	}
	c.epoch++
	if c.Obs != nil {
		c.Obs.Emit(obs.Event{Epoch: c.epoch, Type: obs.EvReplan, Src: -1, Dst: -1,
			X: p.X, Q: p.Q, Nc: cl.NumCliques(), Val: p.PredictedR})
	}
	return p, nil
}

// Apply commits a plan, diffing against the current schedule.
func (c *Controller) Apply(p *Plan) error {
	if c.current != nil {
		u, err := ocs.PlanUpdate(c.current.Schedule, p.Built.Schedule)
		if err != nil {
			return err
		}
		p.Update = u
	}
	c.current = p.Built
	return nil
}

// recluster greedily groups nodes by estimated pairwise affinity into nc
// equal-size cliques: repeatedly seed a clique with the heaviest
// unassigned node and fill it with the unassigned nodes exchanging the
// most traffic with the clique so far.
func (c *Controller) recluster() (*schedule.Cliques, error) {
	tm := c.est.Estimate()
	k := c.n / c.nc
	assigned := make([]int, c.n)
	for i := range assigned {
		assigned[i] = -1
	}
	// Symmetric affinity.
	aff := func(a, b int) float64 { return tm.Rates[a][b] + tm.Rates[b][a] }

	// Node total volumes for seeding.
	type nv struct {
		node int
		vol  float64
	}
	vols := make([]nv, c.n)
	for i := 0; i < c.n; i++ {
		vols[i] = nv{i, tm.RowSum(i) + tm.ColSum(i)}
	}
	sort.Slice(vols, func(i, j int) bool {
		//sornlint:ignore floateq -- sort tie-break; equal keys fall through to the node id
		if vols[i].vol != vols[j].vol {
			return vols[i].vol > vols[j].vol
		}
		return vols[i].node < vols[j].node
	})

	clique := 0
	for _, seed := range vols {
		if assigned[seed.node] != -1 {
			continue
		}
		if clique >= c.nc {
			return nil, fmt.Errorf("controlplane: clustering overflow (internal error)")
		}
		members := []int{seed.node}
		assigned[seed.node] = clique
		for len(members) < k {
			best, bestAff := -1, math.Inf(-1)
			for cand := 0; cand < c.n; cand++ {
				if assigned[cand] != -1 {
					continue
				}
				a := 0.0
				for _, m := range members {
					a += aff(cand, m)
				}
				//sornlint:ignore floateq -- deterministic tie-break on identical affinities
				if a > bestAff || (a == bestAff && (best == -1 || cand < best)) {
					best, bestAff = cand, a
				}
			}
			members = append(members, best)
			assigned[best] = clique
		}
		clique++
	}
	return schedule.NewCliques(assigned)
}

// rebuildOnCliques builds a SORN schedule over an arbitrary equal-size
// partition by building on contiguous cliques and relabeling nodes.
func rebuildOnCliques(cl *schedule.Cliques, q float64) (*schedule.SORN, error) {
	k, ok := cl.Uniform()
	if !ok {
		return nil, fmt.Errorf("controlplane: reclustering produced non-uniform cliques")
	}
	n := cl.N()
	nc := cl.NumCliques()
	base, err := schedule.BuildSORN(schedule.SORNConfig{N: n, Nc: nc, Q: q})
	if err != nil {
		return nil, err
	}
	// contiguous id for node v = clique*k + localIndex; invert it.
	toReal := make([]int, n) // contiguous -> real
	for v := 0; v < n; v++ {
		toReal[cl.CliqueOf(v)*k+cl.LocalIndex(v)] = v
	}
	fromReal := make([]int, n)
	for c, r := range toReal {
		fromReal[r] = c
	}
	relabeled := base.Schedule.Clone()
	for t, m := range base.Schedule.Slots {
		for contig, dstContig := range m {
			relabeled.Slots[t][toReal[contig]] = toReal[dstContig]
		}
	}
	if err := relabeled.Validate(); err != nil {
		return nil, fmt.Errorf("controlplane: relabeled schedule invalid: %w", err)
	}
	return &schedule.SORN{
		Config:    base.Config,
		Cliques:   cl,
		Schedule:  relabeled,
		RealizedQ: base.RealizedQ,
		WIntra:    base.WIntra,
		WInter:    base.WInter,
	}, nil
}
