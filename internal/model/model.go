// Package model implements the paper's closed-form latency/throughput
// analysis (§4 and Table 1) for every system it compares:
//
//   - 1D optimal ORN (Sirius-like flat round robin)
//   - h-dimensional optimal ORN
//   - Opera (expander short-flow paths + slow-rotation bulk VLB)
//   - SORN at a given clique count and locality ratio
//
// Latency is "intrinsic latency" δm — the maximum number of circuits a
// packet may need to cycle through across all its hops — converted to
// wall-clock time as δm·slot/uplinks + hops·propagation, which reproduces
// every minimum-latency entry of Table 1.
package model

import (
	"fmt"
	"math"
	"math/big"
)

// Params are the deployment parameters shared by all Table 1 rows.
type Params struct {
	N       int     // number of nodes (racks)
	Uplinks int     // parallel uplinks per node (schedule planes)
	SlotNS  float64 // time-slot duration, ns
	PropNS  float64 // per-hop propagation delay, ns
}

// Table1Params returns the paper's Table 1 deployment: a 4096-rack DCN,
// 16 uplinks per rack into 256-port AWGRs, 100 ns slots, 500 ns/hop
// propagation.
func Table1Params() Params {
	return Params{N: 4096, Uplinks: 16, SlotNS: 100, PropNS: 500}
}

// Row is one line of Table 1.
type Row struct {
	System  string
	Variant string // "intra-clique", "inter-clique", "short flows", "bulk"

	MaxHops      int
	DeltaM       float64 // intrinsic latency in circuits (pre-rounding)
	MinLatencyNS float64 // δm·slot/uplinks + hops·prop
	Throughput   float64 // worst-case throughput fraction
	BWCost       float64 // normalized bandwidth cost (≈ mean hop count)

	// deltaMExact, when set by a constructor in this package, is the
	// exact rational value of DeltaM (q and x interpreted as the
	// rationals they were intended to be, e.g. x = 0.56 as 14/25).
	// DeltaMSlots ceils this instead of the float when available.
	deltaMExact *big.Rat
}

// DeltaMSlots returns δm rounded up to whole circuits, as Table 1 prints.
// Rows built by this package carry δm as an exact rational and the
// ceiling is exact integer arithmetic; rows without one fall back to a
// checked float ceiling that absorbs only ulp-scale error below an
// integer (replacing the old fixed Ceil(δm − 1e-9) fudge, which silently
// rounded any δm within 1e-9 above an integer back down).
func (r Row) DeltaMSlots() int {
	if r.deltaMExact != nil {
		return ratCeil(r.deltaMExact)
	}
	return ceilChecked(r.DeltaM)
}

// DeltaMExact returns the exact rational δm when the row was built by a
// constructor in this package (and the inputs admit one), or false.
func (r Row) DeltaMExact() (*big.Rat, bool) {
	if r.deltaMExact == nil {
		return nil, false
	}
	return new(big.Rat).Set(r.deltaMExact), true
}

// ratCeil returns ⌈v⌉ for a rational v by exact integer division.
func ratCeil(v *big.Rat) int {
	q, m := new(big.Int).DivMod(v.Num(), v.Denom(), new(big.Int))
	if m.Sign() != 0 && v.Sign() > 0 {
		q.Add(q, big.NewInt(1))
	}
	return int(q.Int64())
}

// ceilChecked is the float fallback: a plain ceiling, except that a
// value within a few ulps of an integer (on either side) is treated as
// that integer — float round-off from the δm formulas, not a genuine
// fractional circuit. The tolerance is relative (ulp-scaled), unlike
// the old absolute 1e-9 which both missed large-magnitude round-off and
// swallowed genuine sub-1e-9 fractions near integers.
func ceilChecked(dm float64) int {
	nearest := math.Round(dm)
	if diff := math.Abs(dm - nearest); diff > 0 && diff <= 4*ulpAround(dm) {
		return int(nearest)
	}
	return int(math.Ceil(dm))
}

// ulpAround returns the unit-in-last-place spacing at |v|, with a floor
// of the spacing at 1 so values near zero still get a sane tolerance.
func ulpAround(v float64) float64 {
	a := math.Abs(v)
	if a < 1 {
		a = 1
	}
	return math.Nextafter(a, math.Inf(1)) - a
}

// RatFromFloat recovers the simple rational a float64 was rounded from:
// the first continued-fraction convergent of v whose float64 quotient
// round-trips to exactly v, with denominator capped at 2^26 (below that
// cap distinct rationals are more than one ulp apart on [0,1]-scale
// magnitudes, so the recovered rational is unique). Returns false when v
// is not finite or no small rational round-trips — callers then either
// keep the float path or use big.Rat.SetFloat64 (the exact binary
// expansion) depending on which semantics they want.
func RatFromFloat(v float64) (*big.Rat, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil, false
	}
	const maxDen = 1 << 26
	neg := v < 0
	x := math.Abs(v)
	if x > 1<<30 {
		return nil, false
	}
	// Convergents h_i/k_i of the continued fraction of x:
	// h_i = a_i·h_{i−1} + h_{i−2}, same for k, seeded h_{−1}=1, h_{−2}=0,
	// k_{−1}=0, k_{−2}=1.
	h1, h0 := int64(1), int64(0)
	k1, k0 := int64(0), int64(1)
	rem := x
	for i := 0; i < 64; i++ {
		a := math.Floor(rem)
		if a > 1<<30 {
			// A term this large either is the integer part of an
			// out-of-scope value or would blow the denominator cap.
			return nil, false
		}
		ai := int64(a)
		h := ai*h1 + h0
		k := ai*k1 + k0
		if k > maxDen {
			return nil, false
		}
		if float64(h)/float64(k) == x { //sornlint:ignore floateq -- exact round-trip is the acceptance test
			if neg {
				h = -h
			}
			return big.NewRat(h, k), true
		}
		h0, h1 = h1, h
		k0, k1 = k1, k
		frac := rem - a
		//sornlint:ignore floateq -- exact termination of the expansion
		if frac == 0 {
			return nil, false
		}
		rem = 1 / frac
	}
	return nil, false
}

// MinLatencyMicros returns the minimum worst-case latency in µs.
func (r Row) MinLatencyMicros() float64 { return r.MinLatencyNS / 1000 }

func (p Params) latency(deltaM float64, hops int, slotNS float64) float64 {
	return deltaM*slotNS/float64(p.Uplinks) + float64(hops)*p.PropNS
}

// ORN1D models the flat round-robin design (Sirius [5]): 2-hop VLB,
// δm = N−1, worst-case throughput 50%, bandwidth cost 2x.
func ORN1D(p Params) Row {
	dm := float64(p.N - 1)
	return Row{
		System:       "Optimal ORN 1D (Sirius)",
		MaxHops:      2,
		DeltaM:       dm,
		MinLatencyNS: p.latency(dm, 2, p.SlotNS),
		Throughput:   0.5,
		BWCost:       2,
		deltaMExact:  big.NewRat(int64(p.N-1), 1),
	}
}

// ORN models the h-dimensional optimal ORN [4]: 2h-hop routing,
// δm = 2h(N^(1/h) − 1), worst-case throughput 1/2h, bandwidth cost 2h.
func ORN(p Params, h int) (Row, error) {
	if h < 1 {
		return Row{}, fmt.Errorf("model: ORN dimension must be >= 1, got %d", h)
	}
	a := math.Pow(float64(p.N), 1/float64(h))
	dm := 2 * float64(h) * (a - 1)
	row := Row{
		System:       fmt.Sprintf("Optimal ORN %dD", h),
		MaxHops:      2 * h,
		DeltaM:       dm,
		MinLatencyNS: p.latency(dm, 2*h, p.SlotNS),
		Throughput:   1 / (2 * float64(h)),
		BWCost:       2 * float64(h),
	}
	// When N is a perfect h-th power (every deployed ORN), δm is the
	// integer 2h(a−1) — no float root extraction in the slot count.
	if ai, ok := intRoot(p.N, h); ok {
		row.deltaMExact = big.NewRat(int64(2*h*(ai-1)), 1)
	}
	return row, nil
}

// intRoot returns the exact integer h-th root of n, when one exists.
func intRoot(n, h int) (int, bool) {
	if n < 1 || h < 1 {
		return 0, false
	}
	a := int(math.Round(math.Pow(float64(n), 1/float64(h))))
	for _, cand := range []int{a - 1, a, a + 1} {
		if cand < 1 {
			continue
		}
		p := 1
		for i := 0; i < h; i++ {
			p *= cand
		}
		if p == n {
			return cand, true
		}
	}
	return 0, false
}

// OperaParams carry Opera's [18] deployment assumptions as used in
// Table 1: 90 µs time slots (needed to route short flows over fixed
// topologies) and the throughput/bandwidth-cost figures the paper quotes
// from the Opera design (31.25%, 3.2x).
type OperaParams struct {
	SlotNS     float64 // Opera's much longer slot
	Throughput float64
	BWCost     float64
	ShortHops  int // expander path budget for latency-sensitive traffic
}

// DefaultOperaParams returns the Table 1 assumptions.
func DefaultOperaParams() OperaParams {
	return OperaParams{SlotNS: 90_000, Throughput: 0.3125, BWCost: 3.2, ShortHops: 4}
}

// Opera returns the two Opera rows: short flows traverse up to ShortHops
// expander hops with zero intrinsic wait (the expander is always
// connected), bulk traffic uses 2-hop VLB over the slow rotation with
// δm = N−1 epochs of the long slot.
func Opera(p Params, op OperaParams) []Row {
	bulkDM := float64(p.N - 1)
	return []Row{
		{
			System:       "Opera",
			Variant:      "short flows",
			MaxHops:      op.ShortHops,
			DeltaM:       0,
			MinLatencyNS: p.latency(0, op.ShortHops, op.SlotNS),
			Throughput:   op.Throughput,
			BWCost:       op.BWCost,
			deltaMExact:  big.NewRat(0, 1),
		},
		{
			System:       "Opera",
			Variant:      "bulk",
			MaxHops:      2,
			DeltaM:       bulkDM,
			MinLatencyNS: p.latency(bulkDM, 2, op.SlotNS),
			Throughput:   op.Throughput,
			BWCost:       op.BWCost,
			deltaMExact:  big.NewRat(int64(p.N-1), 1),
		},
	}
}

// SORNParams describe a semi-oblivious design point.
type SORNParams struct {
	Nc int     // number of cliques (equal size N/Nc)
	X  float64 // intra-clique fraction of demand (locality ratio)

	// TableVariant selects the inter-clique δm formula. The paper's text
	// (§4, "Latency") states δm = (q+1)(Nc−1) + (q+1)/q·(N/Nc−1), but the
	// numbers printed in Table 1 (364 and 296) are only consistent with
	// q·(Nc−1) + (q+1)/q·(N/Nc−1). True reproduces the printed table.
	TableVariant bool
}

// SORNQ returns the throughput-optimal oversubscription q* = 2/(1−x).
// q* diverges as x→1 and SORNQ(1) is +Inf by design — callers that need
// a buildable schedule must use SORNQClamped, which is finite over the
// whole domain. NaN is rejected like any other out-of-domain input (a
// NaN locality ratio means the estimate is corrupt, and NaN would
// otherwise slide through every range check unnoticed).
func SORNQ(x float64) float64 {
	if math.IsNaN(x) || x < 0 || x > 1 {
		panic(fmt.Sprintf("model: locality ratio %f outside [0,1]", x))
	}
	//sornlint:ignore floateq -- x = 1 exactly is the documented divergence point
	if x == 1 {
		return math.Inf(1)
	}
	return 2 / (1 - x)
}

// SORNQClamped returns q* clamped to at most maxQ, so the result is
// finite and positive for every x in [0,1] — the form schedule builders
// need (q* = +Inf at x = 1 would mean a schedule with no inter-clique
// slots at all, which forfeits the oblivious worst-case guarantee).
// maxQ must be positive and finite.
func SORNQClamped(x, maxQ float64) float64 {
	if math.IsNaN(maxQ) || math.IsInf(maxQ, 0) || maxQ <= 0 {
		panic(fmt.Sprintf("model: q clamp %f must be positive and finite", maxQ))
	}
	q := SORNQ(x)
	if q > maxQ {
		return maxQ
	}
	return q
}

// SORNThroughput returns the worst-case throughput r = 1/(3−x) at q*.
func SORNThroughput(x float64) float64 {
	if x < 0 || x > 1 {
		panic(fmt.Sprintf("model: locality ratio %f outside [0,1]", x))
	}
	return 1 / (3 - x)
}

// SORNThroughputAtQ returns the worst-case throughput for an arbitrary
// oversubscription q (not necessarily optimal):
// r = min( q/(2(q+1)), 1/((1−x)(q+1)) )  — intra- vs inter-link bound.
func SORNThroughputAtQ(x, q float64) float64 {
	if q <= 0 {
		panic(fmt.Sprintf("model: q must be positive, got %f", q))
	}
	intra := q / (2 * (q + 1))
	if x >= 1 {
		return intra
	}
	inter := 1 / ((1 - x) * (q + 1))
	return math.Min(intra, inter)
}

// IntraCliqueDeltaM returns δm for intra-clique traffic:
// (q+1)/q · (N/Nc − 1) circuits.
func IntraCliqueDeltaM(n, nc int, q float64) float64 {
	k := float64(n / nc)
	return (q + 1) / q * (k - 1)
}

// InterCliqueDeltaM returns δm for inter-clique traffic per the paper's
// text formula: (q+1)(Nc−1) + (q+1)/q·(N/Nc−1).
func InterCliqueDeltaM(n, nc int, q float64) float64 {
	return (q+1)*float64(nc-1) + IntraCliqueDeltaM(n, nc, q)
}

// InterCliqueDeltaMTable returns δm per the variant Table 1 actually
// prints: q(Nc−1) + (q+1)/q·(N/Nc−1). See SORNParams.TableVariant.
func InterCliqueDeltaMTable(n, nc int, q float64) float64 {
	return q*float64(nc-1) + IntraCliqueDeltaM(n, nc, q)
}

// SORNDeltaMExact returns the exact rational intra- and inter-clique δm
// at q* = 2/(1−x), with x interpreted as the simple rational its float
// was rounded from (e.g. 0.56 as 14/25, so q* = 50/11 for Table 1).
// tableVariant selects the inter-clique formula Table 1 prints over the
// text's (see SORNParams.TableVariant). ok is false when x ≥ 1 (q*
// diverges) or the float does not recover a small rational.
func SORNDeltaMExact(n, nc int, x float64, tableVariant bool) (intra, inter *big.Rat, ok bool) {
	if nc < 1 || n%nc != 0 {
		return nil, nil, false
	}
	xr, ok := RatFromFloat(x)
	if !ok || x >= 1 || x < 0 {
		return nil, nil, false
	}
	one := big.NewRat(1, 1)
	q := new(big.Rat).Quo(big.NewRat(2, 1), new(big.Rat).Sub(one, xr)) // q* = 2/(1−x)
	k := int64(n / nc)
	// intra = (q+1)/q · (k−1)
	qp1 := new(big.Rat).Add(q, one)
	intra = new(big.Rat).Quo(qp1, q)
	intra.Mul(intra, big.NewRat(k-1, 1))
	// inter = first-term·(Nc−1) + intra, first term q (table) or q+1 (text)
	first := q
	if !tableVariant {
		first = qp1
	}
	inter = new(big.Rat).Mul(first, big.NewRat(int64(nc-1), 1))
	inter.Add(inter, intra)
	return intra, inter, true
}

// SORN returns the intra- and inter-clique rows for a SORN design point
// at the throughput-optimal q* for the given locality ratio.
func SORN(p Params, sp SORNParams) ([]Row, error) {
	if sp.Nc < 2 || p.N%sp.Nc != 0 {
		return nil, fmt.Errorf("model: invalid clique count %d for N=%d", sp.Nc, p.N)
	}
	q := SORNQ(sp.X)
	r := SORNThroughput(sp.X)
	bw := 3 - sp.X // mean hops: 2x + 3(1-x)
	intraDM := IntraCliqueDeltaM(p.N, sp.Nc, q)
	var interDM float64
	if sp.TableVariant {
		interDM = InterCliqueDeltaMTable(p.N, sp.Nc, q)
	} else {
		interDM = InterCliqueDeltaM(p.N, sp.Nc, q)
	}
	name := fmt.Sprintf("SORN Nc=%d", sp.Nc)
	rows := []Row{
		{
			System:       name,
			Variant:      "intra-clique",
			MaxHops:      2,
			DeltaM:       intraDM,
			MinLatencyNS: p.latency(intraDM, 2, p.SlotNS),
			Throughput:   r,
			BWCost:       bw,
		},
		{
			System:       name,
			Variant:      "inter-clique",
			MaxHops:      3,
			DeltaM:       interDM,
			MinLatencyNS: p.latency(interDM, 3, p.SlotNS),
			Throughput:   r,
			BWCost:       bw,
		},
	}
	if intraEx, interEx, ok := SORNDeltaMExact(p.N, sp.Nc, sp.X, sp.TableVariant); ok {
		rows[0].deltaMExact = intraEx
		rows[1].deltaMExact = interEx
	}
	return rows, nil
}

// Table1 regenerates the paper's Table 1: all systems at the paper's
// deployment parameters with locality ratio x = 0.56 (the production-trace
// median the paper assumes).
func Table1() ([]Row, error) {
	p := Table1Params()
	const x = 0.56
	rows := []Row{ORN1D(p)}
	rows = append(rows, Opera(p, DefaultOperaParams())...)
	orn2, err := ORN(p, 2)
	if err != nil {
		return nil, err
	}
	rows = append(rows, orn2)
	for _, nc := range []int{64, 32} {
		sr, err := SORN(p, SORNParams{Nc: nc, X: x, TableVariant: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, sr...)
	}
	return rows, nil
}

// SyncEfficiency models the §6 time-synchronization argument: every slot
// needs a guard interval to absorb clock skew across its synchronization
// domain, and skew grows with the domain's sync-tree depth. With a
// per-level guard g0, a domain of m nodes costs g0·log2(m) ns per slot,
// so the usable fraction of each slot is 1 − g0·log2(m)/slot (floored at
// 0). Smaller domains (SORN's cliques) keep more of the slot.
func SyncEfficiency(domainSize int, slotNS, guardPerLevelNS float64) float64 {
	if domainSize < 2 {
		return 1
	}
	guard := guardPerLevelNS * math.Log2(float64(domainSize))
	eff := 1 - guard/slotNS
	if eff < 0 {
		return 0
	}
	return eff
}

// SORNSyncEfficiency returns the capacity-weighted slot efficiency of a
// SORN: intra-clique slots (a q/(q+1) share) synchronize only within the
// clique of N/Nc nodes, while inter-clique slots need the global domain.
// A flat 1D ORN pays the global guard on every slot.
func SORNSyncEfficiency(n, nc int, q, slotNS, guardPerLevelNS float64) float64 {
	intra := SyncEfficiency(n/nc, slotNS, guardPerLevelNS)
	inter := SyncEfficiency(n, slotNS, guardPerLevelNS)
	return q/(q+1)*intra + 1/(q+1)*inter
}
