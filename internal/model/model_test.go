package model

import (
	"math"
	"testing"
	"testing/quick"
)

// approx asserts relative closeness.
func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestTable1ORN1DRow(t *testing.T) {
	r := ORN1D(Table1Params())
	if r.MaxHops != 2 || r.DeltaMSlots() != 4095 {
		t.Fatalf("hops=%d δm=%d", r.MaxHops, r.DeltaMSlots())
	}
	approx(t, "1D min latency µs", r.MinLatencyMicros(), 26.59, 0.01)
	approx(t, "1D throughput", r.Throughput, 0.5, 0)
	approx(t, "1D bw cost", r.BWCost, 2, 0)
}

func TestTable1ORN2DRow(t *testing.T) {
	r, err := ORN(Table1Params(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxHops != 4 || r.DeltaMSlots() != 252 {
		t.Fatalf("hops=%d δm=%d", r.MaxHops, r.DeltaMSlots())
	}
	approx(t, "2D min latency µs", r.MinLatencyMicros(), 3.575, 0.01)
	approx(t, "2D throughput", r.Throughput, 0.25, 0)
	approx(t, "2D bw cost", r.BWCost, 4, 0)
}

func TestTable1OperaRows(t *testing.T) {
	rows := Opera(Table1Params(), DefaultOperaParams())
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	short, bulk := rows[0], rows[1]
	if short.MaxHops != 4 || short.DeltaMSlots() != 0 {
		t.Fatalf("short hops=%d δm=%d", short.MaxHops, short.DeltaMSlots())
	}
	approx(t, "opera short latency µs", short.MinLatencyMicros(), 2.0, 1e-9)
	if bulk.MaxHops != 2 || bulk.DeltaMSlots() != 4095 {
		t.Fatalf("bulk hops=%d δm=%d", bulk.MaxHops, bulk.DeltaMSlots())
	}
	// Paper prints 23,034 µs, omitting the (negligible) 1 µs propagation.
	approx(t, "opera bulk latency µs", bulk.MinLatencyMicros(), 23035.4, 0.1)
	approx(t, "opera throughput", bulk.Throughput, 0.3125, 0)
	approx(t, "opera bw cost", bulk.BWCost, 3.2, 0)
}

func TestTable1SORNRows(t *testing.T) {
	p := Table1Params()
	cases := []struct {
		nc                     int
		intraDM, interDM       int
		intraLatUS, interLatUS float64
	}{
		{64, 77, 364, 1.48, 3.78},
		{32, 155, 296, 1.97, 3.35},
	}
	for _, c := range cases {
		rows, err := SORN(p, SORNParams{Nc: c.nc, X: 0.56, TableVariant: true})
		if err != nil {
			t.Fatal(err)
		}
		intra, inter := rows[0], rows[1]
		if intra.MaxHops != 2 || inter.MaxHops != 3 {
			t.Fatalf("Nc=%d hops %d/%d", c.nc, intra.MaxHops, inter.MaxHops)
		}
		if intra.DeltaMSlots() != c.intraDM {
			t.Errorf("Nc=%d intra δm = %d, want %d", c.nc, intra.DeltaMSlots(), c.intraDM)
		}
		if inter.DeltaMSlots() != c.interDM {
			t.Errorf("Nc=%d inter δm = %d, want %d", c.nc, inter.DeltaMSlots(), c.interDM)
		}
		approx(t, "intra latency", intra.MinLatencyMicros(), c.intraLatUS, 0.01)
		approx(t, "inter latency", inter.MinLatencyMicros(), c.interLatUS, 0.01)
		approx(t, "throughput", intra.Throughput, 0.4098, 0.0001)
		approx(t, "bw cost", intra.BWCost, 2.44, 1e-9)
	}
}

func TestSORNTextVsTableVariant(t *testing.T) {
	// Document the paper's internal inconsistency: text formula gives a
	// larger inter-clique δm than the printed table.
	q := SORNQ(0.56)
	text := InterCliqueDeltaM(4096, 64, q)
	table := InterCliqueDeltaMTable(4096, 64, q)
	if text <= table {
		t.Fatalf("text δm %f should exceed table δm %f", text, table)
	}
	approx(t, "text inter δm", text, (q+1)*63+(q+1)/q*63, 1e-9)
	if int(math.Ceil(table-1e-9)) != 364 {
		t.Fatalf("table δm = %f, should ceil to 364", table)
	}
}

func TestSORNQAndThroughput(t *testing.T) {
	approx(t, "q*(0.56)", SORNQ(0.56), 2/0.44, 1e-12)
	approx(t, "r(0.56)", SORNThroughput(0.56), 1/2.44, 1e-12)
	approx(t, "r(0)", SORNThroughput(0), 1.0/3, 1e-12)
	approx(t, "r(1)", SORNThroughput(1), 0.5, 1e-12)
	if !math.IsInf(SORNQ(1), 1) {
		t.Fatal("q*(1) should be +Inf")
	}
	for name, x := range map[string]float64{"-1": -1, "NaN": math.NaN(), "+Inf": math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SORNQ(%s) did not panic", name)
				}
			}()
			SORNQ(x)
		}()
	}
}

func TestSORNQClamped(t *testing.T) {
	// Below the clamp it is exactly q*; above, exactly the clamp — and
	// finite even at the x=1 divergence point.
	approx(t, "clamped q*(0.5)", SORNQClamped(0.5, 16), SORNQ(0.5), 1e-12)
	approx(t, "clamped q*(0.99)", SORNQClamped(0.99, 16), 16, 1e-12)
	approx(t, "clamped q*(1)", SORNQClamped(1, 16), 16, 1e-12)
	for name, maxQ := range map[string]float64{"0": 0, "-1": -1, "NaN": math.NaN(), "+Inf": math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SORNQClamped with maxQ=%s did not panic", name)
				}
			}()
			SORNQClamped(0.5, maxQ)
		}()
	}
}

func TestSORNThroughputAtQOptimality(t *testing.T) {
	// r is maximized at q* = 2/(1-x): property test over x and q.
	if err := quick.Check(func(xi, qi uint8) bool {
		x := float64(xi%100) / 100
		qStar := SORNQ(x)
		rStar := SORNThroughputAtQ(x, qStar)
		q := 0.1 + float64(qi)
		return SORNThroughputAtQ(x, q) <= rStar+1e-12
	}, nil); err != nil {
		t.Error(err)
	}
	// At q*, r equals 1/(3-x).
	for _, x := range []float64{0, 0.25, 0.56, 0.9} {
		approx(t, "r at q*", SORNThroughputAtQ(x, SORNQ(x)), SORNThroughput(x), 1e-12)
	}
}

func TestSORNThroughputAtQEdges(t *testing.T) {
	// x = 1: inter bound vanishes, only the intra bound applies.
	approx(t, "r(1, q=8)", SORNThroughputAtQ(1, 8), 8.0/18, 1e-12)
	defer func() {
		if recover() == nil {
			t.Fatal("q<=0 did not panic")
		}
	}()
	SORNThroughputAtQ(0.5, 0)
}

func TestThroughputBounds(t *testing.T) {
	// r(x) must lie in [1/3, 1/2] and increase with x (paper §4).
	prev := 0.0
	for x := 0.0; x <= 1.0001; x += 0.01 {
		xx := math.Min(x, 1)
		r := SORNThroughput(xx)
		if r < 1.0/3-1e-12 || r > 0.5+1e-12 {
			t.Fatalf("r(%f) = %f outside [1/3, 1/2]", xx, r)
		}
		if r < prev {
			t.Fatalf("r not monotone at %f", xx)
		}
		prev = r
	}
}

func TestSORNErrors(t *testing.T) {
	p := Table1Params()
	if _, err := SORN(p, SORNParams{Nc: 1, X: 0.5}); err == nil {
		t.Error("Nc=1 accepted")
	}
	if _, err := SORN(p, SORNParams{Nc: 100, X: 0.5}); err == nil {
		t.Error("non-divisor Nc accepted")
	}
	if _, err := ORN(p, 0); err == nil {
		t.Error("h=0 accepted")
	}
}

func TestTable1Complete(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("Table 1 has %d rows, want 8", len(rows))
	}
	// Headline comparisons the paper draws (§4): SORN throughput between
	// 2D and 1D ORN; SORN intra latency below 2D ORN and Opera short.
	var orn1d, orn2d, sornIntra64 Row
	for _, r := range rows {
		switch {
		case r.System == "Optimal ORN 1D (Sirius)":
			orn1d = r
		case r.System == "Optimal ORN 2D":
			orn2d = r
		case r.System == "SORN Nc=64" && r.Variant == "intra-clique":
			sornIntra64 = r
		}
	}
	if !(sornIntra64.Throughput > orn2d.Throughput && sornIntra64.Throughput < orn1d.Throughput) {
		t.Errorf("SORN throughput %f not between 2D %f and 1D %f",
			sornIntra64.Throughput, orn2d.Throughput, orn1d.Throughput)
	}
	if sornIntra64.MinLatencyNS >= orn2d.MinLatencyNS {
		t.Errorf("SORN intra latency %f not below 2D ORN %f",
			sornIntra64.MinLatencyNS, orn2d.MinLatencyNS)
	}
	if orn1d.MinLatencyNS < 10*sornIntra64.MinLatencyNS {
		t.Errorf("SORN should beat 1D ORN latency by an order of magnitude: %f vs %f",
			sornIntra64.MinLatencyNS, orn1d.MinLatencyNS)
	}
}

func TestSyncEfficiency(t *testing.T) {
	// Degenerate domain: no guard.
	if SyncEfficiency(1, 100, 5) != 1 {
		t.Fatal("single-node domain should have no guard")
	}
	// 16-node domain, 5 ns/level, 100 ns slots: 1 - 20/100 = 0.8.
	approx(t, "eff(16)", SyncEfficiency(16, 100, 5), 0.8, 1e-12)
	// Guard exceeding the slot floors at zero.
	if SyncEfficiency(1<<30, 10, 5) != 0 {
		t.Fatal("oversized guard should floor at 0")
	}
}

func TestSORNSyncEfficiencyBeatsFlat(t *testing.T) {
	// At 4096 nodes with 100 ns slots and 4 ns/level guards, the flat
	// design pays log2(4096)=12 levels on every slot; SORN pays the
	// clique guard on its q/(q+1) intra share.
	q := SORNQ(0.56)
	sorn := SORNSyncEfficiency(4096, 64, q, 100, 4)
	flat := SyncEfficiency(4096, 100, 4)
	if sorn <= flat {
		t.Fatalf("SORN sync efficiency %f not above flat %f", sorn, flat)
	}
	// Weighted combination must sit between the intra and global values.
	intra := SyncEfficiency(64, 100, 4)
	if sorn >= intra || sorn <= flat {
		t.Fatalf("weighted efficiency %f outside (%f, %f)", sorn, flat, intra)
	}
}

func TestDeltaMSlotsExactRationalTable1(t *testing.T) {
	// Table 1's SORN rows carry δm as exact rationals: x = 0.56 is the
	// decimal 14/25, so q* = 50/11, (q+1)/q = 61/50, and for Nc=64
	// intra δm = (61/50)·63 = 3843/50. The printed slot counts follow
	// by exact integer ceiling — no epsilon anywhere.
	for _, tc := range []struct {
		nc                     int
		intraNum, intraDen     int64
		interNum, interDen     int64
		intraSlots, interSlots int
	}{
		{64, 3843, 50, 199773, 550, 77, 364},
		{32, 7747, 50, 162717, 550, 155, 296},
	} {
		rows, err := SORN(Table1Params(), SORNParams{Nc: tc.nc, X: 0.56, TableVariant: true})
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range []struct {
			num, den int64
			slots    int
		}{
			{tc.intraNum, tc.intraDen, tc.intraSlots},
			{tc.interNum, tc.interDen, tc.interSlots},
		} {
			ex, ok := rows[i].DeltaMExact()
			if !ok {
				t.Fatalf("Nc=%d row %d: no exact δm", tc.nc, i)
			}
			if ex.Num().Int64() != want.num || ex.Denom().Int64() != want.den {
				t.Errorf("Nc=%d row %d: exact δm = %s, want %d/%d", tc.nc, i, ex, want.num, want.den)
			}
			if got := rows[i].DeltaMSlots(); got != want.slots {
				t.Errorf("Nc=%d row %d: δm slots = %d, want %d", tc.nc, i, got, want.slots)
			}
		}
	}
}

func TestDeltaMSlotsIntegerBoundary(t *testing.T) {
	// x = 0.5 → q* = 4, (q+1)/q = 5/4; with cliques of 5 (k−1 = 4) the
	// intra δm is exactly the integer 5 and the slot count must be 5,
	// not 6: the ceiling sits on the boundary and only exact arithmetic
	// answers it reliably. The text-variant inter δm is (4+1)·1+5 = 10.
	p := Params{N: 10, Uplinks: 1, SlotNS: 100, PropNS: 500}
	rows, err := SORN(p, SORNParams{Nc: 2, X: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	intra, ok := rows[0].DeltaMExact()
	if !ok || !intra.IsInt() || intra.Num().Int64() != 5 {
		t.Fatalf("intra δm exact = %v (ok=%v), want integer 5", intra, ok)
	}
	if rows[0].DeltaMSlots() != 5 {
		t.Fatalf("intra δm slots = %d, want exactly 5", rows[0].DeltaMSlots())
	}
	if rows[1].DeltaMSlots() != 10 {
		t.Fatalf("inter δm slots = %d, want exactly 10", rows[1].DeltaMSlots())
	}
}

func TestCeilCheckedFallback(t *testing.T) {
	// Rows without an exact rational use the checked float ceiling:
	// ulp-scale error around an integer is absorbed, genuine fractions
	// are not. The old Ceil(δm − 1e-9) fudge wrongly rounded δm = n+1e-9
	// down to n; the relative tolerance keeps the absorption at float
	// round-off scale across magnitudes.
	for _, tc := range []struct {
		dm   float64
		want int
	}{
		{5, 5},
		{math.Nextafter(5, math.Inf(1)), 5},
		{math.Nextafter(5, math.Inf(-1)), 5},
		{5 + 1e-9, 6}, // genuine fraction: old fudge returned 5
		{4.3, 5},      // plain ceiling
		{4095, 4095},  // Table-1 scale integer
		{4095 + 1e-9, 4096},
		{0, 0},
	} {
		r := Row{DeltaM: tc.dm} // no exact rational attached
		if got := r.DeltaMSlots(); got != tc.want {
			t.Errorf("DeltaMSlots(%v) = %d, want %d", tc.dm, got, tc.want)
		}
	}
}

func TestRatFromFloat(t *testing.T) {
	for _, tc := range []struct {
		v        float64
		num, den int64
	}{
		{0.56, 14, 25},
		{1.0 / 3, 1, 3},
		{1.0 / 7, 1, 7},
		{0.25, 1, 4},
		{63.0 / 4095, 1, 65}, // (k−1)/(N−1) style uniform rate
		{0, 0, 1},
		{-0.5, -1, 2},
		{42, 42, 1},
	} {
		r, ok := RatFromFloat(tc.v)
		if !ok {
			t.Fatalf("RatFromFloat(%v): no rational recovered", tc.v)
		}
		if r.Num().Int64() != tc.num || r.Denom().Int64() != tc.den {
			t.Errorf("RatFromFloat(%v) = %s, want %d/%d", tc.v, r, tc.num, tc.den)
		}
		if f, _ := r.Float64(); f != tc.v {
			t.Errorf("RatFromFloat(%v) does not round-trip: %v", tc.v, f)
		}
	}
	for name, v := range map[string]float64{"NaN": math.NaN(), "+Inf": math.Inf(1), "-Inf": math.Inf(-1)} {
		if _, ok := RatFromFloat(v); ok {
			t.Errorf("RatFromFloat(%s) unexpectedly succeeded", name)
		}
	}
}
