package sortedmap

import (
	"reflect"
	"testing"
)

func TestKeysSorted(t *testing.T) {
	m := map[string]int{"deliver": 3, "alpha": 1, "circuit": 2, "bvn": 4}
	want := []string{"alpha", "bvn", "circuit", "deliver"}
	for i := 0; i < 50; i++ {
		if got := Keys(m); !reflect.DeepEqual(got, want) {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

func TestKeysEmptyAndNil(t *testing.T) {
	if got := Keys(map[int]int{}); len(got) != 0 {
		t.Errorf("Keys(empty) = %v, want empty", got)
	}
	if got := Keys(map[int]int(nil)); len(got) != 0 {
		t.Errorf("Keys(nil) = %v, want empty", got)
	}
}

func TestRangeOrderAndPairs(t *testing.T) {
	m := map[int]float64{7: 0.7, 1: 0.1, 3: 0.3}
	var ks []int
	var vs []float64
	Range(m, func(k int, v float64) {
		ks = append(ks, k)
		vs = append(vs, v)
	})
	if !reflect.DeepEqual(ks, []int{1, 3, 7}) {
		t.Errorf("Range keys = %v, want [1 3 7]", ks)
	}
	if !reflect.DeepEqual(vs, []float64{0.1, 0.3, 0.7}) {
		t.Errorf("Range values = %v, want [0.1 0.3 0.7]", vs)
	}
}
