// Package sortedmap provides deterministic iteration over Go maps.
//
// Go randomizes map iteration order on purpose, so any loop over a map
// that appends to a slice, accumulates floating point, or writes output
// produces run-to-run nondeterminism — which this repository cannot
// afford: every experiment must be bit-for-bit reproducible (see the
// maporder rule in internal/lint). Whenever iteration order can matter,
// range over Keys or use Range instead of ranging over the map directly.
package sortedmap

import (
	"cmp"
	"sort"
)

// Keys returns the keys of m in ascending order.
func Keys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	//sornlint:ignore maporder -- the collected keys are sorted below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Range calls fn for every entry of m in ascending key order.
func Range[K cmp.Ordered, V any](m map[K]V, fn func(K, V)) {
	for _, k := range Keys(m) {
		fn(k, m[k])
	}
}
