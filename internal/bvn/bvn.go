// Package bvn implements Sinkhorn normalization and Birkhoff–von Neumann
// decomposition for clique-level demand matrices — the machinery behind
// the paper's §5 "Expressivity" discussion: encoding non-uniform
// aggregated demand (gravity models, hot clusters) into a circuit
// schedule by expressing the inter-clique bandwidth allocation as a
// weighted sum of clique-level permutations, each of which lowers to a
// valid node-level matching.
package bvn

import (
	"fmt"
	"math"
)

// Sinkhorn scales a non-negative matrix with zero diagonal and total
// support (every off-diagonal entry positive) into a doubly stochastic
// matrix (rows and columns summing to 1) by iterative row/column
// normalization. It returns an error if the matrix shape is invalid or
// the iteration fails to converge.
func Sinkhorn(m [][]float64, iters int, tol float64) ([][]float64, error) {
	n := len(m)
	if n < 2 {
		return nil, fmt.Errorf("bvn: need at least a 2x2 matrix, got %d", n)
	}
	out := make([][]float64, n)
	for i, row := range m {
		if len(row) != n {
			return nil, fmt.Errorf("bvn: row %d has %d entries, want %d", i, len(row), n)
		}
		out[i] = make([]float64, n)
		for j, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("bvn: entry (%d,%d) = %f invalid", i, j, v)
			}
			//sornlint:ignore floateq -- validates an exact-zero diagonal
			if i == j && v != 0 {
				return nil, fmt.Errorf("bvn: nonzero diagonal at %d", i)
			}
			//sornlint:ignore floateq -- detects exactly-zero entries, not near-zero
			if i != j && v == 0 {
				return nil, fmt.Errorf("bvn: zero off-diagonal at (%d,%d); mix in a uniform floor first", i, j)
			}
			out[i][j] = v
		}
	}
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += out[i][j]
			}
			for j := 0; j < n; j++ {
				out[i][j] /= sum
			}
		}
		for j := 0; j < n; j++ {
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += out[i][j]
			}
			for i := 0; i < n; i++ {
				out[i][j] /= sum
			}
		}
		if maxRowErr(out) < tol {
			return out, nil
		}
	}
	if maxRowErr(out) < tol*10 {
		return out, nil
	}
	return nil, fmt.Errorf("bvn: Sinkhorn did not converge (row error %g)", maxRowErr(out))
}

func maxRowErr(m [][]float64) float64 {
	worst := 0.0
	for _, row := range m {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if e := math.Abs(sum - 1); e > worst {
			worst = e
		}
	}
	return worst
}

// Term is one permutation of the decomposition with its weight.
type Term struct {
	Perm   []int // Perm[i] = j means row i is matched to column j
	Weight float64
}

// Decompose performs Birkhoff–von Neumann decomposition of a doubly
// stochastic matrix: it returns permutations and positive weights whose
// weighted sum reconstructs the matrix up to the residual tolerance.
// With a zero diagonal, every permutation is a derangement. maxTerms
// bounds the number of terms (n²−2n+2 always suffices; pass 0 for that
// bound).
func Decompose(m [][]float64, maxTerms int, tol float64) ([]Term, error) {
	n := len(m)
	if e := maxRowErr(m); e > 1e-6 {
		return nil, fmt.Errorf("bvn: matrix not doubly stochastic (row error %g)", e)
	}
	if maxTerms <= 0 {
		maxTerms = n*n - 2*n + 2
	}
	// Work on a copy.
	res := make([][]float64, n)
	for i := range res {
		res[i] = append([]float64(nil), m[i]...)
	}
	var terms []Term
	remaining := 1.0
	for t := 0; t < maxTerms && remaining > tol; t++ {
		perm, ok := perfectMatching(res, tol/float64(n*n))
		if !ok {
			return nil, fmt.Errorf("bvn: no perfect matching on residual support (remaining %g)", remaining)
		}
		w := math.Inf(1)
		for i, j := range perm {
			if res[i][j] < w {
				w = res[i][j]
			}
		}
		if w <= 0 {
			break
		}
		for i, j := range perm {
			res[i][j] -= w
		}
		terms = append(terms, Term{Perm: perm, Weight: w})
		remaining -= w
	}
	if remaining > tol*10 {
		return nil, fmt.Errorf("bvn: decomposition stopped with %g weight unassigned", remaining)
	}
	return terms, nil
}

// perfectMatching finds a perfect matching on entries > eps using Kuhn's
// augmenting-path algorithm. Returns perm[i] = matched column of row i.
func perfectMatching(m [][]float64, eps float64) ([]int, bool) {
	n := len(m)
	matchCol := make([]int, n) // column -> row
	for i := range matchCol {
		matchCol[i] = -1
	}
	var try func(row int, visited []bool) bool
	try = func(row int, visited []bool) bool {
		for col := 0; col < n; col++ {
			if m[row][col] <= eps || visited[col] {
				continue
			}
			visited[col] = true
			if matchCol[col] == -1 || try(matchCol[col], visited) {
				matchCol[col] = row
				return true
			}
		}
		return false
	}
	for row := 0; row < n; row++ {
		if !try(row, make([]bool, n)) {
			return nil, false
		}
	}
	perm := make([]int, n)
	for col, row := range matchCol {
		perm[row] = col
	}
	return perm, true
}

// Reconstruct sums the terms back into a matrix (for verification).
func Reconstruct(terms []Term, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for _, t := range terms {
		for i, j := range t.Perm {
			out[i][j] += t.Weight
		}
	}
	return out
}
