package bvn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// uniformOffDiag returns the n×n matrix with 1/(n−1) off the diagonal.
func uniformOffDiag(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i != j {
				m[i][j] = 1 / float64(n-1)
			}
		}
	}
	return m
}

func TestSinkhornUniform(t *testing.T) {
	out, err := Sinkhorn(uniformOffDiag(6), 100, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		for j := range out[i] {
			want := 1.0 / 5
			if i == j {
				want = 0
			}
			if math.Abs(out[i][j]-want) > 1e-9 {
				t.Fatalf("out[%d][%d] = %f", i, j, out[i][j])
			}
		}
	}
}

func TestSinkhornSkewed(t *testing.T) {
	// Gravity-like skew: clique 0 is hot.
	n := 4
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i == j {
				continue
			}
			m[i][j] = 1
			if j == 0 {
				m[i][j] = 8
			}
		}
	}
	out, err := Sinkhorn(m, 500, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	// Rows and columns must sum to 1, diagonal stays zero.
	for i := 0; i < n; i++ {
		rs, cs := 0.0, 0.0
		for j := 0; j < n; j++ {
			rs += out[i][j]
			cs += out[j][i]
		}
		if math.Abs(rs-1) > 1e-8 || math.Abs(cs-1) > 1e-8 {
			t.Fatalf("row/col %d sums %f/%f", i, rs, cs)
		}
		if out[i][i] != 0 {
			t.Fatalf("diagonal %d became %f", i, out[i][i])
		}
	}
	// Column 0 entries remain the largest in each row (skew preserved in
	// direction, though flattened by normalization).
	for i := 1; i < n; i++ {
		for j := 1; j < n; j++ {
			if j != i && out[i][0] < out[i][j] {
				t.Fatalf("row %d lost its skew toward column 0", i)
			}
		}
	}
}

func TestSinkhornRejectsBadInput(t *testing.T) {
	if _, err := Sinkhorn([][]float64{{0}}, 10, 1e-9); err == nil {
		t.Error("1x1 accepted")
	}
	bad := uniformOffDiag(3)
	bad[0][0] = 0.5
	if _, err := Sinkhorn(bad, 10, 1e-9); err == nil {
		t.Error("nonzero diagonal accepted")
	}
	bad2 := uniformOffDiag(3)
	bad2[0][1] = 0
	if _, err := Sinkhorn(bad2, 10, 1e-9); err == nil {
		t.Error("zero off-diagonal accepted")
	}
	bad3 := uniformOffDiag(3)
	bad3[0][1] = -1
	if _, err := Sinkhorn(bad3, 10, 1e-9); err == nil {
		t.Error("negative entry accepted")
	}
	bad4 := uniformOffDiag(3)
	bad4[1] = bad4[1][:2]
	if _, err := Sinkhorn(bad4, 10, 1e-9); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestDecomposeUniform(t *testing.T) {
	ds, err := Sinkhorn(uniformOffDiag(5), 100, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	terms, err := Decompose(ds, 0, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	checkTerms(t, terms, ds)
}

func TestDecomposeRandomDS(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(6)
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
			for j := range m[i] {
				if i != j {
					m[i][j] = 0.1 + r.Float64()
				}
			}
		}
		ds, err := Sinkhorn(m, 2000, 1e-10)
		if err != nil {
			return false
		}
		terms, err := Decompose(ds, 0, 1e-8)
		if err != nil {
			return false
		}
		rec := Reconstruct(terms, n)
		for i := range ds {
			for j := range ds[i] {
				if math.Abs(rec[i][j]-ds[i][j]) > 1e-6 {
					return false
				}
			}
		}
		// All permutations are derangements (zero diagonal support).
		for _, term := range terms {
			for i, j := range term.Perm {
				if i == j {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeRejectsNonDS(t *testing.T) {
	if _, err := Decompose(uniformOffDiag(3), 0, 1e-9); err != nil {
		// uniformOffDiag IS doubly stochastic (rows sum to 1) for n=3?
		// 2 entries of 1/2 each: yes. So this must succeed.
		t.Fatalf("uniform off-diagonal should decompose: %v", err)
	}
	bad := uniformOffDiag(3)
	bad[0][1] = 0.9
	if _, err := Decompose(bad, 0, 1e-9); err == nil {
		t.Error("non-DS matrix accepted")
	}
}

func checkTerms(t *testing.T, terms []Term, want [][]float64) {
	t.Helper()
	if len(terms) == 0 {
		t.Fatal("no terms")
	}
	total := 0.0
	for _, term := range terms {
		if term.Weight <= 0 {
			t.Fatal("non-positive weight")
		}
		total += term.Weight
		seen := make([]bool, len(term.Perm))
		for i, j := range term.Perm {
			if i == j {
				t.Fatalf("term has fixed point at %d", i)
			}
			if seen[j] {
				t.Fatal("term not a permutation")
			}
			seen[j] = true
		}
	}
	if math.Abs(total-1) > 1e-8 {
		t.Fatalf("weights sum to %f", total)
	}
	rec := Reconstruct(terms, len(want))
	for i := range want {
		for j := range want[i] {
			if math.Abs(rec[i][j]-want[i][j]) > 1e-6 {
				t.Fatalf("reconstruction off at (%d,%d): %f vs %f", i, j, rec[i][j], want[i][j])
			}
		}
	}
}

func BenchmarkDecompose16(b *testing.B) {
	r := rng.New(3)
	n := 16
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i != j {
				m[i][j] = 0.1 + r.Float64()
			}
		}
	}
	ds, err := Sinkhorn(m, 2000, 1e-10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(ds, 0, 1e-8); err != nil {
			b.Fatal(err)
		}
	}
}
