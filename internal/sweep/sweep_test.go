package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/rng"
)

func TestStreamsMatchSerialSplits(t *testing.T) {
	// Point i's stream must be the i-th serial Split of the sweep seed —
	// the derivation Fig2f has always used — for every concurrency.
	const seed, points = 42, 7
	want := make([]uint64, points)
	root := rng.New(seed)
	for i := range want {
		want[i] = root.Split().Uint64()
	}
	for _, conc := range []int{1, 2, points + 3} {
		got, err := Run(Config{Concurrency: conc, Seed: seed}, points,
			func(p Point) (uint64, error) { return p.RNG.Uint64(), nil })
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("conc %d point %d drew %d, want serial-split %d", conc, i, got[i], want[i])
			}
		}
	}
}

func TestRunDeterministicAcrossConcurrency(t *testing.T) {
	run := func(conc int) []string {
		out, err := Run(Config{Concurrency: conc, Seed: 9}, 23, func(p Point) (string, error) {
			return fmt.Sprintf("%d:%d", p.Index, p.RNG.Uint64()), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, conc := range []int{0, 2, 5, 16} {
		if got := run(conc); !reflect.DeepEqual(got, serial) {
			t.Fatalf("Concurrency %d diverged from serial:\n%v\n%v", conc, got, serial)
		}
	}
}

func TestRunReportsLowestIndexedError(t *testing.T) {
	sentinel := errors.New("boom")
	var mu sync.Mutex
	ran := make(map[int]bool)
	_, err := Run(Config{Concurrency: 4, Seed: 1}, 9, func(p Point) (int, error) {
		mu.Lock()
		ran[p.Index] = true
		mu.Unlock()
		if p.Index == 6 || p.Index == 3 {
			return 0, fmt.Errorf("point %d: %w", p.Index, sentinel)
		}
		return p.Index, nil
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap the point failure", err)
	}
	if !strings.Contains(err.Error(), "point 3") {
		t.Fatalf("error %q is not the lowest-indexed failure", err)
	}
	if len(ran) != 9 {
		t.Fatalf("only %d of 9 points ran; failures must not cancel independent points", len(ran))
	}
}

func TestRunEmpty(t *testing.T) {
	out, err := Run(Config{}, 0, func(p Point) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("empty sweep: out=%v err=%v", out, err)
	}
}

func TestWorkerIndexIsDenseAndBounded(t *testing.T) {
	c := Config{Concurrency: 3}
	const points = 12
	workers, err := Run(c, points, func(p Point) (int, error) { return p.Worker, nil })
	if err != nil {
		t.Fatal(err)
	}
	max := c.Workers(points)
	for i, w := range workers {
		if w < 0 || w >= max {
			t.Fatalf("point %d ran on worker %d, outside [0,%d)", i, w, max)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	cases := []struct {
		conc, points, want int
	}{
		{1, 100, 1},
		{4, 100, 4},
		{4, 2, 2},   // capped at the point count
		{0, 1, 1},   // auto, single point
		{-1, 10, 1}, // degenerate negatives run serially
	}
	for _, c := range cases {
		if got := (Config{Concurrency: c.conc}).Workers(c.points); got != c.want {
			t.Errorf("Workers(conc=%d, points=%d) = %d, want %d", c.conc, c.points, got, c.want)
		}
	}
	if got := (Config{}).Workers(1 << 20); got != runtime.GOMAXPROCS(0) {
		t.Errorf("auto concurrency resolved to %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
}

func TestSimWorkersComposition(t *testing.T) {
	// Explicit per-sim settings always pass through; "auto" (0) demotes
	// to serial only when the sweep itself is concurrent.
	concurrent := Config{Concurrency: 4}
	serial := Config{Concurrency: 1}
	if got := concurrent.SimWorkers(10, 0); got != 1 {
		t.Errorf("auto sim workers under a concurrent sweep = %d, want 1", got)
	}
	if got := concurrent.SimWorkers(1, 0); got != 0 {
		t.Errorf("a one-point sweep is serial; auto should pass through, got %d", got)
	}
	if got := serial.SimWorkers(10, 0); got != 0 {
		t.Errorf("auto sim workers under a serial sweep = %d, want 0 (auto)", got)
	}
	for _, w := range []int{1, 3, 8} {
		if got := concurrent.SimWorkers(10, w); got != w {
			t.Errorf("explicit sim workers %d rewritten to %d", w, got)
		}
	}
}
