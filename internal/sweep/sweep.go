// Package sweep is the deterministic bounded-parallel runner behind
// every experiment-level parameter sweep (throughput vs. locality,
// q-sweeps, plane sweeps, availability runs). It replaces the two run
// shapes the experiments grew organically — one unbounded goroutine per
// point, and strictly serial loops — with a fixed worker pool whose
// results are bit-identical for every concurrency setting.
//
// The determinism contract mirrors netsim's worker sharding: Concurrency
// is purely a wall-clock knob. It holds because
//
//   - each point's random stream is one rng.Split derived *serially*
//     from the sweep seed before any worker starts, so goroutine
//     scheduling can never reorder draws;
//   - points write only their own slot of the result and error arrays,
//     merged implicitly by index;
//   - observers are per-point or the sweep is forced serial (an
//     obs.Observer serves one simulation at a time), so event streams
//     also come out in point-index order.
//
// Per-point work composes with netsim's own Workers sharding through
// SimWorkers: a concurrent sweep demotes "auto" per-sim parallelism to
// serial so k points don't oversubscribe the host with k×GOMAXPROCS
// shard goroutines.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// Config parameterizes a sweep run.
type Config struct {
	// Concurrency bounds how many points run at once: 0 picks one worker
	// per CPU (GOMAXPROCS), 1 runs points serially inline (no goroutines),
	// k runs a fixed pool of k workers. Every value yields bit-identical
	// results — see the package comment — so the choice is purely a
	// wall-clock knob, exactly like netsim's Config.Workers.
	Concurrency int
	// Seed roots the per-point rng streams. Point i's stream is the i-th
	// serial Split of rng.New(Seed), independent of worker scheduling.
	Seed uint64
}

// Workers resolves the pool size for a sweep of the given point count:
// Concurrency 0 becomes GOMAXPROCS, and the pool is capped at the point
// count (extra workers would only idle).
func (c Config) Workers(points int) int {
	w := c.Concurrency
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > points {
		w = points
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SimWorkers composes the sweep's concurrency with a per-simulation
// Workers setting. An explicit setting passes through untouched; the
// "auto" setting (0, one shard per CPU) resolves to serial when the
// sweep itself runs points concurrently, so the host runs ~one goroutine
// per CPU overall instead of points×CPUs. Both layers are bit-identical
// across worker counts, so this only shapes wall-clock, never results.
func (c Config) SimWorkers(points, simWorkers int) int {
	if simWorkers == 0 && c.Workers(points) > 1 {
		return 1
	}
	return simWorkers
}

// Point is one sweep point's execution context.
type Point struct {
	// Index is the point's position in the sweep, dense in [0, points).
	Index int
	// Worker identifies the pool worker running the point, dense in
	// [0, Workers(points)) — the key for per-worker pooled resources
	// (e.g. core.SimPool), which at most one in-flight point holds.
	Worker int
	// RNG is the point's private random stream, derived serially from
	// Config.Seed. Draw sequences depend only on the point's own code
	// path, never on scheduling.
	RNG *rng.RNG
}

// Run executes fn for points 0..points-1 on the configured pool and
// returns the per-point results in index order. Every point runs even if
// an earlier one fails (points are independent; a sweep's cost is its
// longest point, not its first error); the returned error is the
// lowest-indexed failure, and the results are discarded with it.
func Run[T any](c Config, points int, fn func(Point) (T, error)) ([]T, error) {
	if points <= 0 {
		return nil, nil
	}
	// Derive every point's stream serially before any point runs: the
	// derivation order is the point order, regardless of which worker
	// later consumes which stream.
	root := rng.New(c.Seed)
	streams := make([]*rng.RNG, points)
	for i := range streams {
		streams[i] = root.Split()
	}
	out := make([]T, points)
	errs := make([]error, points)
	workers := c.Workers(points)
	if workers == 1 {
		// Serial inline: the caller's goroutine runs every point, in
		// order, with no pool machinery at all.
		for i := 0; i < points; i++ {
			out[i], errs[i] = fn(Point{Index: i, RNG: streams[i]})
		}
	} else {
		// Dynamic dispatch over a fixed pool: workers claim the next
		// unclaimed index, so a slow point never stalls the others and
		// the assignment of points to workers affects only wall-clock.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 1; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				runWorker(w, &next, streams, out, errs, fn)
			}(w)
		}
		runWorker(0, &next, streams, out, errs, fn)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: point %d: %w", i, err)
		}
	}
	return out, nil
}

// runWorker drains points off the shared counter until none remain.
func runWorker[T any](w int, next *atomic.Int64, streams []*rng.RNG, out []T, errs []error, fn func(Point) (T, error)) {
	for {
		i := int(next.Add(1)) - 1
		if i >= len(streams) {
			return
		}
		out[i], errs[i] = fn(Point{Index: i, Worker: w, RNG: streams[i]})
	}
}
