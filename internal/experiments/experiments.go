// Package experiments implements the paper's evaluation as reusable,
// parameterized experiment runners. Each function regenerates one table,
// figure, or ablation; cmd/ binaries render the results and the root
// bench_test.go wraps them as benchmarks, so both always agree.
package experiments

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/fluid"
	"repro/internal/matching"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/schedule"
	"repro/internal/workload"
)

// Fig2fPoint is one x-value of the Figure 2(f) sweep.
type Fig2fPoint struct {
	X      float64
	Theory float64 // r = 1/(3−x)
	Fluid  float64 // exact link-load θ of the built schedule + router
	Sim    float64 // saturated 128-node packet simulation (0 if skipped)
	// Obs is the point's observability capture (slot-resolved metric
	// series and event trace); nil unless Fig2fConfig.ObsEvery is set.
	// Points run concurrently, so each gets its own Observer.
	Obs *obs.Observer
}

// Fig2fConfig parameterizes the sweep.
type Fig2fConfig struct {
	N, Nc        int
	Step         float64
	RunSim       bool
	WarmupSlots  int64
	MeasureSlots int64
	Backlog      int64
	SizeCap      int
	Seed         uint64
	// Workers is the per-simulation shard count (core.SimOptions.Workers):
	// 0 = one per available CPU, 1 = serial. Results are bit-identical
	// for every value.
	Workers int
	// ObsEvery, when positive, attaches an Observer to every simulated
	// point, snapshotting the metric series every ObsEvery slots; each
	// point's capture is returned in Fig2fPoint.Obs.
	ObsEvery int64
}

// DefaultFig2fConfig is the paper's setup: 128 nodes, 8 cliques,
// pFabric web-search traffic.
func DefaultFig2fConfig() Fig2fConfig {
	return Fig2fConfig{
		N: 128, Nc: 8, Step: 0.1, RunSim: true,
		WarmupSlots: 25000, MeasureSlots: 25000, Backlog: 4096,
		SizeCap: 1333, Seed: 42,
	}
}

// Fig2f runs the throughput-vs-locality sweep. Points are independent,
// so they run concurrently (one goroutine per x, bounded by GOMAXPROCS
// via the runtime scheduler); results are returned in x order. Each
// worker gets its own RNG stream, split off the sweep seed serially
// before any goroutine starts, so parallel and serial executions are
// bit-for-bit identical regardless of scheduling.
func Fig2f(cfg Fig2fConfig) ([]Fig2fPoint, error) {
	var xs []float64
	for x := 0.0; x <= 1.0000001; x += cfg.Step {
		if x > 1 {
			x = 1
		}
		xs = append(xs, x)
	}
	size := workload.NewCapped(workload.WebSearch(), cfg.SizeCap)
	root := rng.New(cfg.Seed)
	streams := make([]*rng.RNG, len(xs))
	for i := range streams {
		streams[i] = root.Split()
	}
	out := make([]Fig2fPoint, len(xs))
	errs := make([]error, len(xs))
	var wg sync.WaitGroup
	for i, x := range xs {
		wg.Add(1)
		go func(i int, x float64, stream *rng.RNG) {
			defer wg.Done()
			out[i], errs[i] = fig2fPoint(cfg, x, size, stream)
		}(i, x, streams[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func fig2fPoint(cfg Fig2fConfig, x float64, size workload.SizeDist, stream *rng.RNG) (Fig2fPoint, error) {
	nw, err := core.NewSORN(cfg.N, cfg.Nc, x)
	if err != nil {
		return Fig2fPoint{}, err
	}
	tm, err := nw.LocalityMatrix(x)
	if err != nil {
		return Fig2fPoint{}, err
	}
	fl, err := nw.Throughput(tm)
	if err != nil {
		return Fig2fPoint{}, err
	}
	pt := Fig2fPoint{X: x, Theory: model.SORNThroughput(x), Fluid: fl.Theta}
	if cfg.RunSim {
		if cfg.ObsEvery > 0 {
			pt.Obs = obs.New(obs.Options{MetricsEvery: cfg.ObsEvery, TraceFlows: true})
			pt.Obs.StartRun(fmt.Sprintf("x=%.2f", x))
		}
		st, err := nw.SimulateSaturated(core.SimOptions{
			Seed:          stream.Uint64(),
			WarmupSlots:   cfg.WarmupSlots,
			MeasureSlots:  cfg.MeasureSlots,
			TargetBacklog: cfg.Backlog,
			Workers:       cfg.Workers,
			Obs:           pt.Obs,
		}, tm, size)
		if err != nil {
			return Fig2fPoint{}, err
		}
		pt.Sim = st.Throughput(cfg.N)
	}
	return pt, nil
}

// MismatchPoint is one entry of the locality-mismatch ablation (A1):
// the schedule was provisioned for locality XPlanned but the offered
// traffic has XActual.
type MismatchPoint struct {
	XPlanned, XActual float64
	Model             float64 // closed-form r at (XActual, q*(XPlanned))
	Fluid             float64 // measured θ on the built schedule
}

// LocalityMismatch quantifies §6's "healthy estimation error margin":
// how much worst-case throughput degrades when the estimated locality is
// wrong. The schedule is built for xPlanned; traffic has xActual.
func LocalityMismatch(n, nc int, planned, actual []float64) ([]MismatchPoint, error) {
	var out []MismatchPoint
	for _, xp := range planned {
		nw, err := core.NewSORN(n, nc, xp)
		if err != nil {
			return nil, err
		}
		for _, xa := range actual {
			tm, err := nw.LocalityMatrix(xa)
			if err != nil {
				return nil, err
			}
			fl, err := nw.Throughput(tm)
			if err != nil {
				return nil, err
			}
			out = append(out, MismatchPoint{
				XPlanned: xp,
				XActual:  xa,
				Model:    model.SORNThroughputAtQ(xa, nw.SORN.RealizedQ),
				Fluid:    fl.Theta,
			})
		}
	}
	return out, nil
}

// QSweepPoint is one oversubscription value of ablation A2.
type QSweepPoint struct {
	Q     float64
	Model float64
	Fluid float64
}

// QSweep shows why q* = 2/(1−x) is the throughput knee: worst-case
// throughput as a function of q at fixed locality.
func QSweep(n, nc int, x float64, qs []float64) ([]QSweepPoint, error) {
	var out []QSweepPoint
	for _, q := range qs {
		nw, err := core.NewSORNWithQ(n, nc, q)
		if err != nil {
			return nil, err
		}
		tm, err := nw.LocalityMatrix(x)
		if err != nil {
			return nil, err
		}
		fl, err := nw.Throughput(tm)
		if err != nil {
			return nil, err
		}
		out = append(out, QSweepPoint{
			Q:     nw.SORN.RealizedQ,
			Model: model.SORNThroughputAtQ(x, nw.SORN.RealizedQ),
			Fluid: fl.Theta,
		})
	}
	return out, nil
}

// NcSweepRow generalizes Table 1 across clique counts (ablation A3).
type NcSweepRow struct {
	Nc                 int
	IntraDM, InterDM   int
	IntraLatNS         float64
	InterLatNS         float64
	MeasuredIntraWait  int // worst-case intra circuit wait of the built schedule
	TheoreticIntraWait int
}

// NcSweep reports the intra/inter latency split across clique counts at
// the Table 1 deployment, and cross-checks the built schedule's actual
// worst-case intra-circuit wait against the formula at a reduced scale
// (scale n = p.N is too large to build; we build at buildN).
func NcSweep(p model.Params, x float64, ncs []int, buildN int) ([]NcSweepRow, error) {
	var out []NcSweepRow
	q := model.SORNQ(x)
	for _, nc := range ncs {
		if p.N%nc != 0 || buildN%nc != 0 {
			continue
		}
		rows, err := model.SORN(p, model.SORNParams{Nc: nc, X: x, TableVariant: true})
		if err != nil {
			return nil, err
		}
		row := NcSweepRow{
			Nc:         nc,
			IntraDM:    rows[0].DeltaMSlots(),
			InterDM:    rows[1].DeltaMSlots(),
			IntraLatNS: rows[0].MinLatencyNS,
			InterLatNS: rows[1].MinLatencyNS,
		}
		if buildN/nc >= 2 {
			built, err := schedule.BuildSORN(schedule.SORNConfig{N: buildN, Nc: nc, Q: q, MaxWeight: 64})
			if err != nil {
				return nil, err
			}
			c := matching.Compile(built.Schedule)
			worst := 0
			for _, v := range built.Cliques.Members(0) {
				if v == 0 {
					continue
				}
				if w, ok := c.MaxWait(0, v); ok && w > worst {
					worst = w
				}
			}
			row.MeasuredIntraWait = worst
			row.TheoreticIntraWait = int(model.IntraCliqueDeltaM(buildN, nc, built.RealizedQ) + 0.999)
		}
		out = append(out, row)
	}
	return out, nil
}

// BlastRow compares failure blast radius (ablation A4, paper §6). Link
// blast radius is structurally (src=u pairs + dst=v pairs) the same for
// both designs; the modularity win the paper argues for shows up in the
// node blast radius — a failed node in a flat VLB design is an
// intermediate for *every* pair, while in SORN it only relays for its
// clique.
type BlastRow struct {
	Design    string
	NodeBlast float64 // fraction of pairs affected by one node failure
	IntraLink float64 // fraction affected by one intra-clique link failure
	InterLink float64 // fraction affected by one inter-clique link failure
}

// BlastRadius compares SORN against the flat 1D ORN.
func BlastRadius(n, nc int, q float64) ([]BlastRow, error) {
	built, err := schedule.BuildSORN(schedule.SORNConfig{N: n, Nc: nc, Q: q})
	if err != nil {
		return nil, err
	}
	sornRouter := routing.NewSORN(built)
	sornNode, err := fluid.NodeBlastRadius(n, sornRouter, 1)
	if err != nil {
		return nil, err
	}
	sornIntra, err := fluid.LinkBlastRadius(n, sornRouter, 0, 1)
	if err != nil {
		return nil, err
	}
	// Node 0's inter-clique circuit into the next clique lands on the
	// same-local-index peer, node n/nc.
	sornInter, err := fluid.LinkBlastRadius(n, sornRouter, 0, n/nc)
	if err != nil {
		return nil, err
	}

	vlb, err := routing.NewVLB(matching.Compile(matching.RoundRobin(n)))
	if err != nil {
		return nil, err
	}
	vlbNode, err := fluid.NodeBlastRadius(n, vlb, 1)
	if err != nil {
		return nil, err
	}
	vlbLink, err := fluid.LinkBlastRadius(n, vlb, 0, 1)
	if err != nil {
		return nil, err
	}
	return []BlastRow{
		{Design: fmt.Sprintf("SORN Nc=%d", nc), NodeBlast: sornNode, IntraLink: sornIntra, InterLink: sornInter},
		{Design: "1D ORN (flat VLB)", NodeBlast: vlbNode, IntraLink: vlbLink, InterLink: vlbLink},
	}, nil
}

// AdaptationPhase is one epoch of the reconfiguration experiment (A5).
type AdaptationPhase struct {
	Name       string
	Locality   float64 // offered locality during the phase
	Q          float64 // oversubscription in force
	Throughput float64 // measured saturation r during the phase
}

// AdaptationConfig parameterizes the A5 reconfiguration experiment.
type AdaptationConfig struct {
	N, Nc      int
	X1, X2     float64 // offered locality before and after the shift
	PhaseSlots int64   // measured slots per phase (warmup is a third of it)
	Seed       uint64
	// Workers shards each simulation step (0 = one per CPU, 1 = serial);
	// results are bit-identical for every value.
	Workers int
	// Obs, when non-nil, captures the experiment's slot-resolved metric
	// series (labeled per phase) and event trace — phase boundaries,
	// control-plane replans, and the mid-run reconfiguration.
	Obs *obs.Observer
}

// Adaptation runs the semi-oblivious loop end to end in the packet
// simulator: traffic starts at locality X1 with a matching schedule, the
// workload shifts to X2 (mis-provisioned phase), then the control plane
// observes, re-plans q, and reconfigures (recovered phase).
func Adaptation(cfg AdaptationConfig) ([]AdaptationPhase, error) {
	n := cfg.N
	a, err := core.NewAdaptive(n, cfg.Nc, cfg.X1, false)
	if err != nil {
		return nil, err
	}
	a.Controller.Obs = cfg.Obs
	cl := a.Network.SORN.Cliques
	tm1, err := workload.Locality(cl, cfg.X1)
	if err != nil {
		return nil, err
	}
	if _, err := a.Adapt(tm1); err != nil {
		return nil, err
	}

	sim, err := a.Network.NewSim(core.SimOptions{Seed: cfg.Seed, Workers: cfg.Workers, Obs: cfg.Obs})
	if err != nil {
		return nil, err
	}
	size := workload.FixedSize(8)
	measure := func(name string, tm *workload.Matrix, x float64) (AdaptationPhase, error) {
		if cfg.Obs != nil {
			cfg.Obs.StartRun(name)
			cfg.Obs.Emit(obs.Event{Slot: sim.Slot(), Type: obs.EvPhaseBegin, Src: -1, Dst: -1, Note: name})
		}
		st, err := sim.RunSaturated(netsim.SaturationConfig{
			TM: tm, Size: size, TargetBacklog: 512,
			WarmupSlots: cfg.PhaseSlots / 3, MeasureSlots: cfg.PhaseSlots,
		})
		if err != nil {
			return AdaptationPhase{}, err
		}
		ph := AdaptationPhase{
			Name: name, Locality: x, Q: a.Network.SORN.RealizedQ,
			Throughput: st.Throughput(n),
		}
		// Reset counters for the next phase. The observability layer
		// diffs cumulative Stats per slot and clamps at resets, so its
		// series keeps running across phases.
		*st = netsim.Stats{}
		return ph, nil
	}

	var phases []AdaptationPhase
	ph, err := measure("matched (x1)", tm1, cfg.X1)
	if err != nil {
		return nil, err
	}
	phases = append(phases, ph)

	// Workload shifts; schedule still provisioned for X1.
	tm2, err := workload.Locality(cl, cfg.X2)
	if err != nil {
		return nil, err
	}
	ph, err = measure("shifted, stale schedule", tm2, cfg.X2)
	if err != nil {
		return nil, err
	}
	phases = append(phases, ph)

	// Control plane observes the new aggregate pattern and reconfigures.
	for i := 0; i < 5; i++ { // EWMA convergence
		if _, err := a.Adapt(tm2); err != nil {
			return nil, err
		}
	}
	if err := sim.Reconfigure(a.Network.Schedule, a.Network.Router); err != nil {
		return nil, err
	}
	ph, err = measure("shifted, adapted schedule", tm2, cfg.X2)
	if err != nil {
		return nil, err
	}
	phases = append(phases, ph)
	return phases, nil
}

// GravityPoint is one q value of the gravity ablation (A6).
type GravityPoint struct {
	Q     float64
	Theta float64
}

// Gravity evaluates SORN robustness to non-uniform aggregated demand:
// worst-case throughput of the clique schedule under a gravity traffic
// matrix (cluster masses as given), across oversubscription ratios.
func Gravity(n, nc int, mass []float64, qs []float64) ([]GravityPoint, error) {
	var out []GravityPoint
	for _, q := range qs {
		nw, err := core.NewSORNWithQ(n, nc, q)
		if err != nil {
			return nil, err
		}
		tm, err := workload.Gravity(nw.SORN.Cliques, mass)
		if err != nil {
			return nil, err
		}
		fl, err := nw.Throughput(tm)
		if err != nil {
			return nil, err
		}
		out = append(out, GravityPoint{Q: nw.SORN.RealizedQ, Theta: fl.Theta})
	}
	return out, nil
}

// ExpressivityRow compares the uniform inter-clique schedule against the
// demand-aware (Birkhoff–von Neumann) schedule of §5 "Expressivity"
// under a partnered-clique traffic pattern (ablation A7).
type ExpressivityRow struct {
	Design string
	Theta  float64
	// MeanHops under the pattern (bandwidth tax).
	MeanHops float64
}

// Expressivity builds both schedules for the same q and measures
// worst-case throughput under a PairAffinity matrix (intra fraction xi,
// partner fraction xp).
func Expressivity(n, nc int, q, xi, xp float64) ([]ExpressivityRow, error) {
	uniform, err := schedule.BuildSORN(schedule.SORNConfig{N: n, Nc: nc, Q: q})
	if err != nil {
		return nil, err
	}
	tm, err := workload.PairAffinity(uniform.Cliques, xi, xp)
	if err != nil {
		return nil, err
	}
	uniRes, err := fluid.Solve(uniform.Schedule, routing.NewSORN(uniform), tm)
	if err != nil {
		return nil, err
	}

	aware, err := schedule.BuildSORNDemandAware(schedule.DemandAwareConfig{
		N: n, Nc: nc, Q: q,
		Demand: tm.Aggregate(uniform.Cliques),
		Floor:  0.1,
	})
	if err != nil {
		return nil, err
	}
	awareRes, err := fluid.Solve(aware.Schedule, routing.NewSORN(aware), tm)
	if err != nil {
		return nil, err
	}
	return []ExpressivityRow{
		{Design: "uniform inter-clique", Theta: uniRes.Theta, MeanHops: uniRes.MeanHops},
		{Design: "demand-aware (BvN)", Theta: awareRes.Theta, MeanHops: awareRes.MeanHops},
	}, nil
}

// LatencyRow is one design/class of the packet-level latency comparison.
type LatencyRow struct {
	Design   string
	Class    string // "intra-clique", "inter-clique", or "all"
	P50us    float64
	P99us    float64
	MeanHops float64
}

// LatencyComparison measures what Table 1 derives analytically: cell
// latency under light load for SORN (intra- and inter-clique classes
// separately), the flat 1D ORN, and the 2D optimal ORN, all at the same
// node count, slot length, propagation delay, and uplink (plane) count.
// n must be a perfect square (for the 2D ORN) and divisible by nc.
func LatencyComparison(n, nc, planes int, load float64, seed uint64) ([]LatencyRow, error) {
	const slotNS, propNS = 100, 500
	runOne := func(nw *core.Network, tm *workload.Matrix, design, class string) (LatencyRow, error) {
		st, err := nw.SimulateOpenLoop(core.SimOptions{
			SlotNS: slotNS, PropNS: propNS, Seed: seed,
			LatencySampleEvery: 1, Planes: planes,
		}, tm, workload.FixedSize(1), load, 30000)
		if err != nil {
			return LatencyRow{}, err
		}
		toUS := float64(slotNS) / 1000
		return LatencyRow{
			Design:   design,
			Class:    class,
			P50us:    st.LatencySlots.Percentile(50) * toUS,
			P99us:    st.LatencySlots.Percentile(99) * toUS,
			MeanHops: st.MeanHops(),
		}, nil
	}

	var rows []LatencyRow
	sorn, err := core.NewSORN(n, nc, 0.56)
	if err != nil {
		return nil, err
	}
	intraTM, err := workload.Locality(sorn.SORN.Cliques, 1)
	if err != nil {
		return nil, err
	}
	r, err := runOne(sorn, intraTM, "SORN", "intra-clique")
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)
	interTM, err := workload.Locality(sorn.SORN.Cliques, 0)
	if err != nil {
		return nil, err
	}
	r, err = runOne(sorn, interTM, "SORN", "inter-clique")
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)

	orn1, err := core.NewORN1D(n)
	if err != nil {
		return nil, err
	}
	r, err = runOne(orn1, workload.Uniform(n), "1D ORN (Sirius)", "all")
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)

	orn2, err := core.NewORN(n, 2)
	if err != nil {
		return nil, err
	}
	r, err = runOne(orn2, workload.Uniform(n), "2D ORN", "all")
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)
	return rows, nil
}

// PlanePoint is one uplink count of the plane sweep (U1).
type PlanePoint struct {
	Planes int
	P50us  float64
	P99us  float64
}

// PlaneSweepConfig parameterizes the uplink sweep.
type PlaneSweepConfig struct {
	N, Nc  int
	X      float64 // locality the schedule and traffic are built for
	Planes []int   // uplink counts to sweep
	Load   float64 // offered load per node
	Seed   uint64
	// Workers is the per-simulation shard count (0 = one per CPU,
	// 1 = serial); bit-identical results for every value.
	Workers int
}

// PlaneSweep measures how parallel phase-staggered uplinks divide the
// schedule-wait component of latency — the /uplinks term Table 1's
// minimum-latency column depends on.
func PlaneSweep(cfg PlaneSweepConfig) ([]PlanePoint, error) {
	nw, err := core.NewSORN(cfg.N, cfg.Nc, cfg.X)
	if err != nil {
		return nil, err
	}
	tm, err := nw.LocalityMatrix(cfg.X)
	if err != nil {
		return nil, err
	}
	var out []PlanePoint
	for _, p := range cfg.Planes {
		st, err := nw.SimulateOpenLoop(core.SimOptions{
			SlotNS: 100, PropNS: 500, Seed: cfg.Seed,
			LatencySampleEvery: 1, Planes: p, Workers: cfg.Workers,
		}, tm, workload.FixedSize(1), cfg.Load, 25000)
		if err != nil {
			return nil, err
		}
		out = append(out, PlanePoint{
			Planes: p,
			P50us:  st.LatencySlots.Percentile(50) * 0.1,
			P99us:  st.LatencySlots.Percentile(99) * 0.1,
		})
	}
	return out, nil
}

// SyncRow is one slot size of the synchronization-overhead model (S1).
type SyncRow struct {
	SlotNS   float64
	SORNEff  float64 // capacity-weighted slot efficiency of SORN
	FlatEff  float64 // flat 1D ORN efficiency (global guard every slot)
	SORNThpt float64 // r(x) × efficiency
	FlatThpt float64 // 0.5 × efficiency
}

// SyncOverhead evaluates §6's synchronization argument: smaller sync
// domains tolerate shorter slots. guardPerLevelNS is the per-sync-tree-
// level guard interval.
func SyncOverhead(n, nc int, x, guardPerLevelNS float64, slotsNS []float64) []SyncRow {
	q := model.SORNQ(x)
	r := model.SORNThroughput(x)
	var out []SyncRow
	for _, slot := range slotsNS {
		se := model.SORNSyncEfficiency(n, nc, q, slot, guardPerLevelNS)
		fe := model.SyncEfficiency(n, slot, guardPerLevelNS)
		out = append(out, SyncRow{
			SlotNS:   slot,
			SORNEff:  se,
			FlatEff:  fe,
			SORNThpt: r * se,
			FlatThpt: 0.5 * fe,
		})
	}
	return out
}

// StateRow is one network size of the NIC-state scaling analysis (S2).
type StateRow struct {
	N              int
	SORNPeriod     int
	SORNStateBytes int
	FlatPeriod     int
	FlatStateBytes int
}

// StateScaling reports the per-node hardware state (Figure 2c: one
// wavelength index per schedule slot plus one queue descriptor per
// neighbor) for SORN versus the flat 1D ORN as the network grows — the
// §5 argument that SORN's state "scales well with system size". The
// clique count grows with sqrt-ish scaling (nc = N/64 capped to keep
// cliques of 64, as in Table 1).
func StateScaling(ns []int, x float64) ([]StateRow, error) {
	q := model.SORNQ(x)
	var out []StateRow
	for _, n := range ns {
		nc := n / 64
		if nc < 2 {
			nc = 2
		}
		built, err := schedule.BuildSORN(schedule.SORNConfig{N: n, Nc: nc, Q: q})
		if err != nil {
			return nil, err
		}
		k := n / nc
		neighbors := (k - 1) + (nc - 1)
		period := built.Schedule.Period()
		out = append(out, StateRow{
			N:              n,
			SORNPeriod:     period,
			SORNStateBytes: 2*period + 16*neighbors,
			FlatPeriod:     n - 1,
			FlatStateBytes: 2*(n-1) + 16*(n-1),
		})
	}
	return out, nil
}

// DiurnalPoint is one epoch of the diurnal-tracking experiment (A8).
type DiurnalPoint struct {
	Epoch     int
	TrueX     float64 // offered locality this epoch
	EstimateX float64 // controller's EWMA estimate
	AdaptiveR float64 // fluid θ of the controller's schedule
	StaticR   float64 // fluid θ of a schedule fixed at the mean locality
	ClairvoyR float64 // fluid θ of a schedule rebuilt with perfect knowledge
}

// DiurnalConfig parameterizes the A8 diurnal-tracking experiment.
type DiurnalConfig struct {
	N, Nc  int
	Lo, Hi float64 // locality oscillation bounds
	Period int     // epochs per sinusoid cycle
	Epochs int     // total epochs to run
	// Obs, when non-nil, records each control-plane replan decision
	// (estimated x, chosen q*, predicted r) as trace events.
	Obs *obs.Observer
}

// Diurnal drives the control loop through a sinusoidal locality cycle
// (the §6 "diurnal utilization patterns" direction): locality oscillates
// between Lo and Hi over Period epochs for Epochs epochs. The adaptive
// controller observes each epoch's aggregate TM and re-plans q; the
// static design is provisioned once for the mean locality.
func Diurnal(cfg DiurnalConfig) ([]DiurnalPoint, error) {
	n, nc := cfg.N, cfg.Nc
	ctl, err := controlplane.NewController(n, nc, 0.5)
	if err != nil {
		return nil, err
	}
	ctl.Obs = cfg.Obs
	cl, err := schedule.EqualCliques(n, nc)
	if err != nil {
		return nil, err
	}
	mean := (cfg.Lo + cfg.Hi) / 2
	static, err := core.NewSORN(n, nc, mean)
	if err != nil {
		return nil, err
	}

	var out []DiurnalPoint
	for e := 0; e < cfg.Epochs; e++ {
		x := mean + (cfg.Hi-cfg.Lo)/2*math.Sin(2*math.Pi*float64(e)/float64(cfg.Period))
		tm, err := workload.Locality(cl, x)
		if err != nil {
			return nil, err
		}
		if err := ctl.Observe(tm); err != nil {
			return nil, err
		}
		plan, err := ctl.PlanNext()
		if err != nil {
			return nil, err
		}
		if err := ctl.Apply(plan); err != nil {
			return nil, err
		}
		adaptive, err := fluid.Solve(plan.Built.Schedule, routing.NewSORN(plan.Built), tm)
		if err != nil {
			return nil, err
		}
		staticRes, err := fluid.Solve(static.Schedule, static.Router, tm)
		if err != nil {
			return nil, err
		}
		clair, err := core.NewSORN(n, nc, x)
		if err != nil {
			return nil, err
		}
		clairRes, err := clair.Throughput(tm)
		if err != nil {
			return nil, err
		}
		out = append(out, DiurnalPoint{
			Epoch:     e,
			TrueX:     x,
			EstimateX: plan.X,
			AdaptiveR: adaptive.Theta,
			StaticR:   staticRes.Theta,
			ClairvoyR: clairRes.Theta,
		})
	}
	return out, nil
}

// DiurnalSummary averages a diurnal run into three mean throughputs.
func DiurnalSummary(pts []DiurnalPoint) (adaptive, static, clairvoyant float64) {
	for _, p := range pts {
		adaptive += p.AdaptiveR
		static += p.StaticR
		clairvoyant += p.ClairvoyR
	}
	n := float64(len(pts))
	return adaptive / n, static / n, clairvoyant / n
}

// FCTPoint is one (design, load) cell of the FCT-vs-load experiment (F1).
type FCTPoint struct {
	Design string
	Load   float64
	P50us  float64
	P99us  float64
	Done   int64 // completed flows in the window
}

// FCTConfig parameterizes the F1 FCT-vs-load experiment.
type FCTConfig struct {
	N, Nc int
	X     float64 // locality SORN is provisioned for
	Loads []float64
	Slots int64
	Seed  uint64
	// Workers shards each simulation step (0 = one per CPU, 1 = serial);
	// results are bit-identical for every value.
	Workers int
	// Obs, when non-nil, captures every run's metric series, labeled
	// "design@load" so one capture carries the whole sweep.
	Obs *obs.Observer
}

// FCTvsLoad measures completion times of latency-sensitive short flows
// (16 cells, the class Table 1's latency column is about) under open-loop
// traffic at increasing offered loads, for SORN (provisioned at the
// traffic's locality) and the flat 1D ORN. SORN's shorter schedule cycle
// keeps short-flow FCTs low; with heavy-tailed bulk mixes at higher
// loads, queueing dominates medians for both designs and the comparison
// belongs to the throughput experiments instead.
func FCTvsLoad(cfg FCTConfig) ([]FCTPoint, error) {
	sorn, err := core.NewSORN(cfg.N, cfg.Nc, cfg.X)
	if err != nil {
		return nil, err
	}
	sornTM, err := sorn.LocalityMatrix(cfg.X)
	if err != nil {
		return nil, err
	}
	flat, err := core.NewORN1D(cfg.N)
	if err != nil {
		return nil, err
	}
	flatTM := workload.Uniform(cfg.N)

	size := workload.FixedSize(16)
	var out []FCTPoint
	run := func(nw *core.Network, tm *workload.Matrix, design string, load float64) error {
		if cfg.Obs != nil {
			cfg.Obs.StartRun(fmt.Sprintf("%s@%.2f", design, load))
		}
		st, err := nw.SimulateOpenLoop(core.SimOptions{
			SlotNS: 100, PropNS: 500, Seed: cfg.Seed, LatencySampleEvery: 16,
			Workers: cfg.Workers, Obs: cfg.Obs,
		}, tm, size, load, cfg.Slots)
		if err != nil {
			return err
		}
		out = append(out, FCTPoint{
			Design: design,
			Load:   load,
			P50us:  st.FCTSlots.Percentile(50) * 0.1,
			P99us:  st.FCTSlots.Percentile(99) * 0.1,
			Done:   st.CompletedFlows,
		})
		return nil
	}
	for _, load := range cfg.Loads {
		if err := run(sorn, sornTM, "SORN", load); err != nil {
			return nil, err
		}
		if err := run(flat, flatTM, "1D ORN", load); err != nil {
			return nil, err
		}
	}
	return out, nil
}
