// Package experiments implements the paper's evaluation as reusable,
// parameterized experiment runners. Each function regenerates one table,
// figure, or ablation; cmd/ binaries render the results and the root
// bench_test.go wraps them as benchmarks, so both always agree.
//
// Every sweep-shaped experiment runs on the internal/sweep engine: points
// execute on a bounded worker pool (a SweepWorkers knob on struct configs,
// a trailing sweepWorkers parameter on positional ones; 0 = one worker
// per CPU, 1 = serial), network builds are shared through
// core.SharedBuilds, and simulator allocations are reused per worker via
// core.SimPool + netsim.Reset. Results are bit-identical for every
// concurrency setting — see the sweep package comment and
// TestSweepDeterminismAcrossConcurrency.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/fluid"
	"repro/internal/matching"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/schedule"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Fig2fPoint is one x-value of the Figure 2(f) sweep.
type Fig2fPoint struct {
	X      float64
	Theory float64 // r = 1/(3−x)
	Fluid  float64 // exact link-load θ of the built schedule + router
	Sim    float64 // saturated 128-node packet simulation (0 if skipped)
	// Obs is the point's observability capture (slot-resolved metric
	// series and event trace); nil unless Fig2fConfig.ObsEvery is set.
	// Points run concurrently, so each gets its own Observer.
	Obs *obs.Observer
}

// Fig2fConfig parameterizes the sweep.
type Fig2fConfig struct {
	N, Nc        int
	Step         float64
	RunSim       bool
	WarmupSlots  int64
	MeasureSlots int64
	Backlog      int64
	SizeCap      int
	Seed         uint64
	// Workers is the per-simulation shard count (core.SimOptions.Workers):
	// 0 = one per available CPU, 1 = serial. Results are bit-identical
	// for every value. When the sweep itself runs multiple points at once,
	// 0 resolves to serial sims (see sweep.Config.SimWorkers) so the two
	// levels of parallelism don't oversubscribe the CPUs.
	Workers int
	// SweepWorkers bounds how many points run concurrently
	// (sweep.Config.Concurrency: 0 = one worker per CPU, 1 = serial).
	// Results are bit-identical for every value.
	SweepWorkers int
	// NoSimReuse disables the per-worker simulator pool, allocating a
	// fresh Sim per point — an A/B knob for benchmarking the Reset reuse
	// path; results are bit-identical either way.
	NoSimReuse bool
	// ObsEvery, when positive, attaches an Observer to every simulated
	// point, snapshotting the metric series every ObsEvery slots; each
	// point's capture is returned in Fig2fPoint.Obs.
	ObsEvery int64
	// Dense runs every simulated point on netsim's dense reference engine
	// instead of the default active-set engine — an A/B knob for
	// benchmarking; results are bit-identical either way.
	Dense bool
}

// DefaultFig2fConfig is the paper's setup: 128 nodes, 8 cliques,
// pFabric web-search traffic.
func DefaultFig2fConfig() Fig2fConfig {
	return Fig2fConfig{
		N: 128, Nc: 8, Step: 0.1, RunSim: true,
		WarmupSlots: 25000, MeasureSlots: 25000, Backlog: 4096,
		SizeCap: 1333, Seed: 42,
	}
}

// fig2fGrid generates the locality grid x_i = i·Step by index. Computing
// each point from the index (instead of accumulating x += Step) keeps the
// grid exact: repeated addition drifts by an ulp per step, so an
// accumulated 0.1-grid lands on 0.7999999999999999 and ends at
// 0.9999999999999999 instead of 0.8 and 1. The grid covers [0, 1] and
// always ends at exactly 1.
func fig2fGrid(step float64) []float64 {
	var xs []float64
	for i := 0; ; i++ {
		x := float64(i) * step
		if x >= 1 {
			xs = append(xs, 1)
			return xs
		}
		xs = append(xs, x)
	}
}

// Fig2f runs the throughput-vs-locality sweep on the sweep engine: points
// run on a bounded worker pool (cfg.SweepWorkers), each on its own RNG
// stream split off the sweep seed serially before any worker starts, with
// results returned in x order — so every concurrency setting is
// bit-for-bit identical. SORN builds come from core.SharedBuilds and each
// worker reuses one pooled simulator across its points.
func Fig2f(cfg Fig2fConfig) ([]Fig2fPoint, error) {
	if !(cfg.Step > 0) {
		return nil, fmt.Errorf("experiments: Fig2f step %v must be positive", cfg.Step)
	}
	xs := fig2fGrid(cfg.Step)
	size := workload.NewCapped(workload.WebSearch(), cfg.SizeCap)
	sw := sweep.Config{Concurrency: cfg.SweepWorkers, Seed: cfg.Seed}
	pool := core.NewSimPool(sw.Workers(len(xs)))
	return sweep.Run(sw, len(xs), func(p sweep.Point) (Fig2fPoint, error) {
		return fig2fPoint(cfg, sw, len(xs), xs[p.Index], size, p, pool)
	})
}

func fig2fPoint(cfg Fig2fConfig, sw sweep.Config, points int, x float64, size workload.SizeDist, p sweep.Point, pool *core.SimPool) (Fig2fPoint, error) {
	nw, err := core.SharedBuilds.SORN(cfg.N, cfg.Nc, x)
	if err != nil {
		return Fig2fPoint{}, err
	}
	tm, err := nw.LocalityMatrix(x)
	if err != nil {
		return Fig2fPoint{}, err
	}
	fl, err := nw.Throughput(tm)
	if err != nil {
		return Fig2fPoint{}, err
	}
	pt := Fig2fPoint{X: x, Theory: model.SORNThroughput(x), Fluid: fl.Theta}
	if cfg.RunSim {
		if cfg.ObsEvery > 0 {
			pt.Obs = obs.New(obs.Options{MetricsEvery: cfg.ObsEvery, TraceFlows: true})
			pt.Obs.StartRun(fmt.Sprintf("x=%.2f", x))
		}
		opts := core.SimOptions{
			Seed:          p.RNG.Uint64(),
			WarmupSlots:   cfg.WarmupSlots,
			MeasureSlots:  cfg.MeasureSlots,
			TargetBacklog: cfg.Backlog,
			Workers:       sw.SimWorkers(points, cfg.Workers),
			Obs:           pt.Obs,
			Dense:         cfg.Dense,
		}
		var st *netsim.Stats
		if cfg.NoSimReuse {
			st, err = nw.SimulateSaturated(opts, tm, size)
		} else {
			sim, perr := pool.Acquire(p.Worker, nw, opts)
			if perr != nil {
				return Fig2fPoint{}, perr
			}
			st, err = core.RunSaturatedOn(sim, opts, tm, size)
		}
		if err != nil {
			return Fig2fPoint{}, err
		}
		pt.Sim = st.Throughput(cfg.N)
	}
	return pt, nil
}

// MismatchPoint is one entry of the locality-mismatch ablation (A1):
// the schedule was provisioned for locality XPlanned but the offered
// traffic has XActual.
type MismatchPoint struct {
	XPlanned, XActual float64
	Model             float64 // closed-form r at (XActual, q*(XPlanned))
	Fluid             float64 // measured θ on the built schedule
}

// LocalityMismatch quantifies §6's "healthy estimation error margin":
// how much worst-case throughput degrades when the estimated locality is
// wrong. The schedule is built for xPlanned; traffic has xActual.
// The sweep runs one point per planned locality (each shares one cached
// build across its actual-locality row), flattened in planned-major order.
func LocalityMismatch(n, nc int, planned, actual []float64, sweepWorkers int) ([]MismatchPoint, error) {
	rows, err := sweep.Run(sweep.Config{Concurrency: sweepWorkers}, len(planned), func(p sweep.Point) ([]MismatchPoint, error) {
		xp := planned[p.Index]
		nw, err := core.SharedBuilds.SORN(n, nc, xp)
		if err != nil {
			return nil, err
		}
		row := make([]MismatchPoint, 0, len(actual))
		for _, xa := range actual {
			tm, err := nw.LocalityMatrix(xa)
			if err != nil {
				return nil, err
			}
			fl, err := nw.Throughput(tm)
			if err != nil {
				return nil, err
			}
			row = append(row, MismatchPoint{
				XPlanned: xp,
				XActual:  xa,
				Model:    model.SORNThroughputAtQ(xa, nw.SORN.RealizedQ),
				Fluid:    fl.Theta,
			})
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	var out []MismatchPoint
	for _, row := range rows {
		out = append(out, row...)
	}
	return out, nil
}

// QSweepPoint is one oversubscription value of ablation A2.
type QSweepPoint struct {
	Q     float64
	Model float64
	Fluid float64
}

// QSweep shows why q* = 2/(1−x) is the throughput knee: worst-case
// throughput as a function of q at fixed locality.
func QSweep(n, nc int, x float64, qs []float64, sweepWorkers int) ([]QSweepPoint, error) {
	return sweep.Run(sweep.Config{Concurrency: sweepWorkers}, len(qs), func(p sweep.Point) (QSweepPoint, error) {
		nw, err := core.SharedBuilds.SORNWithQ(n, nc, qs[p.Index])
		if err != nil {
			return QSweepPoint{}, err
		}
		tm, err := nw.LocalityMatrix(x)
		if err != nil {
			return QSweepPoint{}, err
		}
		fl, err := nw.Throughput(tm)
		if err != nil {
			return QSweepPoint{}, err
		}
		return QSweepPoint{
			Q:     nw.SORN.RealizedQ,
			Model: model.SORNThroughputAtQ(x, nw.SORN.RealizedQ),
			Fluid: fl.Theta,
		}, nil
	})
}

// NcSweepRow generalizes Table 1 across clique counts (ablation A3).
type NcSweepRow struct {
	Nc                 int
	IntraDM, InterDM   int
	IntraLatNS         float64
	InterLatNS         float64
	MeasuredIntraWait  int // worst-case intra circuit wait of the built schedule
	TheoreticIntraWait int
}

// NcSweep reports the intra/inter latency split across clique counts at
// the Table 1 deployment, and cross-checks the built schedule's actual
// worst-case intra-circuit wait against the formula at a reduced scale
// (scale n = p.N is too large to build; we build at buildN).
func NcSweep(p model.Params, x float64, ncs []int, buildN int, sweepWorkers int) ([]NcSweepRow, error) {
	q := model.SORNQ(x)
	eligible := make([]int, 0, len(ncs))
	for _, nc := range ncs {
		if p.N%nc == 0 && buildN%nc == 0 {
			eligible = append(eligible, nc)
		}
	}
	return sweep.Run(sweep.Config{Concurrency: sweepWorkers}, len(eligible), func(pt sweep.Point) (NcSweepRow, error) {
		nc := eligible[pt.Index]
		rows, err := model.SORN(p, model.SORNParams{Nc: nc, X: x, TableVariant: true})
		if err != nil {
			return NcSweepRow{}, err
		}
		row := NcSweepRow{
			Nc:         nc,
			IntraDM:    rows[0].DeltaMSlots(),
			InterDM:    rows[1].DeltaMSlots(),
			IntraLatNS: rows[0].MinLatencyNS,
			InterLatNS: rows[1].MinLatencyNS,
		}
		if buildN/nc >= 2 {
			// Built directly, not through SharedBuilds: the MaxWeight cap is
			// not part of the cache key.
			built, err := schedule.BuildSORN(schedule.SORNConfig{N: buildN, Nc: nc, Q: q, MaxWeight: 64})
			if err != nil {
				return NcSweepRow{}, err
			}
			c := matching.Compile(built.Schedule)
			worst := 0
			for _, v := range built.Cliques.Members(0) {
				if v == 0 {
					continue
				}
				if w, ok := c.MaxWait(0, v); ok && w > worst {
					worst = w
				}
			}
			row.MeasuredIntraWait = worst
			row.TheoreticIntraWait = int(model.IntraCliqueDeltaM(buildN, nc, built.RealizedQ) + 0.999)
		}
		return row, nil
	})
}

// BlastRow compares failure blast radius (ablation A4, paper §6). Link
// blast radius is structurally (src=u pairs + dst=v pairs) the same for
// both designs; the modularity win the paper argues for shows up in the
// node blast radius — a failed node in a flat VLB design is an
// intermediate for *every* pair, while in SORN it only relays for its
// clique.
type BlastRow struct {
	Design    string
	NodeBlast float64 // fraction of pairs affected by one node failure
	IntraLink float64 // fraction affected by one intra-clique link failure
	InterLink float64 // fraction affected by one inter-clique link failure
}

// BlastRadius compares SORN against the flat 1D ORN. One sweep point per
// design row.
func BlastRadius(n, nc int, q float64, sweepWorkers int) ([]BlastRow, error) {
	return sweep.Run(sweep.Config{Concurrency: sweepWorkers}, 2, func(p sweep.Point) (BlastRow, error) {
		if p.Index == 0 {
			nw, err := core.SharedBuilds.SORNWithQ(n, nc, q)
			if err != nil {
				return BlastRow{}, err
			}
			sornNode, err := fluid.NodeBlastRadius(n, nw.Router, 1)
			if err != nil {
				return BlastRow{}, err
			}
			sornIntra, err := fluid.LinkBlastRadius(n, nw.Router, 0, 1)
			if err != nil {
				return BlastRow{}, err
			}
			// Node 0's inter-clique circuit into the next clique lands on the
			// same-local-index peer, node n/nc.
			sornInter, err := fluid.LinkBlastRadius(n, nw.Router, 0, n/nc)
			if err != nil {
				return BlastRow{}, err
			}
			return BlastRow{Design: fmt.Sprintf("SORN Nc=%d", nc),
				NodeBlast: sornNode, IntraLink: sornIntra, InterLink: sornInter}, nil
		}
		vlb, err := routing.NewVLB(matching.Compile(matching.RoundRobin(n)))
		if err != nil {
			return BlastRow{}, err
		}
		vlbNode, err := fluid.NodeBlastRadius(n, vlb, 1)
		if err != nil {
			return BlastRow{}, err
		}
		vlbLink, err := fluid.LinkBlastRadius(n, vlb, 0, 1)
		if err != nil {
			return BlastRow{}, err
		}
		return BlastRow{Design: "1D ORN (flat VLB)",
			NodeBlast: vlbNode, IntraLink: vlbLink, InterLink: vlbLink}, nil
	})
}

// AdaptationPhase is one epoch of the reconfiguration experiment (A5).
type AdaptationPhase struct {
	Name       string
	Locality   float64 // offered locality during the phase
	Q          float64 // oversubscription in force
	Throughput float64 // measured saturation r during the phase
}

// AdaptationConfig parameterizes the A5 reconfiguration experiment.
type AdaptationConfig struct {
	N, Nc      int
	X1, X2     float64 // offered locality before and after the shift
	PhaseSlots int64   // measured slots per phase (warmup is a third of it)
	Seed       uint64
	// Workers shards each simulation step (0 = one per CPU, 1 = serial);
	// results are bit-identical for every value.
	Workers int
	// Obs, when non-nil, captures the experiment's slot-resolved metric
	// series (labeled per phase) and event trace — phase boundaries,
	// control-plane replans, and the mid-run reconfiguration.
	Obs *obs.Observer
}

// Adaptation runs the semi-oblivious loop end to end in the packet
// simulator: traffic starts at locality X1 with a matching schedule, the
// workload shifts to X2 (mis-provisioned phase), then the control plane
// observes, re-plans q, and reconfigures (recovered phase).
func Adaptation(cfg AdaptationConfig) ([]AdaptationPhase, error) {
	n := cfg.N
	a, err := core.NewAdaptive(n, cfg.Nc, cfg.X1, false)
	if err != nil {
		return nil, err
	}
	a.Controller.Obs = cfg.Obs
	cl := a.Network.SORN.Cliques
	tm1, err := workload.Locality(cl, cfg.X1)
	if err != nil {
		return nil, err
	}
	if _, err := a.Adapt(tm1); err != nil {
		return nil, err
	}

	sim, err := a.Network.NewSim(core.SimOptions{Seed: cfg.Seed, Workers: cfg.Workers, Obs: cfg.Obs})
	if err != nil {
		return nil, err
	}
	size := workload.FixedSize(8)
	measure := func(name string, tm *workload.Matrix, x float64) (AdaptationPhase, error) {
		if cfg.Obs != nil {
			cfg.Obs.StartRun(name)
			cfg.Obs.Emit(obs.Event{Slot: sim.Slot(), Type: obs.EvPhaseBegin, Src: -1, Dst: -1, Note: name})
		}
		st, err := sim.RunSaturated(netsim.SaturationConfig{
			TM: tm, Size: size, TargetBacklog: 512,
			WarmupSlots: cfg.PhaseSlots / 3, MeasureSlots: cfg.PhaseSlots,
		})
		if err != nil {
			return AdaptationPhase{}, err
		}
		ph := AdaptationPhase{
			Name: name, Locality: x, Q: a.Network.SORN.RealizedQ,
			Throughput: st.Throughput(n),
		}
		// Reset counters for the next phase. The observability layer
		// diffs cumulative Stats per slot and clamps at resets, so its
		// series keeps running across phases.
		*st = netsim.Stats{}
		return ph, nil
	}

	var phases []AdaptationPhase
	ph, err := measure("matched (x1)", tm1, cfg.X1)
	if err != nil {
		return nil, err
	}
	phases = append(phases, ph)

	// Workload shifts; schedule still provisioned for X1.
	tm2, err := workload.Locality(cl, cfg.X2)
	if err != nil {
		return nil, err
	}
	ph, err = measure("shifted, stale schedule", tm2, cfg.X2)
	if err != nil {
		return nil, err
	}
	phases = append(phases, ph)

	// Control plane observes the new aggregate pattern and reconfigures.
	for i := 0; i < 5; i++ { // EWMA convergence
		if _, err := a.Adapt(tm2); err != nil {
			return nil, err
		}
	}
	if err := sim.Reconfigure(a.Network.Schedule, a.Network.Router); err != nil {
		return nil, err
	}
	ph, err = measure("shifted, adapted schedule", tm2, cfg.X2)
	if err != nil {
		return nil, err
	}
	phases = append(phases, ph)
	return phases, nil
}

// GravityPoint is one q value of the gravity ablation (A6).
type GravityPoint struct {
	Q     float64
	Theta float64
}

// Gravity evaluates SORN robustness to non-uniform aggregated demand:
// worst-case throughput of the clique schedule under a gravity traffic
// matrix (cluster masses as given), across oversubscription ratios.
func Gravity(n, nc int, mass []float64, qs []float64, sweepWorkers int) ([]GravityPoint, error) {
	return sweep.Run(sweep.Config{Concurrency: sweepWorkers}, len(qs), func(p sweep.Point) (GravityPoint, error) {
		nw, err := core.SharedBuilds.SORNWithQ(n, nc, qs[p.Index])
		if err != nil {
			return GravityPoint{}, err
		}
		tm, err := workload.Gravity(nw.SORN.Cliques, mass)
		if err != nil {
			return GravityPoint{}, err
		}
		fl, err := nw.Throughput(tm)
		if err != nil {
			return GravityPoint{}, err
		}
		return GravityPoint{Q: nw.SORN.RealizedQ, Theta: fl.Theta}, nil
	})
}

// ExpressivityRow compares the uniform inter-clique schedule against the
// demand-aware (Birkhoff–von Neumann) schedule of §5 "Expressivity"
// under a partnered-clique traffic pattern (ablation A7).
type ExpressivityRow struct {
	Design string
	Theta  float64
	// MeanHops under the pattern (bandwidth tax).
	MeanHops float64
}

// Expressivity builds both schedules for the same q and measures
// worst-case throughput under a PairAffinity matrix (intra fraction xi,
// partner fraction xp).
func Expressivity(n, nc int, q, xi, xp float64) ([]ExpressivityRow, error) {
	uniform, err := schedule.BuildSORN(schedule.SORNConfig{N: n, Nc: nc, Q: q})
	if err != nil {
		return nil, err
	}
	tm, err := workload.PairAffinity(uniform.Cliques, xi, xp)
	if err != nil {
		return nil, err
	}
	uniRes, err := fluid.Solve(uniform.Schedule, routing.NewSORN(uniform), tm)
	if err != nil {
		return nil, err
	}

	aware, err := schedule.BuildSORNDemandAware(schedule.DemandAwareConfig{
		N: n, Nc: nc, Q: q,
		Demand: tm.Aggregate(uniform.Cliques),
		Floor:  0.1,
	})
	if err != nil {
		return nil, err
	}
	awareRes, err := fluid.Solve(aware.Schedule, routing.NewSORN(aware), tm)
	if err != nil {
		return nil, err
	}
	return []ExpressivityRow{
		{Design: "uniform inter-clique", Theta: uniRes.Theta, MeanHops: uniRes.MeanHops},
		{Design: "demand-aware (BvN)", Theta: awareRes.Theta, MeanHops: awareRes.MeanHops},
	}, nil
}

// LatencyRow is one design/class of the packet-level latency comparison.
type LatencyRow struct {
	Design   string
	Class    string // "intra-clique", "inter-clique", or "all"
	P50us    float64
	P99us    float64
	MeanHops float64
}

// LatencyComparison measures what Table 1 derives analytically: cell
// latency under light load for SORN (intra- and inter-clique classes
// separately), the flat 1D ORN, and the 2D optimal ORN, all at the same
// node count, slot length, propagation delay, and uplink (plane) count.
// n must be a perfect square (for the 2D ORN) and divisible by nc.
// The four design/class runs are independent fixed-seed simulations, so
// they sweep as four points sharing cached builds and pooled simulators.
func LatencyComparison(n, nc, planes int, load float64, seed uint64, sweepWorkers int) ([]LatencyRow, error) {
	const slotNS, propNS = 100, 500
	sorn, err := core.SharedBuilds.SORN(n, nc, 0.56)
	if err != nil {
		return nil, err
	}
	intraTM, err := workload.Locality(sorn.SORN.Cliques, 1)
	if err != nil {
		return nil, err
	}
	interTM, err := workload.Locality(sorn.SORN.Cliques, 0)
	if err != nil {
		return nil, err
	}
	orn1, err := core.SharedBuilds.ORN1D(n)
	if err != nil {
		return nil, err
	}
	orn2, err := core.SharedBuilds.ORN(n, 2)
	if err != nil {
		return nil, err
	}
	runs := []struct {
		nw            *core.Network
		tm            *workload.Matrix
		design, class string
	}{
		{sorn, intraTM, "SORN", "intra-clique"},
		{sorn, interTM, "SORN", "inter-clique"},
		{orn1, workload.Uniform(n), "1D ORN (Sirius)", "all"},
		{orn2, workload.Uniform(n), "2D ORN", "all"},
	}
	sw := sweep.Config{Concurrency: sweepWorkers, Seed: seed}
	pool := core.NewSimPool(sw.Workers(len(runs)))
	return sweep.Run(sw, len(runs), func(p sweep.Point) (LatencyRow, error) {
		r := runs[p.Index]
		opts := core.SimOptions{
			SlotNS: slotNS, PropNS: propNS, Seed: seed,
			LatencySampleEvery: 1, Planes: planes,
			Workers: sw.SimWorkers(len(runs), 0),
		}
		sim, err := pool.Acquire(p.Worker, r.nw, opts)
		if err != nil {
			return LatencyRow{}, err
		}
		st, err := core.RunOpenLoopOn(sim, opts, r.tm, workload.FixedSize(1), load, 30000)
		if err != nil {
			return LatencyRow{}, err
		}
		toUS := float64(slotNS) / 1000
		return LatencyRow{
			Design:   r.design,
			Class:    r.class,
			P50us:    st.LatencySlots.Percentile(50) * toUS,
			P99us:    st.LatencySlots.Percentile(99) * toUS,
			MeanHops: st.MeanHops(),
		}, nil
	})
}

// PlanePoint is one uplink count of the plane sweep (U1).
type PlanePoint struct {
	Planes int
	P50us  float64
	P99us  float64
}

// PlaneSweepConfig parameterizes the uplink sweep.
type PlaneSweepConfig struct {
	N, Nc  int
	X      float64 // locality the schedule and traffic are built for
	Planes []int   // uplink counts to sweep
	Load   float64 // offered load per node
	Seed   uint64
	// Workers is the per-simulation shard count (0 = one per CPU,
	// 1 = serial); bit-identical results for every value.
	Workers int
	// SweepWorkers bounds how many plane counts simulate concurrently
	// (0 = one per CPU, 1 = serial); bit-identical results for every value.
	SweepWorkers int
}

// PlaneSweep measures how parallel phase-staggered uplinks divide the
// schedule-wait component of latency — the /uplinks term Table 1's
// minimum-latency column depends on. One sweep point per plane count; the
// pooled simulator resizes its delay ring across Reset.
func PlaneSweep(cfg PlaneSweepConfig) ([]PlanePoint, error) {
	nw, err := core.SharedBuilds.SORN(cfg.N, cfg.Nc, cfg.X)
	if err != nil {
		return nil, err
	}
	tm, err := nw.LocalityMatrix(cfg.X)
	if err != nil {
		return nil, err
	}
	sw := sweep.Config{Concurrency: cfg.SweepWorkers, Seed: cfg.Seed}
	pool := core.NewSimPool(sw.Workers(len(cfg.Planes)))
	return sweep.Run(sw, len(cfg.Planes), func(p sweep.Point) (PlanePoint, error) {
		opts := core.SimOptions{
			SlotNS: 100, PropNS: 500, Seed: cfg.Seed,
			LatencySampleEvery: 1, Planes: cfg.Planes[p.Index],
			Workers: sw.SimWorkers(len(cfg.Planes), cfg.Workers),
		}
		sim, err := pool.Acquire(p.Worker, nw, opts)
		if err != nil {
			return PlanePoint{}, err
		}
		st, err := core.RunOpenLoopOn(sim, opts, tm, workload.FixedSize(1), cfg.Load, 25000)
		if err != nil {
			return PlanePoint{}, err
		}
		return PlanePoint{
			Planes: cfg.Planes[p.Index],
			P50us:  st.LatencySlots.Percentile(50) * 0.1,
			P99us:  st.LatencySlots.Percentile(99) * 0.1,
		}, nil
	})
}

// SyncRow is one slot size of the synchronization-overhead model (S1).
type SyncRow struct {
	SlotNS   float64
	SORNEff  float64 // capacity-weighted slot efficiency of SORN
	FlatEff  float64 // flat 1D ORN efficiency (global guard every slot)
	SORNThpt float64 // r(x) × efficiency
	FlatThpt float64 // 0.5 × efficiency
}

// SyncOverhead evaluates §6's synchronization argument: smaller sync
// domains tolerate shorter slots. guardPerLevelNS is the per-sync-tree-
// level guard interval.
func SyncOverhead(n, nc int, x, guardPerLevelNS float64, slotsNS []float64) []SyncRow {
	q := model.SORNQ(x)
	r := model.SORNThroughput(x)
	var out []SyncRow
	for _, slot := range slotsNS {
		se := model.SORNSyncEfficiency(n, nc, q, slot, guardPerLevelNS)
		fe := model.SyncEfficiency(n, slot, guardPerLevelNS)
		out = append(out, SyncRow{
			SlotNS:   slot,
			SORNEff:  se,
			FlatEff:  fe,
			SORNThpt: r * se,
			FlatThpt: 0.5 * fe,
		})
	}
	return out
}

// StateRow is one network size of the NIC-state scaling analysis (S2).
type StateRow struct {
	N              int
	SORNPeriod     int
	SORNStateBytes int
	FlatPeriod     int
	FlatStateBytes int
}

// StateScaling reports the per-node hardware state (Figure 2c: one
// wavelength index per schedule slot plus one queue descriptor per
// neighbor) for SORN versus the flat 1D ORN as the network grows — the
// §5 argument that SORN's state "scales well with system size". The
// clique count grows with sqrt-ish scaling (nc = N/64 capped to keep
// cliques of 64, as in Table 1).
func StateScaling(ns []int, x float64) ([]StateRow, error) {
	q := model.SORNQ(x)
	var out []StateRow
	for _, n := range ns {
		nc := n / 64
		if nc < 2 {
			nc = 2
		}
		built, err := schedule.BuildSORN(schedule.SORNConfig{N: n, Nc: nc, Q: q})
		if err != nil {
			return nil, err
		}
		k := n / nc
		neighbors := (k - 1) + (nc - 1)
		period := built.Schedule.Period()
		out = append(out, StateRow{
			N:              n,
			SORNPeriod:     period,
			SORNStateBytes: 2*period + 16*neighbors,
			FlatPeriod:     n - 1,
			FlatStateBytes: 2*(n-1) + 16*(n-1),
		})
	}
	return out, nil
}

// DiurnalPoint is one epoch of the diurnal-tracking experiment (A8).
type DiurnalPoint struct {
	Epoch     int
	TrueX     float64 // offered locality this epoch
	EstimateX float64 // controller's EWMA estimate
	AdaptiveR float64 // fluid θ of the controller's schedule
	StaticR   float64 // fluid θ of a schedule fixed at the mean locality
	ClairvoyR float64 // fluid θ of a schedule rebuilt with perfect knowledge
}

// DiurnalConfig parameterizes the A8 diurnal-tracking experiment.
type DiurnalConfig struct {
	N, Nc  int
	Lo, Hi float64 // locality oscillation bounds
	Period int     // epochs per sinusoid cycle
	Epochs int     // total epochs to run
	// SweepWorkers bounds how many epochs' fluid evaluations run
	// concurrently (0 = one per CPU, 1 = serial); the stateful controller
	// pass always runs serially, so results are bit-identical for every
	// value.
	SweepWorkers int
	// Obs, when non-nil, records each control-plane replan decision
	// (estimated x, chosen q*, predicted r) as trace events.
	Obs *obs.Observer
}

// Diurnal drives the control loop through a sinusoidal locality cycle
// (the §6 "diurnal utilization patterns" direction): locality oscillates
// between Lo and Hi over Period epochs for Epochs epochs. The adaptive
// controller observes each epoch's aggregate TM and re-plans q; the
// static design is provisioned once for the mean locality.
func Diurnal(cfg DiurnalConfig) ([]DiurnalPoint, error) {
	n, nc := cfg.N, cfg.Nc
	ctl, err := controlplane.NewController(n, nc, 0.5)
	if err != nil {
		return nil, err
	}
	ctl.Obs = cfg.Obs
	cl, err := schedule.EqualCliques(n, nc)
	if err != nil {
		return nil, err
	}
	mean := (cfg.Lo + cfg.Hi) / 2
	static, err := core.SharedBuilds.SORN(n, nc, mean)
	if err != nil {
		return nil, err
	}

	// Pass 1 — serial: the controller is stateful (EWMA estimate, replan
	// hysteresis, trace events), so every epoch observes and plans in
	// order, exactly as the control plane would live.
	type epochPlan struct {
		x, estX float64
		tm      *workload.Matrix
		built   *schedule.SORN
	}
	plans := make([]epochPlan, cfg.Epochs)
	for e := 0; e < cfg.Epochs; e++ {
		x := mean + (cfg.Hi-cfg.Lo)/2*math.Sin(2*math.Pi*float64(e)/float64(cfg.Period))
		tm, err := workload.Locality(cl, x)
		if err != nil {
			return nil, err
		}
		if err := ctl.Observe(tm); err != nil {
			return nil, err
		}
		plan, err := ctl.PlanNext()
		if err != nil {
			return nil, err
		}
		if err := ctl.Apply(plan); err != nil {
			return nil, err
		}
		plans[e] = epochPlan{x: x, estX: plan.X, tm: tm, built: plan.Built}
	}

	// Pass 2 — swept: the three fluid evaluations per epoch are pure
	// functions of the recorded plan, independent across epochs. The
	// clairvoyant builds hit the cache every repeated Period.
	return sweep.Run(sweep.Config{Concurrency: cfg.SweepWorkers}, cfg.Epochs, func(p sweep.Point) (DiurnalPoint, error) {
		ep := plans[p.Index]
		adaptive, err := fluid.Solve(ep.built.Schedule, routing.NewSORN(ep.built), ep.tm)
		if err != nil {
			return DiurnalPoint{}, err
		}
		staticRes, err := fluid.Solve(static.Schedule, static.Router, ep.tm)
		if err != nil {
			return DiurnalPoint{}, err
		}
		clair, err := core.SharedBuilds.SORN(n, nc, ep.x)
		if err != nil {
			return DiurnalPoint{}, err
		}
		clairRes, err := clair.Throughput(ep.tm)
		if err != nil {
			return DiurnalPoint{}, err
		}
		return DiurnalPoint{
			Epoch:     p.Index,
			TrueX:     ep.x,
			EstimateX: ep.estX,
			AdaptiveR: adaptive.Theta,
			StaticR:   staticRes.Theta,
			ClairvoyR: clairRes.Theta,
		}, nil
	})
}

// DiurnalSummary averages a diurnal run into three mean throughputs.
func DiurnalSummary(pts []DiurnalPoint) (adaptive, static, clairvoyant float64) {
	for _, p := range pts {
		adaptive += p.AdaptiveR
		static += p.StaticR
		clairvoyant += p.ClairvoyR
	}
	n := float64(len(pts))
	return adaptive / n, static / n, clairvoyant / n
}

// FCTPoint is one (design, load) cell of the FCT-vs-load experiment (F1).
type FCTPoint struct {
	Design string
	Load   float64
	P50us  float64
	P99us  float64
	Done   int64 // completed flows in the window
}

// FCTConfig parameterizes the F1 FCT-vs-load experiment.
type FCTConfig struct {
	N, Nc int
	X     float64 // locality SORN is provisioned for
	Loads []float64
	Slots int64
	Seed  uint64
	// Workers shards each simulation step (0 = one per CPU, 1 = serial);
	// results are bit-identical for every value.
	Workers int
	// SweepWorkers bounds how many (design, load) cells simulate
	// concurrently (0 = one per CPU, 1 = serial); bit-identical results
	// for every value. Forced serial when Obs is set — one Observer serves
	// one simulation at a time and its run labels must land in order.
	SweepWorkers int
	// Obs, when non-nil, captures every run's metric series, labeled
	// "design@load" so one capture carries the whole sweep.
	Obs *obs.Observer
}

// FCTvsLoad measures completion times of latency-sensitive short flows
// (16 cells, the class Table 1's latency column is about) under open-loop
// traffic at increasing offered loads, for SORN (provisioned at the
// traffic's locality) and the flat 1D ORN. SORN's shorter schedule cycle
// keeps short-flow FCTs low; with heavy-tailed bulk mixes at higher
// loads, queueing dominates medians for both designs and the comparison
// belongs to the throughput experiments instead.
func FCTvsLoad(cfg FCTConfig) ([]FCTPoint, error) {
	sorn, err := core.SharedBuilds.SORN(cfg.N, cfg.Nc, cfg.X)
	if err != nil {
		return nil, err
	}
	sornTM, err := sorn.LocalityMatrix(cfg.X)
	if err != nil {
		return nil, err
	}
	flat, err := core.SharedBuilds.ORN1D(cfg.N)
	if err != nil {
		return nil, err
	}
	flatTM := workload.Uniform(cfg.N)
	size := workload.FixedSize(16)

	type cell struct {
		nw     *core.Network
		tm     *workload.Matrix
		design string
		load   float64
	}
	cells := make([]cell, 0, 2*len(cfg.Loads))
	for _, load := range cfg.Loads {
		cells = append(cells,
			cell{sorn, sornTM, "SORN", load},
			cell{flat, flatTM, "1D ORN", load})
	}

	sw := sweep.Config{Concurrency: cfg.SweepWorkers, Seed: cfg.Seed}
	if cfg.Obs != nil {
		// One Observer serves one simulation at a time, and its run labels
		// must appear in point order: a shared capture forces the sweep
		// serial regardless of the requested concurrency.
		sw.Concurrency = 1
	}
	pool := core.NewSimPool(sw.Workers(len(cells)))
	return sweep.Run(sw, len(cells), func(p sweep.Point) (FCTPoint, error) {
		c := cells[p.Index]
		if cfg.Obs != nil {
			cfg.Obs.StartRun(fmt.Sprintf("%s@%.2f", c.design, c.load))
		}
		opts := core.SimOptions{
			SlotNS: 100, PropNS: 500, Seed: cfg.Seed, LatencySampleEvery: 16,
			Workers: sw.SimWorkers(len(cells), cfg.Workers), Obs: cfg.Obs,
		}
		sim, err := pool.Acquire(p.Worker, c.nw, opts)
		if err != nil {
			return FCTPoint{}, err
		}
		st, err := core.RunOpenLoopOn(sim, opts, c.tm, size, c.load, cfg.Slots)
		if err != nil {
			return FCTPoint{}, err
		}
		return FCTPoint{
			Design: c.design,
			Load:   c.load,
			P50us:  st.FCTSlots.Percentile(50) * 0.1,
			P99us:  st.FCTSlots.Percentile(99) * 0.1,
			Done:   st.CompletedFlows,
		}, nil
	})
}
