package experiments

import (
	"fmt"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/faultplan"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// AvailabilityConfig parameterizes the availability experiment: open-loop
// traffic over a scripted fault plan, comparing the full semi-oblivious
// loop (demand-aware planning with graceful degradation to the oblivious
// fallback) against the static uniform oblivious schedule.
type AvailabilityConfig struct {
	N, Nc int
	// X is the offered locality of the traffic (and the initial SORN
	// provisioning point).
	X float64
	// Load is the offered load as a fraction of node bandwidth.
	Load float64
	// Slots is the run length. Window is the reporting granularity in
	// slots (default Slots/50); EpochSlots the control-loop cadence
	// (default 500).
	Slots      int64
	Window     int64
	EpochSlots int64
	// OutageStart/OutageEnd bound a telemetry outage: control epochs in
	// [OutageStart, OutageEnd) receive no traffic observations, so the
	// estimate goes stale and the controller must degrade. Zero values
	// mean telemetry stays up for the whole run.
	OutageStart, OutageEnd int64
	// Plan is the data-plane fault schedule (may be empty). Both designs
	// replay the identical plan.
	Plan *faultplan.Plan
	Seed uint64
	// Workers shards each simulation step (0 = one per CPU, 1 = serial);
	// the whole experiment is bit-identical for every value.
	Workers int
	// SweepWorkers bounds how many of the two design runs execute
	// concurrently (0 = one per CPU, 1 = serial); bit-identical results
	// for every value. Forced serial when Obs is set — one Observer serves
	// one simulation at a time and its run labels must land in order.
	SweepWorkers int
	// Obs, when non-nil, captures both runs' metric series and the
	// fault/fallback/recovery event trace.
	Obs *obs.Observer
	// Dense runs both designs on netsim's dense reference engine instead
	// of the default active-set engine (bit-identical results; disables
	// quiescence fast-forward).
	Dense bool
}

func (cfg AvailabilityConfig) withDefaults() AvailabilityConfig {
	if cfg.Window == 0 {
		cfg.Window = cfg.Slots / 50
		if cfg.Window == 0 {
			cfg.Window = 1
		}
	}
	if cfg.EpochSlots == 0 {
		cfg.EpochSlots = 500
	}
	return cfg
}

// AvailabilityWindow is one reporting window of one design's time series.
type AvailabilityWindow struct {
	Slot       int64   // window end (exclusive)
	Throughput float64 // delivered cells per node per slot within the window
	Backlog    int64   // queued cells at window end
	Lost       int64   // cells lost to failures within the window
	Dropped    int64   // cells dropped by full queues within the window
	// Degraded reports whether the control plane was on the oblivious
	// fallback at window end (always false for the static baseline).
	Degraded bool
}

// AvailabilityResult carries both time series and the degradation
// lifecycle observed during the SORN run.
type AvailabilityResult struct {
	SORN      []AvailabilityWindow
	Oblivious []AvailabilityWindow
	// FellBack / Recovered report whether the controller entered
	// degraded mode at least once, and whether it subsequently resumed
	// demand-aware operation.
	FellBack  bool
	Recovered bool
	// SORNStats / ObliviousStats are the cumulative end-of-run stats.
	SORNStats      netsim.Stats
	ObliviousStats netsim.Stats
}

// Availability runs the availability experiment. Both designs see the
// same Poisson workload (same seed) and the same fault plan; the SORN
// run additionally runs the resilient control loop every EpochSlots,
// feeding it the offered matrix as its telemetry except during the
// configured outage. The throughput/backlog/loss series shows the
// fallback costing SORN its demand-aware edge — but not its worst-case
// floor — while faults and telemetry outages are in effect, and the
// recovery restoring it.
func Availability(cfg AvailabilityConfig) (*AvailabilityResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("experiments: availability needs positive Slots, got %d", cfg.Slots)
	}
	if cfg.Plan == nil {
		var err error
		cfg.Plan, err = faultplan.New(cfg.N, nil)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Plan.N() != cfg.N {
		return nil, fmt.Errorf("experiments: fault plan over %d nodes, experiment over %d", cfg.Plan.N(), cfg.N)
	}

	// Semi-oblivious design: initial schedule provisioned at the offered
	// locality, resilient controller re-planning every epoch. The static
	// uniform oblivious baseline is the schedule the fallback uses, with
	// no control loop at all. The two design runs are independent (same
	// workload seed, same fault plan, different fabrics), so they sweep as
	// two points over cached builds. A cached build stays read-only here:
	// mid-run Reconfigure swaps the *simulator's* schedule, never the
	// shared Network's.
	sorn, err := core.SharedBuilds.SORN(cfg.N, cfg.Nc, cfg.X)
	if err != nil {
		return nil, err
	}
	tm, err := sorn.LocalityMatrix(cfg.X)
	if err != nil {
		return nil, err
	}
	obl, err := core.SharedBuilds.SORNWithQ(cfg.N, cfg.Nc, 2)
	if err != nil {
		return nil, err
	}

	type designRun struct {
		windows []AvailabilityWindow
		stats   netsim.Stats
	}
	sw := sweep.Config{Concurrency: cfg.SweepWorkers, Seed: cfg.Seed}
	if cfg.Obs != nil {
		// One Observer serves one simulation at a time, and its run labels
		// must appear in design order: a shared capture forces the sweep
		// serial regardless of the requested concurrency.
		sw.Concurrency = 1
	}
	runs, err := sweep.Run(sw, 2, func(p sweep.Point) (designRun, error) {
		simWorkers := sw.SimWorkers(2, cfg.Workers)
		if p.Index == 0 {
			ctl, err := controlplane.NewController(cfg.N, cfg.Nc, 0.5)
			if err != nil {
				return designRun{}, err
			}
			ctl.Obs = cfg.Obs
			resil := controlplane.NewResilient(ctl)
			w, st, err := runAvailability(cfg, simWorkers, sorn, tm, "SORN+fallback", resil)
			return designRun{windows: w, stats: st}, err
		}
		w, st, err := runAvailability(cfg, simWorkers, obl, tm, "oblivious", nil)
		return designRun{windows: w, stats: st}, err
	})
	if err != nil {
		return nil, err
	}

	res := &AvailabilityResult{
		SORN: runs[0].windows, SORNStats: runs[0].stats,
		Oblivious: runs[1].windows, ObliviousStats: runs[1].stats,
	}
	for _, w := range res.SORN {
		if w.Degraded {
			res.FellBack = true
		} else if res.FellBack {
			res.Recovered = true
		}
	}
	return res, nil
}

// runAvailability drives one design through the fault plan. resil is nil
// for the static baseline. The slot loop interleaves, in fixed order:
// fault events, the control epoch, flow arrivals, then the Step — so a
// slot's failures affect that slot's transmissions and a control
// decision at slot t plans against everything observed strictly before
// t.
func runAvailability(cfg AvailabilityConfig, simWorkers int, nw *core.Network, tm *workload.Matrix,
	label string, resil *controlplane.Resilient) ([]AvailabilityWindow, netsim.Stats, error) {
	if cfg.Obs != nil {
		cfg.Obs.StartRun(label)
	}
	sim, err := nw.NewSim(core.SimOptions{
		Seed: cfg.Seed, Workers: simWorkers, LatencySampleEvery: 16, Obs: cfg.Obs,
		Dense: cfg.Dense,
	})
	if err != nil {
		return nil, netsim.Stats{}, err
	}
	// The workload stream is seeded independently of the sim and shared
	// (by value of the seed) across both designs: identical arrivals,
	// identical faults, different fabrics.
	gen, err := workload.NewPoissonFlows(tm, workload.FixedSize(8), cfg.Load, cfg.Seed+1)
	if err != nil {
		return nil, netsim.Stats{}, err
	}
	flows := gen.Window(0, cfg.Slots)
	drv := faultplan.NewDriver(cfg.Plan)

	sim.StartMeasuring()
	var out []AvailabilityWindow
	var prev netsim.Stats
	next := 0
	for slot := int64(0); slot < cfg.Slots; slot++ {
		drv.Advance(sim, slot)
		if resil != nil && slot%cfg.EpochSlots == 0 {
			// Telemetry outage: the fabric keeps running, the controller
			// just stops hearing about it.
			if slot < cfg.OutageStart || slot >= cfg.OutageEnd {
				if err := resil.C.Observe(tm); err != nil {
					return nil, netsim.Stats{}, err
				}
			}
			dec, err := resil.Decide()
			if err != nil {
				return nil, netsim.Stats{}, err
			}
			if dec.Changed {
				if err := sim.Reconfigure(dec.Plan.Built.Schedule, routing.NewSORN(dec.Plan.Built)); err != nil {
					return nil, netsim.Stats{}, err
				}
			}
		}
		for next < len(flows) && flows[next].Arrival <= slot {
			f := flows[next]
			sim.InjectFlow(f.Src, f.Dst, f.Size)
			next++
		}
		sim.Step()
		if (slot+1)%cfg.Window == 0 || slot == cfg.Slots-1 {
			cur := *sim.Stats()
			w := AvailabilityWindow{
				Slot:    slot + 1,
				Backlog: sim.Backlog(),
				Lost:    cur.LostCells - prev.LostCells,
				Dropped: cur.DroppedCells - prev.DroppedCells,
			}
			span := cfg.Window
			if r := (slot + 1) % cfg.Window; r != 0 {
				span = r
			}
			w.Throughput = float64(cur.DeliveredCells-prev.DeliveredCells) /
				(float64(cfg.N) * float64(span))
			if resil != nil {
				w.Degraded = resil.Degraded()
			}
			out = append(out, w)
			prev = cur
		}
		// Once the fabric drains, nothing can happen before the next
		// arrival, fault event, control epoch, or window-report slot —
		// quiescent windows still report (zero throughput, zero
		// backlog), so report boundaries cap the skip. FastForwardTo
		// checks quiescence itself and no-ops under cfg.Dense.
		target := cfg.Slots - 1
		if fs, ok := drv.NextSlot(); ok && fs < target {
			target = fs
		}
		if next < len(flows) && flows[next].Arrival < target {
			target = flows[next].Arrival
		}
		if resil != nil {
			if ep := (slot/cfg.EpochSlots + 1) * cfg.EpochSlots; ep < target {
				target = ep
			}
		}
		if rp := ((slot+1)/cfg.Window+1)*cfg.Window - 1; rp < target {
			target = rp
		}
		if sim.FastForwardTo(target) > 0 {
			slot = sim.Slot() - 1
		}
	}
	return out, *sim.Stats(), nil
}
