package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/model"
)

// TestSweepDeterminismAcrossConcurrency pins the sweep engine's contract
// at the experiment level: a sweep's results are bit-identical whether
// its points run serially inline (Concurrency 1), on a small fixed pool,
// or one worker per point — across a simulation-heavy sweep (Fig2f, with
// and without the pooled-simulator reuse path), an analytical sweep
// (QSweep), and the stateful two-design availability run.
func TestSweepDeterminismAcrossConcurrency(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the packet simulator")
	}

	t.Run("Fig2f", func(t *testing.T) {
		cfg := fig2fTestConfig()
		run := func(sweepWorkers int, noReuse bool) string {
			cfg.SweepWorkers = sweepWorkers
			cfg.NoSimReuse = noReuse
			pts, err := Fig2f(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("%+v", pts)
		}
		ref := run(1, false)
		for _, workers := range []int{0, 2, 3, 7} {
			if got := run(workers, false); got != ref {
				t.Fatalf("SweepWorkers=%d diverged:\nserial: %s\ngot:    %s", workers, ref, got)
			}
		}
		// Fresh-per-point simulators must match the pooled ones exactly:
		// Reset reuse is invisible in the results.
		for _, workers := range []int{1, 2} {
			if got := run(workers, true); got != ref {
				t.Fatalf("NoSimReuse at SweepWorkers=%d diverged:\npooled: %s\nfresh:  %s", workers, ref, got)
			}
		}
	})

	t.Run("QSweep", func(t *testing.T) {
		qs := []float64{1, 2, model.SORNQ(0.56), 6, 12}
		ref, err := QSweep(64, 8, 0.56, qs, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 5} {
			got, err := QSweep(64, 8, 0.56, qs, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("sweepWorkers=%d diverged:\nserial: %+v\ngot:    %+v", workers, ref, got)
			}
		}
	})

	t.Run("Availability", func(t *testing.T) {
		serial := availabilityScenario(t, 1)
		serial.SweepWorkers = 1
		ref, err := Availability(serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2} {
			cfg := availabilityScenario(t, 1)
			cfg.SweepWorkers = workers
			got, err := Availability(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref.SORN, got.SORN) || !reflect.DeepEqual(ref.Oblivious, got.Oblivious) {
				t.Fatalf("SweepWorkers=%d: windows diverged", workers)
			}
			assertStatsIdentical(t, workers, "sorn", &ref.SORNStats, &got.SORNStats)
			assertStatsIdentical(t, workers, "oblivious", &ref.ObliviousStats, &got.ObliviousStats)
		}
	})
}
