package experiments

import (
	"reflect"
	"testing"

	"repro/internal/faultplan"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// availabilityScenario is the shared test configuration: data-plane
// churn (a node outage, a link outage, light random churn) plus a
// telemetry outage long enough to trip the staleness detector.
func availabilityScenario(t *testing.T, workers int) AvailabilityConfig {
	t.Helper()
	const n = 16
	scripted, err := faultplan.New(n, append(
		faultplan.Outage(7, -1, 1200, 2400),   // node 7 down for 1200 slots
		faultplan.Outage(0, 9, 800, 1600)...)) // plus a directed link
	if err != nil {
		t.Fatal(err)
	}
	churn, err := faultplan.Churn(faultplan.ChurnConfig{
		N: n, Start: 0, End: 5000, LinkRate: 0.002, Down: 150, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faultplan.Merge(scripted, churn)
	if err != nil {
		t.Fatal(err)
	}
	return AvailabilityConfig{
		N: n, Nc: 4, X: 0.6, Load: 0.2,
		Slots: 6000, Window: 250, EpochSlots: 250,
		OutageStart: 1000, OutageEnd: 3000,
		Plan: plan, Seed: 21, Workers: workers,
	}
}

func TestAvailabilityFallbackAndRecovery(t *testing.T) {
	cfg := availabilityScenario(t, 1)
	ob := obs.New(obs.Options{})
	cfg.Obs = ob
	res, err := Availability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack {
		t.Fatal("controller never fell back during the telemetry outage")
	}
	if !res.Recovered {
		t.Fatal("controller never recovered after telemetry resumed")
	}
	if len(res.SORN) != len(res.Oblivious) {
		t.Fatalf("series lengths differ: %d vs %d", len(res.SORN), len(res.Oblivious))
	}
	// Degradation must overlap the telemetry outage and be over by the
	// end of the run (telemetry is back for the last 3000 slots).
	last := res.SORN[len(res.SORN)-1]
	if last.Degraded {
		t.Fatal("still degraded at end of run despite restored telemetry")
	}
	degradedDuringOutage := false
	for _, w := range res.SORN {
		if w.Degraded && w.Slot > cfg.OutageStart && w.Slot <= cfg.OutageEnd+cfg.EpochSlots {
			degradedDuringOutage = true
		}
	}
	if !degradedDuringOutage {
		t.Fatal("no degraded window overlaps the telemetry outage")
	}
	// The fabric kept delivering while degraded: the oblivious fallback
	// trades efficiency, not availability.
	for _, w := range res.SORN {
		if w.Degraded && w.Throughput <= 0 {
			t.Fatalf("degraded window ending at slot %d delivered nothing", w.Slot)
		}
	}
	// The control events record the story: at least one fallback and one
	// recovery, in that order.
	var fbAt, recAt int64 = -1, -1
	for _, e := range ob.Events() {
		switch e.Type {
		case obs.EvFallback:
			if fbAt == -1 {
				fbAt = e.Epoch
			}
		case obs.EvRecover:
			recAt = e.Epoch
		}
	}
	if fbAt == -1 || recAt == -1 || recAt <= fbAt {
		t.Fatalf("event trace: fallback at epoch %d, recover at epoch %d", fbAt, recAt)
	}
	// Cell conservation end to end, under churn, repairs, and
	// reconfigurations: everything injected is accounted for.
	for name, st := range map[string]netsim.Stats{"sorn": res.SORNStats, "oblivious": res.ObliviousStats} {
		if st.InjectedCells == 0 {
			t.Fatalf("%s: no cells injected", name)
		}
		accounted := st.DeliveredCells + st.DroppedCells + st.LostCells
		if accounted > st.InjectedCells {
			t.Fatalf("%s: accounted %d cells exceeds injected %d", name, accounted, st.InjectedCells)
		}
	}
}

// TestAvailabilityDeterminismAcrossWorkers extends the Workers 1-vs-k
// bit-identical guarantee to runs with an active fault plan and the full
// resilient control loop in the way.
func TestAvailabilityDeterminismAcrossWorkers(t *testing.T) {
	ref, err := Availability(availabilityScenario(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		got, err := Availability(availabilityScenario(t, workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.SORN, got.SORN) {
			t.Fatalf("Workers=%d SORN series differs from Workers=1", workers)
		}
		if !reflect.DeepEqual(ref.Oblivious, got.Oblivious) {
			t.Fatalf("Workers=%d oblivious series differs from Workers=1", workers)
		}
		if ref.FellBack != got.FellBack || ref.Recovered != got.Recovered {
			t.Fatalf("Workers=%d lifecycle differs: fellback %v/%v recovered %v/%v",
				workers, ref.FellBack, got.FellBack, ref.Recovered, got.Recovered)
		}
		assertStatsIdentical(t, workers, "sorn", &ref.SORNStats, &got.SORNStats)
		assertStatsIdentical(t, workers, "oblivious", &ref.ObliviousStats, &got.ObliviousStats)
	}
}

func assertStatsIdentical(t *testing.T, workers int, label string, a, b *netsim.Stats) {
	t.Helper()
	type counters struct {
		delivered, injected, sent, idle, lost, dropped, measured, completed int64
	}
	ca := counters{a.DeliveredCells, a.InjectedCells, a.SentCells, a.IdleSlots,
		a.LostCells, a.DroppedCells, a.MeasuredSlots, a.CompletedFlows}
	cb := counters{b.DeliveredCells, b.InjectedCells, b.SentCells, b.IdleSlots,
		b.LostCells, b.DroppedCells, b.MeasuredSlots, b.CompletedFlows}
	if ca != cb {
		t.Fatalf("Workers=%d %s stats differ:\n  1: %+v\n  k: %+v", workers, label, ca, cb)
	}
	if !reflect.DeepEqual(a.LatencySlots.Values(), b.LatencySlots.Values()) {
		t.Fatalf("Workers=%d %s latency samples differ", workers, label)
	}
	if !reflect.DeepEqual(a.FCTSlots.Values(), b.FCTSlots.Values()) {
		t.Fatalf("Workers=%d %s FCT samples differ", workers, label)
	}
}
