package experiments

import (
	"fmt"
	"testing"
)

// fig2fTestConfig is a small-but-real sweep: three points with the
// packet simulator on, sized to finish in a couple of seconds.
func fig2fTestConfig() Fig2fConfig {
	cfg := DefaultFig2fConfig()
	cfg.N, cfg.Nc = 64, 8
	cfg.Step = 0.5
	cfg.WarmupSlots, cfg.MeasureSlots, cfg.Backlog = 1500, 1500, 512
	cfg.Seed = 7
	return cfg
}

// TestFig2fDeterministic guards the determinism contract the linter
// (internal/lint) enforces statically: two identical seeded end-to-end
// runs — goroutine fan-out, packet simulation, fluid solve and all —
// must produce byte-identical results. Each Fig2f worker runs on its own
// rng.Split stream derived serially from the sweep seed, so goroutine
// scheduling must not be able to leak into the numbers.
func TestFig2fDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the packet simulator")
	}
	cfg := fig2fTestConfig()
	run := func() string {
		pts, err := Fig2f(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", pts)
	}
	first := run()
	for i := 0; i < 2; i++ {
		if again := run(); again != first {
			t.Fatalf("identical seeded runs diverged:\nrun 0: %s\nrun %d: %s", first, i+1, again)
		}
	}
}

// TestFig2fSeedSensitivity is the counterpart: a different seed must
// actually change the simulated series, otherwise the determinism test
// above would pass vacuously.
func TestFig2fSeedSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the packet simulator")
	}
	cfg := fig2fTestConfig()
	a, err := Fig2f(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 8
	b, err := Fig2f(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", b) {
		t.Fatal("changing the sweep seed did not change the simulated results")
	}
}
