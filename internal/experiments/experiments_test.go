package experiments

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/model"
)

func TestFig2fShapeWithoutSim(t *testing.T) {
	cfg := DefaultFig2fConfig()
	cfg.RunSim = false
	cfg.N, cfg.Nc = 64, 8
	cfg.Step = 0.25
	pts, err := Fig2f(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	prev := 0.0
	for _, p := range pts {
		if math.Abs(p.Theory-model.SORNThroughput(p.X)) > 1e-12 {
			t.Errorf("x=%f theory wrong", p.X)
		}
		// Fluid tracks theory within 15% and is monotone-ish increasing.
		if math.Abs(p.Fluid-p.Theory)/p.Theory > 0.15 {
			t.Errorf("x=%f fluid %f vs theory %f", p.X, p.Fluid, p.Theory)
		}
		if p.Fluid < prev-0.02 {
			t.Errorf("fluid series decreased at x=%f", p.X)
		}
		prev = p.Fluid
		if p.Sim != 0 {
			t.Errorf("sim ran despite RunSim=false")
		}
	}
}

func TestFig2fWithSimSinglePoint(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation point is slow")
	}
	cfg := DefaultFig2fConfig()
	cfg.N, cfg.Nc = 64, 8
	cfg.Step = 1.1 // the index grid always covers both endpoints: x=0 and x=1
	cfg.WarmupSlots, cfg.MeasureSlots, cfg.Backlog = 25000, 25000, 2048
	pts, err := Fig2f(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].X != 0 || pts[1].X != 1 {
		t.Fatalf("grid %+v, want endpoints {0, 1}", pts)
	}
	for _, p := range pts {
		if math.Abs(p.Sim-p.Theory)/p.Theory > 0.15 {
			t.Fatalf("x=%v sim %f too far from theory %f", p.X, p.Sim, p.Theory)
		}
	}
}

func TestLocalityMismatchMargin(t *testing.T) {
	// Provisioning for x=0.5 and being wrong by ±0.2 must cost only a
	// bounded fraction of throughput — the §6 robustness claim.
	pts, err := LocalityMismatch(64, 8, []float64{0.5}, []float64{0.3, 0.5, 0.7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var matched, low, high float64
	for _, p := range pts {
		switch p.XActual {
		case 0.5:
			matched = p.Fluid
		case 0.3:
			low = p.Fluid
		case 0.7:
			high = p.Fluid
		}
		// Fluid is never below the conservative model.
		if p.Fluid < p.Model-1e-9 {
			t.Errorf("fluid %f below model %f at (%f,%f)", p.Fluid, p.Model, p.XPlanned, p.XActual)
		}
	}
	// A ±0.2 locality estimation error costs at most ~30%% of throughput
	// (the §6 "healthy estimation error margin"), and over-estimation is
	// cheaper than under-estimation.
	if low < 0.65*matched || high < 0.65*matched {
		t.Fatalf("mismatch margin too brittle: matched=%f low=%f high=%f", matched, low, high)
	}
	if high < low {
		t.Fatalf("over-provisioned locality should degrade less: low=%f high=%f", low, high)
	}
}

func TestQSweepKneeAtOptimum(t *testing.T) {
	x := 0.5
	qStar := model.SORNQ(x) // 4
	pts, err := QSweep(64, 8, x, []float64{1, 2, qStar, 8, 12}, 1)
	if err != nil {
		t.Fatal(err)
	}
	best, bestQ := 0.0, 0.0
	for _, p := range pts {
		if p.Fluid > best {
			best, bestQ = p.Fluid, p.Q
		}
	}
	if math.Abs(bestQ-qStar) > 1.0 {
		t.Fatalf("best q = %f, want near q* = %f", bestQ, qStar)
	}
}

func TestNcSweepLatencySplit(t *testing.T) {
	p := model.Table1Params()
	rows, err := NcSweep(p, 0.56, []int{8, 16, 32, 64, 128, 256}, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	// More cliques -> smaller cliques -> lower intra latency, higher
	// inter latency.
	for i := 1; i < len(rows); i++ {
		if rows[i].IntraDM >= rows[i-1].IntraDM {
			t.Errorf("intra δm not decreasing at Nc=%d", rows[i].Nc)
		}
		if rows[i].InterDM <= rows[i-1].InterDM && rows[i].Nc > 32 {
			t.Errorf("inter δm not increasing at Nc=%d", rows[i].Nc)
		}
	}
	// Built-schedule worst-case wait within 40% of the formula.
	for _, r := range rows {
		if r.MeasuredIntraWait == 0 {
			continue
		}
		ratio := float64(r.MeasuredIntraWait) / float64(r.TheoreticIntraWait)
		if ratio > 1.4 || ratio < 0.5 {
			t.Errorf("Nc=%d measured intra wait %d vs theory %d", r.Nc, r.MeasuredIntraWait, r.TheoreticIntraWait)
		}
	}
}

func TestBlastRadiusModularity(t *testing.T) {
	rows, err := BlastRadius(64, 8, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	sorn, flat := rows[0], rows[1]
	if sorn.NodeBlast >= flat.NodeBlast/2 {
		t.Fatalf("SORN node blast %f not well below flat %f", sorn.NodeBlast, flat.NodeBlast)
	}
	// Link blast radius is structurally (2(n-1)-1)/(n(n-1)) for both
	// designs' intra links; SORN's inter-clique links affect only
	// clique-pair traffic, which is smaller.
	if sorn.InterLink >= flat.IntraLink {
		t.Fatalf("SORN inter-link blast %f not below flat link %f", sorn.InterLink, flat.IntraLink)
	}
}

func TestAdaptationRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level adaptation run is slow")
	}
	phases, err := Adaptation(AdaptationConfig{N: 64, Nc: 8, X1: 0.2, X2: 0.8, PhaseSlots: 6000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 {
		t.Fatalf("%d phases", len(phases))
	}
	matched, stale, adapted := phases[0], phases[1], phases[2]
	// After adaptation, q must have risen and throughput must beat the
	// stale phase.
	if adapted.Q <= stale.Q {
		t.Fatalf("q did not rise: %f -> %f", stale.Q, adapted.Q)
	}
	if adapted.Throughput <= stale.Throughput {
		t.Fatalf("adaptation did not help: stale %f adapted %f", stale.Throughput, adapted.Throughput)
	}
	// And the adapted phase approaches the theory for x2=0.8 (0.4545).
	if adapted.Throughput < 0.38 {
		t.Fatalf("adapted throughput %f too low", adapted.Throughput)
	}
	_ = matched
}

func TestGravityRobustness(t *testing.T) {
	pts, err := Gravity(64, 8, []float64{4, 2, 2, 1, 1, 1, 1, 1}, []float64{1, 2, 3, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, p := range pts {
		if p.Theta <= 0 {
			t.Fatalf("q=%f theta=%f", p.Q, p.Theta)
		}
		if p.Theta > best {
			best = p.Theta
		}
	}
	// Even with a 4:1 gravity skew on a uniform inter-clique schedule,
	// some q sustains meaningful throughput; the loss versus the uniform
	// aggregate (~1/3) quantifies what the §5 "Expressivity" extension
	// (non-uniform inter-clique bandwidth) would recover.
	if best < 0.12 {
		t.Fatalf("best gravity throughput %f too low", best)
	}
}

func TestExpressivityDemandAwareWins(t *testing.T) {
	// With partnered cliques exchanging half their demand, the BvN
	// demand-aware schedule must beat the uniform inter allocation.
	rows, err := Expressivity(64, 8, 3, 0.2, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	uniform, aware := rows[0], rows[1]
	if aware.Theta <= uniform.Theta*1.3 {
		t.Fatalf("demand-aware θ=%f should far exceed uniform θ=%f", aware.Theta, uniform.Theta)
	}
}

func TestExpressivityUniformPatternNoRegression(t *testing.T) {
	// Under a pattern with no partner skew, demand-aware should roughly
	// match uniform (the floor and quantization cost a little).
	rows, err := Expressivity(64, 8, 3, 0.2, 1.0/7.0*0.8)
	if err != nil {
		t.Fatal(err)
	}
	uniform, aware := rows[0], rows[1]
	if aware.Theta < uniform.Theta*0.7 {
		t.Fatalf("demand-aware θ=%f regressed badly vs uniform θ=%f", aware.Theta, uniform.Theta)
	}
}

func TestLatencyComparisonOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("four packet simulations")
	}
	rows, err := LatencyComparison(64, 8, 1, 0.05, 17, 1)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]LatencyRow{}
	for _, r := range rows {
		byKey[r.Design+"/"+r.Class] = r
	}
	sornIntra := byKey["SORN/intra-clique"]
	sornInter := byKey["SORN/inter-clique"]
	orn1 := byKey["1D ORN (Sirius)/all"]
	orn2 := byKey["2D ORN/all"]
	// Table 1's ordering at equal N: SORN intra fastest; 2D ORN and SORN
	// inter both far below 1D ORN.
	if !(sornIntra.P50us < orn2.P50us && orn2.P50us < orn1.P50us) {
		t.Fatalf("latency ordering violated: sorn-intra %.2f, 2d %.2f, 1d %.2f",
			sornIntra.P50us, orn2.P50us, orn1.P50us)
	}
	if sornInter.P50us >= orn1.P50us {
		t.Fatalf("SORN inter p50 %.2f not below 1D ORN %.2f", sornInter.P50us, orn1.P50us)
	}
	// Hop counts reflect the designs: ~2 for SORN intra, ~3 inter, ~4 2D.
	if sornInter.MeanHops < 2.3 || orn2.MeanHops < 2.5 {
		t.Fatalf("hop counts implausible: inter %.2f, 2d %.2f", sornInter.MeanHops, orn2.MeanHops)
	}
}

func TestPlaneSweepDividesWait(t *testing.T) {
	if testing.Short() {
		t.Skip("packet simulations")
	}
	pts, err := PlaneSweep(PlaneSweepConfig{
		N: 64, Nc: 8, X: 0.56, Planes: []int{1, 8}, Load: 0.05, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	// Propagation (0.5µs/hop, ~2.2 hops) is a floor; the schedule-wait
	// component above it must shrink by several x with 8 planes.
	const propFloor = 1.1
	wait1 := pts[0].P50us - propFloor
	wait8 := pts[1].P50us - propFloor
	if wait8 > wait1/2.5 {
		t.Fatalf("8 planes wait %.2fµs vs 1 plane %.2fµs — not divided", wait8, wait1)
	}
}

func TestSyncOverheadFavorsSORNAtShortSlots(t *testing.T) {
	rows := SyncOverhead(4096, 64, 0.56, 4, []float64{1000, 100, 60})
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.SORNEff < r.FlatEff {
			t.Fatalf("slot %.0f: SORN efficiency %f below flat %f", r.SlotNS, r.SORNEff, r.FlatEff)
		}
	}
	// At generous slots the two designs are near-equal; at short slots
	// SORN's advantage grows and it can even overtake the flat design's
	// absolute throughput despite the lower r.
	if rows[0].SORNEff-rows[0].FlatEff > 0.1 {
		t.Fatal("1 µs slots should make sync overhead negligible")
	}
	short := rows[2]
	if short.SORNThpt <= short.FlatThpt {
		t.Fatalf("at 60 ns slots SORN thpt %f should beat flat %f", short.SORNThpt, short.FlatThpt)
	}
}

func TestStateScaling(t *testing.T) {
	rows, err := StateScaling([]int{256, 1024, 4096}, 0.56)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.SORNStateBytes >= r.FlatStateBytes {
			t.Fatalf("N=%d: SORN state %dB not below flat %dB", r.N, r.SORNStateBytes, r.FlatStateBytes)
		}
		if i > 0 && rows[i].FlatStateBytes <= rows[i-1].FlatStateBytes {
			t.Fatal("flat state must grow with N")
		}
	}
	// At 4096 nodes the flat design's state is ~an order of magnitude
	// larger than SORN's.
	last := rows[len(rows)-1]
	if last.FlatStateBytes < 5*last.SORNStateBytes {
		t.Fatalf("expected ~10x state gap at N=4096, got %dB vs %dB",
			last.FlatStateBytes, last.SORNStateBytes)
	}
}

func TestDiurnalTracking(t *testing.T) {
	pts, err := Diurnal(DiurnalConfig{N: 64, Nc: 8, Lo: 0.2, Hi: 0.8, Period: 12, Epochs: 36})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 36 {
		t.Fatalf("%d points", len(pts))
	}
	adaptive, static, clair := DiurnalSummary(pts)
	if adaptive <= static {
		t.Fatalf("adaptive mean r %f not above static %f", adaptive, static)
	}
	if adaptive > clair+1e-9 {
		t.Fatalf("adaptive %f exceeds clairvoyant %f", adaptive, clair)
	}
	// With the EWMA lag, adaptive recovers most of the clairvoyant gap.
	if (adaptive-static)/(clair-static) < 0.5 {
		t.Fatalf("adaptive recovers too little: a=%f s=%f c=%f", adaptive, static, clair)
	}
	// The estimate lags the truth but stays in [0,1].
	for _, p := range pts {
		if p.EstimateX < 0 || p.EstimateX > 1 {
			t.Fatalf("estimate %f out of range", p.EstimateX)
		}
	}
}

func TestFCTvsLoadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("several packet simulations")
	}
	pts, err := FCTvsLoad(FCTConfig{N: 64, Nc: 8, X: 0.56, Loads: []float64{0.1, 0.25}, Slots: 20000, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]FCTPoint{}
	for _, p := range pts {
		byKey[fmt.Sprintf("%s@%.2f", p.Design, p.Load)] = p
		if p.Done == 0 {
			t.Fatalf("%s@%.2f completed no flows", p.Design, p.Load)
		}
	}
	// SORN's median FCT beats the flat design at both loads (the
	// shorter schedule cycle dominates short-flow completion).
	for _, load := range []string{"0.10", "0.25"} {
		s := byKey["SORN@"+load]
		f := byKey["1D ORN@"+load]
		if s.P50us >= f.P50us {
			t.Fatalf("load %s: SORN p50 %.1f not below flat %.1f", load, s.P50us, f.P50us)
		}
	}
	// FCT grows with load within each design.
	if byKey["SORN@0.25"].P50us < byKey["SORN@0.10"].P50us {
		t.Fatal("SORN FCT did not grow with load")
	}
}
