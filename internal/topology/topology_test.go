package topology

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/schedule"
)

func TestFromScheduleRoundRobin(t *testing.T) {
	g := FromSchedule(matching.RoundRobin(8))
	if g.N() != 8 {
		t.Fatalf("n = %d", g.N())
	}
	for u := 0; u < 8; u++ {
		if g.OutDegree(u) != 7 {
			t.Fatalf("node %d out-degree %d", u, g.OutDegree(u))
		}
		if math.Abs(g.OutWeight(u)-1) > 1e-9 {
			t.Fatalf("node %d out-weight %f", u, g.OutWeight(u))
		}
		for v := 0; v < 8; v++ {
			if u == v {
				continue
			}
			if w := g.Weight(u, v); math.Abs(w-1.0/7) > 1e-9 {
				t.Fatalf("edge %d->%d weight %f", u, v, w)
			}
		}
	}
	d, ok := g.Diameter()
	if !ok || d != 1 {
		t.Fatalf("round robin diameter = %d,%v, want 1 (full mesh)", d, ok)
	}
}

func TestFromScheduleSORNWeights(t *testing.T) {
	// Topology A (Fig 2d): intra-clique virtual edges carry 3x the
	// bandwidth of the total inter-clique allocation per node.
	a := schedule.TopologyA()
	g := FromSchedule(a.Schedule)
	intra := g.Weight(0, 1) + g.Weight(0, 2) + g.Weight(0, 3)
	inter := 0.0
	for v := 4; v < 8; v++ {
		inter += g.Weight(0, v)
	}
	if math.Abs(intra/inter-3) > 1e-9 {
		t.Fatalf("intra/inter bandwidth ratio = %f, want 3", intra/inter)
	}
}

func TestBFSAndDiameter(t *testing.T) {
	// Directed cycle 0->1->2->3->0: diameter 3.
	g := NewGraph(4)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, (i+1)%4, 1)
	}
	dist := g.BFS(0)
	want := []int{0, 1, 2, 3}
	for i, d := range want {
		if dist[i] != d {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], d)
		}
	}
	d, ok := g.Diameter()
	if !ok || d != 3 {
		t.Fatalf("diameter = %d,%v", d, ok)
	}
	avg, err := g.AvgPathLength()
	if err != nil || math.Abs(avg-2) > 1e-9 {
		t.Fatalf("avg path length = %f, %v", avg, err)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	if _, ok := g.Diameter(); ok {
		t.Fatal("disconnected graph reported connected")
	}
	if _, err := g.AvgPathLength(); err == nil {
		t.Fatal("AvgPathLength on disconnected graph did not error")
	}
	dist := g.BFS(0)
	if dist[2] != -1 {
		t.Fatal("unreachable node should have distance -1")
	}
}

func TestRandomDerangement(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(50)
		m, err := RandomDerangement(n, r)
		if err != nil {
			return false
		}
		return m.Validate() == nil
	}, nil); err != nil {
		t.Error(err)
	}
	if _, err := RandomDerangement(1, rng.New(1)); err == nil {
		t.Error("n=1 derangement accepted")
	}
}

func TestExpanderSmallDiameter(t *testing.T) {
	// The Opera-like claim behind Table 1: a modest-degree random regular
	// digraph over many nodes has tiny diameter, so short flows traverse
	// few hops. Degree 8 over 512 nodes should give diameter <= 4.
	r := rng.New(42)
	g, err := RandomRegularDigraph(512, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := g.Diameter()
	if !ok {
		t.Fatal("expander not strongly connected")
	}
	if d > 5 {
		t.Fatalf("expander diameter %d, want <= 5 (~log_8 512 + slack)", d)
	}
}

func TestRandomRegularDigraphErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := RandomRegularDigraph(8, 0, r); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := RandomRegularDigraph(8, 8, r); err == nil {
		t.Error("degree n accepted")
	}
}

func TestRemoveEdgeAndNode(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if c.Weight(0, 1) != 0 || g.Weight(0, 1) != 1 {
		t.Fatal("RemoveEdge/Clone interaction wrong")
	}
	c2 := g.Clone()
	c2.RemoveNode(1)
	if c2.OutDegree(1) != 0 || c2.Weight(0, 1) != 0 {
		t.Fatal("RemoveNode did not isolate node")
	}
	if g.OutDegree(1) != 1 {
		t.Fatal("RemoveNode mutated the original")
	}
}

func TestOptimalORNTopologyDiameter(t *testing.T) {
	// A 2D ORN over 64 nodes (base 8) emulates a topology where any node
	// is reachable in at most 2 hops (fix each digit once).
	o, err := schedule.BuildOptimalORN(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := FromSchedule(o.Schedule)
	d, ok := g.Diameter()
	if !ok || d != 2 {
		t.Fatalf("2D ORN diameter = %d,%v, want 2", d, ok)
	}
}

func BenchmarkDiameterExpander(b *testing.B) {
	g, err := RandomRegularDigraph(256, 8, rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Diameter()
	}
}
