// Package topology derives and analyzes the logical topologies that circuit
// schedules emulate. A schedule in which circuit u→v occupies a fraction l
// of slots realizes a virtual edge of bandwidth b·l for node bandwidth b
// (paper §4, "Topology"). The package also provides the expander graphs
// Opera-style designs route over, and the graph metrics (diameter, path
// counts, blast radius inputs) used by the ablation experiments.
package topology

import (
	"fmt"

	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/sortedmap"
)

// Graph is a weighted directed graph over n nodes. Weights are bandwidth
// fractions (dimensionless, relative to node bandwidth b = 1).
type Graph struct {
	n   int
	adj []map[int]float64 // adj[u][v] = weight of edge u->v
}

// NewGraph returns an empty graph over n nodes.
func NewGraph(n int) *Graph {
	g := &Graph{n: n, adj: make([]map[int]float64, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]float64)
	}
	return g
}

// FromSchedule builds the logical topology a schedule emulates: edge u→v
// has weight equal to the fraction of slots in which u circuits to v.
func FromSchedule(s *matching.Schedule) *Graph {
	g := NewGraph(s.N)
	inc := 1 / float64(s.Period())
	for _, m := range s.Slots {
		for u, v := range m {
			g.adj[u][v] += inc
		}
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge adds weight w to edge u→v.
func (g *Graph) AddEdge(u, v int, w float64) { g.adj[u][v] += w }

// Weight returns the weight of edge u→v (0 when absent).
func (g *Graph) Weight(u, v int) float64 { return g.adj[u][v] }

// OutDegree returns the number of distinct out-neighbors of u.
func (g *Graph) OutDegree(u int) int { return len(g.adj[u]) }

// Neighbors calls fn for each out-neighbor of u with its weight, in
// ascending neighbor order so callers observe a deterministic sequence.
func (g *Graph) Neighbors(u int, fn func(v int, w float64)) {
	sortedmap.Range(g.adj[u], fn)
}

// OutWeight returns the total outgoing weight of u; for a schedule-derived
// graph this is 1 (every slot circuits u somewhere).
func (g *Graph) OutWeight(u int) float64 {
	sum := 0.0
	sortedmap.Range(g.adj[u], func(_ int, w float64) { sum += w })
	return sum
}

// BFS returns hop distances from src over edges with positive weight;
// unreachable nodes get -1.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range sortedmap.Keys(g.adj[u]) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Diameter returns the maximum finite hop distance over all ordered pairs,
// and whether the graph is strongly connected.
func (g *Graph) Diameter() (int, bool) {
	max := 0
	for u := 0; u < g.n; u++ {
		for _, d := range g.BFS(u) {
			if d < 0 {
				return 0, false
			}
			if d > max {
				max = d
			}
		}
	}
	return max, true
}

// AvgPathLength returns the mean hop distance over all ordered pairs of
// distinct nodes; the graph must be strongly connected.
func (g *Graph) AvgPathLength() (float64, error) {
	total, count := 0, 0
	for u := 0; u < g.n; u++ {
		for v, d := range g.BFS(u) {
			if v == u {
				continue
			}
			if d < 0 {
				return 0, fmt.Errorf("topology: graph not strongly connected (no path %d->%d)", u, v)
			}
			total += d
			count++
		}
	}
	return float64(total) / float64(count), nil
}

// RandomRegularDigraph returns a d-regular digraph over n nodes built as
// the union of d random derangement matchings — the expander construction
// Opera-style designs rely on. Each node has out-degree and in-degree d
// (counting multiplicity; distinct neighbors may be fewer by collision).
func RandomRegularDigraph(n, d int, r *rng.RNG) (*Graph, error) {
	if d < 1 || d >= n {
		return nil, fmt.Errorf("topology: degree %d out of range for n=%d", d, n)
	}
	g := NewGraph(n)
	for i := 0; i < d; i++ {
		m, err := RandomDerangement(n, r)
		if err != nil {
			return nil, err
		}
		for u, v := range m {
			g.adj[u][v] += 1 / float64(d)
		}
	}
	return g, nil
}

// RandomDerangement returns a uniform-ish random permutation of [0, n)
// without fixed points, by rejection sampling over Fisher–Yates shuffles.
func RandomDerangement(n int, r *rng.RNG) (matching.Matching, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: derangement needs n >= 2, got %d", n)
	}
	for attempt := 0; attempt < 1000; attempt++ {
		p := r.Perm(n)
		ok := true
		for i, v := range p {
			if i == v {
				ok = false
				break
			}
		}
		if ok {
			return matching.Matching(p), nil
		}
	}
	// Probability of 1000 consecutive rejections is (1-1/e)^1000 ≈ 0;
	// reaching here indicates a broken RNG.
	return nil, fmt.Errorf("topology: derangement sampling did not converge")
}

// RemoveEdge deletes the edge u→v, used for failure injection.
func (g *Graph) RemoveEdge(u, v int) { delete(g.adj[u], v) }

// RemoveNode deletes all edges incident to node u (the node id remains,
// isolated), used for node-failure injection.
func (g *Graph) RemoveNode(u int) {
	g.adj[u] = make(map[int]float64)
	for w := 0; w < g.n; w++ {
		delete(g.adj[w], u)
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.n)
	for u, m := range g.adj {
		for v, w := range m {
			c.adj[u][v] = w
		}
	}
	return c
}
