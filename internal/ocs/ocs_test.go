package ocs

import (
	"testing"

	"repro/internal/matching"
	"repro/internal/schedule"
)

func TestAWGRBasics(t *testing.T) {
	sw, err := NewAWGR(8)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Ports() != 8 || sw.NumWavelengths() != 7 {
		t.Fatalf("ports=%d wavelengths=%d", sw.Ports(), sw.NumWavelengths())
	}
	// λ3 from port 2 lands on port 5.
	m := sw.Matching(3)
	if m[2] != 5 {
		t.Fatalf("λ3 routes port 2 to %d, want 5", m[2])
	}
	w, ok := sw.WavelengthFor(2, 5)
	if !ok || w != 3 {
		t.Fatalf("WavelengthFor(2,5) = %d,%v", w, ok)
	}
	// Wrap-around: 6 -> 1 needs λ3.
	w, ok = sw.WavelengthFor(6, 1)
	if !ok || w != 3 {
		t.Fatalf("WavelengthFor(6,1) = %d,%v", w, ok)
	}
	if _, ok := sw.WavelengthFor(3, 3); ok {
		t.Fatal("self circuit should have no wavelength")
	}
	if _, ok := sw.WavelengthFor(-1, 3); ok {
		t.Fatal("out-of-range port accepted")
	}
	if _, err := NewAWGR(1); err == nil {
		t.Fatal("1-port switch accepted")
	}
}

func TestWavelengthMatchingConsistency(t *testing.T) {
	sw, _ := NewAWGR(16)
	for k := 1; k < 16; k++ {
		m := sw.Matching(k)
		for s, d := range m {
			w, ok := sw.WavelengthFor(s, d)
			if !ok || w != k {
				t.Fatalf("λ%d: port %d->%d, WavelengthFor gives %d,%v", k, s, d, w, ok)
			}
		}
	}
}

func TestCompileNodeStatesRoundRobin(t *testing.T) {
	sw, _ := NewAWGR(8)
	s := matching.RoundRobin(8)
	states, err := CompileNodeStates(sw, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 8 {
		t.Fatalf("%d states", len(states))
	}
	// In a round robin, node n transmits wavelength t+1 in slot t.
	for _, ns := range states {
		for slot, w := range ns.TxWavelength {
			if w != slot+1 {
				t.Fatalf("node %d slot %d: λ%d, want λ%d", ns.Node, slot, w, slot+1)
			}
		}
		if len(ns.Neighbors) != 7 {
			t.Fatalf("node %d neighbors %d", ns.Node, len(ns.Neighbors))
		}
		if ns.StateBytes() != 2*7+16*7 {
			t.Fatalf("state bytes = %d", ns.StateBytes())
		}
	}
}

func TestCompileNodeStatesSORN(t *testing.T) {
	sw, _ := NewAWGR(8)
	a := schedule.TopologyA()
	states, err := CompileNodeStates(sw, a.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the compiled wavelengths must reproduce the schedule.
	for _, ns := range states {
		for slot, w := range ns.TxWavelength {
			if got := sw.Matching(w)[ns.Node]; got != a.Schedule.Slots[slot][ns.Node] {
				t.Fatalf("node %d slot %d: wavelength replay gives %d, schedule says %d",
					ns.Node, slot, got, a.Schedule.Slots[slot][ns.Node])
			}
		}
	}
}

func TestCompileNodeStatesSizeMismatch(t *testing.T) {
	sw, _ := NewAWGR(8)
	if _, err := CompileNodeStates(sw, matching.RoundRobin(4)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestPlanUpdateRebalanceKeepsNeighbors(t *testing.T) {
	// Rebalancing q within the same cliques must preserve the neighbor
	// superset (no drains) — the paper's §5 argument.
	s1, err := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 2, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 2, Q: 7})
	if err != nil {
		t.Fatal(err)
	}
	u, err := PlanUpdate(s1.Schedule, s2.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !u.PreservesNeighborSuperset() {
		t.Fatalf("q rebalance required %d drains; removed=%v",
			u.DrainsRequired(), u.RemovedNeighbors)
	}
	if u.TotalSlotChanges() == 0 {
		t.Fatal("q rebalance changed no slots")
	}
}

func TestPlanUpdateReclusterNeedsDrains(t *testing.T) {
	// Changing the clique structure removes neighbors, requiring drains.
	s1, _ := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 2, Q: 2})
	s2, _ := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 4, Q: 2})
	u, err := PlanUpdate(s1.Schedule, s2.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if u.DrainsRequired() == 0 {
		t.Fatal("re-clustering reported zero drains")
	}
}

func TestPlanUpdateIdentity(t *testing.T) {
	s := matching.RoundRobin(8)
	u, err := PlanUpdate(s, s)
	if err != nil {
		t.Fatal(err)
	}
	if u.TotalSlotChanges() != 0 || u.DrainsRequired() != 0 {
		t.Fatal("identity update not a no-op")
	}
}

func TestPlanUpdateErrors(t *testing.T) {
	if _, err := PlanUpdate(matching.RoundRobin(8), matching.RoundRobin(4)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	bad := &matching.Schedule{N: 8}
	if _, err := PlanUpdate(matching.RoundRobin(8), bad); err == nil {
		t.Fatal("empty new schedule accepted")
	}
}

func TestFabricApply(t *testing.T) {
	sw, _ := NewAWGR(8)
	f, err := NewFabric(sw, matching.RoundRobin(8))
	if err != nil {
		t.Fatal(err)
	}
	if f.Epoch() != 0 {
		t.Fatal("fresh fabric epoch != 0")
	}
	a := schedule.TopologyA()
	u, err := f.Apply(a.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if f.Epoch() != 1 {
		t.Fatal("epoch did not advance")
	}
	if f.Schedule() != a.Schedule {
		t.Fatal("schedule not swapped")
	}
	if len(f.States()) != 8 {
		t.Fatal("states not recompiled")
	}
	// Moving from full round robin to topology A drops inter-clique
	// neighbors: drains must be reported.
	if u.DrainsRequired() == 0 {
		t.Fatal("RR -> topology A should require drains")
	}
}

func TestLCMPeriodDiffing(t *testing.T) {
	// Two schedules equal as infinite sequences but with different
	// written periods must diff to zero changes.
	s1 := &matching.Schedule{N: 4, Slots: []matching.Matching{
		matching.CyclicShift(4, 1), matching.CyclicShift(4, 2),
	}}
	s2 := &matching.Schedule{N: 4, Slots: []matching.Matching{
		matching.CyclicShift(4, 1), matching.CyclicShift(4, 2),
		matching.CyclicShift(4, 1), matching.CyclicShift(4, 2),
	}}
	u, err := PlanUpdate(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if u.TotalSlotChanges() != 0 {
		t.Fatalf("equivalent schedules show %d slot changes", u.TotalSlotChanges())
	}
}

func TestNewFabricRejectsMismatch(t *testing.T) {
	sw, _ := NewAWGR(8)
	if _, err := NewFabric(sw, matching.RoundRobin(4)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestFabricApplyRejectsInvalid(t *testing.T) {
	sw, _ := NewAWGR(8)
	f, err := NewFabric(sw, matching.RoundRobin(8))
	if err != nil {
		t.Fatal(err)
	}
	bad := &matching.Schedule{N: 8}
	if _, err := f.Apply(bad); err == nil {
		t.Fatal("invalid schedule applied")
	}
	if f.Epoch() != 0 {
		t.Fatal("failed apply advanced the epoch")
	}
}

func TestStateBytesScalesWithPeriod(t *testing.T) {
	sw, _ := NewAWGR(8)
	short, _ := CompileNodeStates(sw, schedule.TopologyA().Schedule)
	long, _ := CompileNodeStates(sw, matching.RoundRobin(8))
	if short[0].StateBytes() >= long[0].StateBytes() {
		t.Fatalf("4-slot schedule state %dB not below 7-slot %dB",
			short[0].StateBytes(), long[0].StateBytes())
	}
}
