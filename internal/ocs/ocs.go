// Package ocs models the optical circuit switching substrate of the paper's
// §4–§5: a wavelength-selective switch (AWGR-style, as in Sirius) that
// realizes one matching per wavelength, the per-node transmit state that
// implements a circuit schedule (Figure 2c), and the schedule-update
// planning a semi-oblivious control plane performs when it adapts the
// topology.
//
// The key physical property modeled: the circuit schedule lives entirely in
// node state (which wavelength each node transmits in each slot), so
// reconfiguring the logical topology is a synchronized rewrite of node
// state, not a change to the passive optical core.
package ocs

import (
	"fmt"
	"sort"

	"repro/internal/matching"
)

// Switch is a wavelength-selective optical circuit switch with one port
// per node. Wavelength λk (k in [1, Ports)) routes light entering port s
// to port (s+k) mod Ports — the arrayed waveguide grating router (AWGR)
// behavior of Figure 2(a). The switch is passive: it holds no schedule.
type Switch struct {
	ports int
}

// NewAWGR returns an AWGR-style switch with the given port count.
func NewAWGR(ports int) (*Switch, error) {
	if ports < 2 {
		return nil, fmt.Errorf("ocs: switch needs at least 2 ports, got %d", ports)
	}
	return &Switch{ports: ports}, nil
}

// Ports returns the port count.
func (sw *Switch) Ports() int { return sw.ports }

// NumWavelengths returns the number of usable wavelengths (port count − 1;
// wavelength 0 would route a port to itself).
func (sw *Switch) NumWavelengths() int { return sw.ports - 1 }

// Matching returns the matching wavelength λk realizes (Figure 2(b)).
func (sw *Switch) Matching(k int) matching.Matching {
	return matching.CyclicShift(sw.ports, k)
}

// WavelengthFor returns the wavelength a node at port src must transmit to
// reach port dst, and whether such a wavelength exists (it does for all
// src ≠ dst on an AWGR).
func (sw *Switch) WavelengthFor(src, dst int) (int, bool) {
	if src == dst || src < 0 || dst < 0 || src >= sw.ports || dst >= sw.ports {
		return 0, false
	}
	return ((dst-src)%sw.ports + sw.ports) % sw.ports, true
}

// NodeState is the per-node hardware state of Figure 2(c): the wavelength
// to transmit in each slot of the schedule period, plus the fixed set of
// neighbors for which the NIC keeps queues. The schedule is realized by
// all nodes cycling this state synchronously.
type NodeState struct {
	Node         int
	TxWavelength []int // per slot in the period
	Neighbors    []int // sorted superset of destinations ever circuited to
}

// CompileNodeStates lowers a schedule onto a switch, producing the transmit
// state every node must hold. It fails if any slot requires a circuit the
// switch cannot realize.
func CompileNodeStates(sw *Switch, s *matching.Schedule) ([]NodeState, error) {
	if s.N != sw.Ports() {
		return nil, fmt.Errorf("ocs: schedule over %d nodes does not fit %d-port switch", s.N, sw.Ports())
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	states := make([]NodeState, s.N)
	for node := 0; node < s.N; node++ {
		tx := make([]int, s.Period())
		for t := range s.Slots {
			dst := s.Slots[t][node]
			w, ok := sw.WavelengthFor(node, dst)
			if !ok {
				return nil, fmt.Errorf("ocs: slot %d: no wavelength connects %d->%d", t, node, dst)
			}
			tx[t] = w
		}
		states[node] = NodeState{
			Node:         node,
			TxWavelength: tx,
			Neighbors:    s.Neighbors(node),
		}
	}
	return states, nil
}

// StateBytes estimates the NIC state footprint of one node: one wavelength
// index per schedule slot (2 bytes each, enough for 64k-port gratings)
// plus one queue descriptor (16 bytes) per neighbor. The paper argues this
// scales well because SORN keeps the neighbor superset fixed and the
// period short (§5).
func (ns *NodeState) StateBytes() int {
	return 2*len(ns.TxWavelength) + 16*len(ns.Neighbors)
}

// Update is a planned transition between two schedules over the same
// nodes, as computed by the control plane before a synchronized rewrite.
type Update struct {
	// SlotChanges[node] counts slots whose transmit wavelength changes.
	SlotChanges []int
	// AddedNeighbors / RemovedNeighbors list, per node, destinations that
	// gain or lose circuits entirely. Removed neighbors require queue
	// drains before the update; SORN rebalancing aims to keep both empty
	// (fixed neighbor superset, varying bandwidth — paper §5).
	AddedNeighbors   [][]int
	RemovedNeighbors [][]int
	OldPeriod        int
	NewPeriod        int
}

// PlanUpdate diffs two schedules. Periods may differ; per-slot comparison
// is over the least common multiple of the two periods, since that is the
// granularity at which node state tables are rewritten.
func PlanUpdate(old, new *matching.Schedule) (*Update, error) {
	if old.N != new.N {
		return nil, fmt.Errorf("ocs: schedule sizes differ: %d vs %d", old.N, new.N)
	}
	if err := old.Validate(); err != nil {
		return nil, fmt.Errorf("ocs: old schedule: %w", err)
	}
	if err := new.Validate(); err != nil {
		return nil, fmt.Errorf("ocs: new schedule: %w", err)
	}
	n := old.N
	u := &Update{
		SlotChanges:      make([]int, n),
		AddedNeighbors:   make([][]int, n),
		RemovedNeighbors: make([][]int, n),
		OldPeriod:        old.Period(),
		NewPeriod:        new.Period(),
	}
	l := lcm(old.Period(), new.Period())
	for t := 0; t < l; t++ {
		om := old.Slots[t%old.Period()]
		nm := new.Slots[t%new.Period()]
		for node := 0; node < n; node++ {
			if om[node] != nm[node] {
				u.SlotChanges[node]++
			}
		}
	}
	for node := 0; node < n; node++ {
		oldNb := old.Neighbors(node)
		newNb := new.Neighbors(node)
		u.AddedNeighbors[node] = setDiff(newNb, oldNb)
		u.RemovedNeighbors[node] = setDiff(oldNb, newNb)
	}
	return u, nil
}

// DrainsRequired returns the total number of (node, neighbor) queues that
// must be drained before the update can be applied safely.
func (u *Update) DrainsRequired() int {
	total := 0
	for _, r := range u.RemovedNeighbors {
		total += len(r)
	}
	return total
}

// TotalSlotChanges returns the sum of per-node slot rewrites.
func (u *Update) TotalSlotChanges() int {
	total := 0
	for _, c := range u.SlotChanges {
		total += c
	}
	return total
}

// PreservesNeighborSuperset reports whether the update keeps every node's
// neighbor set intact or growing — the property that lets SORN rebalance
// bandwidth without draining queues (paper §5).
func (u *Update) PreservesNeighborSuperset() bool {
	return u.DrainsRequired() == 0
}

// Fabric ties a switch, a current schedule, and its compiled node states
// together, and applies updates with synchronized-epoch semantics: an
// update takes effect at a slot that is a multiple of the new period, as
// a logically centralized control plane would arrange (paper §5, [9]).
type Fabric struct {
	sw       *Switch
	schedule *matching.Schedule
	states   []NodeState
	epoch    int // number of applied updates
}

// NewFabric creates a fabric running an initial schedule.
func NewFabric(sw *Switch, s *matching.Schedule) (*Fabric, error) {
	states, err := CompileNodeStates(sw, s)
	if err != nil {
		return nil, err
	}
	return &Fabric{sw: sw, schedule: s, states: states}, nil
}

// Schedule returns the active schedule.
func (f *Fabric) Schedule() *matching.Schedule { return f.schedule }

// States returns the compiled per-node transmit states.
func (f *Fabric) States() []NodeState { return f.states }

// Epoch returns how many updates have been applied.
func (f *Fabric) Epoch() int { return f.epoch }

// Apply transitions the fabric to a new schedule, first planning the
// update. It returns the plan so callers can account for drains.
func (f *Fabric) Apply(s *matching.Schedule) (*Update, error) {
	u, err := PlanUpdate(f.schedule, s)
	if err != nil {
		return nil, err
	}
	states, err := CompileNodeStates(f.sw, s)
	if err != nil {
		return nil, err
	}
	f.schedule = s
	f.states = states
	f.epoch++
	return u, nil
}

// setDiff returns elements of a not present in b; both must be sorted.
func setDiff(a, b []int) []int {
	var out []int
	for _, v := range a {
		i := sort.SearchInts(b, v)
		if i >= len(b) || b[i] != v {
			out = append(out, v)
		}
	}
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
