package core

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/schedule"
	"repro/internal/workload"
)

func TestNewSORNThroughputMatchesTheory(t *testing.T) {
	nw, err := NewSORN(64, 8, 0.56)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Kind != "sorn" || nw.SORN == nil || nw.N() != 64 {
		t.Fatal("network malformed")
	}
	tm, err := nw.LocalityMatrix(0.56)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Throughput(tm)
	if err != nil {
		t.Fatal(err)
	}
	ideal := model.SORNThroughput(0.56)
	if math.Abs(res.Theta-ideal)/ideal > 0.15 {
		t.Fatalf("θ = %f vs ideal %f", res.Theta, ideal)
	}
}

func TestBaselinesThroughTheSameAPI(t *testing.T) {
	orn1, err := NewORN1D(16)
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := orn1.LocalityMatrix(0.5) // uniform for non-SORN
	r1, err := orn1.Throughput(tm)
	if err != nil {
		t.Fatal(err)
	}
	orn2, err := NewORN(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := orn2.Throughput(workload.Uniform(16))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Theta <= r2.Theta {
		t.Fatalf("1D ORN θ %f should exceed 2D ORN θ %f", r1.Theta, r2.Theta)
	}
	if _, err := NewORN(15, 2); err == nil {
		t.Error("non-square 2D ORN accepted")
	}
}

func TestSimulateSaturatedSmoke(t *testing.T) {
	nw, err := NewSORN(32, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := nw.LocalityMatrix(0.5)
	st, err := nw.SimulateSaturated(SimOptions{
		Seed: 1, WarmupSlots: 1000, MeasureSlots: 4000, TargetBacklog: 64,
	}, tm, workload.FixedSize(4))
	if err != nil {
		t.Fatal(err)
	}
	r := st.Throughput(32)
	if r < 0.3 || r > 0.55 {
		t.Fatalf("saturated r = %f out of plausible range", r)
	}
}

func TestSimulateOpenLoopSmoke(t *testing.T) {
	nw, err := NewORN1D(16)
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := nw.LocalityMatrix(0)
	st, err := nw.SimulateOpenLoop(SimOptions{Seed: 2}, tm, workload.FixedSize(2), 0.2, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if st.CompletedFlows == 0 {
		t.Fatal("no flows completed")
	}
	if st.FCTSlots.Count() == 0 {
		t.Fatal("no FCT samples")
	}
}

func TestAdaptiveLoopImprovesAfterShift(t *testing.T) {
	a, err := NewAdaptive(32, 4, 0.2, false)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := schedule.EqualCliques(32, 4)

	// Phase 1: low locality.
	tm1, _ := workload.Locality(cl, 0.2)
	p1, err := a.Adapt(tm1)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 2: locality jumps; adapting must raise q and predicted r.
	tm2, _ := workload.Locality(cl, 0.9)
	var p2Q, p2R float64
	for i := 0; i < 6; i++ { // EWMA converges over a few epochs
		p2, err := a.Adapt(tm2)
		if err != nil {
			t.Fatal(err)
		}
		p2Q, p2R = p2.Q, p2.PredictedR
	}
	if p2Q <= p1.Q {
		t.Fatalf("q did not rise after locality shift: %f -> %f", p1.Q, p2Q)
	}
	if p2R <= p1.PredictedR {
		t.Fatalf("predicted r did not improve: %f -> %f", p1.PredictedR, p2R)
	}
	// The installed network reflects the new plan.
	res, err := a.Network.Throughput(tm2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta < 0.40 {
		t.Fatalf("adapted network θ = %f, want near 1/(3-0.9)=0.476", res.Theta)
	}
}

func TestAdaptiveRecluster(t *testing.T) {
	a, err := NewAdaptive(32, 4, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	planted := make([]int, 32)
	for i := range planted {
		planted[i] = i % 4
	}
	cl, _ := schedule.NewCliques(planted)
	tm, _ := workload.Locality(cl, 0.9)
	p, err := a.Adapt(tm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.X-0.9) > 1e-9 {
		t.Fatalf("recluster did not recover planted locality: x=%f", p.X)
	}
}

func TestSimOptionsDefaults(t *testing.T) {
	o := SimOptions{}.withDefaults()
	if o.SlotNS != 100 || o.PropNS != 500 || o.MeasureSlots == 0 || o.TargetBacklog == 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
}
