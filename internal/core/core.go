// Package core is the public face of the SORN reproduction: it assembles
// a circuit schedule, routing scheme, analytical model, fluid solver, and
// slotted simulator behind one Network type, and wires the semi-oblivious
// control loop around it.
//
// Quick start:
//
//	nw, err := core.NewSORN(128, 8, 0.56)           // 128 nodes, 8 cliques, locality 0.56
//	res, err := nw.Throughput(nw.LocalityMatrix(0.56))
//	stats, err := nw.SimulateSaturated(core.SimOptions{Seed: 1}, tm, workload.WebSearch())
//
// Baselines (1D/2D ORNs) come from NewORN1D / NewORN, so every comparison
// in the paper can be run through the same interface.
package core

import (
	"fmt"

	"repro/internal/controlplane"
	"repro/internal/fluid"
	"repro/internal/matching"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/schedule"
	"repro/internal/workload"
)

// Network is a built reconfigurable network design: a schedule (what the
// circuits do each slot) plus a routing scheme (how traffic uses them).
type Network struct {
	// Kind names the design ("sorn", "orn-1d", "orn-2d", ...).
	Kind string
	// Schedule is the periodic matching sequence all nodes follow.
	Schedule *matching.Schedule
	// Router is the oblivious/semi-oblivious routing scheme.
	Router routing.Router
	// SORN is non-nil for semi-oblivious networks and carries the clique
	// structure and realized oversubscription.
	SORN *schedule.SORN
}

// NewSORN builds a semi-oblivious network for the expected locality ratio
// x, using the throughput-optimal oversubscription q* = 2/(1−x) (clamped
// to 16 so the schedule keeps inter-clique slots).
func NewSORN(n, nc int, locality float64) (*Network, error) {
	return NewSORNWithQ(n, nc, model.SORNQClamped(locality, 16))
}

// NewSORNWithQ builds a semi-oblivious network with an explicit
// oversubscription ratio.
func NewSORNWithQ(n, nc int, q float64) (*Network, error) {
	s, err := schedule.BuildSORN(schedule.SORNConfig{N: n, Nc: nc, Q: q})
	if err != nil {
		return nil, err
	}
	return &Network{
		Kind:     "sorn",
		Schedule: s.Schedule,
		Router:   routing.NewSORN(s),
		SORN:     s,
	}, nil
}

// NewORN1D builds the flat round-robin oblivious baseline (Sirius-like):
// full uniform connectivity, 2-hop VLB routing.
func NewORN1D(n int) (*Network, error) {
	sched := schedule.RoundRobin1D(n)
	v, err := routing.NewVLB(matching.Compile(sched))
	if err != nil {
		return nil, err
	}
	return &Network{Kind: "orn-1d", Schedule: sched, Router: v}, nil
}

// NewORN builds an h-dimensional optimal ORN baseline (2h-hop routing).
// n must be a perfect h-th power.
func NewORN(n, h int) (*Network, error) {
	o, err := schedule.BuildOptimalORN(n, h)
	if err != nil {
		return nil, err
	}
	return &Network{
		Kind:     fmt.Sprintf("orn-%dd", h),
		Schedule: o.Schedule,
		Router:   routing.NewORN(o),
	}, nil
}

// N returns the node count.
func (nw *Network) N() int { return nw.Schedule.N }

// LocalityMatrix returns the saturation traffic matrix with intra-clique
// fraction x under this network's clique structure. For non-SORN designs
// it returns the uniform matrix (they have no cliques).
func (nw *Network) LocalityMatrix(x float64) (*workload.Matrix, error) {
	if nw.SORN == nil {
		return workload.Uniform(nw.N()), nil
	}
	return workload.Locality(nw.SORN.Cliques, x)
}

// Throughput runs the fluid solver: the maximum fraction of each node's
// bandwidth deliverable under the given traffic matrix (the paper's r
// when tm is a saturation matrix).
func (nw *Network) Throughput(tm *workload.Matrix) (*fluid.Result, error) {
	return fluid.Solve(nw.Schedule, nw.Router, tm)
}

// SimOptions configure a packet-level simulation.
type SimOptions struct {
	SlotNS int64 // default 100
	PropNS int64 // default 500
	Seed   uint64
	// LatencySampleEvery records every k-th delivered cell's latency
	// (default 64).
	LatencySampleEvery int
	WarmupSlots        int64 // default 5000
	MeasureSlots       int64 // default 20000
	TargetBacklog      int64 // default 256 cells per node
	// Planes is the parallel uplink count per node (default 1).
	Planes int
	// Workers shards each simulation step across this many goroutines
	// (0 = one per available CPU, 1 = serial). Results are bit-identical
	// for every value; see the netsim package comment.
	Workers int
	// Obs optionally attaches the observability layer (metrics time
	// series, phase timing, event trace). nil disables it; enabling it
	// never changes simulation results.
	Obs *obs.Observer
	// Dense selects netsim's dense reference engine instead of the
	// default active-set engine (bit-identical results; see
	// netsim.Config.Dense).
	Dense bool
}

func (o SimOptions) withDefaults() SimOptions {
	if o.SlotNS == 0 {
		o.SlotNS = 100
	}
	if o.PropNS == 0 {
		o.PropNS = 500
	}
	if o.LatencySampleEvery == 0 {
		o.LatencySampleEvery = 64
	}
	if o.WarmupSlots == 0 {
		o.WarmupSlots = 5000
	}
	if o.MeasureSlots == 0 {
		o.MeasureSlots = 20000
	}
	if o.TargetBacklog == 0 {
		o.TargetBacklog = 256
	}
	return o
}

// NewSim builds a packet-level simulator for this network.
func (nw *Network) NewSim(opts SimOptions) (*netsim.Sim, error) {
	opts = opts.withDefaults()
	return netsim.New(netsim.Config{
		Schedule:           nw.Schedule,
		Router:             nw.Router,
		SlotNS:             opts.SlotNS,
		PropNS:             opts.PropNS,
		Seed:               opts.Seed,
		LatencySampleEvery: opts.LatencySampleEvery,
		Planes:             opts.Planes,
		Workers:            opts.Workers,
		Obs:                opts.Obs,
		Dense:              opts.Dense,
	})
}

// SimulateSaturated measures saturation throughput at the packet level:
// every node keeps a backlog of flows (destinations from tm, sizes from
// dist) and the delivered cells per node per slot is the throughput r.
func (nw *Network) SimulateSaturated(opts SimOptions, tm *workload.Matrix, dist workload.SizeDist) (*netsim.Stats, error) {
	sim, err := nw.NewSim(opts)
	if err != nil {
		return nil, err
	}
	return RunSaturatedOn(sim, opts, tm, dist)
}

// RunSaturatedOn drives the saturation experiment of SimulateSaturated
// on an already-built simulator — the shared tail of the fresh path
// above and the pooled sweep path (SimPool.Acquire + RunSaturatedOn),
// which is how fresh-vs-pooled runs stay workload-identical.
func RunSaturatedOn(sim *netsim.Sim, opts SimOptions, tm *workload.Matrix, dist workload.SizeDist) (*netsim.Stats, error) {
	opts = opts.withDefaults()
	return sim.RunSaturated(netsim.SaturationConfig{
		TM:            tm,
		Size:          dist,
		TargetBacklog: opts.TargetBacklog,
		WarmupSlots:   opts.WarmupSlots,
		MeasureSlots:  opts.MeasureSlots,
	})
}

// SimulateOpenLoop runs a Poisson flow workload at the given offered load
// (fraction of node bandwidth) for `slots` slots and returns the stats
// (FCTs, latencies, deliveries).
func (nw *Network) SimulateOpenLoop(opts SimOptions, tm *workload.Matrix, dist workload.SizeDist, load float64, slots int64) (*netsim.Stats, error) {
	sim, err := nw.NewSim(opts)
	if err != nil {
		return nil, err
	}
	return RunOpenLoopOn(sim, opts, tm, dist, load, slots)
}

// RunOpenLoopOn drives the open-loop experiment of SimulateOpenLoop on an
// already-built simulator — the pooled-sweep counterpart of
// RunSaturatedOn. The flow trace is regenerated per run from the opts
// seed, so a pooled and a fresh simulator see the identical workload.
func RunOpenLoopOn(sim *netsim.Sim, opts SimOptions, tm *workload.Matrix, dist workload.SizeDist, load float64, slots int64) (*netsim.Stats, error) {
	opts = opts.withDefaults()
	gen, err := workload.NewPoissonFlows(tm, dist, load, opts.Seed+1)
	if err != nil {
		return nil, err
	}
	flows := gen.Window(0, slots)
	sim.StartMeasuring()
	if err := sim.RunOpenLoop(flows, slots); err != nil {
		return nil, err
	}
	return sim.Stats(), nil
}

// Adaptive wraps a SORN network with the semi-oblivious control loop:
// observe aggregated traffic, periodically re-plan q (and optionally the
// clique assignment), and reconfigure.
type Adaptive struct {
	Network    *Network
	Controller *controlplane.Controller
}

// NewAdaptive builds an adaptive SORN starting from locality x.
func NewAdaptive(n, nc int, initialLocality float64, recluster bool) (*Adaptive, error) {
	nw, err := NewSORN(n, nc, initialLocality)
	if err != nil {
		return nil, err
	}
	ctl, err := controlplane.NewController(n, nc, 0.5)
	if err != nil {
		return nil, err
	}
	ctl.Recluster = recluster
	return &Adaptive{Network: nw, Controller: ctl}, nil
}

// Adapt observes a traffic matrix, plans the next epoch, installs it in
// the Network, and returns the plan.
func (a *Adaptive) Adapt(tm *workload.Matrix) (*controlplane.Plan, error) {
	if err := a.Controller.Observe(tm); err != nil {
		return nil, err
	}
	p, err := a.Controller.PlanNext()
	if err != nil {
		return nil, err
	}
	if err := a.Controller.Apply(p); err != nil {
		return nil, err
	}
	a.Network.Schedule = p.Built.Schedule
	a.Network.Router = routing.NewSORN(p.Built)
	a.Network.SORN = p.Built
	return p, nil
}
