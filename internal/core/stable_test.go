package core

import (
	"testing"

	"repro/internal/workload"
)

func TestMaxStableLoadVLB(t *testing.T) {
	// A 16-node 1D ORN sustains ~(n−1)/(2n−3) ≈ 0.52 of node bandwidth
	// under uniform fixed-size traffic; the bisection should land close.
	nw, err := NewORN1D(16)
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := nw.LocalityMatrix(0)
	load, err := nw.MaxStableLoad(StableLoadOptions{
		Sim: SimOptions{Seed: 3, WarmupSlots: 3000, MeasureSlots: 8000},
		Lo:  0.2, Hi: 0.9, Tol: 0.05,
	}, tm, workload.FixedSize(4))
	if err != nil {
		t.Fatal(err)
	}
	if load < 0.40 || load > 0.62 {
		t.Fatalf("max stable load = %f, want ~0.52", load)
	}
}

func TestMaxStableLoadBracketAllStable(t *testing.T) {
	// If even Hi is stable, the search returns Hi without bisecting.
	nw, err := NewORN1D(8)
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := nw.LocalityMatrix(0)
	load, err := nw.MaxStableLoad(StableLoadOptions{
		Sim: SimOptions{Seed: 4, WarmupSlots: 1000, MeasureSlots: 3000},
		Lo:  0.01, Hi: 0.1,
	}, tm, workload.FixedSize(1))
	if err != nil {
		t.Fatal(err)
	}
	if load != 0.1 {
		t.Fatalf("expected Hi returned for an all-stable bracket, got %f", load)
	}
}

func TestMaxStableLoadBadBracket(t *testing.T) {
	nw, _ := NewORN1D(8)
	tm, _ := nw.LocalityMatrix(0)
	if _, err := nw.MaxStableLoad(StableLoadOptions{Lo: 0.5, Hi: 0.2}, tm, workload.FixedSize(1)); err == nil {
		t.Fatal("inverted bracket accepted")
	}
	if _, err := nw.MaxStableLoad(StableLoadOptions{Lo: -1, Hi: 0.5}, tm, workload.FixedSize(1)); err == nil {
		t.Fatal("negative Lo accepted")
	}
}
