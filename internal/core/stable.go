package core

import (
	"fmt"

	"repro/internal/workload"
)

// StableLoadOptions tune the max-stable-load search.
type StableLoadOptions struct {
	Sim SimOptions
	// Lo and Hi bracket the offered load (fraction of node bandwidth).
	Lo, Hi float64
	// Tol is the bisection width at which the search stops (default 0.02).
	Tol float64
	// DeliveredFraction is the stability criterion: a load is stable if
	// the cells delivered during the measurement window are at least this
	// fraction of the cells injected in it (default 0.94).
	DeliveredFraction float64
}

func (o StableLoadOptions) withDefaults() StableLoadOptions {
	o.Sim = o.Sim.withDefaults()
	//sornlint:ignore floateq -- zero value means "unset", replaced by the default
	if o.Hi == 0 {
		o.Hi = 1
	}
	//sornlint:ignore floateq -- zero value means "unset", replaced by the default
	if o.Tol == 0 {
		o.Tol = 0.02
	}
	//sornlint:ignore floateq -- zero value means "unset", replaced by the default
	if o.DeliveredFraction == 0 {
		o.DeliveredFraction = 0.94
	}
	return o
}

// MaxStableLoad bisects for the highest open-loop offered load the
// network sustains for the given traffic matrix and flow-size
// distribution: Poisson flow arrivals per source, destinations from the
// matrix, the router under test carrying every cell. This is the
// packet-level counterpart of the fluid θ and the measurement behind the
// Figure 2(f) simulation series.
func (nw *Network) MaxStableLoad(opts StableLoadOptions, tm *workload.Matrix, dist workload.SizeDist) (float64, error) {
	opts = opts.withDefaults()
	if opts.Lo < 0 || opts.Hi <= opts.Lo {
		return 0, fmt.Errorf("core: bad load bracket [%f, %f]", opts.Lo, opts.Hi)
	}
	stable := func(load float64) (bool, error) {
		sim, err := nw.NewSim(opts.Sim)
		if err != nil {
			return false, err
		}
		gen, err := workload.NewPoissonFlows(tm, dist, load, opts.Sim.Seed+uint64(load*1e6))
		if err != nil {
			return false, err
		}
		total := opts.Sim.WarmupSlots + opts.Sim.MeasureSlots
		flows := gen.Window(0, total)
		// Warmup: inject and run without counting.
		i := 0
		for sim.Slot() < opts.Sim.WarmupSlots {
			for i < len(flows) && flows[i].Arrival <= sim.Slot() {
				sim.InjectFlow(flows[i].Src, flows[i].Dst, flows[i].Size)
				i++
			}
			sim.Step()
		}
		sim.StartMeasuring()
		if err := sim.RunOpenLoop(flows[i:], total); err != nil {
			return false, err
		}
		st := sim.Stats()
		if st.InjectedCells == 0 {
			return true, nil
		}
		frac := float64(st.DeliveredCells) / float64(st.InjectedCells)
		return frac >= opts.DeliveredFraction, nil
	}

	lo, hi := opts.Lo, opts.Hi
	// Verify the bracket: hi must be unstable (otherwise return hi).
	if ok, err := stable(hi); err != nil {
		return 0, err
	} else if ok {
		return hi, nil
	}
	for hi-lo > opts.Tol {
		mid := (lo + hi) / 2
		ok, err := stable(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
