package core

import (
	"math"
	"sync"

	"repro/internal/model"
	"repro/internal/netsim"
)

// buildKey identifies one immutable network build. It is the cache key
// the sweep engine documents: (kind, N, Nc, q, planes). The planes field
// is carried for forward compatibility — every current design builds the
// same schedule regardless of the uplink count (planes only phase-stagger
// the schedule inside netsim), so today's entries key it at 0 — and keeps
// a future plane-dependent build from silently colliding with these.
type buildKey struct {
	kind   string
	n, nc  int
	planes int
	qbits  uint64 // math.Float64bits of q; NaN never reaches here (SORNQ* reject it)
}

// BuildCache memoizes schedule/topology/routing construction. A dense
// sweep revisits the same builds constantly — every Fig2f point at one
// locality shares its SORN with the q-sweep at the equivalent q, a
// diurnal trace repeats its clairvoyant builds every period, and the
// FCT/latency comparisons rebuild the same baselines per point — and a
// SORN build is O(n²) schedule synthesis, so memoizing it moves sweep
// setup off the critical path entirely.
//
// Cached Networks are shared READ-ONLY, including across concurrently
// executing sweep points: a built Schedule is never mutated, and every
// Router routes via RouteInto with caller-supplied rng state (see the
// routing package), so concurrent sims can share one build without
// synchronization. The one mutating consumer in the tree — Adaptive,
// which swaps its Network's schedule on replan — must never be handed a
// cached build; it constructs privately via NewSORN.
type BuildCache struct {
	mu sync.Mutex
	m  map[buildKey]*buildEntry
}

// buildEntry is a singleflight slot: the map lookup is mutex-guarded but
// the build itself runs under the entry's once, so two sweep workers
// racing for the same key build it exactly once and both wait for it.
type buildEntry struct {
	once sync.Once
	nw   *Network
	err  error
}

// NewBuildCache returns an empty cache.
func NewBuildCache() *BuildCache {
	return &BuildCache{m: make(map[buildKey]*buildEntry)}
}

// SharedBuilds is the process-wide cache the experiment sweeps share.
// Builds are deterministic pure functions of their key, so sharing one
// cache across experiments (and test runs in one process) is safe and
// maximizes hits.
var SharedBuilds = NewBuildCache()

// get returns the cached network for key, building it on first use.
// Errors are cached too: a sweep asking for an impossible build (say,
// nc not dividing n) fails fast on every point, not just the first.
//
//sornlint:coldpath -- one-time sweep setup, never on a per-slot path
func (c *BuildCache) get(key buildKey, build func() (*Network, error)) (*Network, error) {
	c.mu.Lock()
	e := c.m[key]
	if e == nil {
		e = &buildEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.nw, e.err = build() })
	return e.nw, e.err
}

// SORN returns the cached semi-oblivious network for locality x — the
// memoized NewSORN. Localities mapping to the same clamped q* share one
// entry.
func (c *BuildCache) SORN(n, nc int, locality float64) (*Network, error) {
	return c.SORNWithQ(n, nc, model.SORNQClamped(locality, 16))
}

// SORNWithQ returns the cached semi-oblivious network with an explicit
// oversubscription ratio — the memoized NewSORNWithQ.
func (c *BuildCache) SORNWithQ(n, nc int, q float64) (*Network, error) {
	return c.get(buildKey{kind: "sorn", n: n, nc: nc, qbits: math.Float64bits(q)},
		func() (*Network, error) { return NewSORNWithQ(n, nc, q) })
}

// ORN1D returns the cached flat round-robin baseline — the memoized
// NewORN1D.
func (c *BuildCache) ORN1D(n int) (*Network, error) {
	return c.get(buildKey{kind: "orn-1d", n: n},
		func() (*Network, error) { return NewORN1D(n) })
}

// ORN returns the cached h-dimensional optimal ORN baseline — the
// memoized NewORN. The dimension rides in the nc key slot.
func (c *BuildCache) ORN(n, h int) (*Network, error) {
	return c.get(buildKey{kind: "orn-nd", n: n, nc: h},
		func() (*Network, error) { return NewORN(n, h) })
}

// SimPool holds one reusable simulator per sweep worker. Worker w's slot
// is touched only by the sweep point currently running on worker w
// (sweep.Point.Worker indexes are held by at most one in-flight point),
// so the pool needs no locking; determinism needs nothing from the pool
// because Sim.Reset restores exactly the state a fresh New would build.
type SimPool struct {
	sims []*netsim.Sim
}

// NewSimPool returns a pool for the given worker count (sweep
// Config.Workers(points)).
func NewSimPool(workers int) *SimPool {
	return &SimPool{sims: make([]*netsim.Sim, workers)}
}

// Acquire returns worker w's simulator, reset to run nw under opts. The
// pooled Sim is reused whenever the node count matches (Reset handles
// schedule, planes, seed, and observer changes); a different N — the one
// dimension Reset refuses — rebuilds the slot.
func (p *SimPool) Acquire(w int, nw *Network, opts SimOptions) (*netsim.Sim, error) {
	opts = opts.withDefaults()
	cfg := netsim.Config{
		Schedule:           nw.Schedule,
		Router:             nw.Router,
		SlotNS:             opts.SlotNS,
		PropNS:             opts.PropNS,
		Seed:               opts.Seed,
		LatencySampleEvery: opts.LatencySampleEvery,
		Planes:             opts.Planes,
		Workers:            opts.Workers,
		Obs:                opts.Obs,
		Dense:              opts.Dense,
	}
	if s := p.sims[w]; s != nil && s.N() == nw.Schedule.N {
		if err := s.Reset(cfg); err != nil {
			return nil, err
		}
		return s, nil
	}
	s, err := netsim.New(cfg)
	if err != nil {
		return nil, err
	}
	p.sims[w] = s
	return s, nil
}
