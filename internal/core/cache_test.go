package core

import (
	"sync"
	"testing"

	"repro/internal/model"
)

func TestBuildCacheReturnsOneSharedBuild(t *testing.T) {
	c := NewBuildCache()
	a, err := c.SORNWithQ(64, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.SORNWithQ(64, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same key built twice")
	}
	other, err := c.SORNWithQ(64, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if other == a {
		t.Fatal("different q shared an entry")
	}
}

func TestBuildCacheSORNMatchesNewSORN(t *testing.T) {
	// The cached SORN keys on the clamped q*, so two localities with the
	// same q* share a build, and the build equals the uncached one.
	c := NewBuildCache()
	cached, err := c.SORN(64, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewSORN(64, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Both sides are the same deterministic build; bit equality is the claim.
	if cached.SORN.RealizedQ != fresh.SORN.RealizedQ || cached.Schedule.Period() != fresh.Schedule.Period() {
		t.Fatalf("cached build differs: q %f vs %f, period %d vs %d",
			cached.SORN.RealizedQ, fresh.SORN.RealizedQ, cached.Schedule.Period(), fresh.Schedule.Period())
	}
	viaQ, err := c.SORNWithQ(64, 8, model.SORNQClamped(0.5, 16))
	if err != nil {
		t.Fatal(err)
	}
	if viaQ != cached {
		t.Fatal("SORN(x) and SORNWithQ(q*(x)) did not share an entry")
	}
}

func TestBuildCacheSingleflightUnderConcurrency(t *testing.T) {
	c := NewBuildCache()
	const goroutines = 8
	got := make([]*Network, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nw, err := c.ORN1D(32)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = nw
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent gets returned distinct builds")
		}
	}
}

func TestBuildCacheCachesErrors(t *testing.T) {
	c := NewBuildCache()
	_, err1 := c.SORNWithQ(64, 7, 4) // 7 does not divide 64
	_, err2 := c.SORNWithQ(64, 7, 4)
	if err1 == nil || err2 == nil {
		t.Fatal("impossible build did not error")
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("error not cached consistently: %v vs %v", err1, err2)
	}
}

func TestSimPoolReusesAcrossAcquires(t *testing.T) {
	nw, err := SharedBuilds.SORN(32, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewSimPool(2)
	a, err := pool.Acquire(0, nw, SimOptions{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Acquire(0, nw, SimOptions{Seed: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same worker, same N: pool did not reuse the Sim")
	}
	other, err := pool.Acquire(1, nw, SimOptions{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if other == a {
		t.Fatal("workers must not share a pooled Sim")
	}
	// A different node count rebuilds the slot instead of resetting.
	flat, err := SharedBuilds.ORN1D(16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := pool.Acquire(0, flat, SimOptions{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("node-count change must allocate a new Sim")
	}
	if c.N() != 16 {
		t.Fatalf("rebuilt sim has %d nodes, want 16", c.N())
	}
}
