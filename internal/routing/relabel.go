package routing

import (
	"fmt"

	"repro/internal/rng"
)

// Relabeled adapts a router to a node-relabeled network: with perm a
// permutation of [0, N), node u of the inner network is node perm[u] of
// the relabeled one. The relabeled router serves (src, dst) by asking
// the inner router for (perm⁻¹(src), perm⁻¹(dst)) and mapping every hop
// through perm — so over a schedule relabeled the same way (see
// matching.Schedule.Relabel) it realizes the identical scheme under new
// names. Any label-oblivious throughput or latency metric must be
// invariant under this wrapping; the oracle harness checks exactly that.
type Relabeled struct {
	inner     Router
	perm, inv []int
}

// NewRelabeled wraps inner for the relabeling perm.
func NewRelabeled(inner Router, perm []int) (*Relabeled, error) {
	inv := make([]int, len(perm))
	seen := make([]bool, len(perm))
	for u, v := range perm {
		if v < 0 || v >= len(perm) || seen[v] {
			return nil, fmt.Errorf("routing: invalid relabel permutation entry %d->%d", u, v)
		}
		seen[v] = true
		inv[v] = u
	}
	p := make([]int, len(perm))
	copy(p, perm)
	return &Relabeled{inner: inner, perm: p, inv: inv}, nil
}

// Name implements Router.
func (r *Relabeled) Name() string { return r.inner.Name() + "+relabel" }

// MaxHops implements Router.
func (r *Relabeled) MaxHops() int { return r.inner.MaxHops() }

// Route implements Router.
func (r *Relabeled) Route(src, dst, slot int, g *rng.RNG) Route {
	return r.RouteInto(nil, src, dst, slot, g)
}

// RouteInto implements Router: the inner router writes its hops into
// buf, which are then renamed in place — no allocation beyond buf.
func (r *Relabeled) RouteInto(buf Route, src, dst, slot int, g *rng.RNG) Route {
	base := len(buf)
	buf = r.inner.RouteInto(buf, r.inv[src], r.inv[dst], slot, g)
	for i := base; i < len(buf); i++ {
		buf[i] = r.perm[buf[i]]
	}
	return buf
}

// Paths implements Router: the inner distribution with every hop renamed.
func (r *Relabeled) Paths(src, dst int, fn func(Route, float64)) {
	r.inner.Paths(r.inv[src], r.inv[dst], func(p Route, prob float64) {
		mapped := make(Route, len(p))
		for i, u := range p {
			mapped[i] = r.perm[u]
		}
		fn(mapped, prob)
	})
}
