// Package routing implements the oblivious and semi-oblivious routing
// schemes of the paper and its baselines:
//
//   - Direct single-hop routing (for fully connected schedules)
//   - 2-hop Valiant load balancing (VLB), the ORN workhorse [31]
//   - 2h-hop h-dimensional optimal ORN routing [4]
//   - SORN routing (§4): 2-hop VLB inside cliques, 3 hops across cliques
//     (load-balancing intra hop → inter-clique circuit → final intra hop)
//
// Every Router exposes the hop sequence two ways: Route samples one
// concrete path for a packet (used by the slotted simulator), and Paths
// enumerates the full path distribution (used by the fluid throughput
// solver). The two MUST agree: Route's load-balancing hops draw from
// exactly the distribution Paths declares, using the caller's RNG. An
// earlier revision instead took the "next available" circuit at the
// injection slot — zero intrinsic wait, but the relay choice then
// correlates with the slot, and under arrivals that are themselves
// slot-correlated (saturation backlog refills, multi-plane staggering)
// the spray concentrates on a few relays and the Valiant throughput
// guarantee breaks (~25% below the fluid prediction at mixed SORN design
// points). The differential oracle (internal/oracle) cross-checks the
// two representations; the small extra wait for a randomly chosen relay's
// circuit is bounded by the intra-circuit spacing and is the price of the
// paper's throughput model actually holding.
package routing

import (
	"fmt"

	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/schedule"
)

// Route is a hop sequence from source to destination, inclusive.
// Consecutive nodes are always distinct.
type Route []int

// Hops returns the number of links traversed.
func (r Route) Hops() int { return len(r) - 1 }

// Router chooses hop sequences at injection time (source routing).
type Router interface {
	// Name identifies the scheme in reports.
	Name() string
	// MaxHops is the worst-case path length in links.
	MaxHops() int
	// Route returns the hop sequence for one packet src→dst, sampled
	// from the same distribution Paths enumerates. slot is the absolute
	// time slot at injection (available to slot-aware schemes); r
	// supplies the randomness for load-balancing hops and must be
	// non-nil for every scheme that load-balances.
	Route(src, dst, slot int, r *rng.RNG) Route
	// RouteInto is the allocation-free fast path of Route: it appends the
	// same hop sequence to buf (which may be nil, or a zero-length reused
	// buffer) and returns the extended slice. The slotted simulator calls
	// it once per injected cell, so implementations must not allocate
	// beyond growing buf. The hotpath annotation makes every
	// implementation's transitive call tree allocation-checked; the
	// zero-alloc RouteInto benchmark test verifies the same property at
	// runtime.
	//
	//sornlint:hotpath
	RouteInto(buf Route, src, dst, slot int, r *rng.RNG) Route
	// Paths calls fn for every path of the time-averaged path
	// distribution with its probability (summing to 1 per src→dst pair).
	Paths(src, dst int, fn func(path Route, prob float64))
}

// appendHop extends a path, skipping no-op hops (next == last node).
func appendHop(p Route, next int) Route {
	if len(p) > 0 && p[len(p)-1] == next {
		return p
	}
	return append(p, next)
}

// Direct routes every packet on its single direct circuit. It requires a
// schedule with full coverage and is the latency-optimal, throughput-1
// scheme for perfectly uniform traffic (paper §2: "If traffic was
// uniformly all-to-all, single-hop paths best use bandwidth").
type Direct struct {
	compiled *matching.Compiled
}

// NewDirect builds a direct router over a compiled schedule, verifying
// full coverage.
func NewDirect(c *matching.Compiled) (*Direct, error) {
	s := c.Schedule()
	if !s.FullCoverage() {
		return nil, fmt.Errorf("routing: direct routing requires full coverage")
	}
	return &Direct{compiled: c}, nil
}

// Name implements Router.
func (d *Direct) Name() string { return "direct" }

// MaxHops implements Router.
func (d *Direct) MaxHops() int { return 1 }

// Route implements Router.
func (d *Direct) Route(src, dst, slot int, r *rng.RNG) Route {
	return d.RouteInto(nil, src, dst, slot, r)
}

// RouteInto implements Router.
func (d *Direct) RouteInto(buf Route, src, dst, slot int, r *rng.RNG) Route {
	return append(buf, src, dst)
}

// Paths implements Router.
func (d *Direct) Paths(src, dst int, fn func(Route, float64)) {
	fn(Route{src, dst}, 1)
}

// VLB is 2-hop Valiant load balancing over a fully connected schedule:
// the first hop sprays to a uniformly random intermediate, the second hop
// is the direct circuit to the destination. Worst-case throughput 50% for
// arbitrary traffic — a guarantee that requires the spray to be random
// per packet, not slot-derived (see the package comment).
type VLB struct {
	n        int
	compiled *matching.Compiled
}

// NewVLB builds a VLB router over a compiled full-coverage schedule.
func NewVLB(c *matching.Compiled) (*VLB, error) {
	s := c.Schedule()
	if !s.FullCoverage() {
		return nil, fmt.Errorf("routing: VLB requires full coverage")
	}
	return &VLB{n: s.N, compiled: c}, nil
}

// Name implements Router.
func (v *VLB) Name() string { return "vlb" }

// MaxHops implements Router.
func (v *VLB) MaxHops() int { return 2 }

// Route implements Router. The load-balancing hop is uniform over the
// n−1 nodes other than src (drawing dst yields the direct path),
// matching Paths exactly.
func (v *VLB) Route(src, dst, slot int, r *rng.RNG) Route {
	return v.RouteInto(nil, src, dst, slot, r)
}

// RouteInto implements Router.
func (v *VLB) RouteInto(buf Route, src, dst, slot int, r *rng.RNG) Route {
	w := r.Intn(v.n - 1)
	if w >= src {
		w++
	}
	buf = append(buf, src)
	buf = appendHop(buf, w)
	return appendHop(buf, dst)
}

// Paths implements Router: the intermediate is uniform over the n−1
// destinations the round robin visits (including dst itself, which yields
// the direct path).
func (v *VLB) Paths(src, dst int, fn func(Route, float64)) {
	prob := 1 / float64(v.n-1)
	for w := 0; w < v.n; w++ {
		if w == src {
			continue
		}
		p := Route{src}
		p = appendHop(p, w)
		p = appendHop(p, dst)
		fn(p, prob)
	}
}

// ORN is the 2h-hop routing of h-dimensional optimal ORNs: spray to a
// uniformly random intermediate by fixing one digit per hop (in the
// schedule's dimension order), then correct each digit toward the
// destination.
type ORN struct {
	orn *schedule.OptimalORN
}

// NewORN builds the router for an h-dimensional ORN schedule.
func NewORN(o *schedule.OptimalORN) *ORN { return &ORN{orn: o} }

// Name implements Router.
func (o *ORN) Name() string { return fmt.Sprintf("orn-%dd", o.orn.H) }

// MaxHops implements Router.
func (o *ORN) MaxHops() int { return 2 * o.orn.H }

// digitPath walks from cur to target one digit at a time (dimension order
// 0..h−1), appending each distinct intermediate node.
func (o *ORN) digitPath(p Route, target int) Route {
	cur := p[len(p)-1]
	a, h := o.orn.Base, o.orn.H
	stride := 1
	for d := 0; d < h; d++ {
		curDigit := (cur / stride) % a
		tgtDigit := (target / stride) % a
		cur = cur + (tgtDigit-curDigit)*stride
		p = appendHop(p, cur)
		stride *= a
	}
	return p
}

// Route implements Router.
func (o *ORN) Route(src, dst, slot int, r *rng.RNG) Route {
	return o.RouteInto(nil, src, dst, slot, r)
}

// RouteInto implements Router.
func (o *ORN) RouteInto(buf Route, src, dst, slot int, r *rng.RNG) Route {
	w := r.Intn(o.orn.N)
	buf = append(buf, src)
	buf = o.digitPath(buf, w)
	return o.digitPath(buf, dst)
}

// Paths implements Router: intermediates are uniform over all N nodes.
func (o *ORN) Paths(src, dst int, fn func(Route, float64)) {
	prob := 1 / float64(o.orn.N)
	for w := 0; w < o.orn.N; w++ {
		p := Route{src}
		p = o.digitPath(p, w)
		p = o.digitPath(p, dst)
		fn(p, prob)
	}
}

// SORN implements the paper's semi-oblivious routing (§4, "Routing").
// Intra-clique traffic: 2-hop VLB within the clique. Inter-clique
// traffic: load-balancing intra hop to a clique peer w, then w's
// inter-clique circuit into the destination clique (landing on w's
// same-local-index peer), then the final intra-clique hop.
type SORN struct {
	s        *schedule.SORN
	compiled *matching.Compiled
}

// NewSORN builds the router for a built SORN schedule.
func NewSORN(s *schedule.SORN) *SORN {
	return &SORN{s: s, compiled: matching.Compile(s.Schedule)}
}

// Name implements Router.
func (s *SORN) Name() string { return "sorn" }

// MaxHops implements Router.
func (s *SORN) MaxHops() int {
	if s.s.Cliques.NumCliques() == 1 {
		return 2
	}
	return 3
}

// landing returns the node w's inter-clique circuit reaches in the target
// clique: the member with w's local index (fixed landing, see
// schedule.BuildSORN).
func (s *SORN) landing(w, targetClique int) int {
	cl := s.s.Cliques
	mem := cl.Members(targetClique)
	return mem[cl.LocalIndex(w)%len(mem)]
}

// Route implements Router. The load-balancing hop samples exactly the
// distribution Paths declares: uniform over clique peers for intra
// traffic, uniform over all clique members (src itself meaning "use own
// inter-clique circuit") for inter traffic.
func (s *SORN) Route(src, dst, slot int, r *rng.RNG) Route {
	return s.RouteInto(nil, src, dst, slot, r)
}

// RouteInto implements Router.
func (s *SORN) RouteInto(buf Route, src, dst, slot int, r *rng.RNG) Route {
	cl := s.s.Cliques
	mem := cl.Members(cl.CliqueOf(src))
	buf = append(buf, src)
	if cl.SameClique(src, dst) {
		if len(mem) > 1 {
			j := r.Intn(len(mem) - 1)
			if j >= cl.LocalIndex(src) {
				j++
			}
			buf = appendHop(buf, mem[j])
		}
		return appendHop(buf, dst)
	}
	w := mem[r.Intn(len(mem))]
	buf = appendHop(buf, w)
	y := s.landing(w, cl.CliqueOf(dst))
	buf = appendHop(buf, y)
	return appendHop(buf, dst)
}

// Paths implements Router. The load-balancing hop is uniform over the
// source's clique (including src itself: the slot in which src's own
// inter-clique or direct circuit is used first).
func (s *SORN) Paths(src, dst int, fn func(Route, float64)) {
	cl := s.s.Cliques
	mem := cl.Members(cl.CliqueOf(src))
	if cl.SameClique(src, dst) {
		// Intra: intermediate uniform over clique members except src.
		if len(mem) == 1 {
			fn(Route{src, dst}, 1)
			return
		}
		prob := 1 / float64(len(mem)-1)
		for _, w := range mem {
			if w == src {
				continue
			}
			p := Route{src}
			p = appendHop(p, w)
			p = appendHop(p, dst)
			fn(p, prob)
		}
		return
	}
	// Inter: load-balancing hop uniform over all clique members
	// (choosing src itself means using src's own inter-clique circuit).
	prob := 1 / float64(len(mem))
	tc := cl.CliqueOf(dst)
	for _, w := range mem {
		y := s.landing(w, tc)
		p := Route{src}
		p = appendHop(p, w)
		p = appendHop(p, y)
		p = appendHop(p, dst)
		fn(p, prob)
	}
}
