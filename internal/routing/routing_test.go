package routing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/schedule"
)

// checkPathsValid verifies that every path the router can produce uses
// only circuits that exist in the schedule, starts at src, ends at dst,
// respects MaxHops, and that probabilities sum to 1.
func checkPathsValid(t *testing.T, router Router, c *matching.Compiled, n int) {
	t.Helper()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			total := 0.0
			router.Paths(src, dst, func(p Route, prob float64) {
				total += prob
				if p[0] != src || p[len(p)-1] != dst {
					t.Fatalf("%s: path %v does not connect %d->%d", router.Name(), p, src, dst)
				}
				if p.Hops() > router.MaxHops() {
					t.Fatalf("%s: path %v exceeds MaxHops %d", router.Name(), p, router.MaxHops())
				}
				for i := 0; i+1 < len(p); i++ {
					if p[i] == p[i+1] {
						t.Fatalf("%s: path %v has a self hop", router.Name(), p)
					}
					if !c.HasCircuit(p[i], p[i+1]) {
						t.Fatalf("%s: path %v uses nonexistent circuit %d->%d",
							router.Name(), p, p[i], p[i+1])
					}
				}
			})
			if math.Abs(total-1) > 1e-9 {
				t.Fatalf("%s: path probabilities for %d->%d sum to %f", router.Name(), src, dst, total)
			}
		}
	}
}

// checkRouteValid verifies concrete Route outputs against the schedule.
func checkRouteValid(t *testing.T, router Router, c *matching.Compiled, n int, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	for trial := 0; trial < 500; trial++ {
		src := r.Intn(n)
		dst := r.Intn(n)
		if src == dst {
			continue
		}
		slot := r.Intn(4 * c.Schedule().Period())
		p := router.Route(src, dst, slot, r)
		if p[0] != src || p[len(p)-1] != dst {
			t.Fatalf("%s: route %v does not connect %d->%d", router.Name(), p, src, dst)
		}
		if p.Hops() > router.MaxHops() || p.Hops() < 1 {
			t.Fatalf("%s: route %v has %d hops (max %d)", router.Name(), p, p.Hops(), router.MaxHops())
		}
		for i := 0; i+1 < len(p); i++ {
			if !c.HasCircuit(p[i], p[i+1]) {
				t.Fatalf("%s: route %v uses nonexistent circuit %d->%d", router.Name(), p, p[i], p[i+1])
			}
		}
	}
}

func TestDirectRouter(t *testing.T) {
	c := matching.Compile(matching.RoundRobin(8))
	d, err := NewDirect(c)
	if err != nil {
		t.Fatal(err)
	}
	checkPathsValid(t, d, c, 8)
	checkRouteValid(t, d, c, 8, 1)
	if d.MaxHops() != 1 {
		t.Fatal("direct MaxHops != 1")
	}
}

func TestDirectRequiresFullCoverage(t *testing.T) {
	s := schedule.TopologyA()
	if _, err := NewDirect(matching.Compile(s.Schedule)); err == nil {
		t.Fatal("direct router accepted partial coverage")
	}
}

func TestVLBRouter(t *testing.T) {
	c := matching.Compile(matching.RoundRobin(10))
	v, err := NewVLB(c)
	if err != nil {
		t.Fatal(err)
	}
	checkPathsValid(t, v, c, 10)
	checkRouteValid(t, v, c, 10, 2)
}

func TestVLBFirstHopIsActiveCircuit(t *testing.T) {
	c := matching.Compile(matching.RoundRobin(10))
	v, _ := NewVLB(c)
	r := rng.New(3)
	for slot := 0; slot < 20; slot++ {
		p := v.Route(0, 5, slot, r)
		w := p[1]
		if len(p) == 3 && c.Schedule().DestAt(0, slot) != w {
			t.Fatalf("slot %d: first hop %d is not the active circuit %d",
				slot, w, c.Schedule().DestAt(0, slot))
		}
	}
}

func TestVLBRequiresFullCoverage(t *testing.T) {
	s := schedule.TopologyA()
	if _, err := NewVLB(matching.Compile(s.Schedule)); err == nil {
		t.Fatal("VLB accepted partial coverage")
	}
}

func TestORNRouter(t *testing.T) {
	o, err := schedule.BuildOptimalORN(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	router := NewORN(o)
	c := matching.Compile(o.Schedule)
	if router.MaxHops() != 4 {
		t.Fatalf("2D ORN MaxHops = %d", router.MaxHops())
	}
	checkPathsValid(t, router, c, 16)
	checkRouteValid(t, router, c, 16, 4)
}

func TestORNRouter3D(t *testing.T) {
	o, err := schedule.BuildOptimalORN(27, 3)
	if err != nil {
		t.Fatal(err)
	}
	router := NewORN(o)
	c := matching.Compile(o.Schedule)
	if router.MaxHops() != 6 {
		t.Fatalf("3D ORN MaxHops = %d", router.MaxHops())
	}
	checkPathsValid(t, router, c, 27)
	checkRouteValid(t, router, c, 27, 5)
}

func TestSORNRouter(t *testing.T) {
	s, err := schedule.BuildSORN(schedule.SORNConfig{N: 32, Nc: 4, Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	router := NewSORN(s)
	c := matching.Compile(s.Schedule)
	if router.MaxHops() != 3 {
		t.Fatalf("SORN MaxHops = %d", router.MaxHops())
	}
	checkPathsValid(t, router, c, 32)
	checkRouteValid(t, router, c, 32, 5)
}

func TestSORNRouterIntraIs2Hop(t *testing.T) {
	s, _ := schedule.BuildSORN(schedule.SORNConfig{N: 32, Nc: 4, Q: 2})
	router := NewSORN(s)
	router.Paths(0, 1, func(p Route, prob float64) {
		if p.Hops() > 2 {
			t.Fatalf("intra path %v has %d hops", p, p.Hops())
		}
		for _, node := range p {
			if !s.Cliques.SameClique(0, node) {
				t.Fatalf("intra path %v leaves the clique", p)
			}
		}
	})
}

func TestSORNRouterInterUsesOneInterHop(t *testing.T) {
	s, _ := schedule.BuildSORN(schedule.SORNConfig{N: 32, Nc: 4, Q: 2})
	router := NewSORN(s)
	router.Paths(0, 20, func(p Route, prob float64) {
		crossings := 0
		for i := 0; i+1 < len(p); i++ {
			if !s.Cliques.SameClique(p[i], p[i+1]) {
				crossings++
			}
		}
		if crossings != 1 {
			t.Fatalf("inter path %v crosses cliques %d times", p, crossings)
		}
	})
}

func TestSORNRouterPaperExample(t *testing.T) {
	// Paper §4: in topology A (8 nodes, 2 cliques of 4), a flow from 0 to
	// 6 could be routed 0->3->7->6 or 0->1->4->6 (load-balancing hop,
	// inter-clique hop, final intra hop). With our fixed same-local-index
	// landing, hop w lands on w+4; verify the paths have that shape.
	s := schedule.TopologyA()
	router := NewSORN(s)
	seen := 0
	router.Paths(0, 6, func(p Route, prob float64) {
		seen++
		if p.Hops() > 3 {
			t.Fatalf("path %v too long", p)
		}
		// Exactly one inter-clique crossing, and once the path enters
		// clique 1 (nodes 4-7) it stays there.
		crossed := false
		for i := 0; i+1 < len(p); i++ {
			a, b := p[i] >= 4, p[i+1] >= 4
			if a != b {
				if crossed || !b {
					t.Fatalf("path %v crosses cliques badly", p)
				}
				crossed = true
			}
		}
		if !crossed {
			t.Fatalf("path %v never crosses to the destination clique", p)
		}
	})
	if seen != 4 {
		t.Fatalf("expected 4 load-balanced paths, got %d", seen)
	}
}

func TestSORNSingletonCliques(t *testing.T) {
	// k=1: no intra hops exist; routing degenerates to inter hop + final
	// (which collapses, since the landing is the destination clique's
	// only member).
	s, err := schedule.BuildSORN(schedule.SORNConfig{N: 8, Nc: 8, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	router := NewSORN(s)
	c := matching.Compile(s.Schedule)
	checkPathsValid(t, router, c, 8)
	checkRouteValid(t, router, c, 8, 6)
	router.Paths(0, 5, func(p Route, prob float64) {
		if p.Hops() != 1 {
			t.Fatalf("singleton-clique path %v should be direct", p)
		}
	})
}

func TestSORNSingleClique(t *testing.T) {
	s, err := schedule.BuildSORN(schedule.SORNConfig{N: 8, Nc: 1, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	router := NewSORN(s)
	if router.MaxHops() != 2 {
		t.Fatalf("single-clique SORN MaxHops = %d, want 2 (pure VLB)", router.MaxHops())
	}
	c := matching.Compile(s.Schedule)
	checkPathsValid(t, router, c, 8)
	checkRouteValid(t, router, c, 8, 7)
}

func TestSORNFirstHopZeroWait(t *testing.T) {
	// The load-balancing hop must use a circuit active at or very soon
	// after the injection slot: the wait until the chosen first hop's
	// circuit must be at most the inter-clique gap of the schedule.
	s, _ := schedule.BuildSORN(schedule.SORNConfig{N: 32, Nc: 4, Q: 3})
	router := NewSORN(s)
	c := matching.Compile(s.Schedule)
	r := rng.New(9)
	for slot := 0; slot < s.Schedule.Period()*2; slot++ {
		p := router.Route(1, 2, slot, r)
		if len(p) < 3 {
			continue // direct path
		}
		w, ok := c.WaitSlots(1, p[1], slot)
		if !ok {
			t.Fatalf("no circuit for first hop of %v", p)
		}
		// q=3: intra circuits occupy 3/4 of slots; first available intra
		// circuit is at most a couple of slots away.
		if w > 3 {
			t.Fatalf("slot %d: first hop waits %d slots", slot, w)
		}
	}
}

func TestRouteHopsPositive(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		s, err := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 4, Q: 1 + r.Float64()*5})
		if err != nil {
			return false
		}
		router := NewSORN(s)
		src := r.Intn(16)
		dst := r.Intn(16)
		if src == dst {
			return true
		}
		p := router.Route(src, dst, r.Intn(100), r)
		return p.Hops() >= 1 && p.Hops() <= 3
	}, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSORNRoute(b *testing.B) {
	s, err := schedule.BuildSORN(schedule.SORNConfig{N: 128, Nc: 8, Q: 4.5})
	if err != nil {
		b.Fatal(err)
	}
	router := NewSORN(s)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		router.Route(i%128, (i+37)%128, i, r)
	}
}

func BenchmarkVLBRoute(b *testing.B) {
	v, err := NewVLB(matching.Compile(matching.RoundRobin(128)))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Route(i%128, (i+37)%128, i, r)
	}
}

func TestSORNRouterOverDemandAwareSchedules(t *testing.T) {
	// The SORN router's assumptions (full intra coverage, same-local
	// landing in every clique) must hold on demand-aware (BvN) schedules
	// for arbitrary demand matrices.
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		nc := 3 + r.Intn(4)
		k := 2 + r.Intn(4)
		n := nc * k
		demand := make([][]float64, nc)
		for a := range demand {
			demand[a] = make([]float64, nc)
			for b := range demand[a] {
				if a != b {
					demand[a][b] = 0.2 + 5*r.Float64()
				}
			}
		}
		s, err := schedule.BuildSORNDemandAware(schedule.DemandAwareConfig{
			N: n, Nc: nc, Q: 1 + 4*r.Float64(), Demand: demand,
		})
		if err != nil {
			return false
		}
		router := NewSORN(s)
		c := matching.Compile(s.Schedule)
		for trial := 0; trial < 50; trial++ {
			src, dst := r.Intn(n), r.Intn(n)
			if src == dst {
				continue
			}
			p := router.Route(src, dst, r.Intn(2*s.Schedule.Period()), r)
			if p[0] != src || p[len(p)-1] != dst || p.Hops() > 3 {
				return false
			}
			for i := 0; i+1 < len(p); i++ {
				if !c.HasCircuit(p[i], p[i+1]) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// routersUnderTest builds one router of each scheme over 16 nodes, for
// tests that must hold across every Router implementation.
func routersUnderTest(t *testing.T) []Router {
	t.Helper()
	rr := matching.Compile(matching.RoundRobin(16))
	direct, err := NewDirect(rr)
	if err != nil {
		t.Fatal(err)
	}
	vlb, err := NewVLB(rr)
	if err != nil {
		t.Fatal(err)
	}
	orn, err := schedule.BuildOptimalORN(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	sorn, err := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 4, Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	return []Router{direct, vlb, NewORN(orn), NewSORN(sorn)}
}

func TestRouteIntoMatchesRoute(t *testing.T) {
	// RouteInto is documented as producing exactly Route's hop sequence.
	// ORN draws randomness, so each side gets its own identically seeded
	// stream; a third stream picks the coordinates.
	const n = 16
	for _, router := range routersUnderTest(t) {
		coords := rng.New(90)
		r1 := rng.New(91)
		r2 := rng.New(91)
		buf := make(Route, 0, 2*router.MaxHops())
		for trial := 0; trial < 300; trial++ {
			src := coords.Intn(n)
			dst := coords.Intn(n)
			if dst == src {
				dst = (src + 1) % n
			}
			slot := coords.Intn(200)
			want := router.Route(src, dst, slot, r1)
			buf = router.RouteInto(buf[:0], src, dst, slot, r2)
			if len(buf) != len(want) {
				t.Fatalf("%s: RouteInto len %d != Route len %d", router.Name(), len(buf), len(want))
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("%s: RouteInto(%d,%d,%d) = %v, Route = %v",
						router.Name(), src, dst, slot, buf, want)
				}
			}
		}
	}
}

func TestRouteIntoDoesNotAllocate(t *testing.T) {
	// The simulator calls RouteInto once per injected cell; with a
	// pre-grown buffer it must not allocate at all.
	for _, router := range routersUnderTest(t) {
		router := router
		r := rng.New(92)
		buf := make(Route, 0, 2*router.MaxHops()+2)
		if avg := testing.AllocsPerRun(200, func() {
			buf = router.RouteInto(buf[:0], 0, 15, 3, r)
		}); avg != 0 {
			t.Errorf("%s: RouteInto allocates %.1f per call with a warm buffer", router.Name(), avg)
		}
	}
}

// scanIntra is the definitional linear scan that SORN's precomputed
// intra-circuit index replaced: walk the schedule forward from `slot`
// until src's circuit lands inside its own clique.
func scanIntra(b *schedule.SORN, src, slot int) int {
	cl := b.Cliques
	if cl.Size(cl.CliqueOf(src)) == 1 {
		return src
	}
	p := b.Schedule.Period()
	for t := slot; t < slot+p; t++ {
		if d := b.Schedule.DestAt(src, t); cl.SameClique(src, d) {
			return d
		}
	}
	return src
}

func TestSORNFirstAvailableIntraMatchesScan(t *testing.T) {
	// The O(1) index must agree with the linear scan for every node and
	// phase, including past one period (wrap-around) and for singleton
	// cliques (k = 1, where the load-balancing hop degenerates to src).
	for _, cfg := range []schedule.SORNConfig{
		{N: 16, Nc: 4, Q: 2},
		{N: 12, Nc: 3, Q: 0.5},
		{N: 8, Nc: 2, Q: 5},
		{N: 6, Nc: 6, Q: 1}, // singleton cliques
	} {
		built, err := schedule.BuildSORN(cfg)
		if err != nil {
			t.Fatal(err)
		}
		router := NewSORN(built)
		p := built.Schedule.Period()
		for src := 0; src < cfg.N; src++ {
			for slot := 0; slot < 2*p+3; slot++ {
				got := router.firstAvailableIntra(src, slot)
				want := scanIntra(built, src, slot)
				if got != want {
					t.Fatalf("N=%d Nc=%d q=%g: firstAvailableIntra(%d, %d) = %d, linear scan = %d",
						cfg.N, cfg.Nc, cfg.Q, src, slot, got, want)
				}
			}
		}
	}
}
