package routing

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/schedule"
)

// checkPathsValid verifies that every path the router can produce uses
// only circuits that exist in the schedule, starts at src, ends at dst,
// respects MaxHops, and that probabilities sum to 1.
func checkPathsValid(t *testing.T, router Router, c *matching.Compiled, n int) {
	t.Helper()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			total := 0.0
			router.Paths(src, dst, func(p Route, prob float64) {
				total += prob
				if p[0] != src || p[len(p)-1] != dst {
					t.Fatalf("%s: path %v does not connect %d->%d", router.Name(), p, src, dst)
				}
				if p.Hops() > router.MaxHops() {
					t.Fatalf("%s: path %v exceeds MaxHops %d", router.Name(), p, router.MaxHops())
				}
				for i := 0; i+1 < len(p); i++ {
					if p[i] == p[i+1] {
						t.Fatalf("%s: path %v has a self hop", router.Name(), p)
					}
					if !c.HasCircuit(p[i], p[i+1]) {
						t.Fatalf("%s: path %v uses nonexistent circuit %d->%d",
							router.Name(), p, p[i], p[i+1])
					}
				}
			})
			if math.Abs(total-1) > 1e-9 {
				t.Fatalf("%s: path probabilities for %d->%d sum to %f", router.Name(), src, dst, total)
			}
		}
	}
}

// checkRouteValid verifies concrete Route outputs against the schedule.
func checkRouteValid(t *testing.T, router Router, c *matching.Compiled, n int, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	for trial := 0; trial < 500; trial++ {
		src := r.Intn(n)
		dst := r.Intn(n)
		if src == dst {
			continue
		}
		slot := r.Intn(4 * c.Schedule().Period())
		p := router.Route(src, dst, slot, r)
		if p[0] != src || p[len(p)-1] != dst {
			t.Fatalf("%s: route %v does not connect %d->%d", router.Name(), p, src, dst)
		}
		if p.Hops() > router.MaxHops() || p.Hops() < 1 {
			t.Fatalf("%s: route %v has %d hops (max %d)", router.Name(), p, p.Hops(), router.MaxHops())
		}
		for i := 0; i+1 < len(p); i++ {
			if !c.HasCircuit(p[i], p[i+1]) {
				t.Fatalf("%s: route %v uses nonexistent circuit %d->%d", router.Name(), p, p[i], p[i+1])
			}
		}
	}
}

func TestDirectRouter(t *testing.T) {
	c := matching.Compile(matching.RoundRobin(8))
	d, err := NewDirect(c)
	if err != nil {
		t.Fatal(err)
	}
	checkPathsValid(t, d, c, 8)
	checkRouteValid(t, d, c, 8, 1)
	if d.MaxHops() != 1 {
		t.Fatal("direct MaxHops != 1")
	}
}

func TestDirectRequiresFullCoverage(t *testing.T) {
	s := schedule.TopologyA()
	if _, err := NewDirect(matching.Compile(s.Schedule)); err == nil {
		t.Fatal("direct router accepted partial coverage")
	}
}

func TestVLBRouter(t *testing.T) {
	c := matching.Compile(matching.RoundRobin(10))
	v, err := NewVLB(c)
	if err != nil {
		t.Fatal(err)
	}
	checkPathsValid(t, v, c, 10)
	checkRouteValid(t, v, c, 10, 2)
}

func TestVLBSpraysAllRelays(t *testing.T) {
	// The Valiant spray must reach every node except src — including dst,
	// which yields the direct path — independent of the injection slot.
	c := matching.Compile(matching.RoundRobin(10))
	v, _ := NewVLB(c)
	r := rng.New(3)
	seen := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		p := v.Route(0, 5, 7, r) // fixed slot: the spray may not depend on it
		w := p[1]
		if w == 0 {
			t.Fatalf("route %v sprays to src itself", p)
		}
		seen[w] = true
	}
	if len(seen) != 9 {
		t.Fatalf("spray reached %d relays, want all 9", len(seen))
	}
}

func TestVLBRequiresFullCoverage(t *testing.T) {
	s := schedule.TopologyA()
	if _, err := NewVLB(matching.Compile(s.Schedule)); err == nil {
		t.Fatal("VLB accepted partial coverage")
	}
}

func TestORNRouter(t *testing.T) {
	o, err := schedule.BuildOptimalORN(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	router := NewORN(o)
	c := matching.Compile(o.Schedule)
	if router.MaxHops() != 4 {
		t.Fatalf("2D ORN MaxHops = %d", router.MaxHops())
	}
	checkPathsValid(t, router, c, 16)
	checkRouteValid(t, router, c, 16, 4)
}

func TestORNRouter3D(t *testing.T) {
	o, err := schedule.BuildOptimalORN(27, 3)
	if err != nil {
		t.Fatal(err)
	}
	router := NewORN(o)
	c := matching.Compile(o.Schedule)
	if router.MaxHops() != 6 {
		t.Fatalf("3D ORN MaxHops = %d", router.MaxHops())
	}
	checkPathsValid(t, router, c, 27)
	checkRouteValid(t, router, c, 27, 5)
}

func TestSORNRouter(t *testing.T) {
	s, err := schedule.BuildSORN(schedule.SORNConfig{N: 32, Nc: 4, Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	router := NewSORN(s)
	c := matching.Compile(s.Schedule)
	if router.MaxHops() != 3 {
		t.Fatalf("SORN MaxHops = %d", router.MaxHops())
	}
	checkPathsValid(t, router, c, 32)
	checkRouteValid(t, router, c, 32, 5)
}

func TestSORNRouterIntraIs2Hop(t *testing.T) {
	s, _ := schedule.BuildSORN(schedule.SORNConfig{N: 32, Nc: 4, Q: 2})
	router := NewSORN(s)
	router.Paths(0, 1, func(p Route, prob float64) {
		if p.Hops() > 2 {
			t.Fatalf("intra path %v has %d hops", p, p.Hops())
		}
		for _, node := range p {
			if !s.Cliques.SameClique(0, node) {
				t.Fatalf("intra path %v leaves the clique", p)
			}
		}
	})
}

func TestSORNRouterInterUsesOneInterHop(t *testing.T) {
	s, _ := schedule.BuildSORN(schedule.SORNConfig{N: 32, Nc: 4, Q: 2})
	router := NewSORN(s)
	router.Paths(0, 20, func(p Route, prob float64) {
		crossings := 0
		for i := 0; i+1 < len(p); i++ {
			if !s.Cliques.SameClique(p[i], p[i+1]) {
				crossings++
			}
		}
		if crossings != 1 {
			t.Fatalf("inter path %v crosses cliques %d times", p, crossings)
		}
	})
}

func TestSORNRouterPaperExample(t *testing.T) {
	// Paper §4: in topology A (8 nodes, 2 cliques of 4), a flow from 0 to
	// 6 could be routed 0->3->7->6 or 0->1->4->6 (load-balancing hop,
	// inter-clique hop, final intra hop). With our fixed same-local-index
	// landing, hop w lands on w+4; verify the paths have that shape.
	s := schedule.TopologyA()
	router := NewSORN(s)
	seen := 0
	router.Paths(0, 6, func(p Route, prob float64) {
		seen++
		if p.Hops() > 3 {
			t.Fatalf("path %v too long", p)
		}
		// Exactly one inter-clique crossing, and once the path enters
		// clique 1 (nodes 4-7) it stays there.
		crossed := false
		for i := 0; i+1 < len(p); i++ {
			a, b := p[i] >= 4, p[i+1] >= 4
			if a != b {
				if crossed || !b {
					t.Fatalf("path %v crosses cliques badly", p)
				}
				crossed = true
			}
		}
		if !crossed {
			t.Fatalf("path %v never crosses to the destination clique", p)
		}
	})
	if seen != 4 {
		t.Fatalf("expected 4 load-balanced paths, got %d", seen)
	}
}

func TestSORNSingletonCliques(t *testing.T) {
	// k=1: no intra hops exist; routing degenerates to inter hop + final
	// (which collapses, since the landing is the destination clique's
	// only member).
	s, err := schedule.BuildSORN(schedule.SORNConfig{N: 8, Nc: 8, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	router := NewSORN(s)
	c := matching.Compile(s.Schedule)
	checkPathsValid(t, router, c, 8)
	checkRouteValid(t, router, c, 8, 6)
	router.Paths(0, 5, func(p Route, prob float64) {
		if p.Hops() != 1 {
			t.Fatalf("singleton-clique path %v should be direct", p)
		}
	})
}

func TestSORNSingleClique(t *testing.T) {
	s, err := schedule.BuildSORN(schedule.SORNConfig{N: 8, Nc: 1, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	router := NewSORN(s)
	if router.MaxHops() != 2 {
		t.Fatalf("single-clique SORN MaxHops = %d, want 2 (pure VLB)", router.MaxHops())
	}
	c := matching.Compile(s.Schedule)
	checkPathsValid(t, router, c, 8)
	checkRouteValid(t, router, c, 8, 7)
}

// TestRouteSamplesPathsDistribution is the contract the differential
// oracle depends on: for every router, Route's empirical path frequencies
// must match the distribution Paths declares — identical support, each
// path within 5σ of its probability. The slot argument must not shift
// the distribution (the regression this guards: relays chosen from the
// slot correlate with slot-correlated arrivals and break the Valiant
// throughput guarantee).
func TestRouteSamplesPathsDistribution(t *testing.T) {
	const trials = 20000
	for _, router := range routersUnderTest(t) {
		r := rng.New(11)
		for _, pair := range [][2]int{{0, 1}, {0, 5}, {3, 12}, {7, 2}, {15, 4}} {
			src, dst := pair[0], pair[1]
			want := make(map[string]float64)
			router.Paths(src, dst, func(p Route, prob float64) {
				want[fmt.Sprint(p)] += prob
			})
			got := make(map[string]int)
			for i := 0; i < trials; i++ {
				got[fmt.Sprint(router.Route(src, dst, i%37, r))]++
			}
			for k := range got {
				if want[k] == 0 {
					t.Fatalf("%s %d->%d: Route produced %s outside the Paths support",
						router.Name(), src, dst, k)
				}
			}
			for k, p := range want {
				f := float64(got[k]) / trials
				sigma := math.Sqrt(p * (1 - p) / trials)
				if math.Abs(f-p) > 5*sigma+1e-12 {
					t.Errorf("%s %d->%d: path %s frequency %.4f, probability %.4f (5σ=%.4f)",
						router.Name(), src, dst, k, f, p, 5*sigma)
				}
			}
		}
	}
}

func TestRouteHopsPositive(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		s, err := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 4, Q: 1 + r.Float64()*5})
		if err != nil {
			return false
		}
		router := NewSORN(s)
		src := r.Intn(16)
		dst := r.Intn(16)
		if src == dst {
			return true
		}
		p := router.Route(src, dst, r.Intn(100), r)
		return p.Hops() >= 1 && p.Hops() <= 3
	}, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSORNRoute(b *testing.B) {
	s, err := schedule.BuildSORN(schedule.SORNConfig{N: 128, Nc: 8, Q: 4.5})
	if err != nil {
		b.Fatal(err)
	}
	router := NewSORN(s)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		router.Route(i%128, (i+37)%128, i, r)
	}
}

func BenchmarkVLBRoute(b *testing.B) {
	v, err := NewVLB(matching.Compile(matching.RoundRobin(128)))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Route(i%128, (i+37)%128, i, r)
	}
}

func TestSORNRouterOverDemandAwareSchedules(t *testing.T) {
	// The SORN router's assumptions (full intra coverage, same-local
	// landing in every clique) must hold on demand-aware (BvN) schedules
	// for arbitrary demand matrices.
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		nc := 3 + r.Intn(4)
		k := 2 + r.Intn(4)
		n := nc * k
		demand := make([][]float64, nc)
		for a := range demand {
			demand[a] = make([]float64, nc)
			for b := range demand[a] {
				if a != b {
					demand[a][b] = 0.2 + 5*r.Float64()
				}
			}
		}
		s, err := schedule.BuildSORNDemandAware(schedule.DemandAwareConfig{
			N: n, Nc: nc, Q: 1 + 4*r.Float64(), Demand: demand,
		})
		if err != nil {
			return false
		}
		router := NewSORN(s)
		c := matching.Compile(s.Schedule)
		for trial := 0; trial < 50; trial++ {
			src, dst := r.Intn(n), r.Intn(n)
			if src == dst {
				continue
			}
			p := router.Route(src, dst, r.Intn(2*s.Schedule.Period()), r)
			if p[0] != src || p[len(p)-1] != dst || p.Hops() > 3 {
				return false
			}
			for i := 0; i+1 < len(p); i++ {
				if !c.HasCircuit(p[i], p[i+1]) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// routersUnderTest builds one router of each scheme over 16 nodes, for
// tests that must hold across every Router implementation.
func routersUnderTest(t *testing.T) []Router {
	t.Helper()
	rr := matching.Compile(matching.RoundRobin(16))
	direct, err := NewDirect(rr)
	if err != nil {
		t.Fatal(err)
	}
	vlb, err := NewVLB(rr)
	if err != nil {
		t.Fatal(err)
	}
	orn, err := schedule.BuildOptimalORN(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	sorn, err := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 4, Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	return []Router{direct, vlb, NewORN(orn), NewSORN(sorn)}
}

func TestRouteIntoMatchesRoute(t *testing.T) {
	// RouteInto is documented as producing exactly Route's hop sequence.
	// ORN draws randomness, so each side gets its own identically seeded
	// stream; a third stream picks the coordinates.
	const n = 16
	for _, router := range routersUnderTest(t) {
		coords := rng.New(90)
		r1 := rng.New(91)
		r2 := rng.New(91)
		buf := make(Route, 0, 2*router.MaxHops())
		for trial := 0; trial < 300; trial++ {
			src := coords.Intn(n)
			dst := coords.Intn(n)
			if dst == src {
				dst = (src + 1) % n
			}
			slot := coords.Intn(200)
			want := router.Route(src, dst, slot, r1)
			buf = router.RouteInto(buf[:0], src, dst, slot, r2)
			if len(buf) != len(want) {
				t.Fatalf("%s: RouteInto len %d != Route len %d", router.Name(), len(buf), len(want))
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("%s: RouteInto(%d,%d,%d) = %v, Route = %v",
						router.Name(), src, dst, slot, buf, want)
				}
			}
		}
	}
}

func TestRouteIntoDoesNotAllocate(t *testing.T) {
	// The simulator calls RouteInto once per injected cell; with a
	// pre-grown buffer it must not allocate at all.
	for _, router := range routersUnderTest(t) {
		router := router
		r := rng.New(92)
		buf := make(Route, 0, 2*router.MaxHops()+2)
		if avg := testing.AllocsPerRun(200, func() {
			buf = router.RouteInto(buf[:0], 0, 15, 3, r)
		}); avg != 0 {
			t.Errorf("%s: RouteInto allocates %.1f per call with a warm buffer", router.Name(), avg)
		}
	}
}
