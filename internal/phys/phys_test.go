package phys

import (
	"testing"

	"repro/internal/matching"
	"repro/internal/schedule"
)

func TestCliqueWiringSmallSupportsSORN(t *testing.T) {
	// 64 nodes, cliques of 8, 16-port gratings, 6 ports per node.
	w, err := CliqueWiring(64, 6, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if w.PortsUsed() > 6 {
		t.Fatalf("ports used %d", w.PortsUsed())
	}
	s, err := schedule.BuildSORN(schedule.SORNConfig{N: 64, Nc: 8, Q: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Supports(s.Schedule); err != nil {
		t.Fatalf("wiring does not support SORN schedule: %v", err)
	}
}

func TestCliqueWiringLargeCliquesSegmented(t *testing.T) {
	// Cliques of 32 with 16-port gratings force segment pairing:
	// seg=8, t=4 segments -> 3 intra ports; 2 cliques -> 1 ring port.
	w, err := CliqueWiring(64, 6, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if w.PortsUsed() != 4 {
		t.Fatalf("ports used = %d, want 4 (3 intra + 1 inter)", w.PortsUsed())
	}
	// Every intra pair of clique 0 must share a grating.
	for u := 0; u < 32; u++ {
		for v := 0; v < 32; v++ {
			if u != v && !w.SharedGrating(u, v) {
				t.Fatalf("intra pair %d,%d not covered", u, v)
			}
		}
	}
	// Same-local inter pairs covered.
	for l := 0; l < 32; l++ {
		if !w.SharedGrating(l, 32+l) {
			t.Fatalf("ring pair %d,%d not covered", l, 32+l)
		}
	}
	s, err := schedule.BuildSORN(schedule.SORNConfig{N: 64, Nc: 2, Q: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Supports(s.Schedule); err != nil {
		t.Fatalf("wiring does not support SORN schedule: %v", err)
	}
}

func TestCliqueWiringPortBudgetEnforced(t *testing.T) {
	// Cliques of 32 with 16-port gratings need 4 ports; give only 3.
	if _, err := CliqueWiring(64, 3, 16, 32); err == nil {
		t.Fatal("over-budget wiring accepted")
	}
}

func TestCliqueWiringErrors(t *testing.T) {
	if _, err := CliqueWiring(10, 4, 16, 3); err == nil {
		t.Error("indivisible cliques accepted")
	}
	if _, err := CliqueWiring(8, 4, 3, 2); err == nil {
		t.Error("odd grating port count accepted")
	}
	if _, err := CliqueWiring(1, 4, 16, 1); err == nil {
		t.Error("single node accepted")
	}
}

func TestSupportsRejectsUncoveredCircuit(t *testing.T) {
	// A flat round robin needs all-pairs coverage; a clique wiring for
	// cliques of 8 does not provide it.
	w, err := CliqueWiring(64, 6, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Supports(matching.RoundRobin(64)); err == nil {
		t.Fatal("clique wiring claimed to support a flat round robin")
	}
	if err := w.Supports(matching.RoundRobin(32)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestPaperDeploymentCliqueSizes(t *testing.T) {
	// The §5 deployment: 4096 nodes, 16 ports, 256-port gratings. The
	// paper claims clique sizes "16, 32, 64 up to 2048"; our segment-
	// pairing construction confirms 16..2048 (and extends down to 2),
	// and shows the boundary: 2048 consumes exactly the 16-port budget
	// while a flat all-pairs fabric (k=1 rings of 4096, or one clique of
	// 4096) would need 31 ports.
	const n, ports, g = 4096, 16, 256
	sizes := SupportedCliqueSizes(n, ports, g)
	want := map[int]bool{}
	for k := 2; k <= 2048; k *= 2 {
		want[k] = true
	}
	for _, k := range sizes {
		if !want[k] {
			t.Errorf("unexpected supported clique size %d", k)
		}
		delete(want, k)
	}
	for k := range want {
		t.Errorf("clique size %d missing from supported set", k)
	}

	// Boundary checks.
	if need, _ := PortsForCliqueSize(n, g, 2048); need != 16 {
		t.Errorf("k=2048 needs %d ports, want exactly 16", need)
	}
	if need, _ := PortsForCliqueSize(n, g, 4096); need != 31 {
		t.Errorf("k=4096 needs %d ports, want 31", need)
	}
	if need, _ := PortsForCliqueSize(n, g, 1); need != 31 {
		t.Errorf("k=1 (flat rings) needs %d ports, want 31", need)
	}
}

func TestPortsForCliqueSizeMatchesBuiltWiring(t *testing.T) {
	for _, k := range []int{2, 4, 8, 16, 32} {
		predicted, err := PortsForCliqueSize(64, 16, k)
		if err != nil {
			t.Fatal(err)
		}
		w, err := CliqueWiring(64, 16, 16, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if w.PortsUsed() != predicted {
			t.Errorf("k=%d: predicted %d ports, wiring used %d", k, predicted, w.PortsUsed())
		}
	}
}

func TestGratingCounts(t *testing.T) {
	w, err := CliqueWiring(64, 6, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Intra: 64 nodes / 16-port gratings = 4 gratings; inter: rings of
	// 8, two rings per grating, 8 rings -> 4 gratings.
	if w.Gratings() != 8 {
		t.Fatalf("gratings = %d, want 8", w.Gratings())
	}
}
