// Package phys models the physical layer the paper's §5 "Expressivity"
// discussion reasons about: nodes with a fixed number of uplink ports,
// wired into wavelength-selective gratings (AWGRs) of a fixed port
// count. A circuit u→v is physically realizable only if some port of u
// and some port of v attach to the same grating; a schedule is
// deployable only if every circuit it uses is realizable.
//
// The paper's example deployment — 4096 nodes, 16 ports per node,
// 256-port gratings — claims "clique sizes ranging from 1 (flat
// network) 16, 32, 64 up to 2048". This package constructs the wirings
// behind that claim and reports exactly which clique sizes fit.
package phys

import (
	"fmt"

	"repro/internal/matching"
)

// Wiring records which grating each used port of each node attaches to.
type Wiring struct {
	N            int
	Ports        int // ports available per node
	GratingPorts int
	CliqueSize   int

	attach   [][]int        // attach[node] = grating ids, one per used port
	members  []map[int]bool // members[grating] = set of attached nodes
	portsUse int            // ports used per node
}

// PortsUsed returns how many of each node's ports the wiring consumes.
func (w *Wiring) PortsUsed() int { return w.portsUse }

// Gratings returns the number of gratings the wiring uses.
func (w *Wiring) Gratings() int { return len(w.members) }

// SharedGrating reports whether u and v attach to a common grating —
// i.e. whether a direct circuit u→v is physically realizable.
func (w *Wiring) SharedGrating(u, v int) bool {
	for _, g := range w.attach[u] {
		if w.members[g][v] {
			return true
		}
	}
	return false
}

// Supports verifies that every circuit a schedule uses is realizable on
// this wiring, returning the first violation.
func (w *Wiring) Supports(s *matching.Schedule) error {
	if s.N != w.N {
		return fmt.Errorf("phys: schedule over %d nodes, wiring over %d", s.N, w.N)
	}
	for t, m := range s.Slots {
		for u, v := range m {
			if !w.SharedGrating(u, v) {
				return fmt.Errorf("phys: slot %d needs circuit %d->%d, but no grating joins them", t, u, v)
			}
		}
	}
	return nil
}

// CliqueWiring wires n nodes (contiguous cliques of size k) so that a
// SORN schedule over those cliques is realizable:
//
//   - intra-clique: every pair within a clique shares a grating. For
//     k ≤ G one port per node suffices (gratings pack whole cliques);
//     for k > G the clique is split into segments of G/2 nodes and one
//     port is spent per segment pairing (ceil(k/(G/2))−1 ports).
//   - inter-clique: SORN's inter circuits connect same-local-index
//     peers across cliques (rings of Nc nodes); rings are packed into
//     gratings the same way.
//
// It returns an error when the port budget cannot cover the structure —
// the §5 feasibility boundary.
func CliqueWiring(n, ports, gratingPorts, k int) (*Wiring, error) {
	if n < 2 || k < 1 || n%k != 0 {
		return nil, fmt.Errorf("phys: cannot split %d nodes into cliques of %d", n, k)
	}
	if gratingPorts < 2 || gratingPorts%2 != 0 {
		return nil, fmt.Errorf("phys: grating ports must be even and >= 2, got %d", gratingPorts)
	}
	nc := n / k
	w := &Wiring{N: n, Ports: ports, GratingPorts: gratingPorts, CliqueSize: k}
	w.attach = make([][]int, n)

	nextGrating := 0
	newGrating := func() int {
		w.members = append(w.members, make(map[int]bool))
		id := nextGrating
		nextGrating++
		return id
	}
	attachGroup := func(nodes []int) error {
		if len(nodes) > gratingPorts {
			return fmt.Errorf("phys: group of %d exceeds %d-port grating", len(nodes), gratingPorts)
		}
		g := newGrating()
		for _, u := range nodes {
			w.attach[u] = append(w.attach[u], g)
			w.members[g][u] = true
		}
		return nil
	}
	// coverPairs wires a set of nodes so every pair shares some grating,
	// spending ports on each node; groups is a list of node sets that
	// each must be pairwise covered.
	coverPairs := func(group []int) error {
		if len(group) <= 1 {
			return nil
		}
		if len(group) <= gratingPorts {
			return attachGroup(group)
		}
		seg := gratingPorts / 2
		if len(group)%seg != 0 {
			return fmt.Errorf("phys: group of %d not divisible into %d-node segments", len(group), seg)
		}
		t := len(group) / seg
		for i := 0; i < t; i++ {
			for j := i + 1; j < t; j++ {
				pair := append(append([]int{}, group[i*seg:(i+1)*seg]...), group[j*seg:(j+1)*seg]...)
				if err := attachGroup(pair); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// Intra-clique coverage. Pack multiple whole cliques per grating
	// when they fit.
	if k > 1 {
		if k <= gratingPorts {
			perGrating := gratingPorts / k * k
			for base := 0; base < n; base += perGrating {
				end := base + perGrating
				if end > n {
					end = n
				}
				group := make([]int, 0, end-base)
				for u := base; u < end; u++ {
					group = append(group, u)
				}
				if err := attachGroup(group); err != nil {
					return nil, err
				}
			}
		} else {
			for c := 0; c < nc; c++ {
				group := make([]int, k)
				for i := range group {
					group[i] = c*k + i
				}
				if err := coverPairs(group); err != nil {
					return nil, err
				}
			}
		}
	}

	// Inter-clique coverage: rings of same-local-index nodes.
	if nc > 1 {
		if nc <= gratingPorts {
			perGrating := gratingPorts / nc
			for base := 0; base < k; base += perGrating {
				end := base + perGrating
				if end > k {
					end = k
				}
				var group []int
				for l := base; l < end; l++ {
					for c := 0; c < nc; c++ {
						group = append(group, c*k+l)
					}
				}
				if err := attachGroup(group); err != nil {
					return nil, err
				}
			}
		} else {
			for l := 0; l < k; l++ {
				ring := make([]int, nc)
				for c := 0; c < nc; c++ {
					ring[c] = c*k + l
				}
				if err := coverPairs(ring); err != nil {
					return nil, err
				}
			}
		}
	}

	for u := range w.attach {
		if len(w.attach[u]) > w.portsUse {
			w.portsUse = len(w.attach[u])
		}
	}
	if w.portsUse > ports {
		return nil, fmt.Errorf("phys: clique size %d needs %d ports per node, only %d available",
			k, w.portsUse, ports)
	}
	return w, nil
}

// PortsForCliqueSize returns the per-node port cost of a clique size
// under CliqueWiring's construction without building the wiring.
func PortsForCliqueSize(n, gratingPorts, k int) (int, error) {
	if n < 2 || k < 1 || n%k != 0 {
		return 0, fmt.Errorf("phys: cannot split %d nodes into cliques of %d", n, k)
	}
	nc := n / k
	cost := func(groupSize int) int {
		switch {
		case groupSize <= 1:
			return 0
		case groupSize <= gratingPorts:
			return 1
		default:
			seg := gratingPorts / 2
			t := (groupSize + seg - 1) / seg
			return t - 1
		}
	}
	return cost(k) + cost(nc), nil
}

// SupportedCliqueSizes reports which power-of-two clique sizes (plus 1
// and n) fit the port budget — the quantitative version of the paper's
// §5 claim about the 4096-node / 16-port / 256-grating deployment.
func SupportedCliqueSizes(n, ports, gratingPorts int) []int {
	var out []int
	for k := 1; k <= n; k *= 2 {
		if n%k != 0 {
			continue
		}
		need, err := PortsForCliqueSize(n, gratingPorts, k)
		if err == nil && need <= ports {
			out = append(out, k)
		}
	}
	return out
}
