// Package faultplan turns failure scenarios into data: a Plan is a
// slot-indexed, deterministic schedule of link/node failures and repairs
// that a Driver replays against any simulator implementing Target,
// strictly between Steps (netsim's failure-injection contract).
//
// Plans come from three sources, freely combined with Merge:
//
//   - scripted events (New), for precisely reproducible scenarios such
//     as "node 7 dies at slot 500 and returns at slot 1500";
//   - seeded random churn (Churn), which materializes the whole outage
//     sequence ahead of time from a dedicated rng stream — the traffic
//     workload's streams are never touched, so adding churn to an
//     experiment perturbs nothing but the faults themselves;
//   - the CLI spec grammar (ParseSpec), which composes both.
//
// Because a Plan is immutable data ordered by (slot, kind, node ids),
// replaying it is worker-count-invariant: the Driver applies the same
// events at the same slots in the same order no matter how the simulator
// shards its phases, which is what extends netsim's Workers 1-vs-k
// bit-identical determinism guarantee to runs with active fault plans.
package faultplan

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// Kind is the event type. Repairs order before failures so that, within
// one slot, an entity scheduled for back-to-back outages is repaired
// before it fails again (the lifecycle never sees fail-while-failed).
type Kind uint8

const (
	RepairLink Kind = iota
	RepairNode
	FailLink
	FailNode
)

// String names the kind for errors and traces.
func (k Kind) String() string {
	switch k {
	case RepairLink:
		return "repair_link"
	case RepairNode:
		return "repair_node"
	case FailLink:
		return "fail_link"
	case FailNode:
		return "fail_node"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one scheduled fault action. Link events use U→V (directed);
// node events use U and leave V at -1.
type Event struct {
	Slot int64
	Kind Kind
	U, V int
}

// less is the canonical plan order: slot, then kind (repairs first),
// then node ids — a total order, so sorting is deterministic.
func (e Event) less(o Event) bool {
	if e.Slot != o.Slot {
		return e.Slot < o.Slot
	}
	if e.Kind != o.Kind {
		return e.Kind < o.Kind
	}
	if e.U != o.U {
		return e.U < o.U
	}
	return e.V < o.V
}

func (e Event) validate(n int) error {
	if e.Slot < 0 {
		return fmt.Errorf("faultplan: %s at negative slot %d", e.Kind, e.Slot)
	}
	if e.U < 0 || e.U >= n {
		return fmt.Errorf("faultplan: %s node %d outside [0,%d)", e.Kind, e.U, n)
	}
	switch e.Kind {
	case FailLink, RepairLink:
		if e.V < 0 || e.V >= n {
			return fmt.Errorf("faultplan: %s node %d outside [0,%d)", e.Kind, e.V, n)
		}
		if e.U == e.V {
			return fmt.Errorf("faultplan: %s self-link %d:%d", e.Kind, e.U, e.V)
		}
	case FailNode, RepairNode:
		if e.V != -1 {
			return fmt.Errorf("faultplan: %s carries link endpoint V=%d", e.Kind, e.V)
		}
	default:
		return fmt.Errorf("faultplan: unknown kind %d", e.Kind)
	}
	return nil
}

// Plan is an immutable, canonically ordered fault schedule over n nodes.
type Plan struct {
	n      int
	events []Event
}

// New builds a plan over n nodes from events in any order; they are
// validated against n and sorted into canonical order.
func New(n int, events []Event) (*Plan, error) {
	if n < 2 {
		return nil, fmt.Errorf("faultplan: need at least 2 nodes, got %d", n)
	}
	evs := make([]Event, len(events))
	copy(evs, events)
	for _, e := range evs {
		if err := e.validate(n); err != nil {
			return nil, err
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].less(evs[j]) })
	return &Plan{n: n, events: evs}, nil
}

// N returns the node count the plan was validated against.
func (p *Plan) N() int { return p.n }

// Len returns the number of scheduled events.
func (p *Plan) Len() int { return len(p.events) }

// Events returns a copy of the schedule in canonical order.
func (p *Plan) Events() []Event {
	out := make([]Event, len(p.events))
	copy(out, p.events)
	return out
}

// Horizon returns the last scheduled slot (0 for an empty plan). Runs
// that should observe the full scenario — including the final repairs —
// must step past it.
func (p *Plan) Horizon() int64 {
	if len(p.events) == 0 {
		return 0
	}
	return p.events[len(p.events)-1].Slot
}

// Merge combines two plans over the same node count into one.
func Merge(a, b *Plan) (*Plan, error) {
	if a.n != b.n {
		return nil, fmt.Errorf("faultplan: merging plans over %d and %d nodes", a.n, b.n)
	}
	return New(a.n, append(a.Events(), b.events...))
}

// Outage is a convenience constructor: entity down at start, repaired at
// end (exclusive; end <= start means the failure is permanent). Link
// outages take v >= 0, node outages v = -1.
func Outage(u, v int, start, end int64) []Event {
	var fail, repair Kind
	if v >= 0 {
		fail, repair = FailLink, RepairLink
	} else {
		fail, repair = FailNode, RepairNode
	}
	evs := []Event{{Slot: start, Kind: fail, U: u, V: v}}
	if end > start {
		evs = append(evs, Event{Slot: end, Kind: repair, U: u, V: v})
	}
	return evs
}

// ChurnConfig parameterizes random background churn.
type ChurnConfig struct {
	N          int     // node count
	Start, End int64   // churn is drawn for slots in [Start, End)
	LinkRate   float64 // per-slot probability a new link outage starts
	NodeRate   float64 // per-slot probability a new node outage starts
	Down       int64   // outage duration in slots
	Seed       uint64  // dedicated stream seed; decorrelated internally
}

// churnSeedXor decorrelates the churn stream from every other consumer
// of the same user seed (netsim's traffic, latency sampling, per-node
// streams all xor their own constants), so turning churn on or off — or
// changing its rates — never perturbs the workload.
const churnSeedXor = 0xfa17_190a_c4c4_c4c4

// Churn materializes a random fail/repair schedule ahead of time. The
// whole sequence is a pure function of the config: per slot, one
// Bernoulli draw per enabled rate decides whether an outage starts, and
// a uniform draw picks the victim; a victim already down is skipped
// (draw consumed, no event), so outages never overlap per entity and the
// fail→repair→fail lifecycle stays well-formed by construction.
func Churn(cfg ChurnConfig) (*Plan, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("faultplan: churn needs at least 2 nodes, got %d", cfg.N)
	}
	if cfg.Start < 0 || cfg.End < cfg.Start {
		return nil, fmt.Errorf("faultplan: churn window [%d,%d) invalid", cfg.Start, cfg.End)
	}
	if cfg.LinkRate < 0 || cfg.LinkRate > 1 || cfg.NodeRate < 0 || cfg.NodeRate > 1 {
		return nil, fmt.Errorf("faultplan: churn rates (%g links, %g nodes) outside [0,1]",
			cfg.LinkRate, cfg.NodeRate)
	}
	if (cfg.LinkRate > 0 || cfg.NodeRate > 0) && cfg.Down <= 0 {
		return nil, fmt.Errorf("faultplan: churn outage duration %d must be positive", cfg.Down)
	}
	r := rng.New(cfg.Seed ^ churnSeedXor)
	n := cfg.N
	linkUp := make([]int64, n*n) // slot at which the link is live again
	nodeUp := make([]int64, n)
	var events []Event
	for slot := cfg.Start; slot < cfg.End; slot++ {
		if cfg.LinkRate > 0 && r.Float64() < cfg.LinkRate {
			u := r.Intn(n)
			v := r.Intn(n - 1)
			if v >= u {
				v++
			}
			if linkUp[u*n+v] <= slot {
				linkUp[u*n+v] = slot + cfg.Down
				events = append(events, Outage(u, v, slot, slot+cfg.Down)...)
			}
		}
		if cfg.NodeRate > 0 && r.Float64() < cfg.NodeRate {
			u := r.Intn(n)
			if nodeUp[u] <= slot {
				nodeUp[u] = slot + cfg.Down
				events = append(events, Outage(u, -1, slot, slot+cfg.Down)...)
			}
		}
	}
	return New(n, events)
}

// Target is what a Driver drives. netsim.Sim satisfies it; any simulator
// honoring the between-Steps injection contract can.
type Target interface {
	FailLink(u, v int)
	RepairLink(u, v int)
	FailNode(u int)
	RepairNode(u int)
}

// Driver replays a plan against a Target. Drivers are cheap cursors over
// the immutable plan — build one per run (e.g. one per baseline in a
// comparison experiment) rather than sharing.
type Driver struct {
	plan *Plan
	next int
}

// NewDriver returns a fresh cursor at the start of the plan.
func NewDriver(p *Plan) *Driver { return &Driver{plan: p} }

// Advance applies every not-yet-applied event scheduled at or before
// slot, in canonical order, and reports how many it applied. Call it
// between Steps, before injecting the slot's traffic, so a slot's
// failures take effect on that slot's transmissions.
func (d *Driver) Advance(t Target, slot int64) int {
	applied := 0
	for d.next < len(d.plan.events) && d.plan.events[d.next].Slot <= slot {
		e := d.plan.events[d.next]
		switch e.Kind {
		case FailLink:
			t.FailLink(e.U, e.V)
		case RepairLink:
			t.RepairLink(e.U, e.V)
		case FailNode:
			t.FailNode(e.U)
		case RepairNode:
			t.RepairNode(e.U)
		}
		d.next++
		applied++
	}
	return applied
}

// Done reports whether every event has been applied.
func (d *Driver) Done() bool { return d.next == len(d.plan.events) }

// NextSlot returns the slot of the next unapplied event, so a driver
// loop over a quiescent simulator can fast-forward to it instead of
// polling Advance every slot. ok is false once the plan is exhausted.
func (d *Driver) NextSlot() (slot int64, ok bool) {
	if d.next >= len(d.plan.events) {
		return 0, false
	}
	return d.plan.events[d.next].Slot, true
}

// ParseSpec parses the CLI fault-plan grammar into a plan over n nodes.
// Entries are ';'-separated:
//
//	node<U>@<start>[-<end>]          node outage (permanent without end)
//	link<U>:<V>@<start>[-<end>]      directed link outage
//	churn@<start>-<end>[,links=<p>][,nodes=<p>][,down=<slots>]
//
// e.g. "node7@500-1500;link0:9@800-1200;churn@0-5000,links=0.001,down=300".
// Churn draws from a dedicated stream derived from seed, so the same
// seed+spec always yields the same plan.
func ParseSpec(spec string, n int, seed uint64) (*Plan, error) {
	plan, err := New(n, nil)
	if err != nil {
		return nil, err
	}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		part, err := parseEntry(entry, n, seed)
		if err != nil {
			return nil, err
		}
		plan, err = Merge(plan, part)
		if err != nil {
			return nil, err
		}
	}
	return plan, nil
}

func parseEntry(entry string, n int, seed uint64) (*Plan, error) {
	head, rest, ok := strings.Cut(entry, "@")
	if !ok {
		return nil, fmt.Errorf("faultplan: entry %q missing '@'", entry)
	}
	switch {
	case head == "churn":
		return parseChurn(entry, rest, n, seed)
	case strings.HasPrefix(head, "node"):
		u, err := strconv.Atoi(head[len("node"):])
		if err != nil {
			return nil, fmt.Errorf("faultplan: bad node id in %q: %v", entry, err)
		}
		start, end, err := parseWindow(rest, false)
		if err != nil {
			return nil, fmt.Errorf("faultplan: %q: %v", entry, err)
		}
		return New(n, Outage(u, -1, start, end))
	case strings.HasPrefix(head, "link"):
		us, vs, ok := strings.Cut(head[len("link"):], ":")
		if !ok {
			return nil, fmt.Errorf("faultplan: link entry %q needs u:v", entry)
		}
		u, err := strconv.Atoi(us)
		if err != nil {
			return nil, fmt.Errorf("faultplan: bad link source in %q: %v", entry, err)
		}
		v, err := strconv.Atoi(vs)
		if err != nil {
			return nil, fmt.Errorf("faultplan: bad link destination in %q: %v", entry, err)
		}
		start, end, err := parseWindow(rest, false)
		if err != nil {
			return nil, fmt.Errorf("faultplan: %q: %v", entry, err)
		}
		return New(n, Outage(u, v, start, end))
	default:
		return nil, fmt.Errorf("faultplan: unknown entry %q (want node…, link…, or churn…)", entry)
	}
}

func parseChurn(entry, rest string, n int, seed uint64) (*Plan, error) {
	fields := strings.Split(rest, ",")
	start, end, err := parseWindow(fields[0], true)
	if err != nil {
		return nil, fmt.Errorf("faultplan: %q: %v", entry, err)
	}
	cfg := ChurnConfig{N: n, Start: start, End: end, Down: 300, Seed: seed}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("faultplan: churn option %q in %q needs key=value", f, entry)
		}
		switch k {
		case "links":
			cfg.LinkRate, err = strconv.ParseFloat(v, 64)
		case "nodes":
			cfg.NodeRate, err = strconv.ParseFloat(v, 64)
		case "down":
			cfg.Down, err = strconv.ParseInt(v, 10, 64)
		default:
			return nil, fmt.Errorf("faultplan: unknown churn option %q in %q", k, entry)
		}
		if err != nil {
			return nil, fmt.Errorf("faultplan: churn option %q in %q: %v", f, entry, err)
		}
	}
	return Churn(cfg)
}

// parseWindow parses "<start>" or "<start>-<end>"; needEnd requires the
// two-sided form.
func parseWindow(s string, needEnd bool) (start, end int64, err error) {
	ss, es, hasEnd := strings.Cut(s, "-")
	start, err = strconv.ParseInt(ss, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad window start %q: %v", ss, err)
	}
	if !hasEnd {
		if needEnd {
			return 0, 0, fmt.Errorf("window %q needs start-end", s)
		}
		return start, start, nil
	}
	end, err = strconv.ParseInt(es, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad window end %q: %v", es, err)
	}
	if end < start {
		return 0, 0, fmt.Errorf("window %q ends before it starts", s)
	}
	return start, end, nil
}
