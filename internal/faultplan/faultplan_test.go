package faultplan

import (
	"reflect"
	"testing"
)

// fakeTarget records applied events so driver order is checkable.
type fakeTarget struct {
	calls []Event
}

func (f *fakeTarget) FailLink(u, v int) { f.calls = append(f.calls, Event{Kind: FailLink, U: u, V: v}) }
func (f *fakeTarget) RepairLink(u, v int) {
	f.calls = append(f.calls, Event{Kind: RepairLink, U: u, V: v})
}
func (f *fakeTarget) FailNode(u int) { f.calls = append(f.calls, Event{Kind: FailNode, U: u, V: -1}) }
func (f *fakeTarget) RepairNode(u int) {
	f.calls = append(f.calls, Event{Kind: RepairNode, U: u, V: -1})
}

func TestNewSortsCanonically(t *testing.T) {
	// Same slot: repairs must order before failures, then by node ids.
	p, err := New(8, []Event{
		{Slot: 10, Kind: FailNode, U: 3, V: -1},
		{Slot: 10, Kind: RepairNode, U: 3, V: -1},
		{Slot: 5, Kind: FailLink, U: 7, V: 0},
		{Slot: 10, Kind: FailLink, U: 1, V: 2},
		{Slot: 10, Kind: FailLink, U: 1, V: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Slot: 5, Kind: FailLink, U: 7, V: 0},
		{Slot: 10, Kind: RepairNode, U: 3, V: -1},
		{Slot: 10, Kind: FailLink, U: 1, V: 0},
		{Slot: 10, Kind: FailLink, U: 1, V: 2},
		{Slot: 10, Kind: FailNode, U: 3, V: -1},
	}
	if got := p.Events(); !reflect.DeepEqual(got, want) {
		t.Fatalf("canonical order:\n got %v\nwant %v", got, want)
	}
	if p.Horizon() != 10 {
		t.Fatalf("horizon = %d, want 10", p.Horizon())
	}
}

func TestNewRejectsMalformedEvents(t *testing.T) {
	cases := []Event{
		{Slot: -1, Kind: FailNode, U: 0, V: -1},  // negative slot
		{Slot: 0, Kind: FailNode, U: 8, V: -1},   // node out of range
		{Slot: 0, Kind: FailLink, U: 2, V: 2},    // self link
		{Slot: 0, Kind: FailLink, U: 0, V: 9},    // link endpoint out of range
		{Slot: 0, Kind: FailNode, U: 0, V: 3},    // node event with link payload
		{Slot: 0, Kind: Kind(99), U: 0, V: -1},   // unknown kind
		{Slot: 0, Kind: RepairLink, U: -1, V: 0}, // negative node
	}
	for _, e := range cases {
		if _, err := New(8, []Event{e}); err == nil {
			t.Errorf("New accepted malformed event %+v", e)
		}
	}
	if _, err := New(1, nil); err == nil {
		t.Error("New accepted a 1-node plan")
	}
}

func TestDriverAppliesInOrder(t *testing.T) {
	p, err := New(8, Outage(3, -1, 5, 20))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := New(8, Outage(0, 1, 10, 15))
	if err != nil {
		t.Fatal(err)
	}
	p, err = Merge(p, ch)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(p)
	ft := &fakeTarget{}
	if got := d.Advance(ft, 4); got != 0 || len(ft.calls) != 0 {
		t.Fatalf("advance(4) applied %d events, want 0", got)
	}
	if got := d.Advance(ft, 12); got != 2 {
		t.Fatalf("advance(12) applied %d events, want 2 (node fail + link fail)", got)
	}
	if got := d.Advance(ft, 100); got != 2 || !d.Done() {
		t.Fatalf("advance(100) applied %d events (done=%v), want 2 and done", got, d.Done())
	}
	want := []Event{
		{Kind: FailNode, U: 3, V: -1},
		{Kind: FailLink, U: 0, V: 1},
		{Kind: RepairLink, U: 0, V: 1},
		{Kind: RepairNode, U: 3, V: -1},
	}
	if !reflect.DeepEqual(ft.calls, want) {
		t.Fatalf("applied order:\n got %v\nwant %v", ft.calls, want)
	}
}

func TestChurnDeterministicAndWellFormed(t *testing.T) {
	cfg := ChurnConfig{N: 16, Start: 0, End: 5000, LinkRate: 0.05, NodeRate: 0.02, Down: 97, Seed: 42}
	a, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same config produced different churn plans")
	}
	if a.Len() == 0 {
		t.Fatal("churn at these rates over 5000 slots produced no events")
	}
	cfg.Seed = 43
	c, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Fatal("different seeds produced identical churn plans")
	}

	// Well-formed lifecycle: per entity, strictly alternating fail/repair
	// starting with fail, and every fail at a slot where the entity is up.
	type state struct {
		down bool
	}
	nodes := make([]state, 16)
	links := make([]state, 16*16)
	for _, e := range a.Events() {
		var st *state
		switch e.Kind {
		case FailNode, RepairNode:
			st = &nodes[e.U]
		default:
			st = &links[e.U*16+e.V]
		}
		failing := e.Kind == FailNode || e.Kind == FailLink
		if failing == st.down {
			t.Fatalf("lifecycle violation at %+v (down=%v)", e, st.down)
		}
		st.down = failing
	}
}

func TestChurnRejectsBadConfig(t *testing.T) {
	bad := []ChurnConfig{
		{N: 1, End: 10, LinkRate: 0.1, Down: 5},
		{N: 8, Start: 10, End: 5, LinkRate: 0.1, Down: 5},
		{N: 8, End: 10, LinkRate: 1.5, Down: 5},
		{N: 8, End: 10, NodeRate: -0.1, Down: 5},
		{N: 8, End: 10, LinkRate: 0.1, Down: 0},
	}
	for _, cfg := range bad {
		if _, err := Churn(cfg); err == nil {
			t.Errorf("Churn accepted bad config %+v", cfg)
		}
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("node7@500-1500; link0:9@800-1200 ;node2@50", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Slot: 50, Kind: FailNode, U: 2, V: -1},
		{Slot: 500, Kind: FailNode, U: 7, V: -1},
		{Slot: 800, Kind: FailLink, U: 0, V: 9},
		{Slot: 1200, Kind: RepairLink, U: 0, V: 9},
		{Slot: 1500, Kind: RepairNode, U: 7, V: -1},
	}
	if got := p.Events(); !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed plan:\n got %v\nwant %v", got, want)
	}

	// Churn entries are seed-stable and compose with scripted entries.
	spec := "node3@100-200;churn@0-2000,links=0.02,nodes=0.01,down=50"
	a, err := ParseSpec(spec, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec(spec, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same spec+seed parsed to different plans")
	}
	if a.Len() <= 2 {
		t.Fatalf("expected scripted outage plus churn events, got %d events", a.Len())
	}

	// Empty spec is an empty plan, not an error.
	e, err := ParseSpec("", 16, 0)
	if err != nil || e.Len() != 0 {
		t.Fatalf("empty spec: plan len %d, err %v", e.Len(), err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"node7",                       // missing @
		"nodeX@5",                     // bad id
		"link3@5",                     // missing :v
		"link3:x@5",                   // bad endpoint
		"node7@10-5",                  // end before start
		"node99@5",                    // out of range
		"churn@100",                   // churn needs start-end
		"churn@0-10,bogus=1",          // unknown option
		"churn@0-10,links=xyz",        // bad value
		"churn@0-10,links=0.1,down=0", // zero duration
		"widget@5",                    // unknown entry
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec, 16, 0); err == nil {
			t.Errorf("ParseSpec accepted %q", spec)
		}
	}
}

func TestDriverNextSlot(t *testing.T) {
	p, err := New(8, Outage(3, -1, 5, 20))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(p)
	if s, ok := d.NextSlot(); !ok || s != 5 {
		t.Fatalf("fresh driver NextSlot = %d, %v; want 5, true", s, ok)
	}
	ft := &fakeTarget{}
	d.Advance(ft, 5)
	if s, ok := d.NextSlot(); !ok || s != 20 {
		t.Fatalf("after fail applied NextSlot = %d, %v; want 20, true", s, ok)
	}
	d.Advance(ft, 20)
	if _, ok := d.NextSlot(); ok {
		t.Fatal("exhausted driver still reports a next slot")
	}
	if !d.Done() {
		t.Fatal("driver not done after all events applied")
	}
}
