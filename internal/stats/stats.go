// Package stats provides the small statistics toolkit the simulator and the
// experiment harness share: streaming summaries, percentile estimation over
// retained samples, log-scale histograms for latency distributions, and a
// fixed-width table renderer used by the cmd/ binaries to print the paper's
// tables and figure series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sortedmap"
)

// Summary accumulates a stream of float64 observations and reports count,
// mean, variance (Welford), min, and max without retaining samples.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// Count returns the number of observations.
func (s *Summary) Count() int64 { return s.n }

// Mean returns the running mean, or NaN with no observations: an empty
// summary has no mean, and a silent 0 reads as a (wrong) measurement in
// downstream tables.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Variance returns the sample variance, or 0 for fewer than 2 observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or NaN with no observations.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation, or NaN with no observations.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Sample retains every observation and answers percentile queries exactly.
// Suitable for the volumes this repository produces (≤ millions of points).
// Staged: shard-phase code only ever appends into samples inside its own
// shard's staged Stats, merged at the slot barrier in shard order.
//
//sornlint:staged
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.xs = append(s.xs, v)
	s.sorted = false
}

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.xs) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation between closest ranks. It returns NaN with no
// observations — consistent with Mean, and distinguishable from a real
// zero-latency percentile.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[len(s.xs)-1]
	}
	return s.xs[lo] + frac*(s.xs[lo+1]-s.xs[lo])
}

// DrainTo appends s's observations to dst in insertion order and resets
// s to empty. It is the deterministic merge primitive for sharded
// accumulation: draining shard samples in a fixed shard order yields the
// same dst stream regardless of how observations were partitioned.
func (s *Sample) DrainTo(dst *Sample) {
	if len(s.xs) == 0 {
		return
	}
	dst.xs = append(dst.xs, s.xs...)
	dst.sorted = false
	s.xs = s.xs[:0]
	s.sorted = false
}

// Values returns a copy of the retained observations in insertion order
// (or sorted order after a percentile query). Intended for tests that
// compare sample streams exactly.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Mean returns the arithmetic mean of the sample, or NaN when empty.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.xs {
		sum += v
	}
	return sum / float64(len(s.xs))
}

// Max returns the largest observation, or NaN with no observations.
func (s *Sample) Max() float64 { return s.Percentile(100) }

// LogHistogram buckets positive values into base-2 logarithmic bins, which
// is how latency distributions spanning ns..ms are reported.
type LogHistogram struct {
	counts map[int]int64
	total  int64
}

// NewLogHistogram returns an empty histogram.
func NewLogHistogram() *LogHistogram {
	return &LogHistogram{counts: make(map[int]int64)}
}

// Add records v. Non-positive values land in the lowest bucket.
func (h *LogHistogram) Add(v float64) {
	b := 0
	if v > 1 {
		b = int(math.Log2(v))
	}
	h.counts[b]++
	h.total++
}

// Total returns the number of recorded values.
func (h *LogHistogram) Total() int64 { return h.total }

// Buckets returns (lowerBound, count) pairs in increasing order.
func (h *LogHistogram) Buckets() (bounds []float64, counts []int64) {
	for _, k := range sortedmap.Keys(h.counts) {
		bounds = append(bounds, math.Pow(2, float64(k)))
		counts = append(counts, h.counts[k])
	}
	return bounds, counts
}

// Table renders rows of strings with aligned columns, in the style of the
// paper's Table 1. The zero value is ready to use.
type Table struct {
	header []string
	rows   [][]string
}

// SetHeader sets the column headers.
func (t *Table) SetHeader(cols ...string) { t.header = cols }

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row of formatted cells, each built with fmt.Sprintf
// from consecutive (format, value) handling left to the caller.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	ncols := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < ncols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(ncols-1)))
		b.WriteString("\n")
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting; callers only
// emit numeric and simple-identifier cells).
func (t *Table) CSV() string {
	var b strings.Builder
	if len(t.header) > 0 {
		b.WriteString(strings.Join(t.header, ","))
		b.WriteString("\n")
	}
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteString("\n")
	}
	return b.String()
}
