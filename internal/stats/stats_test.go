package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.Count() != 5 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean = %f", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %f/%f", s.Min(), s.Max())
	}
	if math.Abs(s.Variance()-2.5) > 1e-12 {
		t.Fatalf("variance = %f, want 2.5", s.Variance())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	// An empty summary has no mean/min/max: NaN, not a misleading 0.
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatalf("empty summary mean/min/max = %f/%f/%f, want NaN", s.Mean(), s.Min(), s.Max())
	}
	if s.Variance() != 0 || s.Count() != 0 {
		t.Fatal("empty summary variance/count not zero")
	}
	s.Add(7)
	if s.Variance() != 0 || s.Mean() != 7 || s.Min() != 7 || s.Max() != 7 {
		t.Fatal("single-element summary wrong")
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(100)
		var s Summary
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*200 - 100
			s.Add(xs[i])
		}
		mean := 0.0
		for _, v := range xs {
			mean += v
		}
		mean /= float64(n)
		varsum := 0.0
		for _, v := range xs {
			varsum += (v - mean) * (v - mean)
		}
		naiveVar := varsum / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Variance()-naiveVar) < 1e-6
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("p%.0f = %f, want %f", c.p, got, c.want)
		}
	}
	if s.Max() != 100 {
		t.Errorf("max = %f", s.Max())
	}
	if s.Mean() != 50.5 {
		t.Errorf("mean = %f", s.Mean())
	}
}

func TestPercentileMonotone(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		var s Sample
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			s.Add(r.Float64() * 1000)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileInterleavedAdd(t *testing.T) {
	var s Sample
	s.Add(10)
	s.Add(1)
	_ = s.Percentile(50)
	s.Add(100) // must re-sort after this
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 after interleaved add = %f", got)
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	// Empty-sample queries return NaN across the board — Percentile,
	// Mean, and Max (which delegates to Percentile) agree.
	if !math.IsNaN(s.Percentile(50)) || !math.IsNaN(s.Mean()) || !math.IsNaN(s.Max()) {
		t.Fatalf("empty sample p50/mean/max = %f/%f/%f, want NaN",
			s.Percentile(50), s.Mean(), s.Max())
	}
	if s.Count() != 0 {
		t.Fatal("empty sample count not zero")
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram()
	for _, v := range []float64{0.5, 1, 2, 3, 4, 1000} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	bounds, counts := h.Buckets()
	if len(bounds) != len(counts) || len(bounds) == 0 {
		t.Fatal("malformed buckets")
	}
	var sum int64
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatal("bounds not increasing")
		}
	}
	for _, c := range counts {
		sum += c
	}
	if sum != 6 {
		t.Fatalf("bucket counts sum to %d", sum)
	}
}

func TestTableRendering(t *testing.T) {
	var tb Table
	tb.SetHeader("System", "Thpt.")
	tb.AddRow("1D ORN", "50%")
	tb.AddRow("SORN", "40.98%")
	out := tb.String()
	if !strings.Contains(out, "System") || !strings.Contains(out, "40.98%") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines (header, rule, 2 rows), got %d:\n%s", len(lines), out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "System,Thpt.\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
}

func TestTableAddRowf(t *testing.T) {
	var tb Table
	tb.SetHeader("a", "b", "c")
	tb.AddRowf("x", 1.5, 42)
	out := tb.String()
	for _, want := range []string{"x", "1.50", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestTableRaggedRows(t *testing.T) {
	var tb Table
	tb.SetHeader("a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "z")
	out := tb.String()
	if !strings.Contains(out, "only-one") || !strings.Contains(out, "z") {
		t.Fatalf("ragged rows mishandled:\n%s", out)
	}
}

func TestTableNoHeader(t *testing.T) {
	var tb Table
	tb.AddRow("a", "b")
	out := tb.String()
	if strings.Contains(out, "---") {
		t.Fatalf("headerless table rendered a rule:\n%s", out)
	}
	if !strings.Contains(out, "a") {
		t.Fatal("row missing")
	}
}

func TestLogHistogramEmptyBuckets(t *testing.T) {
	h := NewLogHistogram()
	bounds, counts := h.Buckets()
	if len(bounds) != 0 || len(counts) != 0 || h.Total() != 0 {
		t.Fatal("empty histogram not empty")
	}
}
