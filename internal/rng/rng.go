// Package rng provides a small, deterministic random number generator and
// the distributions the simulator and workload generators need.
//
// Everything in this repository that is stochastic takes an explicit *rng.RNG
// seeded by the caller, so every experiment, test, and benchmark is exactly
// reproducible. The generator is xoshiro256**, seeded through splitmix64,
// which is the conventional pairing: splitmix64 decorrelates arbitrary user
// seeds (including 0) before they reach the xoshiro state.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// It is not safe for concurrent use; give each goroutine its own RNG,
// e.g. via Split. Staged: shard-phase code draws only from per-node
// streams (netsim's latRngs/nodeRngs), each owned by exactly one shard.
//
//sornlint:staged
type RNG struct {
	s [4]uint64
}

// New returns an RNG seeded from seed via splitmix64.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new RNG deterministically derived from r's current state.
// Use it to hand independent streams to sub-components without sharing.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}

// SplitN returns n independent streams derived serially from r, with the
// same derivation as n consecutive Split calls. Returning values rather
// than pointers lets callers hold the streams in one contiguous
// allocation (e.g. one stream per simulated node).
func (r *RNG) SplitN(n int) []RNG {
	out := make([]RNG, n)
	r.SplitNInto(out)
	return out
}

// SplitNInto fills dst with len(dst) independent streams derived serially
// from r — the same derivation as SplitN, but into a caller-owned slice so
// a pooled simulator can reseed its per-node streams without reallocating.
func (r *RNG) SplitNInto(dst []RNG) {
	for i := range dst {
		dst[i] = *New(r.Uint64() ^ 0xa5a5a5a5deadbeef)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded rejection sampling.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	hi = aHi*bHi + t>>32
	t = t&mask + aLo*bHi
	hi += t >> 32
	lo = a * b
	return hi, lo
}

// Int63 returns a uniformly distributed non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes a slice of ints in place (Fisher–Yates).
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Exp returns an exponentially distributed float64 with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with rate <= 0")
	}
	u := r.Float64()
	// 1-u is in (0, 1], so the log is finite.
	return -math.Log(1-u) / rate
}

// Poisson returns a Poisson-distributed int with the given mean, using
// Knuth's product method for small means and a normal approximation with
// continuity correction for large ones.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation; adequate for workload arrival counts.
		n := int(math.Round(mean + math.Sqrt(mean)*r.Norm()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Norm returns a standard normal variate (Box–Muller, one value per call).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	//sornlint:ignore floateq -- rejects the exact 0 Float64 can return; log(0) guard
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Zipf returns a Zipf-distributed int in [0, n) with skew s >= 0.
// s = 0 degenerates to uniform. Sampling is by inversion over the
// precomputed CDF held in z.
type Zipf struct {
	cdf []float64
	r   *RNG
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf called with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Next returns the next Zipf sample.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// EmpiricalCDF samples from a piecewise-linear empirical CDF given as
// (value, cumulative probability) knots, as published for datacenter
// flow-size distributions (e.g. pFabric web search / data mining).
type EmpiricalCDF struct {
	values []float64
	probs  []float64
}

// NewEmpiricalCDF builds a sampler. probs must be non-decreasing, start
// at >= 0, and end at 1; values must be non-decreasing and the slices must
// have equal length >= 2. It panics on malformed input because these CDFs
// are compile-time constants in this repository.
func NewEmpiricalCDF(values, probs []float64) *EmpiricalCDF {
	if len(values) != len(probs) || len(values) < 2 {
		panic("rng: malformed empirical CDF (length)")
	}
	for i := 1; i < len(values); i++ {
		if values[i] < values[i-1] || probs[i] < probs[i-1] {
			panic("rng: malformed empirical CDF (monotonicity)")
		}
	}
	//sornlint:ignore floateq -- published CDFs end at the literal constant 1
	if probs[len(probs)-1] != 1 {
		panic("rng: empirical CDF must end at probability 1")
	}
	return &EmpiricalCDF{values: values, probs: probs}
}

// Sample draws one value by inverse-transform sampling with linear
// interpolation between knots.
func (e *EmpiricalCDF) Sample(r *RNG) float64 {
	u := r.Float64()
	lo, hi := 0, len(e.probs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if e.probs[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return e.values[0]
	}
	p0, p1 := e.probs[lo-1], e.probs[lo]
	v0, v1 := e.values[lo-1], e.values[lo]
	//sornlint:ignore floateq -- guards the division below against exactly-equal knots
	if p1 == p0 {
		return v1
	}
	frac := (u - p0) / (p1 - p0)
	return v0 + frac*(v1-v0)
}

// Mean returns the mean of the piecewise-linear distribution, used to
// convert a target load into a flow arrival rate.
func (e *EmpiricalCDF) Mean() float64 {
	mean := 0.0
	for i := 1; i < len(e.values); i++ {
		w := e.probs[i] - e.probs[i-1]
		mean += w * (e.values[i] + e.values[i-1]) / 2
	}
	return mean
}
