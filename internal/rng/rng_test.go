package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 60 {
		t.Fatalf("seed 0 produced low-entropy stream: %d distinct of 64", len(seen))
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d too far from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(64)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestExpMean(t *testing.T) {
	r := New(3)
	const rate = 2.0
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp(%f) mean = %f, want ~%f", rate, mean, 1/rate)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(4)
	for _, mean := range []float64{0.5, 3, 20, 200} {
		sum := 0.0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%f) mean = %f", mean, got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		if r.Poisson(100) < 0 {
			t.Fatal("negative Poisson sample")
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestNormMoments(t *testing.T) {
	r := New(6)
	sum, sumsq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.03 {
		t.Fatalf("Norm moments mean=%f var=%f", mean, variance)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(8)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestZipfZeroSkewUniform(t *testing.T) {
	r := New(9)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	want := float64(draws) / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d count %d not uniform", i, c)
		}
	}
}

func TestEmpiricalCDFBoundsAndMean(t *testing.T) {
	e := NewEmpiricalCDF([]float64{1, 2, 10}, []float64{0, 0.5, 1})
	r := New(10)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := e.Sample(r)
		if v < 1 || v > 10 {
			t.Fatalf("sample %f out of support", v)
		}
		sum += v
	}
	// Mean of the piecewise-linear CDF: 0.5*(1.5) + 0.5*(6) = 3.75.
	wantMean := e.Mean()
	if math.Abs(wantMean-3.75) > 1e-9 {
		t.Fatalf("Mean() = %f, want 3.75", wantMean)
	}
	if math.Abs(sum/n-wantMean) > 0.05 {
		t.Fatalf("sample mean %f, want ~%f", sum/n, wantMean)
	}
}

func TestEmpiricalCDFRejectsMalformed(t *testing.T) {
	cases := []struct {
		values, probs []float64
	}{
		{[]float64{1}, []float64{1}},
		{[]float64{1, 2}, []float64{0, 0.9}},
		{[]float64{2, 1}, []float64{0, 1}},
		{[]float64{1, 2}, []float64{0.5, 0.4}},
		{[]float64{1, 2, 3}, []float64{0, 1}},
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: malformed CDF did not panic", i)
				}
			}()
			NewEmpiricalCDF(c.values, c.probs)
		}()
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(11)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams overlapped %d times", same)
	}
}

func TestSplitNIntoMatchesSplitN(t *testing.T) {
	// SplitNInto must be derivation-identical to SplitN (and therefore to
	// n serial Split calls): a pooled simulator reseeding its per-node
	// streams in place must draw the exact sequences a fresh one would.
	a, b, c := New(12), New(12), New(12)
	byValue := a.SplitN(8)
	inPlace := make([]RNG, 8)
	b.SplitNInto(inPlace)
	for i := range byValue {
		serial := c.Split()
		for d := 0; d < 16; d++ {
			want := serial.Uint64()
			if got := byValue[i].Uint64(); got != want {
				t.Fatalf("SplitN stream %d draw %d = %d, Split gives %d", i, d, got, want)
			}
			if got := inPlace[i].Uint64(); got != want {
				t.Fatalf("SplitNInto stream %d draw %d = %d, Split gives %d", i, d, got, want)
			}
		}
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitN and SplitNInto left the parent stream in different states")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= r.Intn(4096)
	}
	_ = sink
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(21)
	p := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(p)
	seen := make([]bool, 8)
	for _, v := range p {
		if v < 0 || v >= 8 || seen[v] {
			t.Fatalf("shuffle broke permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNewZipfPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}
