package schedule

import (
	"fmt"
	"math"

	"repro/internal/matching"
)

// RoundRobin1D returns the flat round-robin schedule used by Sirius-like
// 1D optimal ORNs (paper Figure 1): period N−1, every ordered pair
// connected exactly once per period.
func RoundRobin1D(n int) *matching.Schedule {
	return matching.RoundRobin(n)
}

// OptimalORN builds the h-dimensional optimal ORN schedule of Amir et
// al. [4]: nodes are h-digit numbers in base a (N = a^h); the schedule
// interleaves dimensions round-robin, and within each dimension cycles
// through the a−1 digit increments. Period = h·(a−1). Traffic is routed
// on up to 2h hops (h spraying + h direct), trading throughput 1/(2h)
// for latency O(h·N^(1/h)).
type OptimalORN struct {
	N, H, Base int
	Schedule   *matching.Schedule
}

// BuildOptimalORN constructs the schedule. n must be a perfect h-th power.
func BuildOptimalORN(n, h int) (*OptimalORN, error) {
	if h < 1 {
		return nil, fmt.Errorf("schedule: ORN dimension must be >= 1, got %d", h)
	}
	a, err := intRoot(n, h)
	if err != nil {
		return nil, err
	}
	if a < 2 {
		return nil, fmt.Errorf("schedule: ORN base %d too small (n=%d, h=%d)", a, n, h)
	}
	s := &matching.Schedule{N: n}
	// Interleave dimensions: slot t works dimension t mod h with digit
	// increment 1 + (t/h) mod (a-1).
	period := h * (a - 1)
	for t := 0; t < period; t++ {
		dim := t % h
		inc := 1 + (t/h)%(a-1)
		m := make(matching.Matching, n)
		stride := pow(a, dim)
		for node := 0; node < n; node++ {
			digit := (node / stride) % a
			m[node] = node - digit*stride + ((digit+inc)%a)*stride
		}
		s.Slots = append(s.Slots, m)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("schedule: built invalid ORN schedule: %w", err)
	}
	return &OptimalORN{N: n, H: h, Base: a, Schedule: s}, nil
}

// Digits decomposes a node id into its h base-a digits (least significant
// first); the routing scheme corrects one digit per direct hop.
func (o *OptimalORN) Digits(node int) []int {
	d := make([]int, o.H)
	for i := 0; i < o.H; i++ {
		d[i] = node % o.Base
		node /= o.Base
	}
	return d
}

func intRoot(n, h int) (int, error) {
	if n < 2 {
		return 0, fmt.Errorf("schedule: ORN needs n >= 2, got %d", n)
	}
	a := int(math.Round(math.Pow(float64(n), 1/float64(h))))
	for _, cand := range []int{a - 1, a, a + 1} {
		if cand >= 1 && pow(cand, h) == n {
			return cand, nil
		}
	}
	return 0, fmt.Errorf("schedule: n=%d is not a perfect %d-th power", n, h)
}

func pow(a, h int) int {
	p := 1
	for i := 0; i < h; i++ {
		p *= a
	}
	return p
}

// TopologyA returns the paper's Figure 2(d) example: 8 nodes, two cliques
// of four, oversubscription q = 3 (intra-clique bandwidth thrice the
// inter-clique bandwidth), realized in a 4-slot schedule.
func TopologyA() *SORN {
	s, err := BuildSORN(SORNConfig{N: 8, Nc: 2, Q: 3})
	if err != nil {
		panic("schedule: TopologyA construction failed: " + err.Error())
	}
	return s
}

// TopologyB returns the paper's Figure 2(e) example: 8 nodes, four cliques
// of two. We render it with q = 1 (the paper does not fix q for this
// figure), giving a 6-slot schedule.
func TopologyB() *SORN {
	s, err := BuildSORN(SORNConfig{N: 8, Nc: 4, Q: 1})
	if err != nil {
		panic("schedule: TopologyB construction failed: " + err.Error())
	}
	return s
}

// OperaLike models Opera's [18] rotation abstraction at the granularity
// this reproduction needs: each node has one active circuit per slot, the
// active matching advances only every epochLen slots, and the sequence of
// matchings cycles the full round robin. At any instant the union of the
// matchings held across an epoch window of u consecutive epochs forms the
// u-regular expander Opera routes bulk traffic over.
type OperaLike struct {
	N        int
	EpochLen int
	Schedule *matching.Schedule
}

// BuildOperaLike constructs the rotation schedule: period (n−1)·epochLen.
func BuildOperaLike(n, epochLen int) (*OperaLike, error) {
	if epochLen < 1 {
		return nil, fmt.Errorf("schedule: Opera epoch length must be >= 1, got %d", epochLen)
	}
	if n < 2 {
		return nil, fmt.Errorf("schedule: Opera needs n >= 2, got %d", n)
	}
	s := &matching.Schedule{N: n}
	for k := 1; k < n; k++ {
		m := matching.CyclicShift(n, k)
		for e := 0; e < epochLen; e++ {
			s.Slots = append(s.Slots, m)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &OperaLike{N: n, EpochLen: epochLen, Schedule: s}, nil
}
