// Package schedule builds the circuit schedules the paper evaluates: the
// flat 1D round-robin of Sirius-like ORNs, h-dimensional optimal ORN
// schedules, and the semi-oblivious hierarchical (clique) schedules of
// SORN with a configurable oversubscription ratio q (paper §4).
package schedule

import "fmt"

// Cliques is a partition of N nodes into groups ("cliques" in the paper's
// terminology: groups with uniform internal connectivity and stable
// aggregate demand across groups).
type Cliques struct {
	n       int
	assign  []int   // assign[node] = clique id
	members [][]int // members[clique] = node list, in id order
	local   []int   // local[node] = index of node within its clique
}

// EqualCliques partitions nodes 0..n-1 into nc contiguous cliques of equal
// size. n must be divisible by nc.
func EqualCliques(n, nc int) (*Cliques, error) {
	if n <= 0 || nc <= 0 || n%nc != 0 {
		return nil, fmt.Errorf("schedule: cannot split %d nodes into %d equal cliques", n, nc)
	}
	assign := make([]int, n)
	k := n / nc
	for i := range assign {
		assign[i] = i / k
	}
	return NewCliques(assign)
}

// NewCliques builds a partition from an explicit assignment of clique ids
// (0-based, contiguous). Used by the control plane when re-clustering.
func NewCliques(assign []int) (*Cliques, error) {
	n := len(assign)
	if n == 0 {
		return nil, fmt.Errorf("schedule: empty clique assignment")
	}
	max := -1
	for node, c := range assign {
		if c < 0 {
			return nil, fmt.Errorf("schedule: node %d has negative clique %d", node, c)
		}
		if c > max {
			max = c
		}
	}
	members := make([][]int, max+1)
	local := make([]int, n)
	for node, c := range assign {
		local[node] = len(members[c])
		members[c] = append(members[c], node)
	}
	for c, m := range members {
		if len(m) == 0 {
			return nil, fmt.Errorf("schedule: clique %d is empty", c)
		}
	}
	cp := make([]int, n)
	copy(cp, assign)
	return &Cliques{n: n, assign: cp, members: members, local: local}, nil
}

// N returns the number of nodes.
func (c *Cliques) N() int { return c.n }

// NumCliques returns the number of cliques.
func (c *Cliques) NumCliques() int { return len(c.members) }

// CliqueOf returns the clique id of a node.
func (c *Cliques) CliqueOf(node int) int { return c.assign[node] }

// LocalIndex returns the node's index within its clique.
func (c *Cliques) LocalIndex(node int) int { return c.local[node] }

// Members returns the nodes of one clique (shared slice; do not mutate).
func (c *Cliques) Members(clique int) []int { return c.members[clique] }

// Size returns the number of nodes in a clique.
func (c *Cliques) Size(clique int) int { return len(c.members[clique]) }

// SameClique reports whether u and v are in the same clique.
func (c *Cliques) SameClique(u, v int) bool { return c.assign[u] == c.assign[v] }

// Uniform reports whether all cliques have the same size, and that size.
func (c *Cliques) Uniform() (int, bool) {
	k := len(c.members[0])
	for _, m := range c.members[1:] {
		if len(m) != k {
			return 0, false
		}
	}
	return k, true
}
