package schedule

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bvn"
	"repro/internal/matching"
)

// DemandAwareConfig builds a SORN schedule whose inter-clique bandwidth
// follows an aggregated clique-level demand matrix instead of being
// uniform — the paper's §5 "Expressivity": "we may encode gravity
// models, non-uniform clique sizes, or generally allow higher
// provisioning between certain spatial groups."
//
// The inter-clique allocation is made doubly stochastic with Sinkhorn
// scaling (after mixing in a uniform floor so every clique pair keeps
// some bandwidth and stays routable), decomposed into clique-level
// derangements by Birkhoff–von Neumann, and each derangement becomes a
// family of slots in which every node connects to its same-local-index
// peer in the mapped clique.
type DemandAwareConfig struct {
	N  int
	Nc int
	Q  float64 // intra : inter bandwidth ratio, as in SORNConfig

	// Demand is the Nc×Nc aggregated inter-clique demand (diagonal
	// ignored; only relative off-diagonal magnitudes matter).
	Demand [][]float64

	// Floor mixes a uniform allocation into the demand (0..1) so that
	// no clique pair is starved and routing stays total. Default 0.1.
	Floor float64

	// InterSlots is the total number of inter-clique slots per period
	// used to quantize the decomposition weights. Default 4·(Nc−1).
	InterSlots int
}

// BuildSORNDemandAware constructs the schedule. The result is a *SORN
// usable with routing.NewSORN: every clique pair retains at least one
// circuit family (thanks to the floor), landing stays the
// same-local-index peer, and the intra-clique structure is identical to
// the uniform builder's.
func BuildSORNDemandAware(cfg DemandAwareConfig) (*SORN, error) {
	if cfg.Nc < 2 {
		return nil, fmt.Errorf("schedule: demand-aware SORN needs >= 2 cliques, got %d", cfg.Nc)
	}
	cl, err := EqualCliques(cfg.N, cfg.Nc)
	if err != nil {
		return nil, err
	}
	k := cfg.N / cfg.Nc
	if k < 2 {
		return nil, fmt.Errorf("schedule: demand-aware SORN needs cliques of >= 2 nodes")
	}
	if cfg.Q <= 0 {
		return nil, fmt.Errorf("schedule: oversubscription q must be positive, got %f", cfg.Q)
	}
	if len(cfg.Demand) != cfg.Nc {
		return nil, fmt.Errorf("schedule: demand matrix is %d x ?, want %d", len(cfg.Demand), cfg.Nc)
	}
	floor := cfg.Floor
	//sornlint:ignore floateq -- zero value means "unset", replaced by the default
	if floor == 0 {
		floor = 0.1
	}
	if floor < 0 || floor > 1 {
		return nil, fmt.Errorf("schedule: floor %f outside [0,1]", floor)
	}
	interSlots := cfg.InterSlots
	if interSlots == 0 {
		interSlots = 4 * (cfg.Nc - 1)
	}
	if interSlots < cfg.Nc-1 {
		return nil, fmt.Errorf("schedule: %d inter slots cannot cover %d clique offsets", interSlots, cfg.Nc-1)
	}

	// Mix the demand with a uniform floor and normalize per row before
	// Sinkhorn (which then equalizes columns too).
	mixed := make([][]float64, cfg.Nc)
	for a := range mixed {
		if len(cfg.Demand[a]) != cfg.Nc {
			return nil, fmt.Errorf("schedule: demand row %d has %d entries, want %d", a, len(cfg.Demand[a]), cfg.Nc)
		}
		mixed[a] = make([]float64, cfg.Nc)
		rowSum := 0.0
		for b, v := range cfg.Demand[a] {
			if a == b {
				continue
			}
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("schedule: demand[%d][%d] = %f invalid", a, b, v)
			}
			rowSum += v
		}
		for b := range mixed[a] {
			if a == b {
				continue
			}
			uniform := 1 / float64(cfg.Nc-1)
			demandShare := uniform
			if rowSum > 0 {
				demandShare = cfg.Demand[a][b] / rowSum
			}
			mixed[a][b] = (1-floor)*demandShare + floor*uniform
		}
	}
	ds, err := bvn.Sinkhorn(mixed, 5000, 1e-10)
	if err != nil {
		return nil, fmt.Errorf("schedule: demand scaling failed: %w", err)
	}
	terms, err := bvn.Decompose(ds, 0, 1e-8)
	if err != nil {
		return nil, fmt.Errorf("schedule: demand decomposition failed: %w", err)
	}

	// Quantize term weights to slot counts (largest remainder, keeping
	// every term at least one slot so its clique pairs stay connected).
	slots := quantize(terms, interSlots)

	// Intra slots: keep the intra:inter ratio at q. Total inter slots =
	// sum(slots); intra slots per shift = wIntra such that
	// (k−1)·wIntra : interTotal ≈ q : 1.
	interTotal := 0
	for _, s := range slots {
		interTotal += s
	}
	wIntra := int(math.Round(cfg.Q * float64(interTotal) / float64(k-1)))
	if wIntra < 1 {
		wIntra = 1
	}

	// Streams: k−1 intra shifts + one per BvN term.
	var weights []int
	type stream struct {
		intra bool
		shift int // intra local shift
		term  int // index into terms
	}
	var streams []stream
	for j := 1; j < k; j++ {
		streams = append(streams, stream{intra: true, shift: j})
		weights = append(weights, wIntra)
	}
	for ti := range terms {
		if slots[ti] == 0 {
			continue
		}
		streams = append(streams, stream{term: ti})
		weights = append(weights, slots[ti])
	}

	order := interleave(weights)
	sched := &matching.Schedule{N: cfg.N}
	for _, si := range order {
		st := streams[si]
		if st.intra {
			sched.Slots = append(sched.Slots, intraMatching(cl, st.shift))
		} else {
			sched.Slots = append(sched.Slots, cliquePermMatching(cl, terms[st.term].Perm))
		}
	}
	if err := sched.Validate(); err != nil {
		return nil, fmt.Errorf("schedule: demand-aware schedule invalid: %w", err)
	}
	realQ := float64(wIntra*(k-1)) / float64(interTotal)
	return &SORN{
		Config:    SORNConfig{N: cfg.N, Nc: cfg.Nc, Q: cfg.Q},
		Cliques:   cl,
		Schedule:  sched,
		RealizedQ: realQ,
		WIntra:    wIntra,
		WInter:    0, // non-uniform; see the schedule itself
	}, nil
}

// cliquePermMatching lowers a clique-level derangement to a node-level
// matching: every node connects to the same-local-index node of the
// clique its own clique maps to.
func cliquePermMatching(cl *Cliques, perm []int) matching.Matching {
	m := make(matching.Matching, cl.N())
	for node := 0; node < cl.N(); node++ {
		target := cl.Members(perm[cl.CliqueOf(node)])
		m[node] = target[cl.LocalIndex(node)%len(target)]
	}
	return m
}

// quantize allocates total slots to terms proportionally to weight by
// largest remainder, guaranteeing >= 1 slot per term (raising the total
// if there are more terms than slots).
func quantize(terms []bvn.Term, total int) []int {
	n := len(terms)
	if total < n {
		total = n
	}
	out := make([]int, n)
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, 0, n)
	used := 0
	for i, t := range terms {
		exact := t.Weight * float64(total)
		out[i] = int(exact)
		if out[i] < 1 {
			out[i] = 1
		}
		used += out[i]
		rems = append(rems, rem{idx: i, frac: exact - math.Floor(exact)})
	}
	sort.Slice(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for i := 0; used < total && i < len(rems); i++ {
		out[rems[i].idx]++
		used++
	}
	return out
}
