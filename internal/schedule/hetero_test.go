package schedule

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestHeteroCliques(t *testing.T) {
	cl, err := HeteroCliques([]int{4, 2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if cl.N() != 12 || cl.NumCliques() != 3 {
		t.Fatalf("n=%d nc=%d", cl.N(), cl.NumCliques())
	}
	if cl.Size(0) != 4 || cl.Size(1) != 2 || cl.Size(2) != 6 {
		t.Fatal("sizes wrong")
	}
	if MaxCliqueSize(cl) != 6 {
		t.Fatal("max size wrong")
	}
	if _, ok := cl.Uniform(); ok {
		t.Fatal("unequal partition reported uniform")
	}
	if _, err := HeteroCliques(nil); err == nil {
		t.Error("empty sizes accepted")
	}
	if _, err := HeteroCliques([]int{4, 0}); err == nil {
		t.Error("zero size accepted")
	}
}

func TestBuildHeteroValid(t *testing.T) {
	// Physical cliques of 16, 8, 8 → virtual cliques of 8.
	h, err := BuildHetero([]int{16, 8, 8}, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Built.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Virtual.NumCliques() != 4 {
		t.Fatalf("virtual cliques = %d, want 4", h.Virtual.NumCliques())
	}
	if len(h.VirtualOf[0]) != 2 || len(h.VirtualOf[1]) != 1 {
		t.Fatalf("virtual mapping wrong: %v", h.VirtualOf)
	}
}

func TestBuildHeteroBoostsInternalBandwidth(t *testing.T) {
	// Node 0 is in the big physical clique (nodes 0..15, two virtual
	// cliques). Its bandwidth toward the sibling virtual clique (8..15)
	// must exceed its bandwidth toward a foreign one (16..23).
	h, err := BuildHetero([]int{16, 8, 8}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	sibling, foreign := 0.0, 0.0
	for v := 8; v < 16; v++ {
		sibling += h.Built.Schedule.LinkFraction(0, v)
	}
	for v := 16; v < 24; v++ {
		foreign += h.Built.Schedule.LinkFraction(0, v)
	}
	if sibling <= 1.5*foreign {
		t.Fatalf("sibling virtual clique got %f vs foreign %f; boost not encoded", sibling, foreign)
	}
}

func TestBuildHeteroErrors(t *testing.T) {
	if _, err := BuildHetero([]int{8}, 2, 2); err == nil {
		t.Error("single clique accepted")
	}
	if _, err := BuildHetero([]int{4, 3}, 2, 2); err == nil {
		t.Error("gcd=1 accepted")
	}
	if _, err := BuildHetero([]int{8, 4}, 2, 0.5); err == nil {
		t.Error("boost < 1 accepted")
	}
	if _, err := BuildHetero([]int{8, 0}, 2, 2); err == nil {
		t.Error("zero size accepted")
	}
}

func TestBuildHeteroProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		g := 2 + r.Intn(3)
		nphys := 2 + r.Intn(3)
		sizes := make([]int, nphys)
		for i := range sizes {
			sizes[i] = g * (1 + r.Intn(3))
		}
		h, err := BuildHetero(sizes, 1+3*r.Float64(), 1+3*r.Float64())
		if err != nil {
			// Reductions with a single virtual clique are invalid; that
			// only happens when all sizes collapse, which they cannot
			// here (nphys >= 2). Any other error is a failure.
			return false
		}
		return h.Built.Schedule.Validate() == nil
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
