package schedule

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/matching"
)

// SORNConfig describes a semi-oblivious hierarchical schedule (paper §4):
// nodes partitioned into equal cliques, intra-clique circuits receiving a
// q/(q+1) share of each node's time slots, and inter-clique circuits the
// remaining 1/(q+1).
type SORNConfig struct {
	N  int     // number of nodes
	Nc int     // number of cliques (equal sized; N % Nc == 0)
	Q  float64 // oversubscription ratio, q >= 1 in the paper's regime

	// MaxWeight bounds the integer circuit weights used to realize Q, and
	// with it the schedule period. 0 means the default (32).
	MaxWeight int
}

// SORN is a built semi-oblivious schedule plus the structure the router
// and control plane need.
type SORN struct {
	Config    SORNConfig
	Cliques   *Cliques
	Schedule  *matching.Schedule
	RealizedQ float64 // SI/SX actually achieved by integer weights

	// WIntra is the number of slots per period each specific intra-clique
	// circuit gets; WInter is slots per period per destination clique.
	WIntra, WInter int
}

// BuildSORN constructs the hierarchical circuit schedule. The schedule
// period is (k-1)·wIntra + (Nc-1)·wInter slots, with k = N/Nc, and the
// integer weights chosen so wIntra·(k-1) : wInter·(Nc-1) ≈ q : 1, i.e.
// intra-clique links get a q/(q+1) share of node bandwidth.
//
// Each intra slot realizes a local cyclic shift within every clique; each
// inter slot with clique offset c connects every node to its same-local-
// index peer in clique (own+c) mod Nc. The landing index is fixed (not
// rotated) so each node keeps a *fixed superset of neighbors* across q
// rebalances — the property that makes SORN schedule updates drain-free
// (paper §5). Inter-clique load still spreads over all k hosts of the
// destination clique because the load-balancing first hop randomizes the
// sender's local index. Slots are interleaved by stride scheduling so each
// circuit's occurrences are nearly evenly spaced, keeping intrinsic
// latency close to the paper's formulas.
func BuildSORN(cfg SORNConfig) (*SORN, error) {
	if cfg.Nc < 1 {
		return nil, fmt.Errorf("schedule: SORN needs at least 1 clique, got %d", cfg.Nc)
	}
	cl, err := EqualCliques(cfg.N, cfg.Nc)
	if err != nil {
		return nil, err
	}
	k := cfg.N / cfg.Nc
	if k < 2 && cfg.Nc < 2 {
		return nil, fmt.Errorf("schedule: SORN over %d nodes is degenerate", cfg.N)
	}
	maxW := cfg.MaxWeight
	if maxW == 0 {
		maxW = 32
	}

	var wIntra, wInter int
	switch {
	case cfg.Nc == 1:
		// Flat network: pure round robin inside the single clique.
		wIntra, wInter = 1, 0
	case k == 1:
		// Cliques of one node: everything is inter-clique.
		wIntra, wInter = 0, 1
	default:
		if cfg.Q <= 0 {
			return nil, fmt.Errorf("schedule: SORN oversubscription q must be positive, got %f", cfg.Q)
		}
		// wIntra/wInter ≈ q·(Nc-1)/(k-1)
		wIntra, wInter = approxRatio(cfg.Q*float64(cfg.Nc-1)/float64(k-1), maxW)
	}

	// Streams: one per intra shift (weight wIntra each), one per clique
	// offset (weight wInter each).
	type stream struct {
		intra bool
		shift int // local shift (intra) or clique offset (inter)
	}
	var streams []stream
	var weights []int
	for j := 1; j < k; j++ {
		if wIntra > 0 {
			streams = append(streams, stream{intra: true, shift: j})
			weights = append(weights, wIntra)
		}
	}
	for c := 1; c < cfg.Nc; c++ {
		if wInter > 0 {
			streams = append(streams, stream{intra: false, shift: c})
			weights = append(weights, wInter)
		}
	}
	if len(streams) == 0 {
		return nil, fmt.Errorf("schedule: SORN config yields an empty schedule")
	}

	order := interleave(weights)
	sched := &matching.Schedule{N: cfg.N}
	for _, si := range order {
		st := streams[si]
		var m matching.Matching
		if st.intra {
			m = intraMatching(cl, st.shift)
		} else {
			m = interMatching(cl, st.shift, 0)
		}
		sched.Slots = append(sched.Slots, m)
	}
	if err := sched.Validate(); err != nil {
		return nil, fmt.Errorf("schedule: built invalid SORN schedule: %w", err)
	}

	realQ := math.Inf(1)
	if wInter > 0 && cfg.Nc > 1 {
		if wIntra == 0 || k == 1 {
			realQ = 0
		} else {
			realQ = float64(wIntra*(k-1)) / float64(wInter*(cfg.Nc-1))
		}
	}
	return &SORN{
		Config:    cfg,
		Cliques:   cl,
		Schedule:  sched,
		RealizedQ: realQ,
		WIntra:    wIntra,
		WInter:    wInter,
	}, nil
}

// OptimalQ returns the oversubscription ratio q* = 2/(1-x) that equalizes
// intra- and inter-clique link utilization for intra-clique traffic
// fraction x, and the resulting worst-case throughput r = 1/(3-x)
// (paper §4, "Throughput").
func OptimalQ(x float64) (q, r float64) {
	if x < 0 || x > 1 {
		panic(fmt.Sprintf("schedule: locality fraction %f outside [0,1]", x))
	}
	//sornlint:ignore floateq -- x = 1 exactly is the documented divergence point
	if x == 1 {
		return math.Inf(1), 0.5
	}
	return 2 / (1 - x), 1 / (3 - x)
}

// intraMatching connects each node to the node shift positions ahead
// within its own clique (cliques must be uniform in size).
func intraMatching(cl *Cliques, shift int) matching.Matching {
	m := make(matching.Matching, cl.N())
	for node := 0; node < cl.N(); node++ {
		c := cl.CliqueOf(node)
		mem := cl.Members(c)
		m[node] = mem[(cl.LocalIndex(node)+shift)%len(mem)]
	}
	return m
}

// interMatching connects each node to the node with local index
// (own local + localShift) mod k in clique (own clique + offset) mod Nc.
func interMatching(cl *Cliques, offset, localShift int) matching.Matching {
	m := make(matching.Matching, cl.N())
	nc := cl.NumCliques()
	for node := 0; node < cl.N(); node++ {
		c := (cl.CliqueOf(node) + offset) % nc
		mem := cl.Members(c)
		m[node] = mem[(cl.LocalIndex(node)+localShift)%len(mem)]
	}
	return m
}

// approxRatio returns small positive integers (num, den) with num/den close
// to target and both ≤ maxW, by scanning denominators (target is O(1000)
// and maxW ≤ 64, so brute force is exact and instant).
func approxRatio(target float64, maxW int) (num, den int) {
	if target <= 0 {
		return 1, maxW
	}
	bestErr := math.Inf(1)
	num, den = 1, 1
	for d := 1; d <= maxW; d++ {
		n := int(math.Round(target * float64(d)))
		if n < 1 {
			n = 1
		}
		if n > maxW {
			continue
		}
		err := math.Abs(float64(n)/float64(d) - target)
		if err < bestErr-1e-12 {
			bestErr = err
			num, den = n, d
		}
	}
	if math.IsInf(bestErr, 1) {
		// target > maxW for every denominator; saturate.
		return maxW, 1
	}
	return num, den
}

// interleave produces a slot order over streams with the given integer
// weights, of length sum(weights), where stream i appears weights[i] times
// at nearly even spacing (stride scheduling). The result is deterministic.
func interleave(weights []int) []int {
	total := 0
	for _, w := range weights {
		total += w
	}
	type ev struct {
		pos    float64
		stream int
		occ    int
	}
	evs := make([]ev, 0, total)
	for i, w := range weights {
		for m := 0; m < w; m++ {
			// Phase offset (i+1)/(len+1) staggers streams of equal weight
			// so their occurrences do not collide at identical positions.
			pos := (float64(m) + float64(i+1)/float64(len(weights)+1)) / float64(w)
			evs = append(evs, ev{pos: pos, stream: i, occ: m})
		}
	}
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].pos < evs[b].pos })
	out := make([]int, len(evs))
	for i, e := range evs {
		out[i] = e.stream
	}
	return out
}
