package schedule

import (
	"fmt"
)

// Hetero supports the §5 "non-uniform clique sizes" point by reduction:
// a deployment with unequal physical cliques is expressed over equal
// *virtual* cliques of size g = gcd(sizes), with the demand-aware (BvN)
// builder concentrating inter-virtual-clique bandwidth between virtual
// cliques that belong to the same physical clique. A matching slot must
// be a permutation, so cliques of unequal size cannot exchange full
// bijections directly — but block-dense virtual demand encodes the same
// macro-structure with valid matchings.
type Hetero struct {
	// Physical is the requested partition (unequal sizes allowed).
	Physical *Cliques
	// Virtual is the equal partition the schedule is actually built on.
	Virtual *Cliques
	// Built is the demand-aware schedule; route it with
	// routing.NewSORN(Built).
	Built *SORN
	// VirtualOf maps each physical clique to its virtual clique ids.
	VirtualOf [][]int
}

// BuildHetero constructs the reduction. sizes are the physical clique
// sizes (each ≥ 2·gcd is not required, but each must be a multiple of
// the gcd and the gcd must be ≥ 2 so virtual cliques have ≥ 2 nodes).
// q is the physical intra : inter bandwidth ratio; internalBoost is how
// much denser same-physical-clique virtual pairs are than cross-physical
// pairs (≥ 1; e.g. q works well).
func BuildHetero(sizes []int, q, internalBoost float64) (*Hetero, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("schedule: hetero needs >= 2 physical cliques")
	}
	if internalBoost < 1 {
		return nil, fmt.Errorf("schedule: internal boost %f must be >= 1", internalBoost)
	}
	g := sizes[0]
	for _, k := range sizes[1:] {
		g = gcdInt(g, k)
	}
	if g < 2 {
		return nil, fmt.Errorf("schedule: gcd of clique sizes is %d; virtual cliques need >= 2 nodes", g)
	}
	phys, err := HeteroCliques(sizes)
	if err != nil {
		return nil, err
	}
	n := phys.N()
	nvc := n / g
	virtAssign := make([]int, n)
	for i := range virtAssign {
		virtAssign[i] = i / g
	}
	virt, err := NewCliques(virtAssign)
	if err != nil {
		return nil, err
	}

	// Map physical cliques to their virtual cliques (contiguous).
	virtualOf := make([][]int, len(sizes))
	physOfVirt := make([]int, nvc)
	vc := 0
	for c, k := range sizes {
		for i := 0; i < k/g; i++ {
			virtualOf[c] = append(virtualOf[c], vc)
			physOfVirt[vc] = c
			vc++
		}
	}

	// Virtual-clique demand: boosted within a physical clique.
	demand := make([][]float64, nvc)
	for a := range demand {
		demand[a] = make([]float64, nvc)
		for b := range demand[a] {
			if a == b {
				continue
			}
			demand[a][b] = 1
			if physOfVirt[a] == physOfVirt[b] {
				demand[a][b] = internalBoost
			}
		}
	}
	built, err := BuildSORNDemandAware(DemandAwareConfig{
		N: n, Nc: nvc, Q: q, Demand: demand, Floor: 0.1,
	})
	if err != nil {
		return nil, err
	}
	return &Hetero{Physical: phys, Virtual: virt, Built: built, VirtualOf: virtualOf}, nil
}

// HeteroCliques builds a partition from explicit clique sizes.
func HeteroCliques(sizes []int) (*Cliques, error) {
	total := 0
	for _, k := range sizes {
		if k < 1 {
			return nil, fmt.Errorf("schedule: clique size %d invalid", k)
		}
		total += k
	}
	if total == 0 {
		return nil, fmt.Errorf("schedule: no cliques given")
	}
	assign := make([]int, 0, total)
	for c, k := range sizes {
		for i := 0; i < k; i++ {
			assign = append(assign, c)
		}
	}
	return NewCliques(assign)
}

// MaxCliqueSize returns the largest clique's size.
func MaxCliqueSize(cl *Cliques) int {
	max := 0
	for c := 0; c < cl.NumCliques(); c++ {
		if k := cl.Size(c); k > max {
			max = k
		}
	}
	return max
}

func gcdInt(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
