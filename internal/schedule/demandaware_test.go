package schedule

import (
	"math"
	"testing"

	"repro/internal/matching"
)

func hotDemand(nc int, hot float64) [][]float64 {
	d := make([][]float64, nc)
	for a := range d {
		d[a] = make([]float64, nc)
		for b := range d[a] {
			if a == b {
				continue
			}
			d[a][b] = 1
			if b == 0 {
				d[a][b] = hot
			}
		}
	}
	return d
}

func TestBuildSORNDemandAwareValid(t *testing.T) {
	s, err := BuildSORNDemandAware(DemandAwareConfig{
		N: 64, Nc: 8, Q: 2, Demand: hotDemand(8, 6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	// Realized q within 30% of requested (slot quantization).
	if math.Abs(s.RealizedQ-2)/2 > 0.3 {
		t.Fatalf("realized q = %f", s.RealizedQ)
	}
}

// pairDemand returns a demand where clique 2a and 2a+1 are partners
// exchanging `hot` units while all other pairs exchange 1.
func pairDemand(nc int, hot float64) [][]float64 {
	d := hotDemand(nc, 1)
	for a := 0; a+1 < nc; a += 2 {
		d[a][a+1], d[a+1][a] = hot, hot
	}
	return d
}

func TestDemandAwareSkewsBandwidthForPairs(t *testing.T) {
	// Balanced pairwise skew (partner cliques) is expressible; a hot
	// *receiver* is not, because every schedule's bandwidth matrix is
	// doubly stochastic (one circuit per node per slot).
	s, err := BuildSORNDemandAware(DemandAwareConfig{
		N: 64, Nc: 8, Q: 2, Demand: pairDemand(8, 8), Floor: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 (clique 0): bandwidth toward partner clique 1 must far
	// exceed bandwidth toward clique 2.
	toPartner, toCold := 0.0, 0.0
	for _, v := range s.Cliques.Members(1) {
		toPartner += s.Schedule.LinkFraction(0, v)
	}
	for _, v := range s.Cliques.Members(2) {
		toCold += s.Schedule.LinkFraction(0, v)
	}
	if toPartner < 2*toCold {
		t.Fatalf("partner clique got %f vs cold %f; skew not encoded", toPartner, toCold)
	}
	if toCold == 0 {
		t.Fatal("floor failed: cold clique fully starved")
	}
}

func TestDemandAwareHotReceiverIsFlattened(t *testing.T) {
	// A hot destination clique cannot receive more than its ports allow:
	// Sinkhorn flattens a symmetric hot-column demand back to uniform.
	// (§5: gravity models need port/bandwidth heterogeneity.)
	s, err := BuildSORNDemandAware(DemandAwareConfig{
		N: 64, Nc: 8, Q: 2, Demand: hotDemand(8, 6), Floor: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	toHot, toCold := 0.0, 0.0
	for _, v := range s.Cliques.Members(0) {
		toHot += s.Schedule.LinkFraction(8, v)
	}
	for _, v := range s.Cliques.Members(2) {
		toCold += s.Schedule.LinkFraction(8, v)
	}
	if toHot > 1.5*toCold {
		t.Fatalf("hot receiver was upweighted (%f vs %f) despite port limits", toHot, toCold)
	}
}

func TestDemandAwareKeepsAllPairsRoutable(t *testing.T) {
	s, err := BuildSORNDemandAware(DemandAwareConfig{
		N: 32, Nc: 4, Q: 3, Demand: hotDemand(4, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	c := matching.Compile(s.Schedule)
	// Every node must reach its same-local peer in every other clique
	// (the landing the SORN router uses), and all clique peers.
	for node := 0; node < 32; node++ {
		cl := s.Cliques
		for _, peer := range cl.Members(cl.CliqueOf(node)) {
			if peer != node && !c.HasCircuit(node, peer) {
				t.Fatalf("missing intra circuit %d->%d", node, peer)
			}
		}
		for target := 0; target < 4; target++ {
			if target == cl.CliqueOf(node) {
				continue
			}
			y := cl.Members(target)[cl.LocalIndex(node)]
			if !c.HasCircuit(node, y) {
				t.Fatalf("missing landing circuit %d->%d (clique %d)", node, y, target)
			}
		}
	}
}

func TestDemandAwareUniformDemandMatchesUniformBuilder(t *testing.T) {
	// With a uniform demand matrix, the demand-aware builder should give
	// every clique offset equal bandwidth, like BuildSORN.
	s, err := BuildSORNDemandAware(DemandAwareConfig{
		N: 32, Nc: 4, Q: 2, Demand: hotDemand(4, 1), Floor: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	fracs := make([]float64, 4)
	for target := 0; target < 4; target++ {
		for _, v := range s.Cliques.Members(target) {
			fracs[target] += s.Schedule.LinkFraction(0, v)
		}
	}
	// Node 0 is in clique 0; targets 1..3 should be near-equal.
	for c := 2; c < 4; c++ {
		if math.Abs(fracs[c]-fracs[1]) > 0.25*fracs[1]+1e-9 {
			t.Fatalf("uniform demand produced skew: %v", fracs)
		}
	}
}

func TestBuildSORNDemandAwareErrors(t *testing.T) {
	good := hotDemand(4, 2)
	cases := []DemandAwareConfig{
		{N: 32, Nc: 1, Q: 1, Demand: hotDemand(1, 1)},
		{N: 4, Nc: 4, Q: 1, Demand: good},      // singleton cliques
		{N: 32, Nc: 4, Q: 0, Demand: good},     // bad q
		{N: 32, Nc: 4, Q: 1, Demand: good[:2]}, // wrong shape
		{N: 32, Nc: 4, Q: 1, Demand: good, Floor: 2},
		{N: 31, Nc: 4, Q: 1, Demand: good}, // indivisible
	}
	for i, c := range cases {
		if _, err := BuildSORNDemandAware(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	neg := hotDemand(4, 2)
	neg[0][1] = -1
	if _, err := BuildSORNDemandAware(DemandAwareConfig{N: 32, Nc: 4, Q: 1, Demand: neg}); err == nil {
		t.Error("negative demand accepted")
	}
}
