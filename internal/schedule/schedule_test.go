package schedule

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/matching"
	"repro/internal/rng"
)

func TestEqualCliques(t *testing.T) {
	cl, err := EqualCliques(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cl.N() != 8 || cl.NumCliques() != 2 {
		t.Fatalf("N=%d nc=%d", cl.N(), cl.NumCliques())
	}
	if cl.CliqueOf(3) != 0 || cl.CliqueOf(4) != 1 {
		t.Fatal("contiguous assignment wrong")
	}
	if !cl.SameClique(0, 3) || cl.SameClique(3, 4) {
		t.Fatal("SameClique wrong")
	}
	if cl.LocalIndex(5) != 1 {
		t.Fatalf("local index of 5 = %d", cl.LocalIndex(5))
	}
	if k, ok := cl.Uniform(); !ok || k != 4 {
		t.Fatalf("Uniform = %d,%v", k, ok)
	}
}

func TestEqualCliquesErrors(t *testing.T) {
	for _, c := range []struct{ n, nc int }{{7, 2}, {0, 1}, {8, 0}, {8, -1}} {
		if _, err := EqualCliques(c.n, c.nc); err == nil {
			t.Errorf("EqualCliques(%d,%d) accepted", c.n, c.nc)
		}
	}
}

func TestNewCliquesErrors(t *testing.T) {
	if _, err := NewCliques(nil); err == nil {
		t.Error("empty assignment accepted")
	}
	if _, err := NewCliques([]int{0, -1}); err == nil {
		t.Error("negative clique accepted")
	}
	if _, err := NewCliques([]int{0, 2}); err == nil {
		t.Error("gap in clique ids accepted")
	}
}

func TestNewCliquesNonUniform(t *testing.T) {
	cl, err := NewCliques([]int{0, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cl.Uniform(); ok {
		t.Fatal("non-uniform partition reported uniform")
	}
	if cl.Size(0) != 3 || cl.Size(1) != 1 {
		t.Fatal("sizes wrong")
	}
}

func TestBuildSORNTopologyA(t *testing.T) {
	// Paper Figure 2(d): 8 nodes, 2 cliques of 4, q=3 -> 4-slot schedule,
	// intra-clique bandwidth 3x inter-clique.
	a := TopologyA()
	if a.Schedule.Period() != 4 {
		t.Fatalf("topology A period = %d, want 4", a.Schedule.Period())
	}
	if a.RealizedQ != 3 {
		t.Fatalf("topology A realized q = %f, want 3", a.RealizedQ)
	}
	// Node 0's intra circuits (to 1,2,3) each get 1/4 of slots; its one
	// inter slot reaches clique 1.
	intra := 0.0
	for _, v := range []int{1, 2, 3} {
		intra += a.Schedule.LinkFraction(0, v)
	}
	if math.Abs(intra-0.75) > 1e-9 {
		t.Fatalf("intra fraction = %f, want 0.75", intra)
	}
	inter := 0.0
	for v := 4; v < 8; v++ {
		inter += a.Schedule.LinkFraction(0, v)
	}
	if math.Abs(inter-0.25) > 1e-9 {
		t.Fatalf("inter fraction = %f, want 0.25", inter)
	}
}

func TestBuildSORNTopologyB(t *testing.T) {
	b := TopologyB()
	if b.Cliques.NumCliques() != 4 {
		t.Fatalf("topology B cliques = %d", b.Cliques.NumCliques())
	}
	if err := b.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	// q=1: intra and inter each get half the slots.
	intra := b.Schedule.LinkFraction(0, 1)
	if math.Abs(intra-0.5) > 1e-9 {
		t.Fatalf("intra fraction to clique partner = %f, want 0.5", intra)
	}
}

func TestBuildSORNFractions(t *testing.T) {
	cases := []struct {
		n, nc int
		q     float64
	}{
		{64, 8, 2}, {64, 8, 4.5454}, {128, 8, 3}, {32, 4, 1}, {16, 2, 2.5},
	}
	for _, c := range cases {
		s, err := BuildSORN(SORNConfig{N: c.n, Nc: c.nc, Q: c.q})
		if err != nil {
			t.Fatalf("BuildSORN(%+v): %v", c, err)
		}
		if err := s.Schedule.Validate(); err != nil {
			t.Fatalf("BuildSORN(%+v): invalid schedule: %v", c, err)
		}
		// Realized q within 10% of requested (integer weights).
		if math.Abs(s.RealizedQ-c.q)/c.q > 0.10 {
			t.Errorf("n=%d nc=%d q=%f realized %f", c.n, c.nc, c.q, s.RealizedQ)
		}
		// Intra-clique share of node 0's slots = q/(q+1) of the period.
		intra := 0.0
		for _, v := range s.Cliques.Members(0) {
			if v != 0 {
				intra += s.Schedule.LinkFraction(0, v)
			}
		}
		want := s.RealizedQ / (s.RealizedQ + 1)
		if math.Abs(intra-want) > 1e-9 {
			t.Errorf("n=%d nc=%d q=%f intra share %f want %f", c.n, c.nc, c.q, intra, want)
		}
	}
}

func TestSORNIntraWaitMatchesDeltaM(t *testing.T) {
	// The schedule's realized worst-case wait for an intra-clique circuit
	// should be close to the paper's (q+1)/q * (N/Nc - 1).
	s, err := BuildSORN(SORNConfig{N: 128, Nc: 8, Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := matching.Compile(s.Schedule)
	k := 128 / 8
	theory := (s.RealizedQ + 1) / s.RealizedQ * float64(k-1)
	for _, v := range []int{1, 5, 15} {
		w, ok := c.MaxWait(0, v)
		if !ok {
			t.Fatalf("no intra circuit 0->%d", v)
		}
		if float64(w) > theory*1.35+2 || float64(w) < theory*0.6 {
			t.Errorf("intra MaxWait(0,%d) = %d, theory %.1f", v, w, theory)
		}
	}
}

func TestSORNInterCliqueReachability(t *testing.T) {
	// Every node must have circuits to every other clique, and the wait
	// for *some* circuit into clique c should be ~ (q+1)(Nc-1).
	s, err := BuildSORN(SORNConfig{N: 64, Nc: 8, Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := matching.Compile(s.Schedule)
	period := s.Schedule.Period()
	for node := 0; node < 64; node += 7 {
		for target := 0; target < 8; target++ {
			if target == s.Cliques.CliqueOf(node) {
				continue
			}
			found := false
			for _, v := range s.Cliques.Members(target) {
				if c.HasCircuit(node, v) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("node %d has no circuit into clique %d (period %d)", node, target, period)
			}
		}
	}
}

func TestSORNSingleClique(t *testing.T) {
	s, err := BuildSORN(SORNConfig{N: 8, Nc: 1, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Schedule.FullCoverage() {
		t.Fatal("single-clique SORN should be a full round robin")
	}
	if s.Schedule.Period() != 7 {
		t.Fatalf("period = %d, want 7", s.Schedule.Period())
	}
	if !math.IsInf(s.RealizedQ, 1) {
		t.Fatalf("single clique q should be +Inf, got %f", s.RealizedQ)
	}
}

func TestSORNSingletonCliques(t *testing.T) {
	// k=1: all traffic is inter-clique; schedule is a clique-level round
	// robin, which for singleton cliques is a node-level round robin.
	s, err := BuildSORN(SORNConfig{N: 8, Nc: 8, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Schedule.Period() != 7 {
		t.Fatalf("period = %d, want 7", s.Schedule.Period())
	}
	if !s.Schedule.FullCoverage() {
		t.Fatal("singleton-clique SORN should cover all pairs")
	}
}

func TestBuildSORNErrors(t *testing.T) {
	cases := []SORNConfig{
		{N: 7, Nc: 2, Q: 1},
		{N: 8, Nc: 0, Q: 1},
		{N: 8, Nc: 2, Q: 0},
		{N: 8, Nc: 2, Q: -3},
		{N: 1, Nc: 1, Q: 1},
	}
	for _, c := range cases {
		if _, err := BuildSORN(c); err == nil {
			t.Errorf("BuildSORN(%+v) accepted", c)
		}
	}
}

func TestOptimalQ(t *testing.T) {
	q, r := OptimalQ(0.56)
	if math.Abs(q-2/0.44) > 1e-12 || math.Abs(r-1/2.44) > 1e-12 {
		t.Fatalf("OptimalQ(0.56) = %f,%f", q, r)
	}
	q, r = OptimalQ(0)
	if q != 2 || math.Abs(r-1.0/3) > 1e-12 {
		t.Fatalf("OptimalQ(0) = %f,%f", q, r)
	}
	q, r = OptimalQ(1)
	if !math.IsInf(q, 1) || r != 0.5 {
		t.Fatalf("OptimalQ(1) = %f,%f", q, r)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("OptimalQ(-0.1) did not panic")
		}
	}()
	OptimalQ(-0.1)
}

func TestOptimalORN(t *testing.T) {
	o, err := BuildOptimalORN(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if o.Base != 4 || o.Schedule.Period() != 6 {
		t.Fatalf("base=%d period=%d", o.Base, o.Schedule.Period())
	}
	// Each node's neighbors are exactly the nodes differing in one digit:
	// h*(a-1) = 6 of them.
	nb := o.Schedule.Neighbors(5)
	if len(nb) != 6 {
		t.Fatalf("node 5 has %d neighbors, want 6: %v", len(nb), nb)
	}
	d := o.Digits(11) // 11 = 2*4 + 3
	if d[0] != 3 || d[1] != 2 {
		t.Fatalf("Digits(11) = %v", d)
	}
}

func TestOptimalORN1DMatchesRoundRobin(t *testing.T) {
	o, err := BuildOptimalORN(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	rr := RoundRobin1D(8)
	if o.Schedule.Period() != rr.Period() {
		t.Fatalf("1D ORN period %d != round robin %d", o.Schedule.Period(), rr.Period())
	}
	for t1 := range rr.Slots {
		if !o.Schedule.Slots[t1].Equal(rr.Slots[t1]) {
			t.Fatalf("slot %d differs", t1)
		}
	}
}

func TestOptimalORNErrors(t *testing.T) {
	if _, err := BuildOptimalORN(15, 2); err == nil {
		t.Error("non-square n accepted for h=2")
	}
	if _, err := BuildOptimalORN(16, 0); err == nil {
		t.Error("h=0 accepted")
	}
	if _, err := BuildOptimalORN(1, 1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestOperaLike(t *testing.T) {
	o, err := BuildOperaLike(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if o.Schedule.Period() != 21 {
		t.Fatalf("period = %d, want 21", o.Schedule.Period())
	}
	// Within an epoch the matching is constant.
	if o.Schedule.DestAt(0, 0) != o.Schedule.DestAt(0, 2) {
		t.Fatal("matching changed within epoch")
	}
	if o.Schedule.DestAt(0, 2) == o.Schedule.DestAt(0, 3) {
		t.Fatal("matching did not advance at epoch boundary")
	}
	if _, err := BuildOperaLike(8, 0); err == nil {
		t.Error("epochLen=0 accepted")
	}
	if _, err := BuildOperaLike(1, 1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestInterleaveEvenSpacing(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		nstreams := 1 + r.Intn(6)
		weights := make([]int, nstreams)
		total := 0
		for i := range weights {
			weights[i] = 1 + r.Intn(8)
			total += weights[i]
		}
		order := interleave(weights)
		if len(order) != total {
			return false
		}
		counts := make([]int, nstreams)
		// Max gap between occurrences of stream i must be < 2*total/w + 2.
		last := make([]int, nstreams)
		for i := range last {
			last[i] = -1
		}
		maxGap := make([]int, nstreams)
		first := make([]int, nstreams)
		for pos, s := range order {
			counts[s]++
			if last[s] >= 0 {
				if g := pos - last[s]; g > maxGap[s] {
					maxGap[s] = g
				}
			} else {
				first[s] = pos
			}
			last[s] = pos
		}
		for i, w := range weights {
			if counts[i] != w {
				return false
			}
			wrap := first[i] + total - last[i]
			if wrap > maxGap[i] {
				maxGap[i] = wrap
			}
			if float64(maxGap[i]) > 2*float64(total)/float64(w)+2 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxRatio(t *testing.T) {
	cases := []struct {
		target float64
		maxW   int
	}{
		{1, 32}, {3, 32}, {0.5, 32}, {4.5454 * 7 / 63, 32}, {100, 8}, {0.001, 16},
	}
	for _, c := range cases {
		n, d := approxRatio(c.target, c.maxW)
		if n < 1 || d < 1 || n > c.maxW || d > c.maxW {
			t.Errorf("approxRatio(%f,%d) = %d/%d out of bounds", c.target, c.maxW, n, d)
		}
		got := float64(n) / float64(d)
		// Saturates at maxW for huge targets, floor 1/maxW for tiny ones.
		wantErr := math.Min(c.target, float64(c.maxW)) * 0.15
		if c.target >= 1.0/float64(c.maxW) && c.target <= float64(c.maxW) &&
			math.Abs(got-c.target) > wantErr+0.05 {
			t.Errorf("approxRatio(%f,%d) = %f", c.target, c.maxW, got)
		}
	}
}

func BenchmarkBuildSORN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BuildSORN(SORNConfig{N: 128, Nc: 8, Q: 4.5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildOptimalORN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BuildOptimalORN(4096, 2); err != nil {
			b.Fatal(err)
		}
	}
}
