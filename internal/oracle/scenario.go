package oracle

import (
	"fmt"
	"math/big"

	"repro/internal/matching"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/schedule"
	"repro/internal/workload"
)

// scenario is a fully built Spec: the schedule, router, and traffic
// matrix all three oracles run against, plus the exact rational mirror
// of the traffic matrix the rational checks use.
type scenario struct {
	spec    Spec
	sched   *matching.Schedule
	router  routing.Router
	cliques *schedule.Cliques // sorn only
	sorn    *schedule.SORN    // sorn only
	orn     *schedule.OptimalORN

	tm *workload.Matrix
	// ratTM[s][d] is the exact rational of tm.Rates[s][d]: the simple
	// rational the float was rounded from when one exists (1/(n−1) style
	// constructor outputs), else the float's exact binary expansion.
	// nil entries are zero.
	ratTM [][]*big.Rat
}

// build materializes a spec. Everything random (permutation TM shift,
// gravity masses) derives from spec.Seed via dedicated rng.Split
// streams, so a spec line reproduces the scenario bit-for-bit.
func build(spec Spec) (*scenario, error) {
	sc := &scenario{spec: spec}
	switch spec.Design {
	case "sorn":
		if spec.Nc < 2 || spec.N%spec.Nc != 0 || spec.N/spec.Nc < 2 {
			return nil, fmt.Errorf("oracle: sorn needs Nc >= 2 cliques of >= 2 nodes, got n=%d nc=%d", spec.N, spec.Nc)
		}
		q := spec.Q
		if q <= 0 {
			q = model.SORNQClamped(spec.X, 16)
		}
		s, err := schedule.BuildSORN(schedule.SORNConfig{N: spec.N, Nc: spec.Nc, Q: q})
		if err != nil {
			return nil, err
		}
		sc.sorn, sc.cliques, sc.sched = s, s.Cliques, s.Schedule
		sc.router = routing.NewSORN(s)
	case "orn1":
		if spec.N < 4 {
			return nil, fmt.Errorf("oracle: orn1 needs n >= 4, got %d", spec.N)
		}
		sc.sched = matching.RoundRobin(spec.N)
		v, err := routing.NewVLB(matching.Compile(sc.sched))
		if err != nil {
			return nil, err
		}
		sc.router = v
	case "orn2":
		o, err := schedule.BuildOptimalORN(spec.N, 2)
		if err != nil {
			return nil, err
		}
		sc.orn, sc.sched = o, o.Schedule
		sc.router = routing.NewORN(o)
	case "direct":
		if spec.N < 3 {
			return nil, fmt.Errorf("oracle: direct needs n >= 3, got %d", spec.N)
		}
		sc.sched = matching.RoundRobin(spec.N)
		d, err := routing.NewDirect(matching.Compile(sc.sched))
		if err != nil {
			return nil, err
		}
		sc.router = d
	default:
		return nil, fmt.Errorf("oracle: unknown design %q", spec.Design)
	}

	tm, err := buildTM(spec, sc.cliques)
	if err != nil {
		return nil, err
	}
	if err := tm.Validate(); err != nil {
		return nil, err
	}
	sc.tm = tm
	sc.ratTM = rationalize(tm)
	return sc, nil
}

// tmRng returns the random stream a given TM family draws from: split
// off the spec seed, disjoint from the netsim streams (which split off
// the seed directly inside the simulator).
func tmRng(spec Spec) *rng.RNG {
	return rng.New(spec.Seed ^ 0x74616d5f6f7261cb).Split()
}

func buildTM(spec Spec, cl *schedule.Cliques) (*workload.Matrix, error) {
	switch spec.TM {
	case "uniform":
		return workload.Uniform(spec.N), nil
	case "locality":
		if cl == nil {
			return nil, fmt.Errorf("oracle: locality TM needs a clique structure (design %s)", spec.Design)
		}
		return workload.Locality(cl, spec.TMParam)
	case "permutation":
		// A random cyclic shift: fixed-point-free for every shift in
		// [1, n), and node-transitive, which the netsim saturation
		// comparison relies on.
		shift := 1 + tmRng(spec).Intn(spec.N-1)
		perm := make([]int, spec.N)
		for i := range perm {
			perm[i] = (i + shift) % spec.N
		}
		return workload.Permutation(perm)
	case "hotspot":
		hot := 1 + spec.N/8
		return workload.Hotspot(spec.N, hot, spec.TMParam)
	case "gravity":
		if cl == nil {
			return nil, fmt.Errorf("oracle: gravity TM needs a clique structure (design %s)", spec.Design)
		}
		r := tmRng(spec)
		mass := make([]float64, cl.NumCliques())
		for i := range mass {
			mass[i] = float64(1 + r.Intn(7))
		}
		return workload.Gravity(cl, mass)
	default:
		return nil, fmt.Errorf("oracle: unknown tm %q", spec.TM)
	}
}

// rationalize mirrors a float traffic matrix exactly: each positive rate
// becomes the simple rational it was rounded from when RatFromFloat
// recovers one (all constructor-emitted rates of the uniform, locality,
// and permutation families), else its exact binary expansion via
// big.Rat.SetFloat64 (renormalized hotspot/gravity rates). Either way
// the rational matrix represents the float matrix with zero error at
// the granularity the rational checks need.
func rationalize(tm *workload.Matrix) [][]*big.Rat {
	out := make([][]*big.Rat, tm.N)
	for s := range out {
		out[s] = make([]*big.Rat, tm.N)
		for d, rate := range tm.Rates[s] {
			if rate <= 0 {
				continue
			}
			if r, ok := model.RatFromFloat(rate); ok {
				out[s][d] = r
			} else {
				out[s][d] = new(big.Rat).SetFloat64(rate)
			}
		}
	}
	return out
}
