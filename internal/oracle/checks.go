package oracle

import (
	"fmt"
	"math"
	"math/big"

	"repro/internal/fluid"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/routing"
)

// floatBudget is the relative agreement budget for any comparison with a
// float-arithmetic side (the fluid solver's float path, relabeled float
// solves). Rational-vs-rational comparisons use no budget at all.
const floatBudget = 1e-9

// relClose reports |a−b| ≤ budget·max(|a|,|b|).
func relClose(a, b, budget float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= budget*scale
}

// checkRouterInvariants validates the router's path distribution for
// every (src, dst) pair: probabilities are positive exact rationals
// summing to exactly 1, every path starts at src and ends at dst, stays
// within MaxHops, and uses only links the schedule actually provides.
func checkRouterInvariants(sc *scenario, rep *Report) {
	n := sc.sched.N
	slotCount := make([][]int, n)
	for u := range slotCount {
		slotCount[u] = make([]int, n)
	}
	for _, m := range sc.sched.Slots {
		for u, v := range m {
			slotCount[u][v]++
		}
	}
	maxHops := sc.router.MaxHops()
	one := big.NewRat(1, 1)
	sum := new(big.Rat)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			sum.SetInt64(0)
			paths := 0
			sc.router.Paths(src, dst, func(p routing.Route, prob float64) {
				paths++
				rp, ok := model.RatFromFloat(prob)
				if !ok || rp.Sign() <= 0 {
					rep.add("router-prob", "path %d->%d prob %v is not a positive simple rational", src, dst, prob)
					return
				}
				sum.Add(sum, rp)
				if len(p) < 2 || p[0] != src || p[len(p)-1] != dst {
					rep.add("router-endpoints", "path %v for pair %d->%d", p, src, dst)
					return
				}
				if len(p)-1 > maxHops {
					rep.add("router-maxhops", "path %v has %d hops, MaxHops()=%d", p, len(p)-1, maxHops)
				}
				for i := 0; i+1 < len(p); i++ {
					if slotCount[p[i]][p[i+1]] == 0 {
						rep.add("router-offschedule", "path %v hop %d->%d absent from schedule", p, p[i], p[i+1])
						return
					}
				}
			})
			if paths == 0 {
				rep.add("router-nopaths", "no paths for pair %d->%d", src, dst)
			} else if sum.Cmp(one) != 0 {
				rep.add("router-probsum", "pair %d->%d probabilities sum to %s, want exactly 1", src, dst, sum.RatString())
			}
		}
	}
}

// checkFloatVsRational compares the float fluid solve against the exact
// rational solve of the same scenario within floatBudget.
func checkFloatVsRational(sc *scenario, fl *fluid.Result, rr *ratResult, rep *Report) {
	rf, _ := rr.theta.Float64()
	if !relClose(fl.Theta, rf, floatBudget) {
		rep.add("float-vs-rational", "fluid θ=%v, rational θ=%s (≈%v), budget %g",
			fl.Theta, rr.theta.RatString(), rf, floatBudget)
	}
}

// checkClosedForm compares the rational solver against the independently
// derived closed form — exactly, no budget — and then checks the float
// fluid θ against the paper's model lower bounds where those apply.
func checkClosedForm(sc *scenario, fl *fluid.Result, rr *ratResult, rep *Report) {
	theta, name, ok, err := closedFormTheta(sc)
	if err != nil {
		rep.add("closed-form", "%v", err)
	} else if ok && theta.Cmp(rr.theta) != 0 {
		rep.add("closed-form", "%s closed form θ=%s, rational solver θ=%s (bottleneck %d->%d)",
			name, theta.RatString(), rr.theta.RatString(), rr.bottleneckSrc, rr.bottleneckDst)
	}

	// Model lower bounds. These hold only for doubly-substochastic
	// matrices (row and column sums ≤ 1), so hotspot (oversubscribed
	// columns) and gravity are excluded.
	switch sc.spec.Design {
	case "sorn":
		if sc.spec.TM == "uniform" || sc.spec.TM == "locality" {
			xEff := sc.tm.IntraFraction(sc.cliques)
			q := sc.sorn.RealizedQ
			if q > 0 && !math.IsInf(q, 0) {
				bound := model.SORNThroughputAtQ(xEff, q)
				if fl.Theta < bound*(1-floatBudget) {
					rep.add("model-bound", "sorn θ=%v below worst-case bound %v at x=%v q=%v",
						fl.Theta, bound, xEff, q)
				}
			}
		}
	case "orn1":
		if substochastic(sc) && fl.Theta < 0.5*(1-floatBudget) {
			rep.add("model-bound", "VLB θ=%v below 1/2 on a substochastic matrix", fl.Theta)
		}
	case "orn2":
		if sc.spec.TM == "uniform" && fl.Theta < 1/(2*float64(sc.orn.H))*(1-floatBudget) {
			rep.add("model-bound", "ORN θ=%v below 1/(2h)=%v on uniform traffic",
				fl.Theta, 1/(2*float64(sc.orn.H)))
		}
	}
}

// substochastic reports whether every row and column sum is ≤ 1 (within
// floatBudget, since constructor rates are rounded floats).
func substochastic(sc *scenario) bool {
	for i := 0; i < sc.tm.N; i++ {
		if sc.tm.RowSum(i) > 1+floatBudget || sc.tm.ColSum(i) > 1+floatBudget {
			return false
		}
	}
	return true
}

// checkRelabeling verifies node-relabeling invariance: permuting nodes
// in the schedule, router, and traffic matrix together must not change
// throughput — exactly in rational arithmetic, within floatBudget in
// float (the float solver visits links in a different order, so its sums
// reassociate).
func checkRelabeling(sc *scenario, fl *fluid.Result, rr *ratResult, rep *Report) {
	permR := rng.New(sc.spec.Seed ^ 0x72656c6162656cff).Split()
	perm := permR.Perm(sc.spec.N)

	relSched, err := sc.sched.Relabel(perm)
	if err != nil {
		rep.add("relabel", "schedule relabel: %v", err)
		return
	}
	relRouter, err := routing.NewRelabeled(sc.router, perm)
	if err != nil {
		rep.add("relabel", "router relabel: %v", err)
		return
	}
	relRatTM := relabelRat(sc.ratTM, perm)

	relRR, err := solveRat(relSched, relRouter, relRatTM)
	if err != nil {
		rep.add("relabel", "rational solve of relabeled scenario: %v", err)
		return
	}
	if relRR.theta.Cmp(rr.theta) != 0 {
		rep.add("relabel", "rational θ changed under relabeling: %s vs %s (perm %v)",
			relRR.theta.RatString(), rr.theta.RatString(), perm)
	}

	relTM, err := sc.tm.Relabel(perm)
	if err != nil {
		rep.add("relabel", "matrix relabel: %v", err)
		return
	}
	relFl, err := fluid.Solve(relSched, relRouter, relTM)
	if err != nil {
		rep.add("relabel", "float solve of relabeled scenario: %v", err)
		return
	}
	if !relClose(relFl.Theta, fl.Theta, floatBudget) {
		rep.add("relabel", "float θ changed under relabeling: %v vs %v (budget %g, perm %v)",
			relFl.Theta, fl.Theta, floatBudget, perm)
	}
}

// checkScaling verifies demand-scaling linearity: doubling every rate
// must exactly halve θ. The factor 2 is a power of two, so the float
// side commutes with rounding and the comparison is bit-exact even in
// float arithmetic.
func checkScaling(sc *scenario, fl *fluid.Result, rep *Report) {
	scaled := sc.tm.Scale(2)
	fl2, err := fluid.Solve(sc.sched, sc.router, scaled)
	if err != nil {
		rep.add("scaling", "solve of doubled matrix: %v", err)
		return
	}
	//sornlint:ignore floateq -- ×2 is exact in binary floating point; linearity must hold bitwise
	if fl2.Theta*2 != fl.Theta {
		rep.add("scaling", "θ(2·TM)·2 = %v, want exactly θ(TM) = %v", fl2.Theta*2, fl.Theta)
	}
}

// checkCliqueSymmetry verifies the SORN schedule's two structural
// symmetries: rotating whole cliques (u → u+k mod N) and rotating local
// indices within every clique both leave the built schedule bit-for-bit
// invariant, so permuting only the traffic matrix by either must leave
// the exact throughput unchanged.
func checkCliqueSymmetry(sc *scenario, rr *ratResult, rep *Report) {
	n, nc := sc.spec.N, sc.spec.Nc
	k := n / nc
	perms := map[string][]int{
		"clique-rotation": make([]int, n),
		"local-rotation":  make([]int, n),
	}
	for u := 0; u < n; u++ {
		perms["clique-rotation"][u] = (u + k) % n
		perms["local-rotation"][u] = (u/k)*k + (u%k+1)%k
	}
	for name, perm := range perms {
		relSched, err := sc.sched.Relabel(perm)
		if err != nil {
			rep.add("clique-symmetry", "%s: %v", name, err)
			continue
		}
		// The symmetry argument needs the schedule itself to be invariant
		// under the permutation; check it rather than assume it, so a
		// schedule-builder regression surfaces here by name.
		if !relSched.Equal(sc.sched) {
			rep.add("clique-symmetry", "%s: schedule not invariant under %v", name, perm)
			continue
		}
		symRR, err := solveRat(sc.sched, sc.router, relabelRat(sc.ratTM, perm))
		if err != nil {
			rep.add("clique-symmetry", "%s: rational solve: %v", name, err)
			continue
		}
		if symRR.theta.Cmp(rr.theta) != 0 {
			rep.add("clique-symmetry", "%s: θ changed from %s to %s under TM permutation %v",
				name, rr.theta.RatString(), symRR.theta.RatString(), perm)
		}
	}
}

// checkDeltaM cross-checks the SORN δm slot counts: the exact rational
// ceiling must agree with Row.DeltaMSlots for both formula variants, and
// the paper's text-vs-Table-1 inconsistency is recorded as a suppressed
// violation with its justification (it is a defect of the source paper,
// not of this reproduction — both variants are implemented and labeled).
func checkDeltaM(sc *scenario, rep *Report) {
	if sc.spec.X < 0 || sc.spec.X >= 1 {
		return // q* diverges at x = 1; no exact δm to check
	}
	p := model.Params{N: sc.spec.N, SlotNS: 100, PropNS: 500}
	for _, table := range []bool{false, true} {
		sp := model.SORNParams{Nc: sc.spec.Nc, X: sc.spec.X, TableVariant: table}
		rows, err := model.SORN(p, sp)
		if err != nil {
			rep.add("deltam", "model.SORN(n=%d nc=%d x=%v): %v", sc.spec.N, sc.spec.Nc, sc.spec.X, err)
			return
		}
		intra, inter, ok := model.SORNDeltaMExact(sc.spec.N, sc.spec.Nc, sc.spec.X, table)
		if !ok {
			continue // x not a recoverable rational; float path already covered elsewhere
		}
		for i, want := range []*big.Rat{intra, inter} {
			got, exact := rows[i].DeltaMExact()
			if !exact {
				rep.add("deltam", "row %q lost its exact δm", rows[i].System+"/"+rows[i].Variant)
				continue
			}
			if got.Cmp(want) != 0 {
				rep.add("deltam", "row %q exact δm %s, independent formula %s",
					rows[i].System+"/"+rows[i].Variant, got.RatString(), want.RatString())
			}
		}
	}

	// The known source-paper inconsistency: text says (q+1)(Nc−1)+…,
	// Table 1's printed 364/296 need q(Nc−1)+…. Difference is exactly
	// (Nc−1) circuits. Recorded, suppressed, justified.
	textI, textX, ok1 := model.SORNDeltaMExact(sc.spec.N, sc.spec.Nc, sc.spec.X, false)
	tabI, tabX, ok2 := model.SORNDeltaMExact(sc.spec.N, sc.spec.Nc, sc.spec.X, true)
	if ok1 && ok2 {
		if textI.Cmp(tabI) != 0 {
			rep.add("deltam", "intra δm differs between text and table variants: %s vs %s",
				textI.RatString(), tabI.RatString())
		}
		diff := new(big.Rat).Sub(textX, tabX)
		if diff.Cmp(big.NewRat(int64(sc.spec.Nc-1), 1)) != 0 {
			rep.add("deltam", "text−table inter δm = %s, want exactly Nc−1 = %d",
				diff.RatString(), sc.spec.Nc-1)
		} else {
			rep.suppress("deltam-paper",
				fmt.Sprintf("inter δm: text formula %s vs Table-1 formula %s", textX.RatString(), tabX.RatString()),
				"source paper's §4 text and Table 1 disagree by exactly (Nc−1) circuits; both variants are implemented and labeled (SORNParams.TableVariant), Table 1 is reproduced with the table variant")
		}
	}
}
