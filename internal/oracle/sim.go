package oracle

import (
	"math"
	"math/big"

	"repro/internal/fluid"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/workload"
)

// simTolerance is the finite-horizon agreement budget between the fluid
// θ and the packet simulator's saturated throughput: a base for
// queueing/discretization effects, a term for partial schedule periods
// in the measurement window, and a CLT term for the measured-slot count.
// The constants are calibrated in EXPERIMENTS.md ("Differential
// testing") against the fixed corpus with ≥2x headroom.
func simTolerance(sc *scenario) float64 {
	period := float64(sc.sched.Period())
	m := float64(sc.spec.Measure)
	return 0.05 + 1.5*period/m + 2/math.Sqrt(m)
}

// simComparable reports whether the saturated simulator throughput is a
// valid estimator of the fluid θ for this scenario. Per-pair backlog
// saturation delivers every demand pair at its own path capacity, so the
// aggregate only matches θ·(row sum) when all demand pairs are
// equivalent: a uniform matrix on the single-link-class designs, a
// permutation on the symmetric flat schedules, or a class-uniform SORN
// matrix whose two link classes are near-balanced (ratio ≥ 0.8) — when
// one class is far slacker, the simulator legitimately delivers more
// aggregate throughput than the worst pair's θ.
func simComparable(sc *scenario) bool {
	switch sc.spec.Design {
	case "orn1", "orn2", "direct":
		if sc.spec.TM == "uniform" {
			return true
		}
		return sc.spec.TM == "permutation" && sc.spec.Design != "orn2"
	case "sorn":
		if sc.spec.TM != "uniform" && sc.spec.TM != "locality" {
			return false
		}
		tI, tX, ok := sornClassThetas(sc)
		if !ok {
			return false
		}
		if tI == nil || tX == nil {
			return true // single loaded class
		}
		lo, hi := tI, tX
		if lo.Cmp(hi) > 0 {
			lo, hi = hi, lo
		}
		ratio := new(big.Rat).Quo(lo, hi)
		f, _ := ratio.Float64()
		return f >= 0.8
	}
	return false
}

func (sc *scenario) simConfig(workers int, sampleLatency bool) netsim.Config {
	cfg := netsim.Config{
		Schedule: sc.sched,
		Router:   sc.router,
		SlotNS:   100,
		PropNS:   500,
		Seed:     sc.spec.Seed,
		Planes:   sc.spec.Planes,
		Workers:  workers,
	}
	if sampleLatency {
		cfg.LatencySampleEvery = 1
	}
	return cfg
}

// perPairBacklog sizes the saturation backlog so sources stay
// work-conserving under source routing: a cell's relay is fixed at
// injection, so a source can use the slot's circuit only if some queued
// cell's first hop matches it. With B cells spread over R possible first
// hops, a source misses a slot with probability ~(1−1/R)^B; sparse
// matrices (permutation: one pair per source) need B ≈ several·R·planes
// per pair or the measurement starves at a fraction of the fluid θ.
func perPairBacklog(sc *scenario) int64 {
	relays := int64(1)
	switch sc.spec.Design {
	case "orn1":
		relays = int64(sc.spec.N - 1)
	case "orn2":
		relays = int64(sc.orn.Base)
	case "sorn":
		relays = int64(sc.spec.N / sc.spec.Nc)
	}
	minPairs := int64(sc.spec.N)
	for s := range sc.ratTM {
		c := int64(0)
		for d, r := range sc.ratTM[s] {
			if r != nil && d != s {
				c++
			}
		}
		if c > 0 && c < minPairs {
			minPairs = c
		}
	}
	return 4 + (8*int64(sc.spec.Planes)*relays)/minPairs
}

// runSaturated runs one per-pair-backlog saturation experiment.
func runSaturated(sc *scenario, workers int) (*netsim.Stats, error) {
	sim, err := netsim.New(sc.simConfig(workers, true))
	if err != nil {
		return nil, err
	}
	return sim.RunSaturated(netsim.SaturationConfig{
		TM:             sc.tm,
		Size:           workload.FixedSize(1),
		PerPairBacklog: perPairBacklog(sc),
		WarmupSlots:    sc.spec.Warmup,
		MeasureSlots:   sc.spec.Measure,
	})
}

// checkSim runs the packet simulator twice — Workers=1 and
// Workers=spec.Workers — asserts the two runs are bit-identical (the
// simulator's determinism contract), and, on comparable scenarios,
// checks the saturated throughput against the fluid θ within the
// finite-horizon budget.
func checkSim(sc *scenario, fl *fluid.Result, rep *Report) {
	serial, err := runSaturated(sc, 1)
	if err != nil {
		rep.add("sim", "saturated run (workers=1): %v", err)
		return
	}
	sharded, err := runSaturated(sc, sc.spec.Workers)
	if err != nil {
		rep.add("sim", "saturated run (workers=%d): %v", sc.spec.Workers, err)
		return
	}
	if diff, ok := serial.BitIdentical(sharded); !ok {
		rep.add("sim-workers", "saturated stats differ between workers=1 and workers=%d: %s",
			sc.spec.Workers, diff)
	}

	if simComparable(sc) {
		got := serial.Throughput(sc.sched.N)
		tol := simTolerance(sc)
		if !relClose(got, fl.Theta, tol) {
			rep.add("sim-throughput", "simulator θ=%v, fluid θ=%v, finite-horizon budget %v (period=%d measure=%d)",
				got, fl.Theta, tol, sc.sched.Period(), sc.spec.Measure)
		}
	}
}

// Driven-run shape for the fail→repair identity: shorter than the
// saturation runs (three runs per scenario), long enough to cross many
// schedule periods.
const (
	drivenWarmup = 400
	drivenTotal  = 1200
)

// runDriven drives the simulator slot by slot with an open-loop arrival
// process derived from the spec seed (identical across calls), invoking
// hook between slots when non-nil.
func runDriven(sc *scenario, workers int, inject float64, hook func(sim *netsim.Sim, slot int)) (*netsim.Stats, error) {
	sim, err := netsim.New(sc.simConfig(workers, true))
	if err != nil {
		return nil, err
	}
	injR := rng.New(sc.spec.Seed ^ 0x696e6a6563748a51).Split()
	for t := 0; t < drivenTotal; t++ {
		if t == drivenWarmup {
			sim.StartMeasuring()
		}
		if hook != nil {
			hook(sim, t)
		}
		for u := 0; u < sc.spec.N; u++ {
			if injR.Float64() < inject {
				if dst := sc.tm.SampleDest(u, injR); dst >= 0 && dst != u {
					sim.InjectFlow(u, dst, 1)
				}
			}
		}
		sim.Step()
	}
	return sim.Stats(), nil
}

// checkFailRepair verifies that failing and repairing an element with a
// zero-slot elapsed window is invisible: a run that fails and repairs a
// node at slot 0 (before anything is queued) and fail+repairs a live
// circuit between two mid-run slots must be bit-identical to a run that
// never failed anything. A second comparison runs the hooked scenario at
// Workers=1 vs Workers=k, extending the determinism contract across the
// failure bitmaps.
func checkFailRepair(sc *scenario, fl *fluid.Result, rep *Report) {
	// Moderate open-loop load: below θ so queues stay shallow, bounded
	// away from 0 and 1.
	inject := math.Min(0.7, math.Max(0.1, 0.4*fl.Theta*float64(sc.spec.Planes)))

	// A circuit that really exists: node 0's slot-0 peer.
	v := sc.sched.Slots[0][0]
	hook := func(sim *netsim.Sim, slot int) {
		switch slot {
		case 0:
			// Fail+repair a node before any cell exists: the purge is
			// vacuous, so the run must be unaffected.
			sim.FailNode(1 % sc.spec.N)
			sim.RepairNode(1 % sc.spec.N)
		case drivenWarmup / 2, drivenWarmup + 300:
			// Zero-slot fail window on a live circuit: no transmission
			// happens between FailLink and RepairLink.
			sim.FailLink(0, v)
			sim.RepairLink(0, v)
		}
	}

	base, err := runDriven(sc, sc.spec.Workers, inject, nil)
	if err != nil {
		rep.add("fail-repair", "baseline driven run: %v", err)
		return
	}
	hooked, err := runDriven(sc, sc.spec.Workers, inject, hook)
	if err != nil {
		rep.add("fail-repair", "hooked driven run: %v", err)
		return
	}
	if diff, ok := base.BitIdentical(hooked); !ok {
		rep.add("fail-repair", "zero-window fail+repair changed the run: %s", diff)
	}
	hookedSerial, err := runDriven(sc, 1, inject, hook)
	if err != nil {
		rep.add("fail-repair", "hooked driven run (workers=1): %v", err)
		return
	}
	if diff, ok := hookedSerial.BitIdentical(hooked); !ok {
		rep.add("fail-repair-workers", "driven stats differ between workers=1 and workers=%d: %s",
			sc.spec.Workers, diff)
	}
}
