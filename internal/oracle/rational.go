package oracle

import (
	"fmt"
	"math/big"

	"repro/internal/matching"
	"repro/internal/model"
	"repro/internal/routing"
)

// ratResult is a rational fluid solve: exact θ and the binding link.
type ratResult struct {
	theta                        *big.Rat
	bottleneckSrc, bottleneckDst int
}

// solveRat is the exact mirror of fluid.Solve: capacities are integer
// slot counts over the period, path probabilities are the exact
// rationals their floats were rounded from (every router in this repo
// emits probabilities of the form 1/k, which RatFromFloat recovers
// uniquely), and loads accumulate in big.Rat. The returned θ carries no
// float error at all, which is what lets the closed-form comparisons be
// exact instead of tolerance-banded.
func solveRat(s *matching.Schedule, router routing.Router, ratTM [][]*big.Rat) (*ratResult, error) {
	n := s.N
	slotCount := make([][]int64, n)
	for u := range slotCount {
		slotCount[u] = make([]int64, n)
	}
	for _, m := range s.Slots {
		for u, v := range m {
			slotCount[u][v]++
		}
	}
	period := int64(s.Period())

	load := make([][]*big.Rat, n)
	for u := range load {
		load[u] = make([]*big.Rat, n)
	}
	var pathErr error
	contrib := new(big.Rat)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			rate := ratTM[src][dst]
			if rate == nil || pathErr != nil {
				continue
			}
			router.Paths(src, dst, func(p routing.Route, prob float64) {
				if pathErr != nil {
					return
				}
				rp, ok := model.RatFromFloat(prob)
				if !ok {
					pathErr = fmt.Errorf("oracle: %s path probability %v is not a recoverable rational",
						router.Name(), prob)
					return
				}
				contrib.Mul(rate, rp)
				for i := 0; i+1 < len(p); i++ {
					u, v := p[i], p[i+1]
					if slotCount[u][v] == 0 {
						pathErr = fmt.Errorf("oracle: router %s uses link %d->%d absent from schedule",
							router.Name(), u, v)
						return
					}
					if load[u][v] == nil {
						load[u][v] = new(big.Rat)
					}
					load[u][v].Add(load[u][v], contrib)
				}
			})
		}
	}
	if pathErr != nil {
		return nil, pathErr
	}

	res := &ratResult{bottleneckSrc: -1, bottleneckDst: -1}
	cap := new(big.Rat)
	theta := new(big.Rat)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			l := load[u][v]
			if l == nil || l.Sign() == 0 {
				continue
			}
			cap.SetFrac64(slotCount[u][v], period)
			theta.Quo(cap, l)
			if res.theta == nil || theta.Cmp(res.theta) < 0 {
				res.theta = new(big.Rat).Set(theta)
				res.bottleneckSrc, res.bottleneckDst = u, v
			}
		}
	}
	if res.theta == nil {
		return nil, fmt.Errorf("oracle: traffic matrix is empty")
	}
	return res, nil
}

// relabelRat permutes a rational traffic matrix: entry (s, d) moves to
// (perm[s], perm[d]), sharing the underlying rationals (read-only use).
func relabelRat(ratTM [][]*big.Rat, perm []int) [][]*big.Rat {
	n := len(ratTM)
	out := make([][]*big.Rat, n)
	for s := range out {
		out[s] = make([]*big.Rat, n)
	}
	for s := range ratTM {
		for d, r := range ratTM[s] {
			if r != nil {
				out[perm[s]][perm[d]] = r
			}
		}
	}
	return out
}
