package oracle

import (
	"fmt"
	"strings"

	"repro/internal/fluid"
	"repro/internal/rng"
)

// Violation is one failed (or suppressed) check for one scenario.
type Violation struct {
	Check  string // which check fired (stable identifier)
	Detail string // what disagreed, with values

	// Suppressed marks a known, justified disagreement — recorded so it
	// stays visible in reports, but not counted as a failure. The only
	// current suppression is the source paper's own δm text-vs-Table-1
	// inconsistency (see checkDeltaM).
	Suppressed    bool
	Justification string
}

// Report collects every violation for one spec. The spec line is the
// reproducer: `sornsim -selfcheck -spec "<line>"` replays it.
type Report struct {
	Spec       Spec
	Violations []Violation
}

func (r *Report) add(check, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Check: check, Detail: fmt.Sprintf(format, args...)})
}

func (r *Report) suppress(check, detail, justification string) {
	r.Violations = append(r.Violations, Violation{
		Check: check, Detail: detail, Suppressed: true, Justification: justification,
	})
}

// Failed returns the unsuppressed violations.
func (r *Report) Failed() []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if !v.Suppressed {
			out = append(out, v)
		}
	}
	return out
}

// String renders the report one line per violation, each carrying the
// reproducing spec.
func (r *Report) String() string {
	var b strings.Builder
	for _, v := range r.Violations {
		tag := "VIOLATION"
		if v.Suppressed {
			tag = "suppressed"
		}
		fmt.Fprintf(&b, "%s [%s] %s\n  repro: sornsim -selfcheck -spec %q\n", tag, v.Check, v.Detail, r.Spec.String())
		if v.Justification != "" {
			fmt.Fprintf(&b, "  justification: %s\n", v.Justification)
		}
	}
	return b.String()
}

// Run builds the spec's scenario and runs every applicable check:
// router-path invariants, float-vs-rational solver agreement, the
// independently derived closed forms, the paper's model lower bounds,
// node-relabeling invariance, demand-scaling linearity, SORN clique
// symmetry and δm formulas, packet-simulator saturation throughput,
// Workers bit-identity, and zero-window fail→repair identity. An error
// means the spec could not be built or solved at all (itself a finding
// when unexpected); disagreements between oracles are Violations, not
// errors.
func Run(spec Spec) (*Report, error) {
	rep := &Report{Spec: spec}
	sc, err := build(spec)
	if err != nil {
		return nil, err
	}

	checkRouterInvariants(sc, rep)

	fl, err := fluid.Solve(sc.sched, sc.router, sc.tm)
	if err != nil {
		return nil, fmt.Errorf("oracle: fluid solve: %w", err)
	}
	rr, err := solveRat(sc.sched, sc.router, sc.ratTM)
	if err != nil {
		// The rational solver mirrors fluid.Solve; if only the rational
		// side fails, that is a disagreement, not an infrastructure error.
		rep.add("rational-solve", "%v", err)
		return rep, nil
	}

	checkFloatVsRational(sc, fl, rr, rep)
	checkClosedForm(sc, fl, rr, rep)
	checkRelabeling(sc, fl, rr, rep)
	checkScaling(sc, fl, rep)
	if spec.Design == "sorn" {
		checkCliqueSymmetry(sc, rr, rep)
		checkDeltaM(sc, rep)
	}
	checkSim(sc, fl, rep)
	checkFailRepair(sc, fl, rep)
	return rep, nil
}

// FuzzResult summarizes a fuzzing run.
type FuzzResult struct {
	Iterations int
	Reports    []*Report // only reports with violations (incl. suppressed-only)
	Errors     []string  // scenario build/solve errors, with their spec lines
}

// Failed reports whether any unsuppressed violation or error occurred.
func (f *FuzzResult) Failed() bool {
	if len(f.Errors) > 0 {
		return true
	}
	for _, r := range f.Reports {
		if len(r.Failed()) > 0 {
			return true
		}
	}
	return false
}

// Fuzz draws random scenarios from seed and runs the full check suite on
// each until iters scenarios have run or stop returns true (checked
// between scenarios; pass a deadline closure — this package takes no
// wall-clock dependency itself). Each iteration's spec derives from its
// own split stream, so any violation reproduces from the printed spec
// line alone, independent of iteration order or count.
func Fuzz(seed uint64, iters int, stop func() bool) *FuzzResult {
	root := rng.New(seed)
	res := &FuzzResult{}
	for i := 0; i < iters; i++ {
		if stop != nil && stop() {
			break
		}
		spec := GenSpec(root.Split())
		res.Iterations++
		rep, err := Run(spec)
		if err != nil {
			res.Errors = append(res.Errors, fmt.Sprintf("%v\n  repro: sornsim -selfcheck -spec %q", err, spec.String()))
			continue
		}
		if len(rep.Violations) > 0 {
			res.Reports = append(res.Reports, rep)
		}
	}
	return res
}
