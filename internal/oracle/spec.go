// Package oracle is the differential-testing and metamorphic-fuzzing
// harness that cross-validates the repo's three independent throughput
// oracles on identical scenarios:
//
//   - internal/model  — the paper's closed forms (and, in this package,
//     exact rational closed forms derived per design × traffic class)
//   - internal/fluid  — the link-load solver over the real schedule and
//     router path distributions
//   - internal/netsim — the slotted packet simulator
//
// plus metamorphic relations that need no oracle at all: node-relabeling
// invariance, demand-scaling linearity, clique symmetry, fail→repair ≡
// never-failed, and Workers-1-vs-k bit-identity.
//
// Agreement budgets are per oracle pair (see EXPERIMENTS.md,
// "Differential testing"): model-vs-fluid is exact — both sides are
// evaluated in rational arithmetic (math/big.Rat) with capacities as
// integer slot counts and path probabilities recovered as the exact
// rationals their floats were rounded from — while fluid-float-vs-
// rational carries a 1e-9 relative budget and netsim a finite-horizon
// budget derived from the run length.
//
// Every scenario is described by a one-line Spec that reproduces it
// completely; violations print that line, and
// `sornsim -selfcheck -spec "<line>"` replays it.
package oracle

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// Spec pins one scenario: the design point, the traffic matrix, the
// simulator shape, and the seed every derived random stream splits from.
// String() and ParseSpec round-trip, so a printed spec is a reproducer.
type Spec struct {
	Design string  // sorn | orn1 | orn2 | direct
	N      int     // nodes
	Nc     int     // cliques (sorn only)
	Q      float64 // sorn oversubscription; 0 = q*(X) clamped at 16
	X      float64 // sorn design-point locality ratio

	TM      string  // uniform | locality | permutation | hotspot | gravity
	TMParam float64 // locality x / hotspot fraction; unused otherwise

	Planes  int   // schedule planes (parallel uplinks)
	Workers int   // the k of the Workers-1-vs-k bit-identity check
	Warmup  int64 // netsim warmup slots
	Measure int64 // netsim measured slots

	Seed uint64 // root of every rng.Split stream the scenario uses
}

// String renders the one-line reproducer. Floats use %g, which
// round-trips exactly through ParseFloat.
func (s Spec) String() string {
	return fmt.Sprintf(
		"design=%s n=%d nc=%d q=%g x=%g tm=%s tmparam=%g planes=%d workers=%d warmup=%d measure=%d seed=%d",
		s.Design, s.N, s.Nc, s.Q, s.X, s.TM, s.TMParam,
		s.Planes, s.Workers, s.Warmup, s.Measure, s.Seed)
}

// ParseSpec parses a String()-formatted line back into a Spec.
func ParseSpec(line string) (Spec, error) {
	var s Spec
	for _, tok := range strings.Fields(line) {
		key, val, found := strings.Cut(tok, "=")
		if !found {
			return Spec{}, fmt.Errorf("oracle: malformed spec token %q", tok)
		}
		var err error
		switch key {
		case "design":
			s.Design = val
		case "n":
			s.N, err = strconv.Atoi(val)
		case "nc":
			s.Nc, err = strconv.Atoi(val)
		case "q":
			s.Q, err = strconv.ParseFloat(val, 64)
		case "x":
			s.X, err = strconv.ParseFloat(val, 64)
		case "tm":
			s.TM = val
		case "tmparam":
			s.TMParam, err = strconv.ParseFloat(val, 64)
		case "planes":
			s.Planes, err = strconv.Atoi(val)
		case "workers":
			s.Workers, err = strconv.Atoi(val)
		case "warmup":
			s.Warmup, err = strconv.ParseInt(val, 10, 64)
		case "measure":
			s.Measure, err = strconv.ParseInt(val, 10, 64)
		case "seed":
			s.Seed, err = strconv.ParseUint(val, 10, 64)
		default:
			return Spec{}, fmt.Errorf("oracle: unknown spec key %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("oracle: bad spec value %q: %v", tok, err)
		}
	}
	if s.Design == "" || s.N == 0 || s.TM == "" {
		return Spec{}, fmt.Errorf("oracle: spec %q missing design/n/tm", line)
	}
	return s, nil
}

// localityGrid is the x values GenSpec draws from: sixteenths cover the
// domain, plus the paper's production median 0.56 (the 50/11 rational-q*
// path) and the near-saturated 0.9.
var localityGrid = []float64{
	0, 0.0625, 0.125, 0.1875, 0.25, 0.3125, 0.375, 0.4375,
	0.5, 0.5625, 0.625, 0.6875, 0.75, 0.8125, 0.875, 0.9375,
	0.56, 0.9,
}

// GenSpec draws a random scenario. Every dimension consumes its own
// rng.Split stream off r, so adding values to one dimension's pool never
// shifts another dimension's draw for the same root seed.
func GenSpec(r *rng.RNG) Spec {
	designR := r.Split()
	sizeR := r.Split()
	qR := r.Split()
	xR := r.Split()
	tmR := r.Split()
	planeR := r.Split()
	workerR := r.Split()
	seedR := r.Split()

	s := Spec{
		Planes:  1 + planeR.Intn(2),
		Workers: []int{2, 3, 4, 7}[workerR.Intn(4)],
		Warmup:  800,
		Measure: 3200,
		Seed:    seedR.Uint64(),
	}

	switch designR.Intn(10) {
	case 0, 1, 2, 3, 4: // sorn, half the corpus
		s.Design = "sorn"
		s.Nc = 2 + sizeR.Intn(5) // 2..6 cliques
		k := 2 + sizeR.Intn(7)   // 2..8 nodes per clique
		s.N = s.Nc * k           // ≤ 48
		s.X = localityGrid[xR.Intn(len(localityGrid))]
		if qR.Intn(10) < 3 {
			s.Q = float64(1 + qR.Intn(4)) // explicit integer q
		} // else 0: q*(x) clamped
	case 5, 6: // 1D optimal ORN (VLB)
		s.Design = "orn1"
		s.N = 8 + 2*sizeR.Intn(13) // 8..32 even
	case 7, 8: // h-dimensional ORN, h=2
		s.Design = "orn2"
		a := 3 + sizeR.Intn(4) // base 3..6 → N 9..36
		s.N = a * a
	default:
		s.Design = "direct"
		s.N = 8 + sizeR.Intn(25) // 8..32
	}

	// Traffic matrix: uniform everywhere; locality and gravity need the
	// clique structure; permutation and hotspot apply to every design.
	var tms []string
	if s.Design == "sorn" {
		tms = []string{"uniform", "locality", "locality", "permutation", "hotspot", "gravity"}
	} else {
		tms = []string{"uniform", "uniform", "permutation", "hotspot"}
	}
	s.TM = tms[tmR.Intn(len(tms))]
	switch s.TM {
	case "locality":
		s.TMParam = localityGrid[tmR.Intn(len(localityGrid))]
	case "hotspot":
		s.TMParam = []float64{0.2, 0.3, 0.5}[tmR.Intn(3)]
	}
	return s
}

// Corpus returns the fixed scenario set the CI gate replays on every
// run: one spec per design × traffic-class corner the checks care
// about, sized to finish quickly under -race. Seeds are arbitrary fixed
// constants — the point is that the corpus never drifts.
func Corpus() []Spec {
	lines := []string{
		"design=direct n=12 tm=uniform planes=1 workers=3",
		"design=direct n=10 tm=permutation planes=2 workers=4",
		"design=orn1 n=16 tm=uniform planes=1 workers=4",
		"design=orn1 n=14 tm=permutation planes=2 workers=2",
		"design=orn1 n=12 tm=hotspot tmparam=0.3 planes=1 workers=3",
		"design=orn2 n=16 tm=uniform planes=1 workers=4",
		"design=orn2 n=25 tm=hotspot tmparam=0.2 planes=1 workers=2",
		"design=sorn n=16 nc=4 x=0.5 tm=locality tmparam=0.5 planes=1 workers=4",
		"design=sorn n=24 nc=4 x=0.56 tm=locality tmparam=0.56 planes=2 workers=3",
		"design=sorn n=16 nc=8 x=0.25 tm=uniform planes=1 workers=2",
		"design=sorn n=16 nc=4 x=0 tm=locality tmparam=0 planes=1 workers=4",
		"design=sorn n=18 nc=3 q=3 x=0.75 tm=locality tmparam=0.9375 planes=1 workers=3",
		"design=sorn n=20 nc=5 x=0.5 tm=permutation planes=2 workers=4",
		"design=sorn n=12 nc=3 x=0.5 tm=gravity planes=1 workers=2",
	}
	specs := make([]Spec, 0, len(lines))
	for i, l := range lines {
		s, err := ParseSpec(l + fmt.Sprintf(" warmup=800 measure=3200 seed=%d", 0xC0FFEE+i))
		if err != nil {
			panic("oracle: bad corpus spec: " + err.Error())
		}
		specs = append(specs, s)
	}
	return specs
}
