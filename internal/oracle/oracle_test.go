package oracle

import (
	"math/big"
	"strings"
	"testing"

	"repro/internal/fluid"
)

func mustSpec(t *testing.T, line string) Spec {
	t.Helper()
	s, err := ParseSpec(line)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", line, err)
	}
	return s
}

func TestSpecRoundTrip(t *testing.T) {
	for _, spec := range Corpus() {
		back, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("ParseSpec(String()) failed for %v: %v", spec, err)
		}
		if back != spec {
			t.Errorf("round trip changed spec:\n  in  %v\n  out %v", spec, back)
		}
	}
}

func TestParseSpecRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"design=sorn",                         // missing n/tm
		"design=sorn n=12 tm=uniform bogus=1", // unknown key
		"design=sorn n=twelve tm=uniform",     // bad int
		"design sorn n=12 tm=uniform",         // missing =
	} {
		if _, err := ParseSpec(line); err == nil {
			t.Errorf("ParseSpec(%q) accepted a malformed spec", line)
		}
	}
}

// TestOracleCorpus is the CI gate: every fixed-corpus scenario must pass
// every check with zero unsuppressed violations, and the known δm
// text-vs-table suppression must actually be exercised on SORN specs.
func TestOracleCorpus(t *testing.T) {
	sawSuppression := false
	for _, spec := range Corpus() {
		rep, err := Run(spec)
		if err != nil {
			t.Errorf("Run(%s): %v", spec, err)
			continue
		}
		for _, v := range rep.Failed() {
			t.Errorf("spec %s\n  [%s] %s", spec, v.Check, v.Detail)
		}
		for _, v := range rep.Violations {
			if v.Suppressed {
				sawSuppression = true
				if v.Justification == "" {
					t.Errorf("spec %s: suppressed violation %q without justification", spec, v.Check)
				}
			}
		}
	}
	if !sawSuppression {
		t.Error("corpus never exercised the δm paper-inconsistency suppression")
	}
}

func TestFuzzSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz smoke is not a -short test")
	}
	res := Fuzz(1, 4, nil)
	if res.Iterations != 4 {
		t.Fatalf("ran %d iterations, want 4", res.Iterations)
	}
	if res.Failed() {
		for _, e := range res.Errors {
			t.Error(e)
		}
		for _, r := range res.Reports {
			t.Error(r.String())
		}
	}
}

func TestFuzzStop(t *testing.T) {
	calls := 0
	res := Fuzz(2, 100, func() bool { calls++; return calls > 2 })
	if res.Iterations != 2 {
		t.Fatalf("stop after 2 iterations, ran %d", res.Iterations)
	}
}

// TestHarnessDetectsDisagreement seeds a fault — a float θ nudged off the
// rational value, and a non-linear scaled matrix — and asserts the
// differential checks actually fire. A harness that cannot detect an
// injected bug proves nothing when it passes.
func TestHarnessDetectsDisagreement(t *testing.T) {
	spec := mustSpec(t, "design=orn1 n=12 tm=uniform planes=1 workers=2 warmup=200 measure=400 seed=7")
	sc, err := build(spec)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := fluid.Solve(sc.sched, sc.router, sc.tm)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := solveRat(sc.sched, sc.router, sc.ratTM)
	if err != nil {
		t.Fatal(err)
	}

	rep := &Report{Spec: spec}
	checkFloatVsRational(sc, fl, rr, rep)
	if len(rep.Violations) != 0 {
		t.Fatalf("unperturbed scenario reported violations: %v", rep.Violations)
	}

	perturbed := *fl
	perturbed.Theta *= 1 + 1e-6
	rep = &Report{Spec: spec}
	checkFloatVsRational(sc, &perturbed, rr, rep)
	if len(rep.Violations) == 0 {
		t.Error("float-vs-rational check missed a 1e-6 perturbation")
	}
	// The closed form compares rationals exactly; perturb the rational
	// side and it must fire.
	badRat := &ratResult{theta: new(big.Rat).Set(rr.theta)}
	badRat.theta.Mul(badRat.theta, big.NewRat(3, 2))
	rep = &Report{Spec: spec}
	checkClosedForm(sc, fl, badRat, rep)
	if len(rep.Violations) == 0 {
		t.Error("closed-form check missed a 3/2 rational perturbation")
	}
}

// TestViolationOutputCarriesRepro: every rendered violation line must
// carry the spec reproducer.
func TestViolationOutputCarriesRepro(t *testing.T) {
	rep := &Report{Spec: Corpus()[0]}
	rep.add("example", "synthetic")
	out := rep.String()
	if !strings.Contains(out, "-selfcheck -spec") || !strings.Contains(out, Corpus()[0].String()) {
		t.Errorf("report output lacks reproducer:\n%s", out)
	}
}
