package oracle

import (
	"fmt"
	"math/big"
)

// closedFormTheta returns the exact rational throughput derived
// independently of the fluid solver — by hand, from the schedule's
// structure and the traffic class, with none of the solver's per-link
// accounting — plus a name for reports. ok is false when no closed form
// covers this design × traffic-class combination (the float-vs-rational
// and metamorphic checks still apply there).
//
// Derivations (all for the repo's builders; loads are per directed
// link at demand scaling 1, capacities are slots-per-period fractions):
//
//   - direct over RoundRobin(n): every ordered pair has exactly one slot
//     per period n−1, and each link carries exactly its pair's rate, so
//     θ = (1/(n−1)) / max rate. Any traffic matrix.
//
//   - orn1 (2-hop VLB over RoundRobin(n)): link a→b carries a's sprayed
//     demand (row(a)/(n−1)) plus the correction traffic for b from every
//     other source ((col(b)−rate(a,b))/(n−1)); capacity 1/(n−1), so
//     θ = 1 / max_{a≠b}(row(a) + col(b) − rate(a,b)) over loaded links.
//     Any traffic matrix.
//
//   - orn2 (h=2 digit routing, base a, N=a², period h(a−1)): for a
//     per-class-uniform (here: fully uniform) matrix with off-diagonal
//     rate r, every schedule link carries exactly 2·r·(N−1)/a (spray
//     role + correction role, the diagonal exclusion cancels exactly),
//     capacity 1/(h(a−1)), so θ = a / (h(a−1)·2r(N−1)). Uniform only.
//
//   - sorn (cliques of k, Nc cliques, realized weights wIntra/wInter,
//     period P = (k−1)wIntra + (Nc−1)wInter): for a class-uniform matrix
//     (intra rate rI, inter rate rX — the locality and uniform
//     families), each intra link carries rI(2k−3)/(k−1) from intra VLB
//     (first + second hop roles) plus 2·rX(N−k)/k from inter traffic's
//     load-balancing and landing hops; each inter link carries k·rX.
//     Capacities wIntra/P and wInter/P, θ = min of the two ratios.
func closedFormTheta(sc *scenario) (*big.Rat, string, bool, error) {
	switch sc.spec.Design {
	case "direct":
		maxRate := maxRat(sc.ratTM)
		if maxRate == nil {
			return nil, "", false, fmt.Errorf("oracle: empty traffic matrix")
		}
		n := int64(sc.spec.N)
		theta := new(big.Rat).Quo(big.NewRat(1, n-1), maxRate)
		return theta, "direct-anytm", true, nil

	case "orn1":
		n := sc.spec.N
		rows := make([]*big.Rat, n)
		cols := make([]*big.Rat, n)
		for i := 0; i < n; i++ {
			rows[i], cols[i] = new(big.Rat), new(big.Rat)
		}
		for s := range sc.ratTM {
			for d, r := range sc.ratTM[s] {
				if r != nil {
					rows[s].Add(rows[s], r)
					cols[d].Add(cols[d], r)
				}
			}
		}
		var worst *big.Rat
		v := new(big.Rat)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				v.Add(rows[a], cols[b])
				if r := sc.ratTM[a][b]; r != nil {
					v.Sub(v, r)
				}
				if v.Sign() > 0 && (worst == nil || v.Cmp(worst) > 0) {
					worst = new(big.Rat).Set(v)
				}
			}
		}
		if worst == nil {
			return nil, "", false, fmt.Errorf("oracle: empty traffic matrix")
		}
		theta := new(big.Rat).Quo(big.NewRat(1, 1), worst)
		return theta, "vlb-anytm", true, nil

	case "orn2":
		r, uniform := uniformOffDiag(sc.ratTM)
		if !uniform {
			return nil, "", false, nil
		}
		a := int64(sc.orn.Base)
		h := int64(sc.orn.H)
		n := int64(sc.spec.N)
		// θ = a / (h(a−1) · 2·r·(n−1))
		load := new(big.Rat).Mul(r, big.NewRat(2*(n-1), 1))
		load.Mul(load, big.NewRat(h*(a-1), 1))
		theta := new(big.Rat).Quo(big.NewRat(a, 1), load)
		return theta, "orn-uniform", true, nil

	case "sorn":
		tI, tX, classUniform := sornClassThetas(sc)
		if !classUniform {
			return nil, "", false, nil
		}
		var theta *big.Rat
		for _, t := range []*big.Rat{tI, tX} {
			if t != nil && (theta == nil || t.Cmp(theta) < 0) {
				theta = t
			}
		}
		if theta == nil {
			return nil, "", false, fmt.Errorf("oracle: empty traffic matrix")
		}
		return theta, "sorn-classuniform", true, nil
	}
	return nil, "", false, nil
}

// sornClassThetas returns the capacity/load ratio of the intra-link and
// inter-link classes separately for a class-uniform SORN scenario (nil
// for a class carrying no load); θ is their min, and the netsim
// comparability guard uses their ratio. classUniform is false when the
// matrix is not uniform within classes.
func sornClassThetas(sc *scenario) (tIntra, tInter *big.Rat, classUniform bool) {
	rI, rX, ok := classUniformRates(sc)
	if !ok {
		return nil, nil, false
	}
	k := int64(sc.spec.N / sc.spec.Nc)
	n := int64(sc.spec.N)
	p := int64(sc.sched.Period())
	// loadIntra = rI(2k−3)/(k−1) + 2·rX(n−k)/k
	loadIntra := new(big.Rat).Mul(rI, big.NewRat(2*k-3, k-1))
	loadIntra.Add(loadIntra, new(big.Rat).Mul(rX, big.NewRat(2*(n-k), k)))
	// loadInter = k·rX
	loadInter := new(big.Rat).Mul(rX, big.NewRat(k, 1))
	if loadIntra.Sign() > 0 {
		tIntra = new(big.Rat).Quo(big.NewRat(int64(sc.sorn.WIntra), p), loadIntra)
	}
	if loadInter.Sign() > 0 {
		tInter = new(big.Rat).Quo(big.NewRat(int64(sc.sorn.WInter), p), loadInter)
	}
	return tIntra, tInter, true
}

// maxRat returns the largest entry of a rational matrix, nil when empty.
func maxRat(m [][]*big.Rat) *big.Rat {
	var max *big.Rat
	for s := range m {
		for _, r := range m[s] {
			if r != nil && (max == nil || r.Cmp(max) > 0) {
				max = r
			}
		}
	}
	return max
}

// uniformOffDiag reports whether every off-diagonal entry is one equal
// positive rate, returning it.
func uniformOffDiag(m [][]*big.Rat) (*big.Rat, bool) {
	var r *big.Rat
	for s := range m {
		for d, e := range m[s] {
			if s == d {
				continue
			}
			if e == nil {
				return nil, false
			}
			if r == nil {
				r = e
			} else if e.Cmp(r) != 0 {
				return nil, false
			}
		}
	}
	return r, r != nil
}

// classUniformRates reports whether the scenario's rational matrix is
// uniform within the intra-clique and inter-clique classes (the locality
// family shape), returning both per-pair rates. Zero rates are allowed
// in either class (x = 0 or x = 1 corners); rI/rX are then rational 0.
func classUniformRates(sc *scenario) (rI, rX *big.Rat, ok bool) {
	rI, rX = new(big.Rat), new(big.Rat)
	seenI, seenX := false, false
	for s := range sc.ratTM {
		for d, e := range sc.ratTM[s] {
			if s == d {
				continue
			}
			val := e
			if val == nil {
				val = new(big.Rat)
			}
			if sc.cliques.SameClique(s, d) {
				if !seenI {
					rI.Set(val)
					seenI = true
				} else if val.Cmp(rI) != 0 {
					return nil, nil, false
				}
			} else {
				if !seenX {
					rX.Set(val)
					seenX = true
				} else if val.Cmp(rX) != 0 {
					return nil, nil, false
				}
			}
		}
	}
	return rI, rX, seenI || seenX
}
