package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryGetOrCreateAndOrder(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("delivered")
	g := r.Gauge("backlog")
	rt := r.Rate("thpt", 4)
	if r.Counter("delivered") != c || r.Gauge("backlog") != g || r.Rate("thpt", 99) != rt {
		t.Fatal("get-or-create returned a different metric on second lookup")
	}
	if len(rt.buf) != 4 {
		t.Fatalf("existing rate window resized to %d", len(rt.buf))
	}
	names := r.Names()
	want := []string{"delivered", "backlog", "thpt"}
	if len(names) != len(want) {
		t.Fatalf("names %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registration order %v, want %v", names, want)
		}
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r := NewRegistry()
	r.Counter("m")
	r.Gauge("m")
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(3)
	c.Inc()
	if c.Total() != 4 {
		t.Fatalf("counter %d", c.Total())
	}
	g := r.Gauge("g")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge %f", g.Value())
	}
}

func TestRateWindowedMean(t *testing.T) {
	r := NewRegistry().Rate("r", 3)
	if r.Value() != 0 {
		t.Fatalf("empty rate %f", r.Value())
	}
	r.Observe(1)
	r.Observe(2)
	if r.Value() != 1.5 {
		t.Fatalf("partial window mean %f", r.Value())
	}
	r.Observe(3)
	r.Observe(10) // evicts the 1
	if r.Value() != 5 {
		t.Fatalf("full window mean %f, want 5", r.Value())
	}
	r.reset()
	if r.Value() != 0 {
		t.Fatalf("reset rate %f", r.Value())
	}
}

func TestTraceRingWrapAndDropped(t *testing.T) {
	o := New(Options{TraceCap: 4})
	for i := 0; i < 6; i++ {
		o.Emit(Event{Slot: int64(i), Type: EvFlowStart})
	}
	evs := o.Events()
	if len(evs) != 4 {
		t.Fatalf("%d events retained", len(evs))
	}
	for i, e := range evs {
		if e.Slot != int64(i+2) {
			t.Fatalf("event %d has slot %d, want %d (oldest-first after wrap)", i, e.Slot, i+2)
		}
	}
	if o.TraceDropped() != 2 {
		t.Fatalf("dropped %d, want 2", o.TraceDropped())
	}
}

// TestTraceControlEventsSurviveFlowFlood pins the two-tier contract: a
// saturated run's flow chatter wraps its own ring without evicting the
// rare control events, and Events() still interleaves the survivors in
// emission order.
func TestTraceControlEventsSurviveFlowFlood(t *testing.T) {
	o := New(Options{TraceCap: 8})
	o.Emit(Event{Slot: 0, Type: EvRunBegin, Note: "before"})
	for i := 0; i < 100; i++ {
		o.Emit(Event{Slot: int64(i), Type: EvFlowStart, Flow: int64(i)})
	}
	o.Emit(Event{Slot: 50, Type: EvReplan, Epoch: 1})
	for i := 100; i < 200; i++ {
		o.Emit(Event{Slot: int64(i), Type: EvFlowFinish, Flow: int64(i)})
	}
	o.Emit(Event{Slot: 199, Type: EvReconfigCommit, Cells: 3})
	evs := o.Events()
	if len(evs) != 8+3 {
		t.Fatalf("%d events retained, want 8 flow + 3 control", len(evs))
	}
	// Control events survive in order despite 200 flow events against an
	// 8-entry tier.
	var ctrl []string
	for _, e := range evs {
		if e.Type != EvFlowStart && e.Type != EvFlowFinish {
			ctrl = append(ctrl, e.Type)
		}
	}
	if len(ctrl) != 3 || ctrl[0] != EvRunBegin || ctrl[1] != EvReplan || ctrl[2] != EvReconfigCommit {
		t.Fatalf("control events %v", ctrl)
	}
	// Emission order: the replan (slot 50) precedes every retained flow
	// event (the newest 8 finishes, slots 192..199), and the commit is
	// last.
	if evs[0].Type != EvRunBegin || evs[1].Type != EvReplan || evs[len(evs)-1].Type != EvReconfigCommit {
		t.Fatalf("merge order wrong: first=%s second=%s last=%s", evs[0].Type, evs[1].Type, evs[len(evs)-1].Type)
	}
	if o.TraceDropped() != 192 {
		t.Fatalf("dropped %d, want 192", o.TraceDropped())
	}
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	o := New(Options{})
	want := []Event{
		{Slot: 5, Type: EvFlowStart, Flow: 1, Src: 0, Dst: 3, Cells: 16},
		{Slot: 9, Type: EvReplan, Epoch: 2, Src: -1, Dst: -1, Q: 4.5, X: 0.56, Nc: 8, Val: 0.41},
		{Slot: 12, Type: EvReconfigCommit, Src: -1, Dst: -1, Cells: 7, Note: "sorn"},
	}
	for _, e := range want {
		o.Emit(e)
	}
	var buf bytes.Buffer
	if err := o.WriteTraceJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(want) {
		t.Fatalf("%d lines", len(lines))
	}
	for i, line := range lines {
		var got Event
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("line %d: %+v != %+v", i, got, want[i])
		}
	}
}

func TestTraceCSVParses(t *testing.T) {
	o := New(Options{})
	o.Emit(Event{Slot: 1, Type: EvFailNode, Src: 9, Dst: -1, Cells: 40})
	o.Emit(Event{Slot: 2, Type: EvPhaseBegin, Src: -1, Dst: -1, Note: "shifted, stale"})
	var buf bytes.Buffer
	if err := o.WriteTraceCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 { // header + 2 events
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][0] != "slot" || recs[1][2] != EvFailNode || recs[2][11] != "shifted, stale" {
		t.Fatalf("unexpected rows %v", recs)
	}
}

func TestSeriesSnapshotsAndCSV(t *testing.T) {
	o := New(Options{MetricsEvery: 2})
	c := o.Counter("delivered")
	g := o.Gauge("backlog")
	for slot := int64(0); slot < 5; slot++ {
		c.Add(10)
		g.Set(float64(slot))
		o.EndSlot(slot)
	}
	o.StartRun("phase2")
	c.Add(5)
	o.EndSlot(6)

	rows := o.SeriesRows()
	if len(rows) != 4 { // slots 0, 2, 4, 6
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1][1] != "2" || rows[1][2] != "30" {
		t.Fatalf("slot-2 row %v", rows[1])
	}
	if rows[3][0] != "phase2" || rows[3][2] != "55" {
		t.Fatalf("labeled row %v", rows[3])
	}
	var buf bytes.Buffer
	if err := o.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[0][2] != "delivered" || recs[0][3] != "backlog" {
		t.Fatalf("CSV %v", recs)
	}
}

func TestSeriesRingBounded(t *testing.T) {
	o := New(Options{MetricsEvery: 1, SeriesCap: 3})
	o.Counter("c")
	for slot := int64(0); slot < 10; slot++ {
		o.EndSlot(slot)
	}
	rows := o.SeriesRows()
	if len(rows) != 3 || rows[0][1] != "7" || rows[2][1] != "9" {
		t.Fatalf("rows %v", rows)
	}
}

func TestPhaseTiming(t *testing.T) {
	o := New(Options{})
	o.EnsureShards(3)
	start := o.Clock()
	if start == 0 {
		t.Fatal("enabled Clock returned 0")
	}
	o.AddPhase(PhaseTransmit, 0, start)
	o.AddPhase(PhaseTransmit, 2, start)
	o.AddPhase(PhaseMerge, 0, o.Clock())
	sts := o.PhaseStats()
	if len(sts) != 2 {
		t.Fatalf("%d phases reported", len(sts))
	}
	tx := sts[0]
	if tx.Phase != "transmit" || tx.Calls != 2 || len(tx.ShardNS) != 3 {
		t.Fatalf("transmit stat %+v", tx)
	}
	if tx.ShardNS[0] < 0 || tx.ShardNS[1] != 0 || tx.TotalNS < 0 {
		t.Fatalf("shard accounting %+v", tx)
	}
	var buf bytes.Buffer
	if err := o.WritePhaseReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "transmit") {
		t.Fatalf("report %q", buf.String())
	}
}

// TestNilObserverInert drives the whole API through a nil Observer: the
// disabled layer must be safe everywhere netsim calls it.
func TestNilObserverInert(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer enabled")
	}
	o.Counter("c").Add(1)
	o.Counter("c").Inc()
	o.Gauge("g").Set(1)
	o.Rate("r").Observe(1)
	if o.Counter("c").Total() != 0 || o.Gauge("g").Value() != 0 || o.Rate("r").Value() != 0 {
		t.Fatal("nil metrics accumulated")
	}
	o.Emit(Event{Type: EvFlowStart})
	o.StartRun("x")
	o.EndSlot(0)
	o.EnsureShards(4)
	o.AddPhase(PhaseLand, 0, o.Clock())
	if o.Clock() != 0 || o.Events() != nil || o.TraceDropped() != 0 {
		t.Fatal("nil observer recorded something")
	}
	if o.PhaseStats() != nil || o.SeriesHeader() != nil || o.SeriesRows() != nil {
		t.Fatal("nil observer reported something")
	}
	var buf bytes.Buffer
	if err := o.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteTraceJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteTraceCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := o.WritePhaseReport(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil observer wrote %q", buf.String())
	}
	var reg *Registry
	if reg.Counter("x") != nil || reg.Gauge("x") != nil || reg.Rate("x", 2) != nil || reg.Names() != nil {
		t.Fatal("nil registry created metrics")
	}
}

func TestRateObserveZeros(t *testing.T) {
	// ObserveZeros(k) must be indistinguishable from k Observe(0) calls
	// in every regime: partial fill, wrap within the window, and a bulk
	// skip far larger than the window (the clear fast path) — including
	// the ring index, so later observations land in the same cells.
	for _, k := range []int64{0, -3, 1, 2, 3, 4, 7, 100} {
		bulk := NewRegistry().Rate("b", 4)
		loop := NewRegistry().Rate("l", 4)
		for _, r := range []*Rate{bulk, loop} {
			r.Observe(8)
			r.Observe(4)
		}
		bulk.ObserveZeros(k)
		for i := int64(0); i < k; i++ {
			loop.Observe(0)
		}
		bulk.Observe(6)
		loop.Observe(6)
		if bulk.Value() != loop.Value() || bulk.idx != loop.idx || bulk.n != loop.n {
			t.Fatalf("k=%d: bulk (val %f idx %d n %d) != loop (val %f idx %d n %d)",
				k, bulk.Value(), bulk.idx, bulk.n, loop.Value(), loop.idx, loop.n)
		}
	}
	var nilRate *Rate
	nilRate.ObserveZeros(5) // must not panic
}

func TestNextSnapshot(t *testing.T) {
	// Power-of-two and non-power-of-two cadences: NextSnapshot(from) is
	// the first slot >= from where SnapshotDue holds.
	for _, every := range []int64{1, 5, 7, 64} {
		o := New(Options{MetricsEvery: every})
		for from := int64(0); from < 3*every+1; from++ {
			got, ok := o.NextSnapshot(from)
			if !ok {
				t.Fatalf("every=%d from=%d: not ok", every, from)
			}
			if got < from || !o.SnapshotDue(got) {
				t.Fatalf("every=%d from=%d: next %d not a due slot at/after from", every, from, got)
			}
			for s := from; s < got; s++ {
				if o.SnapshotDue(s) {
					t.Fatalf("every=%d from=%d: slot %d due before reported next %d", every, from, s, got)
				}
			}
		}
	}
	var nilObs *Observer
	if _, ok := nilObs.NextSnapshot(0); ok {
		t.Fatal("nil observer reported a snapshot slot")
	}
}
