package obs

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// metric is what every registry entry provides: a stable name and a
// current value for series snapshots.
type metric interface {
	Name() string
	Value() float64
}

// Counter is a monotonically increasing metric (cells delivered, flows
// completed). Methods on a nil Counter are no-ops, so a disabled layer
// needs no per-site guards beyond the registration branch.
type Counter struct {
	name string
	v    int64
}

// Name returns the registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v += d
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Total returns the accumulated count.
func (c *Counter) Total() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Value returns the count as a float64 (the metric interface).
func (c *Counter) Value() float64 { return float64(c.Total()) }

// Gauge is a point-in-time level (backlog, cells in flight).
type Gauge struct {
	name string
	v    float64
}

// Name returns the registered name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Set records the current level.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the last recorded level.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Rate is a windowed mean of per-slot observations — e.g. delivered
// cells per node per slot averaged over the last window slots, which is
// the slot-resolved throughput series the A5 ablation plots. Observe it
// once per slot; Value averages the occupied window (fewer entries while
// warming up, 0 before the first observation).
type Rate struct {
	name   string
	buf    []float64
	n, idx int
}

// Name returns the registered name.
func (r *Rate) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Observe records one per-slot observation.
func (r *Rate) Observe(v float64) {
	if r == nil {
		return
	}
	r.buf[r.idx] = v
	// Branch, not modulo: this runs every simulated slot and an integer
	// division would dominate the instrumented hot-path budget.
	if r.idx++; r.idx == len(r.buf) {
		r.idx = 0
	}
	if r.n < len(r.buf) {
		r.n++
	}
}

// ObserveZeros records k consecutive zero observations, bit-exactly as
// k calls to Observe(0) would (same buffer contents, occupancy, and
// cursor). The quiescence fast-forward covers skipped slots with it:
// once k reaches the window size the whole run of zeros is O(window),
// not O(k).
func (r *Rate) ObserveZeros(k int64) {
	if r == nil || k <= 0 || len(r.buf) == 0 {
		return
	}
	if k >= int64(len(r.buf)) {
		clear(r.buf)
		r.n = len(r.buf)
		r.idx = int((int64(r.idx) + k) % int64(len(r.buf)))
		return
	}
	for ; k > 0; k-- {
		r.Observe(0)
	}
}

// Value returns the mean over the occupied window.
func (r *Rate) Value() float64 {
	if r == nil || r.n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < r.n; i++ {
		sum += r.buf[i]
	}
	return sum / float64(r.n)
}

// reset empties the window (a new run starts; see Observer.StartRun).
func (r *Rate) reset() {
	r.n, r.idx = 0, 0
}

// Registry is an ordered, typed collection of metrics. Accessors are
// get-or-create and panic on a kind mismatch (a programming error, like
// a malformed format string). Iteration follows registration order, so
// emission is deterministic without sorting — and identical across
// worker counts, since registration happens at simulator construction.
type Registry struct {
	order  []metric
	byName map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]metric{}}
}

// Counter returns the named counter, creating it if absent.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if m, ok := r.byName[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q is not a counter", name))
		}
		return c
	}
	c := &Counter{name: name}
	r.register(c)
	return c
}

// Gauge returns the named gauge, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if m, ok := r.byName[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q is not a gauge", name))
		}
		return g
	}
	g := &Gauge{name: name}
	r.register(g)
	return g
}

// Rate returns the named windowed rate, creating it with the given
// window if absent (the window of an existing rate is kept).
func (r *Registry) Rate(name string, window int) *Rate {
	if r == nil {
		return nil
	}
	if m, ok := r.byName[name]; ok {
		rt, ok := m.(*Rate)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q is not a rate", name))
		}
		return rt
	}
	if window < 1 {
		window = 1
	}
	rt := &Rate{name: name, buf: make([]float64, window)}
	r.register(rt)
	return rt
}

// Names returns the metric names in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.order))
	for i, m := range r.order {
		out[i] = m.Name()
	}
	return out
}

func (r *Registry) register(m metric) {
	r.order = append(r.order, m)
	r.byName[m.Name()] = m
}

// seriesRow is one time-series snapshot: every registered metric's value
// at a slot, under the current run label.
type seriesRow struct {
	label string
	slot  int64
	vals  []float64
}

// SeriesHeader returns the metrics CSV header: run, slot, then every
// metric name in registration order.
func (o *Observer) SeriesHeader() []string {
	if o == nil {
		return nil
	}
	return append([]string{"run", "slot"}, o.reg.Names()...)
}

// SeriesRows returns the retained time-series rows, oldest first, as
// strings aligned with SeriesHeader. Rows snapshotted before a metric
// was registered pad the missing columns with "".
func (o *Observer) SeriesRows() [][]string {
	if o == nil {
		return nil
	}
	width := len(o.reg.order)
	rows := o.rows.items()
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		row := make([]string, 2+width)
		row[0] = r.label
		row[1] = strconv.FormatInt(r.slot, 10)
		for i := 0; i < width; i++ {
			if i < len(r.vals) {
				row[2+i] = strconv.FormatFloat(r.vals[i], 'g', -1, 64)
			}
		}
		out = append(out, row)
	}
	return out
}

// WriteMetricsCSV emits the slot-resolved time series as CSV with a
// header row.
func (o *Observer) WriteMetricsCSV(w io.Writer) error {
	if o == nil {
		return nil
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(o.SeriesHeader()); err != nil {
		return err
	}
	for _, row := range o.SeriesRows() {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
