package obs

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// Event types the simulator and control plane emit. The trace schema is
// one flat Event struct rather than per-type payloads so JSONL/CSV rows
// stay uniform and greppable.
const (
	// EvFlowStart / EvFlowFinish bracket a flow: Flow/Src/Dst/Cells
	// describe it, and on finish Val is the completion time in slots.
	EvFlowStart  = "flow_start"
	EvFlowFinish = "flow_finish"
	// EvFailLink marks a FailLink(Src, Dst) injection.
	EvFailLink = "fail_link"
	// EvFailNode marks a FailNode(Src) injection; Cells is how many
	// queued cells the failure lost.
	EvFailNode = "fail_node"
	// EvRepairLink / EvRepairNode mark the inverse operations: the
	// directed link Src→Dst (or node Src) returns to service. Repairs
	// never carry cells — a failed node's queues were purged at failure
	// time, so repair starts from an empty state.
	EvRepairLink = "repair_link"
	EvRepairNode = "repair_node"
	// EvFallback / EvRecover bracket the control plane's degraded mode:
	// on fallback the controller abandons its demand-aware plan for the
	// uniform oblivious schedule (Note says why, Epoch the decision
	// ordinal), and on recovery it resumes demand-aware planning after
	// the hysteresis count of consecutively healthy epochs (Val).
	EvFallback = "fallback"
	EvRecover  = "recover"
	// EvPlanError records a failed PlanNext/Apply attempt and the
	// retry-with-backoff decision: Note carries the error, Val the number
	// of epochs until the next attempt.
	EvPlanError = "plan_error"
	// EvReconfigBegin / EvReconfigCommit bracket a schedule swap; on
	// commit Cells is the number of queued cells re-routed. EvReconfigDrain
	// reports a graceful update's drain: Val is the slots spent draining,
	// Cells the stranded cells force-re-routed at expiry.
	EvReconfigBegin  = "reconfig_begin"
	EvReconfigDrain  = "reconfig_drain"
	EvReconfigCommit = "reconfig_commit"
	// EvReplan is a control-plane decision: X is the estimated locality,
	// Q the chosen oversubscription q*, Nc the clique count, Val the
	// predicted worst-case throughput, Epoch the decision ordinal.
	EvReplan = "replan"
	// EvPhaseBegin marks an experiment phase boundary (Note names it).
	EvPhaseBegin = "phase_begin"
	// EvRunBegin marks a new run on a reused Observer (Note is the label).
	EvRunBegin = "run_begin"
)

// Event is one trace entry. Slot is the simulation slot it happened at
// (control-plane events use Epoch instead and carry Src/Dst −1). Fields
// that do not apply to a type are zero and omitted from JSONL.
type Event struct {
	Slot  int64   `json:"slot"`
	Epoch int64   `json:"epoch,omitempty"`
	Type  string  `json:"type"`
	Flow  int64   `json:"flow,omitempty"`
	Src   int     `json:"src"`
	Dst   int     `json:"dst"`
	Cells int64   `json:"cells,omitempty"`
	Q     float64 `json:"q,omitempty"`
	X     float64 `json:"x,omitempty"`
	Nc    int     `json:"nc,omitempty"`
	Val   float64 `json:"val,omitempty"`
	Note  string  `json:"note,omitempty"`
}

// traceEntry tags an event with its emission ordinal so the two trace
// tiers can be merged back into emission order on read.
type traceEntry struct {
	seq int64
	e   Event
}

// Trace is a bounded event store with two tiers: high-rate flow
// lifecycle events and the rare control events (failures,
// reconfigurations, replans, run/phase marks) live in separate rings of
// TraceCap entries each. A long saturated run emits flow events far
// faster than control events, and with a single ring the flow chatter
// evicts exactly the entries a reader needs to interpret the series —
// the tiers keep eviction pressure within a class. Events() merges the
// tiers back into emission order; both rings grow lazily, so the
// control tier's generous bound costs nothing while control events stay
// rare.
type Trace struct {
	flows ring[traceEntry]
	ctrl  ring[traceEntry]
	seq   int64
}

func newTrace(capacity int) *Trace {
	return &Trace{
		flows: newRing[traceEntry](capacity),
		ctrl:  newRing[traceEntry](capacity),
	}
}

func (t *Trace) add(e Event) {
	t.seq++
	en := traceEntry{seq: t.seq, e: e}
	if e.Type == EvFlowStart || e.Type == EvFlowFinish {
		t.flows.add(en)
	} else {
		t.ctrl.add(en)
	}
}

// Events returns the retained events in emission order, oldest first.
func (t *Trace) Events() []Event {
	a, b := t.flows.items(), t.ctrl.items()
	out := make([]Event, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].seq < b[j].seq {
			out = append(out, a[i].e)
			i++
		} else {
			out = append(out, b[j].e)
			j++
		}
	}
	for ; i < len(a); i++ {
		out = append(out, a[i].e)
	}
	for ; j < len(b); j++ {
		out = append(out, b[j].e)
	}
	return out
}

// Dropped returns how many events were overwritten across both tiers.
func (t *Trace) Dropped() int64 { return t.flows.dropped + t.ctrl.dropped }

// WriteTraceJSONL emits the retained events as JSON Lines, oldest
// first.
func (o *Observer) WriteTraceJSONL(w io.Writer) error {
	if o == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range o.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// traceCSVHeader is the fixed column set of the CSV trace emitter.
var traceCSVHeader = []string{
	"slot", "epoch", "type", "flow", "src", "dst", "cells", "q", "x", "nc", "val", "note",
}

// WriteTraceCSV emits the retained events as CSV with a header row.
func (o *Observer) WriteTraceCSV(w io.Writer) error {
	if o == nil {
		return nil
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(traceCSVHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, e := range o.Events() {
		row := []string{
			strconv.FormatInt(e.Slot, 10),
			strconv.FormatInt(e.Epoch, 10),
			e.Type,
			strconv.FormatInt(e.Flow, 10),
			strconv.Itoa(e.Src),
			strconv.Itoa(e.Dst),
			strconv.FormatInt(e.Cells, 10),
			f(e.Q), f(e.X),
			strconv.Itoa(e.Nc),
			f(e.Val),
			e.Note,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
