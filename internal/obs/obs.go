// Package obs is the simulator's observability layer: a typed metrics
// registry sampled into a slot-resolved time series, per-phase
// wall-clock timing, and a bounded ring-buffer event trace with JSONL
// and CSV emitters. It is stdlib-only, like the rest of the repository.
//
// Everything here sits strictly *outside* the deterministic simulation
// state: an Observer reads simulator counters and the wall clock but
// never feeds anything back, so a run with observability enabled
// produces bit-identical Stats to an uninstrumented run (enforced by
// TestObsNonPerturbation in internal/netsim). All methods are nil-safe —
// a nil *Observer is the disabled layer, and instrumentation sites pay
// one predictable branch.
//
// An Observer serves one simulation at a time (sequential reuse across
// runs is fine; see StartRun). Within a simulation, the netsim engine
// stages events per worker shard and merges them in fixed shard order at
// the slot barrier, and phase timings go to per-(phase, shard)
// accumulators with a unique writer each — so instrumented parallel runs
// are race-clean and the event stream and metric series are identical
// for every worker count. Only the wall-clock phase timings differ
// between runs, by construction.
package obs

import (
	"fmt"
	"io"
	"time"
)

// Phase identifies one stage of a simulation slot for wall-clock timing.
type Phase int

const (
	// PhaseInject is workload injection (top-ups, open-loop arrivals).
	PhaseInject Phase = iota
	// PhaseLand is the landing phase (arrivals leaving the delay line).
	PhaseLand
	// PhaseTransmit is the transmit phase (VOQ pops onto circuits).
	PhaseTransmit
	// PhaseMerge is the slot barrier folding shard staging together.
	PhaseMerge
	numPhases
)

// String names the phase for reports and CSV headers.
func (p Phase) String() string {
	switch p {
	case PhaseInject:
		return "inject"
	case PhaseLand:
		return "land"
	case PhaseTransmit:
		return "transmit"
	case PhaseMerge:
		return "merge"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Options configure an Observer. The zero value picks usable defaults.
type Options struct {
	// MetricsEvery is the series snapshot cadence in slots (default 64):
	// every MetricsEvery-th slot the value of every registered metric is
	// recorded as one time-series row.
	MetricsEvery int64
	// TraceCap bounds each event-trace tier (default 65536): flow
	// lifecycle events and rare control events (failures, reconfigs,
	// replans, run/phase marks) are ringed separately so flow chatter
	// cannot evict control events. Once a tier fills, its oldest events
	// are overwritten and counted in TraceDropped.
	TraceCap int
	// RateWindow is the window, in slots, of the windowed rates the
	// simulator registers (default 256).
	RateWindow int
	// SeriesCap bounds retained time-series rows (default 1<<20); the
	// oldest rows are overwritten once exceeded.
	SeriesCap int
	// TraceFlows enables per-flow lifecycle events (flow_start,
	// flow_finish). Off by default: at saturation a simulator emits
	// tens of these per slot, and the Event copies cost more than the
	// whole always-on metrics layer — rare events (failures,
	// reconfigurations, replans, run/phase marks) are always traced.
	TraceFlows bool
}

func (o Options) withDefaults() Options {
	if o.MetricsEvery <= 0 {
		o.MetricsEvery = 64
	}
	if o.TraceCap <= 0 {
		o.TraceCap = 1 << 16
	}
	if o.RateWindow <= 0 {
		o.RateWindow = 256
	}
	if o.SeriesCap <= 0 {
		o.SeriesCap = 1 << 20
	}
	return o
}

// Observer is the root handle instrumented code writes to. A nil
// Observer is valid and inert.
type Observer struct {
	opts  Options
	reg   *Registry
	trace *Trace
	label string
	rows  ring[seriesRow]

	// everyMask is MetricsEvery−1 when MetricsEvery is a power of two,
	// else 0: SnapshotDue runs once per simulated slot, and a mask test
	// is markedly cheaper than an int64 division on that path.
	everyMask int64

	// Per-(phase, shard) wall-clock accumulators. Each (p, shard) entry
	// has exactly one writer during a parallel phase, so AddPhase needs
	// no locks; EnsureShards must size the slices before goroutines run.
	phaseNS    [numPhases][]int64
	phaseCalls [numPhases][]int64
}

// New builds an enabled Observer.
func New(opts Options) *Observer {
	opts = opts.withDefaults()
	o := &Observer{
		opts:  opts,
		reg:   NewRegistry(),
		trace: newTrace(opts.TraceCap),
		rows:  newRing[seriesRow](opts.SeriesCap),
	}
	if e := opts.MetricsEvery; e&(e-1) == 0 {
		o.everyMask = e - 1
	}
	return o
}

// TraceFlows reports whether per-flow lifecycle events should be
// emitted. False on a nil Observer.
func (o *Observer) TraceFlows() bool {
	return o != nil && o.opts.TraceFlows
}

// Enabled reports whether the observer records anything.
func (o *Observer) Enabled() bool { return o != nil }

// Registry exposes the metric registry (nil on a nil Observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Counter returns (creating if needed) the named counter.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(name)
}

// Gauge returns (creating if needed) the named gauge.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.reg.Gauge(name)
}

// Rate returns (creating if needed) the named windowed rate, using the
// Observer's configured window.
func (o *Observer) Rate(name string) *Rate {
	if o == nil {
		return nil
	}
	return o.reg.Rate(name, o.opts.RateWindow)
}

// Emit appends an event to the bounded trace.
func (o *Observer) Emit(e Event) {
	if o == nil {
		return
	}
	o.trace.add(e)
}

// Events returns the retained trace, oldest first.
func (o *Observer) Events() []Event {
	if o == nil {
		return nil
	}
	return o.trace.Events()
}

// TraceDropped returns how many events the ring overwrote.
func (o *Observer) TraceDropped() int64 {
	if o == nil {
		return 0
	}
	return o.trace.Dropped()
}

// StartRun labels subsequent time-series rows and resets windowed rates,
// so one Observer can carry several sequential simulations (a load
// sweep, the adaptation phases) with distinguishable rows. It emits an
// EvRunBegin event carrying the label.
func (o *Observer) StartRun(label string) {
	if o == nil {
		return
	}
	o.label = label
	for _, m := range o.reg.order {
		if r, ok := m.(*Rate); ok {
			r.reset()
		}
	}
	o.Emit(Event{Type: EvRunBegin, Src: -1, Dst: -1, Note: label})
}

// SnapshotDue reports whether EndSlot(slot) would snapshot a series
// row, so callers can defer point-in-time gauge computation (a backlog
// sweep, an in-flight sum) to exactly the slots where the value is
// read. False on a nil Observer.
func (o *Observer) SnapshotDue(slot int64) bool {
	if o == nil {
		return false
	}
	if o.everyMask != 0 {
		return slot&o.everyMask == 0
	}
	return slot%o.opts.MetricsEvery == 0
}

// NextSnapshot returns the first slot at or after `from` at which
// EndSlot would snapshot a series row — the slots a quiescence
// fast-forward must account for rather than skip. ok is false on a nil
// Observer.
func (o *Observer) NextSnapshot(from int64) (slot int64, ok bool) {
	if o == nil {
		return 0, false
	}
	e := o.opts.MetricsEvery
	if rem := from % e; rem != 0 {
		return from + e - rem, true
	}
	return from, true
}

// EndSlot is the per-slot hook: on every MetricsEvery-th slot it
// snapshots all registered metrics into one time-series row.
func (o *Observer) EndSlot(slot int64) {
	if o == nil {
		return
	}
	if slot%o.opts.MetricsEvery != 0 {
		return
	}
	vals := make([]float64, len(o.reg.order))
	for i, m := range o.reg.order {
		vals[i] = m.Value()
	}
	o.rows.add(seriesRow{label: o.label, slot: slot, vals: vals})
}

// Clock returns the wall clock in nanoseconds, or 0 on a nil Observer.
// Pair it with AddPhase around a phase body.
func (o *Observer) Clock() int64 {
	if o == nil {
		return 0
	}
	return nowNS()
}

// nowNS is the single place the observability layer reads real time;
// readings flow into phase-timing reports and never into simulation
// state, which is what keeps instrumented runs bit-identical.
func nowNS() int64 {
	//sornlint:ignore noderterm -- wall-clock phase timing is the point of obs; readings never reach simulation state
	return time.Now().UnixNano()
}

// EnsureShards sizes the per-shard timing accumulators for up to k
// shards. Call it from simulator construction, before any parallel
// AddPhase; growing the slices concurrently with readers would race.
func (o *Observer) EnsureShards(k int) {
	if o == nil {
		return
	}
	for p := range o.phaseNS {
		for len(o.phaseNS[p]) < k {
			o.phaseNS[p] = append(o.phaseNS[p], 0)
			o.phaseCalls[p] = append(o.phaseCalls[p], 0)
		}
	}
}

// AddPhase accumulates now−startNS into (phase, shard). Distinct shards
// write distinct entries, so concurrent calls from a sharded slot phase
// are race-free without locks.
func (o *Observer) AddPhase(p Phase, shard int, startNS int64) {
	if o == nil {
		return
	}
	o.phaseNS[p][shard] += nowNS() - startNS
	o.phaseCalls[p][shard]++
}

// PhaseStat is the accumulated wall-clock time of one slot phase.
type PhaseStat struct {
	Phase   string
	ShardNS []int64 // per-shard totals (index = shard)
	TotalNS int64
	Calls   int64
}

// PhaseStats reports accumulated per-phase wall-clock time, skipping
// phases that never ran.
func (o *Observer) PhaseStats() []PhaseStat {
	if o == nil {
		return nil
	}
	var out []PhaseStat
	for p := Phase(0); p < numPhases; p++ {
		st := PhaseStat{Phase: p.String()}
		for sh := range o.phaseNS[p] {
			st.ShardNS = append(st.ShardNS, o.phaseNS[p][sh])
			st.TotalNS += o.phaseNS[p][sh]
			st.Calls += o.phaseCalls[p][sh]
		}
		if st.Calls > 0 {
			out = append(out, st)
		}
	}
	return out
}

// WritePhaseReport renders PhaseStats as "phase total_ms calls" lines.
func (o *Observer) WritePhaseReport(w io.Writer) error {
	for _, st := range o.PhaseStats() {
		if _, err := fmt.Fprintf(w, "phase %-9s %10.3f ms  %8d calls\n",
			st.Phase, float64(st.TotalNS)/1e6, st.Calls); err != nil {
			return err
		}
	}
	return nil
}

// ring is a bounded FIFO that overwrites its oldest element when full.
// Storage grows on demand (append) up to the bound rather than being
// preallocated: default caps are generous (1<<20 series rows, 1<<16
// events) and eagerly zeroing tens of megabytes per Observer — then
// having the GC scan the mostly-empty, pointer-bearing buffers on every
// cycle — dominated the instrumented hot-path cost.
type ring[T any] struct {
	buf     []T
	bound   int
	next    int // overwrite cursor, meaningful once len(buf) == bound
	dropped int64
}

func newRing[T any](capacity int) ring[T] {
	return ring[T]{bound: capacity}
}

func (r *ring[T]) add(v T) {
	if r.bound == 0 {
		r.dropped++
		return
	}
	if len(r.buf) < r.bound {
		r.buf = append(r.buf, v)
		return
	}
	r.buf[r.next] = v
	if r.next++; r.next == r.bound {
		r.next = 0
	}
	r.dropped++
}

// items returns the retained elements, oldest first.
func (r *ring[T]) items() []T {
	out := make([]T, 0, len(r.buf))
	start := 0
	if len(r.buf) == r.bound {
		start = r.next
	}
	for i := 0; i < len(r.buf); i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}
