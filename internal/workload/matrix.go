// Package workload generates the traffic the paper evaluates against:
// locality-structured traffic matrices (a fraction x of each node's demand
// stays inside its clique — §3 "Spatial Locality"), gravity-style
// aggregated inter-clique matrices (§3 "Aggregated Traffic Matrices"),
// hotspot and permutation adversaries, and flow workloads with the
// published pFabric flow-size distributions [2] the paper's Figure 2(f)
// simulation uses.
package workload

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/schedule"
)

// Matrix is a traffic matrix of demand rates, in units of node bandwidth
// (1.0 = a node's full capacity). Rates[s][d] is the rate from s to d;
// the diagonal is zero. A saturation matrix has all row sums equal to 1.
type Matrix struct {
	N     int
	Rates [][]float64
}

// NewMatrix returns an all-zero matrix over n nodes.
func NewMatrix(n int) *Matrix {
	m := &Matrix{N: n, Rates: make([][]float64, n)}
	for i := range m.Rates {
		m.Rates[i] = make([]float64, n)
	}
	return m
}

// Validate checks shape, non-negativity, and a zero diagonal.
func (m *Matrix) Validate() error {
	if len(m.Rates) != m.N {
		return fmt.Errorf("workload: matrix has %d rows, want %d", len(m.Rates), m.N)
	}
	for s, row := range m.Rates {
		if len(row) != m.N {
			return fmt.Errorf("workload: row %d has %d cols, want %d", s, len(row), m.N)
		}
		for d, r := range row {
			if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				return fmt.Errorf("workload: rate[%d][%d] = %f invalid", s, d, r)
			}
			//sornlint:ignore floateq -- validates an exact-zero diagonal
			if s == d && r != 0 {
				return fmt.Errorf("workload: nonzero self traffic at node %d", s)
			}
		}
	}
	return nil
}

// RowSum returns the total demand sourced by node s.
func (m *Matrix) RowSum(s int) float64 {
	sum := 0.0
	for _, r := range m.Rates[s] {
		sum += r
	}
	return sum
}

// ColSum returns the total demand destined to node d.
func (m *Matrix) ColSum(d int) float64 {
	sum := 0.0
	for s := 0; s < m.N; s++ {
		sum += m.Rates[s][d]
	}
	return sum
}

// MaxRowSum returns the largest row sum (the binding source load).
func (m *Matrix) MaxRowSum() float64 {
	max := 0.0
	for s := 0; s < m.N; s++ {
		if v := m.RowSum(s); v > max {
			max = v
		}
	}
	return max
}

// Scale multiplies every rate by f in place and returns m.
func (m *Matrix) Scale(f float64) *Matrix {
	for _, row := range m.Rates {
		for d := range row {
			row[d] *= f
		}
	}
	return m
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	for s, row := range m.Rates {
		copy(c.Rates[s], row)
	}
	return c
}

// Relabel returns the matrix of the node-relabeled network: node u's
// demand becomes node perm[u]'s, so rate(s,d) moves to (perm[s], perm[d]).
// Entries are copied bit-for-bit — relabeling must not perturb a single
// rate, since the oracle harness checks throughput invariance under it.
func (m *Matrix) Relabel(perm []int) (*Matrix, error) {
	if len(perm) != m.N {
		return nil, fmt.Errorf("workload: relabel permutation over %d nodes, matrix over %d", len(perm), m.N)
	}
	seen := make([]bool, m.N)
	for u, v := range perm {
		if v < 0 || v >= m.N || seen[v] {
			return nil, fmt.Errorf("workload: invalid permutation entry %d->%d", u, v)
		}
		seen[v] = true
	}
	out := NewMatrix(m.N)
	for s := 0; s < m.N; s++ {
		for d := 0; d < m.N; d++ {
			out.Rates[perm[s]][perm[d]] = m.Rates[s][d]
		}
	}
	return out, nil
}

// IntraFraction returns the fraction of total demand that is intra-clique
// under the given partition — the locality ratio x of §3.
func (m *Matrix) IntraFraction(cl *schedule.Cliques) float64 {
	intra, total := 0.0, 0.0
	for s, row := range m.Rates {
		for d, r := range row {
			total += r
			if cl.SameClique(s, d) {
				intra += r
			}
		}
	}
	//sornlint:ignore floateq -- exact zero: the empty-matrix sentinel
	if total == 0 {
		return 0
	}
	return intra / total
}

// Aggregate returns the Nc×Nc clique-level traffic matrix — the
// aggregated pattern the paper argues is stable and predictable (§3).
func (m *Matrix) Aggregate(cl *schedule.Cliques) [][]float64 {
	nc := cl.NumCliques()
	agg := make([][]float64, nc)
	for i := range agg {
		agg[i] = make([]float64, nc)
	}
	for s, row := range m.Rates {
		for d, r := range row {
			agg[cl.CliqueOf(s)][cl.CliqueOf(d)] += r
		}
	}
	return agg
}

// Uniform returns the all-to-all saturation matrix: each node spreads one
// unit of demand evenly over the other n−1 nodes.
func Uniform(n int) *Matrix {
	m := NewMatrix(n)
	r := 1 / float64(n-1)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				m.Rates[s][d] = r
			}
		}
	}
	return m
}

// Locality returns the saturation matrix with locality ratio x: each node
// sends a fraction x of its unit demand uniformly inside its clique and
// 1−x uniformly to all nodes outside it. Cliques of size 1 send all
// demand outside regardless of x.
func Locality(cl *schedule.Cliques, x float64) (*Matrix, error) {
	if x < 0 || x > 1 {
		return nil, fmt.Errorf("workload: locality ratio %f outside [0,1]", x)
	}
	n := cl.N()
	m := NewMatrix(n)
	for s := 0; s < n; s++ {
		k := cl.Size(cl.CliqueOf(s))
		xIntra := x
		if k == 1 {
			xIntra = 0
		}
		if n == k {
			xIntra = 1
		}
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			if cl.SameClique(s, d) {
				m.Rates[s][d] = xIntra / float64(k-1)
			} else {
				m.Rates[s][d] = (1 - xIntra) / float64(n-k)
			}
		}
	}
	return m, nil
}

// Gravity returns a saturation matrix whose clique-to-clique aggregate
// follows the outer product of the given clique masses (a gravity model,
// as production DCNs report for cluster-level traffic [22]); traffic is
// uniform within each clique pair. mass must have one positive entry per
// clique.
func Gravity(cl *schedule.Cliques, mass []float64) (*Matrix, error) {
	nc := cl.NumCliques()
	if len(mass) != nc {
		return nil, fmt.Errorf("workload: %d masses for %d cliques", len(mass), nc)
	}
	total := 0.0
	for c, g := range mass {
		if g <= 0 {
			return nil, fmt.Errorf("workload: clique %d mass %f must be positive", c, g)
		}
		total += g
	}
	n := cl.N()
	m := NewMatrix(n)
	for s := 0; s < n; s++ {
		cs := cl.CliqueOf(s)
		// Node s's unit demand splits across destination cliques in
		// proportion to their mass (excluding itself from its own clique).
		for cd := 0; cd < nc; cd++ {
			members := cl.Members(cd)
			weight := mass[cd] / total
			count := len(members)
			if cd == cs {
				count--
			}
			if count == 0 {
				continue
			}
			per := weight / float64(count)
			for _, d := range members {
				if d != s {
					m.Rates[s][d] = per
				}
			}
		}
		// Renormalize the row to exactly 1 (self-exclusion skews it).
		if rs := m.RowSum(s); rs > 0 {
			for d := range m.Rates[s] {
				m.Rates[s][d] /= rs
			}
		}
	}
	return m, nil
}

// Hotspot returns a matrix where `hot` nodes receive a fraction frac of
// every node's demand (spread evenly over the hot set), with the
// remainder uniform — the bursty pattern reconfigurable designs struggle
// to chase (§3).
func Hotspot(n, hot int, frac float64) (*Matrix, error) {
	if hot < 1 || hot >= n {
		return nil, fmt.Errorf("workload: hot set size %d out of range for n=%d", hot, n)
	}
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("workload: hotspot fraction %f outside [0,1]", frac)
	}
	m := NewMatrix(n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			m.Rates[s][d] = (1 - frac) / float64(n-1)
			if d < hot {
				m.Rates[s][d] += frac / float64(hot)
			}
		}
		// Self-exclusion makes hot rows sum slightly differently;
		// renormalize to a saturation row.
		rs := m.RowSum(s)
		for d := range m.Rates[s] {
			m.Rates[s][d] /= rs
		}
	}
	return m, nil
}

// Permutation returns the adversarial matrix in which node i sends its
// entire unit demand to perm[i]. perm must be a fixed-point-free
// permutation.
func Permutation(perm []int) (*Matrix, error) {
	n := len(perm)
	seen := make([]bool, n)
	for s, d := range perm {
		if d < 0 || d >= n || d == s || seen[d] {
			return nil, fmt.Errorf("workload: invalid permutation at %d->%d", s, d)
		}
		seen[d] = true
	}
	m := NewMatrix(n)
	for s, d := range perm {
		m.Rates[s][d] = 1
	}
	return m, nil
}

// SampleDest draws a destination for src in proportion to its row rates.
func (m *Matrix) SampleDest(src int, r *rng.RNG) int {
	row := m.Rates[src]
	total := m.RowSum(src)
	if total <= 0 {
		panic(fmt.Sprintf("workload: node %d has no demand to sample", src))
	}
	u := r.Float64() * total
	acc := 0.0
	last := -1
	for d, rate := range row {
		if rate <= 0 {
			continue
		}
		acc += rate
		last = d
		if u < acc {
			return d
		}
	}
	return last
}

// PairAffinity returns a saturation matrix for partnered cliques: clique
// 2a exchanges most of its inter-clique demand with clique 2a+1 (and
// vice versa). Each node keeps fraction intra of its unit demand inside
// its clique, sends fraction partner to the partner clique, and spreads
// the remainder uniformly over all other nodes. The number of cliques
// must be even. This is the balanced, pairwise macro-pattern the §5
// "Expressivity" mechanism can encode into the schedule (unlike a hot
// receiver, which port limits forbid).
func PairAffinity(cl *schedule.Cliques, intra, partner float64) (*Matrix, error) {
	if intra < 0 || partner < 0 || intra+partner > 1 {
		return nil, fmt.Errorf("workload: bad affinity split intra=%f partner=%f", intra, partner)
	}
	nc := cl.NumCliques()
	if nc%2 != 0 {
		return nil, fmt.Errorf("workload: PairAffinity needs an even clique count, got %d", nc)
	}
	n := cl.N()
	m := NewMatrix(n)
	for s := 0; s < n; s++ {
		cs := cl.CliqueOf(s)
		ps := cs ^ 1 // partner clique
		own := cl.Members(cs)
		part := cl.Members(ps)
		rest := n - len(own) - len(part)
		for d := 0; d < n; d++ {
			if d == s {
				continue
			}
			switch {
			case cl.CliqueOf(d) == cs:
				m.Rates[s][d] = intra / float64(len(own)-1)
			case cl.CliqueOf(d) == ps:
				m.Rates[s][d] = partner / float64(len(part))
			default:
				m.Rates[s][d] = (1 - intra - partner) / float64(rest)
			}
		}
	}
	return m, nil
}

// FacebookLikeTM returns the locality matrix at the production-trace
// median the paper assumes (56% intra-clique traffic, [23]).
func FacebookLikeTM(cl *schedule.Cliques) (*Matrix, error) {
	return Locality(cl, 0.56)
}
