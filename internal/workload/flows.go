package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Flow is one transfer: Size cells from Src to Dst, arriving at the given
// absolute slot. One cell is one port-slot of transmission.
type Flow struct {
	ID      int
	Src     int
	Dst     int
	Size    int   // cells
	Arrival int64 // slot
}

// SizeDist samples flow sizes in cells.
type SizeDist interface {
	// Sample draws one flow size (>= 1 cell).
	Sample(r *rng.RNG) int
	// MeanCells is the distribution mean, used to convert offered load
	// into a flow arrival rate.
	MeanCells() float64
	// Name identifies the distribution in reports.
	Name() string
}

// FixedSize is a degenerate size distribution (every flow the same size).
type FixedSize int

// Sample implements SizeDist.
func (f FixedSize) Sample(r *rng.RNG) int { return int(f) }

// MeanCells implements SizeDist.
func (f FixedSize) MeanCells() float64 { return float64(f) }

// Name implements SizeDist.
func (f FixedSize) Name() string { return fmt.Sprintf("fixed-%d", int(f)) }

// cdfDist is an empirical flow-size distribution.
type cdfDist struct {
	name string
	cdf  *rng.EmpiricalCDF
}

// Sample implements SizeDist. Interpolated sizes are rounded up so the
// cumulative probability at each CDF knot is preserved exactly.
func (c *cdfDist) Sample(r *rng.RNG) int {
	v := int(math.Ceil(c.cdf.Sample(r)))
	if v < 1 {
		v = 1
	}
	return v
}

// MeanCells implements SizeDist.
func (c *cdfDist) MeanCells() float64 { return c.cdf.Mean() }

// Name implements SizeDist.
func (c *cdfDist) Name() string { return c.name }

// WebSearch returns the pFabric "web search" flow-size distribution [2]
// (the DCTCP search workload), in cells/packets — the standard heavy-
// tailed datacenter workload: median a handful of packets, tail in the
// tens of thousands.
func WebSearch() SizeDist {
	return &cdfDist{
		name: "pfabric-websearch",
		cdf: rng.NewEmpiricalCDF(
			[]float64{1, 6, 13, 19, 33, 53, 133, 667, 1333, 3333, 6667, 20000},
			[]float64{0, 0.15, 0.30, 0.45, 0.60, 0.70, 0.80, 0.90, 0.95, 0.98, 0.99, 1},
		),
	}
}

// DataMining returns the pFabric "data mining" flow-size distribution [2]
// (the VL2 workload): most flows are a few packets, but the tail carries
// most bytes.
func DataMining() SizeDist {
	return &cdfDist{
		name: "pfabric-datamining",
		cdf: rng.NewEmpiricalCDF(
			[]float64{1, 2, 3, 7, 267, 2107, 66667, 666667},
			[]float64{0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99, 1},
		),
	}
}

// Bimodal mixes a short-flow and a bulk-flow size, with the given share
// of flows short — modeling the paper's Table 1 assumption of a 75%
// short-flow traffic share from the production trace [23].
type Bimodal struct {
	ShortCells, BulkCells int
	ShortShare            float64
}

// Sample implements SizeDist.
func (b Bimodal) Sample(r *rng.RNG) int {
	if r.Float64() < b.ShortShare {
		return b.ShortCells
	}
	return b.BulkCells
}

// MeanCells implements SizeDist.
func (b Bimodal) MeanCells() float64 {
	return b.ShortShare*float64(b.ShortCells) + (1-b.ShortShare)*float64(b.BulkCells)
}

// Name implements SizeDist.
func (b Bimodal) Name() string { return "bimodal" }

// PoissonFlows generates an open-loop flow workload: per-source Poisson
// arrivals at the rate that offers `load` fraction of node bandwidth,
// destinations drawn from a traffic matrix, sizes from a SizeDist.
type PoissonFlows struct {
	TM   *Matrix
	Size SizeDist
	// Load is the offered load per node as a fraction of node bandwidth
	// (cells per slot), before any routing stretch.
	Load float64

	rng    *rng.RNG
	nextID int
}

// NewPoissonFlows builds the generator with its own RNG stream.
func NewPoissonFlows(tm *Matrix, size SizeDist, load float64, seed uint64) (*PoissonFlows, error) {
	if load <= 0 {
		return nil, fmt.Errorf("workload: load must be positive, got %f", load)
	}
	if err := tm.Validate(); err != nil {
		return nil, err
	}
	return &PoissonFlows{TM: tm, Size: size, Load: load, rng: rng.New(seed)}, nil
}

// Window generates all flows arriving in slots [from, to), sorted by
// arrival slot. Each source's arrival process is Poisson with rate
// load·rowSum(src)/meanSize flows per slot.
func (g *PoissonFlows) Window(from, to int64) []Flow {
	var out []Flow
	mean := g.Size.MeanCells()
	for src := 0; src < g.TM.N; src++ {
		rate := g.Load * g.TM.RowSum(src) / mean // flows per slot
		if rate <= 0 {
			continue
		}
		// Walk exponential inter-arrivals across the window.
		t := float64(from) + g.rng.Exp(rate)
		for t < float64(to) {
			g.nextID++
			out = append(out, Flow{
				ID:      g.nextID,
				Src:     src,
				Dst:     g.TM.SampleDest(src, g.rng),
				Size:    g.Size.Sample(g.rng),
				Arrival: int64(t),
			})
			t += g.rng.Exp(rate)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Arrival != out[j].Arrival {
			return out[i].Arrival < out[j].Arrival
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Capped truncates another size distribution at Max cells. Saturation-
// throughput experiments use it to bound the transient that whole-flow
// injection of heavy-tailed sizes would otherwise create (a 20000-cell
// flow enqueues at once); grouping of cells into flows does not change
// saturation throughput, only flow-level metrics. Build with NewCapped.
type Capped struct {
	Inner SizeDist
	Max   int
	mean  float64
}

// NewCapped wraps a size distribution with a cap, estimating the
// truncated mean from a fixed-seed sample so the load-to-arrival-rate
// conversion stays accurate.
func NewCapped(inner SizeDist, max int) *Capped {
	if max < 1 {
		panic(fmt.Sprintf("workload: cap %d < 1", max))
	}
	r := rng.New(0x5eed)
	const samples = 200000
	sum := 0.0
	for i := 0; i < samples; i++ {
		v := inner.Sample(r)
		if v > max {
			v = max
		}
		sum += float64(v)
	}
	return &Capped{Inner: inner, Max: max, mean: sum / samples}
}

// Sample implements SizeDist.
func (c *Capped) Sample(r *rng.RNG) int {
	v := c.Inner.Sample(r)
	if v > c.Max {
		return c.Max
	}
	return v
}

// MeanCells implements SizeDist.
func (c *Capped) MeanCells() float64 { return c.mean }

// Name implements SizeDist.
func (c *Capped) Name() string { return fmt.Sprintf("%s-cap%d", c.Inner.Name(), c.Max) }

// FacebookLike returns the flow-size mix Table 1 assumes from the
// production trace [23]: 75% of traffic volume in latency-sensitive
// short flows, the rest in bulk transfers. Sizes are in cells (one cell
// per port-slot).
func FacebookLike() SizeDist {
	return Bimodal{ShortCells: 16, BulkCells: 2000, ShortShare: 0.75}
}
