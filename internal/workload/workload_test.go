package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/schedule"
)

func mustCliques(t *testing.T, n, nc int) *schedule.Cliques {
	t.Helper()
	cl, err := schedule.EqualCliques(n, nc)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestUniformMatrix(t *testing.T) {
	m := Uniform(8)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		if math.Abs(m.RowSum(s)-1) > 1e-12 || math.Abs(m.ColSum(s)-1) > 1e-12 {
			t.Fatalf("node %d row=%f col=%f", s, m.RowSum(s), m.ColSum(s))
		}
	}
	if m.MaxRowSum() > 1+1e-12 {
		t.Fatal("max row sum > 1")
	}
}

func TestLocalityMatrix(t *testing.T) {
	cl := mustCliques(t, 32, 4)
	for _, x := range []float64{0, 0.25, 0.56, 1} {
		m, err := Locality(cl, x)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		if got := m.IntraFraction(cl); math.Abs(got-x) > 1e-9 {
			t.Errorf("x=%f: intra fraction = %f", x, got)
		}
		for s := 0; s < 32; s++ {
			if math.Abs(m.RowSum(s)-1) > 1e-9 {
				t.Errorf("x=%f: row %d sums to %f", x, s, m.RowSum(s))
			}
		}
	}
	if _, err := Locality(cl, 1.5); err == nil {
		t.Error("x > 1 accepted")
	}
}

func TestLocalitySingletonCliques(t *testing.T) {
	cl := mustCliques(t, 8, 8)
	m, err := Locality(cl, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	// All demand must be inter-clique; rows still saturate.
	if m.IntraFraction(cl) != 0 {
		t.Fatal("singleton cliques should have zero intra traffic")
	}
	for s := 0; s < 8; s++ {
		if math.Abs(m.RowSum(s)-1) > 1e-9 {
			t.Fatalf("row %d sums to %f", s, m.RowSum(s))
		}
	}
}

func TestLocalitySingleClique(t *testing.T) {
	cl := mustCliques(t, 8, 1)
	m, err := Locality(cl, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.IntraFraction(cl)-1) > 1e-12 {
		t.Fatal("single clique must have all-intra traffic")
	}
}

func TestAggregate(t *testing.T) {
	cl := mustCliques(t, 16, 4)
	m, _ := Locality(cl, 0.5)
	agg := m.Aggregate(cl)
	// Diagonal should hold 0.5*4 = 2 units total per clique row.
	for c := 0; c < 4; c++ {
		if math.Abs(agg[c][c]-2) > 1e-9 {
			t.Errorf("agg[%d][%d] = %f, want 2", c, c, agg[c][c])
		}
		rowTotal := 0.0
		for d := 0; d < 4; d++ {
			rowTotal += agg[c][d]
		}
		if math.Abs(rowTotal-4) > 1e-9 {
			t.Errorf("clique %d sources %f, want 4", c, rowTotal)
		}
	}
}

func TestGravity(t *testing.T) {
	cl := mustCliques(t, 16, 4)
	m, err := Gravity(cl, []float64{4, 2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 16; s++ {
		if math.Abs(m.RowSum(s)-1) > 1e-9 {
			t.Fatalf("row %d sums to %f", s, m.RowSum(s))
		}
	}
	// Clique 0 (mass 4) must attract roughly twice clique 1 (mass 2).
	agg := m.Aggregate(cl)
	col0, col1 := 0.0, 0.0
	for s := 0; s < 4; s++ {
		col0 += agg[s][0]
		col1 += agg[s][1]
	}
	if col0 < 1.5*col1 {
		t.Fatalf("gravity attraction wrong: col0=%f col1=%f", col0, col1)
	}
	if _, err := Gravity(cl, []float64{1, 2}); err == nil {
		t.Error("wrong mass count accepted")
	}
	if _, err := Gravity(cl, []float64{1, 2, 0, 1}); err == nil {
		t.Error("zero mass accepted")
	}
}

func TestHotspot(t *testing.T) {
	m, err := Hotspot(16, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Hot receivers attract far more than cold ones.
	if m.ColSum(0) < 2*m.ColSum(10) {
		t.Fatalf("hotspot not hot: col0=%f col10=%f", m.ColSum(0), m.ColSum(10))
	}
	for s := 0; s < 16; s++ {
		if math.Abs(m.RowSum(s)-1) > 1e-9 {
			t.Fatalf("row %d sums to %f", s, m.RowSum(s))
		}
	}
	if _, err := Hotspot(16, 0, 0.5); err == nil {
		t.Error("hot=0 accepted")
	}
	if _, err := Hotspot(16, 2, 1.5); err == nil {
		t.Error("frac>1 accepted")
	}
}

func TestPermutationMatrix(t *testing.T) {
	m, err := Permutation([]int{1, 2, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rates[0][1] != 1 || m.RowSum(0) != 1 {
		t.Fatal("permutation rates wrong")
	}
	if _, err := Permutation([]int{0, 1}); err == nil {
		t.Error("fixed point accepted")
	}
	if _, err := Permutation([]int{1, 1, 0}); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestSampleDestDistribution(t *testing.T) {
	cl := mustCliques(t, 8, 2)
	m, _ := Locality(cl, 0.75)
	r := rng.New(5)
	intra := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		d := m.SampleDest(0, r)
		if d == 0 {
			t.Fatal("sampled self")
		}
		if cl.SameClique(0, d) {
			intra++
		}
	}
	got := float64(intra) / draws
	if math.Abs(got-0.75) > 0.01 {
		t.Fatalf("intra sample fraction = %f, want 0.75", got)
	}
}

func TestScaleAndClone(t *testing.T) {
	m := Uniform(4)
	c := m.Clone().Scale(0.5)
	if math.Abs(c.RowSum(0)-0.5) > 1e-12 {
		t.Fatal("scale wrong")
	}
	if math.Abs(m.RowSum(0)-1) > 1e-12 {
		t.Fatal("clone mutated original")
	}
}

func TestValidateCatchesBadMatrices(t *testing.T) {
	m := Uniform(4)
	m.Rates[1][1] = 0.5
	if m.Validate() == nil {
		t.Error("self traffic accepted")
	}
	m2 := Uniform(4)
	m2.Rates[0][1] = -1
	if m2.Validate() == nil {
		t.Error("negative rate accepted")
	}
	m3 := Uniform(4)
	m3.Rates[0][1] = math.NaN()
	if m3.Validate() == nil {
		t.Error("NaN accepted")
	}
}

func TestWebSearchDistribution(t *testing.T) {
	ws := WebSearch()
	r := rng.New(7)
	var sum float64
	var small int
	const n = 100000
	maxSeen := 0
	for i := 0; i < n; i++ {
		v := ws.Sample(r)
		if v < 1 || v > 20000 {
			t.Fatalf("websearch sample %d out of support", v)
		}
		if v <= 33 {
			small++
		}
		if v > maxSeen {
			maxSeen = v
		}
		sum += float64(v)
	}
	// ~60% of flows are <= 33 cells (CDF knot).
	if frac := float64(small) / n; math.Abs(frac-0.60) > 0.02 {
		t.Errorf("P(size<=33) = %f, want ~0.60", frac)
	}
	// Mean within 10% of the analytic CDF mean; heavy tail present.
	if mean := sum / n; math.Abs(mean-ws.MeanCells())/ws.MeanCells() > 0.1 {
		t.Errorf("sample mean %f vs analytic %f", mean, ws.MeanCells())
	}
	if maxSeen < 5000 {
		t.Errorf("heavy tail missing: max sample %d", maxSeen)
	}
}

func TestDataMiningDistribution(t *testing.T) {
	dm := DataMining()
	r := rng.New(8)
	ones := 0
	const n = 50000
	for i := 0; i < n; i++ {
		v := dm.Sample(r)
		if v < 1 {
			t.Fatalf("size %d < 1", v)
		}
		if v == 1 {
			ones++
		}
	}
	// Half the flows are single-cell.
	if frac := float64(ones) / n; math.Abs(frac-0.50) > 0.02 {
		t.Errorf("P(size==1) = %f, want ~0.50", frac)
	}
}

func TestBimodal(t *testing.T) {
	b := Bimodal{ShortCells: 10, BulkCells: 1000, ShortShare: 0.75}
	if math.Abs(b.MeanCells()-(0.75*10+0.25*1000)) > 1e-12 {
		t.Fatal("bimodal mean wrong")
	}
	r := rng.New(9)
	short := 0
	for i := 0; i < 10000; i++ {
		if b.Sample(r) == 10 {
			short++
		}
	}
	if math.Abs(float64(short)/10000-0.75) > 0.02 {
		t.Fatalf("short share = %f", float64(short)/10000)
	}
}

func TestPoissonFlowsRateAndOrdering(t *testing.T) {
	tm := Uniform(16)
	g, err := NewPoissonFlows(tm, FixedSize(10), 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	flows := g.Window(0, 20000)
	if len(flows) == 0 {
		t.Fatal("no flows generated")
	}
	var cells float64
	prev := int64(-1)
	for _, f := range flows {
		if f.Arrival < prev {
			t.Fatal("flows not sorted by arrival")
		}
		prev = f.Arrival
		if f.Src == f.Dst {
			t.Fatal("self flow")
		}
		if f.Size != 10 {
			t.Fatal("size wrong")
		}
		cells += float64(f.Size)
	}
	// Offered load: 0.5 cells/slot/node * 16 nodes * 20000 slots.
	want := 0.5 * 16 * 20000
	if math.Abs(cells-want)/want > 0.05 {
		t.Fatalf("offered cells = %f, want ~%f", cells, want)
	}
}

func TestPoissonFlowsWindowContinuity(t *testing.T) {
	tm := Uniform(8)
	g, _ := NewPoissonFlows(tm, FixedSize(1), 0.3, 12)
	w1 := g.Window(0, 1000)
	w2 := g.Window(1000, 2000)
	for _, f := range w1 {
		if f.Arrival >= 1000 {
			t.Fatal("window 1 leaked late flow")
		}
	}
	for _, f := range w2 {
		if f.Arrival < 1000 || f.Arrival >= 2000 {
			t.Fatal("window 2 out of range")
		}
	}
	// IDs must be globally unique across windows.
	seen := map[int]bool{}
	for _, f := range append(w1, w2...) {
		if seen[f.ID] {
			t.Fatal("duplicate flow ID across windows")
		}
		seen[f.ID] = true
	}
}

func TestPoissonFlowsErrors(t *testing.T) {
	if _, err := NewPoissonFlows(Uniform(4), FixedSize(1), 0, 1); err == nil {
		t.Error("zero load accepted")
	}
	bad := Uniform(4)
	bad.Rates[0][0] = 1
	if _, err := NewPoissonFlows(bad, FixedSize(1), 0.5, 1); err == nil {
		t.Error("invalid TM accepted")
	}
}

func TestMatrixPropertyRowSumsPreserved(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		nc := 1 + r.Intn(4)
		k := 1 + r.Intn(6)
		n := nc * k
		if n < 2 {
			return true
		}
		cl, err := schedule.EqualCliques(n, nc)
		if err != nil {
			return false
		}
		m, err := Locality(cl, r.Float64())
		if err != nil {
			return false
		}
		for s := 0; s < n; s++ {
			if math.Abs(m.RowSum(s)-1) > 1e-9 {
				return false
			}
		}
		return m.Validate() == nil
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPairAffinity(t *testing.T) {
	cl := mustCliques(t, 32, 4)
	m, err := PairAffinity(cl, 0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 32; s++ {
		if math.Abs(m.RowSum(s)-1) > 1e-9 {
			t.Fatalf("row %d sums to %f", s, m.RowSum(s))
		}
	}
	if got := m.IntraFraction(cl); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("intra fraction %f", got)
	}
	// Node 0 (clique 0, partner clique 1): partner share is 0.5.
	toPartner := 0.0
	for _, d := range cl.Members(1) {
		toPartner += m.Rates[0][d]
	}
	if math.Abs(toPartner-0.5) > 1e-9 {
		t.Fatalf("partner share %f", toPartner)
	}
	// Aggregate matrix must be symmetric between partners.
	agg := m.Aggregate(cl)
	if math.Abs(agg[0][1]-agg[1][0]) > 1e-9 {
		t.Fatalf("partner aggregate asymmetric: %f vs %f", agg[0][1], agg[1][0])
	}
}

func TestPairAffinityErrors(t *testing.T) {
	cl4 := mustCliques(t, 32, 4)
	if _, err := PairAffinity(cl4, 0.7, 0.7); err == nil {
		t.Error("overflowing split accepted")
	}
	if _, err := PairAffinity(cl4, -0.1, 0.5); err == nil {
		t.Error("negative intra accepted")
	}
	clOdd, err := schedule.NewCliques([]int{0, 0, 1, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PairAffinity(clOdd, 0.2, 0.5); err == nil {
		t.Error("odd clique count accepted")
	}
}

func TestFacebookLikeHelpers(t *testing.T) {
	d := FacebookLike()
	if d.MeanCells() <= 16 || d.MeanCells() >= 2000 {
		t.Fatalf("mean %f outside bimodal range", d.MeanCells())
	}
	cl := mustCliques(t, 32, 4)
	tm, err := FacebookLikeTM(cl)
	if err != nil {
		t.Fatal(err)
	}
	if got := tm.IntraFraction(cl); math.Abs(got-0.56) > 1e-9 {
		t.Fatalf("intra fraction %f, want 0.56", got)
	}
}

func TestSampleDestPanicsOnEmptyRow(t *testing.T) {
	m := NewMatrix(4)
	defer func() {
		if recover() == nil {
			t.Fatal("SampleDest on empty row did not panic")
		}
	}()
	m.SampleDest(0, rng.New(1))
}

func TestNewCappedPanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCapped(0) did not panic")
		}
	}()
	NewCapped(FixedSize(4), 0)
}

func TestCappedPreservesShortFlows(t *testing.T) {
	c := NewCapped(WebSearch(), 1333)
	r := rng.New(33)
	for i := 0; i < 10000; i++ {
		if v := c.Sample(r); v > 1333 || v < 1 {
			t.Fatalf("capped sample %d out of range", v)
		}
	}
	if c.Name() != "pfabric-websearch-cap1333" {
		t.Fatalf("name = %q", c.Name())
	}
}
