// Package lint is a small static-analysis framework, built only on the
// standard library's go/ast, go/parser, and go/types, that enforces this
// repository's determinism and correctness discipline. Every number the
// repo produces (Table 1, Figure 2f, the ablation sweeps) is only
// meaningful if simulation runs are bit-for-bit reproducible, so the
// rules here reject the constructs that silently break reproducibility:
// wall-clock time and global randomness in simulation packages,
// package-level RNG state, order-sensitive iteration over maps, exact
// floating-point equality, and dropped errors.
//
// The analyzers run over fully type-checked packages (see Loader), are
// wired into tier-1 via the repository-root lint_test.go, and are
// runnable standalone with `go run ./cmd/sornlint ./...`.
//
// A finding can be suppressed with an inline directive on the same line
// or the line directly above it:
//
//	//sornlint:ignore maporder -- keys are sorted below
//
// The directive names exactly the rules it suppresses (comma-separated);
// everything after " -- " is a free-form justification.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Msg, f.Rule)
}

// Analyzer is one named rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns every rule, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{NoDeterm, RNGDiscipline, MapOrder, FloatEq, DroppedErr}
}

// AnalyzerByName returns the named rule, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass is the per-package state handed to each analyzer.
type Pass struct {
	ModulePath string
	PkgPath    string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info

	testFiles map[*ast.File]bool
	ignores   map[string]map[int]map[string]bool // filename -> line -> rule set
	findings  *[]Finding
}

// IsTestFile reports whether f came from a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool { return p.testFiles[f] }

// InternalPkg reports whether the package lives under <module>/internal/.
func (p *Pass) InternalPkg() bool {
	return strings.HasPrefix(p.PkgPath, p.ModulePath+"/internal/")
}

// Reportf records a finding unless an ignore directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if lines, ok := p.ignores[position.Filename]; ok {
		for _, l := range []int{position.Line, position.Line - 1} {
			if lines[l][rule] {
				return
			}
		}
	}
	*p.findings = append(*p.findings, Finding{
		Pos:  position,
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is the magic comment prefix.
const ignoreDirective = "//sornlint:ignore"

// parseIgnores indexes every suppression directive in the pass's files.
func (p *Pass) parseIgnores() {
	p.ignores = make(map[string]map[int]map[string]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, ok := parseIgnoreComment(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.ignores[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					p.ignores[pos.Filename] = byLine
				}
				set := byLine[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					byLine[pos.Line] = set
				}
				for _, r := range rules {
					set[r] = true
				}
			}
		}
	}
}

// parseIgnoreComment extracts the rule names from one directive comment.
func parseIgnoreComment(text string) ([]string, bool) {
	if !strings.HasPrefix(text, ignoreDirective) {
		return nil, false
	}
	rest := strings.TrimPrefix(text, ignoreDirective)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false
	}
	// Strip the optional " -- reason" trailer.
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	var rules []string
	for _, field := range strings.Fields(rest) {
		for _, r := range strings.Split(field, ",") {
			if r != "" {
				rules = append(rules, r)
			}
		}
	}
	return rules, len(rules) > 0
}

// Run applies the analyzers to every package and returns the surviving
// findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		pass := &Pass{
			ModulePath: pkg.ModulePath,
			PkgPath:    pkg.Path,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			testFiles:  pkg.TestFiles,
			findings:   &findings,
		}
		pass.parseIgnores()
		for _, a := range analyzers {
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return findings
}
