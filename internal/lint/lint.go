// Package lint is a static-analysis framework, built only on the
// standard library's go/ast, go/parser, and go/types, that enforces this
// repository's determinism and correctness discipline. Every number the
// repo produces (Table 1, Figure 2f, the ablation sweeps) is only
// meaningful if simulation runs are bit-for-bit reproducible, so the
// rules here reject the constructs that silently break reproducibility:
// wall-clock time and global randomness in simulation packages,
// package-level RNG state, order-sensitive iteration over maps, exact
// floating-point equality, and dropped errors.
//
// On top of the per-file rules, a whole-program layer (see Module in
// callgraph.go) builds a lightweight callgraph over the type-checked
// module and enforces the sharded simulator's conventions statically:
// worker phases may only write staged per-shard state (shardsafety),
// annotated hot paths must not heap-allocate (hotalloc), Observer calls
// must be nil-guarded and never emitted from worker code (obsnil), and
// suppression directives that suppress nothing are themselves findings
// (stalesuppress). The invariants the rules consume are declared in
// source with //sornlint:<verb> annotations (see annotations.go).
//
// The analyzers run over fully type-checked packages (see Loader), are
// wired into tier-1 via the repository-root lint_test.go, and are
// runnable standalone with `go run ./cmd/sornlint ./...`. Analysis runs
// one package per worker and merges findings in fixed package order —
// the same determinism discipline the rules enforce.
//
// A finding can be suppressed with an inline directive on the same line
// or the line directly above it:
//
//	//sornlint:ignore maporder -- keys are sorted below
//
// The directive names exactly the rules it suppresses (comma-separated);
// everything after " -- " is a free-form justification. A directive
// inside a declaration's doc comment also covers the declaration's
// first line. Directives naming unknown rules, or suppressing zero
// findings, are reported by the stalesuppress rule.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Msg, f.Rule)
}

// Analyzer is one named rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns every rule, in reporting order. StaleSuppress is
// last by construction: it audits the suppression accounting the other
// rules produce.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoDeterm, RNGDiscipline, MapOrder, FloatEq, DroppedErr,
		ShardSafety, HotAlloc, ObsNil, StaleSuppress,
	}
}

// AnalyzerByName returns the named rule, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// directive is one //sornlint:ignore comment: where it is, which rules
// it names, and how many findings it suppressed per rule. The counts
// feed the stalesuppress rule.
type directive struct {
	pos   token.Position
	rules []string
	used  map[string]int
}

// Pass is the per-package state handed to each analyzer.
type Pass struct {
	ModulePath string
	PkgPath    string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info

	// Mod is the whole-program context (annotations, callgraph,
	// reachability); non-nil for every Run.
	Mod *Module

	testFiles  map[*ast.File]bool
	active     map[string]bool                          // analyzer names in this run
	ignores    map[string]map[int]map[string]*directive // filename -> line -> rule -> directive
	directives []*directive                             // in source order
	findings   *[]Finding
}

// IsTestFile reports whether f came from a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool { return p.testFiles[f] }

// InternalPkg reports whether the package lives under <module>/internal/.
func (p *Pass) InternalPkg() bool {
	return strings.HasPrefix(p.PkgPath, p.ModulePath+"/internal/")
}

// FuncKey resolves a function declaration to its canonical callgraph
// key, or "".
func (p *Pass) FuncKey(fd *ast.FuncDecl) string {
	if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
		return funcKey(fn)
	}
	return ""
}

// Reportf records a finding unless an ignore directive suppresses it;
// either way the directive's usage accounting is updated.
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if lines, ok := p.ignores[position.Filename]; ok {
		for _, l := range []int{position.Line, position.Line - 1} {
			if d := lines[l][rule]; d != nil {
				d.used[rule]++
				return
			}
		}
	}
	*p.findings = append(*p.findings, Finding{
		Pos:  position,
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is the magic comment prefix.
const ignoreDirective = "//sornlint:ignore"

// parseDirectives indexes every suppression directive in the pass's
// files: at the directive's own line, and — when the directive sits in
// a declaration's doc comment — at the declaration's first line too, so
// a multi-line doc group can suppress findings on the declaration it
// documents.
func (p *Pass) parseDirectives() {
	p.ignores = make(map[string]map[int]map[string]*directive)
	byComment := make(map[*ast.Comment]*directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, ok := parseIgnoreComment(c.Text)
				if !ok {
					continue
				}
				d := &directive{
					pos:   p.Fset.Position(c.Pos()),
					rules: rules,
					used:  make(map[string]int),
				}
				byComment[c] = d
				p.directives = append(p.directives, d)
				p.registerDirective(d, d.pos.Filename, d.pos.Line)
			}
		}
		p.attachDocDirectives(f, byComment)
	}
}

// attachDocDirectives re-registers doc-comment directives at the line
// of the declaration (or spec, or field) the doc group is attached to.
func (p *Pass) attachDocDirectives(f *ast.File, byComment map[*ast.Comment]*directive) {
	register := func(doc *ast.CommentGroup, node ast.Node) {
		if doc == nil {
			return
		}
		pos := p.Fset.Position(node.Pos())
		for _, c := range doc.List {
			if d := byComment[c]; d != nil {
				p.registerDirective(d, pos.Filename, pos.Line)
			}
		}
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			register(d.Doc, d)
		case *ast.GenDecl:
			register(d.Doc, d)
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					register(s.Doc, s)
					if st, ok := s.Type.(*ast.StructType); ok {
						for _, field := range st.Fields.List {
							register(field.Doc, field)
						}
					}
				case *ast.ValueSpec:
					register(s.Doc, s)
				}
			}
		}
	}
}

// registerDirective indexes d at (filename, line) for each rule it
// names; the first directive registered for a (line, rule) wins.
func (p *Pass) registerDirective(d *directive, filename string, line int) {
	byLine := p.ignores[filename]
	if byLine == nil {
		byLine = make(map[int]map[string]*directive)
		p.ignores[filename] = byLine
	}
	set := byLine[line]
	if set == nil {
		set = make(map[string]*directive)
		byLine[line] = set
	}
	for _, r := range d.rules {
		if set[r] == nil {
			set[r] = d
		}
	}
}

// parseIgnoreComment extracts the rule names from one directive comment.
func parseIgnoreComment(text string) ([]string, bool) {
	if !strings.HasPrefix(text, ignoreDirective) {
		return nil, false
	}
	rest := strings.TrimPrefix(text, ignoreDirective)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false
	}
	// Strip the optional " -- reason" trailer.
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	var rules []string
	for _, field := range strings.Fields(rest) {
		for _, r := range strings.Split(field, ",") {
			if r != "" {
				rules = append(rules, r)
			}
		}
	}
	return rules, len(rules) > 0
}

// Run builds the whole-program Module context, applies the analyzers
// one package per worker, and returns the surviving findings merged in
// fixed package order and sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	mod := BuildModule(pkgs)

	results := make([][]Finding, len(pkgs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(pkgs) {
					return
				}
				results[i] = runPackage(pkgs[i], mod, analyzers)
			}
		}()
	}
	wg.Wait()

	var findings []Finding
	for _, r := range results {
		findings = append(findings, r...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return findings
}

// runPackage applies the analyzers to one package. StaleSuppress (when
// present) runs after every other rule so the directive usage counts it
// audits are final.
func runPackage(pkg *Package, mod *Module, analyzers []*Analyzer) []Finding {
	var findings []Finding
	pass := &Pass{
		ModulePath: pkg.ModulePath,
		PkgPath:    pkg.Path,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		Info:       pkg.Info,
		Mod:        mod,
		testFiles:  pkg.TestFiles,
		active:     make(map[string]bool, len(analyzers)),
		findings:   &findings,
	}
	for _, a := range analyzers {
		pass.active[a.Name] = true
	}
	pass.parseDirectives()
	var last []*Analyzer
	for _, a := range analyzers {
		if a.Name == staleSuppressName {
			last = append(last, a)
			continue
		}
		a.Run(pass)
	}
	for _, a := range last {
		a.Run(pass)
	}
	return findings
}
