package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc keeps annotated hot paths allocation-free: every function
// reachable from a //sornlint:hotpath root (stopping at deliberate
// //sornlint:coldpath slow paths) is scanned for heap-allocating
// constructs — escaping composite literals (&T{...}), map literals and
// map/chan make, new(), map writes, closures, fmt calls, interface
// conversions of concrete non-pointer values, and append to a local
// slice declared without capacity evidence.
//
// Appends to fields, parameters, and slices made with an explicit
// capacity are allowed: amortized growth of a reused buffer is the
// repository's standard hot-path idiom (fifo rings, Route buffers), and
// the zero-alloc RouteInto benchmark test keeps the rule honest against
// what the runtime actually does.
const hotAllocName = "hotalloc"

var HotAlloc = &Analyzer{
	Name: hotAllocName,
	Doc:  "forbid heap-allocating constructs in //sornlint:hotpath code",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) {
	if p.Mod == nil {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := p.FuncKey(fd)
			root, reached := p.Mod.HotReach[key]
			if !reached {
				continue
			}
			checkHotFunc(p, fd, root)
		}
	}
}

// checkHotFunc scans one hot function body for allocation sites.
func checkHotFunc(p *Pass, fd *ast.FuncDecl, root string) {
	h := &hotChecker{p: p, root: root, trusted: make(map[types.Object]bool)}
	h.collectProvenance(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			h.reportf(x.Pos(), "function literal allocates a closure")
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					h.reportf(x.Pos(), "escaping composite literal (&T{...}) allocates")
				}
			}
		case *ast.CompositeLit:
			if t := p.Info.TypeOf(x); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					h.reportf(x.Pos(), "map literal allocates")
				}
			}
		case *ast.CallExpr:
			h.checkCall(x)
		case *ast.AssignStmt:
			h.checkAssign(x)
		case *ast.IncDecStmt:
			h.checkMapWrite(x.X)
		case *ast.ValueSpec:
			h.checkValueSpec(x)
		}
		return true
	})
}

type hotChecker struct {
	p    *Pass
	root string
	// trusted holds receiver, parameters, and locals whose slice
	// capacity provenance is acceptable for append.
	trusted map[types.Object]bool
	// localInit maps a := / var-declared local to its initializer.
	localInit map[types.Object]ast.Expr
}

func (h *hotChecker) reportf(pos token.Pos, format string, args ...interface{}) {
	h.p.Reportf(pos, hotAllocName, format+" (hot path via %s)", append(args, h.root)...)
}

// collectProvenance records parameter/receiver objects and local
// initializers so append targets can be judged.
func (h *hotChecker) collectProvenance(fd *ast.FuncDecl) {
	h.localInit = make(map[types.Object]ast.Expr)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, nm := range field.Names {
				if obj := h.p.Info.Defs[nm]; obj != nil {
					h.trusted[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	addFields(fd.Type.Results)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := h.p.Info.Defs[id]
				if obj == nil {
					continue
				}
				if len(x.Lhs) == len(x.Rhs) {
					h.localInit[obj] = x.Rhs[i]
				} else {
					h.trusted[obj] = true // multi-value: unknown provenance
				}
			}
		case *ast.ValueSpec:
			for i, nm := range x.Names {
				obj := h.p.Info.Defs[nm]
				if obj == nil {
					continue
				}
				if i < len(x.Values) {
					h.localInit[obj] = x.Values[i]
				}
			}
		case *ast.RangeStmt:
			if x.Tok == token.DEFINE {
				for _, e := range []ast.Expr{x.Key, x.Value} {
					if id, ok := e.(*ast.Ident); ok && id != nil {
						if obj := h.p.Info.Defs[id]; obj != nil {
							h.trusted[obj] = true
						}
					}
				}
			}
		}
		return true
	})
}

// checkCall flags allocating builtins, fmt calls, and interface-boxing
// arguments.
func (h *hotChecker) checkCall(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := h.p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if t := h.p.Info.TypeOf(call); t != nil {
					switch t.Underlying().(type) {
					case *types.Map:
						h.reportf(call.Pos(), "make(map) allocates; hoist the map out of the hot path")
					case *types.Chan:
						h.reportf(call.Pos(), "make(chan) allocates; hoist the channel out of the hot path")
					}
				}
			case "new":
				h.reportf(call.Pos(), "new(T) allocates; reuse a caller-owned value")
			case "append":
				if len(call.Args) > 0 && !h.appendTargetOK(call.Args[0]) {
					h.reportf(call.Pos(), "append to %s, which has no preallocated-capacity evidence", exprString(h.p, call.Args[0]))
				}
			}
			return
		}
	}
	if tv, ok := h.p.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion T(x): boxing only if T is an interface.
		if t := h.p.Info.TypeOf(call); t != nil && len(call.Args) == 1 && h.boxes(t, call.Args[0]) {
			h.reportf(call.Pos(), "conversion of %s to interface %s allocates", exprString(h.p, call.Args[0]), t)
		}
		return
	}
	if name := calleeFullName(h.p, call); strings.HasPrefix(name, "fmt.") {
		h.reportf(call.Pos(), "call to %s formats through interfaces and allocates", name)
		return
	}
	sig, ok := h.p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call.Ellipsis != token.NoPos)
		if pt != nil && h.boxes(pt, arg) {
			h.reportf(arg.Pos(), "passing %s as interface %s allocates", exprString(h.p, arg), pt)
		}
	}
}

// checkAssign flags map writes and interface-boxing assignments.
func (h *hotChecker) checkAssign(as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		h.checkMapWrite(lhs)
	}
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := h.p.Info.TypeOf(lhs)
		if lt != nil && h.boxes(lt, as.Rhs[i]) {
			h.reportf(as.Rhs[i].Pos(), "assigning %s to interface %s allocates", exprString(h.p, as.Rhs[i]), lt)
		}
	}
}

// checkValueSpec flags `var x Iface = concrete` boxing.
func (h *hotChecker) checkValueSpec(vs *ast.ValueSpec) {
	for i, nm := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		obj := h.p.Info.Defs[nm]
		if obj != nil && h.boxes(obj.Type(), vs.Values[i]) {
			h.reportf(vs.Values[i].Pos(), "assigning %s to interface %s allocates", exprString(h.p, vs.Values[i]), obj.Type())
		}
	}
}

// checkMapWrite flags index assignments into maps.
func (h *hotChecker) checkMapWrite(lhs ast.Expr) {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	if t := h.p.Info.TypeOf(ix.X); t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			h.reportf(lhs.Pos(), "map write to %s may allocate and rehash", exprString(h.p, ix.X))
		}
	}
}

// boxes reports whether assigning arg (a concrete, non-pointer-shaped
// value) into the interface type `to` forces a heap allocation.
func (h *hotChecker) boxes(to types.Type, arg ast.Expr) bool {
	if to == nil || !types.IsInterface(to) {
		return false
	}
	tv, ok := h.p.Info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	at := tv.Type
	if types.IsInterface(at) {
		return false
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: fits an interface word
	case *types.Basic:
		if b := at.Underlying().(*types.Basic); b.Info()&types.IsUntyped != 0 && tv.Value == nil {
			return false
		}
	}
	return true
}

// paramTypeAt returns the type of parameter i of sig, flattening the
// variadic tail (nil for an explicit ... call's slice argument).
func paramTypeAt(sig *types.Signature, i int, ellipsis bool) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	last := params.Len() - 1
	if sig.Variadic() && i >= last {
		if ellipsis {
			return nil // the slice is passed through, no boxing per element
		}
		if s, ok := params.At(last).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i > last {
		return nil
	}
	return params.At(i).Type()
}

// appendTargetOK judges the first argument of append: fields, indexed
// elements, parameters, results of calls, and locals initialized with
// capacity evidence are fine; locals declared empty are not.
func (h *hotChecker) appendTargetOK(arg ast.Expr) bool {
	e := ast.Unparen(arg)
	if se, ok := e.(*ast.SliceExpr); ok {
		e = ast.Unparen(se.X) // buf[:0] reuse idiom
	}
	switch t := e.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true // field or element of a caller-owned structure
	case *ast.CallExpr:
		return true
	case *ast.Ident:
		obj := h.p.Info.Uses[t]
		if obj == nil {
			obj = h.p.Info.Defs[t]
		}
		if obj == nil || h.trusted[obj] {
			return true
		}
		init, declared := h.localInit[obj]
		if !declared || init == nil {
			return false // var x []T, or unseen: no capacity evidence
		}
		return h.initHasCapacity(init)
	}
	return true
}

// initHasCapacity judges a local slice initializer: make with any
// explicit size, or a value derived from elsewhere (call, field,
// slicing), counts as capacity evidence; empty or literal composites do
// not.
func (h *hotChecker) initHasCapacity(init ast.Expr) bool {
	switch x := ast.Unparen(init).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := h.p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
				return len(x.Args) >= 2 // make([]T, n) / make([]T, n, c)
			}
		}
		return true // some constructor: trust its sizing
	case *ast.CompositeLit:
		return false // []T{...}: cap == len, the append grows it
	case *ast.Ident:
		if x.Name == "nil" {
			return false
		}
		return true // alias of something else: trust it
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr:
		return true
	}
	return true
}
