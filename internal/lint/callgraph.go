package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Module is the whole-program context shared by every Pass of one Run:
// the annotation index, a lightweight callgraph over the type-checked
// module, and the two reachability closures the callgraph-driven rules
// consume. It is built once, serially, before the per-package passes
// fan out.
type Module struct {
	ModulePath string
	Anno       *Annotations

	// calls maps a function key (types.Func.FullName of its Origin) to
	// its sorted callee keys. Interface-method keys carry class-hierarchy
	// edges to every module implementation, so reachability traversals
	// follow dynamic dispatch conservatively.
	calls map[string][]string

	// ShardReach maps every function reachable from a //sornlint:shardphase
	// body (stopping at //sornlint:drain) to the root that reaches it.
	ShardReach map[string]string
	// HotReach maps every function reachable from a //sornlint:hotpath
	// root (stopping at //sornlint:coldpath) to the root that reaches it.
	HotReach map[string]string

	// issues holds annotation hygiene findings keyed by unit path,
	// reported by the stalesuppress rule.
	issues map[string][]annoIssue
}

// BuildModule indexes annotations, builds the callgraph, and computes
// the reachability closures over the given analysis units.
func BuildModule(pkgs []*Package) *Module {
	m := &Module{calls: make(map[string][]string)}
	if len(pkgs) == 0 {
		return m
	}
	m.ModulePath = pkgs[0].ModulePath
	m.Anno, m.issues = collectAnnotations(pkgs)

	edges := make(map[string]map[string]bool)
	addEdge := func(from, to string) {
		if from == "" || to == "" || from == to {
			return
		}
		set := edges[from]
		if set == nil {
			set = make(map[string]bool)
			edges[from] = set
		}
		set[to] = true
	}
	for _, pkg := range pkgs {
		m.staticEdges(pkg, addEdge)
	}
	m.chaEdges(pkgs, addEdge)
	for from, set := range edges {
		callees := make([]string, 0, len(set))
		//sornlint:ignore maporder -- callees are sorted immediately below
		for to := range set {
			callees = append(callees, to)
		}
		sort.Strings(callees)
		m.calls[from] = callees
	}

	m.ShardReach = m.reach(annoShardphase, annoDrain)
	m.HotReach = m.reach(annoHotpath, annoColdpath)
	return m
}

// moduleFunc reports whether fn is declared inside the module.
func (m *Module) moduleFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == m.ModulePath || strings.HasPrefix(pkg.Path(), m.ModulePath+"/")
}

// funcKey canonicalizes a function object: generic methods collapse to
// their origin so call sites on instantiations and the declaration
// agree on one key.
func funcKey(fn *types.Func) string { return fn.Origin().FullName() }

// staticEdges adds one edge per referenced module function inside every
// declared body. References, not just calls: a method value handed to a
// dispatcher runs just as much code as a direct call, so reachability
// treats them alike.
func (m *Module) staticEdges(pkg *Package, addEdge func(from, to string)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			caller, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			from := funcKey(caller)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if fn, ok := pkg.Info.Uses[id].(*types.Func); ok && m.moduleFunc(fn) {
					addEdge(from, funcKey(fn))
				}
				return true
			})
		}
	}
}

// chaEdges adds class-hierarchy edges: for every module interface a
// unit can see and every named type the unit declares, an edge from
// each interface method to the type's implementing method. Interfaces
// are matched per unit because a unit's own types are distinct objects
// from the import-side copies; the string keys are what unify them.
func (m *Module) chaEdges(pkgs []*Package, addEdge func(from, to string)) {
	for _, pkg := range pkgs {
		ifaces := m.visibleInterfaces(pkg.Types)
		impls := namedNonInterfaces(pkg.Types)
		for _, T := range impls {
			pT := types.NewPointer(T)
			for _, iface := range ifaces {
				it, ok := iface.Underlying().(*types.Interface)
				if !ok || it.Empty() {
					continue
				}
				if !types.Implements(T, it) && !types.Implements(pT, it) {
					continue
				}
				for i := 0; i < it.NumMethods(); i++ {
					im := it.Method(i)
					obj, _, _ := types.LookupFieldOrMethod(pT, true, T.Obj().Pkg(), im.Name())
					if fn, ok := obj.(*types.Func); ok {
						addEdge(funcKey(im), funcKey(fn))
					}
				}
			}
		}
	}
}

// visibleInterfaces collects the module interfaces a unit can dispatch
// through: its own scope plus the scopes of its transitive module
// imports.
func (m *Module) visibleInterfaces(unit *types.Package) []*types.Named {
	var out []*types.Named
	seen := make(map[*types.Package]bool)
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		scope := p.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, ok := named.Underlying().(*types.Interface); ok {
				out = append(out, named)
			}
		}
		for _, imp := range p.Imports() {
			if imp.Path() == m.ModulePath || strings.HasPrefix(imp.Path(), m.ModulePath+"/") {
				visit(imp)
			}
		}
	}
	visit(unit)
	return out
}

// namedNonInterfaces collects the unit's own named concrete types.
func namedNonInterfaces(unit *types.Package) []*types.Named {
	var out []*types.Named
	scope := unit.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Interface); !ok {
			out = append(out, named)
		}
	}
	return out
}

// reach computes the closure of functions reachable from every root
// annotated rootBit, without expanding (or including) nodes annotated
// stopBit. The result maps each reached key to the display name of the
// first root (in sorted root order) that reaches it.
func (m *Module) reach(rootBit, stopBit int) map[string]string {
	var roots []string
	//sornlint:ignore maporder -- roots are sorted immediately below
	for key, bits := range m.Anno.funcs {
		if bits&rootBit != 0 {
			roots = append(roots, key)
		}
	}
	sort.Strings(roots)

	reached := make(map[string]string)
	for _, root := range roots {
		if m.Anno.funcs[root]&stopBit != 0 {
			continue
		}
		display := shortFuncName(root)
		queue := []string{root}
		for len(queue) > 0 {
			key := queue[0]
			queue = queue[1:]
			if _, ok := reached[key]; ok {
				continue
			}
			reached[key] = display
			for _, callee := range m.calls[key] {
				if m.Anno.funcs[callee]&stopBit != 0 {
					continue
				}
				if _, ok := reached[callee]; !ok {
					queue = append(queue, callee)
				}
			}
		}
	}
	return reached
}

// shortFuncName strips the package path from a function key for
// messages: "(*repro/internal/netsim.Sim).landShard" -> "(*Sim).landShard",
// "repro/internal/netsim.New" -> "New".
func shortFuncName(key string) string {
	i := strings.LastIndex(key, "/")
	if i < 0 {
		return key
	}
	prefix := ""
	for _, p := range []string{"(*", "("} {
		if strings.HasPrefix(key, p) {
			prefix = p
			break
		}
	}
	rest := key[i+1:]
	if j := strings.Index(rest, "."); j >= 0 {
		rest = rest[j+1:]
	}
	return prefix + rest
}
