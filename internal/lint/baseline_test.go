package lint

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestReportGoldenJSON pins the -json output format byte for byte: the
// committed lint_baseline.json is in this format, so accidental schema
// drift would orphan every baseline.
func TestReportGoldenJSON(t *testing.T) {
	findings := []Finding{
		{Pos: position("/mod/internal/netsim/netsim.go", 41, 7), Rule: "maporder", Msg: "range over map m appends to a slice"},
		{Pos: position("/mod/cmd/tool/main.go", 9, 2), Rule: "hotalloc", Msg: "new(T) allocates; reuse a caller-owned value (hot path via push)"},
	}
	var buf bytes.Buffer
	if err := NewReport(findings, "/mod").Write(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `{
  "findings": [
    {
      "file": "internal/netsim/netsim.go",
      "line": 41,
      "col": 7,
      "rule": "maporder",
      "msg": "range over map m appends to a slice"
    },
    {
      "file": "cmd/tool/main.go",
      "line": 9,
      "col": 2,
      "rule": "hotalloc",
      "msg": "new(T) allocates; reuse a caller-owned value (hot path via push)"
    }
  ]
}
`
	if got := buf.String(); got != want {
		t.Errorf("golden JSON mismatch:\n got: %s\nwant: %s", got, want)
	}
}

// TestReportGoldenJSONEmpty pins the zero-findings document: an empty
// findings array, not null, so baselines stay diffable with jq.
func TestReportGoldenJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewReport(nil, "/mod").Write(&buf); err != nil {
		t.Fatal(err)
	}
	const want = "{\n  \"findings\": []\n}\n"
	if got := buf.String(); got != want {
		t.Errorf("empty report = %q, want %q", got, want)
	}
}

func position(file string, line, col int) token.Position {
	return token.Position{Filename: file, Line: line, Column: col}
}

// TestBaselineRoundTrip writes a report from real findings and checks
// the load→diff cycle tolerates exactly those findings: the committed
// baseline workflow (scripts/lint-baseline.sh, then ci.sh gating) hangs
// off this property.
func TestBaselineRoundTrip(t *testing.T) {
	l := sharedLoader(t)
	findings := fixtureFindings(t, "shardsafety/bad")
	if len(findings) == 0 {
		t.Fatal("shardsafety/bad produced no findings; the round trip is vacuous")
	}
	root := l.ModuleDir

	path := filepath.Join(t.TempDir(), "baseline.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewReport(findings, root).Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if fresh := base.Diff(findings, root); len(fresh) != 0 {
		t.Errorf("round trip left %d findings uncovered: %v", len(fresh), fresh)
	}

	// An empty baseline tolerates nothing.
	empty := &Report{}
	if fresh := empty.Diff(findings, root); !reflect.DeepEqual(fresh, findings) {
		t.Errorf("empty baseline diff = %v, want all %d findings", fresh, len(findings))
	}
}

// TestBaselineGatesNewFindings drops one finding from the baseline and
// checks the diff reports exactly that finding as new — the CI contract:
// pre-existing findings are tolerated, new ones fail the build.
func TestBaselineGatesNewFindings(t *testing.T) {
	l := sharedLoader(t)
	findings := fixtureFindings(t, "shardsafety/bad")
	if len(findings) < 2 {
		t.Fatalf("need at least 2 findings to exercise the gate, got %d", len(findings))
	}
	root := l.ModuleDir
	base := NewReport(findings[1:], root)
	fresh := base.Diff(findings, root)
	if len(fresh) != 1 || !reflect.DeepEqual(fresh[0], findings[0]) {
		t.Errorf("diff = %v, want exactly the dropped finding %v", fresh, findings[0])
	}
}

// TestLoadBaselineMissing checks a missing baseline file is the empty
// baseline, so a fresh checkout needs no bootstrap step.
func TestLoadBaselineMissing(t *testing.T) {
	base, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Findings) != 0 {
		t.Errorf("missing baseline has %d findings, want 0", len(base.Findings))
	}
}

// TestSeededViolationsFailCI seeds one violation per whole-program rule
// (the bad fixtures) and checks each survives an empty-baseline diff —
// the exact path ci.sh gates on: `sornlint -json -baseline` exits
// nonzero when the diff is non-empty.
func TestSeededViolationsFailCI(t *testing.T) {
	l := sharedLoader(t)
	cases := []struct {
		fixture string
		rule    string
	}{
		{"shardsafety/bad", shardSafetyName},
		{"hotalloc/bad", hotAllocName},
		{"obsnil/bad", obsNilName},
		{"stalesuppress", staleSuppressName},
	}
	empty := &Report{}
	for _, c := range cases {
		findings := fixtureFindings(t, c.fixture)
		fresh := empty.Diff(findings, l.ModuleDir)
		n := 0
		for _, f := range fresh {
			if f.Rule == c.rule {
				n++
			}
		}
		if n == 0 {
			t.Errorf("seeded %s violation in %s did not survive the baseline gate", c.rule, c.fixture)
		}
	}
}

// fixtureFindings runs the full analyzer set over one fixture and
// returns the raw findings (not reduced to marks).
func fixtureFindings(t *testing.T, rel string) []Finding {
	t.Helper()
	l := sharedLoader(t)
	dir := filepath.Join("testdata", "src", filepath.FromSlash(rel))
	pkg, err := l.LoadFixture(dir, fixturePath(l, rel))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	return Run([]*Package{pkg}, Analyzers())
}
