package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsNil enforces the observer discipline in internal packages: every
// call on a *obs.Observer method must be dominated by evidence that the
// observer is non-nil — an enclosing `o != nil` branch, an early return
// on `o == nil`, a bool local assigned from such a test, a
// //sornlint:obsguard predicate or field, or an assignment from
// obs.New earlier in the block. Functions annotated //sornlint:obsguarded
// or //sornlint:drain are exempt: their callers own the guarantee.
//
// Separately, an Observer call inside shard-phase code (reachable from
// a //sornlint:shardphase body and not on the //sornlint:drain path) is
// a violation regardless of guards: worker emission order depends on
// scheduling, so events must be staged per shard and drained in fixed
// shard order.
//
// The obs package itself is exempt — its methods are the nil-safe
// boundary the rule protects.
const obsNilName = "obsnil"

var ObsNil = &Analyzer{
	Name: obsNilName,
	Doc:  "require nil-check domination for *obs.Observer calls; forbid direct emission from shard-phase code",
	Run:  runObsNil,
}

func runObsNil(p *Pass) {
	if p.Mod == nil || !p.InternalPkg() {
		return
	}
	obsPath := p.ModulePath + "/internal/obs"
	if p.PkgPath == obsPath || p.PkgPath == obsPath+"_test" {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := p.FuncKey(fd)
			w := &obsWalker{
				p:     p,
				facts: make(map[types.Object]bool),
			}
			if root, ok := p.Mod.ShardReach[key]; ok && !p.Mod.Anno.funcIs(key, annoDrain) {
				w.shardRoot = root
			}
			w.skipGuard = p.Mod.Anno.funcIs(key, annoObsguarded|annoDrain)
			w.block(fd.Body.List, false)
		}
	}
}

// obsWalker tracks guard domination statement by statement. guarded
// flows forward through a block: an early return on a negative guard,
// or an assignment from obs.New, guards everything after it; a positive
// guard condition guards its branch.
type obsWalker struct {
	p         *Pass
	facts     map[types.Object]bool // bool locals that imply the observer is non-nil
	shardRoot string                // non-empty: function is shard-phase reachable
	skipGuard bool                  // obsguarded/drain: nil-guard checking off
}

// block walks a statement list, threading the guarded state.
func (w *obsWalker) block(list []ast.Stmt, guarded bool) {
	for _, s := range list {
		guarded = w.stmt(s, guarded)
	}
}

// stmt processes one statement under the current guard state and
// returns the guard state for the statements after it.
func (w *obsWalker) stmt(s ast.Stmt, guarded bool) bool {
	switch st := s.(type) {
	case *ast.AssignStmt:
		w.exprs(st.Rhs, guarded)
		for _, lhs := range st.Lhs {
			w.expr(lhs, guarded)
		}
		// g := o != nil (or an obsguard predicate) records a fact.
		if st.Tok == token.DEFINE && len(st.Lhs) == 1 && len(st.Rhs) == 1 {
			if id, ok := st.Lhs[0].(*ast.Ident); ok {
				if pos, _ := w.classify(st.Rhs[0]); pos {
					if obj := w.p.Info.Defs[id]; obj != nil {
						w.facts[obj] = true
					}
				}
			}
		}
		// x = obs.New(...): the observer is non-nil from here on.
		for _, rhs := range st.Rhs {
			if w.callsObsNew(rhs) {
				return true
			}
		}
		return guarded
	case *ast.IfStmt:
		if st.Init != nil {
			guarded = w.stmt(st.Init, guarded)
		}
		w.expr(st.Cond, guarded)
		pos, neg := w.classify(st.Cond)
		w.block(st.Body.List, guarded || pos)
		if st.Else != nil {
			w.stmt(st.Else, guarded || neg)
		}
		// if o == nil { return } dominates the rest of the block.
		if neg && st.Else == nil && terminates(st.Body) {
			return true
		}
		return guarded
	case *ast.BlockStmt:
		w.block(st.List, guarded)
	case *ast.ExprStmt:
		w.expr(st.X, guarded)
	case *ast.ReturnStmt:
		w.exprs(st.Results, guarded)
	case *ast.IncDecStmt:
		w.expr(st.X, guarded)
	case *ast.SendStmt:
		w.expr(st.Chan, guarded)
		w.expr(st.Value, guarded)
	case *ast.DeferStmt:
		w.expr(st.Call, guarded)
	case *ast.GoStmt:
		w.expr(st.Call, guarded)
	case *ast.ForStmt:
		if st.Init != nil {
			guarded = w.stmt(st.Init, guarded)
		}
		if st.Cond != nil {
			w.expr(st.Cond, guarded)
		}
		if st.Post != nil {
			w.stmt(st.Post, guarded)
		}
		w.block(st.Body.List, guarded)
	case *ast.RangeStmt:
		w.expr(st.X, guarded)
		w.block(st.Body.List, guarded)
	case *ast.SwitchStmt:
		if st.Init != nil {
			guarded = w.stmt(st.Init, guarded)
		}
		if st.Tag != nil {
			w.expr(st.Tag, guarded)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.exprs(cc.List, guarded)
				w.block(cc.Body, guarded)
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			guarded = w.stmt(st.Init, guarded)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(cc.Body, guarded)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm, guarded)
				}
				w.block(cc.Body, guarded)
			}
		}
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, guarded)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(vs.Values, guarded)
				}
			}
		}
	}
	return guarded
}

// exprs checks a list of expressions under one guard state.
func (w *obsWalker) exprs(es []ast.Expr, guarded bool) {
	for _, e := range es {
		w.expr(e, guarded)
	}
}

// expr scans one expression tree for Observer method calls. Function
// literals start a fresh unguarded context: a closure may run long
// after the guard that surrounded its creation.
func (w *obsWalker) expr(e ast.Expr, guarded bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.block(x.Body.List, false)
			return false
		case *ast.CallExpr:
			if method := w.observerMethod(x); method != "" {
				if w.shardRoot != "" {
					w.p.Reportf(x.Pos(), obsNilName,
						"(*obs.Observer).%s called from shard-phase code (reachable from %s); stage events per shard and emit them on the //sornlint:drain path",
						method, w.shardRoot)
				} else if !guarded && !w.skipGuard {
					w.p.Reportf(x.Pos(), obsNilName,
						"(*obs.Observer).%s call is not dominated by a nil check; guard it or annotate the function //sornlint:obsguarded",
						method)
				}
			}
		}
		return true
	})
}

// observerMethod returns the method name if call is a method call on
// *obs.Observer, else "".
func (w *obsWalker) observerMethod(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := w.p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if namedKey(sig.Recv().Type()) == w.p.ModulePath+"/internal/obs.Observer" {
		return fn.Name()
	}
	return ""
}

// callsObsNew reports whether the expression tree contains a call to
// obs.New (whose result is never nil).
func (w *obsWalker) callsObsNew(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if calleeFullName(w.p, call) == w.p.ModulePath+"/internal/obs.New" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// classify reports whether e being true (pos) or false (neg) proves
// the observer is non-nil.
func (w *obsWalker) classify(e ast.Expr) (pos, neg bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ:
			var operand ast.Expr
			if isNilIdent(w.p, x.Y) {
				operand = x.X
			} else if isNilIdent(w.p, x.X) {
				operand = x.Y
			} else {
				return false, false
			}
			if !w.isObserverExpr(operand) {
				return false, false
			}
			if x.Op == token.NEQ {
				return true, false // o != nil: true => non-nil
			}
			return false, true // o == nil: false => non-nil
		case token.LAND:
			xp, _ := w.classify(x.X)
			yp, _ := w.classify(x.Y)
			return xp || yp, false
		case token.LOR:
			_, xn := w.classify(x.X)
			_, yn := w.classify(x.Y)
			return false, xn || yn
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			pos, neg = w.classify(x.X)
			return neg, pos
		}
	case *ast.Ident:
		if obj := w.p.Info.Uses[x]; obj != nil && w.facts[obj] {
			return true, false
		}
	case *ast.SelectorExpr:
		if w.isObsguardField(x) {
			return true, false
		}
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := w.p.Info.Uses[sel.Sel].(*types.Func); ok && w.p.Mod.Anno.funcIs(funcKey(fn), annoObsguard) {
				return true, false
			}
		}
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if fn, ok := w.p.Info.Uses[id].(*types.Func); ok && w.p.Mod.Anno.funcIs(funcKey(fn), annoObsguard) {
				return true, false
			}
		}
	}
	return false, false
}

// isObserverExpr reports whether e has type *obs.Observer.
func (w *obsWalker) isObserverExpr(e ast.Expr) bool {
	t := w.p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if _, ok := t.(*types.Pointer); !ok {
		return false
	}
	return namedKey(t) == w.p.ModulePath+"/internal/obs.Observer"
}

// isObsguardField reports whether sel resolves to a struct field
// annotated //sornlint:obsguard.
func (w *obsWalker) isObsguardField(sel *ast.SelectorExpr) bool {
	s, ok := w.p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return false
	}
	return w.p.Mod.Anno.fieldIs(s.Recv(), v.Name(), annoObsguard)
}

// terminates reports whether a block's last statement unconditionally
// leaves the enclosing flow (return, panic, or a branch statement).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(last.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}
