// Package fixture is the obsnil clean case: every guard shape the rule
// accepts, in one place.
package fixture

import "repro/internal/obs"

type sim struct {
	o      *obs.Observer
	traced bool //sornlint:obsguard
}

// timed reports whether phase timing is on; true implies o != nil.
//
//sornlint:obsguard
func (s *sim) timed() bool { return s.o != nil }

// direct guards with an enclosing branch.
func (s *sim) direct(slot int64) {
	if s.o != nil {
		s.o.Emit(obs.Event{Slot: slot})
	}
}

// early guards with an early return on the nil case.
func (s *sim) early(slot int64) {
	if s.o == nil {
		return
	}
	s.o.Emit(obs.Event{Slot: slot})
}

// facts guards through a recorded bool local, an obsguard predicate,
// and an obsguard field.
func (s *sim) facts(slot int64) {
	on := s.o != nil
	if on {
		s.o.Emit(obs.Event{Slot: slot})
	}
	if s.timed() {
		s.o.Emit(obs.Event{Slot: slot})
	}
	if s.traced {
		s.o.Emit(obs.Event{Slot: slot})
	}
}

// fresh observers from obs.New are non-nil by construction.
func newRun() *obs.Observer {
	o := obs.New(obs.Options{})
	o.StartRun("fixture")
	return o
}

// drainAll is annotated: its callers own the non-nil guarantee.
//
//sornlint:obsguarded
func (s *sim) drainAll(slot int64) {
	s.o.Emit(obs.Event{Slot: slot})
}
