// Package fixture exercises obsnil: unguarded Observer calls and
// direct emission from shard-phase code must be flagged.
package fixture

import "repro/internal/obs"

type sim struct {
	o *obs.Observer
}

// unguarded calls the observer with no nil evidence at all.
func (s *sim) unguarded(slot int64) {
	s.o.Emit(obs.Event{Slot: slot}) // want:obsnil
}

// wrongBranch has a guard, but the call sits where it proves nothing.
func (s *sim) wrongBranch(slot int64) {
	if s.o == nil {
		s.o.Emit(obs.Event{Slot: slot}) // want:obsnil
	}
	s.o.Emit(obs.Event{Slot: slot}) // want:obsnil
}

// escaped creates a closure inside a guard: the closure may run long
// after the guard, so it starts unguarded.
func (s *sim) escaped(slot int64) func() {
	if s.o != nil {
		return func() {
			s.o.Emit(obs.Event{Slot: slot}) // want:obsnil
		}
	}
	return nil
}

// phase is worker code: emission is a violation even when guarded,
// because worker emission order depends on scheduling.
//
//sornlint:shardphase
func (s *sim) phase(slot int64) {
	if s.o != nil {
		s.o.Emit(obs.Event{Slot: slot}) // want:obsnil
	}
}
