// Package fixture exercises stalesuppress: directives and annotations
// must earn their keep.
package fixture

func mayFail() error { return nil }

// useful suppresses a real finding, so it is not stale.
func useful() {
	mayFail() //sornlint:ignore droppederr -- fixture: suppression that earns its keep
}

// stale names a real rule that produces no finding here.
func stale() int {
	x := 1
	//sornlint:ignore droppederr -- fixture: nothing to suppress (want:stalesuppress)
	return x
}

// unknown names a rule that does not exist.
func unknown() int {
	//sornlint:ignore nosuchrule -- fixture: bogus rule name (want:stalesuppress)
	return 2
}

// emptyIgnore has a directive that names no rules at all.
func emptyIgnore() int {
	//sornlint:ignore -- fixture: directive without rules (want:stalesuppress)
	return 3
}

// badVerb carries an annotation verb that does not exist.
//
//sornlint:frobnicate (want:stalesuppress)
func badVerb() {}

// misapplied carries a declaration-kind mismatch: staged marks types,
// fields, and package variables, never functions.
//
//sornlint:staged (want:stalesuppress)
func misapplied() {}

var local int //sornlint:hotpath (want:stalesuppress)
