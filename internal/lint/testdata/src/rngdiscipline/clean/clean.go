// Package fixture shows the sanctioned RNG style: streams are instance
// or parameter scoped, never package globals.
package fixture

import "repro/internal/rng"

// Sampler owns its stream; callers decide the seed.
type Sampler struct{ r *rng.RNG }

// NewSampler seeds a sampler explicitly.
func NewSampler(seed uint64) *Sampler { return &Sampler{r: rng.New(seed)} }

// Draw consumes the instance-scoped stream.
func (s *Sampler) Draw(n int) int { return s.r.Intn(n) }

// Roll threads the stream as a parameter.
func Roll(r *rng.RNG) float64 { return r.Float64() }
