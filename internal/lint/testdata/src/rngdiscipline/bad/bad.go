// Package fixture seeds rngdiscipline violations: generator state held
// in package-level variables.
package fixture

import "repro/internal/rng"

var shared = rng.New(42) // want:rngdiscipline

var zipfTable *rng.Zipf // want:rngdiscipline

var streams []*rng.RNG // want:rngdiscipline

// Draw silently couples every caller through the shared stream.
func Draw() int { return shared.Intn(8) }
