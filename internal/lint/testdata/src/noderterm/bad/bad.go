// Package fixture seeds noderterm violations: ambient randomness,
// wall-clock time, and environment lookups in an internal package.
package fixture

import (
	"math/rand" // want:noderterm
	"os"
	"time"
)

// Snapshot reaches for every ambient-nondeterminism escape hatch the
// rule bans.
func Snapshot() (time.Time, string, int64) {
	t := time.Now()           // want:noderterm
	elapsed := time.Since(t)  // want:noderterm
	home := os.Getenv("HOME") // want:noderterm
	return t, home, int64(elapsed) + int64(rand.Int())
}
