// Package fixture shows the sanctioned style: virtual slot time and an
// explicitly threaded RNG stream.
package fixture

import "repro/internal/rng"

// Draw advances virtual time by a seeded, reproducible amount.
func Draw(r *rng.RNG, slot int64) int64 {
	return slot + int64(r.Intn(16))
}
