// Package fixture exercises the //sornlint:ignore directive: it must
// suppress exactly the named rule, on its own line or the line above.
package fixture

func mayFail() error { return nil }

// Suppressed is a maporder violation silenced by a directive above it.
func Suppressed(m map[int]int) []int {
	var out []int
	//sornlint:ignore maporder -- ordering is irrelevant in this fixture
	for k := range m {
		out = append(out, k)
	}
	return out
}

// WrongRule names a different rule, so maporder must still fire.
func WrongRule(m map[int]int) []int {
	var out []int
	//sornlint:ignore floateq -- wrong rule on purpose; must not silence maporder (and is itself stale: want:stalesuppress)
	for k := range m { // want:maporder
		out = append(out, k)
	}
	return out
}

// SameLine is a droppederr violation silenced on its own line.
func SameLine() {
	mayFail() //sornlint:ignore droppederr -- fixture exercises same-line suppression
}

// Unsuppressed keeps the rule observable in this package.
func Unsuppressed() {
	mayFail() // want:droppederr
}
