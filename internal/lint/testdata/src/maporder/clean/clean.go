// Package fixture shows order-insensitive and sorted map iteration,
// which the maporder rule accepts.
package fixture

import "repro/internal/sortedmap"

// Collect uses the shared sorted-key helper.
func Collect(m map[string]int) []string {
	return sortedmap.Keys(m)
}

// Total accumulates in ascending key order.
func Total(m map[int]float64) float64 {
	sum := 0.0
	sortedmap.Range(m, func(_ int, v float64) { sum += v })
	return sum
}

// Invert only writes another map; order cannot be observed.
func Invert(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Count performs a pure reduction over ints; order cannot matter.
func Count(m map[int]bool) int {
	n := 0
	for range m {
		n++
	}
	return n
}
