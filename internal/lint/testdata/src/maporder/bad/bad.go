// Package fixture seeds maporder violations: order-sensitive work
// inside ranges over maps.
package fixture

import "fmt"

// Collect builds a slice in random map order.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m { // want:maporder
		out = append(out, k)
	}
	return out
}

// Total accumulates floats in random map order.
func Total(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m { // want:maporder
		sum += v
	}
	return sum
}

// Dump prints in random map order.
func Dump(m map[int]int) {
	for k, v := range m { // want:maporder
		fmt.Println(k, v)
	}
}

// Feed sends in random map order.
func Feed(m map[int]int, ch chan<- int) {
	for k := range m { // want:maporder
		ch <- k
	}
}
