// Package fixture is the hotalloc clean case: the repository's
// hot-path idioms — reused buffers, amortized field growth, explicit
// capacities, and annotated cold slow paths — must all pass.
package fixture

// ring is a reusable buffer owned by its caller.
type ring struct {
	buf  []int
	head int
}

// push appends to a field: amortized growth of a caller-owned buffer.
//
//sornlint:hotpath
func (r *ring) push(v int) {
	if len(r.buf) == cap(r.buf) {
		r.grow()
	}
	r.buf = append(r.buf, v)
	r.head++
}

// grow is the deliberate slow path: the reachability walk stops here.
//
//sornlint:coldpath
func (r *ring) grow() {
	nb := make([]int, len(r.buf), 2*cap(r.buf)+1)
	copy(nb, r.buf)
	r.buf = nb
	m := map[int]int{len(nb): cap(nb)} // cold: allocation is fine here
	_ = m
}

// fill exercises the accepted append targets: a parameter, a reused
// prefix, and a make with explicit sizing.
//
//sornlint:hotpath
func fill(buf []int, n int) []int {
	buf = buf[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	tmp := make([]int, 0, n)
	tmp = append(tmp, n)
	return append(buf, tmp...)
}
