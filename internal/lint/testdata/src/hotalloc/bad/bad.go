// Package fixture exercises hotalloc: heap-allocating constructs in
// //sornlint:hotpath-reachable code must be flagged.
package fixture

import "fmt"

type point struct{ x, y int }

// hot is a hot-path root.
//
//sornlint:hotpath
func hot(buf []int, n int) []int {
	m := map[int]int{}           // want:hotalloc
	m[n] = 1                     // want:hotalloc
	f := func() int { return n } // want:hotalloc
	_ = f
	fmt.Sprintln(n)   // want:hotalloc
	p := &point{x: n} // want:hotalloc
	_ = p
	var xs []int
	xs = append(xs, n)              // want:hotalloc
	var i interface{} = point{x: n} // want:hotalloc
	_ = i
	buf = append(buf, helper(n))
	return buf
}

// helper is transitively hot through the call in hot.
func helper(n int) int {
	q := new(point) // want:hotalloc
	q.x = n
	return q.x
}

// router dispatches dynamically: annotating the interface method makes
// every implementation hot via class-hierarchy analysis.
type router interface {
	//sornlint:hotpath
	route(buf []int, n int) []int
}

type impl struct{}

func (impl) route(buf []int, n int) []int {
	bad := []int{}
	bad = append(bad, n) // want:hotalloc
	return append(buf, bad[0])
}
