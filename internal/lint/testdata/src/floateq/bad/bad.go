// Package fixture seeds floateq violations: exact equality between
// floating-point operands in non-test code.
package fixture

// Same compares computed floats exactly.
func Same(a, b float64) bool {
	return a == b // want:floateq
}

// Missing scans with exact inequality on float32.
func Missing(xs []float32, x float32) bool {
	for _, v := range xs {
		if v != x { // want:floateq
			return true
		}
	}
	return false
}
