// Package fixture shows tolerance-based comparison, which floateq
// accepts, alongside integer equality it never flags.
package fixture

import "math"

const eps = 1e-9

// Close compares within a tolerance.
func Close(a, b float64) bool {
	return math.Abs(a-b) < eps
}

// IntEq is integer equality; not a float comparison.
func IntEq(a, b int) bool { return a == b }
