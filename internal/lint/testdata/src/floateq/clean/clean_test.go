package fixture

// Exact float comparison is allowed in _test.go files, where expected
// values are constructed to be exactly representable.
func sameExactly(a, b float64) bool { return a == b }
