// Package fixture seeds droppederr violations: statements that discard
// a returned error.
package fixture

import (
	"fmt"
	"os"
)

func mayFail() error { return nil }

func sizeAndErr() (int, error) { return 0, nil }

// Run drops every error in sight.
func Run(w *os.File) {
	mayFail()             // want:droppederr
	sizeAndErr()          // want:droppederr
	fmt.Fprintf(w, "out") // want:droppederr
}
