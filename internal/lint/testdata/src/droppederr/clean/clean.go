// Package fixture shows the accepted error-handling styles: checked,
// explicitly discarded, or written to sinks that cannot fail.
package fixture

import (
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

// Run handles or visibly discards every error.
func Run() error {
	if err := mayFail(); err != nil {
		return err
	}
	_ = mayFail()
	fmt.Println("progress")
	fmt.Fprintf(os.Stderr, "warning\n")
	var b strings.Builder
	b.WriteString("chunk")
	fmt.Fprintf(&b, "formatted %d", 1)
	return mayFail()
}
