// Package fixture is the shardsafety clean case: staged state, the
// drain path, and serially dominated writes are all legal.
package fixture

// stage is the per-shard staging area.
//
//sornlint:staged
type stage struct {
	count int64
}

type engine struct {
	total  int64
	staged []int64 //sornlint:staged
}

// landPhase stages its writes and defers shared-state updates to the
// serial branch or the drain path.
//
//sornlint:shardphase
func (e *engine) landPhase(sh *stage) {
	e.staged[0]++
	sh.count++
	e.note(sh)
	e.flush(sh)
}

// note writes shared state only when the nil shard pointer proves the
// serial engine is running.
func (e *engine) note(sh *stage) {
	if sh != nil {
		sh.count++
	} else {
		e.total++
	}
}

// flush is the drain path: the reachability walk stops here, and its
// shared-state writes are the point.
//
//sornlint:drain
func (e *engine) flush(sh *stage) {
	if sh != nil {
		e.total += sh.count
		sh.count = 0
	}
}
