// Package fixture exercises shardsafety: code reachable from a
// //sornlint:shardphase body may only write staged per-shard state.
package fixture

// stage is the per-shard staging area; a nil *stage means the caller
// is the serial engine.
//
//sornlint:staged
type stage struct {
	count int64
	buf   []int64
}

type engine struct {
	total  int64
	done   bool
	staged []int64 //sornlint:staged
}

var hits int

// landPhase is a worker-phase body: the root of the reachability walk.
//
//sornlint:shardphase
func (e *engine) landPhase(sh *stage) {
	e.total++ // want:shardsafety
	e.staged[0]++
	sh.count++
	e.helper(sh)
}

// helper is reachable from the phase body, so the same discipline
// applies transitively.
func (e *engine) helper(sh *stage) {
	hits++ // want:shardsafety
	if sh == nil {
		e.total++ // serial context: the caller owns all state
		return
	}
	sh.buf = append(sh.buf, e.total)
	e.done = true // want:shardsafety
}

// outside is not reachable from any phase, so its writes are fine.
func (e *engine) outside() {
	e.total++
	hits++
}
