package lint

import (
	"fmt"
	"sort"
)

// StaleSuppress audits the suppression and annotation machinery itself:
// an //sornlint:ignore directive naming an unknown rule is reported
// (the directive would otherwise silently suppress nothing), a
// directive whose named rule produced zero suppressed findings is
// reported as stale, and //sornlint:<verb> annotations that are
// malformed or attached to declarations they cannot apply to are
// reported. This keeps the repository's justified suppressions (the
// floateq sentinel comparisons, the obs wall-clock read) from rotting
// as the code around them changes.
//
// Staleness is only judged for rules active in the current run: a
// -only subset must not flag directives for the rules it skipped.
const staleSuppressName = "stalesuppress"

var StaleSuppress = &Analyzer{
	Name: staleSuppressName,
	Doc:  "flag ignore directives that suppress nothing, name unknown rules, or are misplaced",
}

// Run is wired in init: runStaleSuppress asks Analyzers() for the known
// rule names, which would otherwise be an initialization cycle.
func init() { StaleSuppress.Run = runStaleSuppress }

func runStaleSuppress(p *Pass) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	// Directives are collected in file order; report in source order.
	dirs := append([]*directive(nil), p.directives...)
	sort.Slice(dirs, func(i, j int) bool {
		a, b := dirs[i].pos, dirs[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, d := range dirs {
		for _, r := range d.rules {
			switch {
			case !known[r]:
				p.reportDirective(d, "unknown rule %q in //sornlint:ignore directive; run `sornlint -rules` for the rule list", r)
			case p.active[r] && d.used[r] == 0:
				p.reportDirective(d, "//sornlint:ignore %s suppresses no finding; remove the stale directive", r)
			}
		}
	}
	if p.Mod != nil {
		for _, issue := range p.Mod.issues[p.PkgPath] {
			p.Reportf(issue.pos, staleSuppressName, "%s", issue.msg)
		}
	}
}

// reportDirective records a finding at a directive's own position. It
// bypasses Reportf's suppression lookup: a stale directive must not be
// able to suppress the report of its own staleness (unless it names
// stalesuppress explicitly, which Reportf-style matching would allow —
// so the explicit case is honored here).
func (p *Pass) reportDirective(d *directive, format string, args ...interface{}) {
	for _, r := range d.rules {
		if r == staleSuppressName {
			d.used[staleSuppressName]++
			return
		}
	}
	*p.findings = append(*p.findings, Finding{
		Pos:  d.pos,
		Rule: staleSuppressName,
		Msg:  fmt.Sprintf(format, args...),
	})
}
