package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShardSafety enforces the sharded simulator's write discipline: inside
// every function reachable from a //sornlint:shardphase body, writes to
// shared state — fields of the receiver, or package-level variables —
// are violations unless the target is annotated //sornlint:staged, the
// function is part of the //sornlint:drain merge path, or the write is
// serially dominated (it sits in a branch that proves the staged-shard
// parameter is nil, i.e. the caller is the serial engine, which owns
// all state).
//
// Writes through local variables and parameters are trusted: a worker
// that aliases shared state into a local (st := &s.stats) evades the
// rule. That hole is accepted — the rule front-runs the runtime
// determinism tests, it does not replace them — and the aliasing
// pattern in netsim.deliver picks the target under the same sh-nil
// branch this rule understands.
const shardSafetyName = "shardsafety"

var ShardSafety = &Analyzer{
	Name: shardSafetyName,
	Doc:  "forbid writes to non-staged shared state in shard-phase code",
	Run:  runShardSafety,
}

func runShardSafety(p *Pass) {
	if p.Mod == nil {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := p.FuncKey(fd)
			root, reached := p.Mod.ShardReach[key]
			if !reached || p.Mod.Anno.funcIs(key, annoDrain) {
				continue
			}
			w := &shardWalker{p: p, root: root, serialParams: make(map[types.Object]bool)}
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				w.recv = p.Info.Defs[fd.Recv.List[0].Names[0]]
			}
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					for _, nm := range field.Names {
						obj := p.Info.Defs[nm]
						if obj != nil && p.Mod.Anno.typeStaged(obj.Type()) {
							w.serialParams[obj] = true
						}
					}
				}
			}
			w.stmt(fd.Body, false)
			// Closures run outside the statement walk's branch context;
			// analyze their bodies without serial domination.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					w.stmt(fl.Body, false)
				}
				return true
			})
		}
	}
}

// shardWalker tracks serial domination through a shard-phase body: a
// branch entered only when the staged-shard pointer parameter is nil is
// the serial engine's context, where direct writes to shared state are
// the intended path.
type shardWalker struct {
	p            *Pass
	root         string
	recv         types.Object
	serialParams map[types.Object]bool
}

func (w *shardWalker) stmt(s ast.Stmt, serial bool) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		for _, s2 := range st.List {
			w.stmt(s2, serial)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init, serial)
		}
		pos, neg := w.classifyCond(st.Cond)
		w.stmt(st.Body, serial || pos)
		if st.Else != nil {
			w.stmt(st.Else, serial || neg)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init, serial)
		}
		if st.Post != nil {
			w.stmt(st.Post, serial)
		}
		w.stmt(st.Body, serial)
	case *ast.RangeStmt:
		if st.Tok == token.ASSIGN {
			if st.Key != nil {
				w.checkWrite(st.Key, serial)
			}
			if st.Value != nil {
				w.checkWrite(st.Value, serial)
			}
		}
		w.stmt(st.Body, serial)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, serial)
		}
		w.stmt(st.Body, serial)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, serial)
		}
		w.stmt(st.Body, serial)
	case *ast.SelectStmt:
		w.stmt(st.Body, serial)
	case *ast.CaseClause:
		for _, s2 := range st.Body {
			w.stmt(s2, serial)
		}
	case *ast.CommClause:
		if st.Comm != nil {
			w.stmt(st.Comm, serial)
		}
		for _, s2 := range st.Body {
			w.stmt(s2, serial)
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, serial)
	case *ast.AssignStmt:
		for _, lhs := range st.Lhs {
			w.checkWrite(lhs, serial)
		}
	case *ast.IncDecStmt:
		w.checkWrite(st.X, serial)
	case *ast.SendStmt:
		w.checkWrite(st.Chan, serial)
	}
}

// classifyCond reports whether the condition being true (pos) or false
// (neg) proves the staged-shard parameter is nil — the serial context.
func (w *shardWalker) classifyCond(e ast.Expr) (pos, neg bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ:
			var operand ast.Expr
			if isNilIdent(w.p, x.Y) {
				operand = x.X
			} else if isNilIdent(w.p, x.X) {
				operand = x.Y
			} else {
				return false, false
			}
			id, ok := ast.Unparen(operand).(*ast.Ident)
			if !ok || !w.serialParams[w.p.Info.Uses[id]] {
				return false, false
			}
			if x.Op == token.EQL {
				return true, false // sh == nil: true => serial
			}
			return false, true // sh != nil: false => serial
		case token.LAND:
			xp, _ := w.classifyCond(x.X)
			yp, _ := w.classifyCond(x.Y)
			return xp || yp, false
		case token.LOR:
			_, xn := w.classifyCond(x.X)
			_, yn := w.classifyCond(x.Y)
			return false, xn || yn
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			pos, neg = w.classifyCond(x.X)
			return neg, pos
		}
	}
	return false, false
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(p *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Info.Uses[id].(*types.Nil)
	return isNil
}

// checkWrite flags an assignment target rooted at the receiver (into a
// non-staged field) or at a non-staged package-level variable, unless
// serially dominated.
func (w *shardWalker) checkWrite(lhs ast.Expr, serial bool) {
	if serial {
		return
	}
	root, firstSel := writeRoot(lhs)
	if root == nil {
		return
	}
	obj := w.p.Info.Uses[root]
	if obj == nil {
		obj = w.p.Info.Defs[root]
	}
	if obj == nil {
		return
	}
	switch {
	case w.recv != nil && obj == w.recv:
		if firstSel == nil {
			return // rebinding the receiver variable itself is local
		}
		field := firstSel.Sel.Name
		if w.p.Mod.Anno.fieldIs(w.recv.Type(), field, annoStaged) {
			return
		}
		w.p.Reportf(lhs.Pos(), shardSafetyName,
			"shard-phase write to %s.%s (reachable from %s); stage it per shard (//sornlint:staged) or confine it to the //sornlint:drain path",
			root.Name, field, w.root)
	case isPackageLevel(obj, w.p.Pkg):
		v, ok := obj.(*types.Var)
		if !ok || w.p.Mod.Anno.varStaged(v) {
			return
		}
		w.p.Reportf(lhs.Pos(), shardSafetyName,
			"shard-phase write to package-level %s (reachable from %s); shared globals break sharded determinism",
			root.Name, w.root)
	}
}

// isPackageLevel reports whether obj is declared at pkg's top level.
func isPackageLevel(obj types.Object, pkg *types.Package) bool {
	return pkg != nil && obj.Parent() == pkg.Scope()
}

// writeRoot peels an assignment target down to its root identifier,
// remembering the selector closest to the root (the first field of the
// access path): s.stats.DroppedCells -> (s, .stats).
func writeRoot(lhs ast.Expr) (*ast.Ident, *ast.SelectorExpr) {
	var firstSel *ast.SelectorExpr
	e := lhs
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			firstSel = t
			e = t.X
		case *ast.Ident:
			return t, firstSel
		default:
			return nil, nil
		}
	}
}
