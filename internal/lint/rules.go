package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ---------------------------------------------------------------------------
// noderterm: no wall-clock time or ambient randomness in internal packages.
// ---------------------------------------------------------------------------

// NoDeterm forbids the ambient-nondeterminism escape hatches in
// <module>/internal/... packages: calls to time.Now, time.Since, and
// os.Getenv, and any import of math/rand (v1 or v2). Simulation code
// must use virtual time and explicit internal/rng streams only.
const noDetermName = "noderterm"

var NoDeterm = &Analyzer{
	Name: noDetermName,
	Doc:  "forbid time.Now/time.Since/os.Getenv and math/rand in internal packages",
	Run:  runNoDeterm,
}

var bannedCalls = map[string]string{
	"time.Now":   "wall-clock time is nondeterministic; use virtual slot time",
	"time.Since": "wall-clock time is nondeterministic; use virtual slot time",
	"os.Getenv":  "environment lookups make runs irreproducible; thread configuration explicitly",
}

var bannedImports = map[string]string{
	"math/rand":    "ambient randomness breaks reproducibility; thread an explicit *rng.RNG",
	"math/rand/v2": "ambient randomness breaks reproducibility; thread an explicit *rng.RNG",
}

func runNoDeterm(p *Pass) {
	if !p.InternalPkg() {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := bannedImports[path]; ok {
				p.Reportf(imp.Pos(), noDetermName, "import of %s in internal package: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			if why, ok := bannedCalls[fn.FullName()]; ok {
				p.Reportf(call.Pos(), noDetermName, "call to %s in internal package: %s", fn.FullName(), why)
			}
			return true
		})
	}
}

// ---------------------------------------------------------------------------
// rngdiscipline: no package-level RNG state.
// ---------------------------------------------------------------------------

// RNGDiscipline forbids package-level variables holding rng.RNG or
// rng.Zipf state (directly or behind pointers/containers). Shared global
// generator state couples otherwise-independent call sites, so the same
// experiment yields different numbers depending on what ran before it;
// stochastic functions must thread an explicit *rng.RNG parameter.
const rngDisciplineName = "rngdiscipline"

var RNGDiscipline = &Analyzer{
	Name: rngDisciplineName,
	Doc:  "forbid package-level RNG state; thread explicit *rng.RNG parameters",
	Run:  runRNGDiscipline,
}

func runRNGDiscipline(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := p.Info.Defs[name]
					if obj == nil {
						continue
					}
					if holdsRNGState(obj.Type(), p.ModulePath, 0) {
						p.Reportf(name.Pos(), rngDisciplineName,
							"package-level variable %s holds RNG state (%s); thread an explicit *rng.RNG instead",
							name.Name, obj.Type())
					}
				}
			}
		}
	}
}

// holdsRNGState reports whether t is (or trivially contains) internal/rng
// generator state.
func holdsRNGState(t types.Type, modulePath string, depth int) bool {
	if depth > 4 {
		return false
	}
	switch u := t.(type) {
	case *types.Pointer:
		return holdsRNGState(u.Elem(), modulePath, depth+1)
	case *types.Slice:
		return holdsRNGState(u.Elem(), modulePath, depth+1)
	case *types.Array:
		return holdsRNGState(u.Elem(), modulePath, depth+1)
	case *types.Map:
		return holdsRNGState(u.Elem(), modulePath, depth+1)
	case *types.Named:
		obj := u.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == modulePath+"/internal/rng" &&
			(obj.Name() == "RNG" || obj.Name() == "Zipf") {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// maporder: no order-sensitive work inside a range over a map.
// ---------------------------------------------------------------------------

// MapOrder flags range statements over maps whose body does something
// iteration-order-sensitive: appending to a slice, accumulating floating
// point (addition is not associative), emitting output, or sending on a
// channel. Go randomizes map order per run, so each of these makes the
// result depend on the run. Iterate sorted keys instead, e.g. with
// internal/sortedmap.Keys or sortedmap.Range.
const mapOrderName = "maporder"

var MapOrder = &Analyzer{
	Name: mapOrderName,
	Doc:  "forbid order-sensitive loop bodies when ranging over a map",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if reason := orderSensitive(p, rs.Body); reason != "" {
				p.Reportf(rs.Pos(), mapOrderName,
					"range over map %s %s; map iteration order is random — iterate sorted keys (internal/sortedmap)",
					exprString(p, rs.X), reason)
			}
			return true
		})
	}
}

// orderSensitive scans a map-range body for constructs whose result
// depends on iteration order. Nested map ranges are skipped; they are
// analyzed as their own range statements.
func orderSensitive(p *Pass, body *ast.BlockStmt) string {
	reason := ""
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					return false // reported on its own
				}
			}
		case *ast.SendStmt:
			reason = "sends on a channel"
			return false
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range s.Lhs {
					if isFloat(p.Info.TypeOf(lhs)) {
						reason = "accumulates floating point (addition is not associative)"
						return false
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok {
				if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					reason = "appends to a slice"
					return false
				}
			}
			if name := calleeFullName(p, s); name != "" && writesOutput(name) {
				reason = "writes output"
				return false
			}
		}
		return true
	}
	ast.Inspect(body, visit)
	return reason
}

// writesOutput reports whether the named function emits external or
// buffered output whose ordering is observable.
func writesOutput(fullName string) bool {
	switch {
	case strings.HasPrefix(fullName, "fmt.Print"),
		strings.HasPrefix(fullName, "fmt.Fprint"),
		strings.HasPrefix(fullName, "(*strings.Builder).Write"),
		strings.HasPrefix(fullName, "(*bytes.Buffer).Write"):
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// floateq: no exact floating-point equality outside tests.
// ---------------------------------------------------------------------------

// FloatEq flags == and != between floating-point operands in non-test
// files. Exact equality of computed floats silently depends on
// evaluation order, compiler fusing, and platform; compare against a
// tolerance instead (or suppress with a directive where exactness is
// intentional, e.g. sentinel comparisons against literal constants).
const floatEqName = "floateq"

var FloatEq = &Analyzer{
	Name: floatEqName,
	Doc:  "forbid ==/!= between floating-point operands outside tests",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := p.Info.Types[be.X], p.Info.Types[be.Y]
			if !isFloat(tx.Type) && !isFloat(ty.Type) {
				return true
			}
			if tx.Value != nil && ty.Value != nil {
				return true // constant-folded at compile time
			}
			p.Reportf(be.OpPos, floatEqName,
				"floating-point %s comparison; use a tolerance, or suppress where exactness is intended", be.Op)
			return true
		})
	}
}

// ---------------------------------------------------------------------------
// droppederr: no silently ignored error returns.
// ---------------------------------------------------------------------------

// DroppedErr flags call statements that discard a returned error.
// Writes to in-memory buffers and fmt printing to standard streams are
// exempt (they cannot meaningfully fail).
const droppedErrName = "droppederr"

var DroppedErr = &Analyzer{
	Name: droppedErrName,
	Doc:  "forbid statements that drop a returned error",
	Run:  runDroppedErr,
}

func runDroppedErr(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(p, call) || exemptErrDrop(p, call) {
				return true
			}
			p.Reportf(call.Pos(), droppedErrName,
				"result of %s includes an error that is dropped; handle it or assign it explicitly",
				calleeName(p, call))
			return true
		})
	}
}

// returnsError reports whether the call's result is, or ends with, error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(tv.Type)
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// exemptErrDrop allowlists the conventional cannot-fail call sites.
func exemptErrDrop(p *Pass, call *ast.CallExpr) bool {
	name := calleeFullName(p, call)
	if name == "" {
		return false
	}
	switch {
	case strings.HasPrefix(name, "(*strings.Builder)."),
		strings.HasPrefix(name, "(*bytes.Buffer)."):
		return true
	case strings.HasPrefix(name, "fmt.Print"):
		return true
	case strings.HasPrefix(name, "fmt.Fprint"):
		return fprintsToStdStream(p, call)
	}
	return false
}

// fprintsToStdStream reports whether a fmt.Fprint* call writes to
// os.Stdout/os.Stderr or an in-memory buffer.
func fprintsToStdStream(p *Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	arg := ast.Unparen(call.Args[0])
	if sel, ok := arg.(*ast.SelectorExpr); ok {
		if v, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && v.Pkg() != nil && v.Pkg().Path() == "os" &&
			(v.Name() == "Stdout" || v.Name() == "Stderr") {
			return true
		}
	}
	switch p.Info.TypeOf(arg).String() {
	case "*strings.Builder", "*bytes.Buffer":
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// shared helpers
// ---------------------------------------------------------------------------

// isFloat reports whether t's underlying type is float32 or float64.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0 && b.Info()&types.IsComplex == 0
}

// calleeFullName resolves a call to its callee's fully qualified name
// ("time.Now", "(*strings.Builder).WriteString"), or "".
func calleeFullName(p *Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn.FullName()
		}
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn.FullName()
		}
	}
	return ""
}

// calleeName renders the callee for a message, falling back to source text.
func calleeName(p *Pass, call *ast.CallExpr) string {
	if name := calleeFullName(p, call); name != "" {
		return name
	}
	return exprString(p, call.Fun)
}

// exprString renders a (simple) expression for diagnostics.
func exprString(p *Pass, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(p, x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(p, x.X) + "[" + exprString(p, x.Index) + "]"
	case *ast.CallExpr:
		return exprString(p, x.Fun) + "(...)"
	case *ast.BasicLit:
		return x.Value
	}
	return "expression"
}
