package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// JSONFinding is the machine-readable form of a Finding. File paths are
// repository-relative with forward slashes so a committed baseline is
// portable across checkouts. Line and column are informational only —
// baseline matching deliberately ignores them, because unrelated edits
// shift lines without changing what the finding is.
type JSONFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// Report is the top-level JSON document `sornlint -json` emits. A
// baseline file is a saved Report, so regenerating the baseline is
// exactly `sornlint -json ./... > lint_baseline.json`.
type Report struct {
	Findings []JSONFinding `json:"findings"`
}

// NewReport converts findings to their JSON form, relativizing file
// paths against root.
func NewReport(findings []Finding, root string) *Report {
	r := &Report{Findings: make([]JSONFinding, 0, len(findings))}
	for _, f := range findings {
		r.Findings = append(r.Findings, JSONFinding{
			File: relPath(root, f.Pos.Filename),
			Line: f.Pos.Line,
			Col:  f.Pos.Column,
			Rule: f.Rule,
			Msg:  f.Msg,
		})
	}
	return r
}

// Write emits the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// LoadBaseline reads a saved Report. A missing file is not an error: it
// is the empty baseline, so bootstrapping needs no special case.
func LoadBaseline(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Report{}, nil
	}
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	return &r, nil
}

// baselineKey identifies a finding for baseline matching: file, rule,
// and message — not line numbers, which drift under unrelated edits.
func baselineKey(file, rule, msg string) string {
	return file + "\x00" + rule + "\x00" + msg
}

// Diff returns the findings not covered by the baseline: for each
// (file, rule, msg) key, occurrences beyond the baselined count are
// new. Findings must already be in Run's sorted order; the returned
// slice preserves it.
func (b *Report) Diff(findings []Finding, root string) []Finding {
	allowed := make(map[string]int, len(b.Findings))
	for _, f := range b.Findings {
		allowed[baselineKey(f.File, f.Rule, f.Msg)]++
	}
	var fresh []Finding
	for _, f := range findings {
		key := baselineKey(relPath(root, f.Pos.Filename), f.Rule, f.Msg)
		if allowed[key] > 0 {
			allowed[key]--
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh
}

// relPath relativizes filename against root with forward slashes,
// falling back to the input when it is not under root.
func relPath(root, filename string) string {
	if root == "" {
		return filepath.ToSlash(filename)
	}
	rel, err := filepath.Rel(root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}
