package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotation verbs. Beyond //sornlint:ignore (handled by the directive
// index in lint.go), source can declare invariants the whole-program
// rules consume:
//
//	//sornlint:hotpath     func or interface method: this and everything
//	                       it transitively calls must not heap-allocate
//	                       (rule hotalloc)
//	//sornlint:coldpath    func: deliberate slow path; hotalloc stops
//	                       its traversal here (e.g. a grow-and-copy
//	                       branch taken O(log n) times)
//	//sornlint:shardphase  func: a worker-phase body; everything it
//	                       transitively calls may only write staged
//	                       per-shard state (rule shardsafety)
//	//sornlint:drain       func: the fixed-order merge/drain path;
//	                       exempt from shardsafety and obsnil, and
//	                       shard-phase traversal stops here
//	//sornlint:staged      struct field, struct type, or package var:
//	                       per-shard staged state that worker phases may
//	                       write
//	//sornlint:obsguard    func or bool struct field: evaluating true
//	                       implies the Observer is non-nil (rule obsnil
//	                       accepts it as a guard)
//	//sornlint:obsguarded  func: every caller guarantees observability
//	                       is enabled before calling (constructor/merge
//	                       contracts); obsnil skips its body
//
// Each verb sits alone on its comment line; everything after " -- " is a
// free-form justification. A verb on a declaration it cannot apply to,
// or a verb the framework does not know, is itself reported (rule
// stalesuppress), so annotations cannot silently rot.
const (
	annoHotpath = 1 << iota
	annoColdpath
	annoShardphase
	annoDrain
	annoStaged
	annoObsguard
	annoObsguarded
)

// annoVerbs maps verb spelling to its bit.
var annoVerbs = map[string]int{
	"hotpath":    annoHotpath,
	"coldpath":   annoColdpath,
	"shardphase": annoShardphase,
	"drain":      annoDrain,
	"staged":     annoStaged,
	"obsguard":   annoObsguard,
	"obsguarded": annoObsguarded,
}

// funcAnnoMask is the verb set valid on functions and interface methods.
const funcAnnoMask = annoHotpath | annoColdpath | annoShardphase | annoDrain | annoObsguard | annoObsguarded

// Annotations indexes every annotation in the module. Functions are
// keyed by types.Func.FullName() — the one identity that survives the
// loader's separate type-checks of a package (as an analysis unit and as
// an import). Types, fields, and package vars are keyed by
// "<pkgpath>.<Name>" / "<pkgpath>.<Type>.<field>".
type Annotations struct {
	funcs  map[string]int
	types  map[string]int
	fields map[string]int
	vars   map[string]int
}

// funcIs reports whether the function key carries the verb bit.
func (a *Annotations) funcIs(key string, bit int) bool { return a != nil && a.funcs[key]&bit != 0 }

// typeStaged reports whether the named type is staged wholesale.
func (a *Annotations) typeStaged(t types.Type) bool {
	return a != nil && a.types[namedKey(t)]&annoStaged != 0
}

// fieldIs reports whether field fieldName of the named type owner
// carries the verb bit (directly or via a type-level staged annotation
// when bit is annoStaged).
func (a *Annotations) fieldIs(owner types.Type, fieldName string, bit int) bool {
	if a == nil {
		return false
	}
	key := namedKey(owner)
	if key == "" {
		return false
	}
	if a.fields[key+"."+fieldName]&bit != 0 {
		return true
	}
	return bit == annoStaged && a.types[key]&annoStaged != 0
}

// varStaged reports whether the package-level variable is staged.
func (a *Annotations) varStaged(v *types.Var) bool {
	if a == nil || v.Pkg() == nil {
		return false
	}
	return a.vars[v.Pkg().Path()+"."+v.Name()]&annoStaged != 0
}

// namedKey renders "<pkgpath>.<TypeName>" for a (possibly pointered)
// named type, or "".
func namedKey(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// annoIssue is one hygiene problem with a //sornlint: comment,
// reported by the stalesuppress rule in the package that owns the file.
type annoIssue struct {
	pos token.Pos
	msg string
}

// parseAnnoComment splits "//sornlint:<verb> [-- reason]" into its verb.
func parseAnnoComment(text string) (verb string, ok bool) {
	const prefix = "//sornlint:"
	rest, found := strings.CutPrefix(text, prefix)
	if !found {
		return "", false
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}

// annoCollector accumulates the module's annotations and hygiene issues
// while walking one package unit at a time.
type annoCollector struct {
	anno   *Annotations
	issues map[string][]annoIssue

	// per-unit state
	pkg      *Package
	consumed map[*ast.Comment]bool
}

// collectAnnotations builds the annotation index over every unit and
// returns it with the hygiene issues keyed by unit path.
func collectAnnotations(pkgs []*Package) (*Annotations, map[string][]annoIssue) {
	c := &annoCollector{
		anno: &Annotations{
			funcs:  make(map[string]int),
			types:  make(map[string]int),
			fields: make(map[string]int),
			vars:   make(map[string]int),
		},
		issues: make(map[string][]annoIssue),
	}
	for _, pkg := range pkgs {
		c.pkg = pkg
		for _, f := range pkg.Files {
			c.collectFile(f)
		}
	}
	return c.anno, c.issues
}

func (c *annoCollector) issuef(pos token.Pos, format string, args ...interface{}) {
	c.issues[c.pkg.Path] = append(c.issues[c.pkg.Path], annoIssue{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// collectFile indexes one file's annotations: declaration walks consume
// the verbs they accept; anything left over (or unknown) is an issue.
func (c *annoCollector) collectFile(f *ast.File) {
	c.consumed = make(map[*ast.Comment]bool)
	var annos []*ast.Comment
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			verb, ok := parseAnnoComment(cm.Text)
			if !ok {
				continue
			}
			if verb == "ignore" {
				if rules, ok := parseIgnoreComment(cm.Text); !ok || len(rules) == 0 {
					c.issuef(cm.Pos(), "//sornlint:ignore directive names no rules; write //sornlint:ignore <rule>[,<rule>] -- reason")
				}
				continue // indexed by the directive parser
			}
			if _, known := annoVerbs[verb]; !known {
				c.issuef(cm.Pos(), "unknown //sornlint:%s directive; known verbs: ignore, hotpath, coldpath, shardphase, drain, staged, obsguard, obsguarded", verb)
				continue
			}
			annos = append(annos, cm)
		}
	}
	if len(annos) == 0 {
		return
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			c.applyFuncVerbs(d.Doc, c.funcDeclKey(d))
		case *ast.GenDecl:
			c.collectGenDecl(d)
		}
	}
	for _, cm := range annos {
		if !c.consumed[cm] {
			verb, _ := parseAnnoComment(cm.Text)
			c.issuef(cm.Pos(), "misplaced //sornlint:%s annotation: it is not attached to a declaration it applies to", verb)
		}
	}
}

// funcDeclKey resolves a function declaration to its canonical key.
func (c *annoCollector) funcDeclKey(d *ast.FuncDecl) string {
	if fn, ok := c.pkg.Info.Defs[d.Name].(*types.Func); ok {
		return fn.Origin().FullName()
	}
	return ""
}

// verbsIn yields the (comment, bit) pairs of a comment group and marks
// them consumed.
func (c *annoCollector) verbsIn(doc *ast.CommentGroup) []struct {
	cm  *ast.Comment
	bit int
} {
	if doc == nil {
		return nil
	}
	var out []struct {
		cm  *ast.Comment
		bit int
	}
	for _, cm := range doc.List {
		verb, ok := parseAnnoComment(cm.Text)
		if !ok || verb == "ignore" {
			continue
		}
		bit, known := annoVerbs[verb]
		if !known {
			continue
		}
		c.consumed[cm] = true
		out = append(out, struct {
			cm  *ast.Comment
			bit int
		}{cm, bit})
	}
	return out
}

// applyFuncVerbs attaches function verbs from doc to the function key.
func (c *annoCollector) applyFuncVerbs(doc *ast.CommentGroup, key string) {
	for _, v := range c.verbsIn(doc) {
		if v.bit&funcAnnoMask == 0 {
			c.issuef(v.cm.Pos(), "%s does not apply to a function; it marks fields, types, or package vars", v.cm.Text)
			continue
		}
		if key != "" {
			c.anno.funcs[key] |= v.bit
		}
	}
}

// collectGenDecl handles type and var declarations: staged types and
// fields, staged package vars, obsguard fields, and interface-method
// function verbs.
func (c *annoCollector) collectGenDecl(d *ast.GenDecl) {
	for _, spec := range d.Specs {
		var doc *ast.CommentGroup
		switch s := spec.(type) {
		case *ast.TypeSpec:
			doc = s.Doc
			if doc == nil && len(d.Specs) == 1 {
				doc = d.Doc
			}
			c.applyTypeVerbs(doc, s)
		case *ast.ValueSpec:
			doc = s.Doc
			if doc == nil && len(d.Specs) == 1 {
				doc = d.Doc
			}
			c.applyVarVerbs(doc, s)
			c.applyVarVerbs(s.Comment, s)
		}
	}
}

// applyTypeVerbs attaches staged to a type and walks struct fields and
// interface methods for their own verbs.
func (c *annoCollector) applyTypeVerbs(doc *ast.CommentGroup, s *ast.TypeSpec) {
	obj := c.pkg.Info.Defs[s.Name]
	key := ""
	if obj != nil && obj.Pkg() != nil {
		key = obj.Pkg().Path() + "." + obj.Name()
	}
	for _, v := range c.verbsIn(doc) {
		if v.bit != annoStaged {
			c.issuef(v.cm.Pos(), "%s does not apply to a type declaration", v.cm.Text)
			continue
		}
		if key != "" {
			c.anno.types[key] |= v.bit
		}
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, field := range t.Fields.List {
			for _, v := range append(c.verbsIn(field.Doc), c.verbsIn(field.Comment)...) {
				if v.bit != annoStaged && v.bit != annoObsguard {
					c.issuef(v.cm.Pos(), "%s does not apply to a struct field; fields take staged or obsguard", v.cm.Text)
					continue
				}
				for _, name := range field.Names {
					if key != "" {
						c.anno.fields[key+"."+name.Name] |= v.bit
					}
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if len(m.Names) != 1 {
				continue // embedded interface
			}
			fn, ok := c.pkg.Info.Defs[m.Names[0]].(*types.Func)
			for _, v := range append(c.verbsIn(m.Doc), c.verbsIn(m.Comment)...) {
				if v.bit&funcAnnoMask == 0 {
					c.issuef(v.cm.Pos(), "%s does not apply to an interface method", v.cm.Text)
					continue
				}
				if ok {
					c.anno.funcs[fn.Origin().FullName()] |= v.bit
				}
			}
		}
	}
}

// applyVarVerbs attaches staged to package-level variables.
func (c *annoCollector) applyVarVerbs(doc *ast.CommentGroup, s *ast.ValueSpec) {
	for _, v := range c.verbsIn(doc) {
		if v.bit != annoStaged {
			c.issuef(v.cm.Pos(), "%s does not apply to a package variable; vars take staged", v.cm.Text)
			continue
		}
		for _, name := range s.Names {
			if obj := c.pkg.Info.Defs[name]; obj != nil && obj.Pkg() != nil {
				c.anno.vars[obj.Pkg().Path()+"."+obj.Name()] |= v.bit
			}
		}
	}
}
