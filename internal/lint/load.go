package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked analysis unit: a package's compiled
// files plus, when present, its in-package _test.go files. External test
// packages (package foo_test) form their own unit.
type Package struct {
	Path       string // import path ("repro/internal/rng")
	Dir        string
	ModulePath string
	Fset       *token.FileSet
	Files      []*ast.File
	TestFiles  map[*ast.File]bool
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks the packages of one module using only
// the standard library: module-local imports are resolved against the
// module directory and type-checked from source recursively; everything
// else (the standard library) is delegated to go/importer's source
// importer.
type Loader struct {
	ModuleDir  string
	ModulePath string

	fset    *token.FileSet
	std     types.Importer
	base    map[string]*types.Package // import path -> test-free package
	loading map[string]bool
}

// NewLoader creates a loader rooted at the directory containing go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  moduleDir,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		base:       make(map[string]*types.Package),
		loading:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory with a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// LoadModule type-checks every package under the module root (skipping
// testdata and hidden directories) and returns one analysis unit per
// package, plus one per external test package.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		units, err := l.loadDirUnits(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs, nil
}

// LoadFixture type-checks a single directory outside the module walk
// (e.g. a testdata fixture) as though its import path were asPath.
func (l *Loader) LoadFixture(dir, asPath string) (*Package, error) {
	files, testFiles, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return l.check(asPath, dir, files, testFiles)
}

// hasGoFiles reports whether dir directly contains any .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), "_") {
			return true
		}
	}
	return false
}

// importPathFor maps a module-relative directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// parseDir parses every .go file in dir, returning the files and which
// of them are _test.go files.
func (l *Loader) parseDir(dir string) ([]*ast.File, map[*ast.File]bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	testFiles := make(map[*ast.File]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		if strings.HasSuffix(name, "_test.go") {
			testFiles[f] = true
		}
	}
	return files, testFiles, nil
}

// loadDirUnits builds the analysis units for one directory: the package
// itself (with in-package test files) and, if present, the external test
// package.
func (l *Loader) loadDirUnits(dir string) ([]*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	files, testFiles, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	// Group by package clause: the compiled package and the _test package.
	var baseName string
	for _, f := range files {
		if !testFiles[f] {
			baseName = f.Name.Name
			break
		}
	}
	var compiled, external []*ast.File
	for _, f := range files {
		switch {
		case strings.HasSuffix(f.Name.Name, "_test") && (baseName == "" || f.Name.Name != baseName):
			external = append(external, f)
		default:
			compiled = append(compiled, f)
		}
	}

	var out []*Package
	if len(compiled) > 0 {
		pkg, err := l.check(path, dir, compiled, testFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	if len(external) > 0 {
		pkg, err := l.check(path+"_test", dir, external, testFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Import resolves one import path for the type checker: module-local
// packages recursively from source (test files excluded), the rest via
// the standard library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		return l.importBase(path)
	}
	return l.std.Import(path)
}

// importBase type-checks the compiled (test-free) files of a module
// package, memoized.
func (l *Loader) importBase(path string) (*types.Package, error) {
	if pkg, ok := l.base[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath)))
	files, testFiles, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	var compiled []*ast.File
	for _, f := range files {
		if !testFiles[f] {
			compiled = append(compiled, f)
		}
	}
	if len(compiled) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, compiled, nil)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	l.base[path] = pkg
	return pkg, nil
}

// check type-checks one analysis unit with full type information.
func (l *Loader) check(path, dir string, files []*ast.File, testFiles map[*ast.File]bool) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	unitTests := make(map[*ast.File]bool)
	for _, f := range files {
		if testFiles[f] {
			unitTests[f] = true
		}
	}
	return &Package{
		Path:       path,
		Dir:        dir,
		ModulePath: l.ModulePath,
		Fset:       l.fset,
		Files:      files,
		TestFiles:  unitTests,
		Types:      tpkg,
		Info:       info,
	}, nil
}
