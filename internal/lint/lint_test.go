package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// testLoader is shared across tests: the source importer re-type-checks
// the standard library from scratch, so one loader per test binary keeps
// the suite fast.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			loaderErr = err
			return
		}
		root, err := FindModuleRoot(wd)
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("building shared loader: %v", loaderErr)
	}
	return loader
}

// mark is one expected (or observed) violation: a file base name, a
// line, and a rule.
type mark struct {
	file string
	line int
	rule string
}

func (m mark) String() string { return m.file + ":" + strconv.Itoa(m.line) + ":" + m.rule }

var wantRe = regexp.MustCompile(`want:([a-z]+)`)

// wantMarks scans a fixture directory for `// want:<rule>` markers.
func wantMarks(t *testing.T, dir string) []mark {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var marks []mark
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				marks = append(marks, mark{file: e.Name(), line: i + 1, rule: m[1]})
			}
		}
	}
	return marks
}

func sortMarks(marks []mark) []mark {
	sort.Slice(marks, func(i, j int) bool {
		a, b := marks[i], marks[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.rule < b.rule
	})
	return marks
}

// analyzeFixture loads testdata/src/<rel> under the given import path
// and returns the findings as marks.
func analyzeFixture(t *testing.T, rel, asPath string) []mark {
	t.Helper()
	l := sharedLoader(t)
	dir := filepath.Join("testdata", "src", filepath.FromSlash(rel))
	pkg, err := l.LoadFixture(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	findings := Run([]*Package{pkg}, Analyzers())
	var got []mark
	for _, f := range findings {
		got = append(got, mark{file: filepath.Base(f.Pos.Filename), line: f.Pos.Line, rule: f.Rule})
	}
	return got
}

// fixturePath places a fixture under the module's internal/ tree so
// internal-only rules (noderterm) apply.
func fixturePath(l *Loader, rel string) string {
	return l.ModulePath + "/internal/lintfixture/" + rel
}

// TestFixtures checks every rule against its bad and clean fixtures,
// plus the directive fixture: the findings must match the `want:`
// markers exactly — same files, same lines, same rules.
func TestFixtures(t *testing.T) {
	fixtures := []string{
		"noderterm/bad", "noderterm/clean",
		"rngdiscipline/bad", "rngdiscipline/clean",
		"maporder/bad", "maporder/clean",
		"floateq/bad", "floateq/clean",
		"droppederr/bad", "droppederr/clean",
		"shardsafety/bad", "shardsafety/clean",
		"hotalloc/bad", "hotalloc/clean",
		"obsnil/bad", "obsnil/clean",
		"stalesuppress",
		"directive",
	}
	l := sharedLoader(t)
	for _, rel := range fixtures {
		rel := rel
		t.Run(strings.ReplaceAll(rel, "/", "_"), func(t *testing.T) {
			want := sortMarks(wantMarks(t, filepath.Join("testdata", "src", filepath.FromSlash(rel))))
			got := sortMarks(analyzeFixture(t, rel, fixturePath(l, rel)))
			if strings.HasSuffix(rel, "/bad") && len(want) == 0 {
				t.Fatalf("bad fixture %s has no want: markers; the fixture is broken", rel)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("findings mismatch for %s:\n got: %v\nwant: %v", rel, got, want)
			}
		})
	}
}

// TestNoDetermScopedToInternal loads the noderterm bad fixture under a
// non-internal import path: the rule must stay silent there, because
// cmd/ and the module root legitimately touch time and the environment.
func TestNoDetermScopedToInternal(t *testing.T) {
	l := sharedLoader(t)
	got := analyzeFixture(t, "noderterm/bad", l.ModulePath+"/lintfixture/noderterm")
	for _, m := range got {
		if m.rule == noDetermName {
			t.Errorf("noderterm fired outside internal/: %v", m)
		}
	}
}

// TestDirectiveSuppressesOnlyNamedRule double-checks the semantics the
// directive fixture's markers encode: the wrong-rule directive must not
// silence maporder, and both correct directives must silence exactly
// their rule.
func TestDirectiveSuppressesOnlyNamedRule(t *testing.T) {
	l := sharedLoader(t)
	got := analyzeFixture(t, "directive", fixturePath(l, "directive"))
	rules := make(map[string]int)
	for _, m := range got {
		rules[m.rule]++
	}
	if rules[mapOrderName] != 1 {
		t.Errorf("want exactly 1 surviving maporder finding (the wrong-rule directive), got %d", rules[mapOrderName])
	}
	if rules[droppedErrName] != 1 {
		t.Errorf("want exactly 1 surviving droppederr finding (the unsuppressed call), got %d", rules[droppedErrName])
	}
}

func TestParseIgnoreComment(t *testing.T) {
	cases := []struct {
		text  string
		rules []string
		ok    bool
	}{
		{"//sornlint:ignore maporder", []string{"maporder"}, true},
		{"//sornlint:ignore maporder -- keys are sorted below", []string{"maporder"}, true},
		{"//sornlint:ignore maporder,floateq", []string{"maporder", "floateq"}, true},
		{"//sornlint:ignore maporder, floateq -- two rules", []string{"maporder", "floateq"}, true},
		{"//sornlint:ignore", nil, false},
		{"//sornlint:ignore -- reason but no rule", nil, false},
		{"//sornlint:ignoremaporder", nil, false},
		{"// sornlint:ignore maporder", nil, false},
		{"// plain comment", nil, false},
	}
	for _, c := range cases {
		rules, ok := parseIgnoreComment(c.text)
		if ok != c.ok || !reflect.DeepEqual(rules, c.rules) {
			t.Errorf("parseIgnoreComment(%q) = %v, %v; want %v, %v", c.text, rules, ok, c.rules, c.ok)
		}
	}
}

func TestAnalyzerByName(t *testing.T) {
	for _, a := range Analyzers() {
		if got := AnalyzerByName(a.Name); got != a {
			t.Errorf("AnalyzerByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if got := AnalyzerByName("nosuchrule"); got != nil {
		t.Errorf("AnalyzerByName(nosuchrule) = %v, want nil", got)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Rule: "maporder", Msg: "range over map m appends to a slice"}
	f.Pos.Filename, f.Pos.Line, f.Pos.Column = "x.go", 12, 2
	const want = "x.go:12:2: range over map m appends to a slice (maporder)"
	if got := f.String(); got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}
