package fluid

import (
	"fmt"

	"repro/internal/routing"
)

// LinkBlastRadius returns the fraction of ordered source-destination
// pairs whose path distribution traverses the directed link failU→failV
// with positive probability — the failure "blast radius" the paper's §6
// argues modular (SORN-style) designs shrink relative to flat oblivious
// designs, where any link failure can touch flows between any pair.
func LinkBlastRadius(n int, router routing.Router, failU, failV int) (float64, error) {
	return blastRadius(n, router, func(p routing.Route) bool {
		for i := 0; i+1 < len(p); i++ {
			if p[i] == failU && p[i+1] == failV {
				return true
			}
		}
		return false
	}, func(src, dst int) bool { return false })
}

// NodeBlastRadius returns the fraction of ordered pairs (excluding those
// sourced at or destined to the failed node, which are lost regardless of
// design) whose path distribution transits the failed node.
func NodeBlastRadius(n int, router routing.Router, fail int) (float64, error) {
	return blastRadius(n, router, func(p routing.Route) bool {
		for _, node := range p[1 : len(p)-1] {
			if node == fail {
				return true
			}
		}
		return false
	}, func(src, dst int) bool { return src == fail || dst == fail })
}

func blastRadius(n int, router routing.Router, hit func(routing.Route) bool, skip func(src, dst int) bool) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("fluid: blast radius needs n >= 2, got %d", n)
	}
	affected, total := 0, 0
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst || skip(src, dst) {
				continue
			}
			total++
			found := false
			router.Paths(src, dst, func(p routing.Route, prob float64) {
				if !found && prob > 0 && hit(p) {
					found = true
				}
			})
			if found {
				affected++
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("fluid: no pairs to evaluate")
	}
	return float64(affected) / float64(total), nil
}
