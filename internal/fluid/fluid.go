// Package fluid computes exact worst-case throughput for an oblivious or
// semi-oblivious routing scheme over a circuit schedule: it accumulates
// the expected load every traffic-matrix entry places on every directed
// virtual link (via the router's path distribution), compares against the
// link capacities the schedule provides, and reports the maximum demand
// scaling θ at which no link exceeds capacity.
//
// With a saturation traffic matrix (every row summing to 1 node
// bandwidth), θ is exactly the paper's throughput metric r: the fraction
// of node bandwidth deliverable to final destinations. This reproduces
// the theoretical series of Figure 2(f) from first principles rather than
// from the closed form, and cross-validates internal/model.
package fluid

import (
	"fmt"
	"math"

	"repro/internal/matching"
	"repro/internal/routing"
	"repro/internal/workload"
)

// Result reports a fluid solve.
type Result struct {
	// Theta is the max demand scaling with all links within capacity.
	Theta float64
	// BottleneckSrc/Dst identify the binding link.
	BottleneckSrc, BottleneckDst int
	// BottleneckLoad and BottleneckCap are that link's load (at scaling
	// 1) and capacity.
	BottleneckLoad, BottleneckCap float64
	// MeanHops is the demand-weighted mean path length.
	MeanHops float64
	// LinkCount is the number of loaded links.
	LinkCount int
}

// Solve computes link loads for the traffic matrix under the router's
// path distribution and returns the throughput scaling. The schedule
// provides capacities (fraction of node bandwidth per virtual link).
func Solve(s *matching.Schedule, router routing.Router, tm *workload.Matrix) (*Result, error) {
	if tm.N != s.N {
		return nil, fmt.Errorf("fluid: matrix over %d nodes, schedule over %d", tm.N, s.N)
	}
	if err := tm.Validate(); err != nil {
		return nil, err
	}

	// Capacities from the schedule: count integer slots per directed link
	// and divide once by the period, so every capacity is an exact
	// multiple of 1/period. (Accumulating float64 increments of 1/period
	// drifts for non-power-of-2 periods once a link repeats.)
	slotCount := make([][]int, s.N)
	for u := range slotCount {
		slotCount[u] = make([]int, s.N)
	}
	for _, m := range s.Slots {
		for u, v := range m {
			slotCount[u][v]++
		}
	}
	period := float64(s.Period())
	cap := make([][]float64, s.N)
	for u := range cap {
		cap[u] = make([]float64, s.N)
		for v, c := range slotCount[u] {
			if c > 0 {
				cap[u][v] = float64(c) / period
			}
		}
	}

	// Expected loads from the router's path distribution.
	load := make([][]float64, s.N)
	for u := range load {
		load[u] = make([]float64, s.N)
	}
	hopWeighted, demandTotal := 0.0, 0.0
	for src := 0; src < tm.N; src++ {
		for dst := 0; dst < tm.N; dst++ {
			rate := tm.Rates[src][dst]
			if rate <= 0 {
				continue
			}
			demandTotal += rate
			var pathErr error
			router.Paths(src, dst, func(p routing.Route, prob float64) {
				hopWeighted += rate * prob * float64(p.Hops())
				for i := 0; i+1 < len(p); i++ {
					u, v := p[i], p[i+1]
					if cap[u][v] <= 0 {
						pathErr = fmt.Errorf("fluid: router %s uses link %d->%d absent from schedule",
							router.Name(), u, v)
						return
					}
					load[u][v] += rate * prob
				}
			})
			if pathErr != nil {
				return nil, pathErr
			}
		}
	}
	//sornlint:ignore floateq -- exact zero: no positive rate was ever added
	if demandTotal == 0 {
		return nil, fmt.Errorf("fluid: traffic matrix is empty")
	}

	res := &Result{Theta: math.Inf(1), BottleneckSrc: -1, BottleneckDst: -1}
	for u := 0; u < s.N; u++ {
		for v := 0; v < s.N; v++ {
			l := load[u][v]
			if l <= 0 {
				continue
			}
			res.LinkCount++
			theta := cap[u][v] / l
			if theta < res.Theta {
				res.Theta = theta
				res.BottleneckSrc, res.BottleneckDst = u, v
				res.BottleneckLoad, res.BottleneckCap = l, cap[u][v]
			}
		}
	}
	res.MeanHops = hopWeighted / demandTotal
	return res, nil
}

// WorstCaseTheta returns the minimum θ over a set of traffic matrices —
// the worst-case throughput over an adversarial family.
func WorstCaseTheta(s *matching.Schedule, router routing.Router, tms []*workload.Matrix) (float64, error) {
	worst := math.Inf(1)
	for _, tm := range tms {
		r, err := Solve(s, router, tm)
		if err != nil {
			return 0, err
		}
		if r.Theta < worst {
			worst = r.Theta
		}
	}
	if math.IsInf(worst, 1) {
		return 0, fmt.Errorf("fluid: no traffic matrices supplied")
	}
	return worst, nil
}
