package fluid

import (
	"math"
	"testing"

	"repro/internal/matching"
	"repro/internal/model"
	"repro/internal/routing"
	"repro/internal/schedule"
	"repro/internal/workload"
)

func TestVLBUniformIsHalf(t *testing.T) {
	// Classic result: 2-hop VLB over a uniform round robin supports 50%
	// throughput for uniform all-to-all traffic. Our VLB collapses the
	// second hop when the random intermediate *is* the destination, so
	// the exact finite-n value is (n−1)/(2n−3), which tends to 1/2.
	n := 16
	s := matching.RoundRobin(n)
	v, err := routing.NewVLB(matching.Compile(s))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(s, v, workload.Uniform(n))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n-1) / float64(2*n-3)
	if math.Abs(res.Theta-want) > 1e-9 {
		t.Fatalf("VLB uniform θ = %f, want %f", res.Theta, want)
	}
	if res.Theta < 0.5 {
		t.Fatalf("VLB uniform θ = %f below the 50%% guarantee", res.Theta)
	}
	if math.Abs(res.MeanHops-(2-1.0/15)) > 1e-9 {
		// Direct path with prob 1/(n-1), else 2 hops.
		t.Fatalf("mean hops = %f", res.MeanHops)
	}
}

func TestDirectUniformIsOne(t *testing.T) {
	// Direct routing on uniform traffic uses every circuit exactly at
	// capacity: θ = 1 (paper §2: single-hop is optimal for uniform).
	s := matching.RoundRobin(16)
	d, err := routing.NewDirect(matching.Compile(s))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(s, d, workload.Uniform(16))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Theta-1) > 1e-9 {
		t.Fatalf("direct uniform θ = %f, want 1", res.Theta)
	}
}

func TestDirectPermutationCollapses(t *testing.T) {
	// Direct routing on a permutation matrix gets only the single
	// circuit's capacity, 1/(n-1): the reason oblivious designs need VLB.
	n := 16
	s := matching.RoundRobin(n)
	d, _ := routing.NewDirect(matching.Compile(s))
	perm := make([]int, n)
	for i := range perm {
		perm[i] = (i + 1) % n
	}
	tm, err := workload.Permutation(perm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(s, d, tm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Theta-1/float64(n-1)) > 1e-9 {
		t.Fatalf("direct permutation θ = %f, want %f", res.Theta, 1/float64(n-1))
	}
}

func TestVLBPermutationStillHalf(t *testing.T) {
	// VLB's guarantee: 50% even for adversarial permutations.
	n := 16
	s := matching.RoundRobin(n)
	v, _ := routing.NewVLB(matching.Compile(s))
	perm := make([]int, n)
	for i := range perm {
		perm[i] = (i + 1) % n
	}
	tm, _ := workload.Permutation(perm)
	res, err := Solve(s, v, tm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta < 0.5-1e-9 {
		t.Fatalf("VLB permutation θ = %f, want >= 0.5", res.Theta)
	}
}

func TestORN2DUniformIsQuarter(t *testing.T) {
	o, err := schedule.BuildOptimalORN(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(o.Schedule, routing.NewORN(o), workload.Uniform(64))
	if err != nil {
		t.Fatal(err)
	}
	// Worst-case throughput of a 2D ORN is 25%; uniform traffic achieves
	// it up to the O(1/a) slack from digits that need no correction.
	if res.Theta < 0.25-1e-9 || res.Theta > 0.30 {
		t.Fatalf("2D ORN uniform θ = %f, want ~0.25", res.Theta)
	}
}

func TestSORNMatchesModelAcrossLocality(t *testing.T) {
	// The central quantitative claim (Fig. 2f): SORN at q*=2/(1-x)
	// supports r = 1/(3-x). The fluid solve over the real schedule and
	// router must match model.SORNThroughputAtQ at the *realized* integer
	// q, which itself is within a few percent of the ideal.
	const n, nc = 64, 8
	for _, x := range []float64{0, 0.2, 0.4, 0.56, 0.8} {
		q := model.SORNQ(x)
		built, err := schedule.BuildSORN(schedule.SORNConfig{N: n, Nc: nc, Q: q, MaxWeight: 64})
		if err != nil {
			t.Fatal(err)
		}
		tm, err := workload.Locality(built.Cliques, x)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(built.Schedule, routing.NewSORN(built), tm)
		if err != nil {
			t.Fatal(err)
		}
		want := model.SORNThroughputAtQ(x, built.RealizedQ)
		// The fluid θ may exceed the conservative closed form slightly
		// (the model counts 2 intra traversals even when the LB hop or
		// final hop collapses) but never by much, and never fall below.
		if res.Theta < want-1e-9 {
			t.Errorf("x=%.2f: θ=%f below model bound %f", x, res.Theta, want)
		}
		if res.Theta > want*1.25 {
			t.Errorf("x=%.2f: θ=%f too far above model %f", x, res.Theta, want)
		}
		// And the headline: θ must be within 15%% of 1/(3−x).
		ideal := model.SORNThroughput(x)
		if math.Abs(res.Theta-ideal)/ideal > 0.15 {
			t.Errorf("x=%.2f: θ=%f vs ideal r=%f", x, res.Theta, ideal)
		}
	}
}

func TestSORNBeats2DORNThroughputWithLocality(t *testing.T) {
	// Figure 2(f)'s qualitative claim: SORN exceeds the 2D ORN's 25%
	// for every locality ratio, and approaches 1D ORN's 50% as x→1.
	built, err := schedule.BuildSORN(schedule.SORNConfig{N: 64, Nc: 8, Q: model.SORNQ(0)})
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := workload.Locality(built.Cliques, 0)
	res, err := Solve(built.Schedule, routing.NewSORN(built), tm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta <= 0.25 {
		t.Fatalf("SORN at x=0 gives θ=%f, should beat 2D ORN's 0.25", res.Theta)
	}
}

func TestMeanHopsSORN(t *testing.T) {
	// Mean hops ≈ 3 − x (paper: 2.44 average hops at x=0.56), slightly
	// less because collapsed hops (LB hop = src, landing = dst) shorten
	// some paths.
	built, _ := schedule.BuildSORN(schedule.SORNConfig{N: 64, Nc: 8, Q: model.SORNQ(0.56)})
	tm, _ := workload.Locality(built.Cliques, 0.56)
	res, err := Solve(built.Schedule, routing.NewSORN(built), tm)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 - 0.56
	if math.Abs(res.MeanHops-want) > 0.25 {
		t.Fatalf("mean hops = %f, want ~%f", res.MeanHops, want)
	}
}

func TestSolveErrors(t *testing.T) {
	s := matching.RoundRobin(8)
	v, _ := routing.NewVLB(matching.Compile(s))
	if _, err := Solve(s, v, workload.Uniform(4)); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := Solve(s, v, workload.NewMatrix(8)); err == nil {
		t.Error("empty matrix accepted")
	}
	bad := workload.Uniform(8)
	bad.Rates[0][0] = 1
	if _, err := Solve(s, v, bad); err == nil {
		t.Error("invalid matrix accepted")
	}
}

func TestRouterUsingAbsentLinkRejected(t *testing.T) {
	// A direct router built over a full schedule, solved against a
	// partial schedule, must be rejected, not silently mis-accounted.
	full := matching.RoundRobin(8)
	d, _ := routing.NewDirect(matching.Compile(full))
	partial := schedule.TopologyA().Schedule
	if _, err := Solve(partial, d, workload.Uniform(8)); err == nil {
		t.Error("router using absent links accepted")
	}
}

func TestWorstCaseTheta(t *testing.T) {
	s := matching.RoundRobin(8)
	v, _ := routing.NewVLB(matching.Compile(s))
	perm := make([]int, 8)
	for i := range perm {
		perm[i] = (i + 1) % 8
	}
	ptm, _ := workload.Permutation(perm)
	worst, err := WorstCaseTheta(s, v, []*workload.Matrix{workload.Uniform(8), ptm})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(worst-0.5) > 1e-9 {
		t.Fatalf("worst θ = %f", worst)
	}
	if _, err := WorstCaseTheta(s, v, nil); err == nil {
		t.Error("empty matrix set accepted")
	}
}

func TestBottleneckReported(t *testing.T) {
	s := matching.RoundRobin(8)
	v, _ := routing.NewVLB(matching.Compile(s))
	res, err := Solve(s, v, workload.Uniform(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.BottleneckSrc < 0 || res.BottleneckDst < 0 {
		t.Fatal("no bottleneck reported")
	}
	if res.BottleneckCap <= 0 || res.BottleneckLoad <= 0 {
		t.Fatal("bottleneck load/cap not populated")
	}
	if math.Abs(res.BottleneckCap/res.BottleneckLoad-res.Theta) > 1e-9 {
		t.Fatal("bottleneck inconsistent with theta")
	}
	if res.LinkCount == 0 {
		t.Fatal("no loaded links counted")
	}
}

func BenchmarkSolveSORN128(b *testing.B) {
	built, err := schedule.BuildSORN(schedule.SORNConfig{N: 128, Nc: 8, Q: 4.5})
	if err != nil {
		b.Fatal(err)
	}
	tm, err := workload.Locality(built.Cliques, 0.56)
	if err != nil {
		b.Fatal(err)
	}
	router := routing.NewSORN(built)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(built.Schedule, router, tm); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHeteroScheduleRoutableAndStructured(t *testing.T) {
	// Heterogeneous physical cliques (16, 8, 8) via the virtual-clique
	// reduction: the schedule must route a physical-locality workload,
	// and beat a uniform schedule that ignores the physical structure.
	h, err := schedule.BuildHetero([]int{16, 8, 8}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := workload.Locality(h.Physical, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(h.Built.Schedule, routing.NewSORN(h.Built), tm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta < 0.15 {
		t.Fatalf("hetero θ = %f implausibly low", res.Theta)
	}
	// Baseline: a demand-oblivious uniform virtual-clique schedule.
	uniform, err := schedule.BuildSORN(schedule.SORNConfig{N: 32, Nc: 4, Q: 3})
	if err != nil {
		t.Fatal(err)
	}
	uniRes, err := Solve(uniform.Schedule, routing.NewSORN(uniform), tm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta <= uniRes.Theta {
		t.Fatalf("hetero θ=%f should beat structure-blind uniform θ=%f", res.Theta, uniRes.Theta)
	}
}

func TestCapacityExactMultiplesOfPeriod(t *testing.T) {
	// Capacities must be exact multiples of 1/period even when a link
	// repeats within a non-power-of-2 period. OperaLike(n, e) repeats
	// every matching e times over period (n−1)·e, so every link's
	// capacity must be bit-exactly float64(e)/float64((n−1)·e). The old
	// accumulation (e float adds of 1/period) drifts off that value.
	for _, tc := range []struct{ n, epoch int }{
		{4, 3}, {6, 5}, {8, 7}, {5, 9}, {10, 49},
	} {
		op, err := schedule.BuildOperaLike(tc.n, tc.epoch)
		if err != nil {
			t.Fatal(err)
		}
		s := op.Schedule
		d, err := routing.NewDirect(matching.Compile(s))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(s, d, workload.Uniform(tc.n))
		if err != nil {
			t.Fatal(err)
		}
		want := float64(tc.epoch) / float64(s.Period())
		if res.BottleneckCap != want {
			t.Errorf("n=%d epoch=%d: bottleneck cap = %.20g, want exactly %.20g",
				tc.n, tc.epoch, res.BottleneckCap, want)
		}
		// Every link carries load float64(1/(n−1)) under Direct+Uniform
		// and has capacity epoch/period = 1/(n−1) rounded identically,
		// so θ must be exactly 1.
		if res.Theta != 1 {
			t.Errorf("n=%d epoch=%d: Direct uniform θ = %.20g, want exactly 1",
				tc.n, tc.epoch, res.Theta)
		}
	}
}
