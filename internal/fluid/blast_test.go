package fluid

import (
	"testing"

	"repro/internal/matching"
	"repro/internal/routing"
	"repro/internal/schedule"
)

func TestBlastRadiusVLBIsGlobal(t *testing.T) {
	// In a flat VLB design, any node failure touches flows between every
	// pair (every node is an intermediate for everyone).
	n := 16
	v, _ := routing.NewVLB(matching.Compile(matching.RoundRobin(n)))
	b, err := NodeBlastRadius(n, v, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b < 0.999 {
		t.Fatalf("flat VLB node blast radius = %f, want ~1", b)
	}
}

func TestBlastRadiusSORNIsModular(t *testing.T) {
	// In SORN, a node failure only affects pairs whose routing touches
	// that node's clique (as source, destination, or landing) — far less
	// than the flat design's 100%.
	s, err := schedule.BuildSORN(schedule.SORNConfig{N: 64, Nc: 8, Q: 3})
	if err != nil {
		t.Fatal(err)
	}
	router := routing.NewSORN(s)
	b, err := NodeBlastRadius(64, router, 3)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := routing.NewVLB(matching.Compile(matching.RoundRobin(64)))
	flat, err := NodeBlastRadius(64, v, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b >= flat/2 {
		t.Fatalf("SORN blast radius %f not much below flat %f", b, flat)
	}
}

func TestLinkBlastRadiusIntraVsInter(t *testing.T) {
	s, err := schedule.BuildSORN(schedule.SORNConfig{N: 64, Nc: 8, Q: 3})
	if err != nil {
		t.Fatal(err)
	}
	router := routing.NewSORN(s)
	// An intra-clique link (0->1) affects only pairs involving clique 0.
	intra, err := LinkBlastRadius(64, router, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if intra > 0.3 {
		t.Fatalf("intra link blast radius = %f, too large", intra)
	}
	if intra == 0 {
		t.Fatal("intra link blast radius should be positive")
	}
}

func TestBlastRadiusDirectIsMinimal(t *testing.T) {
	// Direct routing: a failed link affects exactly one pair.
	n := 8
	d, _ := routing.NewDirect(matching.Compile(matching.RoundRobin(n)))
	b, err := LinkBlastRadius(n, d, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / float64(n*(n-1))
	if b != want {
		t.Fatalf("direct link blast radius = %f, want %f", b, want)
	}
}

func TestBlastRadiusErrors(t *testing.T) {
	d, _ := routing.NewDirect(matching.Compile(matching.RoundRobin(4)))
	if _, err := LinkBlastRadius(1, d, 0, 1); err == nil {
		t.Error("n=1 accepted")
	}
}
