package netsim

import (
	"flag"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fluid"
	"repro/internal/matching"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/schedule"
	"repro/internal/workload"
)

// benchObs attaches an Observer to the saturated benchmarks so ci.sh
// can measure the observability layer's hot-path overhead on one
// machine: the same benchmark runs with and without -benchobs and the
// two ns/op readings are compared (cross-machine ledger numbers are not
// comparable; same-machine A/B is). The gate uses InjectSaturated — a
// full loaded slot, injection through delivery — because a drained
// network's idle steps make a fixed per-slot hook look artificially
// large. Default options: the always-on layer (metrics, sampled phase
// timing, rare events); per-flow tracing is opt-in and priced
// separately (see obs.Options.TraceFlows).
var benchObs = flag.Bool("benchobs", false, "attach an Observer in the saturated benchmarks (obs overhead gate)")

// benchDense runs the benchmarks on the dense reference engine instead
// of the default active-set engine, for same-machine A/B comparisons
// (ci.sh's dense-vs-active gate, and the OpenLoopSparse speedup the
// acceptance criteria track). Results are bit-identical either way —
// only the per-slot iteration strategy differs.
var benchDense = flag.Bool("benchdense", false, "run benchmarks on the dense reference engine (dense-vs-active A/B gate)")

func newSim(t *testing.T, sched *matching.Schedule, router routing.Router, seed uint64) *Sim {
	t.Helper()
	s, err := New(Config{Schedule: sched, Router: router, SlotNS: 100, PropNS: 500, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSingleCellDeterministicLatency(t *testing.T) {
	// Round robin over 8 nodes, direct routing. Node 0's circuit to node
	// 3 opens at slot 2 (shift 3); propagation is 5 slots; so a cell
	// injected at slot 0 completes at slot 7.
	sched := matching.RoundRobin(8)
	d, err := routing.NewDirect(matching.Compile(sched))
	if err != nil {
		t.Fatal(err)
	}
	s := newSim(t, sched, d, 1)
	s.StartMeasuring()
	f := s.InjectFlow(0, 3, 1)
	for i := 0; i < 20 && !f.Done(); i++ {
		s.Step()
	}
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if got := f.CompletionSlots(); got != 7 {
		t.Fatalf("completion = %d slots, want 7 (2 wait + 5 prop)", got)
	}
	if f.Delivered() != 1 {
		t.Fatalf("delivered = %d", f.Delivered())
	}
}

func TestCellConservation(t *testing.T) {
	sched := matching.RoundRobin(16)
	v, _ := routing.NewVLB(matching.Compile(sched))
	s := newSim(t, sched, v, 2)
	s.StartMeasuring()
	gen, err := workload.NewPoissonFlows(workload.Uniform(16), workload.FixedSize(4), 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	flows := gen.Window(0, 2000)
	if err := s.RunOpenLoop(flows, 2000); err != nil {
		t.Fatal(err)
	}
	// Drain: no new arrivals, run until nothing is queued or in flight.
	for i := 0; i < 100000 && !s.Drained(); i++ {
		s.Step()
	}
	st := s.Stats()
	if st.DeliveredCells != st.InjectedCells {
		t.Fatalf("conservation violated: injected %d delivered %d backlog %d",
			st.InjectedCells, st.DeliveredCells, s.Backlog())
	}
	if s.FlowsCompleted() != len(flows) {
		t.Fatalf("%d of %d flows completed", s.FlowsCompleted(), len(flows))
	}
	if int64(s.FlowsCompleted()) != st.CompletedFlows {
		t.Fatal("completed-flow counters disagree")
	}
}

func TestSaturatedThroughputVLB(t *testing.T) {
	// Saturated VLB over a 16-node round robin should deliver close to
	// the fluid bound (n−1)/(2n−3) ≈ 0.517 cells/node/slot.
	n := 16
	sched := matching.RoundRobin(n)
	v, _ := routing.NewVLB(matching.Compile(sched))
	s := newSim(t, sched, v, 4)
	st, err := s.RunSaturated(SaturationConfig{
		TM:            workload.Uniform(n),
		Size:          workload.FixedSize(4),
		TargetBacklog: 128,
		WarmupSlots:   3000,
		MeasureSlots:  8000,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n-1) / float64(2*n-3)
	got := st.Throughput(n)
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("saturated VLB throughput = %f, want ~%f", got, want)
	}
	// Mean hops just under 2 (direct with prob 1/(n−1)).
	if mh := st.MeanHops(); math.Abs(mh-(2-1.0/float64(n-1))) > 0.1 {
		t.Fatalf("mean hops = %f", mh)
	}
}

func TestSaturatedThroughputDirectUniform(t *testing.T) {
	// Direct routing on uniform traffic keeps every circuit busy: r → 1.
	n := 8
	sched := matching.RoundRobin(n)
	d, _ := routing.NewDirect(matching.Compile(sched))
	s := newSim(t, sched, d, 5)
	st, err := s.RunSaturated(SaturationConfig{
		TM:            workload.Uniform(n),
		Size:          workload.FixedSize(2),
		TargetBacklog: 256,
		WarmupSlots:   2000,
		MeasureSlots:  6000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Throughput(n); got < 0.9 {
		t.Fatalf("direct uniform throughput = %f, want ~1", got)
	}
}

func TestSaturatedSORNMatchesFluid(t *testing.T) {
	// The simulator's measured saturation throughput must track the
	// fluid solver's θ for a SORN design point.
	const n, nc, x = 64, 8, 0.5
	built, err := schedule.BuildSORN(schedule.SORNConfig{N: n, Nc: nc, Q: model.SORNQ(x)})
	if err != nil {
		t.Fatal(err)
	}
	router := routing.NewSORN(built)
	tm, err := workload.Locality(built.Cliques, x)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := fluid.Solve(built.Schedule, router, tm)
	if err != nil {
		t.Fatal(err)
	}
	s := newSim(t, built.Schedule, router, 6)
	st, err := s.RunSaturated(SaturationConfig{
		TM:            tm,
		Size:          workload.FixedSize(8),
		TargetBacklog: 256,
		WarmupSlots:   5000,
		MeasureSlots:  15000,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := st.Throughput(n)
	if math.Abs(got-fl.Theta)/fl.Theta > 0.12 {
		t.Fatalf("simulated r = %f, fluid θ = %f", got, fl.Theta)
	}
}

func TestFailLinkLosesCells(t *testing.T) {
	sched := matching.RoundRobin(8)
	d, _ := routing.NewDirect(matching.Compile(sched))
	s := newSim(t, sched, d, 7)
	s.StartMeasuring()
	s.FailLink(0, 3)
	f := s.InjectFlow(0, 3, 5)
	for i := 0; i < 200; i++ {
		s.Step()
	}
	if f.Done() || f.Delivered() != 0 {
		t.Fatalf("flow over failed link delivered %d cells", f.Delivered())
	}
	// Other traffic unaffected.
	g := s.InjectFlow(1, 4, 5)
	for i := 0; i < 200 && !g.Done(); i++ {
		s.Step()
	}
	if !g.Done() {
		t.Fatal("unrelated flow blocked by failed link")
	}
}

func TestFailNodeStopsForwarding(t *testing.T) {
	sched := matching.RoundRobin(8)
	v, _ := routing.NewVLB(matching.Compile(sched))
	s := newSim(t, sched, v, 8)
	s.StartMeasuring()
	s.FailNode(2)
	// Node 2 cannot source traffic.
	f := s.InjectFlow(2, 5, 3)
	for i := 0; i < 300; i++ {
		s.Step()
	}
	if f.Done() {
		t.Fatal("failed node completed a flow")
	}
}

func TestLatencySampling(t *testing.T) {
	sched := matching.RoundRobin(8)
	d, _ := routing.NewDirect(matching.Compile(sched))
	s, err := New(Config{Schedule: sched, Router: d, SlotNS: 100, PropNS: 500, Seed: 9, LatencySampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.StartMeasuring()
	for i := 0; i < 10; i++ {
		s.InjectFlow(i%8, (i+3)%8, 2)
	}
	for i := 0; i < 500; i++ {
		s.Step()
	}
	st := s.Stats()
	if st.LatencySlots.Count() == 0 {
		t.Fatal("no latency samples recorded")
	}
	// Every latency includes at least the propagation delay (5 slots).
	if st.LatencySlots.Percentile(0) < 5 {
		t.Fatalf("min latency %f below propagation", st.LatencySlots.Percentile(0))
	}
	if st.FCTSlots.Count() == 0 {
		t.Fatal("no FCT samples recorded")
	}
}

func TestReconfigureDrainsAndCompletes(t *testing.T) {
	// Inject under one clique structure, reconfigure to another, and
	// verify every flow still completes (stranded cells are re-routed).
	a, err := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 2, Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 4, Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := newSim(t, a.Schedule, routing.NewSORN(a), 10)
	s.StartMeasuring()
	var flows []*FlowState
	for i := 0; i < 16; i++ {
		flows = append(flows, s.InjectFlow(i, (i+5)%16, 20))
	}
	for i := 0; i < 10; i++ {
		s.Step()
	}
	if err := s.Reconfigure(b.Schedule, routing.NewSORN(b)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000 && !s.Drained(); i++ {
		s.Step()
	}
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d stranded after reconfiguration (delivered %d/20)", i, f.Delivered())
		}
	}
}

func TestReconfigureRejectsMismatchedSchedule(t *testing.T) {
	sched := matching.RoundRobin(8)
	v, _ := routing.NewVLB(matching.Compile(sched))
	s := newSim(t, sched, v, 11)
	other := matching.RoundRobin(4)
	ov, _ := routing.NewVLB(matching.Compile(other))
	if err := s.Reconfigure(other, ov); err == nil {
		t.Fatal("mismatched reconfiguration accepted")
	}
}

func TestNewValidation(t *testing.T) {
	sched := matching.RoundRobin(8)
	v, _ := routing.NewVLB(matching.Compile(sched))
	if _, err := New(Config{Router: v}); err == nil {
		t.Error("missing schedule accepted")
	}
	if _, err := New(Config{Schedule: sched}); err == nil {
		t.Error("missing router accepted")
	}
	if _, err := New(Config{Schedule: sched, Router: v, PropNS: -1}); err == nil {
		t.Error("negative propagation accepted")
	}
}

func TestRunSaturatedValidation(t *testing.T) {
	sched := matching.RoundRobin(8)
	v, _ := routing.NewVLB(matching.Compile(sched))
	s := newSim(t, sched, v, 12)
	if _, err := s.RunSaturated(SaturationConfig{TM: workload.Uniform(4), Size: workload.FixedSize(1), TargetBacklog: 1, MeasureSlots: 1}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := s.RunSaturated(SaturationConfig{TM: workload.Uniform(8), Size: workload.FixedSize(1), TargetBacklog: 0, MeasureSlots: 1}); err == nil {
		t.Error("zero backlog accepted")
	}
}

func TestOpenLoopLowLoadLatency(t *testing.T) {
	// At 10% load the network is uncongested: mean cell latency should be
	// within a small factor of the intrinsic bound (schedule wait + prop).
	n := 16
	sched := matching.RoundRobin(n)
	v, _ := routing.NewVLB(matching.Compile(sched))
	s, err := New(Config{Schedule: sched, Router: v, SlotNS: 100, PropNS: 500, Seed: 13, LatencySampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.StartMeasuring()
	gen, _ := workload.NewPoissonFlows(workload.Uniform(n), workload.FixedSize(1), 0.1, 14)
	flows := gen.Window(0, 5000)
	if err := s.RunOpenLoop(flows, 6000); err != nil {
		t.Fatal(err)
	}
	mean := s.Stats().LatencySlots.Mean()
	// Intrinsic: ~(n−1)/2 expected wait per directed hop ×2 + 2×5 prop.
	intrinsic := float64(n-1) + 10
	if mean > 2.5*intrinsic || mean < 5 {
		t.Fatalf("low-load mean latency %f slots vs intrinsic ~%f", mean, intrinsic)
	}
}

func BenchmarkStepSaturated(b *testing.B) {
	built, err := schedule.BuildSORN(schedule.SORNConfig{N: 128, Nc: 8, Q: 4.5})
	if err != nil {
		b.Fatal(err)
	}
	router := routing.NewSORN(built)
	var ob *obs.Observer
	if *benchObs {
		ob = obs.New(obs.Options{})
	}
	s, err := New(Config{Schedule: built.Schedule, Router: router, SlotNS: 100, PropNS: 500, Seed: 1, Obs: ob, Dense: *benchDense})
	if err != nil {
		b.Fatal(err)
	}
	tm, _ := workload.Locality(built.Cliques, 0.56)
	// Prime the backlog.
	if _, err := s.RunSaturated(SaturationConfig{TM: tm, Size: workload.FixedSize(8), TargetBacklog: 64, WarmupSlots: 0, MeasureSlots: 100}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkStepSaturatedFull times Step with the backlog held at the
// saturation target: the injection top-up runs with the timer stopped
// every 32 slots, so every timed Step transmits and lands a full
// slot's worth of cells — the active-set engine's worst case, where
// every source is active and the incremental tracking is pure
// overhead. The RNG- and allocation-heavy injection path is identical
// code on both engines and jittery enough on a shared host to drown a
// 5% A/B budget, so it stays outside the timed region (contrast
// BenchmarkInjectSaturated, which prices the whole slot including
// injection). Run with -benchdense for the dense-engine baseline.
func BenchmarkStepSaturatedFull(b *testing.B) {
	built, err := schedule.BuildSORN(schedule.SORNConfig{N: 128, Nc: 8, Q: 4.5})
	if err != nil {
		b.Fatal(err)
	}
	router := routing.NewSORN(built)
	s, err := New(Config{Schedule: built.Schedule, Router: router, SlotNS: 100, PropNS: 500, Seed: 1, Dense: *benchDense})
	if err != nil {
		b.Fatal(err)
	}
	tm, _ := workload.Locality(built.Cliques, 0.56)
	size := workload.FixedSize(8)
	if _, err := s.RunSaturated(SaturationConfig{TM: tm, Size: size, TargetBacklog: 64, WarmupSlots: 0, MeasureSlots: 100}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%32 == 0 {
			b.StopTimer()
			for u := 0; u < s.n; u++ {
				for s.fresh[u] < 64 {
					s.InjectFlow(u, tm.SampleDest(u, s.rng), size.Sample(s.rng))
				}
			}
			b.StartTimer()
		}
		s.Step()
	}
}

func TestPlanesScaleBandwidth(t *testing.T) {
	// With P planes, a saturated node delivers P cells/slot of raw
	// bandwidth; Throughput() normalizes back to a fraction, so the
	// measured r should match the single-plane value.
	n := 16
	sched := matching.RoundRobin(n)
	for _, planes := range []int{1, 4} {
		d, _ := routing.NewDirect(matching.Compile(sched))
		s, err := New(Config{Schedule: sched, Router: d, SlotNS: 100, PropNS: 500, Seed: 4, Planes: planes})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.RunSaturated(SaturationConfig{
			TM: workload.Uniform(n), Size: workload.FixedSize(2),
			TargetBacklog: 512, WarmupSlots: 2000, MeasureSlots: 4000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := st.Throughput(n); got < 0.9 {
			t.Fatalf("planes=%d throughput %f, want ~1", planes, got)
		}
		// Raw deliveries must scale with planes.
		raw := float64(st.DeliveredCells) / float64(st.MeasuredSlots) / float64(n)
		if raw < 0.9*float64(planes) {
			t.Fatalf("planes=%d raw rate %f, want ~%d", planes, raw, planes)
		}
	}
}

func TestPlanesReduceLatency(t *testing.T) {
	// Phase-staggered planes divide the wait for a given circuit by the
	// plane count — the /uplinks term of the paper's latency model.
	n := 64
	sched := matching.RoundRobin(n)
	waits := map[int]float64{}
	for _, planes := range []int{1, 8} {
		d, _ := routing.NewDirect(matching.Compile(sched))
		s, err := New(Config{
			Schedule: sched, Router: d, SlotNS: 100, PropNS: 500,
			Seed: 5, Planes: planes, LatencySampleEvery: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.StartMeasuring()
		gen, _ := workload.NewPoissonFlows(workload.Uniform(n), workload.FixedSize(1), 0.02, 6)
		flows := gen.Window(0, 20000)
		if err := s.RunOpenLoop(flows, 21000); err != nil {
			t.Fatal(err)
		}
		waits[planes] = s.Stats().LatencySlots.Mean()
	}
	// Mean latency = schedule wait (~(n-1)/2 for 1 plane) + 5 prop slots.
	// 8 planes should cut the schedule-wait component by ~8.
	want1 := float64(n-1)/2 + 5
	if waits[1] < 0.7*want1 || waits[1] > 1.5*want1 {
		t.Fatalf("1-plane mean latency %f, want ~%f", waits[1], want1)
	}
	if waits[8] > waits[1]/3 {
		t.Fatalf("8 planes did not cut latency: %f vs %f", waits[8], waits[1])
	}
}

func TestPlanesInvalid(t *testing.T) {
	sched := matching.RoundRobin(8)
	v, _ := routing.NewVLB(matching.Compile(sched))
	if _, err := New(Config{Schedule: sched, Router: v, Planes: -1}); err == nil {
		t.Fatal("negative planes accepted")
	}
}

func TestNoDuplicationOrLossProperty(t *testing.T) {
	// Random small workloads over random SORN configs: after draining,
	// every flow has delivered exactly its size — no duplication, no
	// silent loss — and the aggregate counters agree.
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		nc := 2 + r.Intn(3)
		k := 2 + r.Intn(4)
		n := nc * k
		built, err := schedule.BuildSORN(schedule.SORNConfig{N: n, Nc: nc, Q: 0.5 + 4*r.Float64()})
		if err != nil {
			return false
		}
		s, err := New(Config{
			Schedule: built.Schedule, Router: routing.NewSORN(built),
			SlotNS: 100, PropNS: int64(r.Intn(900)), Seed: seed,
			Planes: 1 + r.Intn(3),
		})
		if err != nil {
			return false
		}
		s.StartMeasuring()
		var flows []*FlowState
		nflows := 1 + r.Intn(20)
		for i := 0; i < nflows; i++ {
			src := r.Intn(n)
			dst := r.Intn(n)
			if dst == src {
				dst = (src + 1) % n
			}
			flows = append(flows, s.InjectFlow(src, dst, 1+r.Intn(30)))
			if r.Intn(3) == 0 {
				s.Step()
			}
		}
		for i := 0; i < 200000 && !s.Drained(); i++ {
			s.Step()
		}
		if !s.Drained() {
			return false
		}
		var total int64
		for _, f := range flows {
			if !f.Done() || f.Delivered() != int(f.size) || f.Lost() != 0 {
				return false
			}
			total += int64(f.size)
		}
		return s.Stats().DeliveredCells == total && s.Stats().InjectedCells == total
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDirectFlowDeliversInFIFOOrder(t *testing.T) {
	// A single-path flow (direct routing) must complete exactly when its
	// last cell's circuit occurs: size cells each need one occurrence of
	// the same circuit, one per period.
	sched := matching.RoundRobin(8)
	d, _ := routing.NewDirect(matching.Compile(sched))
	s := newSim(t, sched, d, 20)
	s.StartMeasuring()
	const size = 5
	f := s.InjectFlow(0, 3, size)
	for i := 0; i < 500 && !f.Done(); i++ {
		s.Step()
	}
	// Circuit 0->3 opens at slot 2, then every 7 slots; the 5th cell
	// transmits at slot 2+4*7=30 and lands 5 slots later.
	if got := f.CompletionSlots(); got != 35 {
		t.Fatalf("FIFO drain completion = %d, want 35", got)
	}
}

func TestOperaBulkShapeVsSORN(t *testing.T) {
	// Table 1's Opera-bulk row, in simulation shape: VLB over a slowly
	// rotating schedule (Opera-like epochs) completes a bulk flow orders
	// of magnitude slower than SORN at the same slot length, because the
	// direct circuit to the destination recurs only once per rotation.
	if testing.Short() {
		t.Skip("long drain")
	}
	opera, err := schedule.BuildOperaLike(32, 64)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := routing.NewVLB(matching.Compile(opera.Schedule))
	if err != nil {
		t.Fatal(err)
	}
	operaSim := newSim(t, opera.Schedule, ov, 22)
	operaSim.StartMeasuring()
	of := operaSim.InjectFlow(0, 17, 20)
	for i := 0; i < 500000 && !of.Done(); i++ {
		operaSim.Step()
	}
	if !of.Done() {
		t.Fatal("opera bulk flow never completed")
	}

	sorn, err := schedule.BuildSORN(schedule.SORNConfig{N: 32, Nc: 4, Q: 3})
	if err != nil {
		t.Fatal(err)
	}
	sornSim := newSim(t, sorn.Schedule, routing.NewSORN(sorn), 22)
	sornSim.StartMeasuring()
	sf := sornSim.InjectFlow(0, 17, 20)
	for i := 0; i < 500000 && !sf.Done(); i++ {
		sornSim.Step()
	}
	if !sf.Done() {
		t.Fatal("sorn flow never completed")
	}
	if of.CompletionSlots() < 5*sf.CompletionSlots() {
		t.Fatalf("opera bulk FCT %d not far above SORN %d",
			of.CompletionSlots(), sf.CompletionSlots())
	}
}

func TestQueueLimitDropsUnderOverload(t *testing.T) {
	// Tiny queues + many flows aimed at one destination force drops, and
	// accounting must still balance: delivered + dropped == injected.
	sched := matching.RoundRobin(8)
	d, _ := routing.NewDirect(matching.Compile(sched))
	s, err := New(Config{
		Schedule: sched, Router: d, SlotNS: 100, PropNS: 500,
		Seed: 23, QueueLimit: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.StartMeasuring()
	var flows []*FlowState
	for i := 0; i < 7; i++ {
		flows = append(flows, s.InjectFlow(i, 7, 50))
	}
	for i := 0; i < 20000 && !s.Drained(); i++ {
		s.Step()
	}
	st := s.Stats()
	if st.DroppedCells == 0 {
		t.Fatal("no drops despite 4-cell queues and 50-cell bursts")
	}
	var delivered, lost int64
	for _, f := range flows {
		delivered += int64(f.Delivered())
		lost += int64(f.Lost())
	}
	if delivered+lost != st.InjectedCells {
		t.Fatalf("accounting broken: delivered %d + lost %d != injected %d",
			delivered, lost, st.InjectedCells)
	}
	if st.DroppedCells != lost {
		t.Fatalf("drop counters disagree: %d vs %d", st.DroppedCells, lost)
	}
}

func TestQueueLimitZeroIsUnbounded(t *testing.T) {
	sched := matching.RoundRobin(8)
	d, _ := routing.NewDirect(matching.Compile(sched))
	s, err := New(Config{Schedule: sched, Router: d, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	s.StartMeasuring()
	f := s.InjectFlow(0, 7, 500)
	for i := 0; i < 10000 && !f.Done(); i++ {
		s.Step()
	}
	if !f.Done() || f.Lost() != 0 || s.Stats().DroppedCells != 0 {
		t.Fatal("unbounded queues dropped cells")
	}
}

func TestReconfigureGracefulRebalanceIsDrainFree(t *testing.T) {
	// A q rebalance keeps every circuit family (fixed neighbor
	// superset), so graceful reconfiguration completes with zero drain
	// slots even under load.
	a, _ := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 2, Q: 1})
	b, _ := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 2, Q: 7})
	s := newSim(t, a.Schedule, routing.NewSORN(a), 25)
	for i := 0; i < 16; i++ {
		s.InjectFlow(i, (i+3)%16, 10)
	}
	for i := 0; i < 5; i++ {
		s.Step()
	}
	drain, rerouted, err := s.ReconfigureGraceful(b.Schedule, routing.NewSORN(b), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if drain != 0 || rerouted != 0 {
		t.Fatalf("q rebalance drained %d slots, rerouted %d cells", drain, rerouted)
	}
}

func TestReconfigureGracefulReclusterDrains(t *testing.T) {
	// Changing the clique structure removes circuits; the drain loop
	// must run for a while, and all flows still complete afterwards.
	a, _ := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 2, Q: 2})
	b, _ := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 4, Q: 2})
	s := newSim(t, a.Schedule, routing.NewSORN(a), 26)
	var flows []*FlowState
	for i := 0; i < 16; i++ {
		flows = append(flows, s.InjectFlow(i, (i+5)%16, 20))
	}
	for i := 0; i < 5; i++ {
		s.Step()
	}
	drain, _, err := s.ReconfigureGraceful(b.Schedule, routing.NewSORN(b), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if drain == 0 {
		t.Fatal("re-clustering reported zero drain slots")
	}
	for i := 0; i < 200000 && !s.Drained(); i++ {
		s.Step()
	}
	for i, f := range flows {
		if !f.Done() {
			t.Fatalf("flow %d stranded after graceful reconfiguration", i)
		}
	}
}

func TestReconfigureGracefulDeadlineForcesReroute(t *testing.T) {
	// With a zero drain window, stranded cells are force-re-routed.
	a, _ := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 2, Q: 2})
	b, _ := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 4, Q: 2})
	s := newSim(t, a.Schedule, routing.NewSORN(a), 27)
	for i := 0; i < 16; i++ {
		s.InjectFlow(i, (i+5)%16, 20)
	}
	_, rerouted, err := s.ReconfigureGraceful(b.Schedule, routing.NewSORN(b), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rerouted == 0 {
		t.Fatal("expected forced re-routes with a zero drain window")
	}
}

func TestReconfigureGracefulValidation(t *testing.T) {
	sched := matching.RoundRobin(8)
	v, _ := routing.NewVLB(matching.Compile(sched))
	s := newSim(t, sched, v, 28)
	other := matching.RoundRobin(4)
	ov, _ := routing.NewVLB(matching.Compile(other))
	if _, _, err := s.ReconfigureGraceful(other, ov, 10); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestLatencyByHopsSeparatesClasses(t *testing.T) {
	// In a SORN under mixed traffic, 3-hop (inter-clique) cells must be
	// slower than 1-2 hop (intra-clique) cells, visible in one run.
	built, err := schedule.BuildSORN(schedule.SORNConfig{N: 32, Nc: 4, Q: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Schedule: built.Schedule, Router: routing.NewSORN(built),
		SlotNS: 100, PropNS: 500, Seed: 30, LatencySampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.StartMeasuring()
	tm, _ := workload.Locality(built.Cliques, 0.5)
	gen, _ := workload.NewPoissonFlows(tm, workload.FixedSize(2), 0.05, 31)
	flows := gen.Window(0, 15000)
	if err := s.RunOpenLoop(flows, 16000); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	intra2 := &st.LatencyByHops[2]
	inter3 := &st.LatencyByHops[3]
	if intra2.Count() == 0 || inter3.Count() == 0 {
		t.Fatalf("hop classes unpopulated: 2-hop %d, 3-hop %d", intra2.Count(), inter3.Count())
	}
	if inter3.Mean() <= intra2.Mean() {
		t.Fatalf("3-hop mean %f not above 2-hop mean %f", inter3.Mean(), intra2.Mean())
	}
	// Class samples partition the overall samples.
	var total int64
	for i := range st.LatencyByHops {
		total += int64(st.LatencyByHops[i].Count())
	}
	if total != int64(st.LatencySlots.Count()) {
		t.Fatalf("class samples %d != overall %d", total, st.LatencySlots.Count())
	}
}

func TestIdleSlotsCountedWithoutBacklog(t *testing.T) {
	// Regression: IdleSlots is documented as counting node-plane-slots
	// with an active circuit but no cell queued for it, but an earlier
	// version only incremented when the node had backlog for *some*
	// circuit — a completely idle network recorded zero idle slots.
	sched := matching.RoundRobin(8)
	d, _ := routing.NewDirect(matching.Compile(sched))
	s := newSim(t, sched, d, 40)
	s.StartMeasuring()
	for i := 0; i < 10; i++ {
		s.Step()
	}
	if got := s.Stats().IdleSlots; got != 80 {
		t.Fatalf("empty network idle slots = %d, want 8 nodes × 10 slots = 80", got)
	}
}

func TestIdleSlotsExcludeTransmissionsAndFailedNodes(t *testing.T) {
	// A transmitting node-slot is not idle, and failed nodes contribute
	// no idle slots at all.
	sched := matching.RoundRobin(8)
	d, _ := routing.NewDirect(matching.Compile(sched))
	s := newSim(t, sched, d, 41)
	s.FailNode(5)
	s.StartMeasuring()
	s.InjectFlow(0, 3, 1) // circuit 0→3 is active at slot 2
	for i := 0; i < 10; i++ {
		s.Step()
	}
	// 7 live nodes × 10 slots, minus the one slot node 0 transmitted on.
	if got := s.Stats().IdleSlots; got != 69 {
		t.Fatalf("idle slots = %d, want 69", got)
	}
}

func TestPlaneOffsetsDistinctAndSpread(t *testing.T) {
	// With planes <= period every plane must land on a distinct phase,
	// including when the plane count does not divide the period.
	for _, tc := range []struct{ period, planes int64 }{
		{8, 3}, {7, 5}, {12, 12}, {77, 16}, {5, 4}, {8, 8},
	} {
		offs := planeOffsets(tc.period, tc.planes)
		seen := make([]bool, tc.period)
		for p, o := range offs {
			if o < 0 || o >= tc.period {
				t.Fatalf("period %d planes %d: offset[%d] = %d out of range", tc.period, tc.planes, p, o)
			}
			if seen[o] {
				t.Fatalf("period %d planes %d: offsets %v collide", tc.period, tc.planes, offs)
			}
			seen[o] = true
		}
	}
	// With planes > period distinct phases are impossible (pigeonhole);
	// the round-robin stagger must keep per-phase plane counts within
	// one of each other.
	for _, tc := range []struct{ period, planes int64 }{
		{8, 16}, {8, 12}, {3, 7}, {1, 4},
	} {
		offs := planeOffsets(tc.period, tc.planes)
		counts := make([]int64, tc.period)
		for _, o := range offs {
			counts[o]++
		}
		lo, hi := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if hi-lo > 1 {
			t.Fatalf("period %d planes %d: uneven phase counts %v", tc.period, tc.planes, counts)
		}
	}
}

func TestLatencySamplingBernoulliRate(t *testing.T) {
	// k = 7 shares a factor with the 7-slot round-robin period — exactly
	// the configuration where the old every-k-th-delivery counter
	// phase-locked with the schedule. Bernoulli sampling must keep the
	// realized rate near 1/k.
	n := 8
	sched := matching.RoundRobin(n)
	d, _ := routing.NewDirect(matching.Compile(sched))
	s, err := New(Config{Schedule: sched, Router: d, SlotNS: 100, PropNS: 500, Seed: 42, LatencySampleEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.RunSaturated(SaturationConfig{
		TM: workload.Uniform(n), Size: workload.FixedSize(2),
		TargetBacklog: 64, WarmupSlots: 500, MeasureSlots: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(st.DeliveredCells) / 7
	got := float64(st.LatencySlots.Count())
	if math.Abs(got-want) > 0.1*want {
		t.Fatalf("sampled %0.f of %d deliveries, want ~%.0f (rate 1/7)", got, st.DeliveredCells, want)
	}
}

func TestLatencySamplingDoesNotPerturbTraffic(t *testing.T) {
	// Sampling draws from its own rng stream, so turning it on or off
	// must leave the traffic — and therefore the aggregate throughput
	// numbers — bit-for-bit unchanged.
	run := func(every int) int64 {
		n := 16
		sched := matching.RoundRobin(n)
		v, _ := routing.NewVLB(matching.Compile(sched))
		s, err := New(Config{Schedule: sched, Router: v, SlotNS: 100, PropNS: 500, Seed: 43, LatencySampleEvery: every})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.RunSaturated(SaturationConfig{
			TM: workload.Uniform(n), Size: workload.FixedSize(4),
			TargetBacklog: 64, WarmupSlots: 500, MeasureSlots: 2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.DeliveredCells
	}
	if off, on := run(0), run(7); off != on {
		t.Fatalf("latency sampling perturbed traffic: %d delivered without sampling, %d with", off, on)
	}
}

// checkConservation asserts the cell-conservation invariant: every
// injected cell is exactly one of delivered, dropped (QueueLimit), lost
// (failures), queued, or in flight.
func checkConservation(t *testing.T, s *Sim) {
	t.Helper()
	st := s.Stats()
	sum := st.DeliveredCells + st.DroppedCells + st.LostCells + s.Backlog() + int64(s.InFlight())
	if st.InjectedCells != sum {
		t.Fatalf("cell conservation violated: injected %d != delivered %d + dropped %d + lost %d + backlog %d + in-flight %d",
			st.InjectedCells, st.DeliveredCells, st.DroppedCells, st.LostCells, s.Backlog(), s.InFlight())
	}
}

func TestCellConservationQueueLimit(t *testing.T) {
	sched := matching.RoundRobin(8)
	d, _ := routing.NewDirect(matching.Compile(sched))
	s, err := New(Config{Schedule: sched, Router: d, SlotNS: 100, PropNS: 500, Seed: 44, QueueLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.StartMeasuring()
	for i := 0; i < 7; i++ {
		s.InjectFlow(i, 7, 50)
	}
	for i := 0; i < 2000; i++ {
		s.Step()
		if i%100 == 0 {
			checkConservation(t, s)
		}
	}
	checkConservation(t, s)
	if s.Stats().DroppedCells == 0 {
		t.Fatal("scenario produced no drops")
	}
}

func TestCellConservationFailures(t *testing.T) {
	n := 16
	sched := matching.RoundRobin(n)
	v, _ := routing.NewVLB(matching.Compile(sched))
	s := newSim(t, sched, v, 45)
	s.StartMeasuring()
	s.FailLink(0, 3)
	s.FailNode(9)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				s.InjectFlow(i, j, 3)
			}
		}
	}
	for i := 0; i < 3000; i++ {
		s.Step()
		if i%200 == 0 {
			checkConservation(t, s)
		}
	}
	checkConservation(t, s)
	if s.Stats().LostCells == 0 {
		t.Fatal("scenario produced no losses")
	}
}

func TestCellConservationReconfigure(t *testing.T) {
	a, _ := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 2, Q: 2})
	b, _ := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 4, Q: 2})
	s := newSim(t, a.Schedule, routing.NewSORN(a), 46)
	s.StartMeasuring()
	for i := 0; i < 16; i++ {
		s.InjectFlow(i, (i+5)%16, 20)
	}
	for i := 0; i < 10; i++ {
		s.Step()
	}
	checkConservation(t, s)
	if err := s.Reconfigure(b.Schedule, routing.NewSORN(b)); err != nil {
		t.Fatal(err)
	}
	checkConservation(t, s)
	for i := 0; i < 20000 && !s.Drained(); i++ {
		s.Step()
		if i%500 == 0 {
			checkConservation(t, s)
		}
	}
	if !s.Drained() {
		t.Fatal("did not drain after reconfiguration")
	}
	checkConservation(t, s)
}

func TestCellConservationReconfigureGraceful(t *testing.T) {
	a, _ := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 2, Q: 2})
	b, _ := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 4, Q: 2})
	s := newSim(t, a.Schedule, routing.NewSORN(a), 47)
	s.StartMeasuring()
	for i := 0; i < 16; i++ {
		s.InjectFlow(i, (i+5)%16, 20)
	}
	for i := 0; i < 5; i++ {
		s.Step()
	}
	if _, _, err := s.ReconfigureGraceful(b.Schedule, routing.NewSORN(b), 50); err != nil {
		t.Fatal(err)
	}
	checkConservation(t, s)
	for i := 0; i < 20000 && !s.Drained(); i++ {
		s.Step()
		if i%500 == 0 {
			checkConservation(t, s)
		}
	}
	if !s.Drained() {
		t.Fatal("did not drain after graceful reconfiguration")
	}
	checkConservation(t, s)
}

func TestPerPairBacklogSaturation(t *testing.T) {
	// Per-pair saturation now runs on a deficit worklist instead of an
	// O(n²)-per-slot scan; the measured throughput must still match the
	// fluid bound, conservation must hold, and identically seeded runs
	// must agree exactly.
	n := 16
	sched := matching.RoundRobin(n)
	v, _ := routing.NewVLB(matching.Compile(sched))
	sc := SaturationConfig{
		TM: workload.Uniform(n), Size: workload.FixedSize(4),
		PerPairBacklog: 8, WarmupSlots: 2000, MeasureSlots: 6000,
	}
	s := newSim(t, sched, v, 48)
	st, err := s.RunSaturated(sc)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n-1) / float64(2*n-3)
	if got := st.Throughput(n); math.Abs(got-want) > 0.05 {
		t.Fatalf("per-pair saturated VLB throughput = %f, want ~%f", got, want)
	}
	s2 := newSim(t, sched, v, 48)
	st2, err := s2.RunSaturated(sc)
	if err != nil {
		t.Fatal(err)
	}
	if st2.DeliveredCells != st.DeliveredCells || st2.SentCells != st.SentCells {
		t.Fatalf("per-pair saturation not deterministic: %d/%d vs %d/%d delivered/sent",
			st.DeliveredCells, st.SentCells, st2.DeliveredCells, st2.SentCells)
	}
	// Conservation needs counters live from slot 0 (warmup deliveries of
	// unmeasured injections would otherwise overcount), so check it on a
	// warmup-free run.
	s3 := newSim(t, sched, v, 48)
	sc.WarmupSlots = 0
	if _, err := s3.RunSaturated(sc); err != nil {
		t.Fatal(err)
	}
	checkConservation(t, s3)
}

func TestPerPairBacklogSkipsFailedNodes(t *testing.T) {
	// Pairs with a failed endpoint are never seeded into the worklist:
	// a failed source accumulates no fresh cells.
	n := 8
	sched := matching.RoundRobin(n)
	d, _ := routing.NewDirect(matching.Compile(sched))
	s := newSim(t, sched, d, 49)
	s.FailNode(2)
	if _, err := s.RunSaturated(SaturationConfig{
		TM: workload.Uniform(n), Size: workload.FixedSize(2),
		PerPairBacklog: 4, WarmupSlots: 0, MeasureSlots: 500,
	}); err != nil {
		t.Fatal(err)
	}
	if s.fresh[2] != 0 {
		t.Fatalf("failed node 2 was topped up: fresh = %d", s.fresh[2])
	}
	checkConservation(t, s)
}

// BenchmarkInjectSaturated exercises the injection-side hot path —
// routing, per-cell route materialization, queue pushes — that
// BenchmarkStepSaturated's pure transmit loop leaves out: each
// iteration is one saturated slot including its top-up injections.
func BenchmarkInjectSaturated(b *testing.B) {
	built, err := schedule.BuildSORN(schedule.SORNConfig{N: 128, Nc: 8, Q: 4.5})
	if err != nil {
		b.Fatal(err)
	}
	router := routing.NewSORN(built)
	var ob *obs.Observer
	if *benchObs {
		ob = obs.New(obs.Options{})
	}
	s, err := New(Config{Schedule: built.Schedule, Router: router, SlotNS: 100, PropNS: 500, Seed: 1, Obs: ob, Dense: *benchDense})
	if err != nil {
		b.Fatal(err)
	}
	tm, _ := workload.Locality(built.Cliques, 0.56)
	size := workload.FixedSize(8)
	// Prime the backlog so every iteration does steady-state work.
	if _, err := s.RunSaturated(SaturationConfig{TM: tm, Size: size, TargetBacklog: 64, WarmupSlots: 0, MeasureSlots: 100}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for u := 0; u < s.n; u++ {
			for s.fresh[u] < 64 {
				s.InjectFlow(u, tm.SampleDest(u, s.rng), size.Sample(s.rng))
			}
		}
		s.Step()
	}
}

// BenchmarkOpenLoopSparse prices the low-load FCT-shaped regime the
// active-set engine exists for: a 128-node SORN at 0.05% offered load
// over a 205k-slot horizon, where short flows arrive every ~100 slots,
// drain within a few tens, and the fabric sits quiescent between
// bursts. The dense engine still pays O(n·planes) per slot in transmit
// and landing for every one of those slots; the active-set engine pays
// per occupied entry and fast-forwards each quiescent gap in O(1). Run
// with -benchdense for the A/B baseline — results are bit-identical,
// only per-slot cost differs.
func BenchmarkOpenLoopSparse(b *testing.B) {
	built, err := schedule.BuildSORN(schedule.SORNConfig{N: 128, Nc: 8, Q: 4.5})
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Schedule: built.Schedule, Router: routing.NewSORN(built),
		SlotNS: 100, PropNS: 500, Seed: 1,
		LatencySampleEvery: 16, Dense: *benchDense,
	}
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tm, _ := workload.Locality(built.Cliques, 0.56)
	gen, err := workload.NewPoissonFlows(tm, workload.FixedSize(8), 0.0005, 7)
	if err != nil {
		b.Fatal(err)
	}
	flows := gen.Window(0, 200000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Reset(cfg); err != nil {
			b.Fatal(err)
		}
		s.StartMeasuring()
		if err := s.RunOpenLoop(flows, 205000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLargeN prices simulator construction plus a short arrival
// burst and a long drained tail at a node count the dense N² layouts
// made expensive. Allocations are as much the headline as ns/op (run
// with -benchmem): VOQ rows now allocate per occupied node (sources
// plus relay waypoints), so the per-op footprint tracks the burst's
// reach instead of unconditionally paying all 2048² virtual queues,
// and the active-set engine fast-forwards the drained tail the dense
// engine steps through slot by slot.
func BenchmarkLargeN(b *testing.B) {
	built, err := schedule.BuildSORN(schedule.SORNConfig{N: 2048, Nc: 32, Q: 4.5})
	if err != nil {
		b.Fatal(err)
	}
	router := routing.NewSORN(built)
	tm, _ := workload.Locality(built.Cliques, 0.56)
	gen, err := workload.NewPoissonFlows(tm, workload.FixedSize(16), 0.005, 7)
	if err != nil {
		b.Fatal(err)
	}
	flows := gen.Window(0, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(Config{
			Schedule: built.Schedule, Router: router,
			SlotNS: 100, PropNS: 500, Seed: 1,
			LatencySampleEvery: 16, Dense: *benchDense,
		})
		if err != nil {
			b.Fatal(err)
		}
		s.StartMeasuring()
		if err := s.RunOpenLoop(flows, 3000); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReconfigureWithFreshCellsQueued(t *testing.T) {
	// Reconfigure while most injected cells are still fresh (never
	// transmitted) at their sources: re-routing must keep the
	// fresh-cell accounting consistent — fresh counters equal the
	// fresh cells actually queued, and the total still drains to zero.
	sc, err := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 4, Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Schedule: sc.Schedule, Router: routing.NewSORN(sc), SlotNS: 100, PropNS: 300, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	s.StartMeasuring()
	injected := int64(0)
	r := rng.New(5)
	for i := 0; i < 60; i++ {
		src := r.Intn(16)
		dst := r.Intn(16)
		if src == dst {
			continue
		}
		size := 1 + r.Intn(6)
		s.InjectFlow(src, dst, size)
		injected += int64(size)
	}
	var totalFresh int64
	for _, f := range s.fresh {
		totalFresh += f
	}
	if totalFresh != injected {
		t.Fatalf("fresh = %d before reconfigure, want %d", totalFresh, injected)
	}
	// One step transmits a few cells; the rest reconfigure while fresh.
	s.Step()
	sc2, err := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 2, Q: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reconfigure(sc2.Schedule, routing.NewSORN(sc2)); err != nil {
		t.Fatal(err)
	}
	// Fresh counters must still match the fresh cells in the queues.
	perNode := make([]int64, s.n)
	for u := 0; u < s.n; u++ {
		row := s.voq[u]
		if row == nil {
			continue
		}
		for v := range row {
			q := &row[v]
			for i := q.head; i != q.tail; i++ {
				if q.buf[i&uint32(len(q.buf)-1)].fresh {
					perNode[u]++
				}
			}
		}
	}
	for u := range perNode {
		if perNode[u] != s.fresh[u] {
			t.Fatalf("node %d: fresh counter %d, %d fresh cells queued", u, s.fresh[u], perNode[u])
		}
	}
	for i := 0; i < 20000 && !s.Drained(); i++ {
		s.Step()
	}
	checkConservation(t, s)
	if got := s.Stats().DeliveredCells; got != injected {
		t.Fatalf("delivered %d of %d after reconfigure", got, injected)
	}
	for _, f := range s.fresh {
		if f != 0 {
			t.Fatalf("fresh counters nonzero after drain: %v", s.fresh)
		}
	}
}

func TestRerouteFreshCellAtDestinationConsumesFresh(t *testing.T) {
	// rerouteFrom's u == dst guard delivers the cell in place. If the
	// cell never left its source, the synthesized delivery must also
	// consume the fresh-cell accounting — otherwise the source's fresh
	// counter leaks and saturation top-up logic under-injects forever.
	sched := matching.RoundRobin(8)
	d, _ := routing.NewDirect(matching.Compile(sched))
	s := newSim(t, sched, d, 9)
	s.StartMeasuring()
	f := s.InjectFlow(0, 3, 1)
	// Manufacture the guard's input: a still-fresh cell of that flow
	// sitting at its own destination (reachable via routes that cross
	// dst mid-path, e.g. ORN digit paths, when a reconfigure requeues).
	s.fresh[3]++
	c := cell{flow: 0, fresh: true, n: 2}
	c.waypoints[0] = 5
	c.waypoints[1] = 3
	s.rerouteFrom(nil, 3, &c)
	if s.fresh[3] != 0 {
		t.Fatalf("fresh counter leaked: fresh[3] = %d, want 0", s.fresh[3])
	}
	if f.Delivered() != 1 {
		t.Fatalf("delivered = %d, want 1 (in-place delivery)", f.Delivered())
	}
	if s.Stats().DeliveredCells != 1 {
		t.Fatalf("DeliveredCells = %d, want 1", s.Stats().DeliveredCells)
	}
}

// TestCellConservationNodeFailureMidRun kills a node while its VOQs and
// the VOQs pointing at it hold cells. The purge must surface every
// vanished cell as LostCells (no "vanishing cells"), the network must
// still drain, and every flow must satisfy delivered + lost == size.
func TestCellConservationNodeFailureMidRun(t *testing.T) {
	n := 16
	sched := matching.RoundRobin(n)
	v, _ := routing.NewVLB(matching.Compile(sched))
	s := newSim(t, sched, v, 48)
	s.StartMeasuring()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				s.InjectFlow(i, j, 3)
			}
		}
	}
	for i := 0; i < 50; i++ {
		s.Step()
	}
	checkConservation(t, s)
	before := s.Stats().LostCells
	s.FailNode(9)
	// The purge itself must keep the invariant, before any further Step.
	checkConservation(t, s)
	if s.Stats().LostCells == before {
		t.Fatal("FailNode purged no cells from a saturated node (expected queued cells at node 9)")
	}
	// FailNode is idempotent: a second call must not double-count.
	lost := s.Stats().LostCells
	s.FailNode(9)
	if got := s.Stats().LostCells; got != lost {
		t.Fatalf("second FailNode changed LostCells: %d -> %d", lost, got)
	}
	// Injecting at a dead source is all loss, immediately accounted.
	f := s.InjectFlow(9, 2, 5)
	if f.Lost() != 5 || f.Delivered() != 0 {
		t.Fatalf("flow from failed source: delivered %d lost %d, want 0/5", f.Delivered(), f.Lost())
	}
	checkConservation(t, s)
	for i := 0; i < 20000 && !s.Drained(); i++ {
		s.Step()
		if i%500 == 0 {
			checkConservation(t, s)
		}
	}
	if !s.Drained() {
		t.Fatal("network did not drain after node failure (cells stuck or vanished)")
	}
	checkConservation(t, s)
	s.eachFlow(func(fl *FlowState) {
		if int32(fl.Delivered())+int32(fl.Lost()) != fl.size {
			t.Fatalf("flow %d->%d: delivered %d + lost %d != size %d",
				fl.src, fl.dst, fl.Delivered(), fl.Lost(), fl.size)
		}
	})
}

// TestFailureDuringStepPanics pins the injection contract: failures are
// only legal between Steps. The guard must fire rather than let a
// concurrent mutation race the sharded phases.
func TestFailureDuringStepPanics(t *testing.T) {
	sched := matching.RoundRobin(8)
	d, _ := routing.NewDirect(matching.Compile(sched))
	s := newSim(t, sched, d, 49)
	s.stepping = true // as if called from inside Step's sharded phases
	for name, fn := range map[string]func(){
		"FailLink": func() { s.FailLink(0, 1) },
		"FailNode": func() { s.FailNode(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s during Step did not panic", name)
				}
			}()
			fn()
		}()
	}
	s.stepping = false
	// Between Steps both calls are legal again.
	s.FailLink(0, 1)
	s.FailNode(2)
}

// TestFailLinkBetweenStepsParallel pins the documented lazy-bitmap
// contract: a FailLink injected between Steps is visible to every worker
// from the very next Step, at any worker count, with identical results.
func TestFailLinkBetweenStepsParallel(t *testing.T) {
	runScenario(t, func(t *testing.T, workers int) *Sim {
		n := 16
		sched := matching.RoundRobin(n)
		v, err := routing.NewVLB(matching.Compile(sched))
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Schedule: sched, Router: v, SlotNS: 100, PropNS: 500,
			Seed: 50, LatencySampleEvery: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		s.StartMeasuring()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					s.InjectFlow(i, j, 2)
				}
			}
		}
		// Interleave failures with stepping, always on the step boundary.
		for i := 0; i < 30; i++ {
			s.Step()
		}
		s.FailLink(0, 3)
		for i := 0; i < 30; i++ {
			s.Step()
		}
		s.FailLink(7, 2)
		s.FailLink(3, 0)
		for i := 0; i < 20000 && !s.Drained(); i++ {
			s.Step()
		}
		checkConservation(t, s)
		return s
	})
}
