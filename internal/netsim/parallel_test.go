package netsim

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/schedule"
	"repro/internal/stats"
	"repro/internal/workload"
)

// workerCounts are the shard counts every scenario is replayed under and
// checked bit-identical against the serial run. NumCPU is included so CI
// on multicore hosts exercises real parallelism; the fixed values cover
// uneven shard splits (3, 5) and more shards than cores.
func workerCounts() []int {
	counts := []int{1, 2, 3, 5, 8}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	return counts
}

// sampleEqual compares two sample streams exactly (bitwise, in insertion
// order): worker sharding must not change which latencies are sampled,
// their values, or their order.
func sampleEqual(t *testing.T, name string, a, b *stats.Sample) {
	t.Helper()
	av, bv := a.Values(), b.Values()
	if len(av) != len(bv) {
		t.Fatalf("%s: %d samples vs %d", name, len(av), len(bv))
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("%s[%d]: %v vs %v", name, i, av[i], bv[i])
		}
	}
}

// statsEqual asserts two Stats are bit-identical, counters and samples.
func statsEqual(t *testing.T, a, b *Stats) {
	t.Helper()
	type counters struct {
		delivered, injected, sent, idle, lost, dropped, measured, completed int64
	}
	ca := counters{a.DeliveredCells, a.InjectedCells, a.SentCells, a.IdleSlots,
		a.LostCells, a.DroppedCells, a.MeasuredSlots, a.CompletedFlows}
	cb := counters{b.DeliveredCells, b.InjectedCells, b.SentCells, b.IdleSlots,
		b.LostCells, b.DroppedCells, b.MeasuredSlots, b.CompletedFlows}
	if ca != cb {
		t.Fatalf("counters differ:\n  serial   %+v\n  parallel %+v", ca, cb)
	}
	sampleEqual(t, "LatencySlots", &a.LatencySlots, &b.LatencySlots)
	sampleEqual(t, "FCTSlots", &a.FCTSlots, &b.FCTSlots)
	for h := range a.LatencyByHops {
		sampleEqual(t, fmt.Sprintf("LatencyByHops[%d]", h), &a.LatencyByHops[h], &b.LatencyByHops[h])
	}
}

// runScenario executes one scenario at every worker count and checks the
// resulting Stats (and queue/flow invariants) against the Workers:1 run.
func runScenario(t *testing.T, scenario func(t *testing.T, workers int) *Sim) {
	t.Helper()
	ref := scenario(t, 1)
	for _, w := range workerCounts()[1:] {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			got := scenario(t, w)
			statsEqual(t, &ref.stats, &got.stats)
			if ref.Backlog() != got.Backlog() || ref.InFlight() != got.InFlight() {
				t.Fatalf("backlog/inflight: %d/%d vs %d/%d",
					ref.Backlog(), ref.InFlight(), got.Backlog(), got.InFlight())
			}
			if ref.FlowsCompleted() != got.FlowsCompleted() {
				t.Fatalf("flows completed: %d vs %d", ref.FlowsCompleted(), got.FlowsCompleted())
			}
		})
	}
}

func TestParallelDeterminismSaturated(t *testing.T) {
	runScenario(t, func(t *testing.T, workers int) *Sim {
		n := 32
		sched := matching.RoundRobin(n)
		v, err := routing.NewVLB(matching.Compile(sched))
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Schedule: sched, Router: v, SlotNS: 100, PropNS: 500,
			Seed: 11, LatencySampleEvery: 4, Planes: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.RunSaturated(SaturationConfig{
			TM:            workload.Uniform(n),
			Size:          workload.FixedSize(4),
			TargetBacklog: 64,
			WarmupSlots:   500,
			MeasureSlots:  1500,
		}); err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestParallelDeterminismSaturatedPerPair(t *testing.T) {
	runScenario(t, func(t *testing.T, workers int) *Sim {
		sc, err := schedule.BuildSORN(schedule.SORNConfig{N: 32, Nc: 4, Q: 2})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Schedule: sc.Schedule, Router: routing.NewSORN(sc),
			SlotNS: 100, PropNS: 300, Seed: 7, LatencySampleEvery: 8, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.RunSaturated(SaturationConfig{
			TM:             workload.Uniform(32),
			Size:           workload.FixedSize(2),
			PerPairBacklog: 4,
			WarmupSlots:    300,
			MeasureSlots:   900,
		}); err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestParallelDeterminismOpenLoopFailures(t *testing.T) {
	runScenario(t, func(t *testing.T, workers int) *Sim {
		n := 27
		orn, err := schedule.BuildOptimalORN(n, 3)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Schedule: orn.Schedule, Router: routing.NewORN(orn),
			SlotNS: 100, PropNS: 400, Seed: 3, LatencySampleEvery: 1,
			QueueLimit: 16, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		s.StartMeasuring()
		gen, err := workload.NewPoissonFlows(workload.Uniform(n), workload.FixedSize(3), 0.3, 9)
		if err != nil {
			t.Fatal(err)
		}
		flows := gen.Window(0, 1200)
		// Fail a link and a node mid-run so loss accounting is staged
		// through shards in both phases.
		if err := s.RunOpenLoop(flows[:len(flows)/2], 600); err != nil {
			t.Fatal(err)
		}
		s.FailLink(1, 2)
		s.FailNode(5)
		if err := s.RunOpenLoop(flows[len(flows)/2:], 1200); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20000 && !s.Drained(); i++ {
			s.Step()
		}
		return s
	})
}

func TestParallelDeterminismReconfigure(t *testing.T) {
	runScenario(t, func(t *testing.T, workers int) *Sim {
		sc, err := schedule.BuildSORN(schedule.SORNConfig{N: 24, Nc: 4, Q: 2})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Schedule: sc.Schedule, Router: routing.NewSORN(sc),
			SlotNS: 100, PropNS: 300, Seed: 21, LatencySampleEvery: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		s.StartMeasuring()
		r := rng.New(21)
		for i := 0; i < 200; i++ {
			src := r.Intn(24)
			dst := r.Intn(24)
			if src == dst {
				continue
			}
			s.InjectFlow(src, dst, 1+r.Intn(5))
		}
		for i := 0; i < 40; i++ {
			s.Step()
		}
		// Swap to a different clique split mid-flight: every queued cell
		// is re-routed, in-flight cells re-route on landing.
		sc2, err := schedule.BuildSORN(schedule.SORNConfig{N: 24, Nc: 3, Q: 1.5})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Reconfigure(sc2.Schedule, routing.NewSORN(sc2)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20000 && !s.Drained(); i++ {
			s.Step()
		}
		return s
	})
}
