package netsim

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/schedule"
	"repro/internal/workload"
)

// newTestObserver uses a short snapshot cadence so even the small test
// runs produce several series rows, and turns on flow tracing so the
// event-stream determinism checks cover the high-rate events too.
func newTestObserver() *obs.Observer {
	return obs.New(obs.Options{MetricsEvery: 16, TraceCap: 1 << 14, TraceFlows: true})
}

// obsScenario is one workload replayed with and without an observer and
// at several worker counts. Each run builds a fresh Sim.
type obsScenario struct {
	name string
	run  func(t *testing.T, workers int, ob *obs.Observer) *Sim
}

func obsScenarios() []obsScenario {
	return []obsScenario{
		{name: "saturated-per-pair", run: func(t *testing.T, workers int, ob *obs.Observer) *Sim {
			sc, err := schedule.BuildSORN(schedule.SORNConfig{N: 32, Nc: 4, Q: 2})
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(Config{Schedule: sc.Schedule, Router: routing.NewSORN(sc),
				SlotNS: 100, PropNS: 300, Seed: 7, LatencySampleEvery: 8,
				Workers: workers, Obs: ob})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.RunSaturated(SaturationConfig{
				TM:             workload.Uniform(32),
				Size:           workload.FixedSize(2),
				PerPairBacklog: 4,
				WarmupSlots:    300,
				MeasureSlots:   900,
			}); err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{name: "openloop-failures", run: func(t *testing.T, workers int, ob *obs.Observer) *Sim {
			n := 27
			orn, err := schedule.BuildOptimalORN(n, 3)
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(Config{Schedule: orn.Schedule, Router: routing.NewORN(orn),
				SlotNS: 100, PropNS: 400, Seed: 3, LatencySampleEvery: 1,
				QueueLimit: 16, Workers: workers, Obs: ob})
			if err != nil {
				t.Fatal(err)
			}
			s.StartMeasuring()
			gen, err := workload.NewPoissonFlows(workload.Uniform(n), workload.FixedSize(3), 0.3, 9)
			if err != nil {
				t.Fatal(err)
			}
			flows := gen.Window(0, 1200)
			if err := s.RunOpenLoop(flows[:len(flows)/2], 600); err != nil {
				t.Fatal(err)
			}
			s.FailLink(1, 2)
			s.FailNode(5)
			if err := s.RunOpenLoop(flows[len(flows)/2:], 1200); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20000 && !s.Drained(); i++ {
				s.Step()
			}
			return s
		}},
		{name: "reconfigure", run: func(t *testing.T, workers int, ob *obs.Observer) *Sim {
			a, err := schedule.BuildSORN(schedule.SORNConfig{N: 24, Nc: 4, Q: 2})
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(Config{Schedule: a.Schedule, Router: routing.NewSORN(a),
				SlotNS: 100, PropNS: 300, Seed: 21, LatencySampleEvery: 2,
				Workers: workers, Obs: ob})
			if err != nil {
				t.Fatal(err)
			}
			s.StartMeasuring()
			for i := 0; i < 24; i++ {
				s.InjectFlow(i, (i+7)%24, 1+i%5)
			}
			for i := 0; i < 40; i++ {
				s.Step()
			}
			b, err := schedule.BuildSORN(schedule.SORNConfig{N: 24, Nc: 3, Q: 1.5})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Reconfigure(b.Schedule, routing.NewSORN(b)); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 20000 && !s.Drained(); i++ {
				s.Step()
			}
			return s
		}},
	}
}

// eventsEqual asserts two event streams are identical element-wise: the
// trace must not depend on the worker count.
func eventsEqual(t *testing.T, a, b []obs.Event) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("event streams differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event[%d] differs:\n  serial   %+v\n  parallel %+v", i, a[i], b[i])
		}
	}
}

// seriesEqual asserts two metric series are identical row-by-row.
func seriesEqual(t *testing.T, a, b [][]string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("series differ in length: %d vs %d rows", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("series row %d differs in width: %d vs %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("series[%d][%d]: %q vs %q", i, j, a[i][j], b[i][j])
			}
		}
	}
}

// TestObsNonPerturbation is the observability layer's core guarantee:
// attaching an Observer changes NOTHING about the simulation. For each
// scenario (saturated per-pair draining, open-loop with mid-run link and
// node failures, mid-run reconfiguration) it runs obs-off and obs-on at
// Workers 1 and 4 and requires bit-identical Stats, and additionally
// requires that the obs-on event trace and metric series themselves are
// identical across worker counts.
func TestObsNonPerturbation(t *testing.T) {
	type capture struct {
		sim    *Sim
		events []obs.Event
		series [][]string
	}
	for _, sc := range obsScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			caps := make(map[int]map[bool]capture)
			for _, workers := range []int{1, 4} {
				caps[workers] = make(map[bool]capture)
				for _, withObs := range []bool{false, true} {
					var ob *obs.Observer
					if withObs {
						ob = newTestObserver()
					}
					sim := sc.run(t, workers, ob)
					c := capture{sim: sim}
					if withObs {
						c.events = ob.Events()
						c.series = ob.SeriesRows()
					}
					caps[workers][withObs] = c
				}
				off, on := caps[workers][false], caps[workers][true]
				statsEqual(t, &off.sim.stats, &on.sim.stats)
				if off.sim.Backlog() != on.sim.Backlog() || off.sim.InFlight() != on.sim.InFlight() {
					t.Fatalf("workers=%d: observer perturbed queues: backlog/inflight %d/%d vs %d/%d",
						workers, off.sim.Backlog(), off.sim.InFlight(), on.sim.Backlog(), on.sim.InFlight())
				}
				if off.sim.FlowsCompleted() != on.sim.FlowsCompleted() {
					t.Fatalf("workers=%d: observer perturbed completions: %d vs %d",
						workers, off.sim.FlowsCompleted(), on.sim.FlowsCompleted())
				}
			}
			statsEqual(t, &caps[1][true].sim.stats, &caps[4][true].sim.stats)
			eventsEqual(t, caps[1][true].events, caps[4][true].events)
			seriesEqual(t, caps[1][true].series, caps[4][true].series)
		})
	}
}

// TestObsFailureSignals checks the observer actually captures what the
// failure scenario does: the lost_cells counter mirrors Stats.LostCells
// exactly, and the trace carries the failure and flow lifecycle events.
func TestObsFailureSignals(t *testing.T) {
	ob := newTestObserver()
	var sim *Sim
	for _, sc := range obsScenarios() {
		if sc.name == "openloop-failures" {
			sim = sc.run(t, 2, ob)
		}
	}
	if sim == nil {
		t.Fatal("openloop-failures scenario missing")
	}
	st := sim.Stats()
	if st.LostCells == 0 {
		t.Fatal("scenario produced no losses")
	}
	if got := ob.Counter("lost_cells").Total(); got != st.LostCells {
		t.Fatalf("lost_cells counter %d != Stats.LostCells %d", got, st.LostCells)
	}
	if got := ob.Counter("delivered_cells").Total(); got != st.DeliveredCells {
		t.Fatalf("delivered_cells counter %d != Stats.DeliveredCells %d", got, st.DeliveredCells)
	}
	want := map[string]bool{
		obs.EvFlowStart:  false,
		obs.EvFlowFinish: false,
		obs.EvFailLink:   false,
		obs.EvFailNode:   false,
	}
	finishes := 0
	for _, e := range ob.Events() {
		if _, ok := want[e.Type]; ok {
			want[e.Type] = true
		}
		if e.Type == obs.EvFlowFinish {
			finishes++
		}
	}
	for typ, seen := range want {
		if !seen {
			t.Fatalf("trace missing %s event", typ)
		}
	}
	if finishes != sim.FlowsCompleted() {
		t.Fatalf("trace has %d flow_finish events, sim completed %d flows", finishes, sim.FlowsCompleted())
	}
	if len(ob.SeriesRows()) == 0 {
		t.Fatal("no metric series rows captured")
	}
}

// TestObsReconfigureSignals checks reconfiguration events reach the
// trace with their re-route cell counts.
func TestObsReconfigureSignals(t *testing.T) {
	ob := newTestObserver()
	var sim *Sim
	for _, sc := range obsScenarios() {
		if sc.name == "reconfigure" {
			sim = sc.run(t, 1, ob)
		}
	}
	if sim == nil {
		t.Fatal("reconfigure scenario missing")
	}
	var begin, commit bool
	for _, e := range ob.Events() {
		switch e.Type {
		case obs.EvReconfigBegin:
			begin = true
		case obs.EvReconfigCommit:
			commit = true
			if e.Cells < 0 {
				t.Fatalf("reconfig_commit carries negative re-routed cell count %d", e.Cells)
			}
		}
	}
	if !begin || !commit {
		t.Fatalf("trace missing reconfig events: begin=%v commit=%v", begin, commit)
	}
}
