package netsim

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/schedule"
	"repro/internal/workload"
)

// The dense engine is kept as the executable specification of the
// per-slot algorithm: every test here replays one scenario under
// Config.Dense true and false and requires bit-identical results —
// Stats counters, sample streams, queue/flow state, and (where an
// observer is attached) the metric series rows and the event trace.
// This is the active-set engine's headline invariant; the scenarios
// deliberately cover everything that moves occupancy sideways: fault
// churn with repairs, mid-run reconfiguration, queue-limit drops,
// multiple planes, pooled reuse via Reset, and quiescent stretches the
// active engine fast-forwards while the dense engine steps through.

// runDenseActive replays scenario under both engines at worker counts
// 1 and 2 (serial vs staged-shard-merge paths) and compares each active
// run against the dense serial reference.
func runDenseActive(t *testing.T, scenario func(t *testing.T, dense bool, workers int) *Sim) {
	t.Helper()
	ref := scenario(t, true, 1)
	for _, workers := range []int{1, 2} {
		for _, dense := range []bool{true, false} {
			if dense && workers == 1 {
				continue // the reference itself
			}
			t.Run(fmt.Sprintf("dense=%v/workers=%d", dense, workers), func(t *testing.T) {
				got := scenario(t, dense, workers)
				compareSims(t, ref, got)
				checkConservation(t, got)
			})
		}
	}
}

// obsEqual asserts two observers captured identical telemetry: same
// series header, same rows (every snapshot slot, every metric value),
// same event trace in emission order.
func obsEqual(t *testing.T, a, b *obs.Observer) {
	t.Helper()
	ah, bh := a.SeriesHeader(), b.SeriesHeader()
	if fmt.Sprint(ah) != fmt.Sprint(bh) {
		t.Fatalf("series headers differ:\n  %v\n  %v", ah, bh)
	}
	ar, br := a.SeriesRows(), b.SeriesRows()
	if len(ar) != len(br) {
		t.Fatalf("series rows: %d vs %d", len(ar), len(br))
	}
	for i := range ar {
		if fmt.Sprint(ar[i]) != fmt.Sprint(br[i]) {
			t.Fatalf("series row %d differs:\n  %v\n  %v", i, ar[i], br[i])
		}
	}
	ae, be := a.Events(), b.Events()
	if len(ae) != len(be) {
		t.Fatalf("events: %d vs %d", len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("event %d differs:\n  %+v\n  %+v", i, ae[i], be[i])
		}
	}
}

// sparseFlows is a workload with real quiescent stretches: a low-rate
// Poisson stream over a long horizon, so the active engine's
// fast-forward fires many times while the dense reference steps through
// every slot.
func sparseFlows(t *testing.T, tm *workload.Matrix, horizon int64) []workload.Flow {
	t.Helper()
	gen, err := workload.NewPoissonFlows(tm, workload.FixedSize(6), 0.002, 17)
	if err != nil {
		t.Fatal(err)
	}
	return gen.Window(0, horizon)
}

func TestDenseActiveEquivalenceSparseOpenLoop(t *testing.T) {
	runDenseActive(t, func(t *testing.T, dense bool, workers int) *Sim {
		sc, err := schedule.BuildSORN(schedule.SORNConfig{N: 32, Nc: 4, Q: 2})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Schedule: sc.Schedule, Router: routing.NewSORN(sc),
			SlotNS: 100, PropNS: 500, Seed: 5, LatencySampleEvery: 2,
			Dense: dense, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		s.StartMeasuring()
		tm, err := workload.Locality(sc.Cliques, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunOpenLoop(sparseFlows(t, tm, 4000), 5000); err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestDenseActiveEquivalenceFaultChurn(t *testing.T) {
	runDenseActive(t, func(t *testing.T, dense bool, workers int) *Sim {
		n := 32
		sc, err := schedule.BuildSORN(schedule.SORNConfig{N: n, Nc: 4, Q: 2})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Schedule: sc.Schedule, Router: routing.NewSORN(sc),
			SlotNS: 100, PropNS: 400, Seed: 23, LatencySampleEvery: 1,
			QueueLimit: 8, Planes: 2, Dense: dense, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		s.StartMeasuring()
		tm := workload.Uniform(n)
		flows := sparseFlows(t, tm, 3000)
		half := len(flows) / 2
		// First half with a failed link and a failed node (their queues
		// purge, their sources leave the active set), then repair and
		// re-fail different entities so occupancy churns both ways, with
		// quiescent gaps throughout for the fast-forward to chew on.
		s.FailLink(1, 2)
		s.FailNode(5)
		if err := s.RunOpenLoop(flows[:half], 1500); err != nil {
			t.Fatal(err)
		}
		s.RepairNode(5)
		s.RepairLink(1, 2)
		s.FailNode(9)
		s.FailLink(3, 7)
		if err := s.RunOpenLoop(flows[half:], 3000); err != nil {
			t.Fatal(err)
		}
		s.RepairNode(9)
		for i := 0; i < 20000 && !s.Drained(); i++ {
			s.Step()
		}
		return s
	})
}

func TestDenseActiveEquivalenceReconfigure(t *testing.T) {
	runDenseActive(t, func(t *testing.T, dense bool, workers int) *Sim {
		n := 24
		sc, err := schedule.BuildSORN(schedule.SORNConfig{N: n, Nc: 4, Q: 2})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Schedule: sc.Schedule, Router: routing.NewSORN(sc),
			SlotNS: 100, PropNS: 300, Seed: 31, LatencySampleEvery: 2,
			Dense: dense, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		s.StartMeasuring()
		tm := workload.Uniform(n)
		flows := sparseFlows(t, tm, 2000)
		half := len(flows) / 2
		if err := s.RunOpenLoop(flows[:half], 1000); err != nil {
			t.Fatal(err)
		}
		// Swap the fabric with cells queued and in flight: the active set
		// rebuilds from surviving backlog, and the new circuit set routes
		// the second half.
		sc2, err := schedule.BuildSORN(schedule.SORNConfig{N: n, Nc: 3, Q: 1.5})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Reconfigure(sc2.Schedule, routing.NewSORN(sc2)); err != nil {
			t.Fatal(err)
		}
		if err := s.RunOpenLoop(flows[half:], 2000); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20000 && !s.Drained(); i++ {
			s.Step()
		}
		return s
	})
}

func TestDenseActiveEquivalenceResetReuse(t *testing.T) {
	// Pooled reuse across engine modes: a simulator dirtied under one
	// engine and Reset into the other must be indistinguishable from a
	// fresh simulator of that mode — Reset rebuilds the active set from
	// scratch and Dense follows the new Config, not the old one.
	for _, towardsDense := range []bool{false, true} {
		t.Run(fmt.Sprintf("toDense=%v", towardsDense), func(t *testing.T) {
			cfg := sornResetConfig(t, 1)
			cfg.Dense = towardsDense
			fresh, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			runSaturatedTarget(t, fresh)

			dirty := dirtySim(t, 1) // dirtySim runs the default (active) engine
			if towardsDense {
				d := dirtySim(t, 1)
				dcfg := sornResetConfig(t, 1)
				if err := d.Reset(dcfg); err != nil {
					t.Fatal(err)
				}
				dirty = d
			}
			if err := dirty.Reset(cfg); err != nil {
				t.Fatal(err)
			}
			runSaturatedTarget(t, dirty)
			compareSims(t, fresh, dirty)
		})
	}
}

func TestDenseActiveObsSeriesEquivalence(t *testing.T) {
	// Full telemetry equivalence under fast-forward: a non-power-of-two
	// snapshot cadence (the mask fast path does not apply), quiescent
	// stretches crossing many snapshot boundaries, and fault events
	// landing inside them. The dense run records its series by stepping
	// every slot; the active run must produce the identical rows and
	// trace while skipping most of those slots.
	run := func(dense bool) (*Sim, *obs.Observer) {
		sc, err := schedule.BuildSORN(schedule.SORNConfig{N: 32, Nc: 4, Q: 2})
		if err != nil {
			t.Fatal(err)
		}
		ob := obs.New(obs.Options{MetricsEvery: 7, TraceFlows: true})
		ob.StartRun("equiv")
		s, err := New(Config{Schedule: sc.Schedule, Router: routing.NewSORN(sc),
			SlotNS: 100, PropNS: 500, Seed: 41, LatencySampleEvery: 2,
			Dense: dense, Obs: ob})
		if err != nil {
			t.Fatal(err)
		}
		s.StartMeasuring()
		tm, err := workload.Locality(sc.Cliques, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		flows := sparseFlows(t, tm, 2000)
		half := len(flows) / 2
		if err := s.RunOpenLoop(flows[:half], 1200); err != nil {
			t.Fatal(err)
		}
		s.FailNode(3)
		if err := s.RunOpenLoop(flows[half:], 2600); err != nil {
			t.Fatal(err)
		}
		s.RepairNode(3)
		if err := s.RunOpenLoop(nil, 3500); err != nil {
			t.Fatal(err)
		}
		return s, ob
	}
	ds, dob := run(true)
	as, aob := run(false)
	compareSims(t, ds, as)
	obsEqual(t, dob, aob)
}

func TestFastForwardToExactness(t *testing.T) {
	// The unit-level contract behind the equivalence above: on a
	// quiescent simulator, FastForwardTo(target) leaves every observable
	// — slot, Stats, metric series — exactly where stepping slot by slot
	// to target would. The stepped twin here is an active-engine sim too,
	// so this isolates the fast-forward path from the engine difference.
	run := func(ff bool) (*Sim, *obs.Observer) {
		sc, err := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 4, Q: 2})
		if err != nil {
			t.Fatal(err)
		}
		ob := obs.New(obs.Options{MetricsEvery: 5})
		s, err := New(Config{Schedule: sc.Schedule, Router: routing.NewSORN(sc),
			SlotNS: 100, PropNS: 300, Seed: 3, LatencySampleEvery: 1, Obs: ob})
		if err != nil {
			t.Fatal(err)
		}
		s.StartMeasuring()
		// A little traffic first, fully drained, so the counters are
		// non-zero when the quiescent stretch begins.
		s.InjectFlow(0, 5, 4)
		s.InjectFlow(7, 2, 3)
		for i := 0; i < 20000 && !s.Drained(); i++ {
			s.Step()
		}
		start := s.Slot()
		target := start + 137 // crosses many 5-slot snapshot boundaries
		if ff {
			if got := s.FastForwardTo(target); got != target-start {
				t.Fatalf("FastForwardTo skipped %d slots, want %d", got, target-start)
			}
		} else {
			for s.Slot() < target {
				s.Step()
			}
		}
		return s, ob
	}
	stepped, sob := run(false)
	ffed, fob := run(true)
	compareSims(t, stepped, ffed)
	obsEqual(t, sob, fob)
}

func TestFastForwardToNoOps(t *testing.T) {
	sc, err := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 4, Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(dense bool) *Sim {
		s, err := New(Config{Schedule: sc.Schedule, Router: routing.NewSORN(sc),
			SlotNS: 100, PropNS: 300, Seed: 3, Dense: dense})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if s := mk(true); s.FastForwardTo(100) != 0 || s.Slot() != 0 {
		t.Fatal("dense engine must never fast-forward")
	}
	s := mk(false)
	if s.FastForwardTo(0) != 0 {
		t.Fatal("target <= slot must be a no-op")
	}
	s.InjectFlow(0, 5, 1)
	if s.FastForwardTo(100) != 0 || s.Slot() != 0 {
		t.Fatal("queued cells must block fast-forward")
	}
	s.Step() // cell takes off: backlog 0, in flight 1
	if s.Backlog() == 0 && s.InFlight() > 0 && s.FastForwardTo(100) != 0 {
		t.Fatal("in-flight cells must block fast-forward")
	}
	for i := 0; i < 100 && !s.Drained(); i++ {
		s.Step()
	}
	pre := s.Slot()
	if got := s.FastForwardTo(pre + 50); got != 50 || s.Slot() != pre+50 {
		t.Fatalf("drained fast-forward: skipped %d to slot %d", got, s.Slot())
	}
}
