package netsim

import (
	"testing"

	"repro/internal/faultplan"
	"repro/internal/matching"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/schedule"
	"repro/internal/workload"
)

func TestRepairDuringStepPanics(t *testing.T) {
	sched := matching.RoundRobin(8)
	d, _ := routing.NewDirect(matching.Compile(sched))
	s := newSim(t, sched, d, 49)
	s.FailLink(0, 1)
	s.FailNode(2)
	s.stepping = true // as if called from inside Step's sharded phases
	for name, fn := range map[string]func(){
		"RepairLink": func() { s.RepairLink(0, 1) },
		"RepairNode": func() { s.RepairNode(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s during Step did not panic", name)
				}
			}()
			fn()
		}()
	}
	s.stepping = false
	// Between Steps both repairs are legal again.
	s.RepairLink(0, 1)
	s.RepairNode(2)
}

func TestRepairOfLiveEntityIsNoOp(t *testing.T) {
	sched := matching.RoundRobin(8)
	d, _ := routing.NewDirect(matching.Compile(sched))
	ob := obs.New(obs.Options{})
	s, err := New(Config{Schedule: sched, Router: d, SlotNS: 100, PropNS: 500, Seed: 5, Obs: ob})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing has failed: repairs must change nothing and emit nothing —
	// including RepairLink before the failure bitmap even exists.
	s.RepairLink(0, 1)
	s.RepairNode(2)
	s.FailNode(2)
	s.RepairNode(2)
	s.RepairNode(2) // second repair of the same node: no-op
	var repairs int
	for _, e := range ob.Events() {
		if e.Type == obs.EvRepairLink || e.Type == obs.EvRepairNode {
			repairs++
		}
	}
	if repairs != 1 {
		t.Fatalf("%d repair events emitted, want exactly 1 (the real repair)", repairs)
	}
}

func TestRepairedLinkCarriesTrafficAgain(t *testing.T) {
	// Direct routing on a round robin: 0→3 uses exactly the link 0→3, so
	// failing it loses everything and repairing it restores everything.
	sched := matching.RoundRobin(8)
	d, _ := routing.NewDirect(matching.Compile(sched))
	s := newSim(t, sched, d, 50)
	s.StartMeasuring()
	s.FailLink(0, 3)
	f1 := s.InjectFlow(0, 3, 4)
	for i := 0; i < 100 && !s.Drained(); i++ {
		s.Step()
	}
	if f1.Delivered() != 0 {
		t.Fatalf("failed link delivered %d cells", f1.Delivered())
	}
	s.RepairLink(0, 3)
	f2 := s.InjectFlow(0, 3, 4)
	for i := 0; i < 100 && !f2.Done(); i++ {
		s.Step()
	}
	if f2.Delivered() != 4 {
		t.Fatalf("repaired link delivered %d of 4 cells", f2.Delivered())
	}
	checkConservation(t, s)
}

func TestInjectToRepairedNodeResumesDelivery(t *testing.T) {
	sched := matching.RoundRobin(8)
	d, _ := routing.NewDirect(matching.Compile(sched))
	s := newSim(t, sched, d, 51)
	s.StartMeasuring()
	s.FailNode(3)
	// Traffic to and from the dead node is lost...
	to := s.InjectFlow(0, 3, 4)
	from := s.InjectFlow(3, 5, 4)
	for i := 0; i < 100 && !s.Drained(); i++ {
		s.Step()
	}
	if to.Delivered() != 0 || from.Delivered() != 0 {
		t.Fatalf("dead node delivered: to=%d from=%d", to.Delivered(), from.Delivered())
	}
	checkConservation(t, s)
	// ...and flows normally after the repair, in both directions.
	s.RepairNode(3)
	to2 := s.InjectFlow(0, 3, 4)
	from2 := s.InjectFlow(3, 5, 4)
	for i := 0; i < 200 && !(to2.Done() && from2.Done()); i++ {
		s.Step()
	}
	if to2.Delivered() != 4 || from2.Delivered() != 4 {
		t.Fatalf("repaired node delivered: to=%d from=%d, want 4/4", to2.Delivered(), from2.Delivered())
	}
	checkConservation(t, s)
}

func TestFailRepairFailChurnConservation(t *testing.T) {
	// Cells are never created or destroyed across fail→repair→fail
	// churn: every injected cell ends up delivered, dropped, lost, or
	// still queued/in flight, at every point of the churn cycle.
	sc, err := schedule.BuildSORN(schedule.SORNConfig{N: 16, Nc: 4, Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Schedule: sc.Schedule, Router: routing.NewSORN(sc), SlotNS: 100, PropNS: 300, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	s.StartMeasuring()
	inject := func() {
		for u := 0; u < 16; u++ {
			for v := 0; v < 16; v++ {
				if u != v {
					s.InjectFlow(u, v, 2)
				}
			}
		}
	}
	step := func(k int) {
		for i := 0; i < k; i++ {
			s.Step()
		}
		checkConservation(t, s)
	}
	inject()
	step(5)
	for cycle := 0; cycle < 3; cycle++ {
		victim := 3 + cycle*4
		s.FailNode(victim)
		s.FailLink(0, 9)
		checkConservation(t, s) // purge accounting, immediately
		inject()
		step(7)
		s.RepairNode(victim)
		s.RepairLink(0, 9)
		inject()
		step(7)
		// Re-fail the same node after repair: second purge must account
		// exactly like the first.
		s.FailNode(victim)
		checkConservation(t, s)
		s.RepairNode(victim)
		step(3)
	}
	for i := 0; i < 20000 && !s.Drained(); i++ {
		s.Step()
	}
	if !s.Drained() {
		t.Fatal("network did not drain after churn (cells stuck or vanished)")
	}
	checkConservation(t, s)
	s.eachFlow(func(fl *FlowState) {
		if int32(fl.Delivered())+int32(fl.Lost()) != fl.size {
			t.Fatalf("flow %d->%d: delivered %d + lost %d != size %d",
				fl.src, fl.dst, fl.Delivered(), fl.Lost(), fl.size)
		}
	})
}

// TestParallelDeterminismFaultPlan extends the Workers 1-vs-k
// bit-identical guarantee to runs driven by an active fault plan:
// scripted outages plus random churn, applied between Steps by the
// faultplan driver, over open-loop traffic.
func TestParallelDeterminismFaultPlan(t *testing.T) {
	n := 16
	scripted, err := faultplan.New(n, append(
		faultplan.Outage(7, -1, 200, 800),
		faultplan.Outage(0, 9, 300, 600)...))
	if err != nil {
		t.Fatal(err)
	}
	churn, err := faultplan.Churn(faultplan.ChurnConfig{
		N: n, Start: 0, End: 1500, LinkRate: 0.01, NodeRate: 0.004, Down: 120, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faultplan.Merge(scripted, churn)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewPoissonFlows(workload.Uniform(n), workload.FixedSize(4), 0.3, 13)
	if err != nil {
		t.Fatal(err)
	}
	flows := gen.Window(0, 1500)

	runScenario(t, func(t *testing.T, workers int) *Sim {
		sched := matching.RoundRobin(n)
		v, err := routing.NewVLB(matching.Compile(sched))
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Schedule: sched, Router: v, SlotNS: 100, PropNS: 500,
			Seed: 53, LatencySampleEvery: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		s.StartMeasuring()
		drv := faultplan.NewDriver(plan)
		next := 0
		for slot := int64(0); slot < 2000; slot++ {
			drv.Advance(s, slot)
			for next < len(flows) && flows[next].Arrival <= slot {
				s.InjectFlow(flows[next].Src, flows[next].Dst, flows[next].Size)
				next++
			}
			s.Step()
		}
		checkConservation(t, s)
		return s
	})
}

// BenchmarkStepChurn prices the failure path: a saturated SORN fabric
// stepping under continuous link/node churn (one fault event between
// every few Steps), so fail/repair bookkeeping and the failed-entity
// checks in transmit/landing show up in the BENCH_netsim.json ledger.
func BenchmarkStepChurn(b *testing.B) {
	built, err := schedule.BuildSORN(schedule.SORNConfig{N: 128, Nc: 8, Q: 4.5})
	if err != nil {
		b.Fatal(err)
	}
	router := routing.NewSORN(built)
	var ob *obs.Observer
	if *benchObs {
		ob = obs.New(obs.Options{})
	}
	s, err := New(Config{Schedule: built.Schedule, Router: router, SlotNS: 100, PropNS: 500, Seed: 1, Obs: ob})
	if err != nil {
		b.Fatal(err)
	}
	tm, _ := workload.Locality(built.Cliques, 0.56)
	// Prime the backlog so every iteration does steady-state work.
	if _, err := s.RunSaturated(SaturationConfig{TM: tm, Size: workload.FixedSize(8), TargetBacklog: 64, WarmupSlots: 0, MeasureSlots: 100}); err != nil {
		b.Fatal(err)
	}
	// Deterministic churn cycle, all entities repaired by construction:
	// every 4th iteration fails a node and a link, every 4th+2 repairs
	// them, so half the Steps run with active failures.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim := (i / 4) % 128
		peer := (victim + 17) % 128
		switch i % 4 {
		case 0:
			s.FailNode(victim)
			s.FailLink(peer, victim)
		case 2:
			s.RepairNode(victim)
			s.RepairLink(peer, victim)
		}
		s.Step()
	}
	b.StopTimer()
	// Leave the fabric fully repaired so iteration-count choices do not
	// change the drain the deferred checks would see.
	for u := 0; u < 128; u++ {
		s.RepairNode(u)
		for v := 0; v < 128; v++ {
			if u != v {
				s.RepairLink(u, v)
			}
		}
	}
}
