package netsim

import "repro/internal/obs"

// simMetrics caches the metric handles the per-slot observability hook
// updates, plus the previous cumulative Stats snapshot it diffs against
// to derive per-slot deltas. It exists only when Config.Obs is set; the
// uninstrumented hot path pays a single nil check per Step.
type simMetrics struct {
	delivered *obs.Counter
	injected  *obs.Counter
	sent      *obs.Counter
	lost      *obs.Counter
	dropped   *obs.Counter
	completed *obs.Counter
	backlog   *obs.Gauge
	inflight  *obs.Gauge
	thpt      *obs.Rate

	// invNP caches 1/(n·planes) so the per-slot throughput observation
	// is one multiply instead of two divides.
	invNP float64

	prevDelivered int64
	prevInjected  int64
	prevSent      int64
	prevLost      int64
	prevDropped   int64
	prevCompleted int64
}

// newSimMetrics registers the per-slot metric handles; New only calls
// it with a non-nil observer.
//
//sornlint:obsguarded
func newSimMetrics(o *obs.Observer) *simMetrics {
	return &simMetrics{
		delivered: o.Counter("delivered_cells"),
		injected:  o.Counter("injected_cells"),
		sent:      o.Counter("sent_cells"),
		lost:      o.Counter("lost_cells"),
		dropped:   o.Counter("dropped_cells"),
		completed: o.Counter("completed_flows"),
		backlog:   o.Gauge("backlog_cells"),
		inflight:  o.Gauge("inflight_cells"),
		thpt:      o.Rate("throughput"),
	}
}

// statDelta returns cur−*prev and updates *prev. Experiments reset the
// shared Stats between measurement phases (e.g. Adaptation zeroes the
// struct), which would make a naive delta negative; the clamp treats the
// post-reset cumulative value as the whole delta instead.
func statDelta(cur int64, prev *int64) int64 {
	d := cur - *prev
	if d < 0 {
		d = cur
	}
	*prev = cur
	return d
}

// obsEndSlot is the per-slot observability hook, run at the end of Step
// after the merge barrier: it folds the slot's Stats deltas into the
// registry counters and observes the slot's per-node-per-plane
// throughput into the windowed rate. The point-in-time gauges (backlog
// sweep, in-flight sum) cost a loop each, so they are computed only on
// the slots where the observer snapshots a series row — the only place
// a gauge value is read. Strictly read-only with respect to simulation
// state. Step only calls it when s.om exists, which implies s.obs does.
//
//sornlint:obsguarded
func (s *Sim) obsEndSlot() {
	m := s.om
	dDelivered := statDelta(s.stats.DeliveredCells, &m.prevDelivered)
	m.delivered.Add(dDelivered)
	m.injected.Add(statDelta(s.stats.InjectedCells, &m.prevInjected))
	m.sent.Add(statDelta(s.stats.SentCells, &m.prevSent))
	m.lost.Add(statDelta(s.stats.LostCells, &m.prevLost))
	m.dropped.Add(statDelta(s.stats.DroppedCells, &m.prevDropped))
	m.completed.Add(statDelta(s.stats.CompletedFlows, &m.prevCompleted))
	m.thpt.Observe(float64(dDelivered) * m.invNP)
	if s.obs.SnapshotDue(s.slot) {
		m.backlog.Set(float64(s.Backlog()))
		inflight := int64(0)
		for _, c := range s.ringCount {
			inflight += int64(c)
		}
		m.inflight.Set(float64(inflight))
		s.obs.EndSlot(s.slot)
	}
}
