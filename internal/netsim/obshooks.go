package netsim

import "repro/internal/obs"

// simMetrics caches the metric handles the per-slot observability hook
// updates, plus the previous cumulative Stats snapshot it diffs against
// to derive per-slot deltas. It exists only when Config.Obs is set; the
// uninstrumented hot path pays a single nil check per Step.
type simMetrics struct {
	delivered *obs.Counter
	injected  *obs.Counter
	sent      *obs.Counter
	lost      *obs.Counter
	dropped   *obs.Counter
	completed *obs.Counter
	backlog   *obs.Gauge
	inflight  *obs.Gauge
	thpt      *obs.Rate

	// invNP caches 1/(n·planes) so the per-slot throughput observation
	// is one multiply instead of two divides.
	invNP float64

	prevDelivered int64
	prevInjected  int64
	prevSent      int64
	prevLost      int64
	prevDropped   int64
	prevCompleted int64
}

// newSimMetrics registers the per-slot metric handles; New only calls
// it with a non-nil observer.
//
//sornlint:obsguarded
func newSimMetrics(o *obs.Observer) *simMetrics {
	return &simMetrics{
		delivered: o.Counter("delivered_cells"),
		injected:  o.Counter("injected_cells"),
		sent:      o.Counter("sent_cells"),
		lost:      o.Counter("lost_cells"),
		dropped:   o.Counter("dropped_cells"),
		completed: o.Counter("completed_flows"),
		backlog:   o.Gauge("backlog_cells"),
		inflight:  o.Gauge("inflight_cells"),
		thpt:      o.Rate("throughput"),
	}
}

// statDelta returns cur−*prev and updates *prev. Experiments reset the
// shared Stats between measurement phases (e.g. Adaptation zeroes the
// struct), which would make a naive delta negative; the clamp treats the
// post-reset cumulative value as the whole delta instead.
func statDelta(cur int64, prev *int64) int64 {
	d := cur - *prev
	if d < 0 {
		d = cur
	}
	*prev = cur
	return d
}

// obsEndSlot is the per-slot observability hook, run at the end of Step
// after the merge barrier: it folds the slot's Stats deltas into the
// registry counters and observes the slot's per-node-per-plane
// throughput into the windowed rate. The point-in-time gauges (backlog
// sweep, in-flight sum) cost a loop each, so they are computed only on
// the slots where the observer snapshots a series row — the only place
// a gauge value is read. Strictly read-only with respect to simulation
// state. Step only calls it when s.om exists, which implies s.obs does.
//
//sornlint:obsguarded
func (s *Sim) obsEndSlot() {
	m := s.om
	dDelivered := s.flushStatDeltas()
	m.thpt.Observe(float64(dDelivered) * m.invNP)
	if s.obs.SnapshotDue(s.slot) {
		m.backlog.Set(float64(s.Backlog()))
		m.inflight.Set(float64(s.InFlight()))
		s.obs.EndSlot(s.slot)
	}
}

// flushStatDeltas folds the Stats movement since the previous flush into
// the registry counters and returns the delivered-cells delta (the
// throughput observation's input).
//
//sornlint:obsguarded
func (s *Sim) flushStatDeltas() int64 {
	m := s.om
	dDelivered := statDelta(s.stats.DeliveredCells, &m.prevDelivered)
	m.delivered.Add(dDelivered)
	m.injected.Add(statDelta(s.stats.InjectedCells, &m.prevInjected))
	m.sent.Add(statDelta(s.stats.SentCells, &m.prevSent))
	m.lost.Add(statDelta(s.stats.LostCells, &m.prevLost))
	m.dropped.Add(statDelta(s.stats.DroppedCells, &m.prevDropped))
	m.completed.Add(statDelta(s.stats.CompletedFlows, &m.prevCompleted))
	return dDelivered
}

// obsFastForward replays the per-slot observability hook for the
// quiescent slots [s.slot, target) in bulk, producing the exact metric
// state per-slot Steps would have: any Stats movement since the last
// Step (a failed-source injection counts Injected and Lost without
// queueing anything) is flushed first — its delivered delta is
// necessarily zero while nothing is queued or in flight — then every
// skipped slot contributes a zero throughput observation, and every
// snapshot-due slot in the range records a series row with zero
// backlog/in-flight gauges (true by the quiescence precondition).
//
//sornlint:obsguarded
func (s *Sim) obsFastForward(target int64) {
	m := s.om
	s.flushStatDeltas()
	t := s.slot
	for {
		due, ok := s.obs.NextSnapshot(t)
		if !ok || due >= target {
			break
		}
		m.thpt.ObserveZeros(due - t + 1)
		m.backlog.Set(0)
		m.inflight.Set(0)
		s.obs.EndSlot(due)
		t = due + 1
	}
	m.thpt.ObserveZeros(target - t)
}
