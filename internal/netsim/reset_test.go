package netsim

import (
	"fmt"
	"testing"

	"repro/internal/matching"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/schedule"
	"repro/internal/workload"
)

// sornResetConfig is the "target" configuration the bit-identity checks
// run: per-pair saturation exercises the dirty-pair worklist and
// freshPair accounting on top of the queues, ring, and samplers.
func sornResetConfig(t *testing.T, workers int) Config {
	t.Helper()
	sc, err := schedule.BuildSORN(schedule.SORNConfig{N: 32, Nc: 4, Q: 2})
	if err != nil {
		t.Fatal(err)
	}
	return Config{Schedule: sc.Schedule, Router: routing.NewSORN(sc),
		SlotNS: 100, PropNS: 300, Seed: 7, LatencySampleEvery: 8, Workers: workers}
}

func runSaturatedTarget(t *testing.T, s *Sim) {
	t.Helper()
	if _, err := s.RunSaturated(SaturationConfig{
		TM:             workload.Uniform(32),
		Size:           workload.FixedSize(2),
		PerPairBacklog: 4,
		WarmupSlots:    300,
		MeasureSlots:   900,
	}); err != nil {
		t.Fatal(err)
	}
}

// dirtySim builds a simulator under a deliberately different
// configuration (flat schedule, two planes, queue limit, observer
// attached) and drags it through everything that leaves residue: queue
// growth, failures and repairs, a purge, a mid-run reconfiguration.
// What comes back is the worst case a pooled Sim hands to Reset.
func dirtySim(t *testing.T, workers int) *Sim {
	t.Helper()
	n := 32
	sched := matching.RoundRobin(n)
	v, err := routing.NewVLB(matching.Compile(sched))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Schedule: sched, Router: v, SlotNS: 100, PropNS: 500,
		Seed: 99, LatencySampleEvery: 2, Planes: 2, QueueLimit: 64,
		Workers: workers, Obs: obs.New(obs.Options{})})
	if err != nil {
		t.Fatal(err)
	}
	s.StartMeasuring()
	gen, err := workload.NewPoissonFlows(workload.Uniform(n), workload.FixedSize(5), 0.4, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunOpenLoop(gen.Window(0, 200), 200); err != nil {
		t.Fatal(err)
	}
	s.FailNode(3) // purges node 3's queues
	s.FailLink(1, 2)
	if err := s.RunOpenLoop(gen.Window(200, 300), 300); err != nil {
		t.Fatal(err)
	}
	s.RepairNode(3)
	sc, err := schedule.BuildSORN(schedule.SORNConfig{N: n, Nc: 4, Q: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reconfigure(sc.Schedule, routing.NewSORN(sc)); err != nil {
		t.Fatal(err)
	}
	if err := s.RunOpenLoop(nil, 350); err != nil {
		t.Fatal(err)
	}
	return s
}

// compareSims asserts the pooled run reproduced the fresh run exactly:
// Stats bit-identical (counters and sample streams) plus the
// queue/flow-level invariants runScenario checks.
func compareSims(t *testing.T, fresh, pooled *Sim) {
	t.Helper()
	statsEqual(t, &fresh.stats, &pooled.stats)
	if fresh.Backlog() != pooled.Backlog() || fresh.InFlight() != pooled.InFlight() {
		t.Fatalf("backlog/inflight: %d/%d vs %d/%d",
			fresh.Backlog(), fresh.InFlight(), pooled.Backlog(), pooled.InFlight())
	}
	if fresh.FlowsCompleted() != pooled.FlowsCompleted() {
		t.Fatalf("flows completed: %d vs %d", fresh.FlowsCompleted(), pooled.FlowsCompleted())
	}
	if fresh.Slot() != pooled.Slot() {
		t.Fatalf("slot: %d vs %d", fresh.Slot(), pooled.Slot())
	}
}

// TestSimResetBitIdentity pins the Sim.Reset contract the sweep engine's
// per-worker pool relies on: a Reset simulator is indistinguishable from
// a freshly allocated one, no matter what the previous run did to it —
// including failures, repairs, purges, reconfigurations, plane-count and
// schedule changes, and an attached observer.
func TestSimResetBitIdentity(t *testing.T) {
	for _, workers := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := sornResetConfig(t, workers)

			fresh, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			runSaturatedTarget(t, fresh)

			t.Run("after-faulty-run", func(t *testing.T) {
				pooled := dirtySim(t, workers)
				if err := pooled.Reset(cfg); err != nil {
					t.Fatal(err)
				}
				runSaturatedTarget(t, pooled)
				compareSims(t, fresh, pooled)
			})

			t.Run("repeated-same-config", func(t *testing.T) {
				// The pool's hot case: same schedule pointer, new seed run,
				// then back — exercises the hasCircuit reuse path and the
				// rewound flow arena.
				pooled, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				runSaturatedTarget(t, pooled)
				other := cfg
				other.Seed = 1234
				if err := pooled.Reset(other); err != nil {
					t.Fatal(err)
				}
				runSaturatedTarget(t, pooled)
				if err := pooled.Reset(cfg); err != nil {
					t.Fatal(err)
				}
				runSaturatedTarget(t, pooled)
				compareSims(t, fresh, pooled)
			})

			t.Run("post-fault-reset-keeps-faults-out", func(t *testing.T) {
				// Fault state must not leak: fail mid-run, Reset, and the
				// target run again matches the fault-free fresh run.
				pooled, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				pooled.FailLink(0, 5)
				pooled.FailNode(9)
				runSaturatedTarget(t, pooled)
				if err := pooled.Reset(cfg); err != nil {
					t.Fatal(err)
				}
				runSaturatedTarget(t, pooled)
				compareSims(t, fresh, pooled)
			})
		})
	}
}

func TestSimResetOpenLoopAfterPlaneChange(t *testing.T) {
	// The delay ring is sized (prop+1)·n·planes; resetting across a
	// plane-count change must resize it, and the reused simulator must
	// still reproduce a fresh open-loop run sample-for-sample.
	n := 32
	sched := matching.RoundRobin(n)
	v, err := routing.NewVLB(matching.Compile(sched))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Schedule: sched, Router: v, SlotNS: 100, PropNS: 500,
		Seed: 21, LatencySampleEvery: 1, Planes: 2, Workers: 1}
	runTarget := func(s *Sim) *Stats {
		s.StartMeasuring()
		gen, err := workload.NewPoissonFlows(workload.Uniform(n), workload.FixedSize(3), 0.2, 5)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunOpenLoop(gen.Window(0, 400), 400); err != nil {
			t.Fatal(err)
		}
		return s.Stats()
	}
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runTarget(fresh)

	pooled := dirtySim(t, 1) // dirty run used Planes 2 with PropNS 500 on the same n... but a different schedule
	if err := pooled.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	runTarget(pooled)
	compareSims(t, fresh, pooled)

	// And shrink to one plane: the ring reallocates, results still match.
	one := cfg
	one.Planes = 1
	freshOne, err := New(one)
	if err != nil {
		t.Fatal(err)
	}
	runTarget(freshOne)
	if err := pooled.Reset(one); err != nil {
		t.Fatal(err)
	}
	runTarget(pooled)
	compareSims(t, freshOne, pooled)
}

func TestSimResetRejectsNodeCountChange(t *testing.T) {
	s := dirtySim(t, 1)
	small := matching.RoundRobin(16)
	v, err := routing.NewVLB(matching.Compile(small))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(Config{Schedule: small, Router: v}); err == nil {
		t.Fatal("Reset across node counts must error")
	}
}
