// Package netsim is a slot-synchronous, cell-level discrete-event
// simulator for circuit-switched reconfigurable networks. Every time slot,
// each node has one active circuit (per plane) given by the schedule; a
// node transmits at most one cell per plane per slot on that circuit, the
// cell arrives after a propagation delay, and intermediate nodes queue
// cells per next-hop in virtual output queues. This is the abstraction
// the paper's designs share (Sirius, Opera, optimal ORNs, SORN), and the
// vehicle for the Figure 2(f) simulation: 128 nodes in 8 cliques under
// pFabric-style traffic.
//
// Routing is source routing chosen per cell at injection: the router's
// "first available" load-balancing hop rotates with the injection slot,
// reproducing the per-slot spreading real designs get from transmitting
// consecutive cells on consecutive circuits (paper §4, footnote 1).
package netsim

import (
	"fmt"

	"repro/internal/matching"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/workload"
)

// maxWaypoints bounds route length (3D ORN uses 6 hops; SORN uses 3).
const maxWaypoints = 8

// Config parameterizes a simulation.
type Config struct {
	Schedule *matching.Schedule
	Router   routing.Router
	// SlotNS and PropNS set the slot duration and per-hop propagation
	// delay in nanoseconds. Propagation is rounded up to whole slots.
	SlotNS int64
	PropNS int64
	Seed   uint64
	// LatencySampleEvery records the end-to-end latency of every k-th
	// delivered cell (0 disables sampling).
	LatencySampleEvery int
	// QueueLimit caps each virtual output queue, in cells; arrivals to a
	// full queue are dropped (counted in Stats.DroppedCells). 0 means
	// unbounded — the default, since the paper's designs assume deep
	// NIC buffers.
	QueueLimit int
	// Planes is the number of parallel uplinks per node (default 1).
	// Each plane runs the same schedule phase-staggered by
	// period/Planes slots, and a node transmits up to one cell per plane
	// per slot — the paper's 16-uplink deployment, and the reason
	// Table 1 divides δm by the uplink count.
	Planes int
}

// FlowState tracks one flow through the simulator.
type FlowState struct {
	id        int
	src, dst  int
	size      int
	delivered int
	lost      int
	arrival   int64
	done      int64 // slot of last cell delivery; -1 while in flight
}

// Done reports whether every cell of the flow has been delivered.
func (f *FlowState) Done() bool { return f.done >= 0 }

// CompletionSlots returns the flow completion time in slots, or -1 while
// the flow is still in flight.
func (f *FlowState) CompletionSlots() int64 {
	if f.done < 0 {
		return -1
	}
	return f.done - f.arrival
}

// Delivered returns how many of the flow's cells have arrived.
func (f *FlowState) Delivered() int { return f.delivered }

// Lost returns how many of the flow's cells were dropped by failed links
// or nodes.
func (f *FlowState) Lost() int { return f.lost }

// Endpoints returns the flow's source and destination.
func (f *FlowState) Endpoints() (src, dst int) { return f.src, f.dst }

// cell is one port-slot of data in flight. Waypoints are the nodes after
// the source; idx points at the next one. The flow is referenced by its
// index into Sim.flows rather than by pointer, keeping the struct
// pointer-free: the n² virtual output queues then cost the garbage
// collector no scan work and their writes no barriers.
type cell struct {
	flow      int32
	waypoints [maxWaypoints]int16
	n, idx    int8
	fresh     bool // still queued at its source, never transmitted
	injected  int64
}

// fifo is a power-of-two circular buffer of cells: pushes and pops are
// single indexed writes/reads with no compaction copies, and the buffer
// reallocates only when a queue outgrows its high-water mark.
type fifo struct {
	buf        []cell
	head, tail uint32 // monotonically increasing; position is index & (len-1)
}

func (f *fifo) push(c cell) {
	if int(f.tail-f.head) == len(f.buf) {
		f.grow()
	}
	f.buf[f.tail&uint32(len(f.buf)-1)] = c
	f.tail++
}

// grow doubles the buffer, linearizing the queue to the front.
func (f *fifo) grow() {
	old := len(f.buf)
	size := old * 2
	if size == 0 {
		size = 8
	}
	buf := make([]cell, size)
	if old > 0 {
		h := f.head & uint32(old-1)
		n := copy(buf, f.buf[h:])
		copy(buf[n:], f.buf[:h])
	}
	f.buf = buf
	f.tail -= f.head
	f.head = 0
}

func (f *fifo) pop() (cell, bool) {
	if f.head == f.tail {
		return cell{}, false
	}
	c := f.buf[f.head&uint32(len(f.buf)-1)]
	f.head++
	return c, true
}

func (f *fifo) len() int { return int(f.tail - f.head) }

// arrival is a cell in flight toward a node.
type arrival struct {
	c  cell
	at int16 // destination node of this hop
}

// Stats accumulates measurement-window counters.
type Stats struct {
	DeliveredCells int64 // final-hop deliveries
	InjectedCells  int64
	SentCells      int64 // link transmissions (all hops)
	// IdleSlots counts node-plane-slots in which a live node had an
	// active circuit but no cell queued for it — whether or not other
	// cells were queued for different circuits. Self-circuit slots
	// (which a validated schedule cannot contain) would be excluded,
	// since the node could never transmit on them.
	IdleSlots int64
	LostCells      int64 // dropped by failed links/nodes
	DroppedCells   int64 // dropped by full queues (QueueLimit)
	MeasuredSlots  int64
	CompletedFlows int64
	Planes         int // parallel uplinks measured (normalizes Throughput)

	// LatencySlots samples end-to-end cell latency (injection→delivery),
	// in slots. FCTSlots samples flow completion times. LatencyByHops
	// breaks the latency samples down by path length, separating e.g.
	// SORN's 2-hop intra-clique traffic from its 3-hop inter-clique
	// traffic in a single run (index = hop count; 0 unused).
	LatencySlots  stats.Sample
	FCTSlots      stats.Sample
	LatencyByHops [maxWaypoints]stats.Sample
}

// Throughput returns delivered cells per node per slot per plane — the
// paper's r (fraction of node bandwidth) when the network is saturated.
func (s *Stats) Throughput(n int) float64 {
	if s.MeasuredSlots == 0 {
		return 0
	}
	planes := s.Planes
	if planes == 0 {
		planes = 1
	}
	return float64(s.DeliveredCells) / float64(s.MeasuredSlots) / float64(n) / float64(planes)
}

// MeanHops returns transmissions per delivered cell (the bandwidth tax).
func (s *Stats) MeanHops() float64 {
	if s.DeliveredCells == 0 {
		return 0
	}
	return float64(s.SentCells) / float64(s.DeliveredCells)
}

// Sim is a running simulation. Create with New, drive with Step/Run
// variants, read Stats.
type Sim struct {
	cfg       Config
	n         int
	sched     *matching.Schedule
	router    routing.Router
	propSlots int64
	slot      int64
	planes    int
	offsets   []int64 // per-plane phase offset into the schedule
	rng       *rng.RNG
	// latRng drives latency sampling on its own stream, so enabling or
	// tuning sampling never perturbs the traffic the workload stream
	// (rng) generates.
	latRng     *rng.RNG
	sampleProb float64

	voq       []fifo      // n*n queues, index u*n+next
	backlog   []int64     // queued cells per node (excludes in-flight)
	fresh     []int64     // never-transmitted cells queued per source
	freshPair []int64     // never-transmitted cells per (src,dst) pair
	ring      [][]arrival // delay line, indexed slot % len
	routeBuf  routing.Route

	// Deficit worklist for per-pair saturation: when trackPairs is on,
	// every (src,dst) pair whose fresh-cell count drops is pushed onto
	// dirtyPairs (deduplicated by dirtyMark) so RunSaturated tops up only
	// pairs that can actually be short, instead of scanning all n² pairs
	// every slot.
	trackPairs bool
	dirtyPairs []int32
	dirtyMark  []bool

	flows      []*FlowState
	nextFlow   int
	measuring  bool
	stats      Stats
	hasCircuit []bool // u*n+v: schedule ever circuits u→v

	failedLink []bool // u*n+v circuits that drop transmissions; nil until FailLink
	failedNode []bool
}

// New builds a simulator.
func New(cfg Config) (*Sim, error) {
	if cfg.Schedule == nil || cfg.Router == nil {
		return nil, fmt.Errorf("netsim: schedule and router are required")
	}
	if err := cfg.Schedule.Validate(); err != nil {
		return nil, err
	}
	if cfg.SlotNS <= 0 {
		cfg.SlotNS = 100
	}
	if cfg.PropNS < 0 {
		return nil, fmt.Errorf("netsim: negative propagation delay")
	}
	if cfg.Router.MaxHops()+1 > maxWaypoints {
		return nil, fmt.Errorf("netsim: router %s exceeds %d waypoints", cfg.Router.Name(), maxWaypoints)
	}
	n := cfg.Schedule.N
	if n > 1<<15 {
		return nil, fmt.Errorf("netsim: %d nodes exceed int16 node ids", n)
	}
	if cfg.Planes == 0 {
		cfg.Planes = 1
	}
	if cfg.Planes < 1 {
		return nil, fmt.Errorf("netsim: plane count %d invalid", cfg.Planes)
	}
	prop := (cfg.PropNS + cfg.SlotNS - 1) / cfg.SlotNS
	s := &Sim{
		cfg:       cfg,
		n:         n,
		sched:     cfg.Schedule,
		router:    cfg.Router,
		propSlots: prop,
		planes:    cfg.Planes,
		rng:       rng.New(cfg.Seed),
		// The xor constant just decorrelates the two seeds; splitmix64
		// inside rng.New takes care of the rest.
		latRng:     rng.New(cfg.Seed ^ 0x6c61745f73616d70),
		voq:        make([]fifo, n*n),
		backlog:    make([]int64, n),
		fresh:      make([]int64, n),
		freshPair:  make([]int64, n*n),
		ring:       make([][]arrival, prop+1),
		failedNode: make([]bool, n),
	}
	if cfg.LatencySampleEvery > 0 {
		s.sampleProb = 1 / float64(cfg.LatencySampleEvery)
	}
	s.hasCircuit = matching.CircuitSet(cfg.Schedule)
	s.stats.Planes = cfg.Planes
	s.offsets = planeOffsets(int64(cfg.Schedule.Period()), int64(cfg.Planes))
	return s, nil
}

// planeOffsets phase-staggers `planes` copies of a period-P schedule.
// When planes <= period, the offsets floor(p·P/planes) are strictly
// increasing, so every plane gets a distinct phase even when planes does
// not divide the period. With more planes than slots, distinct phases
// are impossible (pigeonhole); the remainder is round-robin-staggered so
// the per-phase plane counts differ by at most one.
func planeOffsets(period, planes int64) []int64 {
	out := make([]int64, planes)
	for p := int64(0); p < planes; p++ {
		if planes <= period {
			out[p] = p * period / planes
		} else {
			out[p] = p % period
		}
	}
	return out
}

// Slot returns the current absolute slot.
func (s *Sim) Slot() int64 { return s.slot }

// Stats returns the accumulated measurement-window statistics.
func (s *Sim) Stats() *Stats { return &s.stats }

// Backlog returns the total number of queued cells.
func (s *Sim) Backlog() int64 {
	total := int64(0)
	for _, b := range s.backlog {
		total += b
	}
	return total
}

// InFlight returns the number of cells currently propagating on links.
func (s *Sim) InFlight() int {
	total := 0
	for _, bucket := range s.ring {
		total += len(bucket)
	}
	return total
}

// Drained reports whether no cells remain queued or in flight.
func (s *Sim) Drained() bool { return s.Backlog() == 0 && s.InFlight() == 0 }

// StartMeasuring begins counting deliveries/injections (after warmup).
func (s *Sim) StartMeasuring() { s.measuring = true }

// FailLink makes the circuit u→v drop every transmission. The failure
// bitmap is allocated lazily so fault-free simulations (the common case)
// skip the per-transmission lookup entirely.
func (s *Sim) FailLink(u, v int) {
	if s.failedLink == nil {
		s.failedLink = make([]bool, s.n*s.n)
	}
	s.failedLink[u*s.n+v] = true
}

// FailNode makes node u neither transmit nor forward (deliveries to u as
// final destination still count as losses — cells vanish).
func (s *Sim) FailNode(u int) { s.failedNode[u] = true }

// InjectFlow source-routes a flow's cells and queues them at the source.
// Each cell's route is computed as if injected one slot later than the
// previous, rotating the load-balancing hop across circuits.
func (s *Sim) InjectFlow(src, dst, size int) *FlowState {
	if src == dst {
		panic("netsim: self flow")
	}
	s.nextFlow++
	f := &FlowState{id: s.nextFlow, src: src, dst: dst, size: size, arrival: s.slot, done: -1}
	s.flows = append(s.flows, f)
	fi := int32(len(s.flows) - 1)
	s.fresh[src] += int64(size)
	s.freshPair[src*s.n+dst] += int64(size)
	for i := 0; i < size; i++ {
		p := s.router.RouteInto(s.routeBuf[:0], src, dst, int(s.slot)+i, s.rng)
		s.routeBuf = p
		var c cell
		c.flow = fi
		c.fresh = true
		c.injected = s.slot
		c.n = int8(len(p) - 1)
		for h := 1; h < len(p); h++ {
			c.waypoints[h-1] = int16(p[h])
		}
		s.enqueue(src, c)
	}
	if s.measuring {
		s.stats.InjectedCells += int64(size)
	}
	return f
}

// noteFreshConsumed updates the fresh-cell accounting when a cell leaves
// its source (transmitted or dropped at injection) and, under per-pair
// saturation, pushes the pair onto the deficit worklist.
func (s *Sim) noteFreshConsumed(u, dst int) {
	s.fresh[u]--
	pair := u*s.n + dst
	s.freshPair[pair]--
	if s.trackPairs && !s.dirtyMark[pair] {
		s.dirtyMark[pair] = true
		s.dirtyPairs = append(s.dirtyPairs, int32(pair))
	}
}

// enqueue places a cell into node u's VOQ for its next waypoint,
// dropping it if the queue is at its limit.
func (s *Sim) enqueue(u int, c cell) {
	next := int(c.waypoints[c.idx])
	q := &s.voq[u*s.n+next]
	if s.cfg.QueueLimit > 0 && q.len() >= s.cfg.QueueLimit {
		f := s.flows[c.flow]
		f.lost++
		if c.fresh {
			s.noteFreshConsumed(u, f.dst)
		}
		if s.measuring {
			s.stats.DroppedCells++
		}
		return
	}
	s.voq[u*s.n+next].push(c)
	s.backlog[u]++
}

// Step advances the simulation by one slot.
func (s *Sim) Step() {
	// 1. Land cells whose propagation completes this slot.
	idx := int(s.slot % int64(len(s.ring)))
	for _, a := range s.ring[idx] {
		s.land(int(a.at), a.c)
	}
	s.ring[idx] = s.ring[idx][:0]

	// 2. Each node transmits one cell per plane on that plane's active
	// circuit. Planes run the same schedule phase-staggered.
	period := int64(s.sched.Period())
	landAt := (s.slot + s.propSlots) % int64(len(s.ring))
	n := s.n
	for p := 0; p < s.planes; p++ {
		m := s.sched.Slots[(s.slot+s.offsets[p])%period]
		for u := 0; u < n; u++ {
			if s.failedNode[u] {
				continue
			}
			v := m[u]
			q := &s.voq[u*n+v]
			c, ok := q.pop()
			if !ok {
				if s.measuring && u != v {
					s.stats.IdleSlots++
				}
				continue
			}
			s.backlog[u]--
			if c.fresh {
				s.noteFreshConsumed(u, s.flows[c.flow].dst)
				c.fresh = false
			}
			if s.failedNode[v] || (s.failedLink != nil && s.failedLink[u*n+v]) {
				s.flows[c.flow].lost++
				if s.measuring {
					s.stats.LostCells++
				}
				continue
			}
			if s.measuring {
				s.stats.SentCells++
			}
			s.ring[landAt] = append(s.ring[landAt], arrival{c: c, at: int16(v)})
		}
	}

	s.slot++
	if s.measuring {
		s.stats.MeasuredSlots++
	}
}

// land processes a cell arriving at node v.
func (s *Sim) land(v int, c cell) {
	c.idx++
	if c.idx >= c.n {
		// Final destination.
		f := s.flows[c.flow]
		f.delivered++
		if s.measuring {
			s.stats.DeliveredCells++
			// Deterministic Bernoulli sampling at rate 1/k. Counting
			// every k-th delivery phase-locks with a period-P schedule
			// whenever k and P share factors, systematically over- or
			// under-sampling some circuits; an independent coin flip per
			// delivery cannot. k == 1 skips the draw and samples all.
			if k := s.cfg.LatencySampleEvery; k > 0 && (k == 1 || s.latRng.Float64() < s.sampleProb) {
				lat := float64(s.slot - c.injected)
				s.stats.LatencySlots.Add(lat)
				s.stats.LatencyByHops[c.n].Add(lat)
			}
		}
		if f.delivered == f.size {
			f.done = s.slot
			if s.measuring {
				s.stats.CompletedFlows++
				s.stats.FCTSlots.Add(float64(s.slot - f.arrival))
			}
		}
		return
	}
	// After a reconfiguration, the cell's next circuit may no longer
	// exist; re-route it from its landing node.
	if !s.hasCircuit[v*s.n+int(c.waypoints[c.idx])] {
		s.rerouteFrom(v, c)
		return
	}
	s.enqueue(v, c)
}

// RunOpenLoop injects the given flows at their arrival slots and steps
// until `until`. Flows must be sorted by arrival and arrive at or after
// the current slot.
func (s *Sim) RunOpenLoop(flows []workload.Flow, until int64) error {
	i := 0
	for s.slot < until {
		for i < len(flows) && flows[i].Arrival <= s.slot {
			f := flows[i]
			if f.Arrival < 0 {
				return fmt.Errorf("netsim: flow %d has negative arrival", f.ID)
			}
			s.InjectFlow(f.Src, f.Dst, f.Size)
			i++
		}
		s.Step()
	}
	return nil
}

// SaturationConfig drives a closed-loop saturation run: every node keeps
// at least TargetBacklog *fresh* (not yet transmitted) cells queued, with
// destinations drawn from the traffic matrix and sizes from the size
// distribution. Relayed cells queued at intermediate hops do not count
// toward the target, so sources model infinite backlogs and the
// bottleneck links stay busy. Delivered cells per node per slot during
// the measurement window is the paper's throughput r.
type SaturationConfig struct {
	TM            *workload.Matrix
	Size          workload.SizeDist
	TargetBacklog int64
	WarmupSlots   int64
	MeasureSlots  int64

	// PerPairBacklog, when positive, switches to per-pair saturation:
	// every (src, dst) pair with positive demand keeps at least this many
	// fresh cells queued (TargetBacklog is then ignored). This measures
	// the schedule's capacity for the *matrix* — all pairs backlogged —
	// rather than for one flow at a time, and is what Figure 2(f)'s
	// worst-case throughput means. Heavy-tailed size distributions
	// overshoot the target per pair; that only deepens queues.
	PerPairBacklog int64
}

// RunSaturated executes a saturation experiment and returns the stats.
func (s *Sim) RunSaturated(sc SaturationConfig) (*Stats, error) {
	if err := sc.TM.Validate(); err != nil {
		return nil, err
	}
	if sc.TM.N != s.n {
		return nil, fmt.Errorf("netsim: matrix over %d nodes, sim over %d", sc.TM.N, s.n)
	}
	if (sc.TargetBacklog <= 0 && sc.PerPairBacklog <= 0) || sc.WarmupSlots < 0 || sc.MeasureSlots <= 0 {
		return nil, fmt.Errorf("netsim: invalid saturation config %+v", sc)
	}
	end := s.slot + sc.WarmupSlots + sc.MeasureSlots
	measureAt := s.slot + sc.WarmupSlots
	if sc.PerPairBacklog > 0 {
		return s.runSaturatedPerPair(sc, measureAt, end)
	}
	// Per-node saturation. The eligible sources are computed once up
	// front: RowSum is an O(n) scan and failures cannot change mid-run,
	// so re-checking both for every node every slot is pure overhead.
	active := make([]int, 0, s.n)
	for u := 0; u < s.n; u++ {
		if !s.failedNode[u] && sc.TM.RowSum(u) > 0 {
			active = append(active, u)
		}
	}
	for s.slot < end {
		if s.slot == measureAt {
			s.StartMeasuring()
		}
		for _, u := range active {
			for s.fresh[u] < sc.TargetBacklog {
				dst := sc.TM.SampleDest(u, s.rng)
				s.InjectFlow(u, dst, sc.Size.Sample(s.rng))
			}
		}
		s.Step()
	}
	return &s.stats, nil
}

// runSaturatedPerPair drives per-pair saturation with a deficit
// worklist: a pair is (re-)examined only when one of its fresh cells
// left the source since the last top-up — initially every eligible pair,
// afterwards whatever the transmit loop consumed. This replaces the
// O(n²)-per-slot scan over all pairs with work proportional to the
// number of cells actually transmitted.
func (s *Sim) runSaturatedPerPair(sc SaturationConfig, measureAt, end int64) (*Stats, error) {
	s.trackPairs = true
	defer func() { s.trackPairs = false }()
	if s.dirtyMark == nil {
		s.dirtyMark = make([]bool, s.n*s.n)
	}
	for u := 0; u < s.n; u++ {
		if s.failedNode[u] {
			continue
		}
		for d := 0; d < s.n; d++ {
			if sc.TM.Rates[u][d] <= 0 || s.failedNode[d] {
				continue
			}
			pair := u*s.n + d
			if !s.dirtyMark[pair] {
				s.dirtyMark[pair] = true
				s.dirtyPairs = append(s.dirtyPairs, int32(pair))
			}
		}
	}
	for s.slot < end {
		if s.slot == measureAt {
			s.StartMeasuring()
		}
		// Indexed loop: top-ups whose cells are dropped at injection
		// (QueueLimit) re-mark their pair, growing the worklist while it
		// drains — matching the retry the per-slot scan used to do.
		for i := 0; i < len(s.dirtyPairs); i++ {
			pair := int(s.dirtyPairs[i])
			s.dirtyMark[pair] = false
			u, d := pair/s.n, pair%s.n
			for s.freshPair[pair] < sc.PerPairBacklog {
				s.InjectFlow(u, d, sc.Size.Sample(s.rng))
			}
		}
		s.dirtyPairs = s.dirtyPairs[:0]
		s.Step()
	}
	return &s.stats, nil
}

// Reconfigure swaps the schedule (and router) at a slot boundary and
// re-routes every queued cell from its current node under the new
// schedule — modeling the drain/re-route work of a semi-oblivious
// topology update (§5). In-flight cells land first and are re-routed on
// landing if their next circuit no longer exists.
func (s *Sim) Reconfigure(sched *matching.Schedule, router routing.Router) error {
	if err := sched.Validate(); err != nil {
		return err
	}
	if sched.N != s.n {
		return fmt.Errorf("netsim: new schedule over %d nodes, sim over %d", sched.N, s.n)
	}
	if router.MaxHops()+1 > maxWaypoints {
		return fmt.Errorf("netsim: router %s exceeds %d waypoints", router.Name(), maxWaypoints)
	}
	s.sched = sched
	s.router = router
	s.hasCircuit = matching.CircuitSet(sched)
	s.offsets = planeOffsets(int64(sched.Period()), int64(s.planes))

	// Re-route queued cells: each keeps its flow identity but gets a
	// fresh path from its current node. In-flight cells are re-routed by
	// land() if their old next circuit disappeared.
	old := s.voq
	s.voq = make([]fifo, s.n*s.n)
	for i := range s.backlog {
		s.backlog[i] = 0
	}
	for u := 0; u < s.n; u++ {
		for v := 0; v < s.n; v++ {
			q := &old[u*s.n+v]
			for {
				c, ok := q.pop()
				if !ok {
					break
				}
				s.rerouteFrom(u, c)
			}
		}
	}
	return nil
}

// rerouteFrom recomputes a cell's remaining path from node u.
func (s *Sim) rerouteFrom(u int, c cell) {
	dst := s.flows[c.flow].dst
	if u == dst {
		// Shouldn't happen (cells at their destination are delivered on
		// landing), but guard anyway.
		s.land(u, cell{flow: c.flow, n: 1, idx: 1, injected: c.injected})
		return
	}
	p := s.router.RouteInto(s.routeBuf[:0], u, dst, int(s.slot), s.rng)
	s.routeBuf = p
	c.n = int8(len(p) - 1)
	c.idx = 0
	for h := 1; h < len(p); h++ {
		c.waypoints[h-1] = int16(p[h])
	}
	s.enqueue(u, c)
}

// FlowsCompleted returns how many injected flows have finished.
func (s *Sim) FlowsCompleted() int {
	done := 0
	for _, f := range s.flows {
		if f.done >= 0 {
			done++
		}
	}
	return done
}

// AffectedPairs returns the fraction of distinct (src, dst) pairs with
// injected traffic that lost at least one cell — the packet-level blast
// radius of the injected failures.
func (s *Sim) AffectedPairs() float64 {
	type pair struct{ s, d int }
	seen := map[pair]bool{}
	hit := map[pair]bool{}
	for _, f := range s.flows {
		p := pair{f.src, f.dst}
		seen[p] = true
		if f.lost > 0 {
			hit[p] = true
		}
	}
	if len(seen) == 0 {
		return 0
	}
	return float64(len(hit)) / float64(len(seen))
}

// ReconfigureGraceful performs the §5 update protocol: identify the
// circuits the new schedule removes, keep running until the queues on
// those circuits drain (or maxDrainSlots elapse), then swap. It returns
// the number of slots spent draining and the number of cells that had to
// be force-re-routed because the drain window expired. A SORN q
// rebalance (fixed neighbor superset) drains in zero slots.
func (s *Sim) ReconfigureGraceful(sched *matching.Schedule, router routing.Router, maxDrainSlots int64) (drainSlots, rerouted int64, err error) {
	if err := sched.Validate(); err != nil {
		return 0, 0, err
	}
	if sched.N != s.n {
		return 0, 0, fmt.Errorf("netsim: new schedule over %d nodes, sim over %d", sched.N, s.n)
	}
	newHas := matching.CircuitSet(sched)
	removedBacklog := func() int64 {
		total := int64(0)
		for u := 0; u < s.n; u++ {
			for v := 0; v < s.n; v++ {
				if s.hasCircuit[u*s.n+v] && !newHas[u*s.n+v] {
					total += int64(s.voq[u*s.n+v].len())
				}
			}
		}
		return total
	}
	for drainSlots = 0; drainSlots < maxDrainSlots; drainSlots++ {
		if removedBacklog() == 0 {
			break
		}
		s.Step()
	}
	stranded := removedBacklog()
	if err := s.Reconfigure(sched, router); err != nil {
		return drainSlots, 0, err
	}
	return drainSlots, stranded, nil
}
