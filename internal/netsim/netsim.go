// Package netsim is a slot-synchronous, cell-level discrete-event
// simulator for circuit-switched reconfigurable networks. Every time slot,
// each node has one active circuit (per plane) given by the schedule; a
// node transmits at most one cell per plane per slot on that circuit, the
// cell arrives after a propagation delay, and intermediate nodes queue
// cells per next-hop in virtual output queues. This is the abstraction
// the paper's designs share (Sirius, Opera, optimal ORNs, SORN), and the
// vehicle for the Figure 2(f) simulation: 128 nodes in 8 cliques under
// pFabric-style traffic.
//
// Routing is source routing chosen per cell at injection: the router's
// "first available" load-balancing hop rotates with the injection slot,
// reproducing the per-slot spreading real designs get from transmitting
// consecutive cells on consecutive circuits (paper §4, footnote 1).
//
// # Parallel execution
//
// Step is internally sharded across Config.Workers goroutines while
// staying bit-for-bit deterministic: the transmit phase shards by source
// node (each shard pops only its own VOQs), the landing phase shards by
// destination node (each shard pushes only its own VOQs), and everything
// either phase mutates is indexed by a node exactly one shard owns, or is
// staged per shard and merged in fixed shard order at the slot barrier.
// Because shards are contiguous, ordered node ranges and each phase walks
// its nodes in increasing order, the per-location mutation sequence is
// independent of the worker count: Workers: k produces Stats identical to
// Workers: 1. Latency sampling and landing-time reroutes draw from
// per-node rng streams split serially at construction, so their draw
// sequences depend only on each node's own event order.
package netsim

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"

	"repro/internal/matching"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/workload"
)

// maxWaypoints bounds route length (3D ORN uses 6 hops; SORN uses 3).
const maxWaypoints = 8

// flowBlockBits sizes the flow arena blocks (1024 flows, ~40 KiB each):
// flows are reachable by index without a per-flow allocation, stay
// pointer-stable as the arena grows, and consecutive flows share cache
// lines (the hot delivered/size pair is touched on every delivery).
const flowBlockBits = 10

// Config parameterizes a simulation.
type Config struct {
	Schedule *matching.Schedule
	Router   routing.Router
	// SlotNS and PropNS set the slot duration and per-hop propagation
	// delay in nanoseconds. Propagation is rounded up to whole slots.
	SlotNS int64
	PropNS int64
	Seed   uint64
	// LatencySampleEvery records the end-to-end latency of every k-th
	// delivered cell (0 disables sampling).
	LatencySampleEvery int
	// QueueLimit caps each virtual output queue, in cells; arrivals to a
	// full queue are dropped (counted in Stats.DroppedCells). 0 means
	// unbounded — the default, since the paper's designs assume deep
	// NIC buffers.
	QueueLimit int
	// Planes is the number of parallel uplinks per node (default 1).
	// Each plane runs the same schedule phase-staggered by
	// period/Planes slots, and a node transmits up to one cell per plane
	// per slot — the paper's 16-uplink deployment, and the reason
	// Table 1 divides δm by the uplink count.
	Planes int
	// Workers shards Step across this many goroutines. 0 picks
	// GOMAXPROCS (capped at the node count), 1 runs serially. Every
	// value yields bit-identical Stats — see the package comment — so
	// the choice is purely a wall-clock knob.
	Workers int
	// Obs, when non-nil, attaches the observability layer: per-slot
	// metric updates, phase wall-clock timing, and an event trace (flow
	// start/finish, failures, reconfigurations). nil — the default —
	// costs the hot path one predictable branch per slot phase, and an
	// enabled observer never perturbs Stats (see TestObsNonPerturbation).
	Obs *obs.Observer
	// Dense selects the dense reference engine: transmit scans every
	// (source, plane) slot and landing scans every (destination, plane)
	// ring entry each slot, and quiescence fast-forward is disabled. The
	// default active-set engine iterates only occupied entries and is
	// bit-identical to the dense scan (the equivalence is pinned by
	// TestDenseActiveEquivalence* and gated in ci.sh); the dense engine
	// is kept as that oracle and as the A/B baseline behind the CLIs'
	// -dense flag.
	Dense bool
}

// FlowState tracks one flow through the simulator.
type FlowState struct {
	id        int32
	src, dst  int32
	size      int32
	delivered int32
	lost      int32
	arrival   int64
	done      int64 // slot of last cell delivery; -1 while in flight
}

// Done reports whether every cell of the flow has been delivered.
func (f *FlowState) Done() bool { return f.done >= 0 }

// CompletionSlots returns the flow completion time in slots, or -1 while
// the flow is still in flight.
func (f *FlowState) CompletionSlots() int64 {
	if f.done < 0 {
		return -1
	}
	return f.done - f.arrival
}

// Delivered returns how many of the flow's cells have arrived.
func (f *FlowState) Delivered() int { return int(f.delivered) }

// Lost returns how many of the flow's cells were dropped by failed links
// or nodes.
func (f *FlowState) Lost() int { return int(f.lost) }

// Endpoints returns the flow's source and destination.
func (f *FlowState) Endpoints() (src, dst int) { return int(f.src), int(f.dst) }

// cell is one port-slot of data in flight. Waypoints are the nodes after
// the source; idx points at the next one. The flow is referenced by its
// index into the flow arena rather than by pointer, keeping the struct
// pointer-free: the n² virtual output queues then cost the garbage
// collector no scan work and their writes no barriers. The injection
// slot is not stored per cell — every cell of a flow is injected at the
// flow's arrival slot, so latency accounting reads FlowState.arrival —
// which keeps the struct at 24 bytes, and every queue push, ring write,
// and pop copy 25% cheaper than a 32-byte layout.
type cell struct {
	flow      int32
	waypoints [maxWaypoints]int16
	n, idx    int8
	fresh     bool // still queued at its source, never transmitted
}

// dst returns the cell's final destination (the last waypoint), saving
// the flow-arena lookup on hot paths that only need the destination.
func (c *cell) dst() int { return int(c.waypoints[c.n-1]) }

// fifo is a power-of-two circular buffer of cells: pushes and pops are
// single indexed writes/reads with no compaction copies, and the buffer
// reallocates only when a queue outgrows its high-water mark. Staged:
// each VOQ belongs to exactly one shard's node range (pops by source
// ownership, pushes by destination ownership), so phase-time mutation
// is race-free by partition.
//
//sornlint:staged
type fifo struct {
	buf        []cell
	head, tail uint32 // monotonically increasing; position is index & (len-1)
}

// push appends a cell. The full-buffer case is split into pushSlow so
// push itself stays within the inlining budget of its hot callers.
//
//sornlint:hotpath
func (f *fifo) push(c *cell) {
	if int(f.tail-f.head) == len(f.buf) {
		f.pushSlow(c)
		return
	}
	f.buf[f.tail&uint32(len(f.buf)-1)] = *c
	f.tail++
}

// pushSlow is the deliberate grow-and-copy slow path, taken O(log n)
// times per queue as it ramps to its high-water mark.
//
//sornlint:coldpath
func (f *fifo) pushSlow(c *cell) {
	f.grow()
	f.buf[f.tail&uint32(len(f.buf)-1)] = *c
	f.tail++
}

// grow resizes the buffer, linearizing the queue to the front. Small
// buffers quadruple rather than double: queues ramp to their high-water
// mark in half the reallocation+copy churn during warmup, for at most
// 2× transient overshoot.
func (f *fifo) grow() {
	old := len(f.buf)
	size := old * 2
	if old < 1024 {
		size = old * 4
	}
	if size == 0 {
		size = 8
	}
	buf := make([]cell, size)
	if old > 0 {
		h := f.head & uint32(old-1)
		n := copy(buf, f.buf[h:])
		copy(buf[n:], f.buf[:h])
	}
	f.buf = buf
	f.tail -= f.head
	f.head = 0
}

// pop removes the head cell, returning a pointer into the buffer. The
// pointee stays valid until the next push to this queue, which in a
// phase-sharded Step cannot happen before the caller is done with it
// (pops happen in the transmit phase, pushes in landing/injection).
//
//sornlint:hotpath
func (f *fifo) pop() (*cell, bool) {
	if f.head == f.tail {
		return nil, false
	}
	c := &f.buf[f.head&uint32(len(f.buf)-1)]
	f.head++
	return c, true
}

func (f *fifo) len() int { return int(f.tail - f.head) }

// Stats accumulates measurement-window counters.
//
// Worker shards stage deltas into private Stats values that mergeFrom
// folds into the shared one at the slot barrier — a new counter or
// sample field must be added there too.
type Stats struct {
	DeliveredCells int64 // final-hop deliveries
	InjectedCells  int64
	SentCells      int64 // link transmissions (all hops)
	// IdleSlots counts node-plane-slots in which a live node had an
	// active circuit but no cell queued for it — whether or not other
	// cells were queued for different circuits. Self-circuit slots
	// (which a validated schedule cannot contain) would be excluded,
	// since the node could never transmit on them.
	IdleSlots      int64
	LostCells      int64 // dropped by failed links/nodes
	DroppedCells   int64 // dropped by full queues (QueueLimit)
	MeasuredSlots  int64
	CompletedFlows int64
	Planes         int // parallel uplinks measured (normalizes Throughput)

	// LatencySlots samples end-to-end cell latency (injection→delivery),
	// in slots. FCTSlots samples flow completion times. LatencyByHops
	// breaks the latency samples down by path length, separating e.g.
	// SORN's 2-hop intra-clique traffic from its 3-hop inter-clique
	// traffic in a single run (index = hop count; 0 unused).
	LatencySlots  stats.Sample
	FCTSlots      stats.Sample
	LatencyByHops [maxWaypoints]stats.Sample
}

// mergeFrom folds a shard's staged deltas into s and resets them. Sample
// observations are appended in call order, so merging shards in fixed
// shard order keeps the sample streams deterministic.
func (s *Stats) mergeFrom(d *Stats) {
	s.DeliveredCells += d.DeliveredCells
	s.InjectedCells += d.InjectedCells
	s.SentCells += d.SentCells
	s.IdleSlots += d.IdleSlots
	s.LostCells += d.LostCells
	s.DroppedCells += d.DroppedCells
	s.MeasuredSlots += d.MeasuredSlots
	s.CompletedFlows += d.CompletedFlows
	*d = Stats{Planes: d.Planes,
		LatencySlots: d.LatencySlots, FCTSlots: d.FCTSlots, LatencyByHops: d.LatencyByHops}
	d.LatencySlots.DrainTo(&s.LatencySlots)
	d.FCTSlots.DrainTo(&s.FCTSlots)
	for i := range d.LatencyByHops {
		d.LatencyByHops[i].DrainTo(&s.LatencyByHops[i])
	}
}

// Throughput returns delivered cells per node per slot per plane — the
// paper's r (fraction of node bandwidth) when the network is saturated.
func (s *Stats) Throughput(n int) float64 {
	if s.MeasuredSlots == 0 {
		return 0
	}
	planes := s.Planes
	if planes == 0 {
		planes = 1
	}
	return float64(s.DeliveredCells) / float64(s.MeasuredSlots) / float64(n) / float64(planes)
}

// MeanHops returns transmissions per delivered cell (the bandwidth tax).
func (s *Stats) MeanHops() float64 {
	if s.DeliveredCells == 0 {
		return 0
	}
	return float64(s.SentCells) / float64(s.DeliveredCells)
}

// flowLoss stages a lost-cell increment against a flow. Cells of one
// flow can be dropped at relay nodes owned by different shards in the
// same slot, so shards record losses privately and the barrier applies
// them serially.
type flowLoss struct {
	flow  int32
	cells int32
}

// shard is one worker's slice of the simulation plus its private
// staging state. Shards own the contiguous node range [lo, hi): in the
// transmit phase they pop only VOQs of their own sources, in the landing
// phase they push only VOQs of their own destinations. Everything else
// they touch is staged here and merged in shard order at the barrier.
//
//sornlint:staged
type shard struct {
	lo, hi   int
	idx      int           // position in Sim.shards (identifies the shard to phase bodies)
	routeBuf routing.Route // scratch for landing-time reroutes
	stats    Stats         // staged counter/sample deltas
	losses   []flowLoss    // staged FlowState.lost increments
	dirty    []int32       // staged per-pair saturation worklist entries
	landed   int32         // cells this shard wrote into the delay line this slot
	dBacklog int64         // staged Sim.totalBacklog delta
	// landedIdx stages the delay-line indices this shard wrote this
	// slot (active engine only); stageArrivals drains it at the merge
	// barrier into the landing shards' arrival lists.
	landedIdx []int32
	events    []obs.Event // staged trace events, drained in shard order
}

// circuitSet records which directed circuits a schedule ever opens —
// the landing phase's "does this cell's next circuit still exist" check
// after a reconfiguration. Small simulations keep the O(1) n² bitmap;
// past denseCircuitMax nodes that bitmap alone would rival the rest of
// the simulator's footprint, so only the per-source sorted neighbor
// lists are kept and lookups binary-search them (schedules are sparse:
// a node's circuit degree is the period × planes at most, typically
// tens). The neighbor lists always exist — ReconfigureGraceful walks
// them to find removed circuits in O(n·degree) instead of O(n²).
type circuitSet struct {
	n     int
	nbr   [][]int16 // per-source sorted distinct circuit partners
	dense []bool    // u*n+v bitmap; nil when n > denseCircuitMax
}

// denseCircuitMax bounds the n² circuit bitmap (1024 nodes = 1 MiB);
// larger simulations fall back to binary-searched neighbor lists.
const denseCircuitMax = 1024

func newCircuitSet(sched *matching.Schedule) *circuitSet {
	n := sched.N
	cs := &circuitSet{n: n, nbr: make([][]int16, n)}
	if n <= denseCircuitMax {
		cs.dense = make([]bool, n*n)
		for _, row := range sched.Slots {
			for u, v := range row {
				cs.dense[u*n+v] = true
			}
		}
		for u := 0; u < n; u++ {
			rowd := cs.dense[u*n : u*n+n]
			deg := 0
			for _, b := range rowd {
				if b {
					deg++
				}
			}
			lst := make([]int16, 0, deg)
			for v, b := range rowd {
				if b {
					lst = append(lst, int16(v))
				}
			}
			cs.nbr[u] = lst
		}
		return cs
	}
	for _, row := range sched.Slots {
		for u, v := range row {
			cs.nbr[u] = append(cs.nbr[u], int16(v))
		}
	}
	for u := range cs.nbr {
		slices.Sort(cs.nbr[u])
		cs.nbr[u] = slices.Compact(cs.nbr[u])
	}
	return cs
}

// has reports whether the schedule ever circuits u→v. The bitmap branch
// is the landing hot path; the sparse lookup is split out so has stays
// within its callers' inlining budget.
//
//sornlint:hotpath
func (cs *circuitSet) has(u, v int) bool {
	if cs.dense != nil {
		return cs.dense[u*cs.n+v]
	}
	return cs.hasSparse(u, v)
}

func (cs *circuitSet) hasSparse(u, v int) bool {
	_, ok := slices.BinarySearch(cs.nbr[u], int16(v))
	return ok
}

// Sim is a running simulation. Create with New, drive with Step/Run
// variants, read Stats.
type Sim struct {
	cfg       Config
	n         int
	sched     *matching.Schedule
	router    routing.Router
	propSlots int64
	slot      int64
	planes    int
	offsets   []int64 // per-plane phase offset into the schedule
	rng       *rng.RNG
	// latRngs[v] drives latency sampling of deliveries at node v on its
	// own stream: enabling or tuning sampling never perturbs the
	// workload stream (rng), and each node's draw sequence depends only
	// on its own delivery order, keeping sampling identical across
	// worker counts.
	latRngs    []rng.RNG
	sampleProb float64
	// nodeRngs[u] feeds landing-time reroutes at node u (routers like
	// the ORN spray draw a random intermediate), again so the draw
	// sequence is per-node and therefore worker-count invariant.
	nodeRngs []rng.RNG

	// voq, backlog, fresh, and freshPair are indexed per node (or per
	// pair): a shard touches only entries of nodes it owns, so phase-time
	// writes are race-free by partition — staged in the
	// one-writer-per-entry sense, not via a merge buffer.
	//
	// VOQ rows are allocated lazily, the first time a cell queues at the
	// row's node, so memory scales with the nodes that actually carry
	// traffic instead of always paying n² queue headers (at 2048 nodes
	// the flat layout cost ~100 MiB before a single cell moved). A nil
	// row means "all of u's queues are empty". Rows are only created by
	// u's owning shard (landing pushes by destination ownership) or from
	// serial contexts, so the lazy write is race-free by the same
	// partition argument as the queues themselves.
	voq     [][]fifo //sornlint:staged -- rows indexed [u][next], nil row = empty; one writer per row (u's owning shard), see above
	backlog []int64  //sornlint:staged
	fresh   []int64  //sornlint:staged

	// totalBacklog tracks the queued-cell total incrementally — staged
	// through shard.dBacklog during parallel phases — so Backlog() is
	// O(1). The quiescence fast-forward consults it every open-loop slot.
	totalBacklog int64

	// freshPair counts never-transmitted cells per (src,dst) pair. Only
	// per-pair saturation reads it, so it is allocated lazily by the
	// first per-pair run, maintained only while trackPairs is set (a
	// random write into an n²-sized array per consumed cell is pure
	// overhead otherwise), and rebuilt from the queued cells when a
	// per-pair run starts.
	freshPair []int64 //sornlint:staged

	// The delay line is direct-mapped: within a slot each plane's
	// circuits form a matching, so destination v receives at most one
	// cell per plane per slot and slot (s%ringSlots, v, p) has exactly
	// one possible writer. Transmit shards therefore write arrivals
	// race-free with no staging buffers, and the landing phase walks
	// its destinations in node order — the canonical order that makes
	// results independent of the worker count.
	ringSlots int
	ringCells []cell //sornlint:staged -- one possible writer per entry, see above
	ringOcc   []bool //sornlint:staged -- one possible writer per entry, see above
	// ringCount[slot%ringSlots] is the number of occupied entries in
	// that ring slot, so a slot with nothing arriving skips the
	// n×planes occupancy scan — most steps of a draining or lightly
	// loaded run. Written only between phase barriers (or by the
	// single serial writer), read by the landing phase. Maintained by
	// both engines; InFlight() sums it in O(ringSlots).
	ringCount []int32

	// Active-set engine state (Config.Dense false). activeSrc[i] is
	// shard i's unordered list of sources with queued cells; srcPos
	// gives each node's position in its shard's list (-1 when absent)
	// for O(1) swap-removal, and shardOf maps a node to its owning
	// shard. liveShard[i] counts shard i's non-failed nodes and
	// failedCount the failed total, keeping idle-slot accounting and the
	// quiescence fast-forward O(1). A shard only appends nodes it owns
	// (landing-phase activations) and transmit only removes its own
	// drained sources, so the lists are race-free by partition.
	activeSrc [][]int32 //sornlint:staged
	srcPos    []int32   //sornlint:staged
	shardOf   []int32
	liveShard []int64

	failedCount int

	// arrivals[r*Workers + i] stages the delay-line indices shard i must
	// land when ring slot r comes due: filled at transmit time (staged
	// per transmit shard, routed to landing shards at the merge barrier
	// by stageArrivals) and consumed in ascending index order — which is
	// exactly the dense scan's (node, plane) landing order, so the two
	// engines stay bit-identical. landScan[r] switches ring slot r to
	// the dense occupancy scan when at least landScanThreshold cells
	// landed there, so saturated slots pay the flat scan instead of
	// sort+list overhead on top of a mostly-full ring row.
	arrivals          [][]int32 //sornlint:staged
	landScan          []bool
	landScanThreshold int32
	// stageSkip predicts, before transmit runs, that this slot's ring
	// row will cross landScanThreshold and fall back to the dense
	// occupancy scan anyway: the active-source count times planes bounds
	// the cells that can transmit this slot, and that count is fixed at
	// the land/transmit barrier. When set, transmit shards skip staging
	// arrival indices entirely — saturated slots otherwise pay one
	// append per cell just to have stageArrivals discard the lists. The
	// predicate depends only on the active-source set (backlog > 0),
	// which is identical across worker counts, so the skip decision is
	// sharding-invariant. Written serially in Step, read-only in the
	// transmit phase.
	stageSkip bool
	dense     bool

	routeBuf routing.Route

	// Deficit worklist for per-pair saturation: when trackPairs is on,
	// every (src,dst) pair whose fresh-cell count drops is pushed onto
	// dirtyPairs (deduplicated by dirtyMark) so RunSaturated tops up only
	// pairs that can actually be short, instead of scanning all n² pairs
	// every slot.
	trackPairs bool
	dirtyPairs []int32
	dirtyMark  []bool //sornlint:staged -- per-pair entries, owned by the consuming node's shard

	// flows is a chunked arena of 1<<flowBlockBits FlowStates per block:
	// index-addressable, pointer-stable, allocation-free per flow.
	flows    [][]FlowState
	numFlows int
	nextFlow int32

	shards    []shard
	matchRows [][]int // per-plane matching of the current slot

	measuring bool
	stats     Stats
	circuits  *circuitSet // which u→v circuits the schedule ever opens

	// failedLink rows are lazily allocated like VOQ rows: a nil outer
	// slice until the first FailLink (the fault-free fast path keeps a
	// single nil check per transmit shard), then nil rows for sources
	// with no failed outgoing links.
	failedLink [][]bool
	failedNode []bool

	// stepping guards the failure-injection contract: FailLink/FailNode
	// mutate state the transmit shards read without synchronization, so
	// they must be called between Steps, never during one.
	stepping bool

	// obs is the optional observability layer; om caches the metric
	// handles the per-slot hook updates. Both nil when uninstrumented.
	// traceFlows caches obs.TraceFlows(): flow lifecycle events fire on
	// every injection and completion, so the check must be one flag
	// read, not an option lookup.
	obs        *obs.Observer
	om         *simMetrics
	traceFlows bool //sornlint:obsguard
}

// New builds a simulator.
func New(cfg Config) (*Sim, error) {
	s := &Sim{}
	if err := s.init(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset rewinds s to exactly the state New(cfg) would produce while
// reusing every allocation whose size still fits — the grown VOQ
// buffers, the flow arena, the delay ring, the per-node rng stream
// slices. A per-worker pool (core.SimPool) resets one warm Sim per
// sweep point instead of reallocating ~n² queues each time; the
// fresh-vs-reset bit-identity contract is pinned by
// TestSimResetBitIdentity. The new schedule must keep the node count;
// a different N needs a new Sim (every reusable buffer is sized by n).
func (s *Sim) Reset(cfg Config) error {
	if s.stepping {
		panic("netsim: Reset called during Step")
	}
	if cfg.Schedule != nil && cfg.Schedule.N != s.n {
		return fmt.Errorf("netsim: Reset to %d nodes on a %d-node sim; allocate a new Sim", cfg.Schedule.N, s.n)
	}
	return s.init(cfg)
}

// init validates cfg and brings every field of s to its start-of-run
// state. On a fresh Sim it allocates; on a Reset it reuses what fits.
// Either way the resulting observable state is identical — reused
// buffers are rewound (fifo head/tail, flow-arena cursor) or cleared,
// and buffers whose stale contents are unreachable (fifo cells beyond
// the queue, ring cells with a false occupancy bit, arena slots past
// numFlows) are deliberately left dirty.
func (s *Sim) init(cfg Config) error {
	if cfg.Schedule == nil || cfg.Router == nil {
		return fmt.Errorf("netsim: schedule and router are required")
	}
	if err := cfg.Schedule.Validate(); err != nil {
		return err
	}
	if cfg.SlotNS <= 0 {
		cfg.SlotNS = 100
	}
	if cfg.PropNS < 0 {
		return fmt.Errorf("netsim: negative propagation delay")
	}
	if cfg.Router.MaxHops()+1 > maxWaypoints {
		return fmt.Errorf("netsim: router %s exceeds %d waypoints", cfg.Router.Name(), maxWaypoints)
	}
	n := cfg.Schedule.N
	if n > 1<<15 {
		return fmt.Errorf("netsim: %d nodes exceed int16 node ids", n)
	}
	if cfg.Planes == 0 {
		cfg.Planes = 1
	}
	if cfg.Planes < 1 {
		return fmt.Errorf("netsim: plane count %d invalid", cfg.Planes)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("netsim: worker count %d invalid", cfg.Workers)
	}
	if cfg.Workers == 0 {
		// Bit-identical for every worker count (see package comment),
		// so defaulting to the host's parallelism is purely a speed
		// choice, not a reproducibility one.
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > n {
		cfg.Workers = n
	}
	prop := (cfg.PropNS + cfg.SlotNS - 1) / cfg.SlotNS

	reuse := s.n == n
	// The circuit set depends only on the schedule; a pooled sweep
	// resetting to the same cached schedule skips the recomputation.
	sameSched := reuse && s.sched == cfg.Schedule && s.circuits != nil

	s.cfg = cfg
	s.n = n
	s.sched = cfg.Schedule
	s.router = cfg.Router
	s.propSlots = prop
	s.slot = 0
	s.planes = cfg.Planes
	s.rng = rng.New(cfg.Seed)

	if reuse {
		// Rewind allocated VOQ rows in place (a nil row is already the
		// empty state a fresh Sim would present).
		for _, row := range s.voq {
			for i := range row {
				row[i].head, row[i].tail = 0, 0
			}
		}
		clear(s.backlog)
		clear(s.fresh)
		clear(s.freshPair)
		clear(s.failedNode)
	} else {
		s.voq = newVOQ(n)
		s.backlog = make([]int64, n)
		s.fresh = make([]int64, n)
		s.freshPair = nil // allocated lazily by the first per-pair saturation run
		s.failedNode = make([]bool, n)
		s.latRngs = make([]rng.RNG, n)
		s.nodeRngs = make([]rng.RNG, n)
		s.flows = nil
	}
	s.totalBacklog = 0
	s.failedCount = 0
	s.dense = cfg.Dense
	// The xor constants just decorrelate the stream roots from the
	// workload seed; splitmix64 inside rng.New takes care of the rest.
	// Each root is split serially into one stream per node.
	rng.New(cfg.Seed ^ 0x6c61745f73616d70).SplitNInto(s.latRngs)
	rng.New(cfg.Seed ^ 0x7265726f75746573).SplitNInto(s.nodeRngs)
	s.sampleProb = 0
	if cfg.LatencySampleEvery > 0 {
		s.sampleProb = 1 / float64(cfg.LatencySampleEvery)
	}

	rs := int(prop) + 1
	if int64(rs)*int64(n)*int64(cfg.Planes) > math.MaxInt32 {
		// The active engine stages delay-line indices as int32s; a ring
		// this large would need ~50 GiB of cells anyway.
		return fmt.Errorf("netsim: delay ring of %d slots × %d nodes × %d planes exceeds int32 indexing", rs, n, cfg.Planes)
	}
	if reuse && len(s.ringCells) == rs*n*cfg.Planes {
		s.ringSlots = rs
		clear(s.ringOcc)
		clear(s.ringCount)
	} else {
		s.ringSlots = rs
		s.ringCells = make([]cell, rs*n*cfg.Planes)
		s.ringOcc = make([]bool, rs*n*cfg.Planes)
		s.ringCount = make([]int32, rs)
	}
	if len(s.matchRows) != cfg.Planes {
		s.matchRows = make([][]int, cfg.Planes)
	} else {
		clear(s.matchRows)
	}

	// Failure state returns to the fresh-Sim default: failedLink back to
	// nil restores the fault-free transmit fast path a pooled sim would
	// otherwise lose forever after one faulty run.
	s.failedLink = nil

	if !sameSched {
		s.circuits = newCircuitSet(cfg.Schedule)
	}
	s.stats = Stats{Planes: cfg.Planes}
	s.measuring = false
	s.offsets = planeOffsets(int64(cfg.Schedule.Period()), int64(cfg.Planes))

	s.trackPairs = false
	s.dirtyPairs = s.dirtyPairs[:0]
	if len(s.dirtyMark) == n*n {
		clear(s.dirtyMark)
	} else {
		s.dirtyMark = nil
	}

	// Rewind the flow arena: existing blocks are reused (newFlow fills
	// them before growing) and InjectFlow overwrites every field of a
	// recycled FlowState.
	s.numFlows = 0
	s.nextFlow = 0

	if len(s.shards) != cfg.Workers {
		s.shards = make([]shard, cfg.Workers)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.idx = i
		sh.lo = i * n / cfg.Workers
		sh.hi = (i + 1) * n / cfg.Workers
		sh.landed = 0
		sh.dBacklog = 0
		sh.landedIdx = sh.landedIdx[:0]
		sh.losses = sh.losses[:0]
		sh.dirty = sh.dirty[:0]
		sh.events = sh.events[:0]
		// Staged stats are drained at every slot barrier, so between
		// runs only the sample buffers' capacity remains; zero the
		// counters the same way mergeFrom does, keeping that capacity.
		sh.stats = Stats{Planes: sh.stats.Planes,
			LatencySlots: sh.stats.LatencySlots, FCTSlots: sh.stats.FCTSlots, LatencyByHops: sh.stats.LatencyByHops}
	}

	// Active-set state: no source active, per-shard live counts full,
	// all arrival staging empty. Allocated even for a dense run — a
	// Reset may switch engines — but sized by (n, Workers, ring)
	// geometry, which is tiny next to the queues.
	if len(s.shardOf) != n {
		s.shardOf = make([]int32, n)
		s.srcPos = make([]int32, n)
	}
	for i := range s.srcPos {
		s.srcPos[i] = -1
	}
	if len(s.activeSrc) != cfg.Workers {
		s.activeSrc = make([][]int32, cfg.Workers)
		s.liveShard = make([]int64, cfg.Workers)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		s.activeSrc[i] = s.activeSrc[i][:0]
		s.liveShard[i] = int64(sh.hi - sh.lo)
		for u := sh.lo; u < sh.hi; u++ {
			s.shardOf[u] = int32(i)
		}
	}
	if len(s.arrivals) != rs*cfg.Workers {
		s.arrivals = make([][]int32, rs*cfg.Workers)
	} else {
		for i := range s.arrivals {
			s.arrivals[i] = s.arrivals[i][:0]
		}
	}
	if len(s.landScan) != rs {
		s.landScan = make([]bool, rs)
	} else {
		clear(s.landScan)
	}
	s.landScanThreshold = int32(n * cfg.Planes / 4)
	if s.landScanThreshold < 8 {
		s.landScanThreshold = 8
	}

	s.obs, s.om, s.traceFlows = nil, nil, false
	if cfg.Obs != nil {
		s.obs = cfg.Obs
		s.obs.EnsureShards(cfg.Workers)
		s.om = newSimMetrics(cfg.Obs)
		s.om.invNP = 1 / float64(s.n*s.planes)
		s.traceFlows = cfg.Obs.TraceFlows()
	}
	return nil
}

// planeOffsets phase-staggers `planes` copies of a period-P schedule.
// When planes <= period, the offsets floor(p·P/planes) are strictly
// increasing, so every plane gets a distinct phase even when planes does
// not divide the period. With more planes than slots, distinct phases
// are impossible (pigeonhole); the remainder is round-robin-staggered so
// the per-phase plane counts differ by at most one.
func planeOffsets(period, planes int64) []int64 {
	out := make([]int64, planes)
	for p := int64(0); p < planes; p++ {
		if planes <= period {
			out[p] = p * period / planes
		} else {
			out[p] = p % period
		}
	}
	return out
}

// Slot returns the current absolute slot.
func (s *Sim) Slot() int64 { return s.slot }

// N returns the node count the simulator was built for — the one
// dimension Reset cannot change, so pools key reuse on it.
func (s *Sim) N() int { return s.n }

// Workers returns the resolved worker count Step shards across.
func (s *Sim) Workers() int { return len(s.shards) }

// Stats returns the accumulated measurement-window statistics.
func (s *Sim) Stats() *Stats { return &s.stats }

// flow returns the arena slot of flow index i. The pointer is stable:
// arena blocks are never moved or reallocated.
func (s *Sim) flow(i int32) *FlowState {
	return &s.flows[i>>flowBlockBits][i&(1<<flowBlockBits-1)]
}

// newFlow appends a FlowState to the arena and returns it with its index.
// After a Reset the arena cursor rewinds but the blocks stay allocated;
// growth happens only past the high-water mark of every run so far.
func (s *Sim) newFlow() (*FlowState, int32) {
	const mask = 1<<flowBlockBits - 1
	if s.numFlows&mask == 0 && s.numFlows>>flowBlockBits == len(s.flows) {
		s.flows = append(s.flows, make([]FlowState, 1<<flowBlockBits))
	}
	i := int32(s.numFlows)
	s.numFlows++
	return &s.flows[i>>flowBlockBits][i&mask], i
}

// eachFlow calls fn for every injected flow, in injection order.
func (s *Sim) eachFlow(fn func(*FlowState)) {
	left := s.numFlows
	for _, blk := range s.flows {
		m := len(blk)
		if m > left {
			m = left
		}
		for i := 0; i < m; i++ {
			fn(&blk[i])
		}
		left -= m
	}
}

// Backlog returns the total number of queued cells. The total is
// maintained incrementally (staged per shard during parallel phases and
// folded at the slot barrier), so the call is O(1) — cheap enough for a
// driver loop to consult every slot.
func (s *Sim) Backlog() int64 { return s.totalBacklog }

// InFlight returns the number of cells currently propagating on links,
// summed from the per-ring-slot occupancy counts in O(ringSlots).
func (s *Sim) InFlight() int {
	total := int32(0)
	for _, c := range s.ringCount {
		total += c
	}
	return int(total)
}

// Drained reports whether no cells remain queued or in flight.
func (s *Sim) Drained() bool { return s.Backlog() == 0 && s.InFlight() == 0 }

// StartMeasuring begins counting deliveries/injections (after warmup).
func (s *Sim) StartMeasuring() { s.measuring = true }

// failGuard enforces the failure-injection contract: FailLink, FailNode,
// RepairLink, and RepairNode mutate state — including the lazily
// allocated failedLink bitmap — that transmit shards read with no
// synchronization beyond the goroutine creation/join edges of runPhase.
// Injecting between Steps is therefore safe for every worker count (each
// Step's goroutines start after the mutation and the creation edge
// publishes it), while injecting during a Step is a data race; the guard
// turns that misuse into a deterministic panic instead.
func (s *Sim) failGuard() {
	if s.stepping {
		panic("netsim: fail/repair called during Step; inject failures and repairs between Steps")
	}
}

// FailLink makes the circuit u→v drop every transmission. The failure
// rows are allocated lazily — the outer slice on the first FailLink,
// each source's row on its first failed link — so fault-free
// simulations (the common case) skip the per-transmission lookup
// entirely and faulty large-N runs pay only for sources that actually
// failed; see failGuard for why the lazy allocation is safe mid-run.
// Call between Steps only.
func (s *Sim) FailLink(u, v int) {
	s.failGuard()
	if s.failedLink == nil {
		s.failedLink = make([][]bool, s.n)
	}
	row := s.failedLink[u]
	if row == nil {
		row = make([]bool, s.n)
		s.failedLink[u] = row
	}
	row[v] = true
	if s.obs != nil {
		s.obs.Emit(obs.Event{Slot: s.slot, Type: obs.EvFailLink, Src: u, Dst: v})
	}
}

// FailNode makes node u neither transmit nor forward. Everything already
// queued at u is purged as lost — counted in Stats.LostCells and the
// owning flows' Lost(), not silently vanished — so cell conservation
// (injected = delivered + dropped + lost + queued + in-flight) holds
// under node failures and Drained() stays reachable. Cells in flight
// toward u are lost when they land. Call between Steps only.
func (s *Sim) FailNode(u int) {
	s.failGuard()
	if s.failedNode[u] {
		return
	}
	s.failedNode[u] = true
	s.failedCount++
	s.liveShard[s.shardOf[u]]--
	purged := int64(0)
	if row := s.voq[u]; row != nil {
		for v := range row {
			q := &row[v]
			for {
				c, ok := q.pop()
				if !ok {
					break
				}
				if c.fresh {
					s.noteFreshConsumed(nil, u, c.dst())
				}
				s.flow(c.flow).lost++
				purged++
			}
		}
	}
	s.backlog[u] -= purged
	s.totalBacklog -= purged
	s.deactivateSrc(u)
	if s.measuring {
		s.stats.LostCells += purged
	}
	if s.obs != nil {
		s.obs.Emit(obs.Event{Slot: s.slot, Type: obs.EvFailNode, Src: u, Dst: -1, Cells: purged})
	}
}

// RepairLink restores the circuit u→v after a FailLink. Repairing a link
// that is not failed is a no-op (no event), so scripted fault plans can
// overlap repairs without tracking exact state. The failedLink bitmap is
// kept once allocated: a repaired simulation has seen churn and may see
// more, so the fault-free fast path is not restored. Call between Steps
// only — the same contract as FailLink (see failGuard).
func (s *Sim) RepairLink(u, v int) {
	s.failGuard()
	if s.failedLink == nil || s.failedLink[u] == nil || !s.failedLink[u][v] {
		return
	}
	s.failedLink[u][v] = false
	if s.obs != nil {
		s.obs.Emit(obs.Event{Slot: s.slot, Type: obs.EvRepairLink, Src: u, Dst: v})
	}
}

// RepairNode restores node u after a FailNode. The node returns to
// service with empty queues — everything it held was purged (and
// accounted as lost) at failure time — so conservation holds trivially
// across fail→repair→fail churn: repair moves no cells, it only re-opens
// the transmit/forward/landing paths. Cells injected or routed through u
// after the repair flow normally. Repairing a live node is a no-op.
// Call between Steps only — the same contract as FailNode (see
// failGuard).
func (s *Sim) RepairNode(u int) {
	s.failGuard()
	if !s.failedNode[u] {
		return
	}
	s.failedNode[u] = false
	s.failedCount--
	s.liveShard[s.shardOf[u]]++
	if s.obs != nil {
		s.obs.Emit(obs.Event{Slot: s.slot, Type: obs.EvRepairNode, Src: u, Dst: -1})
	}
}

// InjectFlow source-routes a flow's cells and queues them at the source.
// Each cell's route is computed as if injected one slot later than the
// previous, rotating the load-balancing hop across circuits.
func (s *Sim) InjectFlow(src, dst, size int) *FlowState {
	if src == dst {
		panic("netsim: self flow")
	}
	s.nextFlow++
	f, fi := s.newFlow()
	*f = FlowState{id: s.nextFlow, src: int32(src), dst: int32(dst), size: int32(size), arrival: s.slot, done: -1}
	if s.traceFlows {
		s.obs.Emit(obs.Event{Slot: s.slot, Type: obs.EvFlowStart, Flow: int64(f.id), Src: src, Dst: dst, Cells: int64(size)})
	}
	if s.failedNode[src] {
		// A failed source can never transmit: count the whole flow as
		// lost at injection instead of parking its cells in queues no
		// transmit phase will ever pop. Conservation holds and
		// Drained() stays reachable.
		f.lost = int32(size)
		if s.measuring {
			s.stats.InjectedCells += int64(size)
			s.stats.LostCells += int64(size)
		}
		return f
	}
	s.fresh[src] += int64(size)
	if s.trackPairs {
		s.freshPair[src*s.n+dst] += int64(size)
	}
	for i := 0; i < size; i++ {
		p := s.router.RouteInto(s.routeBuf[:0], src, dst, int(s.slot)+i, s.rng)
		s.routeBuf = p
		var c cell
		c.flow = fi
		c.fresh = true
		c.n = int8(len(p) - 1)
		for h := 1; h < len(p); h++ {
			c.waypoints[h-1] = int16(p[h])
		}
		s.enqueue(nil, src, &c)
	}
	if s.measuring {
		s.stats.InjectedCells += int64(size)
	}
	return f
}

// noteFreshConsumed updates the fresh-cell accounting when a cell leaves
// its source (transmitted or dropped at injection) and, under per-pair
// saturation, pushes the pair onto the deficit worklist — staged per
// shard during parallel phases (sh non-nil), direct otherwise.
func (s *Sim) noteFreshConsumed(sh *shard, u, dst int) {
	s.fresh[u]--
	if !s.trackPairs {
		return
	}
	pair := u*s.n + dst
	s.freshPair[pair]--
	if !s.dirtyMark[pair] {
		s.dirtyMark[pair] = true
		if sh != nil {
			sh.dirty = append(sh.dirty, int32(pair))
		} else {
			s.dirtyPairs = append(s.dirtyPairs, int32(pair))
		}
	}
}

// enqueue places a cell into node u's VOQ for its next waypoint,
// dropping it if the queue is at its limit. It is called from the
// landing phase with that node's owning shard (accounting is staged),
// and from serial contexts — injection, reconfiguration — with sh nil
// (accounting is applied directly). Only u's owning shard (or a serial
// context) ever calls it, which is what makes the lazy row allocation
// and the active-list append race-free.
func (s *Sim) enqueue(sh *shard, u int, c *cell) {
	next := int(c.waypoints[c.idx])
	row := s.voq[u]
	if row == nil {
		row = s.voqRow(u)
	}
	q := &row[next]
	if s.cfg.QueueLimit > 0 && q.len() >= s.cfg.QueueLimit {
		if c.fresh {
			// Fresh cells are dropped only from serial contexts: a
			// cell never returns to its source once transmitted.
			s.noteFreshConsumed(sh, u, c.dst())
		}
		if sh != nil {
			sh.losses = append(sh.losses, flowLoss{flow: c.flow, cells: 1})
			if s.measuring {
				sh.stats.DroppedCells++
			}
		} else {
			s.flow(c.flow).lost++
			if s.measuring {
				s.stats.DroppedCells++
			}
		}
		return
	}
	q.push(c)
	s.backlog[u]++
	if sh != nil {
		sh.dBacklog++
	} else {
		s.totalBacklog++
	}
	if !s.dense && s.backlog[u] == 1 {
		s.activateSrc(u)
	}
}

// voqSlabMax bounds the eager contiguous-slab VOQ layout: up to this
// many nodes every row is a view into one n×n slab, so the saturated
// transmit and landing scans walk contiguous memory exactly as the
// pre-active-set flat table did. Above it, rows allocate lazily on a
// node's first queued cell — at N ≥ 2048 eager rows were the dominant
// allocation, and sparse large-N runs touch only a fraction of them.
// Same threshold as circuitSet's bitmap-vs-neighbor-list switch.
const voqSlabMax = 1024

// newVOQ returns the empty VOQ table for n nodes: slab-backed row
// views up to voqSlabMax (nothing is nil), lazily allocated rows
// above (nil row = node never queued).
func newVOQ(n int) [][]fifo {
	voq := make([][]fifo, n)
	if n <= voqSlabMax {
		slab := make([]fifo, n*n)
		for u := range voq {
			voq[u] = slab[u*n : (u+1)*n : (u+1)*n]
		}
	}
	return voq
}

// voqRow allocates node u's VOQ row on its first queued cell — the
// deliberate once-per-node slow path of the lazy large-N layout
// (small sims get slab rows from newVOQ and never reach it).
//
//sornlint:coldpath
func (s *Sim) voqRow(u int) []fifo {
	row := make([]fifo, s.n)
	s.voq[u] = row
	return row
}

// activateSrc adds u to its owning shard's active-source list when its
// backlog becomes nonzero. A landing shard calls it only for nodes it
// owns, so list writes are race-free by partition.
//
//sornlint:hotpath
func (s *Sim) activateSrc(u int) {
	if s.srcPos[u] >= 0 {
		return
	}
	i := s.shardOf[u]
	s.srcPos[u] = int32(len(s.activeSrc[i]))
	s.activeSrc[i] = append(s.activeSrc[i], int32(u))
}

// deactivateSrc removes u from its shard's active list by swap-removal.
// Serial contexts only (FailNode purges): the transmit phase removes
// its own drained sources inline.
func (s *Sim) deactivateSrc(u int) {
	pos := s.srcPos[u]
	if pos < 0 {
		return
	}
	i := s.shardOf[u]
	list := s.activeSrc[i]
	last := len(list) - 1
	moved := list[last]
	list[pos] = moved
	s.srcPos[moved] = pos // before clearing u: handles moved == u
	s.srcPos[u] = -1
	s.activeSrc[i] = list[:last]
}

// clearActive empties every shard's active list (Reconfigure rebuilds
// the queues from scratch and re-activates sources as it re-enqueues).
func (s *Sim) clearActive() {
	for i := range s.activeSrc {
		s.activeSrc[i] = s.activeSrc[i][:0]
	}
	for i := range s.srcPos {
		s.srcPos[i] = -1
	}
}

// phaseTimeSample is the phase wall-clock sampling interval: an
// instrumented run times its phases on one slot in phaseTimeSample.
// Phase profiles are per-call averages, so sampling keeps them unbiased
// while cutting the clock reads — the dominant observer cost on the hot
// path — to a fraction the ci.sh overhead gate's budget absorbs. Must
// be a power of two.
const phaseTimeSample = 16

// phaseTimed reports whether this slot's phases are wall-clock timed;
// true implies s.obs is non-nil.
//
//sornlint:obsguard
func (s *Sim) phaseTimed() bool {
	return s.obs != nil && s.slot&(phaseTimeSample-1) == 0
}

// Step advances the simulation by one slot: a landing phase sharded by
// destination node, a barrier, a transmit phase sharded by source node,
// and a final barrier at which per-shard staging merges in shard order.
func (s *Sim) Step() {
	s.stepping = true
	period := int64(s.sched.Period())
	for p := 0; p < s.planes; p++ {
		s.matchRows[p] = s.sched.Slots[(s.slot+s.offsets[p])%period]
	}
	timed := s.phaseTimed()
	if s.dense {
		s.runPhase(obs.PhaseLand, timed, (*Sim).landShardDense)
	} else {
		s.runPhase(obs.PhaseLand, timed, (*Sim).landShardActive)
	}
	cur := s.slot % int64(s.ringSlots)
	s.ringCount[cur] = 0
	s.landScan[cur] = false
	if s.dense {
		s.runPhase(obs.PhaseTransmit, timed, (*Sim).transmitShardDense)
	} else {
		// Active sources (backlog > 0) bound this slot's transmissions
		// at active×planes; if that already crosses the land-scan
		// threshold, the staged arrival lists would be discarded, so
		// tell the transmit shards not to build them. Computed after
		// the landing phase (which activates sources) and before
		// transmit, serially — the set of active sources is identical
		// across worker counts, so the decision is too.
		active := 0
		for i := range s.activeSrc {
			active += len(s.activeSrc[i])
		}
		s.stageSkip = int32(active)*int32(s.planes) >= s.landScanThreshold
		s.runPhase(obs.PhaseTransmit, timed, (*Sim).transmitShardActive)
	}
	if len(s.shards) > 1 {
		if timed {
			t0 := s.obs.Clock()
			s.mergeShards()
			s.obs.AddPhase(obs.PhaseMerge, 0, t0)
		} else {
			s.mergeShards()
		}
	}
	if !s.dense {
		s.stageArrivals()
	}
	if s.om != nil {
		s.obsEndSlot()
	}
	s.slot++
	if s.measuring {
		s.stats.MeasuredSlots++
	}
	s.stepping = false
}

// stageArrivals routes this slot's transmissions to the landing shards
// that will consume them, at the slot barrier in shard order. Serial
// transmits append straight into the single landing list, so with one
// worker only the threshold check remains. Ring slots holding at least
// landScanThreshold cells switch to the dense occupancy scan — a
// saturated slot fills most of the ring row anyway — and drop the
// staged lists (usually already empty: Step predicts the crossing from
// the active-source count and sets stageSkip so transmit never builds
// them). Each ring slot is produced by exactly one Step and
// consumed propSlots later, so no entry is ever written twice before
// being drained.
func (s *Sim) stageArrivals() {
	landRS := int((s.slot + s.propSlots) % int64(s.ringSlots))
	w := len(s.shards)
	if s.stageSkip || s.ringCount[landRS] >= s.landScanThreshold {
		s.landScan[landRS] = true
		for i := 0; i < w; i++ {
			s.arrivals[landRS*w+i] = s.arrivals[landRS*w+i][:0]
		}
		for i := range s.shards {
			s.shards[i].landedIdx = s.shards[i].landedIdx[:0]
		}
		return
	}
	if w == 1 {
		return // serial transmit staged directly into arrivals[landRS]
	}
	base := int32(landRS * s.n * s.planes)
	planes := int32(s.planes)
	for i := range s.shards {
		sh := &s.shards[i]
		for _, j := range sh.landedIdx {
			v := (j - base) / planes
			d := landRS*w + int(s.shardOf[v])
			s.arrivals[d] = append(s.arrivals[d], j)
		}
		sh.landedIdx = sh.landedIdx[:0]
	}
}

// FastForwardTo advances a quiescent simulator straight to slot target,
// returning how many slots were skipped (0 when nothing could be
// skipped). It is exact, not approximate: a quiescent Step — nothing
// queued, nothing in flight — moves no cells, draws no rng, and touches
// only the slot counter, the measurement window (MeasuredSlots plus one
// idle slot per live node-plane), and the per-slot observability hook,
// all of which are accounted here (see obsFastForward for the metric
// series). Schedule rows, plane offsets, and ring indices are derived
// from the slot counter at the next Step, so they need no adjustment.
// The dense reference engine never fast-forwards — it is the per-slot
// oracle — and a non-quiescent or mid-Step simulator is left untouched,
// so drivers call this unconditionally with the next slot at which
// anything is due: an arrival, a fault-plan event, a control epoch, a
// report boundary. Only wall-clock phase timings can tell the
// difference (skipped slots are never phase-timed); they are
// deliberately outside the determinism contract.
func (s *Sim) FastForwardTo(target int64) int64 {
	if s.dense || s.stepping || target <= s.slot {
		return 0
	}
	if s.totalBacklog != 0 || s.InFlight() != 0 {
		return 0
	}
	skipped := target - s.slot
	if s.om != nil {
		s.obsFastForward(target)
	}
	if s.measuring {
		s.stats.MeasuredSlots += skipped
		// Every live node idles on all its planes in an empty slot —
		// the same accounting the per-slot transmit phase would stage
		// (a validated schedule has no self-circuits to exclude).
		s.stats.IdleSlots += skipped * int64(s.n-s.failedCount) * int64(s.planes)
	}
	s.slot = target
	return skipped
}

// runPhase executes one phase across all shards. Serial runs inline
// over the whole node range with a nil shard, so accounting goes
// straight to the shared state and the merge step disappears.
// Parallel runs one goroutine per extra shard with the caller taking
// shard 0; the WaitGroup barrier orders every phase-k write before
// every phase-k+1 read.
func (s *Sim) runPhase(p obs.Phase, timed bool, fn func(*Sim, int, int, *shard)) {
	if len(s.shards) == 1 {
		s.runShard(p, timed, 0, 0, s.n, nil, fn)
		return
	}
	var wg sync.WaitGroup
	for i := 1; i < len(s.shards); i++ {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			s.runShard(p, timed, i, sh.lo, sh.hi, sh, fn)
		}(i, &s.shards[i])
	}
	sh0 := &s.shards[0]
	s.runShard(p, timed, 0, sh0.lo, sh0.hi, sh0, fn)
	wg.Wait()
}

// runShard runs one shard of a phase, wall-clock-timed into the
// observer's per-(phase, shard) accumulator on sampled slots. The
// readings never feed back into simulation state, so timing cannot
// perturb results; the uninstrumented path pays one branch. timed is
// only ever true when the observer exists (phaseTimed).
//
//sornlint:obsguarded
func (s *Sim) runShard(p obs.Phase, timed bool, i, lo, hi int, sh *shard, fn func(*Sim, int, int, *shard)) {
	if !timed {
		fn(s, lo, hi, sh)
		return
	}
	t0 := s.obs.Clock()
	fn(s, lo, hi, sh)
	s.obs.AddPhase(p, i, t0)
}

// mergeShards folds every shard's staged deltas into the shared state,
// in shard order — the single point where parallel results meet, and
// deliberately order-deterministic. Staged events only exist when the
// observer does, so the drain below emits unguarded.
//
//sornlint:drain
func (s *Sim) mergeShards() {
	landIdx := (s.slot + s.propSlots) % int64(s.ringSlots)
	for i := range s.shards {
		sh := &s.shards[i]
		s.ringCount[landIdx] += sh.landed
		sh.landed = 0
		s.totalBacklog += sh.dBacklog
		sh.dBacklog = 0
		s.stats.mergeFrom(&sh.stats)
		if len(sh.losses) > 0 {
			for _, l := range sh.losses {
				s.flow(l.flow).lost += l.cells
			}
			sh.losses = sh.losses[:0]
		}
		if len(sh.dirty) > 0 {
			s.dirtyPairs = append(s.dirtyPairs, sh.dirty...)
			sh.dirty = sh.dirty[:0]
		}
		if len(sh.events) > 0 {
			for _, e := range sh.events {
				s.obs.Emit(e)
			}
			sh.events = sh.events[:0]
		}
	}
}

// landShardDense processes this slot's arrivals at destination nodes
// [lo, hi) by scanning every (node, plane) ring entry — the reference
// engine's landing phase. It is a worker-phase body (writes outside the
// shard's staged state are shardsafety violations) and the per-cell hot
// loop (heap allocation is a hotalloc violation).
//
//sornlint:shardphase
//sornlint:hotpath
func (s *Sim) landShardDense(lo, hi int, sh *shard) {
	cur := int(s.slot % int64(s.ringSlots))
	if s.ringCount[cur] == 0 {
		return
	}
	s.landScanRange(cur, lo, hi, sh)
}

// landScanRange lands everything in ring slot cur addressed to [lo, hi),
// in (node, plane) order — the canonical landing order both engines
// produce. Shared by the dense engine and the active engine's
// heavy-slot fallback.
//
//sornlint:shardphase
//sornlint:hotpath
func (s *Sim) landScanRange(cur, lo, hi int, sh *shard) {
	base := cur * s.n * s.planes
	off := base + lo*s.planes
	for v := lo; v < hi; v++ {
		for p := 0; p < s.planes; p++ {
			if s.ringOcc[off] {
				s.ringOcc[off] = false
				s.land(sh, v, &s.ringCells[off])
			}
			off++
		}
	}
}

// landShardActive lands this slot's arrivals from the staged per-shard
// index lists: cost proportional to the cells actually landing, not to
// n×planes. Delay-line indices are (node, plane)-major, so sorting the
// list ascending reproduces exactly the dense scan's landing order and
// keeps the engines bit-identical — including the per-node rng draws
// and staged sample streams that depend on per-node event order. Ring
// slots flagged landScan (≥ landScanThreshold cells) fall back to the
// dense scan and have empty lists.
//
//sornlint:shardphase
//sornlint:hotpath
func (s *Sim) landShardActive(lo, hi int, sh *shard) {
	cur := int(s.slot % int64(s.ringSlots))
	if s.ringCount[cur] == 0 {
		return
	}
	if s.landScan[cur] {
		s.landScanRange(cur, lo, hi, sh)
		return
	}
	i := 0
	if sh != nil {
		i = sh.idx
	}
	li := cur*len(s.shards) + i
	lst := s.arrivals[li]
	if len(lst) == 0 {
		return
	}
	slices.Sort(lst)
	base := cur * s.n * s.planes
	for _, j := range lst {
		jj := int(j)
		s.ringOcc[jj] = false
		s.land(sh, (jj-base)/s.planes, &s.ringCells[jj])
	}
	s.arrivals[li] = lst[:0]
}

// land processes a cell arriving at node v.
func (s *Sim) land(sh *shard, v int, c *cell) {
	if s.failedNode[v] {
		// v failed while the cell was in flight (transmit-time drops
		// cover only cells sent after the failure): lost on arrival.
		if sh != nil {
			sh.losses = append(sh.losses, flowLoss{flow: c.flow, cells: 1})
			if s.measuring {
				sh.stats.LostCells++
			}
		} else {
			s.flow(c.flow).lost++
			if s.measuring {
				s.stats.LostCells++
			}
		}
		return
	}
	c.idx++
	if c.idx >= c.n {
		s.deliver(sh, v, c)
		return
	}
	// After a reconfiguration, the cell's next circuit may no longer
	// exist; re-route it from its landing node.
	if !s.circuits.has(v, int(c.waypoints[c.idx])) {
		s.rerouteFrom(sh, v, c)
		return
	}
	s.enqueue(sh, v, c)
}

// deliver counts a final-hop delivery at node v.
func (s *Sim) deliver(sh *shard, v int, c *cell) {
	st := &s.stats
	if sh != nil {
		st = &sh.stats
	}
	f := s.flow(c.flow)
	f.delivered++
	if s.measuring {
		st.DeliveredCells++
		// Deterministic Bernoulli sampling at rate 1/k. Counting
		// every k-th delivery phase-locks with a period-P schedule
		// whenever k and P share factors, systematically over- or
		// under-sampling some circuits; an independent coin flip per
		// delivery cannot. k == 1 skips the draw and samples all.
		if k := s.cfg.LatencySampleEvery; k > 0 && (k == 1 || s.latRngs[v].Float64() < s.sampleProb) {
			lat := float64(s.slot - f.arrival)
			st.LatencySlots.Add(lat)
			st.LatencyByHops[c.n].Add(lat)
		}
	}
	if f.delivered == f.size {
		f.done = s.slot
		if s.measuring {
			st.CompletedFlows++
			st.FCTSlots.Add(float64(s.slot - f.arrival))
		}
		if s.traceFlows {
			s.emitEvent(sh, obs.Event{Slot: s.slot, Type: obs.EvFlowFinish, Flow: int64(f.id),
				Src: int(f.src), Dst: int(f.dst), Cells: int64(f.size), Val: float64(s.slot - f.arrival)})
		}
	}
}

// emitEvent routes a simulation event either into the emitting shard's
// staging buffer — drained into the trace in shard order at the slot
// barrier — or, from serial contexts, straight to the trace. Shards are
// contiguous ascending node ranges and the landing phase walks nodes in
// order, so the merged event stream is identical for every worker
// count. Callers check s.obs != nil first.
//
//sornlint:drain
func (s *Sim) emitEvent(sh *shard, e obs.Event) {
	if sh != nil {
		sh.events = append(sh.events, e)
		return
	}
	s.obs.Emit(e)
}

// transmitShardDense pops one cell per plane per source node in
// [lo, hi) onto the node's active circuits, writing arrivals into the
// delay line slot each destination owns — the reference engine's
// transmit phase, scanning every (source, plane) pair.
//
// The loop is plane-major so the dominant single-plane case is one flat
// pass over the match row. Unlike the landing phase, transmit order
// across nodes carries no state: every mutation is per-source (pops,
// backlog, fresh counters — a node's pops still occur in ascending
// plane order), commutative (counter and loss sums), uniquely addressed
// (delay-line entries), or order-canonicalized downstream (the
// dirty-pair worklist is sorted before each drain), so any iteration
// layout yields the same result for every worker count.
//
//sornlint:shardphase
//sornlint:hotpath
func (s *Sim) transmitShardDense(lo, hi int, sh *shard) {
	n := s.n
	st := &s.stats
	if sh != nil {
		st = &sh.stats
	}
	landBase := int((s.slot+s.propSlots)%int64(s.ringSlots)) * n * s.planes
	landed := int32(0)
	idle := int64(0)
	dBacklog := int64(0)
	measuring := s.measuring
	planes := s.planes
	rows := s.matchRows
	voq := s.voq
	backlog := s.backlog
	failedNode := s.failedNode
	failedLink := s.failedLink
	hasFailedLink := failedLink != nil
	for p := 0; p < planes; p++ {
		row := rows[p]
		for u := lo; u < hi; u++ {
			if failedNode[u] {
				continue
			}
			v := row[u]
			vq := voq[u]
			if vq == nil {
				// Never queued anything: idle on this circuit (a
				// validated schedule has no self-circuits, so u != v).
				idle++
				continue
			}
			c, ok := vq[v].pop()
			if !ok {
				if u != v {
					idle++
				}
				continue
			}
			backlog[u]--
			dBacklog--
			if c.fresh {
				s.noteFreshConsumed(sh, u, c.dst())
				c.fresh = false
			}
			if failedNode[v] || (hasFailedLink && failedLink[u] != nil && failedLink[u][v]) {
				if sh != nil {
					sh.losses = append(sh.losses, flowLoss{flow: c.flow, cells: 1})
				} else {
					s.flow(c.flow).lost++
				}
				if measuring {
					st.LostCells++
				}
				continue
			}
			if measuring {
				st.SentCells++
			}
			// Within a slot each plane's circuits form a matching, so
			// (v, p) identifies this arrival's slot uniquely: no other
			// shard can write it.
			j := landBase + v*s.planes + p
			s.ringCells[j] = *c
			s.ringOcc[j] = true
			landed++
		}
	}
	if measuring {
		st.IdleSlots += idle
	}
	if sh != nil {
		sh.landed = landed
		sh.dBacklog += dBacklog
	} else {
		s.ringCount[(s.slot+s.propSlots)%int64(s.ringSlots)] += landed
		s.totalBacklog += dBacklog
	}
}

// transmitShardActive is the active-set transmit phase: instead of
// scanning all of [lo, hi) per plane, it visits only the shard's
// sources with queued cells, removing each from the list the moment it
// drains. Per-slot cost is proportional to the active sources, so the
// drained tail of an open-loop run — and every lightly loaded slot of a
// sparse one — costs O(cells moved), not O(n).
//
// Equivalence with the dense scan: each active source still tries its
// planes in ascending order, every non-list mutation is per-source,
// commutative, uniquely addressed, or canonicalized downstream (see
// transmitShardDense), and the idle total is computed by identity —
// live sources × planes − successful pops — rather than counted, which
// matches the dense count exactly because a validated schedule has no
// self-circuits. List order is irrelevant to all of it.
//
//sornlint:shardphase
//sornlint:hotpath
func (s *Sim) transmitShardActive(lo, hi int, sh *shard) {
	n := s.n
	st := &s.stats
	shIdx := 0
	if sh != nil {
		st = &sh.stats
		shIdx = sh.idx
	}
	landRS := int((s.slot + s.propSlots) % int64(s.ringSlots))
	landBase := landRS * n * s.planes
	landed := int32(0)
	pops := int64(0)
	dBacklog := int64(0)
	measuring := s.measuring
	planes := s.planes
	rows := s.matchRows
	backlog := s.backlog
	srcPos := s.srcPos
	failedNode := s.failedNode
	failedLink := s.failedLink
	hasFailedLink := failedLink != nil
	stage := s.arrivals[landRS] // serial: stage straight into the landing list
	if sh != nil {
		stage = sh.landedIdx
	}
	skipStage := s.stageSkip // Step already decided this row will dense-scan
	list := s.activeSrc[shIdx]
	if len(list)*2 >= hi-lo {
		// Saturated shard: most of the node range is active, so the
		// list buys nothing — switch to the dense engine's plane-major
		// layout (hoisted match row, nodes visited in address order)
		// and skip the few inactive sources via srcPos. Iteration
		// layout carries no state (see transmitShardDense), so this is
		// purely a memory-access-pattern choice; sources that drain
		// are swept from the list after the scan instead of
		// swap-removed mid-iteration, which changes only list order —
		// never results.
		voq := s.voq
		// Full coverage means every node in [lo, hi) is active (failed
		// nodes are never listed), so the membership probe vanishes in
		// the steady saturated state.
		checkPos := len(list) != hi-lo
		drained := 0
		for p := 0; p < planes; p++ {
			row := rows[p]
			for u := lo; u < hi; u++ {
				if checkPos && srcPos[u] < 0 {
					continue
				}
				v := row[u]
				c, ok := voq[u][v].pop()
				if !ok {
					continue
				}
				pops++
				nb := backlog[u] - 1
				backlog[u] = nb
				if nb == 0 {
					drained++
				}
				dBacklog--
				if c.fresh {
					s.noteFreshConsumed(sh, u, c.dst())
					c.fresh = false
				}
				if failedNode[v] || (hasFailedLink && failedLink[u] != nil && failedLink[u][v]) {
					if sh != nil {
						sh.losses = append(sh.losses, flowLoss{flow: c.flow, cells: 1})
					} else {
						s.flow(c.flow).lost++
					}
					if measuring {
						st.LostCells++
					}
					continue
				}
				if measuring {
					st.SentCells++
				}
				j := landBase + v*s.planes + p
				s.ringCells[j] = *c
				s.ringOcc[j] = true
				if !skipStage {
					stage = append(stage, int32(j))
				}
				landed++
			}
		}
		// Transmit only ever decreases backlog (landing already ran),
		// so the drain count taken during the scan is exact: in the
		// steady saturated state it is zero and the sweep is skipped.
		for k := 0; drained > 0 && k < len(list); {
			u := list[k]
			if backlog[u] == 0 {
				drained--
				last := len(list) - 1
				moved := list[last]
				list[k] = moved
				srcPos[moved] = int32(k)
				srcPos[u] = -1
				list = list[:last]
				continue
			}
			k++
		}
		s.activeSrc[shIdx] = list
		if measuring {
			st.IdleSlots += s.liveShard[shIdx]*int64(planes) - pops
		}
		if sh != nil {
			sh.landed = landed
			sh.landedIdx = stage
			sh.dBacklog += dBacklog
		} else {
			s.arrivals[landRS] = stage
			s.ringCount[landRS] += landed
			s.totalBacklog += dBacklog
		}
		return
	}
	for k := 0; k < len(list); {
		u := int(list[k])
		// A failed node cannot be on the list — FailNode deactivates it
		// and purges its queues — so no liveness check is needed here.
		row := s.voq[u]
		var flRow []bool
		if hasFailedLink {
			flRow = failedLink[u]
		}
		for p := 0; p < planes; p++ {
			v := rows[p][u]
			c, ok := row[v].pop()
			if !ok {
				continue
			}
			pops++
			backlog[u]--
			dBacklog--
			if c.fresh {
				s.noteFreshConsumed(sh, u, c.dst())
				c.fresh = false
			}
			if failedNode[v] || (flRow != nil && flRow[v]) {
				if sh != nil {
					sh.losses = append(sh.losses, flowLoss{flow: c.flow, cells: 1})
				} else {
					s.flow(c.flow).lost++
				}
				if measuring {
					st.LostCells++
				}
				continue
			}
			if measuring {
				st.SentCells++
			}
			j := landBase + v*s.planes + p
			s.ringCells[j] = *c
			s.ringOcc[j] = true
			if !skipStage {
				stage = append(stage, int32(j))
			}
			landed++
		}
		if backlog[u] == 0 {
			// Drained: swap-remove without advancing k (the moved entry
			// now at k still needs its turn this slot).
			last := len(list) - 1
			moved := list[last]
			list[k] = moved
			srcPos[moved] = int32(k)
			srcPos[u] = -1
			list = list[:last]
			continue
		}
		k++
	}
	s.activeSrc[shIdx] = list
	if measuring {
		// Idle by identity: every live (source, plane) pair either
		// popped a cell or idled. pops counts transmit-time drops too —
		// the dense scan counts those as non-idle as well.
		st.IdleSlots += s.liveShard[shIdx]*int64(planes) - pops
	}
	if sh != nil {
		sh.landed = landed
		sh.landedIdx = stage
		sh.dBacklog += dBacklog
	} else {
		s.arrivals[landRS] = stage
		s.ringCount[landRS] += landed
		s.totalBacklog += dBacklog
	}
}

// RunOpenLoop injects the given flows at their arrival slots and steps
// until `until`. Flows must be sorted by arrival and arrive at or after
// the current slot.
func (s *Sim) RunOpenLoop(flows []workload.Flow, until int64) error {
	i := 0
	for s.slot < until {
		timed := s.phaseTimed()
		var t0 int64
		if timed {
			t0 = s.obs.Clock()
		}
		for i < len(flows) && flows[i].Arrival <= s.slot {
			f := flows[i]
			if f.Arrival < 0 {
				return fmt.Errorf("netsim: flow %d has negative arrival", f.ID)
			}
			s.InjectFlow(f.Src, f.Dst, f.Size)
			i++
		}
		if timed {
			s.obs.AddPhase(obs.PhaseInject, 0, t0)
		}
		s.Step()
		// Nothing can happen before the next arrival (or the horizon)
		// once the network drains; skip the empty slots in O(1).
		// FastForwardTo checks quiescence itself and is disabled on the
		// dense reference engine.
		next := until
		if i < len(flows) && flows[i].Arrival < next {
			next = flows[i].Arrival
		}
		s.FastForwardTo(next)
	}
	return nil
}

// SaturationConfig drives a closed-loop saturation run: every node keeps
// at least TargetBacklog *fresh* (not yet transmitted) cells queued, with
// destinations drawn from the traffic matrix and sizes from the size
// distribution. Relayed cells queued at intermediate hops do not count
// toward the target, so sources model infinite backlogs and the
// bottleneck links stay busy. Delivered cells per node per slot during
// the measurement window is the paper's throughput r.
type SaturationConfig struct {
	TM            *workload.Matrix
	Size          workload.SizeDist
	TargetBacklog int64
	WarmupSlots   int64
	MeasureSlots  int64

	// PerPairBacklog, when positive, switches to per-pair saturation:
	// every (src, dst) pair with positive demand keeps at least this many
	// fresh cells queued (TargetBacklog is then ignored). This measures
	// the schedule's capacity for the *matrix* — all pairs backlogged —
	// rather than for one flow at a time, and is what Figure 2(f)'s
	// worst-case throughput means. Heavy-tailed size distributions
	// overshoot the target per pair; that only deepens queues.
	PerPairBacklog int64
}

// RunSaturated executes a saturation experiment and returns the stats.
func (s *Sim) RunSaturated(sc SaturationConfig) (*Stats, error) {
	if err := sc.TM.Validate(); err != nil {
		return nil, err
	}
	if sc.TM.N != s.n {
		return nil, fmt.Errorf("netsim: matrix over %d nodes, sim over %d", sc.TM.N, s.n)
	}
	if (sc.TargetBacklog <= 0 && sc.PerPairBacklog <= 0) || sc.WarmupSlots < 0 || sc.MeasureSlots <= 0 {
		return nil, fmt.Errorf("netsim: invalid saturation config %+v", sc)
	}
	end := s.slot + sc.WarmupSlots + sc.MeasureSlots
	measureAt := s.slot + sc.WarmupSlots
	if sc.PerPairBacklog > 0 {
		return s.runSaturatedPerPair(sc, measureAt, end)
	}
	// Per-node saturation. The eligible sources are computed once up
	// front: RowSum is an O(n) scan and failures cannot change mid-run,
	// so re-checking both for every node every slot is pure overhead.
	active := make([]int, 0, s.n)
	for u := 0; u < s.n; u++ {
		if !s.failedNode[u] && sc.TM.RowSum(u) > 0 {
			active = append(active, u)
		}
	}
	for s.slot < end {
		if s.slot == measureAt {
			s.StartMeasuring()
		}
		timed := s.phaseTimed()
		var t0 int64
		if timed {
			t0 = s.obs.Clock()
		}
		for _, u := range active {
			for s.fresh[u] < sc.TargetBacklog {
				dst := sc.TM.SampleDest(u, s.rng)
				s.InjectFlow(u, dst, sc.Size.Sample(s.rng))
			}
		}
		if timed {
			s.obs.AddPhase(obs.PhaseInject, 0, t0)
		}
		s.Step()
	}
	return &s.stats, nil
}

// runSaturatedPerPair drives per-pair saturation with a deficit
// worklist: a pair is (re-)examined only when one of its fresh cells
// left the source since the last top-up — initially every eligible pair,
// afterwards whatever the transmit loop consumed. This replaces the
// O(n²)-per-slot scan over all pairs with work proportional to the
// number of cells actually transmitted.
func (s *Sim) runSaturatedPerPair(sc SaturationConfig, measureAt, end int64) (*Stats, error) {
	s.trackPairs = true
	defer func() { s.trackPairs = false }()
	if s.dirtyMark == nil {
		s.dirtyMark = make([]bool, s.n*s.n)
	}
	// freshPair is unmaintained outside per-pair runs (and unallocated
	// before the first one); rebuild it from the queues — every fresh
	// cell sits at its source, so only allocated rows can hold any.
	if s.freshPair == nil {
		s.freshPair = make([]int64, s.n*s.n)
	} else {
		clear(s.freshPair)
	}
	for u := 0; u < s.n; u++ {
		row := s.voq[u]
		if row == nil {
			continue
		}
		for v := range row {
			q := &row[v]
			for i := q.head; i != q.tail; i++ {
				if c := &q.buf[i&uint32(len(q.buf)-1)]; c.fresh {
					s.freshPair[u*s.n+c.dst()]++
				}
			}
		}
	}
	for u := 0; u < s.n; u++ {
		if s.failedNode[u] {
			continue
		}
		for d := 0; d < s.n; d++ {
			if sc.TM.Rates[u][d] <= 0 || s.failedNode[d] {
				continue
			}
			pair := u*s.n + d
			if !s.dirtyMark[pair] {
				s.dirtyMark[pair] = true
				s.dirtyPairs = append(s.dirtyPairs, int32(pair))
			}
		}
	}
	for s.slot < end {
		if s.slot == measureAt {
			s.StartMeasuring()
		}
		timed := s.phaseTimed()
		var t0 int64
		if timed {
			t0 = s.obs.Clock()
		}
		// The worklist accumulates in transmit-iteration order, which is
		// a layout detail (plane-major across worker shards); sort the
		// batch so injection — and the rng draws it consumes — happens
		// in canonical pair order for every worker count and loop shape.
		slices.Sort(s.dirtyPairs)
		// Indexed loop: top-ups whose cells are dropped at injection
		// (QueueLimit) re-mark their pair, growing the worklist while it
		// drains — matching the retry the per-slot scan used to do.
		for i := 0; i < len(s.dirtyPairs); i++ {
			pair := int(s.dirtyPairs[i])
			s.dirtyMark[pair] = false
			u, d := pair/s.n, pair%s.n
			// A FailNode purge marks the failed node's pairs dirty as it
			// consumes their fresh cells; never top those back up.
			if s.failedNode[u] || s.failedNode[d] {
				continue
			}
			for s.freshPair[pair] < sc.PerPairBacklog {
				s.InjectFlow(u, d, sc.Size.Sample(s.rng))
			}
		}
		s.dirtyPairs = s.dirtyPairs[:0]
		if timed {
			s.obs.AddPhase(obs.PhaseInject, 0, t0)
		}
		s.Step()
	}
	return &s.stats, nil
}

// Reconfigure swaps the schedule (and router) at a slot boundary and
// re-routes every queued cell from its current node under the new
// schedule — modeling the drain/re-route work of a semi-oblivious
// topology update (§5). In-flight cells land first and are re-routed on
// landing if their next circuit no longer exists.
func (s *Sim) Reconfigure(sched *matching.Schedule, router routing.Router) error {
	if err := sched.Validate(); err != nil {
		return err
	}
	if sched.N != s.n {
		return fmt.Errorf("netsim: new schedule over %d nodes, sim over %d", sched.N, s.n)
	}
	if router.MaxHops()+1 > maxWaypoints {
		return fmt.Errorf("netsim: router %s exceeds %d waypoints", router.Name(), maxWaypoints)
	}
	if s.obs != nil {
		s.obs.Emit(obs.Event{Slot: s.slot, Type: obs.EvReconfigBegin, Src: -1, Dst: -1})
	}
	s.sched = sched
	s.router = router
	s.circuits = newCircuitSet(sched)
	s.offsets = planeOffsets(int64(sched.Period()), int64(s.planes))

	// Re-route queued cells: each keeps its flow identity but gets a
	// fresh path from its current node. In-flight cells are re-routed by
	// land() if their old next circuit disappeared. The active-source
	// lists are rebuilt as rerouteFrom re-enqueues.
	old := s.voq
	s.voq = newVOQ(s.n)
	for i := range s.backlog {
		s.backlog[i] = 0
	}
	s.totalBacklog = 0
	s.clearActive()
	moved := int64(0)
	for u := 0; u < s.n; u++ {
		row := old[u]
		if row == nil {
			continue
		}
		for v := range row {
			q := &row[v]
			for {
				c, ok := q.pop()
				if !ok {
					break
				}
				s.rerouteFrom(nil, u, c)
				moved++
			}
		}
	}
	if s.obs != nil {
		s.obs.Emit(obs.Event{Slot: s.slot, Type: obs.EvReconfigCommit, Src: -1, Dst: -1, Cells: moved})
	}
	return nil
}

// rerouteFrom recomputes a cell's remaining path from node u. Reroutes
// draw from u's own rng stream so a parallel landing phase consumes no
// shared generator state.
func (s *Sim) rerouteFrom(sh *shard, u int, c *cell) {
	dst := s.flow(c.flow).dst
	if int32(u) == dst {
		// A cell queued at its destination as a relay waypoint (e.g. an
		// ORN digit path crossing dst mid-route) is delivered in place
		// rather than re-routed. If it never left its source the fresh
		// accounting still charges it as queued there; consume it
		// before it disappears into the delivery counters.
		if c.fresh {
			s.noteFreshConsumed(sh, u, int(dst))
		}
		done := cell{flow: c.flow, n: 1, idx: 1}
		done.waypoints[0] = int16(dst)
		s.deliver(sh, u, &done)
		return
	}
	buf := s.routeBuf
	if sh != nil {
		buf = sh.routeBuf
	}
	p := s.router.RouteInto(buf[:0], u, int(dst), int(s.slot), &s.nodeRngs[u])
	if sh != nil {
		sh.routeBuf = p
	} else {
		s.routeBuf = p
	}
	nc := *c
	nc.n = int8(len(p) - 1)
	nc.idx = 0
	for h := 1; h < len(p); h++ {
		nc.waypoints[h-1] = int16(p[h])
	}
	s.enqueue(sh, u, &nc)
}

// FlowsCompleted returns how many injected flows have finished.
func (s *Sim) FlowsCompleted() int {
	done := 0
	s.eachFlow(func(f *FlowState) {
		if f.done >= 0 {
			done++
		}
	})
	return done
}

// AffectedPairs returns the fraction of distinct (src, dst) pairs with
// injected traffic that lost at least one cell — the packet-level blast
// radius of the injected failures.
func (s *Sim) AffectedPairs() float64 {
	type pair struct{ s, d int32 }
	seen := map[pair]bool{}
	hit := map[pair]bool{}
	s.eachFlow(func(f *FlowState) {
		p := pair{f.src, f.dst}
		seen[p] = true
		if f.lost > 0 {
			hit[p] = true
		}
	})
	if len(seen) == 0 {
		return 0
	}
	return float64(len(hit)) / float64(len(seen))
}

// ReconfigureGraceful performs the §5 update protocol: identify the
// circuits the new schedule removes, keep running until the queues on
// those circuits drain (or maxDrainSlots elapse), then swap. It returns
// the number of slots spent draining and the number of cells that had to
// be force-re-routed because the drain window expired. A SORN q
// rebalance (fixed neighbor superset) drains in zero slots.
func (s *Sim) ReconfigureGraceful(sched *matching.Schedule, router routing.Router, maxDrainSlots int64) (drainSlots, rerouted int64, err error) {
	if err := sched.Validate(); err != nil {
		return 0, 0, err
	}
	if sched.N != s.n {
		return 0, 0, fmt.Errorf("netsim: new schedule over %d nodes, sim over %d", sched.N, s.n)
	}
	newCS := newCircuitSet(sched)
	removedBacklog := func() int64 {
		total := int64(0)
		for u := 0; u < s.n; u++ {
			row := s.voq[u]
			if row == nil {
				continue
			}
			// Only circuits the old schedule opens can hold queued
			// cells, so walking the old neighbor lists covers every
			// removed-circuit queue in O(n·degree), not O(n²).
			for _, v := range s.circuits.nbr[u] {
				if !newCS.has(u, int(v)) {
					total += int64(row[v].len())
				}
			}
		}
		return total
	}
	for drainSlots = 0; drainSlots < maxDrainSlots; drainSlots++ {
		if removedBacklog() == 0 {
			break
		}
		s.Step()
	}
	stranded := removedBacklog()
	if s.obs != nil {
		s.obs.Emit(obs.Event{Slot: s.slot, Type: obs.EvReconfigDrain, Src: -1, Dst: -1,
			Val: float64(drainSlots), Cells: stranded})
	}
	if err := s.Reconfigure(sched, router); err != nil {
		return drainSlots, 0, err
	}
	return drainSlots, stranded, nil
}
