package netsim

import (
	"fmt"

	"repro/internal/stats"
)

// BitIdentical reports whether o equals s exactly: every counter and
// every sample stream, bit for bit and in insertion order. This is the
// package's determinism contract — Workers, Sim.Reset reuse, and an
// attached observer must never change Stats — stated once so the
// determinism test suites and the differential oracle harness share it.
// On mismatch the returned string names the first differing field.
func (s *Stats) BitIdentical(o *Stats) (diff string, ok bool) {
	type counter struct {
		name string
		a, b int64
	}
	for _, c := range []counter{
		{"DeliveredCells", s.DeliveredCells, o.DeliveredCells},
		{"InjectedCells", s.InjectedCells, o.InjectedCells},
		{"SentCells", s.SentCells, o.SentCells},
		{"IdleSlots", s.IdleSlots, o.IdleSlots},
		{"LostCells", s.LostCells, o.LostCells},
		{"DroppedCells", s.DroppedCells, o.DroppedCells},
		{"MeasuredSlots", s.MeasuredSlots, o.MeasuredSlots},
		{"CompletedFlows", s.CompletedFlows, o.CompletedFlows},
		{"Planes", int64(s.Planes), int64(o.Planes)},
	} {
		if c.a != c.b {
			return fmt.Sprintf("%s: %d vs %d", c.name, c.a, c.b), false
		}
	}
	if d, ok := sampleBitIdentical("LatencySlots", &s.LatencySlots, &o.LatencySlots); !ok {
		return d, false
	}
	if d, ok := sampleBitIdentical("FCTSlots", &s.FCTSlots, &o.FCTSlots); !ok {
		return d, false
	}
	for i := range s.LatencyByHops {
		name := fmt.Sprintf("LatencyByHops[%d]", i)
		if d, ok := sampleBitIdentical(name, &s.LatencyByHops[i], &o.LatencyByHops[i]); !ok {
			return d, false
		}
	}
	return "", true
}

func sampleBitIdentical(name string, a, b *stats.Sample) (string, bool) {
	av, bv := a.Values(), b.Values()
	if len(av) != len(bv) {
		return fmt.Sprintf("%s: %d vs %d observations", name, len(av), len(bv)), false
	}
	for i := range av {
		//sornlint:ignore floateq -- bit-identity is the determinism contract
		if av[i] != bv[i] {
			return fmt.Sprintf("%s[%d]: %v vs %v", name, i, av[i], bv[i]), false
		}
	}
	return "", true
}
