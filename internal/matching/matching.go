// Package matching models the circuit-switched connectivity primitive of
// reconfigurable datacenter networks: permutation matchings between node
// ports, and schedules of matchings cycled synchronously across time slots.
//
// In a wavelength-selective OCS setup (Sirius-style AWGRs), transmitting
// wavelength λi in a slot realizes matching mi: every node s is connected,
// for that slot, to node mi[s]. A Schedule is the periodic sequence of
// matchings all nodes follow; together the slots emulate a static logical
// topology whose edge bandwidths are proportional to how often each circuit
// appears (paper §4, Figures 1 and 2).
package matching

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sortedmap"
)

// Matching is a directed circuit assignment for one time slot: node s
// transmits to Matching[s]. A valid matching is a permutation of [0, N)
// with no fixed points (a node never circuits to itself).
type Matching []int

// CyclicShift returns the matching m[s] = (s + k) mod n, the connectivity
// a k-th wavelength realizes through an n-port AWGR. k must be in [1, n).
func CyclicShift(n, k int) Matching {
	if k <= 0 || k >= n {
		panic(fmt.Sprintf("matching: CyclicShift shift %d out of range for n=%d", k, n))
	}
	m := make(Matching, n)
	for s := range m {
		m[s] = (s + k) % n
	}
	return m
}

// Validate reports whether m is a permutation of [0, len(m)) with no
// self-circuits.
func (m Matching) Validate() error {
	seen := make([]bool, len(m))
	for s, d := range m {
		if d < 0 || d >= len(m) {
			return fmt.Errorf("matching: node %d circuits to out-of-range %d", s, d)
		}
		if d == s {
			return fmt.Errorf("matching: node %d circuits to itself", s)
		}
		if seen[d] {
			return fmt.Errorf("matching: destination %d appears twice", d)
		}
		seen[d] = true
	}
	return nil
}

// Inverse returns the matching's inverse permutation: for each destination
// d, Inverse()[d] is the node transmitting to d.
func (m Matching) Inverse() Matching {
	inv := make(Matching, len(m))
	for s, d := range m {
		inv[d] = s
	}
	return inv
}

// Equal reports whether two matchings are identical.
func (m Matching) Equal(o Matching) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// Schedule is a periodic sequence of matchings over n nodes: in absolute
// slot t, every node s is circuited to Slots[t mod len(Slots)][s].
type Schedule struct {
	N     int
	Slots []Matching
}

// Period returns the number of slots before the schedule repeats.
func (s *Schedule) Period() int { return len(s.Slots) }

// Validate checks that every slot is a valid matching over N nodes.
func (s *Schedule) Validate() error {
	if s.N <= 1 {
		return fmt.Errorf("matching: schedule needs at least 2 nodes, got %d", s.N)
	}
	if len(s.Slots) == 0 {
		return fmt.Errorf("matching: schedule has no slots")
	}
	for t, m := range s.Slots {
		if len(m) != s.N {
			return fmt.Errorf("matching: slot %d has %d entries, want %d", t, len(m), s.N)
		}
		if err := m.Validate(); err != nil {
			return fmt.Errorf("matching: slot %d: %w", t, err)
		}
	}
	return nil
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{N: s.N, Slots: make([]Matching, len(s.Slots))}
	for i, m := range s.Slots {
		c.Slots[i] = make(Matching, len(m))
		copy(c.Slots[i], m)
	}
	return c
}

// Relabel returns the schedule of the node-relabeled network: with perm
// a permutation of [0, N), node u of the original becomes node perm[u],
// so slot t's matching m becomes perm ∘ m ∘ perm⁻¹. Relabeling is a pure
// renaming — throughput and latency of any label-oblivious scheme are
// invariant under it, which the oracle harness checks.
func (s *Schedule) Relabel(perm []int) (*Schedule, error) {
	if len(perm) != s.N {
		return nil, fmt.Errorf("matching: relabel permutation over %d nodes, schedule over %d", len(perm), s.N)
	}
	if err := permValid(perm); err != nil {
		return nil, err
	}
	out := &Schedule{N: s.N, Slots: make([]Matching, len(s.Slots))}
	for i, m := range s.Slots {
		rm := make(Matching, len(m))
		for u, v := range m {
			rm[perm[u]] = perm[v]
		}
		out.Slots[i] = rm
	}
	return out, nil
}

// permValid checks that perm is a permutation of [0, len(perm)).
// Fixed points are fine here — this is a node renaming, not a matching.
func permValid(perm []int) error {
	seen := make([]bool, len(perm))
	for u, v := range perm {
		if v < 0 || v >= len(perm) || seen[v] {
			return fmt.Errorf("matching: invalid permutation entry %d->%d", u, v)
		}
		seen[v] = true
	}
	return nil
}

// Equal reports whether two schedules have identical periods and slots.
func (s *Schedule) Equal(o *Schedule) bool {
	if s.N != o.N || len(s.Slots) != len(o.Slots) {
		return false
	}
	for i, m := range s.Slots {
		if !m.Equal(o.Slots[i]) {
			return false
		}
	}
	return true
}

// DestAt returns the node that `node` is circuited to in absolute slot t.
func (s *Schedule) DestAt(node, t int) int {
	return s.Slots[t%len(s.Slots)][node]
}

// LinkFraction returns the fraction l of slots in which node u is circuited
// to node v; the virtual edge u→v then has bandwidth b·l for per-node
// bandwidth b (paper §4, "Topology").
func (s *Schedule) LinkFraction(u, v int) float64 {
	count := 0
	for _, m := range s.Slots {
		if m[u] == v {
			count++
		}
	}
	return float64(count) / float64(len(s.Slots))
}

// Neighbors returns the sorted set of destinations u ever circuits to.
// SORN's schedule updates preserve this superset per node (paper §5).
func (s *Schedule) Neighbors(u int) []int {
	set := map[int]bool{}
	for _, m := range s.Slots {
		set[m[u]] = true
	}
	return sortedmap.Keys(set)
}

// FullCoverage reports whether every ordered pair (u, v), u ≠ v, is
// connected in at least one slot — the uniform-connectivity property
// oblivious designs provide.
func (s *Schedule) FullCoverage() bool {
	for u := 0; u < s.N; u++ {
		if len(s.Neighbors(u)) != s.N-1 {
			return false
		}
	}
	return true
}

// String renders the schedule as the paper's Figure 1: one column per node,
// one row per time slot, cells holding the destination of each node.
func (s *Schedule) String() string {
	var b strings.Builder
	b.WriteString("slot")
	for n := 0; n < s.N; n++ {
		fmt.Fprintf(&b, "\t%s", nodeName(n, s.N))
	}
	b.WriteString("\n")
	for t, m := range s.Slots {
		fmt.Fprintf(&b, "%d", t+1)
		for n := 0; n < s.N; n++ {
			fmt.Fprintf(&b, "\t%s", nodeName(m[n], s.N))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// nodeName labels nodes A, B, C... for networks small enough for the
// paper's figures, and numerically otherwise.
func nodeName(n, total int) string {
	if total <= 26 {
		return string(rune('A' + n))
	}
	return fmt.Sprint(n)
}

// RoundRobin returns the flat 1D round-robin schedule of Figure 1: n−1
// slots, slot t realizing the cyclic shift by t+1. Every ordered pair gets
// exactly one slot per period, emulating a uniform clique.
func RoundRobin(n int) *Schedule {
	if n < 2 {
		panic("matching: RoundRobin needs n >= 2")
	}
	s := &Schedule{N: n}
	for k := 1; k < n; k++ {
		s.Slots = append(s.Slots, CyclicShift(n, k))
	}
	return s
}

// AWGRMatchings returns the full set of matchings an n-port wavelength-
// selective OCS offers: one cyclic shift per usable wavelength, as in
// Figure 2(a)/(b). Element i (0-based) is matching m_{i+1}.
func AWGRMatchings(n int) []Matching {
	out := make([]Matching, 0, n-1)
	for k := 1; k < n; k++ {
		out = append(out, CyclicShift(n, k))
	}
	return out
}

// CircuitSet returns the schedule's u→v circuit-existence bitmap,
// indexed u*N+v: true iff u is circuited to v in at least one slot. The
// simulator uses it to detect circuits a reconfiguration removed.
func CircuitSet(s *Schedule) []bool {
	n := s.N
	has := make([]bool, n*n)
	for _, m := range s.Slots {
		for u, v := range m {
			has[u*n+v] = true
		}
	}
	return has
}

// Compiled is a schedule indexed for O(log P) next-circuit queries, the
// hot operation of both the routing model and the slotted simulator.
type Compiled struct {
	sched *Schedule
	// slotsTo[u][v] lists, in increasing order, the slots within one
	// period in which u is circuited to v.
	slotsTo [][][]int32
}

// Compile indexes the schedule. The index is immutable afterwards.
func Compile(s *Schedule) *Compiled {
	c := &Compiled{sched: s}
	c.slotsTo = make([][][]int32, s.N)
	for u := range c.slotsTo {
		c.slotsTo[u] = make([][]int32, s.N)
	}
	for t, m := range s.Slots {
		for u, v := range m {
			c.slotsTo[u][v] = append(c.slotsTo[u][v], int32(t))
		}
	}
	return c
}

// Schedule returns the underlying schedule.
func (c *Compiled) Schedule() *Schedule { return c.sched }

// HasCircuit reports whether u ever circuits to v.
func (c *Compiled) HasCircuit(u, v int) bool { return len(c.slotsTo[u][v]) > 0 }

// NextSlot returns the first absolute slot >= from in which u is circuited
// to v, and whether any such circuit exists in the schedule.
func (c *Compiled) NextSlot(u, v, from int) (int, bool) {
	slots := c.slotsTo[u][v]
	if len(slots) == 0 {
		return 0, false
	}
	p := len(c.sched.Slots)
	base := from / p * p
	phase := int32(from % p)
	// Binary search for the first in-period slot >= phase.
	i := sort.Search(len(slots), func(i int) bool { return slots[i] >= phase })
	if i < len(slots) {
		return base + int(slots[i]), true
	}
	return base + p + int(slots[0]), true
}

// WaitSlots returns the number of slots u must wait, starting at slot
// `from`, until its next circuit to v (0 when the circuit is active now).
func (c *Compiled) WaitSlots(u, v, from int) (int, bool) {
	next, ok := c.NextSlot(u, v, from)
	if !ok {
		return 0, false
	}
	return next - from, true
}

// MaxWait returns the worst-case number of slots u can wait for its
// circuit to v (the intrinsic latency contribution of this hop), i.e. the
// largest gap between consecutive occurrences within the period.
func (c *Compiled) MaxWait(u, v int) (int, bool) {
	slots := c.slotsTo[u][v]
	if len(slots) == 0 {
		return 0, false
	}
	p := len(c.sched.Slots)
	max := 0
	for i := range slots {
		var gap int
		if i == 0 {
			gap = int(slots[0]) + p - int(slots[len(slots)-1])
		} else {
			gap = int(slots[i]) - int(slots[i-1])
		}
		if gap > max {
			max = gap
		}
	}
	// A packet arriving immediately after a circuit closes waits gap−1
	// slots for the next occurrence; we report the conservative gap.
	return max, true
}
