package matching

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestCyclicShiftValid(t *testing.T) {
	for n := 2; n <= 16; n++ {
		for k := 1; k < n; k++ {
			m := CyclicShift(n, k)
			if err := m.Validate(); err != nil {
				t.Fatalf("CyclicShift(%d,%d): %v", n, k, err)
			}
		}
	}
}

func TestCyclicShiftPanics(t *testing.T) {
	for _, k := range []int{0, 8, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CyclicShift(8,%d) did not panic", k)
				}
			}()
			CyclicShift(8, k)
		}()
	}
}

func TestValidateRejectsBadMatchings(t *testing.T) {
	cases := []Matching{
		{0, 1, 2},    // all self loops
		{1, 0, 3, 3}, // duplicate destination
		{1, 2, 5},    // out of range
		{1, 0, 2},    // self loop at 2
	}
	for i, m := range cases {
		if m.Validate() == nil {
			t.Errorf("case %d: invalid matching accepted", i)
		}
	}
}

func TestInverse(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(30)
		m := CyclicShift(n, 1+r.Intn(n-1))
		inv := m.Inverse()
		for s, d := range m {
			if inv[d] != s {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundRobinMatchesFigure1(t *testing.T) {
	// Figure 1: 5 nodes A-E, 4 slots. Slot 1: A->B, B->C, C->D, D->E, E->A.
	s := RoundRobin(5)
	if s.Period() != 4 {
		t.Fatalf("period = %d, want 4", s.Period())
	}
	want := [][]int{
		{1, 2, 3, 4, 0}, // B C D E A
		{2, 3, 4, 0, 1}, // C D E A B
		{3, 4, 0, 1, 2}, // D E A B C
		{4, 0, 1, 2, 3}, // E A B C D
	}
	for t1, row := range want {
		for n, dst := range row {
			if got := s.DestAt(n, t1); got != dst {
				t.Errorf("slot %d node %d: got %d want %d", t1, n, got, dst)
			}
		}
	}
	out := s.String()
	if !strings.Contains(out, "B\tC\tD\tE\tA") {
		t.Errorf("Figure 1 rendering wrong:\n%s", out)
	}
}

func TestRoundRobinProperties(t *testing.T) {
	for _, n := range []int{2, 3, 8, 17, 64} {
		s := RoundRobin(n)
		if err := s.Validate(); err != nil {
			t.Fatalf("RoundRobin(%d): %v", n, err)
		}
		if !s.FullCoverage() {
			t.Fatalf("RoundRobin(%d) lacks full coverage", n)
		}
		// Uniform connectivity: every pair exactly once per period.
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				if f := s.LinkFraction(u, v); f != 1/float64(n-1) {
					t.Fatalf("RoundRobin(%d) link %d->%d fraction %f", n, u, v, f)
				}
			}
		}
	}
}

func TestAWGRMatchings(t *testing.T) {
	ms := AWGRMatchings(8)
	if len(ms) != 7 {
		t.Fatalf("8-port AWGR should offer 7 matchings, got %d", len(ms))
	}
	for i, m := range ms {
		if err := m.Validate(); err != nil {
			t.Fatalf("m%d: %v", i+1, err)
		}
		for j := 0; j < i; j++ {
			if m.Equal(ms[j]) {
				t.Fatalf("matchings %d and %d identical", i, j)
			}
		}
	}
}

func TestScheduleValidateErrors(t *testing.T) {
	bad := []*Schedule{
		{N: 1, Slots: []Matching{{0}}},
		{N: 4},
		{N: 4, Slots: []Matching{{1, 0}}},
		{N: 3, Slots: []Matching{{0, 1, 2}}},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d: invalid schedule accepted", i)
		}
	}
}

func TestNeighborsAndDestAtWrap(t *testing.T) {
	s := RoundRobin(4)
	nb := s.Neighbors(0)
	if len(nb) != 3 || nb[0] != 1 || nb[2] != 3 {
		t.Fatalf("neighbors of 0: %v", nb)
	}
	// DestAt must wrap modulo the period.
	if s.DestAt(2, 0) != s.DestAt(2, s.Period()) {
		t.Fatal("DestAt does not wrap")
	}
}

func TestCompiledNextSlot(t *testing.T) {
	s := RoundRobin(5)
	c := Compile(s)
	// Node 0 connects to node 3 in slot 2 (shift 3).
	got, ok := c.NextSlot(0, 3, 0)
	if !ok || got != 2 {
		t.Fatalf("NextSlot(0,3,0) = %d,%v want 2,true", got, ok)
	}
	// From slot 3, the next occurrence is in the following period: 4+2=6.
	got, ok = c.NextSlot(0, 3, 3)
	if !ok || got != 6 {
		t.Fatalf("NextSlot(0,3,3) = %d,%v want 6,true", got, ok)
	}
	// From exactly slot 2 the circuit is active now.
	if w, _ := c.WaitSlots(0, 3, 2); w != 0 {
		t.Fatalf("WaitSlots at active slot = %d", w)
	}
	if _, ok := c.NextSlot(0, 0, 0); ok {
		t.Fatal("self circuit should not exist")
	}
}

func TestCompiledNextSlotAgainstScan(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(20)
		s := RoundRobin(n)
		c := Compile(s)
		for trial := 0; trial < 20; trial++ {
			u := r.Intn(n)
			v := r.Intn(n)
			if u == v {
				continue
			}
			from := r.Intn(3 * s.Period())
			got, ok := c.NextSlot(u, v, from)
			if !ok {
				return false
			}
			// Naive scan.
			want := from
			for s.DestAt(u, want) != v {
				want++
			}
			if got != want {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxWaitRoundRobin(t *testing.T) {
	s := RoundRobin(8)
	c := Compile(s)
	// Each circuit appears once per period of 7, so the max gap is 7.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			if u == v {
				continue
			}
			w, ok := c.MaxWait(u, v)
			if !ok || w != 7 {
				t.Fatalf("MaxWait(%d,%d) = %d,%v", u, v, w, ok)
			}
		}
	}
	if _, ok := c.MaxWait(0, 0); ok {
		t.Fatal("MaxWait for absent circuit should report false")
	}
}

func TestHasCircuit(t *testing.T) {
	s := &Schedule{N: 4, Slots: []Matching{{1, 0, 3, 2}}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	c := Compile(s)
	if !c.HasCircuit(0, 1) || c.HasCircuit(0, 2) {
		t.Fatal("HasCircuit wrong")
	}
	if c.Schedule() != s {
		t.Fatal("Schedule() accessor wrong")
	}
}

func BenchmarkCompile(b *testing.B) {
	s := RoundRobin(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compile(s)
	}
}

func BenchmarkNextSlot(b *testing.B) {
	c := Compile(RoundRobin(256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.NextSlot(i%256, (i+7)%256, i)
	}
}

func TestNodeNameLargeNetwork(t *testing.T) {
	// Networks beyond 26 nodes render numerically.
	s := RoundRobin(30)
	out := s.String()
	if !strings.Contains(out, "29") {
		t.Fatalf("numeric labels missing:\n%s", out[:120])
	}
}

func TestEqualMismatchedLengths(t *testing.T) {
	a := CyclicShift(4, 1)
	b := CyclicShift(6, 1)
	if a.Equal(b) {
		t.Fatal("different-size matchings reported equal")
	}
}

func TestScheduleCloneIndependent(t *testing.T) {
	s := RoundRobin(6)
	c := s.Clone()
	c.Slots[0][0] = 5
	if s.Slots[0][0] == 5 {
		t.Fatal("clone shares slot storage")
	}
	if c.N != s.N || c.Period() != s.Period() {
		t.Fatal("clone shape wrong")
	}
}

func TestRoundRobinPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RoundRobin(1) did not panic")
		}
	}()
	RoundRobin(1)
}

func TestCircuitSetMatchesCompiled(t *testing.T) {
	// CircuitSet is the flat bitmap the simulator indexes per landing
	// cell; it must agree with Compiled.HasCircuit on random schedules.
	r := rng.New(77)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(10)
		s := &Schedule{N: n}
		for k := 1 + r.Intn(6); k > 0; k-- {
			s.Slots = append(s.Slots, CyclicShift(n, 1+r.Intn(n-1)))
		}
		set := CircuitSet(s)
		c := Compile(s)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if set[u*n+v] != c.HasCircuit(u, v) {
					t.Fatalf("n=%d: CircuitSet[%d→%d] = %v, HasCircuit = %v",
						n, u, v, set[u*n+v], c.HasCircuit(u, v))
				}
			}
		}
	}
}
