// Package repro's root benchmarks regenerate every table and figure of
// the paper (and the DESIGN.md ablations) via the same code paths as the
// cmd/ binaries, reporting the headline numbers as benchmark metrics:
//
//	go test -bench=. -benchmem
//
// Metric conventions: thpt_* are throughput fractions (the paper's r),
// lat_us_* are minimum worst-case latencies in microseconds, blast_* are
// affected-pair fractions.
//
// The netsim-heavy subset (BenchmarkFigure2fSimulated plus the
// internal/netsim micro-benchmarks) is tracked across PRs in the
// BENCH_netsim.json ledger — record a labeled run with
// ./scripts/bench.sh (see EXPERIMENTS.md, "Benchmarking").
package repro_test

import (
	"flag"
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/matching"
	"repro/internal/model"
	"repro/internal/ocs"
	"repro/internal/phys"
	"repro/internal/schedule"
)

// benchSweepFresh disables cross-point simulator reuse in the sweep
// benchmarks, so the CI gate can price the netsim.Reset reuse path as an
// A/B against fresh per-point allocation:
//
//	go test -run NONE -bench Fig2fSweepQuick                   # pooled
//	go test -run NONE -bench Fig2fSweepQuick -benchsweepfresh  # fresh
var benchSweepFresh = flag.Bool("benchsweepfresh", false,
	"allocate a fresh simulator per sweep point instead of reusing pooled ones")

// benchDense runs the sweep benchmarks' simulations on netsim's dense
// reference engine instead of the default active-set engine, so the
// ci.sh dense-vs-active gate can price the two on one machine:
//
//	go test -run NONE -bench Fig2fSweepQuick             # active-set
//	go test -run NONE -bench Fig2fSweepQuick -benchdense # dense oracle
var benchDense = flag.Bool("benchdense", false,
	"run simulations on the dense reference engine instead of the active-set engine")

// reportSweepMetrics records the ledger metadata benchjson renders for
// sweep benchmarks: the point count and the wall-clock cost per point.
func reportSweepMetrics(b *testing.B, points int) {
	b.ReportMetric(float64(points), "points")
	b.ReportMetric(b.Elapsed().Seconds()*1000/float64(b.N)/float64(points), "ms/point")
}

// BenchmarkTable1 regenerates the paper's Table 1 and reports each row's
// minimum latency and throughput as metrics.
func BenchmarkTable1(b *testing.B) {
	var rows []model.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = model.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := metricName(r.System, r.Variant)
		b.ReportMetric(r.MinLatencyMicros(), "lat_us_"+name)
		b.ReportMetric(r.Throughput, "thpt_"+name)
	}
}

// BenchmarkFigure1RoundRobin regenerates Figure 1 (the 5-node round-robin
// schedule) and benchmarks schedule construction + validation.
func BenchmarkFigure1RoundRobin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := matching.RoundRobin(5)
		if err := s.Validate(); err != nil {
			b.Fatal(err)
		}
		if s.Period() != 4 {
			b.Fatal("figure 1 shape wrong")
		}
	}
}

// BenchmarkFigure2bMatchings regenerates Figure 2(b): the matchings an
// 8-port wavelength-selective OCS offers.
func BenchmarkFigure2bMatchings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw, err := ocs.NewAWGR(8)
		if err != nil {
			b.Fatal(err)
		}
		for k := 1; k <= sw.NumWavelengths(); k++ {
			if err := sw.Matching(k).Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure2dTopologyA regenerates Figure 2(d): two cliques of
// four at q=3, including the node wavelength state of Figure 2(c).
func BenchmarkFigure2dTopologyA(b *testing.B) {
	var q float64
	for i := 0; i < b.N; i++ {
		a := schedule.TopologyA()
		sw, err := ocs.NewAWGR(8)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ocs.CompileNodeStates(sw, a.Schedule); err != nil {
			b.Fatal(err)
		}
		q = a.RealizedQ
	}
	b.ReportMetric(q, "q_topologyA")
}

// BenchmarkFigure2eTopologyB regenerates Figure 2(e): four cliques of two.
func BenchmarkFigure2eTopologyB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := schedule.TopologyB()
		if err := t.Schedule.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2fTheory reports the r = 1/(3−x) series.
func BenchmarkFigure2fTheory(b *testing.B) {
	var r0, r56, r100 float64
	for i := 0; i < b.N; i++ {
		r0 = model.SORNThroughput(0)
		r56 = model.SORNThroughput(0.56)
		r100 = model.SORNThroughput(1)
	}
	b.ReportMetric(r0, "thpt_x0.0")
	b.ReportMetric(r56, "thpt_x0.56")
	b.ReportMetric(r100, "thpt_x1.0")
}

// BenchmarkFigure2fFluid runs the exact link-load series of Figure 2(f)
// over the built 128-node / 8-clique schedules.
func BenchmarkFigure2fFluid(b *testing.B) {
	cfg := experiments.DefaultFig2fConfig()
	cfg.RunSim = false
	cfg.Step = 0.25
	var pts []experiments.Fig2fPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig2f(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.Fluid, fmt.Sprintf("thpt_x%.2f", p.X))
	}
}

// BenchmarkFigure2fSimulated runs the packet-level series of Figure 2(f)
// at a reduced sweep (x ∈ {0, 0.5, 1}) with the paper's 128-node /
// 8-clique / pFabric-web-search setup.
func BenchmarkFigure2fSimulated(b *testing.B) {
	cfg := experiments.DefaultFig2fConfig()
	cfg.Step = 0.5
	cfg.WarmupSlots, cfg.MeasureSlots = 15000, 15000
	var pts []experiments.Fig2fPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig2f(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.Sim, fmt.Sprintf("thpt_x%.2f", p.X))
	}
}

// BenchmarkFig2fSweep runs the paper's full default Figure 2(f) sweep
// (eleven x points, 25000+25000 slots each) through the bounded-parallel
// sweep engine with the shared build cache and pooled simulators — the
// headline wall-clock number for the sweep engine, tracked in the
// BENCH_netsim.json ledger. -benchsweepfresh disables the simulator pool.
func BenchmarkFig2fSweep(b *testing.B) {
	cfg := experiments.DefaultFig2fConfig()
	cfg.NoSimReuse = *benchSweepFresh
	cfg.Dense = *benchDense
	var pts []experiments.Fig2fPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig2f(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[len(pts)-1].Sim, "thpt_x1.00")
	reportSweepMetrics(b, len(pts))
}

// BenchmarkFig2fSweepQuick is the CI-sized variant of BenchmarkFig2fSweep
// (three x points, 1500+1500 slots): fast enough for the ci.sh fresh-vs-
// pooled A/B gate, same code path as the full sweep.
func BenchmarkFig2fSweepQuick(b *testing.B) {
	cfg := experiments.DefaultFig2fConfig()
	cfg.N, cfg.Nc = 64, 8
	cfg.Step = 0.5
	cfg.WarmupSlots, cfg.MeasureSlots = 1500, 1500
	cfg.SizeCap = 512
	cfg.NoSimReuse = *benchSweepFresh
	cfg.Dense = *benchDense
	var pts []experiments.Fig2fPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig2f(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSweepMetrics(b, len(pts))
}

// BenchmarkQSweep prices the analytical q-sweep (A2 at ledger scale:
// nine q values through the shared build cache) under the sweep engine.
func BenchmarkQSweep(b *testing.B) {
	qs := []float64{1, 1.5, 2, 3, model.SORNQ(0.56), 5, 6, 8, 12}
	var pts []experiments.QSweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.QSweep(64, 8, 0.56, qs, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSweepMetrics(b, len(pts))
}

// BenchmarkAblationLocalityMismatch (A1) reports throughput with a
// mis-estimated locality x̂=0.5 against actual x ∈ {0.3, 0.7}.
func BenchmarkAblationLocalityMismatch(b *testing.B) {
	var pts []experiments.MismatchPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.LocalityMismatch(64, 8, []float64{0.5}, []float64{0.3, 0.5, 0.7}, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.Fluid, fmt.Sprintf("thpt_planned%.1f_actual%.1f", p.XPlanned, p.XActual))
	}
}

// BenchmarkAblationQSweep (A2) reports the throughput knee around
// q* = 2/(1−x) at x=0.56.
func BenchmarkAblationQSweep(b *testing.B) {
	qs := []float64{2, model.SORNQ(0.56), 8}
	var pts []experiments.QSweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.QSweep(64, 8, 0.56, qs, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.Fluid, fmt.Sprintf("thpt_q%.1f", p.Q))
	}
}

// BenchmarkAblationNcSweep (A3) reports the Table 1 latency split
// generalized across clique counts.
func BenchmarkAblationNcSweep(b *testing.B) {
	var rows []experiments.NcSweepRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.NcSweep(model.Table1Params(), 0.56, []int{16, 64, 256}, 256, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.IntraLatNS/1000, fmt.Sprintf("lat_us_intra_nc%d", r.Nc))
		b.ReportMetric(r.InterLatNS/1000, fmt.Sprintf("lat_us_inter_nc%d", r.Nc))
	}
}

// BenchmarkAblationBlastRadius (A4) reports the failure blast radius of
// SORN versus the flat 1D ORN.
func BenchmarkAblationBlastRadius(b *testing.B) {
	var rows []experiments.BlastRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.BlastRadius(64, 8, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].NodeBlast, "blast_node_sorn")
	b.ReportMetric(rows[1].NodeBlast, "blast_node_flat")
}

// BenchmarkAblationAdaptation (A5) runs the packet-level workload-shift /
// reconfigure experiment and reports per-phase throughput.
func BenchmarkAblationAdaptation(b *testing.B) {
	var phases []experiments.AdaptationPhase
	for i := 0; i < b.N; i++ {
		var err error
		phases, err = experiments.Adaptation(experiments.AdaptationConfig{
			N: 64, Nc: 8, X1: 0.2, X2: 0.8, PhaseSlots: 6000, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(phases[0].Throughput, "thpt_matched")
	b.ReportMetric(phases[1].Throughput, "thpt_stale")
	b.ReportMetric(phases[2].Throughput, "thpt_adapted")
}

// BenchmarkAblationGravity (A6) reports throughput under gravity-skewed
// aggregate demand.
func BenchmarkAblationGravity(b *testing.B) {
	mass := []float64{4, 2, 2, 1, 1, 1, 1, 1}
	var pts []experiments.GravityPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Gravity(64, 8, mass, []float64{1, 2, 4}, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.Theta, fmt.Sprintf("thpt_q%.1f", p.Q))
	}
}

// BenchmarkAblationExpressivity (A7) reports the §5 demand-aware (BvN)
// schedule against the uniform inter-clique allocation under partnered
// clique traffic.
func BenchmarkAblationExpressivity(b *testing.B) {
	var rows []experiments.ExpressivityRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Expressivity(64, 8, 3, 0.2, 0.6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Theta, "thpt_uniform")
	b.ReportMetric(rows[1].Theta, "thpt_demand_aware")
}

// BenchmarkLatencyOrdering (L1) measures Table 1's latency ordering in
// the packet simulator at light load.
func BenchmarkLatencyOrdering(b *testing.B) {
	var rows []experiments.LatencyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.LatencyComparison(64, 8, 1, 0.05, 17, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.P50us, "lat_us_p50_"+metricName(r.Design, r.Class))
	}
}

// BenchmarkAblationPlaneSweep (U1) reports p50 latency vs uplink count.
func BenchmarkAblationPlaneSweep(b *testing.B) {
	var pts []experiments.PlanePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.PlaneSweep(experiments.PlaneSweepConfig{
			N: 64, Nc: 8, X: 0.56, Planes: []int{1, 16}, Load: 0.05, Seed: 19,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.P50us, fmt.Sprintf("lat_us_p50_planes%d", p.Planes))
	}
}

// BenchmarkAblationSyncOverhead (S1) reports effective throughput after
// synchronization guards at 100 ns slots.
func BenchmarkAblationSyncOverhead(b *testing.B) {
	var rows []experiments.SyncRow
	for i := 0; i < b.N; i++ {
		rows = experiments.SyncOverhead(4096, 64, 0.56, 4, []float64{100})
	}
	b.ReportMetric(rows[0].SORNThpt, "thpt_sorn_100ns")
	b.ReportMetric(rows[0].FlatThpt, "thpt_flat_100ns")
}

// BenchmarkAblationStateScaling (S2) reports per-node NIC state at 4096
// nodes.
func BenchmarkAblationStateScaling(b *testing.B) {
	var rows []experiments.StateRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.StateScaling([]int{4096}, 0.56)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].SORNStateBytes), "bytes_sorn")
	b.ReportMetric(float64(rows[0].FlatStateBytes), "bytes_flat")
}

// BenchmarkAblationDiurnal (A8) reports mean throughput while tracking a
// sinusoidal locality cycle.
func BenchmarkAblationDiurnal(b *testing.B) {
	var pts []experiments.DiurnalPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Diurnal(experiments.DiurnalConfig{
			N: 64, Nc: 8, Lo: 0.2, Hi: 0.8, Period: 12, Epochs: 24,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	a, s, c := experiments.DiurnalSummary(pts)
	b.ReportMetric(a, "thpt_adaptive")
	b.ReportMetric(s, "thpt_static")
	b.ReportMetric(c, "thpt_clairvoyant")
}

// BenchmarkAblationPhysFeasibility (P1) reports the §5 port costs of the
// boundary clique sizes on the paper's deployment.
func BenchmarkAblationPhysFeasibility(b *testing.B) {
	var need2048, needFlat int
	for i := 0; i < b.N; i++ {
		var err error
		need2048, err = phys.PortsForCliqueSize(4096, 256, 2048)
		if err != nil {
			b.Fatal(err)
		}
		needFlat, err = phys.PortsForCliqueSize(4096, 256, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(need2048), "ports_k2048")
	b.ReportMetric(float64(needFlat), "ports_flat")
}

// BenchmarkFCTvsLoad (F1) reports short-flow FCT medians at 10% load.
func BenchmarkFCTvsLoad(b *testing.B) {
	var pts []experiments.FCTPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.FCTvsLoad(experiments.FCTConfig{
			N: 64, Nc: 8, X: 0.56, Loads: []float64{0.1}, Slots: 15000, Seed: 37,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.ReportMetric(p.P50us, "fct_us_p50_"+metricName(p.Design, ""))
	}
}

// metricName flattens a Table 1 row identity into a metric suffix.
func metricName(system, variant string) string {
	out := make([]rune, 0, len(system)+len(variant)+1)
	for _, r := range system + "_" + variant {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r == ' ' || r == '-':
			out = append(out, '_')
		}
	}
	return string(out)
}
