// Reconfigure: the semi-oblivious control loop end to end. A workload's
// macro-pattern shifts (locality 0.2 → 0.8, e.g. a batch job finishing
// and a cache-heavy service scaling up); the control plane observes the
// aggregated clique traffic matrix, re-plans the oversubscription q, and
// rewrites the circuit schedule — drain-free, because the clique
// structure (and hence every node's neighbor superset) is unchanged.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/workload"
)

func main() {
	const n, nc = 64, 8
	adaptive, err := core.NewAdaptive(n, nc, 0.2, false)
	if err != nil {
		log.Fatal(err)
	}
	cl := adaptive.Network.SORN.Cliques

	// Epoch 1: the control plane observes a low-locality aggregate TM.
	tm1, err := workload.Locality(cl, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	plan1, err := adaptive.Adapt(tm1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch 1: observed locality %.2f -> q=%.2f, predicted r=%.4f\n",
		plan1.X, plan1.Q, plan1.PredictedR)

	// A packet simulation runs while the workload shifts underneath.
	sim, err := adaptive.Network.NewSim(core.SimOptions{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	measure := func(label string, tm *workload.Matrix) {
		st, err := sim.RunSaturated(netsim.SaturationConfig{
			TM: tm, Size: workload.FixedSize(8), TargetBacklog: 512,
			WarmupSlots: 3000, MeasureSlots: 9000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s measured r = %.4f\n", label, st.Throughput(n))
		*st = netsim.Stats{}
	}
	measure("matched (x=0.2):", tm1)

	// The workload shifts: locality jumps to 0.8.
	tm2, err := workload.Locality(cl, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	measure("shifted, stale schedule:", tm2)

	// The control plane folds several epochs of the new pattern into its
	// EWMA, re-plans, and the fabric reconfigures at a slot boundary.
	var plan2 = plan1
	for epoch := 0; epoch < 5; epoch++ {
		plan2, err = adaptive.Adapt(tm2)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("epoch 2: observed locality %.2f -> q=%.2f, predicted r=%.4f\n",
		plan2.X, plan2.Q, plan2.PredictedR)
	if plan2.Update != nil {
		fmt.Printf("  schedule update: %d slot rewrites, %d queue drains required (drain-free: %v)\n",
			plan2.Update.TotalSlotChanges(), plan2.Update.DrainsRequired(),
			plan2.Update.PreservesNeighborSuperset())
	}
	drain, rerouted, err := sim.ReconfigureGraceful(adaptive.Network.Schedule, adaptive.Network.Router, 10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  graceful swap: %d drain slots, %d cells force-rerouted\n", drain, rerouted)
	measure("shifted, adapted schedule:", tm2)
}
