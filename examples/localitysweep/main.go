// Localitysweep: reproduce the Figure 2(f) sweep through the public API —
// worst-case throughput of SORN as traffic locality varies, against the
// 1D (50%) and 2D (25%) oblivious reference lines. Uses the fluid solver
// only, so it runs in milliseconds; see cmd/fig2f for the packet-level
// simulation series.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
)

func main() {
	const n, nc = 128, 8
	fmt.Printf("SORN worst-case throughput vs locality (N=%d, Nc=%d)\n\n", n, nc)
	fmt.Println("  x    theory   fluid    bar (1D ORN at 50%, 2D ORN at 25%)")
	for x := 0.0; x <= 1.001; x += 0.1 {
		if x > 1 {
			x = 1
		}
		nw, err := core.NewSORN(n, nc, x)
		if err != nil {
			log.Fatal(err)
		}
		tm, err := nw.LocalityMatrix(x)
		if err != nil {
			log.Fatal(err)
		}
		res, err := nw.Throughput(tm)
		if err != nil {
			log.Fatal(err)
		}
		bar := strings.Repeat("█", int(res.Theta*80))
		fmt.Printf("%5.2f  %.4f  %.4f  %s\n", x, model.SORNThroughput(x), res.Theta, bar)
	}
	fmt.Printf("\nreference:        1D ORN  %s| 0.50\n", strings.Repeat("·", 40))
	fmt.Printf("reference:        2D ORN  %s| 0.25\n", strings.Repeat("·", 20))
	fmt.Println("\nEven with zero locality SORN clears the 2D ORN's 25%, and approaches")
	fmt.Println("the 1D ORN's 50% as locality rises — at a fraction of the cycle time.")
}
