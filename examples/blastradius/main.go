// Blastradius: the paper's §6 "practicality" argument, measured. Flat
// oblivious designs route every pair through random intermediates, so a
// single node failure can touch flows between *any* pair. A modular
// semi-oblivious design confines most failures to one clique. This
// example quantifies both analytically (path distributions) and in the
// packet simulator (delivered cells with a dead node).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/workload"
)

func main() {
	const n, nc = 64, 8

	// Analytical: fraction of src-dst pairs whose routing can transit a
	// failed element.
	rows, err := experiments.BlastRadius(n, nc, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("analytical blast radius (fraction of pairs affected):")
	for _, r := range rows {
		fmt.Printf("  %-18s node: %.1f%%   intra link: %.1f%%   inter link: %.1f%%\n",
			r.Design, 100*r.NodeBlast, 100*r.IntraLink, 100*r.InterLink)
	}

	// Packet-level: kill node 1 and measure both the surviving
	// throughput and how many src-dst pairs are touched by the failure —
	// the fate-sharing that complicates diagnosis in flat designs.
	fmt.Println("\npacket-level, node 1 failed, saturated uniform traffic:")
	for _, build := range []func() (*core.Network, error){
		func() (*core.Network, error) { return core.NewSORN(n, nc, 0.5) },
		func() (*core.Network, error) { return core.NewORN1D(n) },
	} {
		nw, err := build()
		if err != nil {
			log.Fatal(err)
		}
		tm, err := nw.LocalityMatrix(0.5)
		if err != nil {
			log.Fatal(err)
		}
		healthy, _ := run(nw, tm, false)
		degraded, affected := run(nw, tm, true)
		fmt.Printf("  %-8s healthy r=%.4f  with failure r=%.4f (%.1f%% retained)  pairs touched: %.1f%%\n",
			nw.Kind, healthy, degraded, 100*degraded/healthy, 100*affected)
	}
	fmt.Println("\nBoth designs retain most aggregate throughput, but the flat design")
	fmt.Println("spreads the damage across nearly every pair, while SORN confines it.")
}

func run(nw *core.Network, tm *workload.Matrix, fail bool) (float64, float64) {
	sim, err := nw.NewSim(core.SimOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	if fail {
		sim.FailNode(1)
	}
	st, err := sim.RunSaturated(netsim.SaturationConfig{
		TM: tm, Size: workload.FixedSize(8), TargetBacklog: 512,
		WarmupSlots: 3000, MeasureSlots: 9000,
	})
	if err != nil {
		log.Fatal(err)
	}
	return st.Throughput(tm.N), sim.AffectedPairs()
}
