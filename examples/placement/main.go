// Placement: the §6 discussion made concrete. A datacenter hosts three
// service groups à la the Facebook trace [23] — web frontends, cache
// tiers, and batch/Hadoop workers — but the job placement system has
// scattered their machines across rack positions, so the naive
// contiguous cliques see almost no locality. The semi-oblivious control
// plane observes the aggregated traffic, re-clusters machines by
// affinity, and rebuilds the schedule; throughput recovers to near the
// clairvoyant value.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/schedule"
	"repro/internal/workload"
)

func main() {
	const n, nc = 64, 8

	// Ground truth: each service group occupies every nc-th machine
	// (round-robin placement), and 85% of each machine's traffic stays
	// within its service group.
	planted := make([]int, n)
	for i := range planted {
		planted[i] = i % nc
	}
	serviceGroups, err := schedule.NewCliques(planted)
	if err != nil {
		log.Fatal(err)
	}
	tm, err := workload.Locality(serviceGroups, 0.85)
	if err != nil {
		log.Fatal(err)
	}

	// A static SORN with contiguous cliques sees almost no locality:
	// machines of the same service rarely share a rack-contiguous clique.
	static, err := core.NewSORN(n, nc, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observed locality under contiguous cliques: %.3f (true service locality: 0.85)\n",
		tm.IntraFraction(static.SORN.Cliques))
	staticRes, err := static.Throughput(tm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static contiguous SORN:      θ = %.4f\n", staticRes.Theta)

	// The adaptive control plane re-clusters machines by traffic
	// affinity, recovering the service groups, then provisions q for the
	// recovered locality.
	adaptive, err := core.NewAdaptive(n, nc, 0.85, true)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := adaptive.Adapt(tm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-clustered locality: %.3f -> q = %.2f, predicted r = %.4f\n",
		plan.X, plan.Q, plan.PredictedR)
	adaptiveRes, err := adaptive.Network.Throughput(tm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-clustered SORN:           θ = %.4f\n", adaptiveRes.Theta)
	fmt.Printf("clairvoyant bound 1/(3-x):   r = %.4f\n", 1/(3-0.85))

	// A packet-level confirmation with the Table 1 traffic mix.
	st, err := adaptive.Network.SimulateSaturated(core.SimOptions{
		Seed: 31, WarmupSlots: 8000, MeasureSlots: 8000, TargetBacklog: 2048,
	}, tm, workload.FacebookLike())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packet sim (Facebook mix):   r = %.4f\n", st.Throughput(n))
	fmt.Printf("\nthroughput gain from placement-aware re-clustering: %.1fx\n",
		adaptiveRes.Theta/staticRes.Theta)
}
