// Quickstart: build a semi-oblivious reconfigurable network, inspect the
// schedule it runs, check its worst-case throughput analytically, and
// push packets through it.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

func main() {
	// A 64-node network in 8 cliques, provisioned for a workload in
	// which 56% of each node's traffic stays inside its clique (the
	// production-trace median the paper assumes).
	const n, nc, locality = 64, 8, 0.56
	nw, err := core.NewSORN(n, nc, locality)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %q: %d nodes, %d cliques, realized q=%.2f, schedule period=%d slots\n",
		nw.Kind, nw.N(), nw.SORN.Cliques.NumCliques(), nw.SORN.RealizedQ, nw.Schedule.Period())

	// The theory says worst-case throughput r = 1/(3-x) at q* = 2/(1-x).
	fmt.Printf("theory:  q*=%.2f  r=%.4f\n", model.SORNQ(locality), model.SORNThroughput(locality))

	// The fluid solver measures the actual schedule + router.
	tm, err := nw.LocalityMatrix(locality)
	if err != nil {
		log.Fatal(err)
	}
	res, err := nw.Throughput(tm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fluid:   θ=%.4f (bottleneck link %d->%d, mean hops %.2f)\n",
		res.Theta, res.BottleneckSrc, res.BottleneckDst, res.MeanHops)

	// And the packet-level simulator agrees.
	st, err := nw.SimulateSaturated(core.SimOptions{
		Seed: 7, WarmupSlots: 10000, MeasureSlots: 10000, TargetBacklog: 2048,
	}, tm, workload.NewCapped(workload.WebSearch(), 1333))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sim:     r=%.4f (delivered %d cells, mean hops %.2f)\n",
		st.Throughput(n), st.DeliveredCells, st.MeanHops())

	// Compare with the oblivious baseline through the same API.
	orn, err := core.NewORN1D(n)
	if err != nil {
		log.Fatal(err)
	}
	ornRes, err := orn.Throughput(workload.Uniform(n))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n1D ORN baseline: θ=%.4f with full uniform connectivity (period %d slots vs SORN's %d)\n",
		ornRes.Theta, orn.Schedule.Period(), nw.Schedule.Period())
	fmt.Println("SORN trades a little of VLB's 50% worst case for an order of magnitude less intrinsic latency.")
}
