#!/usr/bin/env bash
# bench.sh runs the netsim-heavy benchmarks and records ns/op,
# allocs/op and throughput metrics into the BENCH_netsim.json ledger
# via cmd/benchjson, so each PR commits before/after evidence for the
# simulator hot path (see ROADMAP.md's bench trajectory).
#
#   ./scripts/bench.sh -label after-pr2      # full run, updates BENCH_netsim.json
#   ./scripts/bench.sh -quick                # CI smoke: tiny run into a temp file
#
# Full mode runs BenchmarkFigure2fSimulated (the end-to-end saturated
# 64-node sweep, -count 3, best kept), BenchmarkFig2fSweep (the paper's
# full default Figure 2(f) sweep through the bounded-parallel sweep
# engine — the headline sweep wall-clock) and BenchmarkQSweep, plus the
# netsim micro-benchmarks. Everything runs -count 3 with the lowest
# ns/op kept, so a single noisy pass can't masquerade as a regression.
# Quick mode only proves the harness works — benchmarks build, run, and
# the JSON emitter parses them — without thresholds and without
# touching the committed ledger.
set -euo pipefail
cd "$(dirname "$0")/.."

label=""
quick=0
out="BENCH_netsim.json"
while [ $# -gt 0 ]; do
  case "$1" in
    -quick) quick=1 ;;
    -label) label="$2"; shift ;;
    -out) out="$2"; shift ;;
    *) echo "usage: bench.sh [-quick] [-label NAME] [-out FILE]" >&2; exit 2 ;;
  esac
  shift
done

if [ "$quick" = 1 ]; then
  tmp="$(mktemp)"
  trap 'rm -f "$tmp"' EXIT
  {
    go test -run NONE -bench 'BenchmarkStepSaturated|BenchmarkStepChurn|BenchmarkInjectSaturated' \
      -benchtime 200x -benchmem ./internal/netsim/
    go test -run NONE -bench 'BenchmarkOpenLoopSparse$|BenchmarkLargeN$' \
      -benchtime 1x -benchmem ./internal/netsim/
  } | go run ./cmd/benchjson -label quick-smoke -out "$tmp"
  echo "bench.sh -quick: harness OK"
  exit 0
fi

if [ -z "$label" ]; then
  echo "bench.sh: -label is required for a recorded run" >&2
  exit 2
fi

# Each run entry records its parallelism context: the GOMAXPROCS in
# force and the simulator worker setting ("auto" = one shard per CPU,
# the netsim default). Wall-clock entries are only comparable between
# runs with the same context.
gomaxprocs="${GOMAXPROCS:-$(nproc)}"
workers="${NETSIM_WORKERS:-auto}"

{
  go test -run NONE -bench 'BenchmarkFigure2fSimulated$' -benchtime 1x -count 3 -benchmem .
  go test -run NONE -bench 'BenchmarkFig2fSweep$|BenchmarkQSweep$' -benchtime 1x -count 3 -benchmem .
  go test -run NONE -bench 'BenchmarkStepSaturated|BenchmarkStepChurn|BenchmarkInjectSaturated' -count 3 -benchmem ./internal/netsim/
  go test -run NONE -bench 'BenchmarkOpenLoopSparse$|BenchmarkLargeN$' -benchtime 5x -count 3 -benchmem ./internal/netsim/
} | tee /dev/stderr | go run ./cmd/benchjson -label "$label" -out "$out" \
    -gomaxprocs "$gomaxprocs" -workers "$workers"
