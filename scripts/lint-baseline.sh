#!/usr/bin/env bash
# lint-baseline.sh regenerates the committed sornlint baseline:
#
#   ./scripts/lint-baseline.sh
#
# The baseline file is exactly the `sornlint -json` output, so this is
# one redirect. CI (scripts/ci.sh step 4 and lint_test.go) tolerates the
# findings recorded here and fails only on NEW findings — the baseline
# is the burn-down list, and shrinking it is always safe. Exit status 1
# from sornlint just means the tree has findings to record; only a load
# or usage error (exit 2) aborts.
set -euo pipefail
cd "$(dirname "$0")/.."

out=lint_baseline.json
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

status=0
go run ./cmd/sornlint -json ./... >"$tmp" || status=$?
if [ "$status" -ge 2 ]; then
  echo "lint-baseline.sh: sornlint failed (exit $status); baseline untouched" >&2
  exit "$status"
fi
mv "$tmp" "$out"
count="$(grep -c '"rule"' "$out" || true)"
echo "wrote $out ($count baselined finding(s))"
