#!/usr/bin/env bash
# fuzz.sh runs the budgeted differential/metamorphic fuzzing pass
# (internal/oracle) on top of the fixed-corpus gate in ci.sh.
#
#   ./scripts/fuzz.sh                 # default budget: 256 scenarios or 300s
#   ./scripts/fuzz.sh 1024 1800       # up to 1024 scenarios, 30-minute cap
#   FUZZ_SEED=42 ./scripts/fuzz.sh    # pin the scenario stream
#
# Each random scenario cross-checks the closed-form model, the exact
# rational solver, the float fluid solver, and the packet simulator,
# plus the metamorphic relations (relabeling, demand scaling, clique
# symmetry, zero-window fail→repair, Workers 1-vs-k bit-identity).
# Every scenario derives from its own split RNG stream, so a failure
# here exits nonzero and prints one-line reproducer specs that replay
# standalone:
#
#   go run ./cmd/sornsim -selfcheck -spec "design=... seed=..."
#
# The default seed varies per run (wall clock) so repeated local runs
# explore new scenarios; CI should pin FUZZ_SEED for reproducible logs.
set -euo pipefail
cd "$(dirname "$0")/.."

iters="${1:-256}"
seconds="${2:-300}"
seed="${FUZZ_SEED:-$(date +%s)}"

echo "== oracle fuzz: up to $iters scenarios, ${seconds}s budget, seed $seed"
go run ./cmd/sornsim -selfcheck -fuzziters "$iters" -fuzzseconds "$seconds" -seed "$seed"
