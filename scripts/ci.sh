#!/usr/bin/env bash
# ci.sh is the canonical pre-merge check: everything main must pass.
#
#   ./scripts/ci.sh
#
# Steps, in order, each fatal:
#   1. go build ./...        -- the module compiles
#   2. go vet ./...          -- stdlib vet findings
#   3. sornlint              -- this repo's determinism & correctness
#                               rules (internal/lint); see DESIGN.md
#   4. go test ./...         -- tier-1 tests (includes the lint gate
#                               again via lint_test.go)
#   5. go test -race ./...   -- the race detector over the same suite;
#                               goroutine fan-out in internal/experiments
#                               must be both race-free and deterministic
#   6. bench.sh -quick       -- the benchmark harness builds, runs, and
#                               its JSON emitter parses the output; no
#                               thresholds, and the committed
#                               BENCH_netsim.json is left untouched
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== sornlint ./..."
go run ./cmd/sornlint ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "== scripts/bench.sh -quick"
./scripts/bench.sh -quick

echo "== ci.sh: all checks passed"
