#!/usr/bin/env bash
# ci.sh is the canonical pre-merge check: everything main must pass.
#
#   ./scripts/ci.sh
#
# Steps, in order, each fatal:
#   1. gofmt -l              -- no formatting drift anywhere in the tree
#   2. go build ./...        -- the module compiles
#   3. go vet ./...          -- stdlib vet findings
#   4. sornlint              -- this repo's determinism & correctness
#                               rules (internal/lint), run with -json
#                               against the committed lint_baseline.json:
#                               only NEW findings fail; regenerate the
#                               baseline with scripts/lint-baseline.sh.
#                               The step is timed, and exports
#                               SORNLINT_CI_RAN so the go test steps
#                               skip lint_test.go's duplicate
#                               whole-module type-check (one load per
#                               ci.sh run, not three)
#   5. go test ./...         -- tier-1 tests
#   6. race determinism      -- the determinism invariants under the
#                               race detector, explicitly, so a failure
#                               names the engine invariant: sharded
#                               stepping (Workers=1 vs k bit-identical
#                               Stats), Sim.Reset bit-identity vs a
#                               fresh simulator, and sweep results
#                               bit-identical across sweep concurrency
#   7. oracle corpus         -- the differential-testing corpus gate
#                               (internal/oracle) under -race: three
#                               independent throughput oracles must
#                               agree on every fixed scenario, and every
#                               metamorphic relation must hold; budgeted
#                               random fuzzing is scripts/fuzz.sh
#   8. go test -race ./...   -- the race detector over the full suite;
#                               goroutine fan-out in internal/experiments
#                               and internal/netsim must be both
#                               race-free and deterministic
#   9. bench.sh -quick       -- the benchmark harness builds, runs, and
#                               its JSON emitter parses the output; no
#                               thresholds, and the committed
#                               BENCH_netsim.json is left untouched
#  10. obs overhead gate     -- BenchmarkInjectSaturated (one full
#                               saturated slot, injection through
#                               delivery) run twice on this machine,
#                               observer off then on (-benchobs),
#                               compared via `benchjson compare`; fails
#                               if attaching the observability layer
#                               costs >5% ns/op. (Same-machine A/B:
#                               committed ledger entries from other
#                               hosts are not comparable in absolute
#                               ns/op.)
#  11. sweep reuse gate      -- BenchmarkFig2fSweepQuick (the CI-sized
#                               Figure 2(f) sweep) run fresh-per-point
#                               (-benchsweepfresh) then with the pooled
#                               Reset reuse path, compared via
#                               `benchjson compare`; fails if the pool
#                               is >5% slower than fresh allocation,
#                               i.e. if Reset reuse ever becomes a
#                               pessimization
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt -l"
drift="$(gofmt -l .)"
if [ -n "$drift" ]; then
  echo "gofmt drift in:" >&2
  echo "$drift" >&2
  exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== sornlint -json -baseline lint_baseline.json ./..."
lint_start=$SECONDS
go run ./cmd/sornlint -json -baseline lint_baseline.json ./...
echo "   (sornlint step took $((SECONDS - lint_start))s)"
# The dedicated step above already type-checked and analyzed the whole
# module; tell lint_test.go not to repeat that work in the test steps.
export SORNLINT_CI_RAN=1

echo "== go test ./..."
go test ./...

# TestParallelDeterminism* covers both the plain open-loop scenarios and
# the fault-plan variant (scripted outages + random churn between Steps).
# TestSimResetBitIdentity pins Reset-reused sims to fresh ones, and
# TestSweepDeterminismAcrossConcurrency pins sweep results across worker
# counts (including the pooled vs fresh-sim paths).
echo "== go test -race -run 'TestParallelDeterminism|TestObsNonPerturbation|TestSimResetBitIdentity' ./internal/netsim/"
go test -race -run 'TestParallelDeterminism|TestObsNonPerturbation|TestSimResetBitIdentity' ./internal/netsim/

echo "== go test -race -run 'TestSweepDeterminismAcrossConcurrency' ./internal/experiments/"
go test -race -run 'TestSweepDeterminismAcrossConcurrency' ./internal/experiments/

# The differential-oracle corpus gate: every fixed scenario must agree
# across the closed forms, the rational solver, the float fluid solver,
# and the packet simulator, with the metamorphic relations (relabeling,
# scaling, clique symmetry, fail→repair, Workers 1-vs-k) holding under
# the race detector. Budgeted random fuzzing lives in scripts/fuzz.sh.
echo "== go test -race -run 'TestOracleCorpus' ./internal/oracle/"
go test -race -run 'TestOracleCorpus' ./internal/oracle/

echo "== go test -race ./..."
go test -race ./...

echo "== scripts/bench.sh -quick"
./scripts/bench.sh -quick

echo "== obs overhead gate (InjectSaturated, observer off vs on, 5% budget)"
obsdir="$(mktemp -d)"
trap 'rm -rf "$obsdir"' EXIT
# Prebuild both binaries so compilation never competes with the timed
# runs for CPU. Interleave off/on passes so slow-machine drift hits both
# labels alike, and let benchjson keep the best ns/op per label.
go build -o "$obsdir/benchjson" ./cmd/benchjson
go test -run NONE -c -o "$obsdir/netsim.test" ./internal/netsim/
for pass in 1 2 3; do
  (cd internal/netsim && "$obsdir/netsim.test" -test.run NONE \
    -test.bench 'BenchmarkInjectSaturated$' -test.benchtime 20000x -test.count 2) \
    >>"$obsdir/off.txt"
  (cd internal/netsim && "$obsdir/netsim.test" -test.run NONE \
    -test.bench 'BenchmarkInjectSaturated$' -test.benchtime 20000x -test.count 2 -benchobs) \
    >>"$obsdir/on.txt"
done
"$obsdir/benchjson" -label obs-off -out "$obsdir/ledger.json" <"$obsdir/off.txt"
"$obsdir/benchjson" -label obs-on -out "$obsdir/ledger.json" <"$obsdir/on.txt"
"$obsdir/benchjson" compare -out "$obsdir/ledger.json" obs-off obs-on

echo "== sweep reuse gate (Fig2fSweepQuick, fresh vs pooled sims, 5% budget)"
# Same same-machine A/B shape as the obs gate: prebuilt binary,
# interleaved passes, best ns/op per label kept by benchjson.
go test -run NONE -c -o "$obsdir/repro.test" .
for pass in 1 2 3; do
  "$obsdir/repro.test" -test.run NONE -test.bench 'BenchmarkFig2fSweepQuick$' \
    -test.benchtime 2x -test.count 2 -benchsweepfresh >>"$obsdir/fresh.txt"
  "$obsdir/repro.test" -test.run NONE -test.bench 'BenchmarkFig2fSweepQuick$' \
    -test.benchtime 2x -test.count 2 >>"$obsdir/pooled.txt"
done
"$obsdir/benchjson" -label sweep-fresh -out "$obsdir/sweep.json" <"$obsdir/fresh.txt"
"$obsdir/benchjson" -label sweep-pooled -out "$obsdir/sweep.json" <"$obsdir/pooled.txt"
"$obsdir/benchjson" compare -out "$obsdir/sweep.json" sweep-fresh sweep-pooled

echo "== ci.sh: all checks passed"
