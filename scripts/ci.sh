#!/usr/bin/env bash
# ci.sh is the canonical pre-merge check: everything main must pass.
#
#   ./scripts/ci.sh
#
# Steps, in order, each fatal:
#   1. gofmt -l              -- no formatting drift anywhere in the tree
#   2. go build ./...        -- the module compiles
#   3. go vet ./...          -- stdlib vet findings
#   4. sornlint              -- this repo's determinism & correctness
#                               rules (internal/lint), run with -json
#                               against the committed lint_baseline.json:
#                               only NEW findings fail; regenerate the
#                               baseline with scripts/lint-baseline.sh.
#                               The step is timed, and exports
#                               SORNLINT_CI_RAN so the go test steps
#                               skip lint_test.go's duplicate
#                               whole-module type-check (one load per
#                               ci.sh run, not three)
#   5. go test ./...         -- tier-1 tests
#   6. race determinism      -- the determinism invariants under the
#                               race detector, explicitly, so a failure
#                               names the engine invariant: sharded
#                               stepping (Workers=1 vs k bit-identical
#                               Stats), Sim.Reset bit-identity vs a
#                               fresh simulator, sweep results
#                               bit-identical across sweep concurrency,
#                               and the active-set engine bit-identical
#                               to the dense reference engine (Stats,
#                               series, traces) through fault churn,
#                               reconfiguration, and fast-forward
#   7. oracle corpus         -- the differential-testing corpus gate
#                               (internal/oracle) under -race: three
#                               independent throughput oracles must
#                               agree on every fixed scenario, and every
#                               metamorphic relation must hold; budgeted
#                               random fuzzing is scripts/fuzz.sh
#   8. go test -race ./...   -- the race detector over the full suite;
#                               goroutine fan-out in internal/experiments
#                               and internal/netsim must be both
#                               race-free and deterministic
#   9. bench.sh -quick       -- the benchmark harness builds, runs, and
#                               its JSON emitter parses the output; no
#                               thresholds, and the committed
#                               BENCH_netsim.json is left untouched
#  10. obs overhead gate     -- BenchmarkInjectSaturated (one full
#                               saturated slot, injection through
#                               delivery) run twice on this machine,
#                               observer off then on (-benchobs),
#                               compared via `benchjson compare`; fails
#                               if attaching the observability layer
#                               costs >5% ns/op. (Same-machine A/B:
#                               committed ledger entries from other
#                               hosts are not comparable in absolute
#                               ns/op.)
#  11. sweep reuse gate      -- BenchmarkFig2fSweepQuick (the CI-sized
#                               Figure 2(f) sweep) run fresh-per-point
#                               (-benchsweepfresh) then with the pooled
#                               Reset reuse path, compared via
#                               `benchjson compare`; fails if the pool
#                               is >5% slower than fresh allocation,
#                               i.e. if Reset reuse ever becomes a
#                               pessimization
#  12. active engine gate    -- the slot-level saturated benchmarks
#                               (BenchmarkStepSaturated: stepping a
#                               primed 128-node sim to drain, and
#                               BenchmarkStepSaturatedFull: Step with
#                               the backlog held at the saturation
#                               target, injection outside the timed
#                               region) run on the dense reference
#                               engine (-benchdense) then on the default
#                               active-set engine, compared via
#                               `benchjson compare`; fails if the
#                               active-set bookkeeping makes the
#                               *saturated* regime — where the active
#                               set is every (src, plane) pair and the
#                               incremental tracking is pure overhead —
#                               more than 5% slower than the dense scan
#                               it replaced. Slot-level, injection-free
#                               benchmarks only: on a shared host both
#                               the CI-sized sweep's wall clock and the
#                               RNG/allocation-heavy injection path
#                               drift more than the 5% budget between
#                               identical configurations (an A/A
#                               comparison flakes), so the sweep and
#                               whole-slot numbers are tracked in the
#                               committed ledger instead. (The sparse
#                               regime's win is likewise recorded in the
#                               ledger, not gated here: it is the point
#                               of the engine, not a risk.)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt -l"
drift="$(gofmt -l .)"
if [ -n "$drift" ]; then
  echo "gofmt drift in:" >&2
  echo "$drift" >&2
  exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== sornlint -json -baseline lint_baseline.json ./..."
lint_start=$SECONDS
go run ./cmd/sornlint -json -baseline lint_baseline.json ./...
echo "   (sornlint step took $((SECONDS - lint_start))s)"
# The dedicated step above already type-checked and analyzed the whole
# module; tell lint_test.go not to repeat that work in the test steps.
export SORNLINT_CI_RAN=1

echo "== go test ./..."
go test ./...

# TestParallelDeterminism* covers both the plain open-loop scenarios and
# the fault-plan variant (scripted outages + random churn between Steps).
# TestSimResetBitIdentity pins Reset-reused sims to fresh ones, and
# TestSweepDeterminismAcrossConcurrency pins sweep results across worker
# counts (including the pooled vs fresh-sim paths).
echo "== go test -race -run 'TestParallelDeterminism|TestObsNonPerturbation|TestSimResetBitIdentity' ./internal/netsim/"
go test -race -run 'TestParallelDeterminism|TestObsNonPerturbation|TestSimResetBitIdentity' ./internal/netsim/

echo "== go test -race -run 'TestSweepDeterminismAcrossConcurrency' ./internal/experiments/"
go test -race -run 'TestSweepDeterminismAcrossConcurrency' ./internal/experiments/

# The dense engine is the executable specification of the per-slot
# algorithm; the active-set engine must reproduce it bit-identically —
# Stats, series rows, event traces — through fault churn, mid-run
# reconfiguration, pooled Reset reuse, and quiescence fast-forward.
echo "== go test -race -run 'TestDenseActiveEquivalence|TestFastForwardTo' ./internal/netsim/"
go test -race -run 'TestDenseActiveEquivalence|TestFastForwardTo' ./internal/netsim/

# The differential-oracle corpus gate: every fixed scenario must agree
# across the closed forms, the rational solver, the float fluid solver,
# and the packet simulator, with the metamorphic relations (relabeling,
# scaling, clique symmetry, fail→repair, Workers 1-vs-k) holding under
# the race detector. Budgeted random fuzzing lives in scripts/fuzz.sh.
echo "== go test -race -run 'TestOracleCorpus' ./internal/oracle/"
go test -race -run 'TestOracleCorpus' ./internal/oracle/

echo "== go test -race ./..."
go test -race ./...

echo "== scripts/bench.sh -quick"
./scripts/bench.sh -quick

echo "== obs overhead gate (InjectSaturated, observer off vs on, 5% budget)"
obsdir="$(mktemp -d)"
trap 'rm -rf "$obsdir"' EXIT
# Prebuild both binaries so compilation never competes with the timed
# runs for CPU. Interleave off/on passes so slow-machine drift hits both
# labels alike, and let benchjson keep the best ns/op per label.
go build -o "$obsdir/benchjson" ./cmd/benchjson
go test -run NONE -c -o "$obsdir/netsim.test" ./internal/netsim/
for pass in 1 2 3; do
  (cd internal/netsim && "$obsdir/netsim.test" -test.run NONE \
    -test.bench 'BenchmarkInjectSaturated$' -test.benchtime 20000x -test.count 2) \
    >>"$obsdir/off.txt"
  (cd internal/netsim && "$obsdir/netsim.test" -test.run NONE \
    -test.bench 'BenchmarkInjectSaturated$' -test.benchtime 20000x -test.count 2 -benchobs) \
    >>"$obsdir/on.txt"
done
"$obsdir/benchjson" -label obs-off -out "$obsdir/ledger.json" <"$obsdir/off.txt"
"$obsdir/benchjson" -label obs-on -out "$obsdir/ledger.json" <"$obsdir/on.txt"
"$obsdir/benchjson" compare -out "$obsdir/ledger.json" obs-off obs-on

echo "== sweep reuse gate (Fig2fSweepQuick, fresh vs pooled sims, 5% budget)"
# Same same-machine A/B shape as the obs gate: prebuilt binary,
# interleaved passes, best ns/op per label kept by benchjson.
go test -run NONE -c -o "$obsdir/repro.test" .
for pass in 1 2 3; do
  "$obsdir/repro.test" -test.run NONE -test.bench 'BenchmarkFig2fSweepQuick$' \
    -test.benchtime 2x -test.count 2 -benchsweepfresh >>"$obsdir/fresh.txt"
  "$obsdir/repro.test" -test.run NONE -test.bench 'BenchmarkFig2fSweepQuick$' \
    -test.benchtime 2x -test.count 2 >>"$obsdir/pooled.txt"
done
"$obsdir/benchjson" -label sweep-fresh -out "$obsdir/sweep.json" <"$obsdir/fresh.txt"
"$obsdir/benchjson" -label sweep-pooled -out "$obsdir/sweep.json" <"$obsdir/pooled.txt"
"$obsdir/benchjson" compare -out "$obsdir/sweep.json" sweep-fresh sweep-pooled

echo "== active engine gate (StepSaturated + StepSaturatedFull, dense vs active, 5% budget)"
# Saturation is the active-set engine's worst case: every source is
# backlogged, so the incremental occupancy tracking buys nothing and
# must at least not lose. Slot-level, injection-free benchmarks only —
# on a shared host the CI-sized sweep's wall clock and the injection
# path's RNG/allocation jitter both drift past the budget between
# identical configs, so those live in the ledger, not a gate. Same
# same-machine A/B shape as the gates above, reusing the prebuilt test
# binary. StepSaturatedFull runs long (100000x, count 3) so each
# measurement averages across host-load drift and the kept minimum —
# nine runs per label, interleaved — sits at the genuine floor rather
# than whichever label drew the quieter minute.
for pass in 1 2 3; do
  (cd internal/netsim && "$obsdir/netsim.test" -test.run NONE \
    -test.bench 'BenchmarkStepSaturated$' -test.benchtime 20000x -test.count 2 -benchdense) \
    >>"$obsdir/dense.txt"
  (cd internal/netsim && "$obsdir/netsim.test" -test.run NONE \
    -test.bench 'BenchmarkStepSaturatedFull$' -test.benchtime 100000x -test.count 3 -benchdense) \
    >>"$obsdir/dense.txt"
  (cd internal/netsim && "$obsdir/netsim.test" -test.run NONE \
    -test.bench 'BenchmarkStepSaturated$' -test.benchtime 20000x -test.count 2) \
    >>"$obsdir/active.txt"
  (cd internal/netsim && "$obsdir/netsim.test" -test.run NONE \
    -test.bench 'BenchmarkStepSaturatedFull$' -test.benchtime 100000x -test.count 3) \
    >>"$obsdir/active.txt"
done
"$obsdir/benchjson" -label engine-dense -out "$obsdir/engine.json" <"$obsdir/dense.txt"
"$obsdir/benchjson" -label engine-active -out "$obsdir/engine.json" <"$obsdir/active.txt"
"$obsdir/benchjson" compare -out "$obsdir/engine.json" engine-dense engine-active

echo "== ci.sh: all checks passed"
