// TestSornlintClean wires the determinism & correctness analyzers
// (internal/lint) into tier-1: `go test ./...` fails on any rule
// violation anywhere in the module, so a time.Now in a simulation
// package or a float accumulated in map order can't land unnoticed.
// The same analysis is runnable standalone:
//
//	go run ./cmd/sornlint ./...
package repro_test

import (
	"os"
	"testing"

	"repro/internal/lint"
)

func TestSornlintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	findings := lint.Run(pkgs, lint.Analyzers())
	for _, f := range findings {
		t.Error(f.String())
	}
	if len(findings) > 0 {
		t.Logf("%d finding(s); fix them or add a justified //sornlint:ignore directive", len(findings))
	}
}
