// TestSornlintClean wires the determinism & correctness analyzers
// (internal/lint) into tier-1: `go test ./...` fails on any rule
// violation anywhere in the module that is not tolerated by the
// committed lint_baseline.json, so a time.Now in a simulation package,
// a shard-phase write to shared state, or an allocation on an annotated
// hot path can't land unnoticed. The same analysis is runnable
// standalone:
//
//	go run ./cmd/sornlint -json -baseline lint_baseline.json ./...
//
// Inside ci.sh that command runs as its own timed step before the test
// steps and exports SORNLINT_CI_RAN, which this test honors by
// skipping — one whole-module type-check per ci.sh run instead of one
// per `go test` invocation.
package repro_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

func TestSornlintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	if os.Getenv("SORNLINT_CI_RAN") != "" {
		t.Skip("sornlint already ran as a dedicated ci.sh step")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	findings := lint.Run(pkgs, lint.Analyzers())
	base, err := lint.LoadBaseline(filepath.Join(root, "lint_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	fresh := base.Diff(findings, root)
	for _, f := range fresh {
		t.Error(f.String())
	}
	if len(fresh) > 0 {
		t.Logf("%d new finding(s) not in lint_baseline.json; fix them, add a justified //sornlint:ignore directive, or regenerate the baseline (scripts/lint-baseline.sh)", len(fresh))
	}
}
